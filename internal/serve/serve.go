package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"
	"unicode/utf8"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dagman"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// TenantHeader names the request header that selects a cache namespace.
const TenantHeader = "X-Prio-Tenant"

// defaultTenant is the namespace used when the header is absent.
const defaultTenant = "default"

// Config tunes the daemon; the zero value means "use the default" for
// every field.
type Config struct {
	// MaxInFlight bounds concurrent scheduling requests (default: one
	// per logical CPU — the pipeline is CPU-bound, so more in-flight
	// work only inflates every request's latency).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot beyond
	// MaxInFlight (default 4×MaxInFlight). A full queue rejects
	// immediately with 429.
	MaxQueue int
	// QueueTimeout is the longest a request may wait in the accept
	// queue before being shed with 429 (default 2s).
	QueueTimeout time.Duration
	// MaxDagBytes caps the request body (default 16 MiB); larger
	// bodies are a 413.
	MaxDagBytes int64
	// MaxJobs caps the parsed dag's node count (default 200000);
	// larger dags are a 413.
	MaxJobs int
	// MaxTenants bounds live cache namespaces (default 64); beyond it
	// the least-recently-used namespace is evicted.
	MaxTenants int
	// Parallel is core.Options.Parallel for every request (default 1:
	// with MaxInFlight requests already saturating the CPUs,
	// intra-request fan-out buys nothing and costs scheduling jitter).
	Parallel int
	// MaxReplications caps P*Q on /v1/simulate (default 25000).
	MaxReplications int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.MaxDagBytes <= 0 {
		c.MaxDagBytes = 16 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 200_000
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 64
	}
	if c.Parallel == 0 {
		c.Parallel = 1
	}
	if c.MaxReplications <= 0 {
		c.MaxReplications = 25_000
	}
	return c
}

// Server is the HTTP serving layer over the prio pipeline. Construct
// with New; the zero value is not usable.
type Server struct {
	cfg     Config
	adm     *admission
	met     *metrics
	tenants *tenantCaches
	mux     *http.ServeMux
	routes  []string
}

// New returns a Server with its mux fully registered.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults()}
	s.adm = newAdmission(s.cfg.MaxInFlight, s.cfg.MaxQueue, s.cfg.QueueTimeout)
	s.tenants = newTenantCaches(s.cfg.MaxTenants)
	s.mux = http.NewServeMux()

	type route struct {
		pattern string
		admit   bool // subject to admission control (scheduling work)
		h       http.HandlerFunc
	}
	table := []route{
		{"POST /v1/prioritize", true, s.handlePrioritize},
		{"POST /v1/simulate", true, s.handleSimulate},
		{"GET /v1/workloads", false, s.handleWorkloads},
		{"GET /healthz", false, s.handleHealthz},
		{"GET /metrics", false, s.handleMetrics},
	}
	for _, rt := range table {
		s.routes = append(s.routes, rt.pattern)
	}
	s.met = newMetrics(s.routes)
	for _, rt := range table {
		s.mux.HandleFunc(rt.pattern, s.instrument(rt.pattern, rt.admit, rt.h))
	}
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Routes lists every registered route pattern in registration order;
// the API-documentation test walks it against docs/API.md.
func (s *Server) Routes() []string {
	return append([]string(nil), s.routes...)
}

// Metrics returns the current observability snapshot (the GET /metrics
// document).
func (s *Server) Metrics() Snapshot { return s.met.snapshot(s.adm, s.tenants) }

// statusWriter records the status code a handler wrote so the
// instrumentation wrapper can classify the response.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with admission control (when admit is
// set) and per-route metrics.
func (s *Server) instrument(pattern string, admit bool, h http.HandlerFunc) http.HandlerFunc {
	rm := s.met.route(pattern)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() { rm.record(sw.status, time.Since(start)) }()
		if admit {
			switch s.adm.acquire(r.Context()) {
			case admitOK:
				defer s.adm.release()
			case admitQueueFull:
				s.met.shedQueueFull.Add(1)
				sw.Header().Set("Retry-After", "1")
				writeError(sw, http.StatusTooManyRequests,
					fmt.Sprintf("accept queue full (%d in flight, %d queued); retry later", s.cfg.MaxInFlight, s.cfg.MaxQueue))
				return
			case admitDeadline:
				s.met.shedDeadline.Add(1)
				sw.Header().Set("Retry-After", "1")
				writeError(sw, http.StatusTooManyRequests,
					fmt.Sprintf("shed after queueing %v without a free slot; retry later", s.cfg.QueueTimeout))
				return
			case admitCanceled:
				s.met.clientGone.Add(1)
				sw.status = 0 // no response reaches the client
				return
			}
		}
		h(sw, r)
	}
}

// errorBody is the JSON error envelope shared by every non-2xx
// response the handlers write.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The encode error is unrecoverable mid-response and the connection
	// is the client's problem at that point.
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg, Status: status})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// tenantName extracts the cache-namespace name from the request.
func tenantName(r *http.Request) string {
	t := r.Header.Get(TenantHeader)
	if t == "" {
		return defaultTenant
	}
	if len(t) > 128 {
		t = t[:128]
	}
	return t
}

// readDag reads, parses, and freezes the request body, enforcing the
// size limits. On failure it has already written the error response
// and returns ok=false.
func (s *Server) readDag(w http.ResponseWriter, r *http.Request) (*dagman.File, *dag.Frozen, bool) {
	if r.ContentLength > s.cfg.MaxDagBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("dag file is %d bytes; limit is %d (tune -max-dag-bytes)", r.ContentLength, s.cfg.MaxDagBytes))
		return nil, nil, false
	}
	f, err := dagman.Parse(http.MaxBytesReader(w, r.Body, s.cfg.MaxDagBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("dag file exceeds the %d-byte limit (tune -max-dag-bytes)", s.cfg.MaxDagBytes))
		} else {
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return nil, nil, false
	}
	if len(f.Splices) > 0 {
		writeError(w, http.StatusBadRequest,
			"SPLICE is not supported over HTTP: the daemon has no access to the spliced files; flatten the workflow client-side (cmd/prio does this automatically)")
		return nil, nil, false
	}
	g, err := f.Graph()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, nil, false
	}
	if g.NumNodes() > s.cfg.MaxJobs {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("dag has %d jobs; limit is %d (tune -max-jobs)", g.NumNodes(), s.cfg.MaxJobs))
		return nil, nil, false
	}
	return f, g, true
}

// handlePrioritize runs the prio pipeline on the posted DAGMan file.
// format=json (default) returns the structured schedule; format=dag
// returns the instrumented DAGMan text, byte-identical to what
// cmd/prio emits for the same input (the differential tests pin this).
func (s *Server) handlePrioritize(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	switch format {
	case "", "json", "dag":
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q: want json or dag", format))
		return
	}
	f, g, ok := s.readDag(w, r)
	if !ok {
		return
	}
	opts := core.Options{Parallel: s.cfg.Parallel, Cache: s.tenants.get(tenantName(r))}
	sched := core.PrioritizeOpts(g, opts)

	sc := getScratch()
	defer putScratch(sc)

	if format == "dag" {
		for v := 0; v < g.NumNodes(); v++ {
			sc.priorities[g.Name(v)] = sched.Priority[v]
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(f.Instrument(sc.priorities)))
		return
	}
	writePrioritizeJSON(sc, g, sched)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(sc.buf.Bytes())
}

// writePrioritizeJSON renders the schedule response by hand into the
// pooled buffer: the output is deterministic (jobs in node-index order,
// execution order as scheduled) and steady-state serving reuses the
// buffer instead of building an ephemeral map-based document per
// request.
func writePrioritizeJSON(sc *scratch, g *dag.Frozen, sched *core.Schedule) {
	buf := &sc.buf
	num := func(n int) {
		sc.qbuf = strconv.AppendInt(sc.qbuf[:0], int64(n), 10)
		buf.Write(sc.qbuf)
	}
	quoted := func(name string) {
		sc.qbuf = appendJSONString(sc.qbuf[:0], name)
		buf.Write(sc.qbuf)
	}
	buf.WriteString(`{"jobs":`)
	num(g.NumNodes())
	buf.WriteString(`,"arcs":`)
	num(g.NumArcs())
	buf.WriteString(`,"components":`)
	num(len(sched.Components))
	buf.WriteString(`,"shortcuts_removed":`)
	num(len(sched.Decomposition.Shortcuts))
	buf.WriteString(`,"order":[`)
	for i, v := range sched.Order {
		if i > 0 {
			buf.WriteByte(',')
		}
		quoted(g.Name(v))
	}
	buf.WriteString(`],"priorities":{`)
	for v := 0; v < g.NumNodes(); v++ {
		if v > 0 {
			buf.WriteByte(',')
		}
		quoted(g.Name(v))
		buf.WriteByte(':')
		num(sched.Priority[v])
	}
	buf.WriteString("}}\n")
}

// jsonHex digits for \u00XX control-character escapes.
const jsonHex = "0123456789abcdef"

// appendJSONString appends s to dst as an RFC 8259 string literal.
// strconv.AppendQuote is not usable here: it emits Go string-literal
// escapes (\xff for invalid UTF-8, \U0001F600 for runes outside the
// BMP's escape range) that JSON decoders reject — FuzzPrioritizeRequest
// found exactly that with a job named "\xff". Invalid UTF-8 becomes
// U+FFFD, matching encoding/json.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for _, r := range s {
		switch r {
		case '"':
			dst = append(dst, '\\', '"')
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			if r < 0x20 {
				dst = append(dst, '\\', 'u', '0', '0', jsonHex[r>>4], jsonHex[r&0xf])
			} else {
				dst = utf8.AppendRune(dst, r)
			}
		}
	}
	return append(dst, '"')
}

// simResponse is the /v1/simulate document.
type simResponse struct {
	Jobs     int       `json:"jobs"`
	PolicyA  string    `json:"policy_a"`
	PolicyB  string    `json:"policy_b"`
	MuBIT    float64   `json:"mu_bit"`
	MuBS     float64   `json:"mu_bs"`
	P        int       `json:"p"`
	Q        int       `json:"q"`
	Seed     uint64    `json:"seed"`
	ExecTime ratioJSON `json:"exec_time"`
	Stalling ratioJSON `json:"stalling"`
	Util     ratioJSON `json:"utilization"`
}

// ratioJSON mirrors stats.RatioCI (the A/B ratio confidence interval).
type ratioJSON struct {
	Median float64 `json:"median"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Valid  bool    `json:"valid"`
}

func toRatioJSON(c stats.RatioCI) ratioJSON {
	return ratioJSON{Median: c.Median, Lo: c.Lo, Hi: c.Hi, Mean: c.Mean, Std: c.Std, Valid: c.Valid}
}

// handleSimulate runs the Section 4 grid model on the posted dag at one
// (mu_bit, mu_bs) parameter point and reports the A/B ratio confidence
// intervals (defaults compare PRIO against FIFO).
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	muBIT, err := floatParam(q.Get("mu_bit"), 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "mu_bit: "+err.Error())
		return
	}
	muBS, err := floatParam(q.Get("mu_bs"), 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "mu_bs: "+err.Error())
		return
	}
	if muBIT <= 0 || muBS <= 0 {
		writeError(w, http.StatusBadRequest, "mu_bit and mu_bs must be positive")
		return
	}
	p, err := intParam(q.Get("p"), 20)
	if err != nil {
		writeError(w, http.StatusBadRequest, "p: "+err.Error())
		return
	}
	qq, err := intParam(q.Get("q"), 20)
	if err != nil {
		writeError(w, http.StatusBadRequest, "q: "+err.Error())
		return
	}
	if p < 1 || qq < 1 {
		writeError(w, http.StatusBadRequest, "p and q must be at least 1")
		return
	}
	if p*qq > s.cfg.MaxReplications {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("p*q = %d replications; limit is %d (tune -max-replications)", p*qq, s.cfg.MaxReplications))
		return
	}
	seed, err := intParam(q.Get("seed"), 1)
	if err != nil || seed < 0 {
		writeError(w, http.StatusBadRequest, "seed: must be a non-negative integer")
		return
	}
	polA, polB := q.Get("policy_a"), q.Get("policy_b")
	if polA == "" {
		polA = "prio"
	}
	if polB == "" {
		polB = "fifo"
	}

	_, g, ok := s.readDag(w, r)
	if !ok {
		return
	}
	opts := core.Options{Parallel: s.cfg.Parallel, Cache: s.tenants.get(tenantName(r))}
	factoryA, err := sim.PolicyFactoryOpts(polA, g, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "policy_a: "+err.Error())
		return
	}
	factoryB, err := sim.PolicyFactoryOpts(polB, g, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "policy_b: "+err.Error())
		return
	}
	// One admission slot is one CPU's worth of work: keep the
	// simulation single-worker so a simulate request cannot grab every
	// core from under the other in-flight requests.
	c := sim.Compare(g, sim.DefaultParams(muBIT, muBS), factoryA, factoryB,
		sim.ExperimentOptions{P: p, Q: qq, Seed: uint64(seed), Workers: 1})
	writeJSON(w, simResponse{
		Jobs:     g.NumNodes(),
		PolicyA:  polA,
		PolicyB:  polB,
		MuBIT:    muBIT,
		MuBS:     muBS,
		P:        p,
		Q:        qq,
		Seed:     uint64(seed),
		ExecTime: toRatioJSON(c.ExecTime),
		Stalling: toRatioJSON(c.Stalling),
		Util:     toRatioJSON(c.Utilization),
	})
}

// workloadsResponse is the /v1/workloads document.
type workloadsResponse struct {
	// Paper lists the four scientific dags of the paper's evaluation.
	Paper []string `json:"paper"`
	// Classic lists the theory repertoire (mesh, reduction, ...).
	Classic []string `json:"classic"`
	// Policies lists the names /v1/simulate accepts for policy_a/b.
	Policies []string `json:"policies"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, workloadsResponse{
		Paper:    workloads.Names(),
		Classic:  workloads.ClassicNames(),
		Policies: sim.PolicyNames(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Metrics())
}

func floatParam(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseFloat(s, 64)
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}
