package serve

import (
	"sort"
	"sync"

	"repro/internal/core"
)

// tenantCaches is the per-tenant cache namespace layer: each tenant
// name maps to its own core.Cache (component schedules + transitive
// reductions), so repeated shapes within one tenant's workflows are
// memoized while tenants never observe each other's entries. The map is
// bounded: beyond max namespaces the least-recently-used tenant is
// evicted, which only costs that tenant its warm cache, never
// correctness (the memoized pipeline is bit-identical to the uncached
// one).
type tenantCaches struct {
	mu      sync.Mutex
	max     int
	clock   int64                   // guarded by mu (logical LRU time, unique per get)
	entries map[string]*tenantEntry // guarded by mu
}

type tenantEntry struct {
	cache   *core.Cache // guarded by tenantCaches.mu (the Cache has its own internal lock)
	lastUse int64       // guarded by tenantCaches.mu
}

func newTenantCaches(max int) *tenantCaches {
	return &tenantCaches{max: max, entries: make(map[string]*tenantEntry, max)}
}

// get returns tenant's cache namespace, creating it (and evicting the
// least-recently-used namespace when at capacity) as needed.
func (t *tenantCaches) get(tenant string) *core.Cache {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock++
	if e, ok := t.entries[tenant]; ok {
		e.lastUse = t.clock
		return e.cache
	}
	if len(t.entries) >= t.max {
		// Evict the LRU entry over a sorted key list, not the raw map:
		// lastUse values are unique (the clock ticks on every get), so
		// the minimum never depends on iteration order — but scanning in
		// sorted order makes that provable (the respdet analyzer's
		// collect-then-sort discipline) and keeps eviction deterministic
		// even if the uniqueness invariant ever breaks.
		names := make([]string, 0, len(t.entries))
		for name := range t.entries {
			names = append(names, name)
		}
		sort.Strings(names)
		victim := ""
		oldest := int64(1<<63 - 1)
		for _, name := range names {
			if e := t.entries[name]; e.lastUse < oldest {
				oldest, victim = e.lastUse, name
			}
		}
		delete(t.entries, victim)
	}
	e := &tenantEntry{cache: core.NewCache(), lastUse: t.clock}
	t.entries[tenant] = e
	return e.cache
}

// snapshot aggregates cache-effectiveness counters across all live
// namespaces (summation is order-independent).
func (t *tenantCaches) snapshot() CacheSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := CacheSnapshot{Tenants: len(t.entries)}
	for _, e := range t.entries {
		cs := e.cache.Stats()
		s.Hits += cs.Hits
		s.Misses += cs.Misses
		s.Entries += cs.Entries
	}
	if s.Hits+s.Misses > 0 {
		s.HitRate = float64(s.Hits) / float64(s.Hits+s.Misses)
	}
	return s
}
