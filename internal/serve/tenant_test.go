package serve

import (
	"encoding/json"
	"testing"
)

// TestTenantEvictionDeterministic pins the LRU eviction order: seed a
// full namespace map with a known access history, trigger evictions,
// and check exactly the least-recently-used tenants disappear. The
// collect-then-sort scan in get() keeps this provable under respdet;
// this test keeps it true under refactoring.
func TestTenantEvictionDeterministic(t *testing.T) {
	tc := newTenantCaches(3)
	has := func(name string) bool {
		tc.mu.Lock()
		defer tc.mu.Unlock()
		_, ok := tc.entries[name]
		return ok
	}
	live := func() int {
		tc.mu.Lock()
		defer tc.mu.Unlock()
		return len(tc.entries)
	}

	for _, name := range []string{"a", "b", "c"} {
		tc.get(name)
	}
	tc.get("a") // history: b < c < a

	tc.get("d") // evicts b, the LRU
	if has("b") {
		t.Fatal("b should have been evicted as the LRU tenant")
	}
	for _, name := range []string{"a", "c", "d"} {
		if !has(name) {
			t.Fatalf("tenant %q missing after evicting b", name)
		}
	}

	tc.get("e") // now c is the LRU
	if has("c") {
		t.Fatal("c should have been evicted as the LRU tenant")
	}
	if live() != 3 {
		t.Fatalf("live tenants = %d, want 3", live())
	}
}

// TestTenantEvictionKeepsReaccessed: re-accessing a tenant must refresh
// its LRU position, and a cache handle returned by get stays valid for
// the same tenant until eviction.
func TestTenantEvictionKeepsReaccessed(t *testing.T) {
	tc := newTenantCaches(2)
	has := func(name string) bool {
		tc.mu.Lock()
		defer tc.mu.Unlock()
		_, ok := tc.entries[name]
		return ok
	}

	first := tc.get("hot")
	tc.get("cold")
	if again := tc.get("hot"); again != first {
		t.Fatal("get returned a different cache for a live tenant")
	}
	tc.get("new") // cold is now the LRU
	if has("cold") {
		t.Fatal("cold should have been evicted")
	}
	if !has("hot") {
		t.Fatal("hot was re-accessed and must survive")
	}
}

// TestAppendJSONString is the unit-level regression for the bug
// FuzzPrioritizeRequest found: job names with invalid UTF-8 (legal in
// a DAGMan file) must still render as valid JSON, not as Go
// string-literal escapes like \xff.
func TestAppendJSONString(t *testing.T) {
	cases := []string{
		"plain",
		"",
		"\xff",                   // invalid UTF-8 — the fuzzer's crasher
		"a\xffb\xfe",             // embedded invalid bytes
		"quote\"back\\slash",     // JSON metacharacters
		"tab\tnl\ncr\rbel\a",     // control characters
		"\x1f\x7f\u0080",         // boundary: last control, DEL, U+0080
		"\u03c0\u2028\U0001F600", // multibyte, line separator, non-BMP
		"JOB a a.sub\nDONE b",    // realistic dag text
	}
	var buf []byte
	for _, in := range cases {
		buf = appendJSONString(buf[:0], in)
		var got string
		if err := json.Unmarshal(buf, &got); err != nil {
			t.Errorf("appendJSONString(%q) = %s: not valid JSON: %v", in, buf, err)
			continue
		}
		std, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("json.Marshal(%q): %v", in, err)
		}
		var want string
		if err := json.Unmarshal(std, &want); err != nil {
			t.Fatalf("round-tripping stdlib encoding of %q: %v", in, err)
		}
		if got != want {
			t.Errorf("appendJSONString(%q) decodes to %q, encoding/json round-trips to %q", in, got, want)
		}
	}
}
