// Package serve is the scheduling-as-a-service layer: a long-lived
// HTTP/JSON front end over the prio pipeline, built for many concurrent
// tenants posting DAGMan files at a shared daemon (cmd/priod) rather
// than invoking the CLI per workflow.
//
// # Request lifecycle
//
// Every scheduling request (POST /v1/prioritize, POST /v1/simulate)
// passes three stages:
//
//  1. Admission. A fixed pool of in-flight slots (Config.MaxInFlight)
//     bounds concurrent scheduling work. When the pool is full the
//     request enters a bounded accept queue (Config.MaxQueue); a full
//     queue is an immediate 429, and a queued request that cannot get a
//     slot within Config.QueueTimeout is shed with 429 + Retry-After
//     (deadline-based shedding: under overload the daemon serves fewer
//     requests well instead of all requests badly). Size limits are
//     enforced before scheduling: a body over Config.MaxDagBytes or a
//     dag over Config.MaxJobs jobs is a 413.
//  2. Scheduling. The body is parsed with dagman.Parse, frozen into the
//     immutable CSR dag core, and prioritized by core.PrioritizeOpts
//     with the tenant's cache namespace (below). dag.Frozen is
//     immutable and core.Cache is concurrency-safe, so requests share
//     nothing mutable and need no locks of their own.
//  3. Response. Request-scoped scratch (the priorities map, the
//     response buffer, the quoting buffer) comes from a sync.Pool —
//     the sim.Runner pooling idiom applied to serving — so steady-state
//     request cost stays allocation-lean; make bench-serve-smoke gates
//     allocs/op against results/serve-bench-baseline.json.
//
// # Cache namespacing
//
// Each tenant (the X-Prio-Tenant header; "default" when absent) gets
// its own core.Cache, layered over the existing component-schedule and
// transitive-reduction caches: repeated component shapes within one
// tenant's workflows are scheduled once, while tenants never share
// cache entries, so one tenant's workload cannot skew another's memory
// or hit rate. Namespaces are evicted least-recently-used beyond
// Config.MaxTenants. Caching never changes output: the memoized
// pipeline is bit-identical to the uncached one (see internal/core),
// and the differential tests in this package pin served bytes to the
// cmd/prio path on the paper dags.
//
// # Observability
//
// GET /metrics reports an expvar-style JSON snapshot: per-route request
// counts by status class, latency count/mean/p50/p90/p99/max over a
// sliding window of recent requests, shed and reject counters,
// aggregate cache hit rates across tenants, and process memory
// including RSS. cmd/prioload drives the daemon with N concurrent
// clients and folds this surface into BENCH_serve.json.
//
// docs/API.md documents the wire protocol (a test enumerates the mux
// and fails on undocumented routes); docs/OPERATIONS.md is the runbook.
package serve
