package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dagman"
	"repro/internal/workloads"
)

// cliInstrumented reproduces exactly what cmd/prio does with a DAGMan
// file on stdin→stdout: parse, freeze, prioritize with default options,
// instrument.
func cliInstrumented(t testing.TB, text string) string {
	t.Helper()
	f, err := dagman.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.Graph()
	if err != nil {
		t.Fatal(err)
	}
	sched := core.PrioritizeOpts(g, core.Options{})
	priorities := make(map[string]int, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		priorities[g.Name(v)] = sched.Priority[v]
	}
	return f.Instrument(priorities)
}

// TestServedBytesMatchCLI pins the daemon's format=dag responses to the
// cmd/prio pipeline byte-for-byte on the paper dags: serving through
// per-tenant caches, pooled scratch, and admission control must not
// perturb a single output byte.
func TestServedBytesMatchCLI(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			scale := 1
			if testing.Short() && name == "sdss" {
				scale = 8 // 48k jobs is the full-run case; keep -short fast
			}
			g, err := workloads.ByName(name, scale)
			if err != nil {
				t.Fatal(err)
			}
			text := dagman.FromGraph(g, nil).String()
			want := cliInstrumented(t, text)

			// Twice per dag: the second request exercises the warmed
			// tenant cache, which must be invisible in the bytes.
			for pass := 0; pass < 2; pass++ {
				resp := post(t, ts.URL+"/v1/prioritize?format=dag", text, nil)
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("pass %d: status %d", pass, resp.StatusCode)
				}
				if string(body) != want {
					t.Fatalf("pass %d: served dag differs from the cmd/prio output (%d vs %d bytes)",
						pass, len(body), len(want))
				}
			}
		})
	}
}

// TestConcurrentTenantsBitIdentical hammers one daemon from many
// goroutines across several tenants and dags and asserts every response
// matches the CLI bytes — run under -race (make check) this is the
// serving layer's isolation proof.
func TestConcurrentTenantsBitIdentical(t *testing.T) {
	type workItem struct{ text, want string }
	var items []workItem
	for _, tc := range []struct {
		name  string
		scale int
	}{{"airsn", 4}, {"inspiral", 8}, {"montage", 8}} {
		g, err := workloads.ByName(tc.name, tc.scale)
		if err != nil {
			t.Fatal(err)
		}
		text := dagman.FromGraph(g, nil).String()
		items = append(items, workItem{text: text, want: cliInstrumented(t, text)})
	}

	_, ts := newTestServer(t, Config{MaxInFlight: 4, MaxQueue: 64, QueueTimeout: time.Minute})
	const goroutines, iters, tenants = 12, 4, 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", gi%tenants)
			for it := 0; it < iters; it++ {
				item := items[(gi+it)%len(items)]
				req, err := http.NewRequest("POST", ts.URL+"/v1/prioritize?format=dag", strings.NewReader(item.text))
				if err != nil {
					errs[gi] = err
					return
				}
				req.Header.Set(TenantHeader, tenant)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs[gi] = err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs[gi] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[gi] = fmt.Errorf("goroutine %d iter %d: status %d", gi, it, resp.StatusCode)
					return
				}
				if string(body) != item.want {
					errs[gi] = fmt.Errorf("goroutine %d iter %d: response differs from the CLI bytes", gi, it)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
