package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzPrioritizeRequest hammers POST /v1/prioritize through the real
// mux with arbitrary bodies and checks the properties the respdet
// proof promises dynamically:
//
//   - determinism: the same request twice (the second hitting the
//     tenant cache) yields the same status and byte-identical body;
//   - every response, success or error, is well-formed: the JSON
//     document decodes and is internally consistent, the error
//     envelope is valid JSON;
//   - format=dag is a fixed point: feeding the instrumented DAGMan
//     text back through the handler reproduces it byte for byte
//     (re-prioritizing a prioritized workflow changes nothing).
func FuzzPrioritizeRequest(f *testing.F) {
	f.Add(fig3Dag, false)
	f.Add(fig3Dag, true)
	f.Add("JOB solo solo.sub\n", false)
	f.Add("", false)
	f.Add("JOB a a.sub\nPARENT a CHILD a\n", false)
	f.Add("JOB a a.sub\nPRIORITY a 9\n", true)
	f.Add("not a dag\n", true)

	s := New(Config{MaxJobs: 2000, MaxDagBytes: 1 << 20})
	h := s.Handler()
	do := func(body string, dagFormat bool) (int, []byte) {
		url := "/v1/prioritize"
		if dagFormat {
			url += "?format=dag"
		}
		req := httptest.NewRequest("POST", url, strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.Bytes()
	}

	f.Fuzz(func(t *testing.T, body string, dagFormat bool) {
		code1, resp1 := do(body, dagFormat)
		code2, resp2 := do(body, dagFormat)
		if code1 != code2 || !bytes.Equal(resp1, resp2) {
			t.Fatalf("same request, different responses: status %d vs %d\nfirst:  %q\nsecond: %q",
				code1, code2, resp1, resp2)
		}
		if code1 != http.StatusOK {
			if !json.Valid(resp1) {
				t.Fatalf("status %d with a non-JSON error body: %q", code1, resp1)
			}
			return
		}
		if dagFormat {
			code3, resp3 := do(string(resp1), true)
			if code3 != http.StatusOK {
				t.Fatalf("instrumented dag rejected on re-submit with %d: %q", code3, resp3)
			}
			if !bytes.Equal(resp3, resp1) {
				t.Fatalf("format=dag is not a fixed point:\nfirst:  %q\nsecond: %q", resp1, resp3)
			}
			return
		}
		var doc prioritizeJSON
		if err := json.Unmarshal(resp1, &doc); err != nil {
			t.Fatalf("200 response does not decode: %v\nbody: %q", err, resp1)
		}
		if len(doc.Order) != doc.Jobs || len(doc.Priorities) != doc.Jobs {
			t.Fatalf("document inconsistent: jobs=%d, %d order entries, %d priorities",
				doc.Jobs, len(doc.Order), len(doc.Priorities))
		}
	})
}
