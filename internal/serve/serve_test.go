package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"
)

// fig3Dag is the paper's worked 5-job example (Fig. 3): c has two
// children, a has one, so PRIO runs c first and c gets priority 5.
const fig3Dag = "JOB a a.sub\nJOB b b.sub\nJOB c c.sub\nJOB d d.sub\nJOB e e.sub\n" +
	"PARENT a CHILD b\nPARENT c CHILD d\nPARENT c CHILD e\n"

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string, header map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

// prioritizeJSON mirrors the handler's hand-written document.
type prioritizeJSON struct {
	Jobs       int            `json:"jobs"`
	Arcs       int            `json:"arcs"`
	Components int            `json:"components"`
	Shortcuts  int            `json:"shortcuts_removed"`
	Order      []string       `json:"order"`
	Priorities map[string]int `json:"priorities"`
}

func TestPrioritizeJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/prioritize", fig3Dag, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	got := decodeBody[prioritizeJSON](t, resp)
	if got.Jobs != 5 || got.Arcs != 3 {
		t.Fatalf("jobs=%d arcs=%d, want 5 and 3", got.Jobs, got.Arcs)
	}
	if len(got.Order) != 5 || got.Order[0] != "c" {
		t.Fatalf("order = %v, want c first (Fig. 3)", got.Order)
	}
	if got.Priorities["c"] != 5 {
		t.Fatalf("priority[c] = %d, want 5 (Fig. 3)", got.Priorities["c"])
	}
}

func TestPrioritizeErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxJobs: 3})
	url := ts.URL + "/v1/prioritize"
	for _, tc := range []struct {
		name, body, format string
		want               int
		errContains        string
	}{
		{"malformed JOB line", "JOB onlyname\n", "", http.StatusBadRequest, ""},
		{"cycle", "JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\nPARENT b CHILD a\n", "", http.StatusBadRequest, "cyclic"},
		{"undeclared dependency", "JOB a a.sub\nPARENT a CHILD ghost\n", "", http.StatusBadRequest, "undeclared"},
		{"splice", "SPLICE inner inner.dag\n", "", http.StatusBadRequest, "SPLICE"},
		{"oversized job count", "JOB a a.s\nJOB b b.s\nJOB c c.s\nJOB d d.s\n", "", http.StatusRequestEntityTooLarge, "limit is 3"},
		{"unknown format", fig3Dag, "?format=yaml", http.StatusBadRequest, "unknown format"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, url+tc.format, tc.body, nil)
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
			e := decodeBody[errorBody](t, resp)
			if e.Status != tc.want {
				t.Fatalf("error body status = %d, want %d", e.Status, tc.want)
			}
			if !strings.Contains(e.Error, tc.errContains) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.errContains)
			}
		})
	}
}

func TestOversizedBody413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDagBytes: 64})
	big := strings.Repeat("# padding line\n", 100) + fig3Dag
	resp := post(t, ts.URL+"/v1/prioritize", big, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestMethodAndRouteErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/prioritize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/prioritize: status = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope: status = %d, want 404", resp.StatusCode)
	}
}

func TestQueueFullImmediate429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1, QueueTimeout: time.Minute})
	// Occupy the only in-flight slot and the only queue seat, so the
	// next request is rejected without waiting.
	s.adm.slots <- struct{}{}
	s.adm.queue <- struct{}{}
	defer func() { <-s.adm.slots; <-s.adm.queue }()

	resp := post(t, ts.URL+"/v1/prioritize", fig3Dag, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	e := decodeBody[errorBody](t, resp)
	if !strings.Contains(e.Error, "queue full") {
		t.Fatalf("error = %q, want a queue-full message", e.Error)
	}
	if got := s.Metrics().Shed.QueueFull; got != 1 {
		t.Fatalf("shed.queue_full = %d, want 1", got)
	}
}

func TestDeadlineShed429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 4, QueueTimeout: 30 * time.Millisecond})
	// Occupy the slot: the request queues, waits out the deadline, and
	// is shed.
	s.adm.slots <- struct{}{}
	defer func() { <-s.adm.slots }()

	start := time.Now()
	resp := post(t, ts.URL+"/v1/prioritize", fig3Dag, nil)
	waited := time.Since(start)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	e := decodeBody[errorBody](t, resp)
	if !strings.Contains(e.Error, "shed") {
		t.Fatalf("error = %q, want a shed message", e.Error)
	}
	if waited < 30*time.Millisecond {
		t.Fatalf("shed after %v, before the 30ms deadline", waited)
	}
	snap := s.Metrics()
	if snap.Shed.Deadline != 1 {
		t.Fatalf("shed.deadline = %d, want 1", snap.Shed.Deadline)
	}
}

func TestMetricsSurface(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for i := 0; i < 2; i++ {
		resp := post(t, ts.URL+"/v1/prioritize", fig3Dag, nil)
		resp.Body.Close()
	}
	resp := post(t, ts.URL+"/v1/prioritize", "JOB broken\n", nil)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	snap := decodeBody[Snapshot](t, mresp)
	if len(snap.Requests) != len(s.Routes()) {
		t.Fatalf("metrics reports %d routes, server registers %d", len(snap.Requests), len(s.Routes()))
	}
	rt := snap.Requests[0]
	if rt.Route != "POST /v1/prioritize" {
		t.Fatalf("first route = %q", rt.Route)
	}
	if rt.Status.S2xx != 2 || rt.Status.S4xx != 1 {
		t.Fatalf("status counts 2xx=%d 4xx=%d, want 2 and 1", rt.Status.S2xx, rt.Status.S4xx)
	}
	if rt.Latency.Count != 3 || rt.Latency.P50NS <= 0 || rt.Latency.P99NS < rt.Latency.P50NS {
		t.Fatalf("latency = %+v, want count 3 and 0 < p50 <= p99", rt.Latency)
	}
	if snap.Cache.Tenants != 1 || snap.Cache.Misses == 0 {
		t.Fatalf("cache = %+v, want one tenant with misses recorded", snap.Cache)
	}
	if snap.Mem.RSSBytes == 0 || snap.Mem.Goroutines == 0 {
		t.Fatalf("mem = %+v, want nonzero rss and goroutines", snap.Mem)
	}
	if snap.UptimeSeconds <= 0 {
		t.Fatal("uptime not reported")
	}
}

func TestTenantNamespaces(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxTenants: 2})
	url := ts.URL + "/v1/prioritize"
	for _, tenant := range []string{"alice", "alice", "bob"} {
		resp := post(t, url, fig3Dag, map[string]string{TenantHeader: tenant})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant %s: status %d", tenant, resp.StatusCode)
		}
		resp.Body.Close()
	}
	snap := s.Metrics()
	if snap.Cache.Tenants != 2 {
		t.Fatalf("tenants = %d, want 2", snap.Cache.Tenants)
	}
	// alice's second identical dag must hit her warmed namespace.
	if snap.Cache.Hits == 0 {
		t.Fatalf("cache = %+v, want hits from the repeated tenant", snap.Cache)
	}
	// A third tenant evicts the least recently used namespace (alice).
	resp := post(t, url, fig3Dag, map[string]string{TenantHeader: "carol"})
	resp.Body.Close()
	if got := s.Metrics().Cache.Tenants; got != 2 {
		t.Fatalf("tenants after eviction = %d, want 2", got)
	}
}

func TestSimulate(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxReplications: 100})
	resp := post(t, ts.URL+"/v1/simulate?p=4&q=4&mu_bs=2&seed=7", fig3Dag, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	got := decodeBody[simResponse](t, resp)
	if got.Jobs != 5 || got.PolicyA != "prio" || got.PolicyB != "fifo" {
		t.Fatalf("response header = %+v", got)
	}
	if !got.ExecTime.Valid || got.ExecTime.Median <= 0 {
		t.Fatalf("exec_time = %+v, want a valid positive ratio", got.ExecTime)
	}

	// Ranker-tier families flow through the same factory grammar.
	resp = post(t, ts.URL+"/v1/simulate?p=4&q=4&mu_bs=2&seed=7&policy_a=heft&policy_b=graphene", fig3Dag, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ranker families: status = %d, want 200", resp.StatusCode)
	}
	if got := decodeBody[simResponse](t, resp); got.PolicyA != "heft" || got.PolicyB != "graphene" {
		t.Fatalf("ranker families: response header = %+v", got)
	}

	for _, tc := range []struct {
		name, query string
		want        int
	}{
		{"negative mu_bit", "?mu_bit=-1", http.StatusBadRequest},
		{"malformed p", "?p=x", http.StatusBadRequest},
		{"replication cap", "?p=20&q=20", http.StatusRequestEntityTooLarge},
		{"unknown policy", "?p=2&q=2&policy_a=banker", http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, ts.URL+"/v1/simulate"+tc.query, fig3Dag, nil)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

func TestWorkloadsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	wl := decodeBody[workloadsResponse](t, resp)
	if len(wl.Paper) != 4 || wl.Paper[0] != "airsn" {
		t.Fatalf("paper workloads = %v", wl.Paper)
	}
	if len(wl.Classic) == 0 || len(wl.Policies) == 0 {
		t.Fatalf("workloads response incomplete: %+v", wl)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", hresp.StatusCode)
	}
}

// TestRoutesDocumented enforces the docs/API.md contract in both
// directions: every route the server registers is documented, and every
// route heading in the document corresponds to a registered route.
func TestRoutesDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md must exist and document the HTTP API: %v", err)
	}
	s := New(Config{})
	text := string(doc)
	registered := make(map[string]bool)
	for _, rt := range s.Routes() {
		registered[rt] = true
		if !strings.Contains(text, "`"+rt+"`") {
			t.Errorf("route %q is served but not documented in docs/API.md", rt)
		}
	}
	headingRE := regexp.MustCompile("(?m)^###+ `((?:GET|POST|PUT|DELETE|PATCH) [^`]+)`")
	documented := 0
	for _, m := range headingRE.FindAllStringSubmatch(text, -1) {
		documented++
		if !registered[m[1]] {
			t.Errorf("docs/API.md documents %q, which the server does not register", m[1])
		}
	}
	if documented != len(s.Routes()) {
		t.Errorf("docs/API.md has %d route headings, server registers %d routes", documented, len(s.Routes()))
	}
}
