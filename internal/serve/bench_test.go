package serve

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dagman"
	"repro/internal/workloads"
)

// BenchmarkServePrioritize is the serving layer's allocation gate:
// sequential POST /v1/prioritize requests through the real mux (no
// network, httptest recorder), one warmed tenant namespace. make
// bench-serve-smoke pipes it through cmd/benchjson, which asserts
// allocs/op against results/serve-bench-baseline.json — pooled scratch
// and the tenant cache must keep steady-state request cost
// allocation-lean. The dag format measures the cmd/prio-equivalent
// path; json measures the structured API.
func BenchmarkServePrioritize(b *testing.B) {
	g, err := workloads.ByName("airsn", 1)
	if err != nil {
		b.Fatal(err)
	}
	text := dagman.FromGraph(g, nil).String()
	for _, format := range []string{"json", "dag"} {
		b.Run("airsn-"+format, func(b *testing.B) {
			s := New(Config{})
			h := s.Handler()
			url := "/v1/prioritize?format=" + format
			// Warm the tenant cache, the scratch pool, and the mux.
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", url, strings.NewReader(text)))
			if rec.Code != 200 {
				b.Fatalf("warmup status %d", rec.Code)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("POST", url, strings.NewReader(text)))
				if rec.Code != 200 {
					b.Fatalf("status %d", rec.Code)
				}
			}
		})
	}
}
