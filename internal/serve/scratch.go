package serve

import (
	"bytes"
	"sync"
)

// scratch is the request-scoped working set of the prioritize handler:
// the job-name→priority map handed to Instrument, the response buffer,
// and the JSON quoting scratch. Pooling it is the sim.Runner idiom
// applied to serving — in steady state a request reuses buffers already
// grown to its dag's high-water mark instead of reallocating them, and
// make bench-serve-smoke gates the resulting allocs/op.
type scratch struct {
	priorities map[string]int
	buf        bytes.Buffer
	qbuf       []byte // strconv.Append* scratch
}

// maxPooledBuf caps the response buffer a pooled scratch may retain.
// One SDSS-sized response (~2 MiB) is worth keeping warm; anything
// larger is dropped so a single huge dag cannot pin memory for the rest
// of the process lifetime.
const maxPooledBuf = 4 << 20

var scratchPool = sync.Pool{
	New: func() any {
		return &scratch{priorities: make(map[string]int), qbuf: make([]byte, 0, 64)}
	},
}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

func putScratch(s *scratch) {
	if s.buf.Cap() > maxPooledBuf {
		return
	}
	clear(s.priorities)
	s.buf.Reset()
	scratchPool.Put(s)
}
