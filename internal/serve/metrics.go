package serve

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// latWindowSize is the number of most-recent request latencies kept per
// route. Percentiles are computed over this sliding window, so /metrics
// reports the current serving regime rather than an all-time average
// that an old warmup phase would pollute.
const latWindowSize = 8192

// latencyWindow accumulates request latencies for one route: total
// count/sum/max since start, plus a ring buffer of the most recent
// samples for percentile estimation.
type latencyWindow struct {
	mu      sync.Mutex
	samples []float64 // guarded by mu (ring buffer, nanoseconds)
	next    int       // guarded by mu (ring write index once full)
	count   int64     // guarded by mu
	sum     float64   // guarded by mu
	max     float64   // guarded by mu
}

func (w *latencyWindow) observe(ns float64) {
	w.mu.Lock()
	if len(w.samples) < latWindowSize {
		w.samples = append(w.samples, ns)
	} else {
		w.samples[w.next] = ns
		w.next = (w.next + 1) % latWindowSize
	}
	w.count++
	w.sum += ns
	if ns > w.max {
		w.max = ns
	}
	w.mu.Unlock()
}

func (w *latencyWindow) snapshot() LatencySnapshot {
	w.mu.Lock()
	cp := append([]float64(nil), w.samples...)
	count, sum, max := w.count, w.sum, w.max
	w.mu.Unlock()
	s := LatencySnapshot{Count: count, MaxNS: max}
	if count > 0 {
		s.MeanNS = sum / float64(count)
	}
	if len(cp) > 0 {
		s.P50NS = stats.Percentile(cp, 50)
		s.P90NS = stats.Percentile(cp, 90)
		s.P99NS = stats.Percentile(cp, 99)
	}
	return s
}

// routeMetrics is the per-route slice of the metrics surface.
type routeMetrics struct {
	pattern string
	// classes counts responses by status class; index status/100
	// (classes[4] counts 4xx). Index 0 counts requests whose client
	// went away before a response was written.
	classes [6]atomic.Int64
	lat     latencyWindow
}

func (rm *routeMetrics) record(status int, elapsed time.Duration) {
	class := status / 100
	if class < 0 || class >= len(rm.classes) {
		class = 0
	}
	rm.classes[class].Add(1)
	rm.lat.observe(float64(elapsed.Nanoseconds()))
}

// metrics is the daemon-wide counter set behind GET /metrics. Routes
// are registered once at construction and only read afterwards, so the
// slice needs no lock.
type metrics struct {
	start         time.Time
	shedQueueFull atomic.Int64 // 429s from a full accept queue
	shedDeadline  atomic.Int64 // 429s from the queue-wait deadline
	clientGone    atomic.Int64 // requests abandoned by the client while queued
	routes        []*routeMetrics
}

func newMetrics(patterns []string) *metrics {
	m := &metrics{start: time.Now()}
	for _, p := range patterns {
		m.routes = append(m.routes, &routeMetrics{pattern: p})
	}
	return m
}

// route returns the per-route metrics for a registered pattern.
func (m *metrics) route(pattern string) *routeMetrics {
	for _, rm := range m.routes {
		if rm.pattern == pattern {
			return rm
		}
	}
	panic("serve: metrics for unregistered route " + pattern)
}

// Snapshot is the GET /metrics document. Field order (and therefore the
// serialized byte stream for a fixed state) is deterministic: routes
// appear in registration order and every map-free struct marshals in
// declaration order.
type Snapshot struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	InFlight      int             `json:"inflight"`
	Queued        int             `json:"queued"`
	Shed          ShedSnapshot    `json:"shed"`
	Requests      []RouteSnapshot `json:"requests"`
	Cache         CacheSnapshot   `json:"cache"`
	Mem           MemSnapshot     `json:"mem"`
}

// ShedSnapshot counts requests turned away by admission control.
type ShedSnapshot struct {
	// QueueFull counts immediate 429s (accept queue at capacity).
	QueueFull int64 `json:"queue_full"`
	// Deadline counts 429s shed after waiting QueueTimeout in the queue.
	Deadline int64 `json:"deadline"`
	// ClientGone counts requests whose client disconnected while queued.
	ClientGone int64 `json:"client_gone"`
}

// RouteSnapshot is one route's request counters and latency summary.
type RouteSnapshot struct {
	Route   string          `json:"route"`
	Status  StatusSnapshot  `json:"status"`
	Latency LatencySnapshot `json:"latency_ns"`
}

// StatusSnapshot counts responses by status class.
type StatusSnapshot struct {
	Aborted int64 `json:"aborted"` // no response written (client gone)
	S2xx    int64 `json:"2xx"`
	S3xx    int64 `json:"3xx"`
	S4xx    int64 `json:"4xx"`
	S5xx    int64 `json:"5xx"`
}

// LatencySnapshot summarizes a route's request latencies in
// nanoseconds; percentiles are over the sliding window of the last
// latWindowSize requests, count/mean/max over the process lifetime.
type LatencySnapshot struct {
	Count  int64   `json:"count"`
	MeanNS float64 `json:"mean"`
	P50NS  float64 `json:"p50"`
	P90NS  float64 `json:"p90"`
	P99NS  float64 `json:"p99"`
	MaxNS  float64 `json:"max"`
}

// CacheSnapshot aggregates the component-schedule caches across all
// live tenant namespaces.
type CacheSnapshot struct {
	Tenants int     `json:"tenants"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
	Entries int     `json:"entries"`
}

// MemSnapshot is the process memory surface: Go runtime numbers plus
// the operating system's resident set size.
type MemSnapshot struct {
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	SysBytes       uint64 `json:"sys_bytes"`
	RSSBytes       uint64 `json:"rss_bytes"`
	NumGC          uint32 `json:"num_gc"`
	Goroutines     int    `json:"goroutines"`
}

func (m *metrics) snapshot(adm *admission, caches *tenantCaches) Snapshot {
	s := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      adm.inFlight(),
		Queued:        adm.queued(),
		Shed: ShedSnapshot{
			QueueFull:  m.shedQueueFull.Load(),
			Deadline:   m.shedDeadline.Load(),
			ClientGone: m.clientGone.Load(),
		},
		Cache: caches.snapshot(),
	}
	for _, rm := range m.routes {
		s.Requests = append(s.Requests, RouteSnapshot{
			Route: rm.pattern,
			Status: StatusSnapshot{
				Aborted: rm.classes[0].Load(),
				S2xx:    rm.classes[2].Load(),
				S3xx:    rm.classes[3].Load(),
				S4xx:    rm.classes[4].Load(),
				S5xx:    rm.classes[5].Load(),
			},
			Latency: rm.lat.snapshot(),
		})
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.Mem = MemSnapshot{
		HeapAllocBytes: ms.HeapAlloc,
		SysBytes:       ms.Sys,
		RSSBytes:       readRSS(),
		NumGC:          ms.NumGC,
		Goroutines:     runtime.NumGoroutine(),
	}
	if s.Mem.RSSBytes == 0 {
		// No /proc (non-Linux): the runtime's OS reservation is the
		// closest portable stand-in.
		s.Mem.RSSBytes = ms.Sys
	}
	return s
}

// readRSS reads the resident set size from /proc/self/statm, returning
// 0 where that interface does not exist.
func readRSS() uint64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	f := strings.Fields(string(b))
	if len(f) < 2 {
		return 0
	}
	pages, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * uint64(os.Getpagesize())
}
