package serve

import (
	"context"
	"time"
)

// admitResult is the outcome of one admission attempt.
type admitResult int

const (
	// admitOK: a slot was acquired; the caller must release it.
	admitOK admitResult = iota
	// admitQueueFull: every slot was busy and the accept queue was at
	// capacity; the request is rejected immediately.
	admitQueueFull
	// admitDeadline: the request waited in the accept queue for the
	// full QueueTimeout without a slot freeing up and was shed.
	admitDeadline
	// admitCanceled: the client went away while the request was queued.
	admitCanceled
)

// admission is the daemon's backpressure mechanism: a fixed pool of
// in-flight slots bounds concurrent scheduling work, and a bounded
// accept queue with a deadline smooths bursts without letting latency
// grow without bound. Both channels are used as counting semaphores;
// len() on them is the (approximate) live occupancy reported by
// /metrics.
type admission struct {
	slots   chan struct{} // in-flight scheduling requests, cap MaxInFlight
	queue   chan struct{} // waiters beyond the slots, cap MaxQueue
	timeout time.Duration // max time a request may wait in the queue
}

func newAdmission(maxInFlight, maxQueue int, timeout time.Duration) *admission {
	return &admission{
		slots:   make(chan struct{}, maxInFlight),
		queue:   make(chan struct{}, maxQueue),
		timeout: timeout,
	}
}

// acquire tries to claim an in-flight slot, queueing for up to the
// admission timeout when all slots are busy. On admitOK the caller owns
// a slot and must call release.
func (a *admission) acquire(ctx context.Context) admitResult {
	select {
	case a.slots <- struct{}{}:
		return admitOK
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		return admitQueueFull
	}
	defer func() { <-a.queue }()
	t := time.NewTimer(a.timeout)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return admitOK
	case <-t.C:
		return admitDeadline
	case <-ctx.Done():
		return admitCanceled
	}
}

// release returns an in-flight slot claimed by acquire.
func (a *admission) release() { <-a.slots }

// inFlight is the number of requests currently holding a slot.
func (a *admission) inFlight() int { return len(a.slots) }

// queued is the number of requests currently waiting for a slot.
func (a *admission) queued() int { return len(a.queue) }
