// Package stats provides the statistical machinery of the paper's
// evaluation (Section 4.2): summary statistics, empirical sampling
// distributions (p samples, each the average of q measurements), and the
// trimmed ratio confidence intervals used in Figures 6-9.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN for empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs (average of middle two for even length),
// or NaN for empty input. xs is not modified.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary collects the descriptive statistics reported for each
// experiment cell.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Med, Max float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		s.Mean, s.Std, s.Min, s.Med, s.Max = nan, nan, nan, nan, nan
		return s
	}
	s.Mean = Mean(xs)
	s.Std = StdDev(xs)
	s.Med = Median(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.3g med=%.4g min=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Med, s.Min, s.Max)
}

// Accumulator is a Welford online mean/variance accumulator, used where
// storing every measurement would be wasteful.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of accumulated values.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (NaN when empty).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Variance returns the running population variance (NaN when empty).
func (a *Accumulator) Variance() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.m2 / float64(a.n)
}

// StdDev returns the running population standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }
