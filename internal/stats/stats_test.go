package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if !math.IsNaN(Variance(nil)) {
		t.Fatal("Variance(nil) should be NaN")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd Median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even Median = %v", got)
	}
	if got := Median([]float64{7}); got != 7 {
		t.Fatalf("singleton Median = %v", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("Median(nil) should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {12.5, 15},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// input must not be mutated
	if xs[0] != 10 || xs[4] != 50 {
		t.Fatal("Percentile mutated input")
	}
}

func TestPercentilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p>100")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Med != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	if !almostEq(s.Std, math.Sqrt(2), 1e-12) {
		t.Fatalf("Std = %v", s.Std)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Fatalf("empty Summary = %+v", empty)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	r := rng.New(17)
	var acc Accumulator
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := r.Normal(5, 2)
		acc.Add(x)
		xs = append(xs, x)
	}
	if acc.N() != 1000 {
		t.Fatalf("N = %d", acc.N())
	}
	if !almostEq(acc.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("acc mean %v != batch %v", acc.Mean(), Mean(xs))
	}
	if !almostEq(acc.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("acc var %v != batch %v", acc.Variance(), Variance(xs))
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if !math.IsNaN(acc.Mean()) || !math.IsNaN(acc.Variance()) || !math.IsNaN(acc.StdDev()) {
		t.Fatal("empty accumulator should be NaN")
	}
}

func TestRatioIntervalConstant(t *testing.T) {
	num := []float64{2, 2, 2}
	den := []float64{4, 4, 4}
	ci := RatioInterval(num, den, 95)
	if !ci.Valid {
		t.Fatal("interval should be valid")
	}
	if ci.Lo != 0.5 || ci.Hi != 0.5 || ci.Median != 0.5 || ci.Mean != 0.5 {
		t.Fatalf("CI = %+v", ci)
	}
	if ci.Std != 0 {
		t.Fatalf("Std = %v, want 0", ci.Std)
	}
}

func TestRatioIntervalZeroDenominator(t *testing.T) {
	ci := RatioInterval([]float64{1, 2}, []float64{3, 0}, 95)
	if ci.Valid {
		t.Fatal("zero denominator must invalidate the interval (paper Section 4.2)")
	}
	if ci.String() == "" {
		t.Fatal("invalid CI should still describe itself")
	}
}

func TestRatioIntervalEmpty(t *testing.T) {
	if RatioInterval(nil, []float64{1}, 95).Valid {
		t.Fatal("empty numerator should be invalid")
	}
	if RatioInterval([]float64{1}, nil, 95).Valid {
		t.Fatal("empty denominator should be invalid")
	}
}

func TestRatioIntervalTrimming(t *testing.T) {
	// 100 numerator samples 1..100, denominator {1}: ratios are 1..100.
	num := make([]float64, 100)
	for i := range num {
		num[i] = float64(i + 1)
	}
	ci := RatioInterval(num, []float64{1}, 95)
	if !ci.Valid {
		t.Fatal("should be valid")
	}
	// 2.5% of 100 = 2 values trimmed from each side: kept 3..98.
	if ci.Lo != 3 || ci.Hi != 98 {
		t.Fatalf("CI = [%v, %v], want [3, 98]", ci.Lo, ci.Hi)
	}
	if ci.Median != 50.5 {
		t.Fatalf("Median = %v, want 50.5", ci.Median)
	}
}

func TestRatioIntervalContainsTruth(t *testing.T) {
	// num ~ N(0.9, 0.02), den ~ N(1.0, 0.02): the true ratio 0.9 should
	// lie well inside a 95% CI built from the sampling distributions.
	r := rng.New(3)
	num := make([]float64, 200)
	den := make([]float64, 200)
	for i := range num {
		num[i] = r.Normal(0.9, 0.02)
		den[i] = r.Normal(1.0, 0.02)
	}
	ci := RatioInterval(num, den, 95)
	if !ci.Valid || ci.Lo > 0.9 || ci.Hi < 0.9 {
		t.Fatalf("CI %+v does not contain 0.9", ci)
	}
	if ci.Hi >= 1.0 {
		t.Fatalf("CI %+v should exclude 1.0 for a 10%% gap", ci)
	}
}

func TestRatioIntervalConfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for conf=0")
		}
	}()
	RatioInterval([]float64{1}, []float64{1}, 0)
}

func TestSamplingDistribution(t *testing.T) {
	raw := []float64{1, 3, 5, 7, 2, 4}
	got := SamplingDistribution(raw, 3, 2)
	want := []float64{2, 6, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SamplingDistribution = %v, want %v", got, want)
		}
	}
}

func TestSamplingDistributionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { SamplingDistribution([]float64{1, 2}, 0, 2) },
		func() { SamplingDistribution([]float64{1, 2}, 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: CI bounds bracket the median, and widening confidence widens
// the interval.
func TestQuickCIOrdering(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(40)
		num := make([]float64, n)
		den := make([]float64, n)
		for i := 0; i < n; i++ {
			num[i] = 0.5 + r.Float64()
			den[i] = 0.5 + r.Float64()
		}
		c95 := RatioInterval(num, den, 95)
		c80 := RatioInterval(num, den, 80)
		if !c95.Valid || !c80.Valid {
			return false
		}
		return c95.Lo <= c95.Median && c95.Median <= c95.Hi &&
			c95.Lo <= c80.Lo && c80.Hi <= c95.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(0, 10)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
