package stats

import (
	"fmt"
	"math"
	"sort"
)

// RatioCI is the result of the Section 4.2 confidence-interval procedure
// for a ratio of two means (e.g. mean PRIO execution time over mean FIFO
// execution time). Valid is false when the interval cannot be reported
// (the paper omits the interval whenever a denominator sample is zero).
type RatioCI struct {
	Lo, Hi    float64 // trimmed confidence interval bounds
	Median    float64 // median of the empirical ratio distribution
	Mean, Std float64 // moments of the empirical ratio distribution
	Valid     bool
}

func (c RatioCI) String() string {
	if !c.Valid {
		return "ratio: (no confidence interval: zero denominator)"
	}
	return fmt.Sprintf("median=%.4f ci=[%.4f, %.4f] mean=%.4f std=%.4f",
		c.Median, c.Lo, c.Hi, c.Mean, c.Std)
}

// RatioInterval implements the paper's procedure: given the empirical
// sampling distribution num of the numerator statistic (p samples, each
// an average of q measurements) and the distribution den of the
// denominator statistic, it forms all p_num x p_den pairwise ratios,
// removes the (100-conf)/2 percent smallest and largest values, and
// reports the surviving range as the confidence interval, together with
// the median, mean, and standard deviation of the full ratio
// distribution. conf is in percent (the paper uses 95).
//
// If any denominator sample is zero the interval is not reported
// (Valid=false), matching "Whenever we encounter y = 0, we do not report
// any confidence interval."
func RatioInterval(num, den []float64, conf float64) RatioCI {
	if len(num) == 0 || len(den) == 0 {
		return RatioCI{}
	}
	if conf <= 0 || conf >= 100 {
		panic(fmt.Sprintf("stats: confidence %v out of (0,100)", conf))
	}
	for _, y := range den {
		if y == 0 {
			return RatioCI{}
		}
	}
	ratios := make([]float64, 0, len(num)*len(den))
	for _, x := range num {
		for _, y := range den {
			ratios = append(ratios, x/y)
		}
	}
	sort.Float64s(ratios)
	tail := (100 - conf) / 2 / 100
	cut := int(math.Floor(tail * float64(len(ratios))))
	// Guard degenerate tiny distributions: always keep at least one value.
	if 2*cut >= len(ratios) {
		cut = (len(ratios) - 1) / 2
	}
	kept := ratios[cut : len(ratios)-cut]
	return RatioCI{
		Lo:     kept[0],
		Hi:     kept[len(kept)-1],
		Median: Median(ratios),
		Mean:   Mean(ratios),
		Std:    StdDev(ratios),
		Valid:  true,
	}
}

// SamplingDistribution groups q raw measurements at a time into p sample
// means, the paper's construction of an empirical sampling distribution
// of the mean. raw must contain exactly p*q values laid out sample-major
// (the first q values form sample 0, and so on).
func SamplingDistribution(raw []float64, p, q int) []float64 {
	if p <= 0 || q <= 0 {
		panic(fmt.Sprintf("stats: invalid sampling shape p=%d q=%d", p, q))
	}
	if len(raw) != p*q {
		panic(fmt.Sprintf("stats: raw has %d values, want p*q=%d", len(raw), p*q))
	}
	out := make([]float64, p)
	for i := 0; i < p; i++ {
		out[i] = Mean(raw[i*q : (i+1)*q])
	}
	return out
}
