package dagman

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// SubmitFile is a parsed Condor job submit description file (JSDF): a
// sequence of "attribute = value" lines and commands such as "queue".
type SubmitFile struct {
	lines []string
}

// ParseSubmit reads a JSDF.
func ParseSubmit(r io.Reader) (*SubmitFile, error) {
	s := &SubmitFile{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		s.lines = append(s.lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dagman: read submit file: %w", err)
	}
	return s, nil
}

// ParseSubmitFile reads a JSDF from disk.
func ParseSubmitFile(path string) (*SubmitFile, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dagman: %w", err)
	}
	defer fh.Close()
	return ParseSubmit(fh)
}

// Attribute returns the value of the named attribute (case-insensitive),
// if set.
func (s *SubmitFile) Attribute(name string) (string, bool) {
	val, _, ok := s.findAttribute(name)
	return val, ok
}

func (s *SubmitFile) findAttribute(name string) (value string, lineIdx int, ok bool) {
	for i, ln := range s.lines {
		k, v, isAttr := splitAttr(ln)
		if isAttr && strings.EqualFold(k, name) {
			return v, i, true
		}
	}
	return "", -1, false
}

func splitAttr(ln string) (key, value string, ok bool) {
	trimmed := strings.TrimSpace(ln)
	if trimmed == "" || strings.HasPrefix(trimmed, "#") {
		return "", "", false
	}
	eq := strings.Index(trimmed, "=")
	if eq <= 0 {
		return "", "", false
	}
	return strings.TrimSpace(trimmed[:eq]), strings.TrimSpace(trimmed[eq+1:]), true
}

// InstrumentPriority adds the line the prio tool adds to every JSDF:
//
//	priority = $(jobpriority)
//
// If a priority attribute already exists its value is replaced;
// otherwise the line is inserted before the first queue command (or
// appended when there is none). The call is idempotent.
func (s *SubmitFile) InstrumentPriority() {
	const assignment = "priority = $(jobpriority)"
	if _, idx, ok := s.findAttribute("priority"); ok {
		s.lines[idx] = assignment
		return
	}
	for i, ln := range s.lines {
		first := strings.Fields(strings.TrimSpace(ln))
		if len(first) > 0 && strings.EqualFold(first[0], "queue") {
			s.lines = append(s.lines, "")
			copy(s.lines[i+1:], s.lines[i:len(s.lines)-1])
			s.lines[i] = assignment
			return
		}
	}
	s.lines = append(s.lines, assignment)
}

// String renders the JSDF text.
func (s *SubmitFile) String() string {
	var b strings.Builder
	for _, ln := range s.lines {
		b.WriteString(ln)
		b.WriteByte('\n')
	}
	return b.String()
}
