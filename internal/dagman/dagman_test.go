package dagman

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
)

// fig3Text is the DAGMan input file of Fig. 3 (file IV.dag).
const fig3Text = `Job a a.sub
Job b b.sub
Job c c.sub
Job d d.sub
Job e e.sub
Parent a Child b
Parent c Child d e
`

func TestParseFig3(t *testing.T) {
	f, err := Parse(strings.NewReader(fig3Text))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Jobs) != 5 {
		t.Fatalf("jobs = %d", len(f.Jobs))
	}
	if j, ok := f.Job("c"); !ok || j.SubmitFile != "c.sub" {
		t.Fatalf("Job(c) = %+v, %v", j, ok)
	}
	if _, ok := f.Job("zzz"); ok {
		t.Fatal("undeclared job found")
	}
	if len(f.Deps) != 3 {
		t.Fatalf("deps = %v", f.Deps)
	}
	g, err := f.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 || g.NumArcs() != 3 {
		t.Fatalf("graph %d nodes %d arcs", g.NumNodes(), g.NumArcs())
	}
	if !g.HasArc(g.IndexOf("c"), g.IndexOf("e")) {
		t.Fatal("arc c->e missing")
	}
}

func TestParseCaseInsensitiveAndComments(t *testing.T) {
	text := `# a comment
JOB x x.sub
job y y.sub DIR /tmp NOOP

PARENT x CHILD y
RETRY x 3
`
	f, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Jobs) != 2 || len(f.Deps) != 1 {
		t.Fatalf("parsed %d jobs, %d deps", len(f.Jobs), len(f.Deps))
	}
	if j, _ := f.Job("y"); len(j.Extra) != 3 || j.Extra[0] != "DIR" {
		t.Fatalf("extra tokens = %v", j.Extra)
	}
	// Unknown and comment lines round-trip verbatim.
	if got := f.String(); got != text {
		t.Fatalf("round trip:\n%q\nwant\n%q", got, text)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"job missing submit": "Job a\n",
		"duplicate job":      "Job a a.sub\nJob a b.sub\n",
		"parent no child":    "Job a a.sub\nParent a\n",
		"child empty":        "Job a a.sub\nParent a Child\n",
		"vars short":         "Job a a.sub\nVars a\n",
	}
	for name, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestGraphErrors(t *testing.T) {
	f, err := Parse(strings.NewReader("Job a a.sub\nParent a Child ghost\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Graph(); err == nil {
		t.Fatal("undeclared dependency accepted")
	}
	f2, err := Parse(strings.NewReader("Job a a.sub\nJob b b.sub\nParent a Child b\nParent b Child a\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Graph(); err == nil {
		t.Fatal("cyclic dependencies accepted")
	}
}

func TestGraphDuplicateDepsCollapsed(t *testing.T) {
	f, err := Parse(strings.NewReader("Job a a.sub\nJob b b.sub\nParent a Child b\nParent a Child b\n"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumArcs() != 1 {
		t.Fatalf("arcs = %d, want 1", g.NumArcs())
	}
}

func TestMultiParentChild(t *testing.T) {
	f, err := Parse(strings.NewReader("Job a a.sub\nJob b b.sub\nJob c c.sub\nJob d d.sub\nParent a b Child c d\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Deps) != 4 {
		t.Fatalf("deps = %v", f.Deps)
	}
}

// TestFig3Instrument reproduces the paper's Fig. 3 end to end: parse the
// file, prioritize with the heuristic, and check both the PRIO schedule
// and the instrumented output.
func TestFig3Instrument(t *testing.T) {
	f, err := Parse(strings.NewReader(fig3Text))
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.Graph()
	if err != nil {
		t.Fatal(err)
	}
	s := core.Prioritize(g)
	prios := make(map[string]int)
	for v := 0; v < g.NumNodes(); v++ {
		prios[g.Name(v)] = s.Priority[v]
	}
	if prios["c"] != 5 {
		t.Fatalf("priority(c) = %d, want 5 (Fig. 3)", prios["c"])
	}
	out := f.Instrument(prios)
	for _, want := range []string{
		`Vars a jobpriority="4"`,
		`Vars b jobpriority="3"`,
		`Vars c jobpriority="5"`,
		`Vars d jobpriority="2"`,
		`Vars e jobpriority="1"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("instrumented file missing %q:\n%s", want, out)
		}
	}
	// Instrumented output must still parse and describe the same dag.
	f2, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("instrumented output unparseable: %v", err)
	}
	g2, err := f2.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 5 || g2.NumArcs() != 3 {
		t.Fatal("instrumentation changed the dag")
	}
}

func TestInstrumentReplacesExisting(t *testing.T) {
	text := "Job a a.sub\nVars a jobpriority=\"99\"\n"
	f, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	out := f.Instrument(map[string]int{"a": 7})
	if strings.Contains(out, "99") {
		t.Fatalf("old priority kept:\n%s", out)
	}
	if !strings.Contains(out, `jobpriority="7"`) {
		t.Fatalf("new priority missing:\n%s", out)
	}
	if strings.Count(out, "jobpriority") != 1 {
		t.Fatalf("duplicate jobpriority lines:\n%s", out)
	}
}

func TestInstrumentKeepsUnrelatedVars(t *testing.T) {
	text := "Job a a.sub\nVars a cpus=\"4\"\n"
	f, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	out := f.Instrument(map[string]int{"a": 1})
	if !strings.Contains(out, `cpus="4"`) {
		t.Fatalf("unrelated VARS dropped:\n%s", out)
	}
	if !strings.Contains(out, `jobpriority="1"`) {
		t.Fatalf("priority missing:\n%s", out)
	}
}

func TestInstrumentUnknownJobAppended(t *testing.T) {
	f, err := Parse(strings.NewReader("Job a a.sub\n"))
	if err != nil {
		t.Fatal(err)
	}
	out := f.Instrument(map[string]int{"a": 2, "ghost": 1})
	if !strings.Contains(out, `Vars ghost jobpriority="1"`) {
		t.Fatalf("missing appended vars:\n%s", out)
	}
}

func TestFromGraphRoundTrip(t *testing.T) {
	gb := dag.New()
	a, b, c := gb.AddNode("a"), gb.AddNode("b"), gb.AddNode("c")
	gb.MustAddArc(a, b)
	gb.MustAddArc(a, c)
	g := gb.MustFreeze()
	f := FromGraph(g, nil)
	if j, ok := f.Job("a"); !ok || j.SubmitFile != "a.sub" {
		t.Fatalf("Job(a) = %+v", j)
	}
	g2, err := f.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 3 || g2.NumArcs() != 2 {
		t.Fatal("round trip lost structure")
	}
	if g2.IndexOf("a") != a || g2.IndexOf("c") != c {
		t.Fatal("node order not preserved")
	}
	f2 := FromGraph(g, func(name string) string { return "shared.sub" })
	if j, _ := f2.Job("b"); j.SubmitFile != "shared.sub" {
		t.Fatal("custom submit file ignored")
	}
}

func TestSubmitParseAndAttribute(t *testing.T) {
	text := `executable = /bin/work
arguments = -n 1
log = job.log
queue
`
	s, err := ParseSubmit(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Attribute("executable"); !ok || v != "/bin/work" {
		t.Fatalf("executable = %q, %v", v, ok)
	}
	if v, ok := s.Attribute("ARGUMENTS"); !ok || v != "-n 1" {
		t.Fatalf("case-insensitive lookup failed: %q", v)
	}
	if _, ok := s.Attribute("priority"); ok {
		t.Fatal("phantom priority")
	}
}

func TestSubmitInstrumentBeforeQueue(t *testing.T) {
	text := "executable = w\nqueue\n"
	s, err := ParseSubmit(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	s.InstrumentPriority()
	want := "executable = w\npriority = $(jobpriority)\nqueue\n"
	if s.String() != want {
		t.Fatalf("got:\n%q\nwant:\n%q", s.String(), want)
	}
	// idempotent
	s.InstrumentPriority()
	if s.String() != want {
		t.Fatalf("not idempotent:\n%q", s.String())
	}
}

func TestSubmitInstrumentReplacesPriority(t *testing.T) {
	s, err := ParseSubmit(strings.NewReader("priority = 3\nqueue\n"))
	if err != nil {
		t.Fatal(err)
	}
	s.InstrumentPriority()
	if v, _ := s.Attribute("priority"); v != "$(jobpriority)" {
		t.Fatalf("priority = %q", v)
	}
	if strings.Count(s.String(), "priority =") != 1 {
		t.Fatalf("duplicate priority lines:\n%s", s.String())
	}
}

func TestSubmitInstrumentNoQueue(t *testing.T) {
	s, err := ParseSubmit(strings.NewReader("executable = w\n"))
	if err != nil {
		t.Fatal(err)
	}
	s.InstrumentPriority()
	if v, ok := s.Attribute("priority"); !ok || v != "$(jobpriority)" {
		t.Fatalf("priority = %q, %v", v, ok)
	}
}

func TestSplitAttrEdgeCases(t *testing.T) {
	for _, ln := range []string{"", "  ", "# comment", "= nothing", "queue"} {
		if _, _, ok := splitAttr(ln); ok {
			t.Errorf("splitAttr(%q) accepted", ln)
		}
	}
	k, v, ok := splitAttr("  request_memory =  2 GB ")
	if !ok || k != "request_memory" || v != "2 GB" {
		t.Fatalf("splitAttr = %q %q %v", k, v, ok)
	}
}
