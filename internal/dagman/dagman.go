// Package dagman reads and writes Condor DAGMan input files and job
// submit description files (JSDFs), and instruments them with job
// priorities the way the prio tool does (Section 3.2): a
//
//	VARS <job> jobpriority="<n>"
//
// line per job in the DAGMan file, and a
//
//	priority = $(jobpriority)
//
// attribute in each JSDF. The indirection through the jobpriority macro
// is deliberate — a single JSDF may be shared by jobs of several DAGMan
// files needing different priorities.
package dagman

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"unicode"

	"repro/internal/dag"
)

// Job is one JOB statement.
type Job struct {
	Name       string
	SubmitFile string
	// Extra preserves trailing tokens (DIR <d>, NOOP, DONE).
	Extra []string
}

// Dep is one parent -> child dependency.
type Dep struct{ Parent, Child string }

// lineKind tags a preserved input line.
type lineKind int

const (
	lineOther lineKind = iota // comments, blanks, CONFIG, RETRY, ...
	lineJob                   // JOB statement; jobIdx set
	lineDep                   // PARENT ... CHILD ...
	lineVars                  // VARS statement; varsJob set
)

type line struct {
	raw     string
	kind    lineKind
	jobIdx  int
	varsJob string
}

// File is a parsed DAGMan input file. It preserves enough of the
// original text to write an instrumented copy that differs only by the
// added or updated priority lines.
type File struct {
	Jobs []Job
	Deps []Dep
	// Splices lists SPLICE statements; resolve them with Flatten before
	// building the dependency graph.
	Splices []Splice
	lines   []line
	index   map[string]int // job name -> Jobs index
	// fieldsBuf is addLine's reusable tokenization scratch; any fields
	// that outlive the line (job names, Extra tails) are retained as
	// substrings of the input or copied out.
	fieldsBuf []string
}

// Parse reads a DAGMan input file. The whole input is read into one
// string and every line, job name, and submit-file reference is a
// substring of it, so parsing a file of L lines costs O(log L)
// allocations beyond the retained Jobs/Deps/lines slices rather than a
// line copy plus a token slice per line.
func Parse(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dagman: read: %w", err)
	}
	text := string(data)
	f := &File{index: make(map[string]int)}
	lineNo := 0
	for start := 0; start < len(text); {
		var raw string
		if end := strings.IndexByte(text[start:], '\n'); end < 0 {
			raw = text[start:]
			start = len(text)
		} else {
			raw = text[start : start+end]
			start += end + 1
		}
		// Like bufio.ScanLines, a \r\n terminator counts as a plain \n.
		raw = strings.TrimSuffix(raw, "\r")
		lineNo++
		if err := f.addLine(raw, lineNo); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// ParseFile reads a DAGMan input file from disk.
func ParseFile(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dagman: %w", err)
	}
	defer fh.Close()
	return Parse(fh)
}

// appendFields splits s around runs of white space (as unicode.IsSpace
// defines it, matching strings.Fields) into dst, which is returned. The
// fields are substrings of s.
func appendFields(dst []string, s string) []string {
	start := -1
	for i, r := range s {
		if unicode.IsSpace(r) {
			if start >= 0 {
				dst = append(dst, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		dst = append(dst, s[start:])
	}
	return dst
}

// cloneTail copies the Extra tail of a statement out of the reusable
// field buffer; nil when there are no trailing tokens.
func cloneTail(fields []string) []string {
	if len(fields) == 0 {
		return nil
	}
	return append([]string(nil), fields...)
}

func (f *File) addLine(raw string, lineNo int) error {
	fields := appendFields(f.fieldsBuf[:0], raw)
	f.fieldsBuf = fields
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		f.lines = append(f.lines, line{raw: raw})
		return nil
	}
	switch strings.ToUpper(fields[0]) {
	case "JOB":
		if len(fields) < 3 {
			return fmt.Errorf("dagman: line %d: JOB needs a name and a submit file", lineNo)
		}
		name := fields[1]
		if _, dup := f.index[name]; dup {
			return fmt.Errorf("dagman: line %d: duplicate job %q", lineNo, name)
		}
		for _, s := range f.Splices {
			if s.Name == name {
				return fmt.Errorf("dagman: line %d: job %q collides with a splice name", lineNo, name)
			}
		}
		f.index[name] = len(f.Jobs)
		f.Jobs = append(f.Jobs, Job{Name: name, SubmitFile: fields[2], Extra: cloneTail(fields[3:])})
		f.lines = append(f.lines, line{raw: raw, kind: lineJob, jobIdx: len(f.Jobs) - 1})
	case "PARENT":
		childAt := -1
		for i, tok := range fields {
			if strings.EqualFold(tok, "CHILD") {
				childAt = i
				break
			}
		}
		if childAt < 2 || childAt == len(fields)-1 {
			return fmt.Errorf("dagman: line %d: PARENT ... CHILD ... malformed", lineNo)
		}
		parents := fields[1:childAt]
		children := fields[childAt+1:]
		for _, p := range parents {
			for _, c := range children {
				f.Deps = append(f.Deps, Dep{Parent: p, Child: c})
			}
		}
		f.lines = append(f.lines, line{raw: raw, kind: lineDep})
	case "VARS":
		if len(fields) < 3 {
			return fmt.Errorf("dagman: line %d: VARS needs a job and an assignment", lineNo)
		}
		f.lines = append(f.lines, line{raw: raw, kind: lineVars, varsJob: fields[1]})
	case "SPLICE":
		return f.parseSplice(fields, raw, lineNo)
	default:
		// RETRY, SCRIPT, CONFIG, DOT, MAXJOBS, PRIORITY, ... preserved.
		f.lines = append(f.lines, line{raw: raw})
	}
	return nil
}

// Job returns the named job, if declared.
func (f *File) Job(name string) (Job, bool) {
	i, ok := f.index[name]
	if !ok {
		return Job{}, false
	}
	return f.Jobs[i], true
}

// Graph builds the dependency dag: one node per JOB in declaration
// order, one arc per PARENT/CHILD pair. Dependencies naming undeclared
// jobs are errors; duplicate dependencies are tolerated (DAGMan accepts
// them) and collapsed.
func (f *File) Graph() (*dag.Frozen, error) {
	if len(f.Splices) > 0 {
		return nil, fmt.Errorf("dagman: file contains %d unresolved SPLICE statements; call Flatten first", len(f.Splices))
	}
	b := dag.NewWithCapacity(len(f.Jobs))
	for _, j := range f.Jobs {
		b.AddNode(j.Name)
	}
	for _, d := range f.Deps {
		u, v := b.IndexOf(d.Parent), b.IndexOf(d.Child)
		if u < 0 {
			return nil, fmt.Errorf("dagman: dependency names undeclared job %q", d.Parent)
		}
		if v < 0 {
			return nil, fmt.Errorf("dagman: dependency names undeclared job %q", d.Child)
		}
		if b.HasArc(u, v) {
			continue
		}
		if err := b.AddArc(u, v); err != nil {
			return nil, fmt.Errorf("dagman: %w", err)
		}
	}
	g, err := b.Freeze()
	if err != nil {
		return nil, fmt.Errorf("dagman: dependencies are cyclic: %w", err)
	}
	return g, nil
}

// Instrument returns the text of the DAGMan file with a
// VARS <job> jobpriority="<n>" line for every job in priorities.
// Existing jobpriority VARS lines are replaced in place; jobs without an
// existing line get one immediately after their JOB statement, which is
// where Fig. 3 shows them.
func (f *File) Instrument(priorities map[string]int) string {
	covered := make(map[string]bool, len(priorities))
	// One pass up front over the VARS lines: which jobs already carry a
	// jobpriority attribute somewhere in the file. Scanning per JOB
	// line instead made Instrument quadratic in file length — tens of
	// seconds on the 48k-job SDSS dag, dominating the instrumented
	// parse→schedule→write pipeline.
	hasPriority := make(map[string]bool)
	for _, ln := range f.lines {
		if ln.kind == lineVars && strings.Contains(ln.raw, "jobpriority") {
			hasPriority[ln.varsJob] = true
		}
	}
	var b strings.Builder
	for _, ln := range f.lines {
		switch ln.kind {
		case lineVars:
			if p, ok := priorities[ln.varsJob]; ok && strings.Contains(ln.raw, "jobpriority") {
				fmt.Fprintf(&b, "Vars %s jobpriority=\"%d\"\n", ln.varsJob, p)
				covered[ln.varsJob] = true
				continue
			}
			b.WriteString(ln.raw)
			b.WriteByte('\n')
		case lineJob:
			b.WriteString(ln.raw)
			b.WriteByte('\n')
			name := f.Jobs[ln.jobIdx].Name
			if p, ok := priorities[name]; ok && !covered[name] && !hasPriority[name] {
				fmt.Fprintf(&b, "Vars %s jobpriority=\"%d\"\n", name, p)
				covered[name] = true
			}
		default:
			b.WriteString(ln.raw)
			b.WriteByte('\n')
		}
	}
	// Jobs named in priorities but absent from the file are appended so
	// the output is at least self-consistent; callers normally derive
	// priorities from this very file, making this a no-op.
	var missing []string
	for name := range priorities {
		if _, declared := f.index[name]; declared {
			continue
		}
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(&b, "Vars %s jobpriority=\"%d\"\n", name, priorities[name])
	}
	return b.String()
}

// String reproduces the file text as parsed.
func (f *File) String() string {
	var b strings.Builder
	for _, ln := range f.lines {
		b.WriteString(ln.raw)
		b.WriteByte('\n')
	}
	return b.String()
}

// FromGraph renders a dag as a DAGMan input file, one JOB per node (in
// node order, so parsing the result reproduces the node numbering) and
// one PARENT/CHILD line per node with children. submitFile names each
// job's JSDF; if nil, "<name>.sub" is used.
func FromGraph(g *dag.Frozen, submitFile func(name string) string) *File {
	if submitFile == nil {
		submitFile = func(name string) string { return name + ".sub" }
	}
	var b strings.Builder
	for v := 0; v < g.NumNodes(); v++ {
		fmt.Fprintf(&b, "Job %s %s\n", g.Name(v), submitFile(g.Name(v)))
	}
	for v := 0; v < g.NumNodes(); v++ {
		children := g.Children(v)
		if len(children) == 0 {
			continue
		}
		fmt.Fprintf(&b, "Parent %s Child", g.Name(v))
		for _, c := range children {
			fmt.Fprintf(&b, " %s", g.Name(int(c)))
		}
		b.WriteByte('\n')
	}
	f, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		panic(fmt.Sprintf("dagman: FromGraph produced unparseable text: %v", err))
	}
	return f
}
