package dagman

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzParse hammers the DAGMan parser with arbitrary input: it must
// never panic, and any file it accepts must round-trip through String
// to an equivalent parse (same jobs, same dependency count).
func FuzzParse(f *testing.F) {
	f.Add("Job a a.sub\nParent a Child b\n")
	f.Add(fig3Text)
	f.Add("# comment only\n\n")
	f.Add("Splice s other.dag\nJob x x.sub\nParent s Child x\n")
	f.Add("Vars a key=\"v\"\nJOB a a.sub\nRETRY a 2\nPARENT a b CHILD c d e\n")
	f.Add("job A 1 DIR /x NOOP DONE\nparent A child A\n")
	f.Fuzz(func(t *testing.T, input string) {
		file, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		again, err := Parse(strings.NewReader(file.String()))
		if err != nil {
			t.Fatalf("accepted file failed to re-parse: %v\ninput: %q", err, input)
		}
		if len(again.Jobs) != len(file.Jobs) || len(again.Deps) != len(file.Deps) || len(again.Splices) != len(file.Splices) {
			t.Fatalf("round trip changed shape: %d/%d jobs, %d/%d deps",
				len(file.Jobs), len(again.Jobs), len(file.Deps), len(again.Deps))
		}
		// Building the graph must never panic either (errors are fine;
		// Freeze validates acyclicity internally).
		if len(file.Splices) == 0 {
			if g, err := file.Graph(); err == nil && g.NumNodes() != len(file.Jobs) {
				t.Fatalf("graph has %d nodes for %d jobs", g.NumNodes(), len(file.Jobs))
			}
		}
	})
}

// FuzzParseSubmit does the same for the JSDF parser and its
// instrumentation.
func FuzzParseSubmit(f *testing.F) {
	f.Add("executable = w\nqueue\n")
	f.Add("priority = 4\n")
	f.Add("# c\n = broken\nQUEUE 10\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ParseSubmit(strings.NewReader(input))
		if err != nil {
			return
		}
		s.InstrumentPriority()
		v, ok := s.Attribute("priority")
		if !ok || v != "$(jobpriority)" {
			t.Fatalf("instrumentation failed on %q: %q %v", input, v, ok)
		}
		before := s.String()
		s.InstrumentPriority()
		if s.String() != before {
			t.Fatalf("instrumentation not idempotent on %q", input)
		}
	})
}

// FuzzParseDAGMan is the full round-trip target: any input the parser
// accepts must re-parse from its own String output to a byte-identical
// file with identical jobs, dependencies and splices. Together with
// FuzzParse's shape check this pins the rewrite path: an instrumented
// copy differs from its input only by the priority lines prio adds.
func FuzzParseDAGMan(f *testing.F) {
	f.Add("Job a a.sub\nJob b b.sub\nParent a Child b\n")
	f.Add(fig3Text)
	f.Add("JOB A a.sub DIR /tmp NOOP\nVars A k=\"v\" k2=\"w\"\nRETRY A 3\nPARENT A CHILD A\n")
	f.Add("Splice inner inner.dag\nJob out out.sub\nParent inner Child out\n# trailing comment")
	f.Add("\tJob  q\t q.sub  \n\nPriority q 7\n")
	f.Fuzz(func(t *testing.T, input string) {
		file, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		text := file.String()
		again, err := Parse(strings.NewReader(text))
		if err != nil {
			t.Fatalf("accepted file failed to re-parse: %v\nwritten: %q", err, text)
		}
		if got := again.String(); got != text {
			t.Fatalf("write is not a fixed point:\nfirst:  %q\nsecond: %q", text, got)
		}
		if !reflect.DeepEqual(again.Jobs, file.Jobs) {
			t.Fatalf("round trip changed jobs: %v -> %v", file.Jobs, again.Jobs)
		}
		if !reflect.DeepEqual(again.Deps, file.Deps) {
			t.Fatalf("round trip changed deps: %v -> %v", file.Deps, again.Deps)
		}
		if !reflect.DeepEqual(again.Splices, file.Splices) {
			t.Fatalf("round trip changed splices: %v -> %v", file.Splices, again.Splices)
		}
	})
}
