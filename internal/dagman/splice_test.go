package dagman

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// memLoader serves splice files from a map.
func memLoader(files map[string]string) func(string) (*File, error) {
	return func(name string) (*File, error) {
		text, ok := files[name]
		if !ok {
			return nil, os.ErrNotExist
		}
		return Parse(strings.NewReader(text))
	}
}

const innerDiamond = `Job s s.sub
Job l l.sub
Job r r.sub
Job t t.sub
Parent s Child l r
Parent l r Child t
`

func TestSpliceParse(t *testing.T) {
	f, err := Parse(strings.NewReader("Splice inner diamond.dag\nJob pre pre.sub\nParent pre Child inner\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Splices) != 1 || f.Splices[0].Name != "inner" || f.Splices[0].File != "diamond.dag" {
		t.Fatalf("splices = %+v", f.Splices)
	}
	if _, err := f.Graph(); err == nil {
		t.Fatal("Graph on unflattened file must fail")
	}
}

func TestSpliceParseErrors(t *testing.T) {
	for name, text := range map[string]string{
		"missing file":    "Splice x\n",
		"dup splice":      "Splice x a.dag\nSplice x b.dag\n",
		"job then splice": "Job x x.sub\nSplice x a.dag\n",
		"splice then job": "Splice x a.dag\nJob x x.sub\n",
	} {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFlattenExpandsJobsAndDeps(t *testing.T) {
	outer := `Job pre pre.sub
Job post post.sub
Splice d diamond.dag
Parent pre Child d
Parent d Child post
`
	f, err := Parse(strings.NewReader(outer))
	if err != nil {
		t.Fatal(err)
	}
	flat, err := f.Flatten(memLoader(map[string]string{"diamond.dag": innerDiamond}))
	if err != nil {
		t.Fatal(err)
	}
	g, err := flat.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 6 {
		t.Fatalf("flattened nodes = %d, want 6", g.NumNodes())
	}
	// pre feeds the splice's source, the splice's sink feeds post
	if !g.HasArc(g.IndexOf("pre"), g.IndexOf("d+s")) {
		t.Fatal("pre -> d+s missing")
	}
	if !g.HasArc(g.IndexOf("d+t"), g.IndexOf("post")) {
		t.Fatal("d+t -> post missing")
	}
	// internal dependencies preserved under the prefix
	if !g.HasArc(g.IndexOf("d+s"), g.IndexOf("d+l")) || !g.HasArc(g.IndexOf("d+r"), g.IndexOf("d+t")) {
		t.Fatal("internal splice arcs missing")
	}
}

func TestFlattenMultiSourceSinkFanout(t *testing.T) {
	inner := "Job a a.sub\nJob b b.sub\nJob c c.sub\nJob d d.sub\nParent a Child c\nParent b Child d\n"
	outer := "Job x x.sub\nJob y y.sub\nSplice s two.dag\nParent x Child s\nParent s Child y\n"
	f, _ := Parse(strings.NewReader(outer))
	flat, err := f.Flatten(memLoader(map[string]string{"two.dag": inner}))
	if err != nil {
		t.Fatal(err)
	}
	g, err := flat.Graph()
	if err != nil {
		t.Fatal(err)
	}
	// x must feed both sources a and b; both sinks c and d must feed y
	for _, want := range [][2]string{{"x", "s+a"}, {"x", "s+b"}, {"s+c", "y"}, {"s+d", "y"}} {
		if !g.HasArc(g.IndexOf(want[0]), g.IndexOf(want[1])) {
			t.Fatalf("missing arc %s -> %s", want[0], want[1])
		}
	}
}

func TestFlattenNested(t *testing.T) {
	leaf := "Job z z.sub\n"
	mid := "Job m m.sub\nSplice lf leaf.dag\nParent m Child lf\n"
	outer := "Splice md mid.dag\nJob end end.sub\nParent md Child end\n"
	f, _ := Parse(strings.NewReader(outer))
	flat, err := f.Flatten(memLoader(map[string]string{"leaf.dag": leaf, "mid.dag": mid}))
	if err != nil {
		t.Fatal(err)
	}
	g, err := flat.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.IndexOf("md+lf+z") < 0 {
		t.Fatalf("nested splice job missing; jobs: %v", g.SortedNames())
	}
	if !g.HasArc(g.IndexOf("md+lf+z"), g.IndexOf("end")) {
		t.Fatal("nested sink must feed end")
	}
}

func TestFlattenCycleDetected(t *testing.T) {
	a := "Splice b b.dag\nJob ja ja.sub\n"
	b := "Splice a a.dag\nJob jb jb.sub\n"
	f, _ := Parse(strings.NewReader(a))
	_, err := f.Flatten(memLoader(map[string]string{"a.dag": a, "b.dag": b}))
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("splice cycle not detected: %v", err)
	}
}

func TestFlattenMissingFile(t *testing.T) {
	f, _ := Parse(strings.NewReader("Splice s nope.dag\n"))
	if _, err := f.Flatten(memLoader(nil)); err == nil {
		t.Fatal("missing splice file accepted")
	}
}

func TestFlattenCarriesVars(t *testing.T) {
	inner := "Job a a.sub\nVars a site=\"east\"\n"
	outer := "Splice s inner.dag\nJob o o.sub\nVars o site=\"west\"\n"
	f, _ := Parse(strings.NewReader(outer))
	flat, err := f.Flatten(memLoader(map[string]string{"inner.dag": inner}))
	if err != nil {
		t.Fatal(err)
	}
	text := flat.String()
	if !strings.Contains(text, `Vars s+a site="east"`) {
		t.Fatalf("inner VARS not prefixed:\n%s", text)
	}
	if !strings.Contains(text, `Vars o site="west"`) {
		t.Fatalf("outer VARS lost:\n%s", text)
	}
}

func TestFlattenNoSplicesIsIdentity(t *testing.T) {
	f, _ := Parse(strings.NewReader("Job a a.sub\n"))
	flat, err := f.Flatten(memLoader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if flat != f {
		t.Fatal("flatten of plain file should return the file unchanged")
	}
}

func TestLoadSpliceFromDisk(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "inner.dag"), []byte(innerDiamond), 0o644); err != nil {
		t.Fatal(err)
	}
	outerPath := filepath.Join(dir, "outer.dag")
	if err := os.WriteFile(outerPath, []byte("Splice d inner.dag\nJob end end.sub\nParent d Child end\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := ParseFile(outerPath)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := f.Flatten(LoadSplice(dir))
	if err != nil {
		t.Fatal(err)
	}
	g, err := flat.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %d, want 5", g.NumNodes())
	}
}

func TestFlattenCyclicInnerDag(t *testing.T) {
	inner := "Job a a.sub\nJob b b.sub\nParent a Child b\nParent b Child a\n"
	f, _ := Parse(strings.NewReader("Splice s inner.dag\n"))
	if _, err := f.Flatten(memLoader(map[string]string{"inner.dag": inner})); err == nil {
		t.Fatal("cyclic inner dag accepted")
	}
}

func TestFlattenSpliceToSpliceDependency(t *testing.T) {
	inner := "Job a a.sub\nJob b b.sub\nParent a Child b\n"
	outer := "Splice s1 inner.dag\nSplice s2 inner.dag\nParent s1 Child s2\n"
	f, _ := Parse(strings.NewReader(outer))
	flat, err := f.Flatten(memLoader(map[string]string{"inner.dag": inner}))
	if err != nil {
		t.Fatal(err)
	}
	g, err := flat.Graph()
	if err != nil {
		t.Fatal(err)
	}
	// s1's sink (s1+b) must feed s2's source (s2+a)
	if !g.HasArc(g.IndexOf("s1+b"), g.IndexOf("s2+a")) {
		t.Fatalf("splice-to-splice dependency missing; arcs: %v", g.Arcs())
	}
}
