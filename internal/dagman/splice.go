package dagman

import (
	"fmt"
	"path/filepath"
	"strings"
)

// Splice is a SPLICE statement: an entire DAGMan file inlined under a
// name, the mechanism large workflows (like the paper's SDSS runs) use
// to compose sub-dags. Jobs of the spliced dag appear as
// "<name>+<job>"; a dependency naming the splice itself attaches to its
// sources (as a child) or sinks (as a parent), matching Condor's
// semantics.
type Splice struct {
	Name string
	File string
	// Extra preserves trailing tokens (DIR <d>).
	Extra []string
}

// parseSplice extends addLine; called from addLine for SPLICE keywords.
func (f *File) parseSplice(fields []string, raw string, lineNo int) error {
	if len(fields) < 3 {
		return fmt.Errorf("dagman: line %d: SPLICE needs a name and a file", lineNo)
	}
	name := fields[1]
	if _, dup := f.index[name]; dup {
		return fmt.Errorf("dagman: line %d: splice %q collides with a job name", lineNo, name)
	}
	for _, s := range f.Splices {
		if s.Name == name {
			return fmt.Errorf("dagman: line %d: duplicate splice %q", lineNo, name)
		}
	}
	f.Splices = append(f.Splices, Splice{Name: name, File: fields[2], Extra: cloneTail(fields[3:])})
	f.lines = append(f.lines, line{raw: raw})
	return nil
}

// Flatten resolves every SPLICE recursively and returns an equivalent
// plain DAGMan file: spliced jobs renamed "<splice>+<job>", their
// internal dependencies and jobpriority-style VARS carried over, and
// outer dependencies that name a splice expanded to its sources or
// sinks. load maps a splice file reference to its parsed File (use
// LoadSplice for disk access); it is called once per SPLICE statement.
func (f *File) Flatten(load func(file string) (*File, error)) (*File, error) {
	return f.flatten(load, nil)
}

func (f *File) flatten(load func(string) (*File, error), stack []string) (*File, error) {
	if len(f.Splices) == 0 {
		return f, nil
	}
	var b strings.Builder

	// Track, per splice, its flattened sources and sinks for
	// dependency expansion.
	type spliceInfo struct{ sources, sinks []string }
	infos := make(map[string]spliceInfo, len(f.Splices))

	// Outer jobs keep their names and VARS lines.
	for _, ln := range f.lines {
		if ln.kind == lineJob || ln.kind == lineVars {
			b.WriteString(ln.raw)
			b.WriteByte('\n')
		}
	}

	for _, sp := range f.Splices {
		for _, anc := range stack {
			if anc == sp.File {
				return nil, fmt.Errorf("dagman: splice cycle through %q", sp.File)
			}
		}
		inner, err := load(sp.File)
		if err != nil {
			return nil, fmt.Errorf("dagman: splice %s: %w", sp.Name, err)
		}
		flat, err := inner.flatten(load, append(stack, sp.File))
		if err != nil {
			return nil, fmt.Errorf("dagman: splice %s: %w", sp.Name, err)
		}
		g, err := flat.Graph()
		if err != nil {
			return nil, fmt.Errorf("dagman: splice %s: %w", sp.Name, err)
		}
		prefix := sp.Name + "+"
		for _, j := range flat.Jobs {
			fmt.Fprintf(&b, "Job %s %s", prefix+j.Name, j.SubmitFile)
			for _, e := range j.Extra {
				fmt.Fprintf(&b, " %s", e)
			}
			b.WriteByte('\n')
		}
		for _, ln := range flat.lines {
			if ln.kind == lineVars {
				fields := strings.Fields(ln.raw)
				fmt.Fprintf(&b, "Vars %s %s\n", prefix+fields[1], strings.Join(fields[2:], " "))
			}
		}
		for _, d := range flat.Deps {
			fmt.Fprintf(&b, "Parent %s Child %s\n", prefix+d.Parent, prefix+d.Child)
		}
		var info spliceInfo
		for _, v := range g.Sources() {
			info.sources = append(info.sources, prefix+g.Name(int(v)))
		}
		for _, v := range g.Sinks() {
			info.sinks = append(info.sinks, prefix+g.Name(int(v)))
		}
		infos[sp.Name] = info
	}

	// Outer dependencies, expanding splice references.
	for _, d := range f.Deps {
		parents := []string{d.Parent}
		if info, ok := infos[d.Parent]; ok {
			parents = info.sinks
		}
		children := []string{d.Child}
		if info, ok := infos[d.Child]; ok {
			children = info.sources
		}
		for _, p := range parents {
			for _, c := range children {
				fmt.Fprintf(&b, "Parent %s Child %s\n", p, c)
			}
		}
	}

	return Parse(strings.NewReader(b.String()))
}

// LoadSplice returns a loader for Flatten that reads splice files from
// disk, resolving relative references against dir.
func LoadSplice(dir string) func(file string) (*File, error) {
	return func(file string) (*File, error) {
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		return ParseFile(file)
	}
}
