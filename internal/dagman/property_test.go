package dagman

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/rng"
)

func randomDag(r *rng.Source, n int, p float64) *dag.Frozen {
	g := dag.New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("job%d", i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.MustAddArc(i, j)
			}
		}
	}
	return g.MustFreeze()
}

// Property: FromGraph -> String -> Parse -> Graph is the identity on
// structure for random dags.
func TestQuickRoundTripPreservesStructure(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := randomDag(r, 1+r.Intn(30), 0.2)
		f1 := FromGraph(g, nil)
		f2, err := Parse(strings.NewReader(f1.String()))
		if err != nil {
			return false
		}
		g2, err := f2.Graph()
		if err != nil {
			return false
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumArcs() != g.NumArcs() {
			return false
		}
		for _, a := range g.Arcs() {
			if !g2.HasArc(a.From, a.To) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: instrumenting with the prio priorities keeps the file
// parseable with the same dag, assigns every declared job exactly one
// jobpriority line, and is idempotent.
func TestQuickInstrumentSound(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := randomDag(r, 1+r.Intn(20), 0.25)
		file := FromGraph(g, nil)
		s := core.Prioritize(g)
		prios := make(map[string]int, g.NumNodes())
		for v := 0; v < g.NumNodes(); v++ {
			prios[g.Name(v)] = s.Priority[v]
		}
		text := file.Instrument(prios)
		if strings.Count(text, "jobpriority") != g.NumNodes() {
			return false
		}
		f2, err := Parse(strings.NewReader(text))
		if err != nil {
			return false
		}
		g2, err := f2.Graph()
		if err != nil || g2.NumArcs() != g.NumArcs() {
			return false
		}
		// idempotence
		text2 := f2.Instrument(prios)
		return strings.Count(text2, "jobpriority") == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
