package dagman_test

import (
	"fmt"
	"strings"

	"repro/internal/dagman"
)

func ExampleParse() {
	f, _ := dagman.Parse(strings.NewReader(`Job a a.sub
Job b b.sub
Parent a Child b
`))
	g, _ := f.Graph()
	fmt.Println("jobs:", g.NumNodes(), "deps:", g.NumArcs())
	// Output:
	// jobs: 2 deps: 1
}

func ExampleFile_Instrument() {
	f, _ := dagman.Parse(strings.NewReader("Job a a.sub\nJob b b.sub\nParent a Child b\n"))
	fmt.Print(f.Instrument(map[string]int{"a": 2, "b": 1}))
	// Output:
	// Job a a.sub
	// Vars a jobpriority="2"
	// Job b b.sub
	// Vars b jobpriority="1"
	// Parent a Child b
}

func ExampleSubmitFile_InstrumentPriority() {
	s, _ := dagman.ParseSubmit(strings.NewReader("executable = work\nqueue\n"))
	s.InstrumentPriority()
	fmt.Print(s.String())
	// Output:
	// executable = work
	// priority = $(jobpriority)
	// queue
}

func ExampleFile_Flatten() {
	inner := "Job x x.sub\nJob y y.sub\nParent x Child y\n"
	outer, _ := dagman.Parse(strings.NewReader("Splice sub inner.dag\nJob last last.sub\nParent sub Child last\n"))
	flat, _ := outer.Flatten(func(string) (*dagman.File, error) {
		return dagman.Parse(strings.NewReader(inner))
	})
	g, _ := flat.Graph()
	fmt.Println(g.SortedNames())
	// Output:
	// [last sub+x sub+y]
}
