// Package clean holds //prio:nobce functions for which the compiler
// proves every index: the analyzer must stay silent.
package clean

// sum: the loop condition i < len(xs) is the textbook provable form.
//
//prio:nobce
func sum(xs []int) int {
	t := 0
	for i := 0; i < len(xs); i++ {
		t += xs[i]
	}
	return t
}

// masked: after the length pin, the masked index is provably in
// bounds — the ring-buffer shape the simulator's fast kernel uses.
//
//prio:nobce
func masked(ring []uint64, i uint) uint64 {
	if len(ring) != 64 {
		panic("clean: ring must be 64 words")
	}
	return ring[i&63]
}

var (
	_ = sum
	_ = masked
)
