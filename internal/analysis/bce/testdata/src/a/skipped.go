//go:build neverbuild

// The build tag keeps this file out of the compiler-fact build while
// the analysistest harness still parses it: an annotation the compiler
// never judged must be reported as unproved, not silently passed.

package a

//prio:nobce
func skipped(xs []int) int { // want `skipped is annotated //prio:nobce but the compiler emitted no record for it`
	return xs[0]
}

var _ = skipped
