// Package a exercises the bce analyzer with annotated functions whose
// bounds checks the compiler's prover cannot eliminate.
package a

// index carries an unprovable bounds check: nothing relates i to
// len(xs).
//
//prio:nobce
func index(xs []int, i int) int { // want `index is annotated //prio:nobce but the compiler could not eliminate a bounds check at a\.go:\d+`
	return xs[i]
}

// twice carries two independent unprovable checks, each reported.
//
//prio:nobce
func twice(xs []int, i, j int) int { // want `could not eliminate a bounds check` `could not eliminate a bounds check`
	return xs[i] + xs[j]
}

// guarded is clean: the uint compare dominates both accesses, so no
// diagnostic — the analyzer flags sites, not annotations.
//
//prio:nobce
func guarded(xs []int, i int) int {
	if uint(i) >= uint(len(xs)) {
		return 0
	}
	return xs[i]
}

var (
	_ = index
	_ = twice
	_ = guarded
)
