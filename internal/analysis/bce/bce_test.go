package bce_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/bce"
)

func TestBCE(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), bce.Analyzer, "a", "clean")
}
