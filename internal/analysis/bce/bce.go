// Package bce proves the `//prio:nobce` contract with the compiler's
// own verdict: a function carrying the annotation must compile with
// zero bounds checks. The annotation marks the simulator's drain loops
// and the bitset word scans, whose throughput claims assume the
// compiler's bounds-check-elimination prover discharges every index —
// a refactor that quietly reintroduces a Found IsInBounds site would
// not change any abstract property, so only the machine's diagnostic
// stream (-d=ssa/check_bce, see repro/internal/analysis/compilerfact)
// can pin it.
//
// The contract covers the code the compiler emits for the function,
// not just its source text: a bounds check inside an inlined callee is
// re-attributed to the caller's call-site line and counts against the
// caller's annotation. Functions inlined into a //prio:nobce function
// must therefore be bounds-check-free themselves.
//
// A nobce function for which the compiler emitted no inline decision
// was not part of the build (a _test.go file, or a file excluded by
// build constraints) — that is reported as a violation, never treated
// as clean: the annotation demands a proof, and no compilation means
// no proof.
package bce

import (
	"fmt"
	"go/ast"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/compilerfact"
	"repro/internal/analysis/pragma"
)

var Analyzer = &analysis.Analyzer{
	Name: "bce",
	Doc: "check that //prio:nobce functions compile with zero bounds checks " +
		"(inlined callee sites included)",
	RunProgram:         run,
	NeedsCompilerFacts: true,
}

// Annotation is the marker comment, exported for the driver's docs.
const Annotation = "prio:nobce"

func run(pass *analysis.ProgramPass) error {
	cf := pass.Compiler
	if cf == nil {
		return fmt.Errorf("bce: no compiler facts attached (driver must run the toolchain first)")
	}
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !pragma.Has(fd.Doc, Annotation) {
					continue
				}
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				if _, compiled := cf.Decisions[compilerfact.FileLine{File: start.Filename, Line: start.Line}]; !compiled {
					pass.Reportf(fd.Name.Pos(),
						"%s is annotated //prio:nobce but the compiler emitted no record for it — the file was not part of the compiler-fact build, so the contract is unproved",
						fd.Name.Name)
					continue
				}
				for _, b := range cf.BoundsIn(start.Filename, start.Line, start.Column, end.Line, end.Column) {
					pass.Reportf(fd.Name.Pos(),
						"%s is annotated //prio:nobce but the compiler could not eliminate a bounds check at %s:%d",
						fd.Name.Name, filepath.Base(b.File), b.Line)
				}
			}
		}
	}
	return nil
}
