package errpropagation_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errpropagation"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errpropagation.Analyzer, "a", "clean")
}
