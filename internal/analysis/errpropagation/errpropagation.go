// Package errpropagation flags dropped errors on the paths where a
// swallowed error silently corrupts a user's submit files: calls into
// repro/internal/dagman, package os, and Close/Flush/Sync methods whose
// final error result is discarded. See repro/internal/analysis for the
// rationale and the deliberate `defer f.Close()` exemption.
package errpropagation

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errpropagation",
	Doc: "flag discarded error results from repro/internal/dagman, package os, " +
		"and Close/Flush/Sync methods (deferred calls exempt)",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			// The deferred/spawned call itself is exempt by policy, but
			// a function-literal body (and any literals in the
			// arguments) is ordinary code and stays checked.
			var call *ast.CallExpr
			if d, ok := n.(*ast.DeferStmt); ok {
				call = d.Call
			} else {
				call = n.(*ast.GoStmt).Call
			}
			if lit, ok := call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, visit)
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, visit)
			}
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name, ok := watchedErrCall(pass, call); ok {
					pass.Reportf(call.Pos(), "error result of %s is dropped; propagate or log it", name)
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, n)
		}
		return true
	}
	for _, file := range pass.Files {
		// Test files are exempt by policy: there a dropped error fails
		// the test (usually via a nil-pointer panic on the next line)
		// rather than silently corrupting a user's submit files, and
		// flagging every fixture write would drown the signal. The
		// determinism and RNG analyzers still cover tests.
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, visit)
	}
	return nil, nil
}

// checkAssign flags watched calls whose error result lands in the blank
// identifier.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	// Multi-value form: x, _ := f() — one call on the right.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		name, ok := watchedErrCall(pass, call)
		if !ok {
			return
		}
		if isBlank(as.Lhs[len(as.Lhs)-1]) {
			pass.Reportf(call.Pos(), "error result of %s is assigned to _; propagate or log it", name)
		}
		return
	}
	// Parallel form: _ = f(), possibly mixed with other assignments.
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if name, ok := watchedErrCall(pass, call); ok {
			pass.Reportf(call.Pos(), "error result of %s is assigned to _; propagate or log it", name)
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// watchedErrCall reports whether call is in the watched set and its
// final result is an error. The second result names the callee for the
// diagnostic.
func watchedErrCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !isErrorType(last) {
		return "", false
	}
	if sig.Recv() != nil {
		switch fn.Name() {
		case "Close", "Flush", "Sync":
			return fn.Name(), true
		}
		return "", false
	}
	if fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "repro/internal/dagman":
		return "dagman." + fn.Name(), true
	case "os":
		return "os." + fn.Name(), true
	}
	return "", false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
