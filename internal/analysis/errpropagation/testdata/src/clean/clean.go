// Package clean propagates every watched error; the errpropagation
// analyzer must stay silent.
package clean

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/dagman"
)

func rewrite(path string) error {
	f, err := dagman.ParseFile(path)
	if err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if err := os.WriteFile(path, []byte(f.String()), 0o644); err != nil {
		return fmt.Errorf("rewrite: %w", err)
	}
	return nil
}

func parse(text string) (*dagman.File, error) {
	return dagman.Parse(strings.NewReader(text))
}

func closeChecked(fh *os.File) error {
	return fh.Close()
}
