// Package a exercises the errpropagation analyzer: discarded errors
// from repro/internal/dagman, package os, and Close/Flush/Sync methods
// are flagged; handled errors and deferred cleanup are not.
package a

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"repro/internal/dagman"
)

func statementDrop(path string) {
	dagman.ParseFile(path)                 // want `error result of dagman\.ParseFile is dropped`
	os.WriteFile(path, []byte("x"), 0o644) // want `error result of os\.WriteFile is dropped`
	os.Remove(path)                        // want `error result of os\.Remove is dropped`
}

func blankDrop(path string) *dagman.File {
	f, _ := dagman.ParseFile(path) // want `error result of dagman\.ParseFile is assigned to _`
	_ = os.Remove(path)            // want `error result of os\.Remove is assigned to _`
	return f
}

func methodDrop(fh *os.File, w *bufio.Writer) {
	fh.Close() // want `error result of Close is dropped`
	w.Flush()  // want `error result of Flush is dropped`
	fh.Sync()  // want `error result of Sync is dropped`
}

func handled(path string) error {
	f, err := dagman.ParseFile(path)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, []byte(f.String()), 0o644); err != nil {
		return err
	}
	return nil
}

func deferredCleanupIsExempt(path string) (*dagman.SubmitFile, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return dagman.ParseSubmit(fh)
}

func deferredClosureBodyIsChecked(path string) {
	defer func() {
		os.Remove(path) // want `error result of os\.Remove is dropped`
	}()
}

func goroutineBodyIsChecked(path string) {
	go func() {
		os.Remove(path) // want `error result of os\.Remove is dropped`
	}()
}

func unwatchedCalleesAreFine(s string) {
	fmt.Println(s)             // fmt drops are conventional
	strings.NewReader(s).Len() // no error result at all
}
