// Package pragma centralizes the //prio: annotation vocabulary the
// analyzers enforce. Every contract annotation in the tree is a doc
// comment of the exact form
//
//	//prio:noalloc
//
// on a function declaration; this package owns the parsing (shared by
// every analyzer) and the registry of recognized names (consumed by
// the pragmacheck analyzer, which flags typos and misplaced pragmas
// that would otherwise silently enforce nothing).
package pragma

import (
	"go/ast"
	"strings"
)

// Prefix is the marker every contract annotation starts with, after
// the comment slashes.
const Prefix = "prio:"

// Known maps each recognized pragma to the analyzer that enforces it.
// A pragma outside this map is a typo: it reads like a contract but no
// analyzer will ever check it.
var Known = map[string]string{
	"prio:noalloc":       "noalloc",
	"prio:pure":          "purity",
	"prio:deterministic": "respdet",
	"prio:nobce":         "bce",
	"prio:inline":        "inline",
	"prio:devirt":        "devirt",
}

// Of returns the pragma lines of a comment group, in order: every
// comment whose text (after the slashes, whitespace-trimmed) starts
// with Prefix, including unrecognized ones. A nil group yields nil.
func Of(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, cm := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
		if strings.HasPrefix(text, Prefix) {
			out = append(out, text)
		}
	}
	return out
}

// Has reports whether the comment group carries the exact pragma name
// (e.g. "prio:nobce"). It matches the same way the analyzers'
// historical annotated() helpers did: the whole trimmed comment text
// must equal the pragma.
func Has(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, cm := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(cm.Text, "//")) == name {
			return true
		}
	}
	return false
}
