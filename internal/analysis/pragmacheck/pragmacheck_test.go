package pragmacheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/pragmacheck"
)

func TestPragmacheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), pragmacheck.Analyzer, "a", "clean")
}
