// Package clean uses every recognized pragma correctly, plus prose
// that merely mentions one — pragmacheck must stay silent.
package clean

// run documents the `//prio:noalloc` contract in prose without
// carrying it; mentioning a pragma mid-sentence is not a pragma.
//
//prio:noalloc
//prio:nobce
func run(xs []int) int {
	t := 0
	for i := 0; i < len(xs); i++ {
		t += xs[i]
	}
	return t
}

//prio:pure
//prio:inline
func double(x int) int { return x * 2 }

//prio:deterministic
func respond(x int) int { return double(x) }

var (
	_ = run
	_ = respond
)
