// Package a exercises pragmacheck: typo'd pragmas, pragmas with
// trailing text, and recognized pragmas on declarations no analyzer
// reads them from.
package a

// typo drops an l: reads like a contract, enforces nothing.
//
//prio:noaloc
func typo() {} // want `unrecognized pragma //prio:noaloc enforces nothing`

// trailing text breaks the exact-match rule the analyzers use.
//
//prio:noalloc on the hot path
func trailing() {} // want `unrecognized pragma //prio:noalloc on the hot path enforces nothing`

// A pragma on a type declaration binds to nothing.
//
//prio:pure
type notAFunc struct{} // want `pragma //prio:pure is not the doc comment of a function declaration, so the purity analyzer will never read it`

// A pragma on a var declaration binds to nothing either.
//
//prio:deterministic
var counter int // want `pragma //prio:deterministic is not the doc comment of a function declaration`

var (
	_ = typo
	_ = trailing
	_ = notAFunc{}
	_ = counter
)
