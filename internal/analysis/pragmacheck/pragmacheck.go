// Package pragmacheck polices the //prio: annotation vocabulary. The
// other analyzers match their pragma by exact comment text, so a typo
// ("//prio:noaloc") or a trailing word ("//prio:noalloc please") reads
// like a contract in review but enforces nothing — the most dangerous
// failure mode an annotation scheme has. A pragma on a declaration it
// cannot apply to (a type, a var, a field) is equally inert: every
// recognized pragma binds to a function declaration's doc comment and
// nowhere else.
//
// The registry of recognized pragmas lives in
// repro/internal/analysis/pragma; adding an analyzer with a new
// annotation means adding it there, or pragmacheck flags every use.
package pragmacheck

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/pragma"
)

var Analyzer = &analysis.Analyzer{
	Name: "pragmacheck",
	Doc: "flag unrecognized //prio: pragmas (typos enforce nothing) and pragmas " +
		"placed where no analyzer will ever read them",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		// Anchor each doc comment group at the declaration it documents,
		// so diagnostics land on the declaration line; a pragma in a
		// free-floating or trailing comment is anchored at itself.
		anchors := make(map[*ast.CommentGroup]token.Pos)
		funcDocs := make(map[*ast.CommentGroup]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Doc != nil {
					anchors[n.Doc] = n.Name.Pos()
					funcDocs[n.Doc] = true
				}
			case *ast.GenDecl:
				if n.Doc != nil {
					anchors[n.Doc] = n.Pos()
				}
			case *ast.TypeSpec:
				if n.Doc != nil {
					anchors[n.Doc] = n.Pos()
				}
			case *ast.ValueSpec:
				if n.Doc != nil {
					anchors[n.Doc] = n.Pos()
				}
			case *ast.Field:
				if n.Doc != nil {
					anchors[n.Doc] = n.Pos()
				}
			}
			return true
		})
		for _, group := range file.Comments {
			for _, cm := range group.List {
				text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
				if !strings.HasPrefix(text, pragma.Prefix) {
					continue
				}
				pos, anchored := anchors[group]
				if !anchored {
					pos = cm.Pos()
				}
				switch {
				case pragma.Known[text] == "":
					pass.Reportf(pos,
						"unrecognized pragma //%s enforces nothing (known pragmas: %s)",
						text, knownList())
				case !funcDocs[group]:
					pass.Reportf(pos,
						"pragma //%s is not the doc comment of a function declaration, so the %s analyzer will never read it",
						text, pragma.Known[text])
				}
			}
		}
	}
	return nil, nil
}

func knownList() string {
	names := make([]string, 0, len(pragma.Known))
	for name := range pragma.Known {
		names = append(names, "//"+name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
