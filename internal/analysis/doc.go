// Package analysis hosts priolint, the static-analysis suite that
// mechanically enforces the scheduler's determinism and concurrency
// invariants. It is a minimal re-implementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) on top of the standard library's go/ast and go/types —
// the build environment has no module proxy access, so x/tools cannot
// be vendored; if it ever becomes available the analyzers port over by
// changing one import line. Packages are loaded through `go list
// -export` exactly the way a `go vet` driver does (see subpackage
// load), and each analyzer ships an analysistest-style suite with
// `// want "regexp"` expectations (see subpackage analysistest).
//
// # Why a linter instead of review discipline
//
// The advertised contract of the scheduling pipeline is that the
// schedule is a deterministic function of the DAG: the parallel,
// memoized pipeline is bit-identical to the sequential reference, and
// simulator runs replay exactly given a seed. The paper's evaluation
// compares PRIO against DAGMan's arbitrary order, so any hidden
// nondeterminism in our pipeline would silently invalidate reproduced
// numbers. These invariants are global properties that one more code
// review can quietly lose; the analyzers below make them mechanical.
//
// # The invariants and their annotations
//
// Determinism (analyzer mapiterorder). Go map iteration order is
// deliberately randomized, so a `for range` over a map must not have an
// order-dependent effect: appending to a slice that is not subsequently
// sorted, writing to an io.Writer / strings.Builder / file, or sending
// on a channel. The blessed idiom is to collect the keys, sort them,
// and range over the sorted slice — the analyzer recognizes a sort of
// the accumulated slice later in the same function (any callee whose
// name contains "sort" taking the slice as an argument) and stays
// quiet. Order-independent bodies (counting, building another map,
// reductions like min/max over values) are never flagged.
//
// Lock discipline (analyzer lockedfield). A struct field that is shared
// by the parallel pipeline carries a declaration-site annotation naming
// the mutex that guards it:
//
//	type Cache struct {
//		mu      sync.RWMutex
//		entries map[string]*cacheEntry // guarded by mu
//	}
//
// Every selector access to an annotated field must occur in a function
// that (a) locks that mutex (calls <anything>.mu.Lock or .RLock
// somewhere in its body, including an enclosing function of a literal),
// (b) is named with the conventional "...Locked" suffix meaning the
// caller holds the lock, or (c) is a constructor — a receiver-less
// function returning the struct type, where the value is not yet
// shared. Composite-literal initialization is inherently exempt (it is
// not a selector access). The check is lexical, not a may-happen-in-
// parallel analysis: it enforces the documentation convention, which is
// exactly what reviews kept getting wrong.
//
// RNG policy (analyzer rngsource). Simulator runs must be replayable:
// all randomness flows from repro/internal/rng sources seeded by the
// experiment driver. The process-global math/rand functions (rand.Intn,
// rand.Shuffle, rand.Seed, ...) are forbidden everywhere outside
// internal/rng, in tests too — constructing a private generator with
// rand.New(rand.NewSource(seed)) remains allowed as long as the seed
// does not come from time.Now, which the analyzer flags in any seeding
// expression (math/rand, math/rand/v2, or rng.New).
//
// Error propagation (analyzer errpropagation). A swallowed error in the
// DAGMan parse or file-rewrite paths corrupts a user's submit files
// silently. Calls whose final result is an error must not be used as
// statements or assigned to blank when the callee is (a) any function
// of repro/internal/dagman, (b) any function of package os, or (c) a
// method named Close, Flush, or Sync. `defer f.Close()` is exempt:
// flagging every deferred close of a read-only file would drown the
// signal, and the write paths all sync through os.WriteFile, which is
// covered.
//
// # Running
//
//	go run ./cmd/priolint ./...        # what make check and CI run
//	go run ./cmd/priolint -only mapiterorder,rngsource ./internal/sim
//
// The suite must stay clean at merge: fix the violation (or restructure
// so the invariant is evident to the analyzer) rather than suppressing
// it. There is deliberately no nolint comment mechanism.
package analysis
