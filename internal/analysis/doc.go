// Package analysis hosts priolint, the static-analysis suite that
// mechanically enforces the scheduler's determinism and concurrency
// invariants. It is a minimal re-implementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) on top of the standard library's go/ast and go/types —
// the build environment has no module proxy access, so x/tools cannot
// be vendored; if it ever becomes available the analyzers port over by
// changing one import line. Packages are loaded through `go list
// -export` exactly the way a `go vet` driver does (see subpackage
// load), and each analyzer ships an analysistest-style suite with
// `// want "regexp"` expectations (see subpackage analysistest).
//
// Two interprocedural mechanisms extend the per-package shape:
//
//   - Facts (subpackage facts): per-object conclusions shared across
//     passes. The driver analyzes packages in dependency order with one
//     fact store, so an Impure fact exported on a helper deep in one
//     package surfaces, chain attached, at the annotated entry point of
//     another. The store bridges the two identities an object has —
//     type-checked from source in its own pass, re-read from gc export
//     data in its importers' passes.
//   - The whole-program call graph (subpackage callgraph): an Analyzer
//     may set RunProgram instead of Run and receive every loaded
//     package plus a call graph with static edges, conservative
//     interface edges (a method call through an interface fans out to
//     every loaded implementation), function-value edges, and function
//     literals as first-class nodes. Precision therefore depends on
//     what is loaded: run priolint over ./... for the whole-program
//     analyzers to prove rather than spot-check.
//
// # Why a linter instead of review discipline
//
// The advertised contract of the scheduling pipeline is that the
// schedule is a deterministic function of the DAG: the parallel,
// memoized pipeline is bit-identical to the sequential reference, and
// simulator runs replay exactly given a seed. The paper's evaluation
// compares PRIO against DAGMan's arbitrary order, so any hidden
// nondeterminism in our pipeline would silently invalidate reproduced
// numbers. These invariants are global properties that one more code
// review can quietly lose; the analyzers below make them mechanical.
//
// # The invariants and their annotations
//
// Determinism (analyzer mapiterorder). Go map iteration order is
// deliberately randomized, so a `for range` over a map must not have an
// order-dependent effect: appending to a slice that is not subsequently
// sorted, writing to an io.Writer / strings.Builder / file, or sending
// on a channel. The blessed idiom is to collect the keys, sort them,
// and range over the sorted slice — the analyzer recognizes a sort of
// the accumulated slice later in the same function (any callee whose
// name contains "sort" taking the slice as an argument) and stays
// quiet. Order-independent bodies (counting, building another map,
// reductions like min/max over values) are never flagged.
//
// Lock discipline (analyzer lockedfield). A struct field that is shared
// by the parallel pipeline carries a declaration-site annotation naming
// the mutex that guards it:
//
//	type Cache struct {
//		mu      sync.RWMutex
//		entries map[string]*cacheEntry // guarded by mu
//	}
//
// Every selector access to an annotated field must occur in a function
// that (a) locks that mutex (calls <anything>.mu.Lock or .RLock
// somewhere in its body, including an enclosing function of a literal),
// (b) is named with the conventional "...Locked" suffix meaning the
// caller holds the lock, or (c) is a constructor — a receiver-less
// function returning the struct type, where the value is not yet
// shared. Composite-literal initialization is inherently exempt (it is
// not a selector access). The check is lexical, not a may-happen-in-
// parallel analysis: it enforces the documentation convention, which is
// exactly what reviews kept getting wrong.
//
// RNG policy (analyzer rngsource). Simulator runs must be replayable:
// all randomness flows from repro/internal/rng sources seeded by the
// experiment driver. The process-global math/rand functions (rand.Intn,
// rand.Shuffle, rand.Seed, ...) are forbidden everywhere outside
// internal/rng, in tests too — constructing a private generator with
// rand.New(rand.NewSource(seed)) remains allowed as long as the seed
// does not come from time.Now, which the analyzer flags in any seeding
// expression (math/rand, math/rand/v2, or rng.New).
//
// Zero allocation (analyzer noalloc). The replication kernel's benchmark
// headline — zero allocations per steady-state replication — is a
// whole-call-tree property, so a function annotated
//
//	//prio:noalloc
//	func (r *Runner) Run(p Params, pol Policy, seed uint64) Metrics
//
// must not reach an allocation site (make, new, growing append,
// composite literals, string concatenation, interface boxing, closure
// capture, go statements) through any path in the program call graph.
// The steady-state idioms the kernel is built from are exempt by rule:
// make under a cap/len guard, self-append `x = append(x, ...)`
// (high-water-mark growth), allocations on cold paths (panic arguments
// and conditional blocks ending in panic or a non-nil error return),
// and callees unreachable because a literal nil was passed for the
// parameter they are invoked through (Runner.Run passes obs = nil, so
// the Observer fan-out is pruned). Diagnostics carry the offending call
// path ("replicate → drainBurst → append").
//
// Purity (analyzer purity). A function annotated //prio:pure — the
// Prioritize entry points of core, and the exported surface of
// decompose, icopt, and matching — must be a mathematical function:
// no package-level writes, no clock reads, no global rand, no I/O,
// transitively through every statically resolvable call in any loaded
// package (facts carry the verdicts across package boundaries). Calls
// through interfaces and function values are assumed pure and the
// differential tests remain the backstop for that assumption.
//
// Lock nesting (analyzer nestedlock). Every sync.Mutex/RWMutex
// acquisition is collected into per-function summaries; the analyzer
// reports re-acquiring a mutex already held on the same path (directly
// or through a call chain — self-deadlock) and any cycle in the
// whole-program lock-ordering graph, i.e. two locks acquired in
// opposite nesting orders on different paths.
//
// Error propagation (analyzer errpropagation). A swallowed error in the
// DAGMan parse or file-rewrite paths corrupts a user's submit files
// silently. Calls whose final result is an error must not be used as
// statements or assigned to blank when the callee is (a) any function
// of repro/internal/dagman, (b) any function of package os, or (c) a
// method named Close, Flush, or Sync. `defer f.Close()` is exempt:
// flagging every deferred close of a read-only file would drown the
// signal, and the write paths all sync through os.WriteFile, which is
// covered.
//
// # The serving-layer proofs
//
// The four analyzers below extend the suite from kernel purity to
// service safety: they walk the whole-program call graph from every
// HTTP handler (or from an annotated response path) and prove the
// daemon properties the load generator and differential tests can only
// sample. The shared reachability layer is subpackage reach: roots are
// all non-test functions shaped func(http.ResponseWriter,
// *http.Request), traversal follows static and interface edges
// (skipping _test.go implementations — test doubles never serve daemon
// traffic), and dynamic edges are compensated for by rooting at every
// handler-shaped function.
//
// Goroutine lifecycle (analyzer goroleak). Every `go` statement in
// non-test code must launch a function literal whose termination the
// enclosing declaration proves lexically: a sync.WaitGroup Done in the
// goroutine with a matching Wait outside it, a final send on a
// buffered channel the launcher makes (non-zero capacity) and receives
// from, or a select on ctx.Done / a channel the launcher closes.
// Named-function launches are always flagged — wrap them in a literal
// carrying one of the joins. This turned the load generator's leaked
// `go srv.Serve(ln)` into a compile gate instead of a slow RSS climb.
//
// Context flow (analyzer ctxflow). On every function reachable from a
// handler, context.Background and context.TODO (which detach work from
// client cancellation and pin admission slots past the client's
// departure) and time.Sleep (which blocks without a cancellation case)
// are banned. Waiting on a handler path must be a select with
// ctx.Done, the shape internal/serve/admission.go models.
//
// Bounded channels (analyzer chanbound). Every channel send reachable
// from a handler must be inside a select with a default or timeout
// case (time.After, Timer/Ticker .C, ctx.Done), or on a channel whose
// every non-test make site passes an explicit non-zero capacity. A
// send that can block unboundedly while holding an admission slot
// turns backpressure into deadlock; this pins the admission layer's
// construction.
//
// Response determinism (analyzer respdet). A function annotated
//
//	//prio:deterministic
//	func (s *Server) handlePrioritize(w http.ResponseWriter, r *http.Request)
//
// must produce output that is a function of its input alone: nothing
// reachable from it may read the clock (time.Now/Since/Until), draw
// from the process-global math/rand source (explicitly seeded *Rand
// values stay legal), touch process or filesystem state (os, os/exec,
// syscall — this keeps /proc reads off the response path), observe the
// runtime (ReadMemStats, NumGoroutine), or range over a map in an
// order-dependent way (the mapiterorder discipline, applied
// transitively: collect-then-sort, keyed writes, and integer
// accumulation are fine; float accumulation, early returns, and
// escaping writes are not). The /v1/prioritize handler carries the
// annotation; /metrics deliberately does not — it reports clocks and
// gauges by design, and its exemption is the absence of the contract
// (see docs/OPERATIONS.md).
//
// # The compiler-fact proofs
//
// The analyzers above prove properties of the source as the tree
// reasons about it. The four analyzers below prove properties of the
// machine code the compiler actually emits, by running the Go compiler
// itself as a fact oracle (subpackage compilerfact): one instrumented
// `go build -gcflags='-m=2 -d=ssa/check_bce'` over the loaded tree,
// parsed into position-keyed facts — bounds checks the SSA pass could
// not eliminate, inlining decisions with costs and reasons, interface
// calls devirtualized to concrete targets, and variables escaping to
// the heap. The driver runs the compiler at most once per invocation
// and shares the facts across all four. Absence of a fact record for
// an annotated function is itself a finding ("the contract is
// unproved"), never silence — an annotation in a file the build did
// not compile must not pass vacuously.
//
// Bounds-check elimination (analyzer bce). A function annotated
// //prio:nobce — the replication kernel inner loops and the bitset
// hot methods — must compile with zero bounds checks: the masked-index
// and capacity-pinning idioms the kernel uses exist precisely so the
// SSA prover can discharge every access, and this analyzer pins that
// outcome to the compiler's own `Found IsInBounds` output rather than
// to a code-review reading of the masks.
//
// Inlining (analyzer inline). A function annotated //prio:inline must
// (a) be inlinable at all (cost within the compiler budget, no
// inlining-hostile constructs), and (b) actually be inlined at every
// call site lexically inside a //prio:nobce or //prio:noalloc
// function — a call left outstanding on the hot path costs a frame
// setup per event. Diagnostics carry the compiler's cost and reason
// ("cost 92 exceeds budget 80") so the fix is mechanical.
//
// Devirtualization (analyzer devirt). An interface method call
// lexically inside a //prio:noalloc function must be devirtualized by
// the compiler to a direct call. The scope is lexical, not
// reachability-based, by design: the noalloc analyzer already walks
// the call graph, and a devirtualized call that the compiler then
// inlines dissolves entirely — only calls written in the hot
// function's own body can still carry dynamic dispatch. Cold paths
// (panic arguments, error exits) are exempt under the same rules
// noalloc uses. A function annotated //prio:devirt opts into the same
// obligation plus a census: its body must contain at least one
// non-cold interface call. The pragma marks deliberate devirtualized
// seams — the replication kernel's ranker hook, where every
// static-rank policy family is read through one staticRank call site —
// and the census keeps the proof honest: refactor the seam away and
// the pragma turns red instead of asserting a proof about nothing.
//
// Escape cross-check (analyzer escapecheck). The noalloc analyzer is
// an abstract interpreter with a documented rulebook of exemptions;
// the compiler's escape analysis is the ground truth it approximates.
// For every //prio:noalloc function, this analyzer takes each heap
// allocation the compiler proves ("moved to heap: x", "escapes to
// heap") and demands that the abstract prover accounted for that line
// — as an allocation site class it audits, a call it traverses, or an
// exemption it grants. A compiler-proved allocation on a line the
// rulebook has no opinion about means the two proof systems disagree,
// and the rulebook — not the kernel — is what gets fixed.
//
// Pragma hygiene (analyzer pragmacheck). Every contract above is
// opt-in via a //prio: doc-comment pragma, which creates a failure
// mode no analyzer of the contract itself can see: a typo'd pragma
// (//prio:noaloc), trailing prose (//prio:noalloc on the hot path),
// or a pragma on a type or var declaration reads like a contract and
// enforces nothing. pragmacheck closes the loop by flagging any
// //prio: comment that is not exactly a recognized pragma in the doc
// position of a function declaration.
//
// # Running
//
//	go run ./cmd/priolint ./...        # what make check and CI run
//	go run ./cmd/priolint -only mapiterorder,rngsource ./internal/sim
//	go run ./cmd/priolint -format json ./...   # machine-readable findings
//	go run ./cmd/priolint -debug-callgraph ./internal/sim  # dump call edges
//
// The suite must stay clean at merge: fix the violation (or restructure
// so the invariant is evident to the analyzer) rather than suppressing
// it. There is deliberately no nolint comment mechanism.
package analysis
