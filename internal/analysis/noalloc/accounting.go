package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// AccountedLines exposes the abstract prover's accounting at line
// granularity for one annotated function: every source line on which
// this package's model recognizes a potential heap allocation — a hot
// site it would flag, an exemption it deliberately allows (cap-guarded
// make, self-append, cold path, non-escaping literal), or a call whose
// callees the interprocedural traversal audits. The escapecheck
// analyzer cross-checks the compiler's escape analysis against this
// map: a compiler-proved heap allocation on an unaccounted line means
// the two proof systems disagree, which is a diagnostic in itself.
//
// Granularity is lines, not columns, for two reasons: the compiler's
// diagnostic columns drift by a token from go/ast positions (a make is
// reported at its identifier, recorded here at its Lparen), and
// inlining re-attributes a callee's escape sites to the caller's
// call-site line — which the call's own line entry accounts for, since
// the traversal audits the callee's body where it is declared.
func AccountedLines(fset *token.FileSet, info *types.Info, fd *ast.FuncDecl) map[int]string {
	accounted := make(map[int]string)
	if fd.Body == nil {
		return accounted
	}
	mark := func(n ast.Node, reason string) {
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		for line := start; line <= end; line++ {
			if accounted[line] == "" {
				accounted[line] = reason
			}
		}
	}
	returnsError := false
	var sig *types.Signature
	if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
		sig = fn.Type().(*types.Signature)
		if n := sig.Results().Len(); n > 0 {
			named, ok := sig.Results().At(n - 1).Type().(*types.Named)
			returnsError = ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
		}
	}
	analysis.WithStack(fd.Body, func(nd ast.Node, stack []ast.Node) bool {
		if isCold(nd, stack, returnsError) {
			mark(nd, "a cold path (panic or error exit)")
			return false
		}
		switch nd := nd.(type) {
		case *ast.FuncLit:
			// The literal's body compiles as part of the enclosing
			// function, so its escape notes fall inside the annotated
			// span; the traversal audits it as its own call-graph node.
			mark(nd, "a function literal (audited as its own node)")
		case *ast.CallExpr:
			// Covers the builtin allocators (make, new, append),
			// allocating conversions, boxing of arguments, and static
			// calls — whose inlined callee escape notes the compiler
			// re-attributes to this line.
			mark(nd, "a call (classified directly or audited through the call graph)")
		case *ast.CompositeLit:
			mark(nd, "a composite literal")
		case *ast.GoStmt:
			mark(nd, "a goroutine launch")
		case *ast.BinaryExpr:
			if nd.Op == token.ADD && isStringExpr(info, nd) && !isConst(info, nd) {
				mark(nd, "a string concatenation")
			}
		case *ast.AssignStmt:
			if len(nd.Lhs) == len(nd.Rhs) && nd.Tok != token.DEFINE {
				for i, lhs := range nd.Lhs {
					if boxes(info, nd.Rhs[i], info.TypeOf(lhs)) {
						mark(nd.Rhs[i], "value-to-interface boxing (assignment)")
					}
				}
			}
		case *ast.ValueSpec:
			for i, val := range nd.Values {
				if i < len(nd.Names) {
					if obj := info.Defs[nd.Names[i]]; obj != nil && boxes(info, val, obj.Type()) {
						mark(val, "value-to-interface boxing (declaration)")
					}
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && len(nd.Results) == sig.Results().Len() {
				for i, res := range nd.Results {
					if boxes(info, res, sig.Results().At(i).Type()) {
						mark(res, "value-to-interface boxing (return)")
					}
				}
			}
		}
		return true
	})
	return accounted
}

// Cold re-exports the cold-path judgment for the compiler-fact
// analyzers: devirt skips interface calls on paths steady state cannot
// take, using the exact rule this package's exemptions use.
func Cold(nd ast.Node, stack []ast.Node, returnsError bool) bool {
	return isCold(nd, stack, returnsError)
}
