// Package clean exercises every steady-state exemption of the noalloc
// analyzer: nothing here may be reported.
package clean

import (
	"bytes"
	"fmt"
	"strconv"
)

// A reusable buffer: the make is capacity-guarded, the append is a
// self-append, so both express high-water-mark growth.

type buffer struct {
	data []int
}

//prio:noalloc
func (b *buffer) reset(n int) {
	if cap(b.data) < n {
		b.data = make([]int, 0, n)
	}
	b.data = b.data[:0]
}

//prio:noalloc
func (b *buffer) push(v int) {
	b.data = append(b.data, v)
}

// Cold paths: allocations inside panic arguments, blocks ending in
// panic, and blocks ending in a non-nil error return are never taken in
// steady state. Calls on those paths are not traversed either.

//prio:noalloc
func guarded(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative count %d", n))
	}
	if n > 1<<20 {
		msg := fmt.Sprintf("count %d too large", n)
		panic(msg)
	}
}

//prio:noalloc
func validate(n int) error {
	if n < 0 {
		return fmt.Errorf("negative count %d", n)
	}
	return nil
}

// A non-escaping closure: bound once, only ever called, so the
// compiler keeps it on the stack.

//prio:noalloc
func localClosure(xs []int) int {
	total := 0
	add := func(v int) { total += v }
	for _, v := range xs {
		add(v)
	}
	return total
}

// A nil interface argument prunes the callee's dispatches through that
// parameter: observer.record is allocating, but unreachable when obs is
// provably nil.

type observer interface{ record(v interface{}) }

//prio:noalloc
func runQuiet(xs []int) int {
	return loop(xs, nil)
}

func loop(xs []int, obs observer) int {
	total := 0
	for _, v := range xs {
		total += v
		if obs != nil {
			obs.record(v)
		}
	}
	return total
}

// Pointer-shaped values do not allocate when converted to an interface.

type reporter interface{ report(p *int) }

//prio:noalloc
func pointers(r reporter, p *int) {
	r.report(p)
}

type quietReporter struct{ last *int }

func (q *quietReporter) report(p *int) { q.last = p }

// The steady-state external whitelist: strconv's Append* family and
// bytes.Buffer's Write* methods grow only caller-owned buffers, so a
// pooled encoder built from them is provably allocation-free in steady
// state.

type scratch struct {
	qbuf []byte
	buf  bytes.Buffer
}

//prio:noalloc
func encode(sc *scratch, n int, name string) {
	sc.qbuf = strconv.AppendInt(sc.qbuf[:0], int64(n), 10)
	sc.buf.Write(sc.qbuf)
	sc.qbuf = strconv.AppendQuote(sc.qbuf[:0], name)
	sc.buf.Write(sc.qbuf)
	sc.buf.WriteByte(',')
	sc.buf.WriteString("ok")
}
