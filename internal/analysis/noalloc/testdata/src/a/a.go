// Package a exercises the noalloc analyzer: every annotated function
// here reaches an allocation and must be reported, with the diagnostic
// naming the call path for indirect cases.
package a

import (
	"fmt"
	"strconv"
)

//prio:noalloc
func directMake() []int { // want `directMake is annotated //prio:noalloc but can reach a make`
	return make([]int, 8)
}

//prio:noalloc
func directNew() *int { // want `directNew is annotated //prio:noalloc but can reach a new`
	return new(int)
}

//prio:noalloc
func growingAppend(dst, src []int) []int { // want `growingAppend is annotated //prio:noalloc but can reach a growing append`
	return append(dst, src...)
}

//prio:noalloc
func sliceLiteral() []int { // want `sliceLiteral is annotated //prio:noalloc but can reach a slice literal`
	return []int{1, 2, 3}
}

//prio:noalloc
func stringConcat(a, b string) string { // want `stringConcat is annotated //prio:noalloc but can reach a string concatenation`
	return a + b
}

//prio:noalloc
func callsFmt(n int) { // want `callsFmt is annotated //prio:noalloc but can reach value-to-interface boxing` `callsFmt is annotated //prio:noalloc but can reach a call to fmt.Println`
	fmt.Println(n)
}

// The multi-hop case the issue names: replicate -> drainBurst -> append.

//prio:noalloc
func replicate(buf []int, n int) []int { // want `replicate is annotated //prio:noalloc but can reach a growing append at a.go:\d+ \(path: replicate → drainBurst\)`
	for i := 0; i < n; i++ {
		buf = drainBurst(buf, i)
	}
	return buf
}

func drainBurst(buf []int, v int) []int {
	return append(buf, v) // grows the caller's slice, not its own
}

// Boxing: a concrete value passed to an interface parameter.

type sink interface{ consume(v interface{}) }

type quietSink struct{}

func (quietSink) consume(v interface{}) {}

//prio:noalloc
func boxes(s sink, v int) { // want `boxes is annotated //prio:noalloc but can reach value-to-interface boxing`
	s.consume(v)
}

// An escaping closure: stored in a field, so it allocates.

type holder struct{ f func() }

//prio:noalloc
func escapes(h *holder, n int) { // want `escapes is annotated //prio:noalloc but can reach an escaping function literal`
	h.f = func() { _ = n }
}

//prio:noalloc
func launches() { // want `launches is annotated //prio:noalloc but can reach a goroutine launch`
	go func() {}()
}

// An interface call whose only implementation allocates: the finding is
// reported through the interface fan-out, naming the implementation.

type policy interface{ next() []int }

type greedy struct{}

func (greedy) next() []int { return make([]int, 1) }

//prio:noalloc
func dispatches(p policy) { // want `dispatches is annotated //prio:noalloc but can reach a make at a.go:\d+ \(path: dispatches → \(greedy\).next\)`
	p.next()
}

// Only the Append* family is whitelisted: strconv functions that
// return fresh strings still allocate.

//prio:noalloc
func formats(n int) string { // want `formats is annotated //prio:noalloc but can reach a call to strconv.FormatInt`
	return strconv.FormatInt(int64(n), 10)
}
