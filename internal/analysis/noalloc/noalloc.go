// Package noalloc statically proves the `//prio:noalloc` contract: a
// function carrying the annotation must not reach, through the
// whole-program call graph, any allocation site. The replication
// kernel's throughput claim (EXPERIMENTS.md) rests on this property;
// the runtime benchmark smoke (`make bench-sim-smoke`) measures it for
// the configurations the benchmark happens to run, and this analyzer
// pins it for every path the type system can see.
//
// # What counts as an allocation
//
// make, new, slice/map composite literals, address-taken composite
// literals, a growing append, string concatenation and conversions,
// value-to-interface boxing, escaping function literals (closure
// captures), goroutine launches, and any call into package fmt or
// another package whose source was not loaded (except the pure-math
// whitelist — math, math/bits — and the per-function steady-state
// whitelist below: strconv's Append* family and bytes.Buffer's Write*
// methods, which allocate only while growing a caller-owned buffer).
//
// # What is exempt: the steady-state contract
//
// The annotation promises zero allocations in *steady state* — after
// reusable buffers have grown to their high-water mark, on runs that
// neither fail nor panic. Three source patterns express exactly that
// and are therefore allowed:
//
//   - a make guarded by a capacity test: inside an if/else whose
//     condition calls cap or len (the grow-to-high-water-mark branch of
//     a reusable buffer);
//   - a self-append, x = append(x, ...): amortized growth of a
//     retained buffer (the backing array is reused after truncation);
//   - cold paths: an allocation inside the arguments of panic, inside
//     a conditional block whose last statement panics, or inside a
//     conditional block whose last statement returns a non-nil error
//     (steady state, by definition, is the run that takes none of
//     these branches). Calls made on cold paths are not traversed
//     either — panic(fmt.Sprintf(...)) is fine.
//
// A function literal is not an allocation when it cannot escape: it is
// invoked immediately, or bound once to a local variable whose every
// use is a direct call (the Go compiler keeps such closures on the
// stack; the kernel's assign helper is the motivating case).
//
// # Interface calls and test doubles
//
// A call through an interface fans out to every implementation
// declared in the loaded packages — each one must be allocation-free,
// and the diagnostic names the concrete method that is not.
// Implementations declared in _test.go files are exempt: test doubles
// record and assert, and do not run under the throughput benchmark.
// A call through an interface with no loaded implementation, a call
// through an unresolved function value, and a call into a package
// loaded only as export data are all violations: the contract is
// "proved clean", not "nothing suspicious found". Run the driver over
// ./... so the whole module is loaded from source.
//
// One interprocedural refinement keeps the kernel's observer hook
// honest: when an annotated function passes a literal nil for an
// interface parameter, calls dispatched through that parameter in the
// callee are dead and are not traversed. Runner.Run invokes the shared
// kernel loop with a nil Observer, so the Observer fan-out (which
// includes allocating trace printers) is provably unreachable from the
// annotated entry point.
//
// Diagnostics are reported at the annotated function and name the full
// call path to the offending site, e.g.
//
//	(*Runner).Run is annotated //prio:noalloc but can reach a growing
//	append at kernel.go:57 (path: (*Runner).Run → (*runState).run →
//	(*eventQueue).appendBurst)
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc: "check that //prio:noalloc functions cannot reach an allocation " +
		"site through the call graph (steady-state growth and cold paths exempt)",
	RunProgram: run,
}

// Annotation is the marker comment, exported for the driver's docs.
const Annotation = "prio:noalloc"

// extWhitelist lists packages without loaded source whose functions are
// known not to allocate.
var extWhitelist = map[string]bool{
	"math":      true,
	"math/bits": true,
}

// steadyStateExt lists individual external functions that allocate
// only while growing a caller-owned buffer to its high-water mark —
// the external-call form of the self-append exemption. strconv's
// Append* family writes into the slice it is handed and reallocates
// only on growth; bytes.Buffer's Write* methods do the same with the
// buffer's retained backing array. The serving layer's pooled response
// encoder (internal/serve.writePrioritizeJSON) is built from exactly
// these.
var steadyStateExt = map[string]bool{
	"strconv.AppendInt":           true,
	"strconv.AppendUint":          true,
	"strconv.AppendQuote":         true,
	"utf8.AppendRune":             true,
	"bytes.(*Buffer).Write":       true,
	"bytes.(*Buffer).WriteString": true,
	"bytes.(*Buffer).WriteByte":   true,
}

// site is one direct allocation site inside a function body. guards
// lists variables the enclosing if statements compare against nil
// (`if v != nil { ... }`): when the traversal knows such a variable is
// nil, the site is dead and skipped.
type site struct {
	pos    token.Pos
	what   string
	guards []*types.Var
}

// summary is the per-node allocation summary.
type summary struct {
	sites     []site             // non-exempt allocation sites, in source order
	coldCalls map[token.Pos]bool // Lparen of calls on cold paths
}

type checker struct {
	pass      *analysis.ProgramPass
	summaries map[*callgraph.Node]*summary
	// visited memoizes (node, nil-parameter context) traversals.
	visited map[visitKey]bool
	// reported dedupes (root, site position) pairs.
	reported map[token.Pos]map[token.Pos]bool
}

type visitKey struct {
	node *callgraph.Node
	ctx  string
}

func run(pass *analysis.ProgramPass) error {
	c := &checker{
		pass:      pass,
		summaries: make(map[*callgraph.Node]*summary),
		visited:   make(map[visitKey]bool),
		reported:  make(map[token.Pos]map[token.Pos]bool),
	}
	for _, n := range pass.Graph.Nodes {
		if n.Decl == nil || !annotated(n.Decl) {
			continue
		}
		c.visited = make(map[visitKey]bool) // memoization is per root
		c.reported[n.Decl.Name.Pos()] = make(map[token.Pos]bool)
		c.visit(n, n, nil, nil)
	}
	return nil
}

func annotated(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, cm := range decl.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(cm.Text, "//")) == Annotation {
			return true
		}
	}
	return false
}

// visit checks node (with the given set of known-nil interface
// parameters) on behalf of root, extending path.
func (c *checker) visit(root, node *callgraph.Node, nilParams map[*types.Var]bool, path []string) {
	key := visitKey{node, ctxKey(nilParams)}
	if c.visited[key] {
		return
	}
	c.visited[key] = true
	path = append(path, node.Name())

	sum := c.summarize(node)
siteLoop:
	for _, s := range sum.sites {
		for _, g := range s.guards {
			if nilParams[g] {
				continue siteLoop // inside `if g != nil` with g provably nil
			}
		}
		c.report(root, path, s.pos, s.what)
	}
	for _, e := range node.Out {
		if e.Site != nil && sum.coldCalls[e.Site.Lparen] {
			continue // a call only a panicking or failing run makes
		}
		if e.Recv != nil {
			if v, ok := e.Recv.(*types.Var); ok && nilParams[v] {
				continue // dispatch through a provably nil interface
			}
		}
		switch {
		case e.Callee == nil:
			what := "a call through a function value the analyzer cannot resolve"
			if e.IfaceMethod != nil {
				what = fmt.Sprintf("a call through %s with no implementation loaded from source", callgraph.FuncKey(e.IfaceMethod))
			}
			c.report(root, path, e.Pos, what)
		case e.Kind == callgraph.Interface && e.Callee.InTest:
			// Test doubles are exempt from the steady-state contract.
		case e.Callee.Body == nil:
			if steadyStateExt[e.Callee.Key] {
				break
			}
			if pkg := nodePkgPath(e.Callee); !extWhitelist[pkg] {
				c.report(root, path, e.Pos,
					fmt.Sprintf("a call to %s, whose source is not loaded (run on ./... to verify it)", e.Callee.Key))
			}
		default:
			c.visit(root, e.Callee, calleeNilParams(node, e, nilParams), path)
		}
	}
}

// calleeNilParams computes the callee's known-nil interface parameters:
// arguments that are the literal nil or a variable already known nil.
// The implicit encloser-to-literal edge passes the current set through,
// because a literal captures its encloser's variables.
func calleeNilParams(caller *callgraph.Node, e callgraph.Edge, cur map[*types.Var]bool) map[*types.Var]bool {
	if e.Callee.Lit != nil && e.Site == nil {
		return cur // closure: captures see the encloser's bindings
	}
	if e.Site == nil {
		return nil
	}
	params := e.Callee.ParamObjs()
	if params == nil {
		return nil
	}
	var out map[*types.Var]bool
	for i, arg := range e.Site.Args {
		if i >= len(params) {
			break // variadic tail
		}
		p := params[i]
		if !types.IsInterface(p.Type()) {
			continue
		}
		nilArg := false
		ua := ast.Unparen(arg)
		if tv, ok := caller.Pkg.Info.Types[ua]; ok && tv.IsNil() {
			nilArg = true // the literal nil
		}
		if id, ok := ua.(*ast.Ident); ok {
			if v, ok := caller.Pkg.Info.Uses[id].(*types.Var); ok && cur[v] {
				nilArg = true // a variable already known nil
			}
		}
		if nilArg {
			if out == nil {
				out = make(map[*types.Var]bool)
			}
			out[p] = true
		}
	}
	if e.Callee.Lit != nil {
		// A direct call of a bound closure: captures still see the
		// encloser's bindings in addition to the arguments.
		for v := range cur {
			if out == nil {
				out = make(map[*types.Var]bool)
			}
			out[v] = true
		}
	}
	return out
}

// ctxKey renders a nil-parameter set as a stable string (token.Pos is
// deterministic for a deterministic load order).
func ctxKey(nilParams map[*types.Var]bool) string {
	if len(nilParams) == 0 {
		return ""
	}
	poss := make([]int, len(nilParams))
	i := 0
	for v := range nilParams {
		poss[i] = int(v.Pos())
		i++
	}
	for i := 1; i < len(poss); i++ { // insertion sort; sets are tiny
		for j := i; j > 0 && poss[j] < poss[j-1]; j-- {
			poss[j], poss[j-1] = poss[j-1], poss[j]
		}
	}
	var b strings.Builder
	for _, p := range poss {
		fmt.Fprintf(&b, "%d,", p)
	}
	return b.String()
}

func (c *checker) report(root *callgraph.Node, path []string, pos token.Pos, what string) {
	rootPos := root.Decl.Name.Pos()
	if c.reported[rootPos][pos] {
		return
	}
	c.reported[rootPos][pos] = true
	p := c.pass.Fset.Position(pos)
	msg := fmt.Sprintf("%s is annotated //prio:noalloc but can reach %s at %s:%d",
		root.Name(), what, filepath.Base(p.Filename), p.Line)
	if len(path) > 1 {
		msg += " (path: " + strings.Join(path, " → ") + ")"
	}
	c.pass.Report(analysis.Diagnostic{
		Pos:     rootPos,
		Message: msg,
		Path:    append([]string(nil), path...),
	})
}

func nodePkgPath(n *callgraph.Node) string {
	if n.Func != nil && n.Func.Pkg() != nil {
		return n.Func.Pkg().Path()
	}
	return ""
}

// summarize computes (and memoizes) the direct allocation sites of one
// node's body, excluding nested literals (they are their own nodes).
func (c *checker) summarize(n *callgraph.Node) *summary {
	if s, ok := c.summaries[n]; ok {
		return s
	}
	s := &summary{coldCalls: make(map[token.Pos]bool)}
	c.summaries[n] = s
	if n.Body == nil || n.Pkg == nil {
		return s
	}
	info := n.Pkg.Info

	returnsError := nodeReturnsError(n)
	callOnlyVars := callOnlyFuncVars(info, n.Body)

	analysis.WithStack(n.Body, func(nd ast.Node, stack []ast.Node) bool {
		guards := nonNilGuards(info, nd, stack)
		// Do not descend into nested literals: each is its own node.
		if lit, ok := nd.(*ast.FuncLit); ok {
			if !litExempt(info, lit, stack, callOnlyVars) && !isCold(nd, stack, returnsError) {
				s.add(lit.Pos(), "an escaping function literal (closure allocation)", guards)
			}
			return false
		}
		cold := isCold(nd, stack, returnsError)
		switch nd := nd.(type) {
		case *ast.CallExpr:
			if cold {
				s.coldCalls[nd.Lparen] = true
				return true
			}
			c.checkCall(s, info, nd, stack, guards)
		case *ast.CompositeLit:
			if cold {
				return true
			}
			c.checkCompositeLit(s, info, nd, stack, guards)
		case *ast.BinaryExpr:
			if cold {
				return true
			}
			if nd.Op == token.ADD && isStringExpr(info, nd) && !isConst(info, nd) {
				s.add(nd.OpPos, "a string concatenation", guards)
			}
		case *ast.AssignStmt:
			if cold {
				return true
			}
			c.checkBoxingAssign(s, info, nd, guards)
		case *ast.GoStmt:
			if !cold {
				s.add(nd.Go, "a goroutine launch", guards)
			}
		case *ast.ReturnStmt:
			if !cold {
				c.checkBoxingReturn(s, info, n, nd, guards)
			}
		}
		return true
	})
	return s
}

func (s *summary) add(pos token.Pos, what string, guards []*types.Var) {
	s.sites = append(s.sites, site{pos, what, guards})
}

// nonNilGuards collects the variables that enclosing if statements
// compare against nil on the path to nd: inside `if v != nil { ... }`
// (possibly conjoined with &&), v is a guard. The else branch is not
// guarded.
func nonNilGuards(info *types.Info, nd ast.Node, stack []ast.Node) []*types.Var {
	var guards []*types.Var
	for i, anc := range stack {
		ifs, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		child := nd
		if i+1 < len(stack) {
			child = stack[i+1]
		}
		if child != ast.Node(ifs.Body) {
			continue
		}
		var collect func(e ast.Expr)
		collect = func(e ast.Expr) {
			be, ok := ast.Unparen(e).(*ast.BinaryExpr)
			if !ok {
				return
			}
			switch be.Op {
			case token.LAND:
				collect(be.X)
				collect(be.Y)
			case token.NEQ:
				for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
					tv, ok := info.Types[pair[1]]
					if !ok || !tv.IsNil() {
						continue
					}
					if id, ok := ast.Unparen(pair[0]).(*ast.Ident); ok {
						if v, ok := info.Uses[id].(*types.Var); ok {
							guards = append(guards, v)
						}
					}
				}
			}
		}
		collect(ifs.Cond)
	}
	return guards
}

// checkCall classifies one non-cold call expression: builtin
// allocators, conversions, and boxing of arguments. Static callee
// reachability is the traversal's job, through the call graph.
func (c *checker) checkCall(s *summary, info *types.Info, call *ast.CallExpr, stack []ast.Node, guards []*types.Var) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		c.checkConversion(s, info, call, guards)
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if tv, ok := info.Types[fun]; ok && tv.IsBuiltin() {
			switch id.Name {
			case "make":
				if !capGuarded(stack) {
					s.add(call.Lparen, "a make", guards)
				}
			case "new":
				s.add(call.Lparen, "a new", guards)
			case "append":
				if !selfAppend(call, stack) {
					s.add(call.Lparen, "a growing append", guards)
				}
			}
			return
		}
	}
	c.checkBoxingArgs(s, info, call, guards)
}

// checkConversion flags conversions that materialize a new backing
// array: to string from anything but string, and from string to []byte
// or []rune. Constant conversions are free.
func (c *checker) checkConversion(s *summary, info *types.Info, call *ast.CallExpr, guards []*types.Var) {
	if len(call.Args) != 1 || isConst(info, call) {
		return
	}
	dst := info.TypeOf(call.Fun)
	src := info.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	if isString(dst) && !isString(src) {
		s.add(call.Lparen, "a conversion to string", guards)
		return
	}
	if isByteOrRuneSlice(dst) && isString(src) {
		s.add(call.Lparen, "a string-to-slice conversion", guards)
	}
}

func (c *checker) checkCompositeLit(s *summary, info *types.Info, lit *ast.CompositeLit, stack []ast.Node, guards []*types.Var) {
	t := info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		s.add(lit.Lbrace, "a slice literal", guards)
		return
	case *types.Map:
		s.add(lit.Lbrace, "a map literal", guards)
		return
	}
	// A struct or array literal allocates only when its address is
	// taken (escape analysis may still stack-allocate it, but the
	// contract demands the conservative reading).
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			s.add(u.OpPos, "an address-taken composite literal", guards)
		}
	}
}

// checkBoxingArgs flags non-interface values passed to interface
// parameters. panic's argument never reaches here: panic calls are
// cold by rule.
func (c *checker) checkBoxingArgs(s *summary, info *types.Info, call *ast.CallExpr, guards []*types.Var) {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if boxes(info, arg, pt) {
			s.add(arg.Pos(), "value-to-interface boxing (argument)", guards)
		}
	}
}

func (c *checker) checkBoxingAssign(s *summary, info *types.Info, as *ast.AssignStmt, guards []*types.Var) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := info.TypeOf(lhs)
		if lt == nil || as.Tok == token.DEFINE {
			continue // a := declaration takes the RHS type; no boxing
		}
		if boxes(info, as.Rhs[i], lt) {
			s.add(as.Rhs[i].Pos(), "value-to-interface boxing (assignment)", guards)
		}
	}
}

func (c *checker) checkBoxingReturn(s *summary, info *types.Info, n *callgraph.Node, ret *ast.ReturnStmt, guards []*types.Var) {
	sig := nodeSignature(n)
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		if boxes(info, res, sig.Results().At(i).Type()) {
			s.add(res.Pos(), "value-to-interface boxing (return)", guards)
		}
	}
}

// boxes reports whether assigning expr to a target of type dst performs
// an interface conversion that heap-allocates: dst is an interface,
// expr's type is concrete and not pointer-shaped, and expr is not the
// nil literal. Pointers box without allocating, so they pass.
func boxes(info *types.Info, expr ast.Expr, dst types.Type) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() || types.IsInterface(tv.Type) {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: fits in the interface word
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && isString(t)
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// selfAppend reports whether call is the amortized reusable-buffer
// idiom x = append(x, ...): the append's result is assigned straight
// back to an expression identical to its first argument.
func selfAppend(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 || len(stack) == 0 {
		return false
	}
	as, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN {
		return false
	}
	for i, rhs := range as.Rhs {
		if rhs == call && i < len(as.Lhs) {
			return types.ExprString(as.Lhs[i]) == types.ExprString(ast.Unparen(call.Args[0]))
		}
	}
	return false
}

func nodeReturnsError(n *callgraph.Node) bool {
	sig := nodeSignature(n)
	if sig == nil || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func nodeSignature(n *callgraph.Node) *types.Signature {
	if n.Func != nil {
		return n.Func.Type().(*types.Signature)
	}
	if n.Lit != nil && n.Pkg != nil {
		if sig, ok := n.Pkg.Info.TypeOf(n.Lit).(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// isCold reports whether the node sits on a path steady state cannot
// take: inside the arguments of a panic call, or inside a conditional
// block (if/else/case body — never the function body itself) whose
// final statement panics or returns a non-nil error (the latter only
// in functions whose last result is an error).
func isCold(nd ast.Node, stack []ast.Node, returnsError bool) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(anc.Fun).(*ast.Ident); ok && id.Name == "panic" && id.Obj == nil {
				return true
			}
		case *ast.BlockStmt:
			// The function body is the outermost block: stack[0] is the
			// body handed to WithStack, so only deeper blocks count.
			if i == 0 {
				continue
			}
			if blockIsCold(anc.List, returnsError) {
				return true
			}
		case *ast.CaseClause:
			if blockIsCold(anc.Body, returnsError) {
				return true
			}
		case *ast.CommClause:
			if blockIsCold(anc.Body, returnsError) {
				return true
			}
		}
	}
	return false
}

func blockIsCold(stmts []ast.Stmt, returnsError bool) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && id.Obj == nil {
				return true
			}
		}
	case *ast.ReturnStmt:
		if !returnsError || len(last.Results) == 0 {
			return false
		}
		final := ast.Unparen(last.Results[len(last.Results)-1])
		if id, ok := final.(*ast.Ident); ok && id.Name == "nil" {
			return false
		}
		return true
	}
	return false
}

// capGuarded reports whether the make sits inside an if (or its else)
// whose condition inspects cap or len — the reusable-buffer grow
// branch.
func capGuarded(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") && id.Obj == nil {
					guarded = true
				}
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}

// litExempt reports whether a function literal cannot escape: it is
// invoked immediately, or it is the single binding of a local variable
// whose every use is a direct call.
func litExempt(info *types.Info, lit *ast.FuncLit, stack []ast.Node, callOnly map[*types.Var]bool) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.CallExpr:
		if ast.Unparen(parent.Fun) == lit {
			return true // immediately invoked
		}
	case *ast.AssignStmt:
		for i, rhs := range parent.Rhs {
			if rhs != lit || i >= len(parent.Lhs) {
				continue
			}
			if id, ok := parent.Lhs[i].(*ast.Ident); ok {
				if v, ok := objOf(info, id).(*types.Var); ok && callOnly[v] {
					return true
				}
			}
		}
	case *ast.ValueSpec:
		for i, val := range parent.Values {
			if val != lit || i >= len(parent.Names) {
				continue
			}
			if v, ok := info.Defs[parent.Names[i]].(*types.Var); ok && callOnly[v] {
				return true
			}
		}
	}
	return false
}

// callOnlyFuncVars finds local function-typed variables assigned
// exactly once and only ever used in call position — closures the
// compiler keeps on the stack.
func callOnlyFuncVars(info *types.Info, body ast.Node) map[*types.Var]bool {
	writes := make(map[*types.Var]int)
	badUse := make(map[*types.Var]bool)
	candidates := make(map[*types.Var]bool)
	analysis.WithStack(body, func(nd ast.Node, stack []ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := objOf(info, id).(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
			return true
		}
		if len(stack) == 0 {
			return true
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.AssignStmt:
			for i, lhs := range parent.Lhs {
				if lhs == nd {
					writes[v]++
					if i < len(parent.Rhs) {
						if _, isLit := parent.Rhs[i].(*ast.FuncLit); isLit {
							candidates[v] = true
						}
					}
					return true
				}
			}
			badUse[v] = true // used on the RHS as a value
		case *ast.ValueSpec:
			for i, name := range parent.Names {
				if name == nd {
					writes[v]++
					if i < len(parent.Values) {
						if _, isLit := parent.Values[i].(*ast.FuncLit); isLit {
							candidates[v] = true
						}
					}
					return true
				}
			}
			badUse[v] = true
		case *ast.CallExpr:
			if ast.Unparen(parent.Fun) != nd {
				badUse[v] = true // passed as an argument
			}
		default:
			badUse[v] = true
		}
		return true
	})
	out := make(map[*types.Var]bool)
	for v := range candidates {
		if writes[v] == 1 && !badUse[v] {
			out[v] = true
		}
	}
	return out
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
