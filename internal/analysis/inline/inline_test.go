package inline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/inline"
)

func TestInline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), inline.Analyzer, "a", "clean")
}
