// Package inline proves the `//prio:inline` contract: an annotated
// function must be inlinable, and every call to it from inside a
// `//prio:nobce` or `//prio:noalloc` function must actually be inlined
// by the compiler. The annotation marks the kernel's smallest hot
// helpers (MinSet.Add/PopMin/Reset, fastKernel.nextOcc), whose cost
// model assumes no call overhead on the drain path — and whose own
// bounds-check-freedom the callers' //prio:nobce proofs silently
// depend on, since an inlined body's checks land on the caller.
//
// Two failure shapes are reported, each with the compiler's verdict:
//
//   - the annotated function itself is not inlinable ("cannot inline
//     F: function too complex: cost 93 exceeds budget 80") — reported
//     at its declaration with the compiler's reason, so the fix (trim
//     the body, hoist the slow path) is concrete, and again at each
//     hot call site still paying the dispatch;
//   - the function is inlinable but a specific hot call site was not
//     inlined (e.g. the caller crossed the inliner's big-function
//     threshold, which lowers the per-call budget) — reported at the
//     call site with the callee's cost.
//
// Calls from unannotated functions are not checked: the contract
// covers the proven-hot regions, not every use.
package inline

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/compilerfact"
	"repro/internal/analysis/pragma"
)

var Analyzer = &analysis.Analyzer{
	Name: "inline",
	Doc: "check that //prio:inline functions are inlinable and actually inlined " +
		"into every //prio:nobce and //prio:noalloc caller",
	RunProgram:         run,
	NeedsCompilerFacts: true,
}

// Annotation is the marker comment, exported for the driver's docs.
const Annotation = "prio:inline"

// hotCallers are the annotations whose bodies demand inlined calls.
var hotCallers = []string{"prio:nobce", "prio:noalloc"}

// A callee is one //prio:inline function, keyed by types.Func.FullName
// so calls resolved through gc export data in other packages match the
// source-checked declaration.
type callee struct {
	decl *ast.FuncDecl
	// decision is the compiler's verdict at the declaration line;
	// compiled is false when the declaration was not in the build.
	decision compilerfact.InlineDecision
	compiled bool
}

func run(pass *analysis.ProgramPass) error {
	cf := pass.Compiler
	if cf == nil {
		return fmt.Errorf("inline: no compiler facts attached (driver must run the toolchain first)")
	}

	// Pass 1: collect the //prio:inline functions and check each is
	// inlinable at all.
	callees := make(map[string]*callee)
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !pragma.Has(fd.Doc, Annotation) {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if _, dup := callees[fn.FullName()]; dup {
					continue // test variant re-declares the package
				}
				c := &callee{decl: fd}
				start := pkg.Fset.Position(fd.Pos())
				c.decision, c.compiled = cf.Decisions[compilerfact.FileLine{File: start.Filename, Line: start.Line}]
				callees[fn.FullName()] = c
				switch {
				case !c.compiled:
					pass.Reportf(fd.Name.Pos(),
						"%s is annotated //prio:inline but the compiler emitted no record for it — the file was not part of the compiler-fact build, so the contract is unproved",
						fd.Name.Name)
				case !c.decision.CanInline:
					pass.Reportf(fd.Name.Pos(),
						"%s is annotated //prio:inline but the compiler cannot inline it: %s",
						fd.Name.Name, c.decision.Reason)
				}
			}
		}
	}
	if len(callees) == 0 {
		return nil
	}

	// Pass 2: every call to a collected callee from inside a hot
	// (nobce/noalloc) function must carry an "inlining call to" note.
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hot(fd) {
					continue
				}
				ast.Inspect(fd.Body, func(nd ast.Node) bool {
					call, ok := nd.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := analysis.Callee(pkg.Info, call)
					if fn == nil {
						return true
					}
					c, marked := callees[fn.FullName()]
					if !marked || !c.compiled {
						return true // unannotated, or unproved (reported at the declaration)
					}
					callPos := pkg.Fset.Position(call.Lparen)
					for _, name := range cf.InlinedCallsOn(callPos.Filename, callPos.Line) {
						if nameMatches(name, fn) {
							return true
						}
					}
					if c.decision.CanInline {
						pass.Reportf(call.Lparen,
							"%s is annotated //prio:inline (cost %d fits the budget) but the compiler did not inline this call inside %s",
							fn.Name(), c.decision.Cost, fd.Name.Name)
					} else {
						pass.Reportf(call.Lparen,
							"%s is annotated //prio:inline but stays a call inside %s: %s",
							fn.Name(), fd.Name.Name, c.decision.Reason)
					}
					return true
				})
			}
		}
	}
	return nil
}

func hot(fd *ast.FuncDecl) bool {
	for _, ann := range hotCallers {
		if pragma.Has(fd.Doc, ann) {
			return true
		}
	}
	return false
}

// nameMatches reports whether the compiler's spelling of an inlined
// callee ("tiny", "(*MinSet).Add", "bitset.(*MinSet).Add") names fn.
// Cross-package notes qualify with the package name; same-package
// notes do not — so the unqualified candidate must match exactly or as
// a ".".-separated suffix.
func nameMatches(reported string, fn *types.Func) bool {
	cand := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		if ptr != "" {
			cand = "(*" + named.Obj().Name() + ")." + fn.Name()
		} else {
			cand = named.Obj().Name() + "." + fn.Name()
		}
	}
	if reported == cand {
		return true
	}
	return strings.HasSuffix(reported, "."+cand)
}
