// Package a exercises the inline analyzer: an annotated function over
// the inliner's budget, reported at its declaration and again at the
// hot call site that keeps paying the dispatch.
package a

// fat is pushed over the inline budget by the switch ladder; the
// annotation is a promise the compiler refuses, reported with its
// reason.
//
//prio:inline
func fat(xs []int) int { // want `fat is annotated //prio:inline but the compiler cannot inline it: .*cost \d+ exceeds budget`
	t := 0
	for i, x := range xs {
		switch {
		case x > 100:
			t += x * 7
		case x > 50:
			t += x * 5
		case x > 25:
			t += x * 3
		case x > 12:
			t += x * 2
		case x > 6:
			t += x + i
		case x > 3:
			t += x - i
		default:
			t -= x
		}
		t ^= t >> 3
		t *= 17
		t += i
	}
	return t
}

// ok is comfortably inlinable.
//
//prio:inline
func ok(a int) int { return a + 1 }

// hot calls both: the ok call inlines (silent); the fat call stays a
// call and is flagged here as well as at fat's declaration.
//
//prio:nobce
func hot(xs []int) int {
	t := ok(len(xs))
	return t + fat(xs) // want `fat is annotated //prio:inline but stays a call inside hot: .*cost \d+ exceeds budget`
}

// cold also calls fat, but carries no hot annotation: no call-site
// check applies.
func cold(xs []int) int {
	return fat(xs)
}

var (
	_ = hot
	_ = cold
)
