// Package clean holds an //prio:inline helper that inlines into every
// hot caller: the analyzer must stay silent.
package clean

//prio:inline
func lift(a int) int { return a*2 + 1 }

//prio:nobce
func hot(xs []int) int {
	t := 0
	for i := 0; i < len(xs); i++ {
		t += lift(xs[i])
	}
	return t
}

// deferred still inlines: the compiler wraps the deferred call and
// inlines lift into the wrapper, which satisfies the contract.
//
//prio:noalloc
func deferred() {
	defer lift(9)
}

var (
	_ = hot
	_ = deferred
)
