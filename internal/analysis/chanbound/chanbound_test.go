package chanbound_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/chanbound"
)

func TestChanbound(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), chanbound.Analyzer, "a", "clean")
}
