// Package chanbound is the static form of the admission layer's
// shedding guarantee: no channel send reachable from an HTTP handler
// may block unboundedly. A send that can block forever while holding
// an admission slot turns backpressure into deadlock; the serving
// layer avoids this by construction (semaphore channels with explicit
// capacity, sends wrapped in selects with default or timeout cases),
// and this analyzer pins the construction.
//
// Every send statement in a function reachable from a handler
// (func(http.ResponseWriter, *http.Request), named or literal,
// excluding _test.go code — see repro/internal/analysis/reach) must
// satisfy one of:
//
//   - select with escape: the send is a case of a select that also has
//     a default case, or a case receiving from a timeout/cancellation
//     source (time.After, a Timer/Ticker .C field, or ctx.Done()).
//   - provably bounded channel: the channel expression resolves to a
//     variable or field whose every make site in non-test code passes
//     an explicit capacity argument (not the constant zero). A send on
//     such a channel blocks only while the buffer is full, and the
//     capacity was chosen by the code that sized the pipeline
//     (admission slots and queue, the worker pool's panic channel).
//
// Anything else is a finding: an unbuffered make, a mix of buffered
// and unbuffered makes, a channel with no visible make site, or a
// channel expression the analyzer cannot resolve. Makes in _test.go
// files are ignored — tests may build unbuffered instances of
// production types, but those instances never serve daemon traffic.
// Receives are deliberately out of scope: a blocking receive on a
// handler path parks the request without holding buffer space, and the
// ctxflow analyzer polices the cancellation side.
package chanbound

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/reach"
)

var Analyzer = &analysis.Analyzer{
	Name: "chanbound",
	Doc: "check that every channel send reachable from an HTTP handler is on a " +
		"provably bounded channel or inside a select with a default or timeout case",
	RunProgram: run,
}

// chanMakes tallies the make sites binding one channel variable/field.
type chanMakes struct {
	bounded   int
	unbounded int
	firstUnbd token.Pos
}

func run(pass *analysis.ProgramPass) error {
	makes := collectMakes(pass)
	reach.Walk(reach.Handlers(pass.Graph), func(n *callgraph.Node, path []string) {
		if n.Pkg == nil {
			return
		}
		info := n.Pkg.Info
		analysis.WithStack(n.Body, func(nd ast.Node, stack []ast.Node) bool {
			if _, ok := nd.(*ast.FuncLit); ok {
				return false // a literal is its own node; visited with its own path
			}
			send, ok := nd.(*ast.SendStmt)
			if !ok {
				return true
			}
			if selectGuarded(info, send, stack) {
				return true
			}
			obj := chanObj(info, send.Chan)
			if obj != nil {
				if cm := makes[obj]; cm != nil && cm.unbounded == 0 && cm.bounded > 0 {
					return true
				}
			}
			report(pass, makes, send, obj, path)
			return true
		})
	})
	return nil
}

func report(pass *analysis.ProgramPass, makes map[types.Object]*chanMakes, send *ast.SendStmt, obj types.Object, path []string) {
	why := "the analyzer cannot resolve the channel to a variable"
	if obj != nil {
		cm := makes[obj]
		switch {
		case cm == nil:
			why = fmt.Sprintf("no make site for %s is visible in non-test code", obj.Name())
		case cm.unbounded > 0:
			p := pass.Fset.Position(cm.firstUnbd)
			why = fmt.Sprintf("%s is made without an explicit capacity at %s:%d", obj.Name(), filepath.Base(p.Filename), p.Line)
		}
	}
	pass.Report(analysis.Diagnostic{
		Pos: send.Arrow,
		Message: fmt.Sprintf("send reachable from HTTP handler %s is neither on a provably bounded channel "+
			"nor inside a select with a default or timeout case: %s (path: %s)",
			path[0], why, strings.Join(path, " → ")),
		Path: append([]string(nil), path...),
	})
}

// collectMakes scans every non-test file of every loaded package for
// `make(chan ...)` expressions bound to a variable, struct field
// (assignment or composite-literal key), or declaration, tallying
// explicit-capacity vs capacity-less makes per object.
func collectMakes(pass *analysis.ProgramPass) map[types.Object]*chanMakes {
	makes := make(map[types.Object]*chanMakes)
	record := func(obj types.Object, call *ast.CallExpr, info *types.Info) {
		if obj == nil {
			return
		}
		cm := makes[obj]
		if cm == nil {
			cm = &chanMakes{}
			makes[obj] = cm
		}
		if isBounded(info, call) {
			cm.bounded++
		} else {
			cm.unbounded++
			if cm.firstUnbd == token.NoPos {
				cm.firstUnbd = call.Lparen
			}
		}
	}
	for _, pkg := range pass.Pkgs {
		for fi, file := range pkg.Syntax {
			if strings.HasSuffix(pkg.GoFiles[fi], "_test.go") {
				continue
			}
			info := pkg.Info
			analysis.WithStack(file, func(nd ast.Node, stack []ast.Node) bool {
				call, ok := nd.(*ast.CallExpr)
				if !ok || !isChanMake(info, call) || len(stack) == 0 {
					return true
				}
				switch parent := stack[len(stack)-1].(type) {
				case *ast.AssignStmt:
					for i, rhs := range parent.Rhs {
						if rhs == nd && i < len(parent.Lhs) {
							record(lhsObj(info, parent.Lhs[i]), call, info)
						}
					}
				case *ast.ValueSpec:
					for i, v := range parent.Values {
						if v == nd && i < len(parent.Names) {
							record(info.Defs[parent.Names[i]], call, info)
						}
					}
				case *ast.KeyValueExpr:
					if parent.Value == nd {
						if key, ok := parent.Key.(*ast.Ident); ok {
							record(info.Uses[key], call, info)
						}
					}
				}
				return true
			})
		}
	}
	return makes
}

func isChanMake(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if tv, ok := info.Types[call.Fun]; !ok || !tv.IsBuiltin() {
		return false
	}
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// isBounded reports whether the make passes an explicit capacity that
// is not the constant zero. A non-constant capacity counts: the code
// sized the channel deliberately (worker counts, queue depths).
func isBounded(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
		return false
	}
	return true
}

func lhsObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Defs[e]; obj != nil {
			return obj
		}
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

func chanObj(info *types.Info, e ast.Expr) types.Object {
	return lhsObj(info, e)
}

// selectGuarded reports whether send is directly a case of a select
// that has an escape: a default case, or a case receiving from a
// timeout or cancellation source. A send nested deeper inside a case
// body blocks independently of the select and is not guarded.
func selectGuarded(info *types.Info, send *ast.SendStmt, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	clause, ok := stack[len(stack)-1].(*ast.CommClause)
	if !ok || clause.Comm != ast.Stmt(send) {
		return false
	}
	sel, ok := stack[len(stack)-2].(*ast.SelectStmt)
	if !ok {
		return false
	}
	for _, cl := range sel.Body.List {
		comm, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		if comm.Comm == nil {
			return true // default case: the send cannot block
		}
		if rx := commReceive(comm); rx != nil && isTimeoutSource(info, rx) {
			return true
		}
	}
	return false
}

// commReceive extracts the received-from expression of a select case.
func commReceive(comm *ast.CommClause) ast.Expr {
	var expr ast.Expr
	switch s := comm.Comm.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	if u, ok := ast.Unparen(expr).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u.X
	}
	return nil
}

// isTimeoutSource: time.After(...), ctx.Done() on a context.Context,
// or the .C field of a time.Timer/time.Ticker.
func isTimeoutSource(info *types.Info, rx ast.Expr) bool {
	switch rx := ast.Unparen(rx).(type) {
	case *ast.CallExpr:
		fn := analysis.Callee(info, rx)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "time":
			return fn.Name() == "After"
		case "context":
			return fn.Name() == "Done"
		}
	case *ast.SelectorExpr:
		if rx.Sel.Name != "C" {
			return false
		}
		t := info.TypeOf(rx.X)
		if t == nil {
			return false
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := types.Unalias(t).(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "time" &&
			(obj.Name() == "Timer" || obj.Name() == "Ticker")
	}
	return false
}
