// Package a exercises the chanbound analyzer: every send here is
// reachable from an HTTP handler without a bounded-capacity proof or a
// select escape, and must be reported.
package a

import "net/http"

type server struct {
	events chan int
	other  chan int
}

func (s *server) Handle(w http.ResponseWriter, r *http.Request) {
	s.events <- 1 // want `send reachable from HTTP handler \(\*server\)\.Handle .* no make site for events is visible in non-test code`
	local := make(chan int)
	local <- 2 // want `send reachable from HTTP handler \(\*server\)\.Handle .* local is made without an explicit capacity at a.go:\d+`
	zero := make(chan int, 0)
	zero <- 0 // want `send reachable from HTTP handler \(\*server\)\.Handle .* zero is made without an explicit capacity at a.go:\d+`
	forward(local)
	s.sized(3)
}

// forward's send is two hops from the handler; the parameter has no
// visible make site.
func forward(ch chan int) {
	ch <- 3 // want `send reachable from HTTP handler \(\*server\)\.Handle .* no make site for ch .* \(path: .*Handle → forward\)`
}

// sized mixes a bounded and an unbounded make of the same variable:
// the unbounded site poisons the proof.
func (s *server) sized(n int) {
	c := make(chan int, 4)
	if n > 0 {
		c = make(chan int)
	}
	c <- n // want `send reachable from HTTP handler \(\*server\)\.Handle .* c is made without an explicit capacity at a.go:\d+`
}

// A select with receive cases but no default or timeout does not
// unblock the send.
func (s *server) HandleSelect(w http.ResponseWriter, r *http.Request) {
	select {
	case s.events <- 4: // want `send reachable from HTTP handler \(\*server\)\.HandleSelect .* no make site for events`
	case v := <-s.other:
		_ = v
	}
}
