// Package clean shows the send shapes chanbound accepts on handler
// paths: selects with a default or timeout escape, and sends on
// channels whose every make site passes an explicit capacity — the
// admission-layer construction.
package clean

import (
	"net/http"
	"time"
)

type server struct {
	slots chan struct{}
	queue chan struct{}
}

// newServer sizes both semaphores explicitly; a constant and a
// computed capacity both count as bounded.
func newServer(depth int) *server {
	return &server{
		slots: make(chan struct{}, 4),
		queue: make(chan struct{}, depth),
	}
}

func (s *server) Handle(w http.ResponseWriter, r *http.Request) {
	// Select with default: shed instead of block.
	select {
	case s.slots <- struct{}{}:
	default:
		http.Error(w, "busy", http.StatusServiceUnavailable)
		return
	}

	// Direct send on a provably bounded channel.
	s.queue <- struct{}{}

	// Select with a Timer.C timeout case.
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case s.slots <- struct{}{}:
	case <-t.C:
	}

	// Select with a context-cancellation case.
	select {
	case s.queue <- struct{}{}:
	case <-r.Context().Done():
	}

	// Select with a time.After timeout case.
	select {
	case s.slots <- struct{}{}:
	case <-time.After(time.Millisecond):
	}
}

// release receives are out of scope for chanbound.
func (s *server) release() {
	<-s.slots
	<-s.queue
}
