package clean

// Makes in _test.go files are ignored: a test may build an unbuffered
// instance of a production type without poisoning the bounded proof
// for the daemon's construction path.
func testDouble() *server {
	return &server{
		slots: make(chan struct{}),
		queue: make(chan struct{}),
	}
}
