// Package goroleak proves that every goroutine launched from non-test
// code has a termination or join path the analyzer can see lexically —
// the static form of "the daemon does not leak goroutines per
// request". A long-lived server that spawns an unjoined goroutine per
// request (or per startup step that can fail) accumulates stacks until
// the process dies; the race detector only notices when the leak also
// races, and a load test only notices once the leak is large. This
// check makes the join obligation a compile-gate instead.
//
// # What is proved
//
// Every `go` statement must launch a function literal whose
// termination the enclosing declaration proves by one of three
// patterns:
//
//   - WaitGroup join: the literal calls Done (directly or deferred) on
//     a sync.WaitGroup, and the enclosing function calls Wait on the
//     same variable outside the literal. (The worker pools in
//     internal/core, internal/sim, and cmd/prioload.)
//   - Buffered result channel: the literal's final statement sends on
//     a channel that the enclosing function both creates with a
//     non-zero capacity and receives from. The buffer guarantees the
//     final send cannot block forever even when the receiver bails out
//     early, and the receive gives the value somewhere to go on the
//     normal path. (cmd/priod's `errc <- srv.Serve(ln)`.)
//   - Cancellation: the literal contains a select with a case
//     receiving from ctx.Done() (any context.Context), or receiving
//     from — or ranging over — a channel the enclosing function
//     closes.
//
// A `go` statement that launches a named function, or a literal
// matching none of the patterns, is a finding: wrap the launch in a
// literal carrying one of the joins above. Goroutines launched from
// _test.go files are exempt — the test framework bounds their
// lifetime, and test helpers (httptest servers and the like) routinely
// launch goroutines the test binary joins on its own terms.
//
// The proof is lexical, not a full may-happen-in-parallel analysis: a
// Wait that is dynamically skipped on some path still counts. The
// patterns accepted here are exactly the ones this repository uses;
// extend the analyzer rather than weakening a launch site to an
// unproven shape.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "check that every goroutine launched from non-test code has a lexical " +
		"join: a WaitGroup Done/Wait pair, a final send on a buffered channel " +
		"the launcher drains, or a select on a cancellation channel",
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) error {
	for _, n := range pass.Graph.Nodes {
		// Only declarations: literals are lexically inside one, and the
		// walk below descends into them, so every go statement is seen
		// exactly once with its full lexical context.
		if n.Decl == nil || n.Body == nil || n.InTest {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Body, func(nd ast.Node) bool {
			gs, ok := nd.(*ast.GoStmt)
			if !ok {
				return true
			}
			check(pass, info, n, gs)
			return true
		})
	}
	return nil
}

func check(pass *analysis.ProgramPass, info *types.Info, n *callgraph.Node, gs *ast.GoStmt) {
	lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
	if !ok {
		pass.Reportf(gs.Go, "go statement in %s launches a named function, which goroleak cannot prove terminates; "+
			"wrap the launch in a literal with a lexical join (WaitGroup Done/Wait, a buffered result channel, or a cancellation select)",
			n.Name())
		return
	}
	if provesWaitGroup(info, n.Decl.Body, lit) ||
		provesResultChannel(info, n.Decl.Body, lit) ||
		provesCancellation(info, n.Decl.Body, lit) {
		return
	}
	pass.Reportf(gs.Go, "goroutine launched in %s has no provable termination path: "+
		"want a sync.WaitGroup Done in the goroutine with a matching Wait in %s, "+
		"a final send on a buffered channel %s receives from, "+
		"or a select on ctx.Done or a channel %s closes",
		n.Name(), n.Name(), n.Name(), n.Name())
}

// inspectOutside walks root depth-first, skipping the subtree under
// skip.
func inspectOutside(root, skip ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(nd ast.Node) bool {
		if nd == skip {
			return false
		}
		return nd == nil || fn(nd)
	})
}

// waitGroupMethod resolves call to a sync.WaitGroup method with the
// given name, returning the object the call dispatches through
// (variable or field), or nil.
func waitGroupMethod(info *types.Info, call *ast.CallExpr, name string) types.Object {
	fn := analysis.Callee(info, call)
	if fn == nil || callgraph.FuncKey(fn) != "sync.(*WaitGroup)."+name {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return recvObject(info, sel.X)
}

// recvObject resolves the variable or field a selector receiver names.
func recvObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objOf(info, e)
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// provesWaitGroup: the literal calls wg.Done (anywhere, including
// deferred and nested) and the declaration calls wg.Wait on the same
// object outside the literal.
func provesWaitGroup(info *types.Info, declBody *ast.BlockStmt, lit *ast.FuncLit) bool {
	done := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		if call, ok := nd.(*ast.CallExpr); ok {
			if obj := waitGroupMethod(info, call, "Done"); obj != nil {
				done[obj] = true
			}
		}
		return true
	})
	if len(done) == 0 {
		return false
	}
	joined := false
	inspectOutside(declBody, lit, func(nd ast.Node) bool {
		if call, ok := nd.(*ast.CallExpr); ok && !joined {
			if obj := waitGroupMethod(info, call, "Wait"); obj != nil && done[obj] {
				joined = true
			}
		}
		return !joined
	})
	return joined
}

// provesResultChannel: the literal's final statement is a send on a
// channel the declaration makes with an explicit non-zero capacity and
// receives from outside the literal.
func provesResultChannel(info *types.Info, declBody *ast.BlockStmt, lit *ast.FuncLit) bool {
	if len(lit.Body.List) == 0 {
		return false
	}
	send, ok := lit.Body.List[len(lit.Body.List)-1].(*ast.SendStmt)
	if !ok {
		return false
	}
	ch := recvObject(info, send.Chan)
	if ch == nil {
		return false
	}
	buffered, received := false, false
	inspectOutside(declBody, lit, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			for i, rhs := range nd.Rhs {
				if i < len(nd.Lhs) && bindsBufferedMake(info, nd.Lhs[i], rhs, ch) {
					buffered = true
				}
			}
		case *ast.ValueSpec:
			for i, v := range nd.Values {
				if i < len(nd.Names) && info.Defs[nd.Names[i]] == ch && isBufferedMake(info, v) {
					buffered = true
				}
			}
		case *ast.UnaryExpr:
			if nd.Op == token.ARROW && recvObject(info, nd.X) == ch {
				received = true
			}
		case *ast.RangeStmt:
			if recvObject(info, nd.X) == ch {
				received = true
			}
		}
		return !(buffered && received)
	})
	return buffered && received
}

func bindsBufferedMake(info *types.Info, lhs, rhs ast.Expr, ch types.Object) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || objOf(info, id) != ch {
		return false
	}
	return isBufferedMake(info, rhs)
}

// isBufferedMake reports whether e is make(chan T, n) with n not the
// constant zero.
func isBufferedMake(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if tv, ok := info.Types[call.Fun]; !ok || !tv.IsBuiltin() {
		return false
	}
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return false
	}
	if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
		return false
	}
	return true
}

// provesCancellation: the literal selects on ctx.Done() or on a
// channel the declaration closes outside the literal, or ranges over
// such a channel.
func provesCancellation(info *types.Info, declBody *ast.BlockStmt, lit *ast.FuncLit) bool {
	ok := false
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.SelectStmt:
			for _, cl := range nd.Body.List {
				comm, isClause := cl.(*ast.CommClause)
				if !isClause {
					continue
				}
				if rx := commReceive(comm); rx != nil && isCancelSource(info, declBody, lit, rx) {
					ok = true
				}
			}
		case *ast.RangeStmt:
			if _, isChan := chanType(info, nd.X); isChan && isCancelSource(info, declBody, lit, nd.X) {
				ok = true
			}
		}
		return !ok
	})
	return ok
}

// commReceive extracts the received-from expression of a select case,
// or nil for sends and default.
func commReceive(comm *ast.CommClause) ast.Expr {
	var expr ast.Expr
	switch s := comm.Comm.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	if u, ok := ast.Unparen(expr).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u.X
	}
	return nil
}

// isCancelSource reports whether rx is ctx.Done() for a
// context.Context, or a channel the declaration closes outside the
// literal.
func isCancelSource(info *types.Info, declBody *ast.BlockStmt, lit *ast.FuncLit, rx ast.Expr) bool {
	if call, ok := ast.Unparen(rx).(*ast.CallExpr); ok {
		fn := analysis.Callee(info, call)
		return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" && fn.Name() == "Done"
	}
	ch := recvObject(info, rx)
	if ch == nil {
		return false
	}
	closed := false
	inspectOutside(declBody, lit, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok || closed {
			return !closed
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if ok && id.Name == "close" && len(call.Args) == 1 {
			if tv, ok := info.Types[call.Fun]; ok && tv.IsBuiltin() && recvObject(info, call.Args[0]) == ch {
				closed = true
			}
		}
		return !closed
	})
	return closed
}

func chanType(info *types.Info, e ast.Expr) (*types.Chan, bool) {
	t := info.TypeOf(e)
	if t == nil {
		return nil, false
	}
	ch, ok := t.Underlying().(*types.Chan)
	return ch, ok
}
