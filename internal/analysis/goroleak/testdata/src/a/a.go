// Package a exercises the goroleak analyzer: every go statement here
// lacks a provable termination path and must be reported.
package a

import "sync"

func work(int) {}

func launchNamed() {
	go work(1) // want `go statement in launchNamed launches a named function`
}

func launchBare() {
	go func() { // want `goroutine launched in launchBare has no provable termination path`
		work(2)
	}()
}

// Done without a matching Wait: the goroutine signals a join nobody
// takes.
func doneWithoutWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine launched in doneWithoutWait has no provable termination path`
		defer wg.Done()
		work(3)
	}()
}

// Done and Wait on different WaitGroups.
func mismatchedWaitGroups() {
	var a, b sync.WaitGroup
	a.Add(1)
	go func() { // want `goroutine launched in mismatchedWaitGroups has no provable termination path`
		defer a.Done()
		work(4)
	}()
	b.Wait()
}

// Final send on an unbuffered channel: the send blocks forever if the
// launcher bails out before receiving.
func unbufferedResult() {
	errc := make(chan error)
	go func() { // want `goroutine launched in unbufferedResult has no provable termination path`
		errc <- nil
	}()
	<-errc
}

// Buffered channel the launcher never receives from: the value has
// nowhere to go on the normal path.
func bufferedNeverReceived() {
	errc := make(chan error, 1)
	go func() { // want `goroutine launched in bufferedNeverReceived has no provable termination path`
		errc <- nil
	}()
	_ = errc
}

// A select that only receives data, with no cancellation source.
func selectWithoutCancel(data chan int) {
	go func() { // want `goroutine launched in selectWithoutCancel has no provable termination path`
		for {
			select {
			case v := <-data:
				work(v)
			}
		}
	}()
}

// Ranging over a channel nobody lexically closes.
func rangeNeverClosed(jobs chan int) {
	go func() { // want `goroutine launched in rangeNeverClosed has no provable termination path`
		for v := range jobs {
			work(v)
		}
	}()
}
