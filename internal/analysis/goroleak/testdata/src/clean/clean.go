// Package clean holds one example of every goroutine-join pattern
// goroleak accepts; the analyzer must report nothing here.
package clean

import (
	"context"
	"sync"
)

func work(int) {}

// WaitGroup join, local variable.
func waitGroupPool(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(i)
		}()
	}
	wg.Wait()
}

// WaitGroup join through a struct field.
type pool struct {
	wg sync.WaitGroup
}

func (p *pool) spawn() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work(0)
	}()
	p.wg.Wait()
}

// Final send on a buffered channel the launcher receives from: the
// cmd/priod Serve shape.
func bufferedResult() error {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	return <-errc
}

// Buffered result declared with var-spec binding rather than :=.
func bufferedVarSpec() error {
	var errc = make(chan error, 1)
	go func() {
		errc <- nil
	}()
	return <-errc
}

// Cancellation via ctx.Done.
func cancellable(ctx context.Context, data chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-data:
				work(v)
			}
		}
	}()
}

// Cancellation via a quit channel the launcher closes.
func closedQuit() {
	quit := make(chan struct{})
	go func() {
		select {
		case <-quit:
			return
		}
	}()
	close(quit)
}

// Ranging over a channel the launcher closes.
func rangeOverClosed() {
	jobs := make(chan int)
	go func() {
		for v := range jobs {
			work(v)
		}
	}()
	close(jobs)
}
