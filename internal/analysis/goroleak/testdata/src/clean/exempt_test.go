package clean

// Goroutines launched from _test.go files are exempt: the test
// framework bounds their lifetime. This named launch would be a
// finding in non-test code.
func helperLaunch() {
	go work(9)
}
