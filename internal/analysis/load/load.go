// Package load turns `go list` output into type-checked packages for
// the analyzers, using only the standard library. It shells out to
//
//	go list -export -deps -test -json <patterns>
//
// which compiles every dependency and reports its export-data file,
// then parses each target package from source and type-checks it with
// an importer that reads dependencies from that export data. This is
// the same architecture as a `go vet` driver: only the packages under
// analysis are parsed, everything else is consumed in compiled form, so
// loading stays fast and works without network access.
//
// Test files are analyzed too: with -test, `go list` emits a variant
// package per tested package (ImportPath "p [p.test]") whose file list
// includes the in-package _test.go files, plus an external test package
// ("p_test [p.test]") when one exists. When a variant is present the
// plain package is skipped, since the variant's file set is a superset.
package load

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// ImportPath is the clean import path (variant brackets stripped).
	ImportPath string
	// Dir is the package directory.
	Dir string
	// GoFiles are the absolute paths of the parsed files. For test
	// variants this includes the _test.go files.
	GoFiles []string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists, parses, and type-checks the packages matching patterns
// (run in dir; empty dir means the current directory).
func Load(dir string, patterns ...string) ([]*Package, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(metas))
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}

	// Prefer "p [p.test]" over "p": same files plus the tests.
	hasVariant := make(map[string]bool)
	for _, m := range metas {
		if m.ForTest != "" && strings.HasPrefix(m.ImportPath, m.ForTest+" [") {
			hasVariant[m.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	imports := make(map[string][]string) // clean path -> clean direct imports
	for _, m := range metas {
		switch {
		case m.Standard || m.DepOnly:
			continue
		case strings.HasSuffix(m.ImportPath, ".test"):
			continue // the generated test main package
		case m.ForTest == "" && hasVariant[m.ImportPath]:
			continue
		case len(m.CgoFiles) > 0:
			return nil, fmt.Errorf("load: %s uses cgo, which this driver does not support", m.ImportPath)
		}
		if m.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", m.ImportPath, m.Error.Err)
		}
		pkg, err := check(fset, imp, m)
		if err != nil {
			return nil, err
		}
		for _, dep := range m.Imports {
			imports[pkg.ImportPath] = append(imports[pkg.ImportPath], cleanPath(dep))
		}
		out = append(out, pkg)
	}
	sortTopological(out, imports)
	return out, nil
}

// cleanPath strips a test-variant suffix: "p [p.test]" -> "p".
func cleanPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// sortTopological orders pkgs so every package comes after the loaded
// packages it imports, breaking ties lexicographically by import path —
// a stable order independent of go list's pattern traversal, which the
// driver relies on to propagate facts in dependency order and to emit
// byte-identical diagnostics across runs. A dependency cycle (possible
// only through test variants) leaves the packages involved in
// lexicographic order rather than failing.
func sortTopological(pkgs []*Package, imports map[string][]string) {
	loaded := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		loaded[p.ImportPath] = p
	}
	indeg := make(map[string]int, len(pkgs))
	dependents := make(map[string][]string)
	for _, p := range pkgs {
		indeg[p.ImportPath] += 0
		for _, dep := range imports[p.ImportPath] {
			if dep == p.ImportPath || loaded[dep] == nil {
				continue
			}
			dependents[dep] = append(dependents[dep], p.ImportPath)
			indeg[p.ImportPath]++
		}
	}
	var ready []string
	for _, p := range pkgs {
		if indeg[p.ImportPath] == 0 {
			ready = append(ready, p.ImportPath)
		}
	}
	var order []string
	for len(ready) > 0 {
		sort.Strings(ready)
		next := ready[0]
		ready = ready[1:]
		order = append(order, next)
		for _, dep := range dependents[next] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if len(order) < len(pkgs) { // cycle: append the rest deterministically
		inOrder := make(map[string]bool, len(order))
		for _, p := range order {
			inOrder[p] = true
		}
		var rest []string
		for _, p := range pkgs {
			if !inOrder[p.ImportPath] {
				rest = append(rest, p.ImportPath)
			}
		}
		sort.Strings(rest)
		order = append(order, rest...)
	}
	for i, path := range order {
		pkgs[i] = loaded[path]
	}
}

// goList runs `go list -export -deps -test -json` and decodes the
// stream of package objects.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("load: starting go list: %w", err)
	}
	var metas []*listPkg
	dec := json.NewDecoder(stdout)
	for {
		m := new(listPkg)
		if err := dec.Decode(m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		metas = append(metas, m)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %w", strings.Join(patterns, " "), err)
	}
	return metas, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp *exportImporter, m *listPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(m.GoFiles))
	paths := make([]string, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(m.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
		paths = append(paths, path)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	importPath := m.ImportPath
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i] // "p [p.test]" -> "p"
	}
	conf := types.Config{Importer: &mappedImporter{imp: imp, importMap: m.ImportMap}}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", m.ImportPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        m.Dir,
		GoFiles:    paths,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// ExportImporterFor returns an importer that resolves exactly the
// given import paths (and, transitively, their dependencies) through
// `go list -export`. The analysistest harness uses it to type-check
// testdata packages, whose files are outside any listable package.
func ExportImporterFor(fset *token.FileSet, imports map[string]bool) (types.Importer, error) {
	paths := make([]string, 0, len(imports))
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths) // deterministic subprocess invocation (and mapiterorder-clean)
	exports := make(map[string]string)
	if len(paths) > 0 {
		args := append([]string{"list", "-export", "-deps", "-json"}, paths...)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("load: go list %s: %w", strings.Join(paths, " "), err)
		}
		dec := json.NewDecoder(strings.NewReader(string(out)))
		for {
			m := new(listPkg)
			if err := dec.Decode(m); err == io.EOF {
				break
			} else if err != nil {
				return nil, fmt.Errorf("load: decoding go list output: %w", err)
			}
			if m.Export != "" {
				exports[m.ImportPath] = m.Export
			}
		}
	}
	return newExportImporter(fset, exports), nil
}

// exportImporter reads type information from compiler export data, via
// the gc importer in lookup mode. It is shared across packages so each
// dependency is decoded once.
type exportImporter struct {
	imp     types.Importer
	exports map[string]string // import path (possibly a test variant) -> export file
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	ei.imp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := ei.exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	})
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.imp.Import(path)
}

// mappedImporter applies one package's ImportMap (which resolves
// source-level import paths to test-variant packages) before delegating
// to the shared export importer.
type mappedImporter struct {
	imp       *exportImporter
	importMap map[string]string
}

func (mi *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.importMap[path]; ok {
		path = mapped
	}
	return mi.imp.Import(path)
}
