// Package mapiterorder flags `for range` loops over maps whose body has
// an order-dependent effect — the classic determinism killer in a
// pipeline whose advertised contract is that the emitted schedule is a
// deterministic function of the DAG. See repro/internal/analysis for
// the invariant this enforces.
package mapiterorder

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "mapiterorder",
	Doc: "flag map iterations with order-dependent effects (appends that are " +
		"never sorted, writes to writers or files, channel sends); collect the " +
		"keys and sort them instead",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		analysis.WithStack(file, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			loopVars := rangeVars(pass, rs)
			if len(loopVars) == 0 {
				// `for range m` executes the body len(m) times with no
				// key in scope; nothing order-dependent can leak out.
				return true
			}
			checkBody(pass, rs, loopVars, stack)
			return true
		})
	}
	return nil, nil
}

// rangeVars returns the objects of the loop's key/value variables.
func rangeVars(pass *analysis.Pass, rs *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// checkBody reports order-dependent statements in the loop body. stack
// is the ancestor stack of the range statement itself.
func checkBody(pass *analysis.Pass, rs *ast.RangeStmt, loopVars map[types.Object]bool, stack []ast.Node) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if usesAny(pass, n.Value, loopVars) {
				pass.Reportf(n.Pos(), "channel send inside iteration over map %s depends on map order; iterate over sorted keys",
					exprString(rs.X))
			}
		case *ast.CallExpr:
			if isOutputCall(pass, n) && usesAny(pass, n, loopVars) {
				pass.Reportf(n.Pos(), "output written inside iteration over map %s depends on map order; iterate over sorted keys",
					exprString(rs.X))
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				if !usesAny(pass, call, loopVars) {
					continue // e.g. appending a constant per key: still order-dependent in principle, but count-only
				}
				target, _ := n.Lhs[i].(*ast.Ident)
				if target == nil {
					// Appending to a field or element in map order.
					pass.Reportf(n.Pos(), "append to %s inside iteration over map %s depends on map order; iterate over sorted keys",
						exprString(n.Lhs[i]), exprString(rs.X))
					continue
				}
				obj := pass.ObjectOf(target)
				if obj == nil || declaredWithin(pass, obj, rs) {
					continue // loop-local accumulator cannot escape the iteration
				}
				if sortedAfter(pass, obj, rs, stack) {
					continue // collect-then-sort idiom: the order is repaired
				}
				pass.Reportf(n.Pos(), "append to %s inside iteration over map %s depends on map order; sort %s afterwards or iterate over sorted keys",
					target.Name, exprString(rs.X), target.Name)
			}
		}
		return true
	})
}

// usesAny reports whether the expression tree mentions any loop
// variable.
func usesAny(pass *analysis.Pass, root ast.Node, vars map[types.Object]bool) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !found {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && vars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isOutputCall reports whether the call externalizes data in call
// order: fmt printing, file writes, or Write* methods (io.Writer,
// strings.Builder, bytes.Buffer, hashes, ...).
func isOutputCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	if fn.Type().(*types.Signature).Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
		return false
	}
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
	case "os":
		switch name {
		case "WriteFile", "Remove", "RemoveAll", "Rename", "Mkdir", "MkdirAll":
			return true
		}
	}
	return false
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredWithin reports whether obj's declaration lies inside the
// range statement.
func declaredWithin(pass *analysis.Pass, obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
}

// sortedAfter reports whether, later in some enclosing function body,
// the accumulated slice is passed to a sorting call — any callee whose
// name contains "sort" (sort.Strings, slices.Sort, a local sortArcs,
// ...) with the slice among its arguments.
func sortedAfter(pass *analysis.Pass, slice types.Object, rs *ast.RangeStmt, stack []ast.Node) bool {
	var bodies []*ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			bodies = append(bodies, f.Body)
		case *ast.FuncLit:
			bodies = append(bodies, f.Body)
		}
	}
	for _, body := range bodies {
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found || call.Pos() < rs.End() {
				return true
			}
			if !calleeNameContainsSort(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == slice {
					found = true
				}
				// sort.Slice-style: the slice may appear inside a
				// closure argument; usesAny covers that too.
				if usesObj(pass, arg, slice) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func usesObj(pass *analysis.Pass, root ast.Node, obj types.Object) bool {
	return usesAny(pass, root, map[types.Object]bool{obj: true})
}

func calleeNameContainsSort(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	case *ast.SelectorExpr:
		if strings.Contains(strings.ToLower(fun.Sel.Name), "sort") {
			return true
		}
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
				p := pn.Imported().Path()
				return p == "sort" || p == "slices"
			}
		}
	}
	return false
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CompositeLit:
		return "literal"
	default:
		return "value"
	}
}
