package mapiterorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/mapiterorder"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), mapiterorder.Analyzer, "a", "clean")
}
