// Package a exercises the mapiterorder analyzer: order-dependent map
// iterations are flagged, the collect-then-sort idiom is not.
package a

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside iteration over map m depends on map order`
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func appendThenSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func appendThenCustomSort(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sortInts(vals)
	return vals
}

func sortInts(xs []int) { sort.Ints(xs) }

func printInLoop(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `output written inside iteration over map m depends on map order`
	}
}

func fprintInLoop(m map[string]int, w *os.File) {
	for k := range m {
		fmt.Fprintf(w, "%s\n", k) // want `output written inside iteration over map m depends on map order`
	}
}

func builderInLoop(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `output written inside iteration over map m depends on map order`
	}
	return b.String()
}

func writeFileInLoop(m map[string]string) {
	for name, text := range m {
		os.WriteFile(name, []byte(text), 0o644) // want `output written inside iteration over map m depends on map order`
	}
}

func sendInLoop(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside iteration over map m depends on map order`
	}
}

type collector struct{ out []string }

func appendToField(m map[string]int, c *collector) {
	for k := range m {
		c.out = append(c.out, k) // want `append to c.out inside iteration over map m depends on map order`
	}
}
