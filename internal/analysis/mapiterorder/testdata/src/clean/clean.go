// Package clean holds map iterations with order-independent bodies;
// the mapiterorder analyzer must stay silent on all of them.
package clean

import "fmt"

func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func count(m map[string]bool) int {
	n := 0
	for range m { // no key variable: nothing order-dependent can leak
		n++
	}
	return n
}

func maxValue(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func loopLocalAccumulator(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v) // accumulator lives inside the iteration
		}
		total += len(doubled)
	}
	return total
}

func printAfter(m map[string]int) {
	total := 0
	for _, v := range m {
		total += v
	}
	fmt.Println(total)
}

func rangeOverSlice(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x) // slices iterate in index order
	}
	return out
}
