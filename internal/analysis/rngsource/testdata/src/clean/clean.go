// Package clean uses randomness only through explicit, replayable
// generators; the rngsource analyzer must stay silent.
package clean

import (
	"math/rand"

	"repro/internal/rng"
)

func replayable(seed uint64) []int {
	r := rng.New(seed)
	return r.Perm(16)
}

func split(parent *rng.Source) *rng.Source {
	return parent.Split()
}

func stdlibExplicit(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
