// Package a exercises the rngsource analyzer: process-global math/rand
// functions and wall-clock seeding are flagged; explicit generators
// with explicit seeds are not.
package a

import (
	"math/rand"
	"time"

	"repro/internal/rng"
)

func globals() {
	_ = rand.Intn(10)     // want `process-global math/rand state`
	_ = rand.Float64()    // want `process-global math/rand state`
	rand.Shuffle(3, swap) // want `process-global math/rand state`
	rand.Seed(42)         // want `process-global math/rand state`
	_ = rand.Perm(5)      // want `process-global math/rand state`
}

func swap(i, j int) {}

func explicitGenerator() int {
	r := rand.New(rand.NewSource(42)) // explicit seed: allowed
	return r.Intn(10)                 // method on an explicit generator: allowed
}

func repoGenerator(seed uint64) float64 {
	return rng.New(seed).Float64()
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeding a generator from time.Now`
}

func wallClockSeedRepo() *rng.Source {
	return rng.New(uint64(time.Now().UnixNano())) // want `seeding a generator from time.Now`
}

func typesAreFine(s rand.Source) *rand.Rand {
	return rand.New(s)
}

func timeElsewhereIsFine() time.Time {
	return time.Now() // only seeding expressions are restricted
}
