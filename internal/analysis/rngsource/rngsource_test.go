package rngsource_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/rngsource"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), rngsource.Analyzer, "a", "clean")
}
