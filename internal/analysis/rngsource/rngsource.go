// Package rngsource enforces the repository's RNG policy: simulator
// runs must replay exactly given a seed, so the process-global
// math/rand functions are forbidden outside repro/internal/rng, and no
// generator may be seeded from the wall clock. See
// repro/internal/analysis for the policy.
package rngsource

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "rngsource",
	Doc: "forbid process-global math/rand functions and time.Now seeding " +
		"outside repro/internal/rng; use rng.New with an explicit seed",
	Run: run,
}

// rngPackage is the one package allowed to own raw randomness.
const rngPackage = "repro/internal/rng"

// allowed lists the math/rand identifiers that do not touch the global
// source: explicit-generator constructors and types.
var allowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// seeders are the constructors whose argument expressions must not read
// the wall clock.
var seeders = map[string]bool{"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == rngPackage {
		return nil, nil
	}
	// Nested seeders (rand.New(rand.NewSource(time.Now()...))) would
	// report the same wall-clock read twice; dedupe by position.
	reported := make(map[token.Pos]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := pass.TypesInfo.Uses[n.Sel]
				if obj == nil || obj.Pkg() == nil || !isMathRand(obj.Pkg().Path()) {
					return true
				}
				fn, ok := obj.(*types.Func)
				if !ok || fn.Type().(*types.Signature).Recv() != nil {
					return true // methods on an explicit generator are fine
				}
				if !allowed[fn.Name()] {
					pass.Reportf(n.Pos(), "%s.%s uses the process-global math/rand state; use %s with an explicit seed",
						obj.Pkg().Name(), fn.Name(), rngPackage)
				}
			case *ast.CallExpr:
				if !isSeedingCall(pass, n) {
					return true
				}
				for _, arg := range n.Args {
					if now := findTimeNow(pass, arg); now != nil && !reported[now.Pos()] {
						reported[now.Pos()] = true
						pass.Reportf(now.Pos(), "seeding a generator from time.Now makes runs unreplayable; thread an explicit seed through the experiment config")
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

func isMathRand(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// isSeedingCall reports whether call constructs a generator: one of the
// math/rand seeders or repro/internal/rng.New.
func isSeedingCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	if isMathRand(fn.Pkg().Path()) && seeders[fn.Name()] {
		return true
	}
	return fn.Pkg().Path() == rngPackage && fn.Name() == "New"
}

// findTimeNow returns a call to time.Now within the expression, if any.
func findTimeNow(pass *analysis.Pass, root ast.Expr) ast.Node {
	var found ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found != nil {
			return found == nil
		}
		if analysis.IsPkgFunc(pass.TypesInfo, call, "time", "Now") {
			found = call
		}
		return found == nil
	})
	return found
}
