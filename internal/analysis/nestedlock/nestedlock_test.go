package nestedlock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nestedlock"
)

func TestNestedLock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nestedlock.Analyzer, "a", "clean")
}
