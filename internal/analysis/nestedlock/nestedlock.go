// Package nestedlock guards against the two lock bugs a scheduler
// that fans work out across goroutines can deadlock on: acquiring the
// same (non-reentrant) mutex twice on one call path, and acquiring two
// mutexes in opposite orders on two different paths.
//
// The analyzer identifies locks semantically — any value whose
// Lock/RLock/Unlock/RUnlock methods resolve to package sync — and
// abstracts each by its declaration: all instances of one mutex field
// share an identity, exactly the granularity of lockedfield's
// `// guarded by mu` annotations, whose fields this analyzer's locks
// are. Within each function it tracks the lexically held set: an
// Unlock releases, a deferred Unlock holds to the end of the function.
// Across functions it combines the call graph with a transitive
// may-acquire summary per function, so
//
//   - a Lock (or a call to a function that may Lock) of a mutex
//     already held is reported as a potential self-deadlock, and
//   - every observed nesting "B acquired while A held" — lexical or
//     through calls — becomes an edge A -> B in a global lock-ordering
//     graph, whose cycles are reported with the full order that each
//     direction was observed in.
//
// Helpers that follow the `...Locked` naming convention (run with the
// caller's lock held, never acquire it) satisfy the analysis
// naturally: they contain no Lock call, so they contribute nothing to
// the may-acquire summary. Calls through interfaces fan out to every
// loaded implementation, and calls through unresolved function values
// are assumed to acquire nothing — the same conservative split the
// other interprocedural analyzers document.
package nestedlock

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "nestedlock",
	Doc: "flag double-acquires of one mutex on a call path and cross-path " +
		"lock-ordering cycles, interprocedurally over the call graph",
	RunProgram: run,
}

// lockMethods classifies the sync methods: true acquires, false
// releases.
var lockMethods = map[string]bool{
	"Lock": true, "RLock": true,
	"Unlock": false, "RUnlock": false,
}

// acquire is one Lock call: the mutex identity and where.
type acquire struct {
	lock *types.Var
	pos  token.Pos
	read bool // RLock, which may legally nest with other RLocks
}

// callSite is one outgoing call made while holding locks.
type callSite struct {
	edge callgraph.Edge
	held []*types.Var // snapshot, in acquisition order
}

// funcSummary is the lexical analysis of one function body.
type funcSummary struct {
	acquires []acquire
	calls    []callSite
	doubles  []acquire // re-acquired while already held
	nestings []nesting // lexical A-held-then-B-locked pairs
}

// nesting is one observed ordering: inner locked while outer held.
type nesting struct {
	outer, inner *types.Var
	pos          token.Pos
}

type checker struct {
	pass      *analysis.ProgramPass
	summaries map[*callgraph.Node]*funcSummary
	mayAcq    map[*callgraph.Node]map[*types.Var]bool
	onStack   map[*callgraph.Node]bool
}

func run(pass *analysis.ProgramPass) error {
	c := &checker{
		pass:      pass,
		summaries: make(map[*callgraph.Node]*funcSummary),
		mayAcq:    make(map[*callgraph.Node]map[*types.Var]bool),
		onStack:   make(map[*callgraph.Node]bool),
	}

	// Ordering edges: outer lock -> inner lock, with the position of the
	// first observation of each direction.
	type orderEdge struct {
		from, to *types.Var
	}
	firstPos := make(map[orderEdge]token.Pos)
	succs := make(map[*types.Var][]*types.Var)
	addEdge := func(from, to *types.Var, pos token.Pos) {
		if from == to {
			return // the double-acquire check owns this case
		}
		e := orderEdge{from, to}
		if _, ok := firstPos[e]; ok {
			return
		}
		firstPos[e] = pos
		succs[from] = append(succs[from], to)
	}

	for _, n := range c.pass.Graph.Nodes {
		sum := c.summarize(n)
		if sum == nil {
			continue
		}
		for _, d := range sum.doubles {
			c.pass.Reportf(d.pos, "%s locks %s, which is already held on this path (self-deadlock)",
				n.Name(), c.lockLabel(d.lock))
		}
		for _, nest := range sum.nestings {
			addEdge(nest.outer, nest.inner, nest.pos)
		}
		for _, cs := range sum.calls {
			if cs.edge.Callee == nil || cs.edge.Callee.Body == nil {
				continue
			}
			acq := c.acquiresOf(cs.edge.Callee)
			for _, held := range cs.held {
				if acq[held] {
					c.pass.Reportf(cs.edge.Pos,
						"%s calls %s while holding %s, which %s may acquire again (self-deadlock)",
						n.Name(), cs.edge.Callee.Name(), c.lockLabel(held), cs.edge.Callee.Name())
				}
				for inner := range acq {
					if inner != held {
						addEdge(held, inner, cs.edge.Pos)
					}
				}
			}
		}
	}

	// Cycle detection over the ordering graph. Locks are visited in
	// label order and successor lists are sorted, so reports are
	// deterministic; each cycle is reported once, from its
	// lexicographically-smallest lock.
	var locks []*types.Var
	seen := make(map[*types.Var]bool)
	for e := range firstPos {
		if !seen[e.from] {
			seen[e.from] = true
			locks = append(locks, e.from)
		}
		if !seen[e.to] {
			seen[e.to] = true
			locks = append(locks, e.to)
		}
	}
	sort.Slice(locks, func(i, j int) bool { return c.lockLabel(locks[i]) < c.lockLabel(locks[j]) })
	for _, l := range locks {
		sort.Slice(succs[l], func(i, j int) bool {
			return c.lockLabel(succs[l][i]) < c.lockLabel(succs[l][j])
		})
	}
	for _, start := range locks {
		path := []*types.Var{start}
		var dfs func(cur *types.Var) bool
		visited := make(map[*types.Var]bool)
		dfs = func(cur *types.Var) bool {
			for _, next := range succs[cur] {
				if next == start && len(path) > 1 {
					labels := make([]string, 0, len(path)+1)
					smallest := true
					for _, l := range path {
						if c.lockLabel(l) < c.lockLabel(start) {
							smallest = false
						}
						labels = append(labels, c.lockLabel(l))
					}
					if !smallest {
						continue // reported from the smaller lock
					}
					labels = append(labels, c.lockLabel(start))
					c.pass.Reportf(firstPos[orderEdge{start, path[1]}],
						"lock ordering cycle: %s (each direction is observed on some path; opposite orders can deadlock)",
						joinArrows(labels))
					return true
				}
				if visited[next] || next == start {
					continue
				}
				visited[next] = true
				path = append(path, next)
				if dfs(next) {
					return true
				}
				path = path[:len(path)-1]
			}
			return false
		}
		dfs(start)
	}
	return nil
}

func joinArrows(labels []string) string {
	out := ""
	for i, l := range labels {
		if i > 0 {
			out += " → "
		}
		out += l
	}
	return out
}

// lockLabel names a lock for diagnostics, disambiguated by its
// declaration position: "mu (kernel.go:12)".
func (c *checker) lockLabel(v *types.Var) string {
	p := c.pass.Fset.Position(v.Pos())
	return fmt.Sprintf("%s (%s:%d)", v.Name(), filepath.Base(p.Filename), p.Line)
}

// acquiresOf returns the set of locks node may transitively acquire.
// Back-edges in recursive call chains contribute the (possibly still
// partial) in-progress summary, the standard under-approximation that
// converges for the acyclic bulk of the graph.
func (c *checker) acquiresOf(n *callgraph.Node) map[*types.Var]bool {
	if acq, ok := c.mayAcq[n]; ok {
		return acq
	}
	if c.onStack[n] {
		return nil
	}
	c.onStack[n] = true
	defer func() { c.onStack[n] = false }()
	acq := make(map[*types.Var]bool)
	if sum := c.summarize(n); sum != nil {
		for _, a := range sum.acquires {
			acq[a.lock] = true
		}
		for _, cs := range sum.calls {
			if cs.edge.Callee == nil || cs.edge.Callee.Body == nil {
				continue
			}
			for l := range c.acquiresOf(cs.edge.Callee) {
				acq[l] = true
			}
		}
	}
	c.mayAcq[n] = acq
	return acq
}

// summarize runs the lexical held-set analysis over one body. The held
// set flows forward through the statement list; branches share it
// conservatively (an acquire inside a branch stays held after it, so a
// conditional Lock without Unlock is still seen by later code).
func (c *checker) summarize(n *callgraph.Node) *funcSummary {
	if sum, ok := c.summaries[n]; ok {
		return sum
	}
	if n.Body == nil || n.Pkg == nil {
		c.summaries[n] = nil
		return nil
	}
	sum := &funcSummary{}
	c.summaries[n] = sum

	// Map call positions to this node's outgoing edges so the walk can
	// snapshot the held set per call site.
	edgesAt := make(map[token.Pos][]callgraph.Edge)
	for _, e := range n.Out {
		if e.Site != nil {
			edgesAt[e.Site.Lparen] = append(edgesAt[e.Site.Lparen], e)
		}
	}

	var held []*types.Var
	heldRead := make(map[*types.Var]bool)
	heldSet := func(v *types.Var) bool {
		for _, h := range held {
			if h == v {
				return true
			}
		}
		return false
	}

	ast.Inspect(n.Body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false // its body is its own node, analyzed separately
		case *ast.DeferStmt:
			// A deferred Unlock holds to the end of the function: do not
			// descend, so the Unlock is never processed as a release.
			// (A deferred Lock is pathological; ignored the same way.)
			return false
		case *ast.CallExpr:
			if lock, name, ok := c.syncMethod(n.Pkg.Info, nd); ok {
				if lockMethods[name] {
					read := name == "RLock"
					if heldSet(lock) && !(read && heldRead[lock]) {
						sum.doubles = append(sum.doubles, acquire{lock, nd.Lparen, read})
					} else {
						for _, outer := range held {
							sum.nestings = append(sum.nestings, nesting{outer, lock, nd.Lparen})
						}
						held = append(held, lock)
						heldRead[lock] = read
					}
					sum.acquires = append(sum.acquires, acquire{lock, nd.Lparen, read})
				} else {
					for i, h := range held {
						if h == lock {
							held = append(held[:i], held[i+1:]...)
							delete(heldRead, lock)
							break
						}
					}
				}
				return true
			}
			for _, e := range edgesAt[nd.Lparen] {
				sum.calls = append(sum.calls, callSite{edge: e, held: append([]*types.Var(nil), held...)})
			}
		}
		return true
	})

	// Implicit closure edges (Site == nil) still count as calls — with
	// an empty held set, since the literal may run later.
	for _, e := range n.Out {
		if e.Site == nil {
			sum.calls = append(sum.calls, callSite{edge: e})
		}
	}
	return sum
}

// syncMethod matches a call of a sync.Mutex/RWMutex method and returns
// the lock's identity: the declared variable or field the method is
// called on.
func (c *checker) syncMethod(info *types.Info, call *ast.CallExpr) (*types.Var, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	if _, known := lockMethods[sel.Sel.Name]; !known {
		return nil, "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	var id *ast.Ident
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil, "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil, "", false
	}
	return v, sel.Sel.Name, true
}
