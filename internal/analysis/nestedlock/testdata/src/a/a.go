// Package a exercises the nestedlock analyzer: a lexical
// double-acquire, an interprocedural one, and a lock-ordering cycle.
package a

import "sync"

var mu sync.Mutex

var muA, muB sync.Mutex

func doubleLexical() {
	mu.Lock()
	mu.Lock() // want `doubleLexical locks mu \(a.go:7\), which is already held on this path \(self-deadlock\)`
	mu.Unlock()
	mu.Unlock()
}

func doubleThroughCall() {
	mu.Lock()
	defer mu.Unlock()
	helper() // want `doubleThroughCall calls helper while holding mu \(a.go:7\), which helper may acquire again \(self-deadlock\)`
}

func helper() {
	mu.Lock()
	defer mu.Unlock()
}

// lockAB and lockBA acquire the two mutexes in opposite orders; the
// cycle is reported at the first observed A-before-B nesting.

func lockAB() {
	muA.Lock()
	muB.Lock() // want `lock ordering cycle: muA \(a.go:9\) → muB \(a.go:9\) → muA \(a.go:9\)`
	muB.Unlock()
	muA.Unlock()
}

func lockBA() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}
