// Package clean holds locking patterns the analyzer must accept: a
// consistent acquisition order, release-then-reacquire, deferred
// unlocks, the ...Locked helper convention, and nested read locks.
package clean

import "sync"

type registry struct {
	mu    sync.Mutex
	state sync.RWMutex
	items []int // guarded by mu
	view  []int // guarded by state
}

var order sync.Mutex // always acquired before any registry lock

func (r *registry) add(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addLocked(v)
}

// addLocked runs with r.mu held and never reacquires it.
func (r *registry) addLocked(v int) {
	r.items = append(r.items, v)
}

func (r *registry) consistentOrder(v int) {
	order.Lock()
	r.mu.Lock()
	r.items = append(r.items, v)
	r.mu.Unlock()
	order.Unlock()
}

func (r *registry) alsoConsistent() int {
	order.Lock()
	defer order.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.items)
}

func (r *registry) releaseThenReacquire(v int) {
	r.mu.Lock()
	r.items = append(r.items, v)
	r.mu.Unlock()
	r.mu.Lock()
	r.items = append(r.items, v)
	r.mu.Unlock()
}

func (r *registry) nestedRead() int {
	r.state.RLock()
	defer r.state.RUnlock()
	return r.readLocked()
}

func (r *registry) readLocked() int {
	return len(r.view)
}
