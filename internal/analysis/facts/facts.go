// Package facts lets analyzers attach typed facts to functions and
// package-level objects and look them up again from a different
// package, mirroring the fact mechanism of golang.org/x/tools/go/
// analysis. The driver analyzes packages in dependency order (see
// load.Load), so when package core is analyzed, the facts its analyzer
// exported while visiting internal/btree are already in the set.
//
// The one real problem a fact store must solve is object identity: when
// btree is analyzed, its functions are *types.Func objects produced by
// type-checking btree's source; when core is analyzed, the same
// functions appear as distinct objects decoded from btree's export
// data. The x/tools implementation bridges the two with objectpath
// encoding; this one uses the simpler key that suffices for the
// analyzers in this repository — (package path, receiver type name,
// object name) — which uniquely names every package-level function,
// method, variable, constant, and type. Local objects (parameters,
// closure bindings) have no stable cross-package name and cannot carry
// facts; analyzers handle them during their own traversal.
package facts

import (
	"go/types"
	"reflect"
)

// A Fact is a typed datum attached to an object. The AFact method has
// no meaning beyond marking the type as a fact, exactly as in
// x/tools/go/analysis.
type Fact interface{ AFact() }

// key names one (object, fact type) slot.
type key struct {
	pkg  string // package path of the object
	recv string // receiver type name for methods, "" otherwise
	name string // object name
	typ  reflect.Type
}

// Set is an in-memory fact store shared by every pass of one driver
// run. The zero value is ready to use. A Set is not safe for concurrent
// use; the driver runs passes sequentially.
type Set struct {
	m map[key]Fact
}

// ExportObjectFact records fact for obj, replacing any previous fact of
// the same type. It reports whether obj can carry facts (package-level
// or method object with a stable name); facts on local objects are
// silently dropped, again matching the x/tools contract that analyzers
// must not rely on them.
func (s *Set) ExportObjectFact(obj types.Object, fact Fact) bool {
	k, ok := keyOf(obj, fact)
	if !ok {
		return false
	}
	if s.m == nil {
		s.m = make(map[key]Fact)
	}
	s.m[k] = fact
	return true
}

// ImportObjectFact copies the fact of ptr's type attached to obj into
// *ptr and reports whether one was found. ptr must be a non-nil pointer
// to a fact value, as with x/tools.
func (s *Set) ImportObjectFact(obj types.Object, ptr Fact) bool {
	k, ok := keyOf(obj, ptr)
	if !ok || s.m == nil {
		return false
	}
	f, ok := s.m[k]
	if !ok {
		return false
	}
	// *ptr = *f, via reflection: both are pointers to the same type.
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// keyOf computes the stable slot for obj, normalizing generic
// instantiations to their origin so that facts computed on the generic
// declaration are found through any instantiation.
func keyOf(obj types.Object, fact Fact) (key, bool) {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Ptr {
		return key{}, false
	}
	switch o := obj.(type) {
	case *types.Func:
		o = o.Origin()
		pkg := o.Pkg()
		if pkg == nil {
			return key{}, false // builtins like error.Error
		}
		recv := ""
		if r := o.Type().(*types.Signature).Recv(); r != nil {
			n := receiverNamed(r.Type())
			if n == nil {
				return key{}, false // interface method; facts live on impls
			}
			recv = n.Origin().Obj().Name()
		}
		return key{pkg.Path(), recv, o.Name(), t}, true
	case *types.Var:
		o = o.Origin()
		if o.Pkg() == nil || o.Parent() != o.Pkg().Scope() {
			return key{}, false // field, param, or local
		}
		return key{o.Pkg().Path(), "", o.Name(), t}, true
	case *types.TypeName, *types.Const:
		if obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
			return key{}, false
		}
		return key{obj.Pkg().Path(), "", obj.Name(), t}, true
	}
	return key{}, false
}

// receiverNamed unwraps a method receiver type to its named type, or
// nil for interface receivers.
func receiverNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
