// Package clean holds pure functions the analyzer must accept,
// including the patterns the real scheduler uses: reading globals,
// receiver mutation, Sprintf/Errorf, local rand sources, and calls
// through function values.
package clean

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

var sentinel = -1 // read, never written

//prio:pure
func readsGlobal(n int) bool {
	return n == sentinel
}

type scratch struct {
	buf  []int
	rank map[int]int
}

// Receiver mutation is local state, not an effect.
//
//prio:pure
func (s *scratch) fill(n int) {
	s.buf = append(s.buf, n)
	s.rank[n] = len(s.buf)
}

// The Sprint family and Errorf are pure: they format, they do not
// print.
//
//prio:pure
func describe(n int) (string, error) {
	if n < 0 {
		return "", fmt.Errorf("negative: %d", n)
	}
	return fmt.Sprintf("ok: %d", n), nil
}

// A locally seeded source is deterministic; only the global source is
// banned.
//
//prio:pure
func localRand(seed int64) int {
	return rand.New(rand.NewSource(seed)).Int()
}

// Durations are values; only Now/Since/Until read the clock.
//
//prio:pure
func scale(d time.Duration) time.Duration {
	return d * 2
}

// Calls through function values are assumed pure (the comparator is
// checked where it is declared).
//
//prio:pure
func sortWith(xs []int, less func(a, b int) bool) {
	sort.Slice(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
}
