// Package a exercises the purity analyzer: every annotated function
// reaches an effect, directly or through a chain of local calls.
package a

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

var counter int

var registry = map[string]int{}

//prio:pure
func writesGlobal(n int) { // want `writesGlobal is annotated //prio:pure but writes package-level variable counter`
	counter = n
}

//prio:pure
func bumpsGlobal() { // want `bumpsGlobal is annotated //prio:pure but writes package-level variable counter`
	counter++
}

//prio:pure
func storesInGlobalMap(k string, v int) { // want `storesInGlobalMap is annotated //prio:pure but writes package-level variable registry`
	registry[k] = v
}

//prio:pure
func readsClock() int64 { // want `readsClock is annotated //prio:pure but reads the clock`
	return time.Now().UnixNano()
}

//prio:pure
func globalRand() int { // want `globalRand is annotated //prio:pure but draws from the global random source`
	return rand.Int()
}

//prio:pure
func prints(v int) { // want `prints is annotated //prio:pure but performs I/O \(fmt.Println\)`
	fmt.Println(v)
}

//prio:pure
func touchesFS() bool { // want `touchesFS is annotated //prio:pure but performs I/O \(os.Stat\)`
	_, err := os.Stat("/tmp")
	return err == nil
}

// Transitive, with the chain in the message: the annotated entry point
// is clean itself but calls a helper that calls a helper that reads
// the clock. Declaration order is deliberately entry-first so the
// fixpoint has to iterate.

//prio:pure
func entry() int64 { // want `entry is annotated //prio:pure but calls a.helper, which calls a.deep, which reads the clock`
	return helper()
}

func helper() int64 { return deep() }

func deep() int64 { return time.Now().UnixNano() }

// An effect inside a closure counts against the declaring function.

//prio:pure
func closureWrites() func() { // want `closureWrites is annotated //prio:pure but writes package-level variable counter`
	return func() { counter++ }
}
