// Package purity statically proves the `//prio:pure` contract: an
// annotated function must be deterministic and effect-free — it may
// not, directly or through any statically resolvable call chain, write
// package-level state, read the clock (time.Now/Since/Until), draw
// from the global random source (math/rand package-level functions),
// or perform I/O (anything in os, net, or syscall, and the fmt
// Print/Scan families). The bit-identical-schedule guarantee that the
// replication experiments rest on (a Prioritize call must produce the
// same schedule on every run and on every goroutine) is exactly this
// contract.
//
// The analyzer is a package pass that propagates facts: the driver
// analyzes packages in dependency order, each pass summarizes every
// function it sees (not just annotated ones) and exports an Impure
// fact for each function that can reach an effect. When the annotated
// entry point in core is analyzed, a violation deep inside
// internal/btree is already recorded as a fact on the btree function,
// and the diagnostic carries the whole chain:
//
//	Prioritize is annotated //prio:pure but calls btree.rebalance,
//	which calls time.Now at btree.go:91
//
// Writes are detected syntactically: an assignment, increment, or
// indexed store whose destination resolves to a package-level
// variable (its own package's or an imported one's). Writes that
// launder a global through a pointer (`p := &global; p.x = 1`) are
// not caught; the repository's globals are sentinel values and seeds,
// never written, so the syntactic check plus code review carries the
// contract. Calls the analyzer cannot resolve — through interfaces or
// function values — are assumed pure: the scheduler's comparator
// closures and policy objects are themselves checked wherever they
// are declared, and the differential tests remain the backstop for
// what static analysis assumes away.
package purity

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "purity",
	Doc: "check that //prio:pure functions cannot reach clock reads, global " +
		"rand, I/O, or package-level state writes (facts propagate the check " +
		"across packages)",
	Run: run,
}

// Annotation is the marker comment, exported for the driver's docs.
const Annotation = "prio:pure"

// Impure is the fact exported for every function that can reach an
// effect. Because reads as the continuation of "<function> ...", e.g.
// "calls time.Now at sched.go:10".
type Impure struct {
	Because string
}

func (*Impure) AFact() {}

// bannedFuncs maps "pkgpath.Name" of package-level functions to the
// effect they perform.
var bannedFuncs = map[string]string{
	"time.Now":   "reads the clock",
	"time.Since": "reads the clock",
	"time.Until": "reads the clock",
}

// bannedPkgs lists packages any call into which is an effect.
var bannedPkgs = map[string]string{
	"os":      "performs I/O",
	"net":     "performs I/O",
	"syscall": "performs I/O",
}

// fmtIO lists the fmt functions that perform I/O (the Sprint family
// and Errorf are pure).
var fmtIO = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Scan": true, "Scanf": true, "Scanln": true,
	"Fscan": true, "Fscanf": true, "Fscanln": true,
	"Sscan": true, "Sscanf": true, "Sscanln": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Collect every declared function, its direct effects, and its
	// static calls; then propagate impurity to a fixpoint inside the
	// package (declarations may call each other in any order).
	type fnInfo struct {
		decl      *ast.FuncDecl
		fn        *types.Func
		reason    string // direct effect, or "" if none found
		annotated bool
		calls     []*types.Func // static callees, in source order
	}
	var fns []*fnInfo
	index := make(map[*types.Func]*fnInfo)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &fnInfo{decl: fd, fn: fn, annotated: annotated(fd)}
			fi.reason, fi.calls = summarize(pass, fd)
			fns = append(fns, fi)
			index[fn] = fi
		}
	}

	// Fixpoint: a function calling an impure function is impure. Facts
	// cover callees in already-analyzed packages; index covers this one.
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if fi.reason != "" {
				continue
			}
			for _, callee := range fi.calls {
				because := ""
				if other, ok := index[callee.Origin()]; ok {
					because = other.reason
				} else if pass.Facts != nil {
					var imp Impure
					if pass.Facts.ImportObjectFact(callee, &imp) {
						because = imp.Because
					}
				}
				if because != "" {
					fi.reason = fmt.Sprintf("calls %s, which %s", funcName(callee), because)
					changed = true
					break
				}
			}
		}
	}

	for _, fi := range fns {
		if fi.reason == "" {
			continue
		}
		if pass.Facts != nil {
			pass.Facts.ExportObjectFact(fi.fn, &Impure{Because: fi.reason})
		}
		if fi.annotated {
			pass.Reportf(fi.decl.Name.Pos(), "%s is annotated //prio:pure but %s",
				fi.fn.Name(), fi.reason)
		}
	}
	return nil, nil
}

func annotated(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, cm := range decl.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(cm.Text, "//")) == Annotation {
			return true
		}
	}
	return false
}

// summarize walks one declaration (nested literals included: a closure
// acts on behalf of its encloser) and returns its first direct effect
// and its static callees.
func summarize(pass *analysis.Pass, fd *ast.FuncDecl) (reason string, calls []*types.Func) {
	effect := func(pos token.Pos, format string, args ...interface{}) {
		if reason != "" {
			return // first effect in source order wins
		}
		p := pass.Fset.Position(pos)
		reason = fmt.Sprintf(format, args...) +
			fmt.Sprintf(" at %s:%d", filepath.Base(p.Filename), p.Line)
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v := writtenGlobal(pass, lhs); v != nil {
					effect(lhs.Pos(), "writes package-level variable %s", v.Name())
				}
			}
		case *ast.IncDecStmt:
			if v := writtenGlobal(pass, n.X); v != nil {
				effect(n.X.Pos(), "writes package-level variable %s", v.Name())
			}
		case *ast.CallExpr:
			fn := analysis.Callee(pass.TypesInfo, n)
			if fn == nil {
				return true // builtin, conversion, or dynamic: assumed pure
			}
			if why := banned(fn); why != "" {
				effect(n.Lparen, "%s (%s)", why, funcName(fn))
				return true
			}
			if fn.Pkg() != nil {
				calls = append(calls, fn)
			}
		}
		return true
	})
	return reason, calls
}

// banned reports the effect a callee performs by contract, or "".
func banned(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	path := pkg.Path()
	recv := fn.Type().(*types.Signature).Recv()
	if why, ok := bannedFuncs[path+"."+fn.Name()]; ok && recv == nil {
		return why
	}
	if why, ok := bannedPkgs[rootPkg(path)]; ok {
		return why
	}
	if (path == "math/rand" || path == "math/rand/v2") && recv == nil &&
		!strings.HasPrefix(fn.Name(), "New") {
		// New/NewSource/NewPCG... construct local deterministic sources;
		// every other package-level function draws from the global one.
		return "draws from the global random source"
	}
	if path == "fmt" && recv == nil && fmtIO[fn.Name()] {
		return "performs I/O"
	}
	return ""
}

// rootPkg returns the first path element: "net/http" -> "net".
func rootPkg(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// writtenGlobal resolves an assignment destination to the package-level
// variable it stores into: a plain identifier, a field selection on
// one, or an index into one.
func writtenGlobal(pass *analysis.Pass, lhs ast.Expr) *types.Var {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			// Either pkg.Var or global.Field: the selector's object
			// settles the former, the base the latter.
			if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && isGlobal(v) && !v.IsField() {
				return v
			}
			lhs = e.X
		case *ast.Ident:
			if v, ok := pass.ObjectOf(e).(*types.Var); ok && isGlobal(v) {
				return v
			}
			return nil
		case *ast.StarExpr:
			lhs = e.X // *p = v: only caught when p is itself a global
		default:
			return nil
		}
	}
}

func isGlobal(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func funcName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			path = path[i+1:]
		}
		pkg = path + "."
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		rt := recv.Type()
		ptr := ""
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
			ptr = "*"
		}
		if named, ok := rt.(*types.Named); ok {
			return fmt.Sprintf("%s(%s%s).%s", pkg, ptr, named.Obj().Name(), fn.Name())
		}
	}
	return pkg + fn.Name()
}
