package purity_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/purity"
)

func TestPurity(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), purity.Analyzer, "a", "clean")
}
