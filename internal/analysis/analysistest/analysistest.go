// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against expectations written in the source,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// An expectation is a comment of the form
//
//	// want "regexp"
//	// want `regexp` "second regexp"
//
// on the line where a diagnostic is expected. Every diagnostic must
// match an expectation on its line and every expectation must be
// matched by exactly one diagnostic.
//
// Testdata packages live under <analyzer dir>/testdata/src/<name> and
// are ordinary Go source; their imports (standard library or module
// packages) are resolved through `go list -export`, so they may import
// the real packages an analyzer is specialized to (e.g.
// repro/internal/dagman).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/compilerfact"
	"repro/internal/analysis/facts"
	"repro/internal/analysis/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run analyzes the package in <testdata>/src/<pkg> for each named pkg
// and reports mismatches between diagnostics and want comments through
// t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			if err := runOne(t, a, dir); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, dir string) error {
	t.Helper()
	// Parse under the absolute path: compilerfact normalizes diagnostic
	// positions to absolute paths, and the two must compare equal.
	dir, err := filepath.Abs(dir)
	if err != nil {
		return err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var paths []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	if len(files) == 0 {
		return fmt.Errorf("no Go files in %s", dir)
	}

	pkg, info, err := typeCheck(fset, files)
	if err != nil {
		return err
	}

	wants, err := collectWants(fset, files)
	if err != nil {
		return err
	}

	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }
	if a.Run != nil {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    report,
			Facts:     new(facts.Set),
		}
		if _, err := a.Run(pass); err != nil {
			return fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	} else {
		// Program analyzer: fabricate a one-package program and build its
		// call graph, exactly as the driver would for a single package.
		lp := &load.Package{
			ImportPath: pkg.Path(),
			Dir:        dir,
			GoFiles:    paths,
			Fset:       fset,
			Syntax:     files,
			Types:      pkg,
			Info:       info,
		}
		pp := &analysis.ProgramPass{
			Analyzer: a,
			Fset:     fset,
			Pkgs:     []*load.Package{lp},
			Graph:    callgraph.Build([]*load.Package{lp}),
			Facts:    new(facts.Set),
			Report:   report,
		}
		if a.NeedsCompilerFacts {
			// Compile the fixture package with diagnostic flags, exactly
			// as the driver does for real packages.
			var nonMains, mains []string
			if pkg.Name() == "main" {
				mains = []string{dir}
			} else {
				nonMains = []string{dir}
			}
			cf, err := compilerfact.Run("", nonMains, mains)
			if err != nil {
				return fmt.Errorf("analyzer %s: %w", a.Name, err)
			}
			pp.Compiler = cf
			cf.AttachFuncFacts(pp.Pkgs, pp.Facts)
		}
		if err := a.RunProgram(pp); err != nil {
			return fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := lineKey{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re)
			}
		}
	}
	return nil
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantRE extracts the expectation patterns from a "want" comment:
// double-quoted (unescaped via strconv) or backquoted strings.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(fset *token.FileSet, files []*ast.File) (map[lineKey][]*want, error) {
	wants := make(map[lineKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range wantRE.FindAllString(strings.TrimPrefix(text, "want "), -1) {
					pattern := strings.Trim(lit, "`")
					if strings.HasPrefix(lit, "\"") {
						var err error
						pattern, err = strconv.Unquote(lit)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want pattern %s: %w", pos, lit, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %s: %w", pos, lit, err)
					}
					key := lineKey{filepath.Base(pos.Filename), pos.Line}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants, nil
}

// typeCheck type-checks the testdata files, resolving their imports
// (transitively) through `go list -export`.
func typeCheck(fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	imports := make(map[string]bool)
	for _, f := range files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, nil, err
			}
			imports[path] = true
		}
	}
	imp, err := load.ExportImporterFor(fset, imports)
	if err != nil {
		return nil, nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking testdata: %w", err)
	}
	return pkg, info, nil
}
