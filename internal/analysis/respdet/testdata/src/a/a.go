// Package a exercises the respdet analyzer: every annotated function
// here can reach a nondeterminism source — a clock read, global
// randomness, process state, or order-dependent map iteration — and
// must be reported at its declaration.
package a

import (
	"math/rand"
	"os"
	"time"
)

//prio:deterministic
func stamped() int64 { // want `stamped is annotated //prio:deterministic but can reach time.Now, which reads the clock`
	return time.Now().UnixNano()
}

// The clock read two hops away is reported with the call path.

//prio:deterministic
func viaHelper() time.Duration { // want `viaHelper is annotated //prio:deterministic but can reach time.Since, which reads the clock at a.go:\d+ \(path: viaHelper → elapsed\)`
	return elapsed()
}

func elapsed() time.Duration {
	var t0 time.Time
	return time.Since(t0)
}

//prio:deterministic
func draws() int { // want `draws is annotated //prio:deterministic but can reach math/rand.Intn, which draws from the process-global random source`
	return rand.Intn(10)
}

//prio:deterministic
func readsProc() []byte { // want `readsProc is annotated //prio:deterministic but can reach os.ReadFile, which reads process or filesystem state`
	b, _ := os.ReadFile("/proc/self/status")
	return b
}

// Keys collected from a map but never sorted leak iteration order.

//prio:deterministic
func leaksOrder(m map[string]int) []string { // want `leaksOrder is annotated //prio:deterministic but can reach a range over map m whose body depends on iteration order`
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Float accumulation does not commute: summing in iteration order can
// change the low bits run to run.

//prio:deterministic
func floatAccum(m map[string]float64) float64 { // want `floatAccum is annotated //prio:deterministic but can reach a range over map m whose body depends on iteration order`
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// Returning from inside a map range picks whichever entry iteration
// order offers first; the order dependence is reported even one call
// away from the annotated root.

//prio:deterministic
func indirectOrder(m map[string]int) int { // want `indirectOrder is annotated //prio:deterministic but can reach a range over map m whose body depends on iteration order at a.go:\d+ \(path: indirectOrder → pick\)`
	return pick(m)
}

func pick(m map[string]int) int {
	for _, v := range m {
		if v > 0 {
			return v
		}
	}
	return 0
}

// stamp is not annotated: the same clock read draws no finding.
func stamp() int64 {
	return time.Now().UnixNano()
}
