// Package clean holds the deterministic idioms respdet accepts: the
// collect-then-sort discipline, commutative integer accumulation,
// keyed map-to-map writes, loop-local scratch, and explicitly seeded
// randomness.
package clean

import (
	"math/rand"
	"sort"
)

// Collect keys, then repair the order: the canonical discipline.

//prio:deterministic
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// A range binding no variables has indistinguishable iterations.

//prio:deterministic
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Integer accumulation commutes.

//prio:deterministic
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

type stats struct {
	total int
}

// Integer accumulation into a struct field commutes too.

//prio:deterministic
func tally(m map[string]int, s *stats) {
	for _, v := range m {
		s.total += v
	}
}

// Writing another map at the loop key touches each entry exactly once:
// the result is order-independent.

//prio:deterministic
func invert(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Loop-local scratch cannot escape the iteration.

//prio:deterministic
func countNegative(m map[string]int) int {
	neg := 0
	for _, v := range m {
		w := v
		if w < 0 {
			neg++
		}
	}
	return neg
}

// Explicitly seeded randomness is replayable: constructors and methods
// on the seeded value are fine; only package-level draws are banned.

//prio:deterministic
func seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}
