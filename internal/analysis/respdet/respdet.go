// Package respdet proves the `//prio:deterministic` contract: the
// bytes a function writes depend only on its inputs — for the serving
// layer, /v1/prioritize response bytes are a function of the request
// bytes and the loaded workloads, nothing else. The paper's claim
// rests on the schedule being a deterministic function of the DAG;
// this analyzer keeps that property true of the running daemon, where
// the load generator and the differential tests assert bit-identical
// responses and this proof explains why they can.
//
// From every function annotated `//prio:deterministic` the analyzer
// walks the call graph (static edges, interface edges to loaded
// non-test implementations — see repro/internal/analysis/reach) and
// reports:
//
//   - clock reads: time.Now, time.Since, time.Until;
//   - process-global randomness: package-level math/rand and
//     math/rand/v2 draws (explicitly seeded *rand.Rand values and rng
//     sources threaded through configs remain fine);
//   - process/filesystem state: any call into os, os/exec, syscall, or
//     io/ioutil (this is what keeps /proc reads off the response
//     path);
//   - runtime observation: runtime.ReadMemStats, runtime.NumGoroutine;
//   - order-dependent map iteration: a range over a map whose body
//     lets iteration order escape. A range is order-free when it binds
//     no loop variables, writes only loop-local variables, appends to
//     a slice that is sorted later in the enclosing function
//     (collect-then-sort), writes another map at a key derived from
//     the loop key (unique keys — set semantics), or bumps an integer
//     accumulator (integer addition commutes; float accumulation does
//     not and is flagged).
//
// What is deliberately out of scope, and why it is sound here:
// runtime.GOMAXPROCS/NumCPU and goroutine fan-out may change the
// *parallelism* of the pipeline but not its output — the parallel
// Recurse phase merges into component-index order and the differential
// tests pin bit-identity against the sequential reference. Calls
// through unresolved function values are not traversed (the
// annotated path in this repository has none that matter; the
// differential tests backstop). sync.Pool reuse hands back scratch
// that is reset before use. The /metrics handler reads the clock,
// RSS, and goroutine counts by design and is simply not annotated —
// the exemption is the absence of the contract, documented in
// docs/OPERATIONS.md.
//
// Diagnostics anchor at the annotated declaration and carry the call
// path, noalloc-style:
//
//	handlePrioritize is annotated //prio:deterministic but can reach
//	time.Now, which reads the clock, at metrics.go:97 (path: ...)
package respdet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/reach"
)

var Analyzer = &analysis.Analyzer{
	Name: "respdet",
	Doc: "check that //prio:deterministic functions cannot reach a clock read, " +
		"global randomness, process state, or order-dependent map iteration: " +
		"their output must be a function of their input",
	RunProgram: run,
}

// Annotation is the marker comment, exported for the driver's docs.
const Annotation = "prio:deterministic"

func run(pass *analysis.ProgramPass) error {
	for _, n := range pass.Graph.Nodes {
		if n.Decl == nil || n.InTest || !annotated(n.Decl) {
			continue
		}
		c := &checker{pass: pass, root: n, reported: make(map[token.Pos]bool)}
		reach.Walk([]*callgraph.Node{n}, c.visit)
	}
	return nil
}

func annotated(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, cm := range decl.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(cm.Text, "//")) == Annotation {
			return true
		}
	}
	return false
}

type checker struct {
	pass     *analysis.ProgramPass
	root     *callgraph.Node
	reported map[token.Pos]bool
}

func (c *checker) visit(n *callgraph.Node, path []string) {
	for _, e := range n.Out {
		if e.Callee == nil || e.Callee.Body != nil {
			continue
		}
		if why, bad := bannedExternal(e.Callee.Key); bad {
			c.report(e.Pos, path, fmt.Sprintf("%s, which %s", e.Callee.Key, why))
		}
	}
	if n.Pkg == nil || n.Body == nil {
		return
	}
	info := n.Pkg.Info
	analysis.WithStack(n.Body, func(nd ast.Node, stack []ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false // a literal is its own node; visited with its own path
		}
		rs, ok := nd.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		c.checkMapRange(info, n, rs, path)
		return true
	})
}

// bannedExternal classifies an external (body-less) callee key.
func bannedExternal(key string) (string, bool) {
	switch key {
	case "time.Now", "time.Since", "time.Until":
		return "reads the clock", true
	case "runtime.ReadMemStats", "runtime.NumGoroutine":
		return "observes runtime state", true
	}
	for _, prefix := range []string{"os.", "os/exec.", "syscall.", "io/ioutil."} {
		if strings.HasPrefix(key, prefix) {
			return "reads process or filesystem state", true
		}
	}
	for _, prefix := range []string{"math/rand.", "math/rand/v2."} {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		name := key[len(prefix):]
		if strings.Contains(name, "(") || strings.HasPrefix(name, "New") {
			// Methods on explicitly seeded values and the constructors
			// that seed them are replayable; rngsource polices seeding.
			return "", false
		}
		return "draws from the process-global random source", true
	}
	return "", false
}

// checkMapRange reports the range unless its body is order-free.
func (c *checker) checkMapRange(info *types.Info, n *callgraph.Node, rs *ast.RangeStmt, path []string) {
	loopVars := rangeVars(info, rs)
	if len(loopVars) == 0 {
		return // no key in scope: iterations are indistinguishable
	}
	keyObj := loopVarObj(info, rs.Key)
	bad := false
	ast.Inspect(rs.Body, func(nd ast.Node) bool {
		if bad {
			return false
		}
		switch nd := nd.(type) {
		case *ast.SendStmt, *ast.ReturnStmt:
			bad = true
		case *ast.BranchStmt:
			if nd.Tok == token.BREAK || nd.Tok == token.GOTO {
				bad = true // exits chosen by iteration order
			}
		case *ast.IncDecStmt:
			// x++ / x-- commute regardless of order.
		case *ast.AssignStmt:
			if !c.orderFreeAssign(info, nd, rs, keyObj, n.Body) {
				bad = true
			}
		case *ast.CallExpr:
			if isOutputCall(info, nd) {
				bad = true
			}
		}
		return !bad
	})
	if bad {
		c.report(rs.For, path, fmt.Sprintf("a range over map %s whose body depends on iteration order", exprString(rs.X)))
	}
}

// orderFreeAssign reports whether every left-hand side of the
// assignment is order-free: a loop-local variable, an integer
// accumulator (for compound assignments), a map entry keyed by the
// loop key, or a slice accumulator that is sorted later in the
// enclosing function.
func (c *checker) orderFreeAssign(info *types.Info, as *ast.AssignStmt, rs *ast.RangeStmt, keyObj types.Object, body *ast.BlockStmt) bool {
	for i, lhs := range as.Lhs {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := objOf(info, l)
			if obj == nil || declaredWithin(obj, rs) {
				continue // loop-local: cannot escape the iteration
			}
			if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
				// Compound assignment: integer accumulation commutes.
				if isIntegerAccum(info, l, as.Tok) {
					continue
				}
				return false
			}
			if i < len(as.Rhs) && isAppendTo(info, as.Rhs[i], obj) && sortedAfter(info, obj, rs, body) {
				continue // collect-then-sort: the order is repaired
			}
			return false
		case *ast.IndexExpr:
			// dst[k] = v with k the loop key writes unique entries; the
			// resulting map is order-independent.
			if keyObj != nil && usesObj(info, l.Index, keyObj) {
				continue
			}
			return false
		case *ast.SelectorExpr:
			if as.Tok != token.ASSIGN && as.Tok != token.DEFINE && isIntegerAccum(info, l, as.Tok) {
				continue // s.total += e.n: integer accumulation commutes
			}
			return false
		default:
			return false
		}
	}
	return true
}

// isIntegerAccum: a += / -= / |= style update of an integer-typed
// expression (commutative and associative; float accumulation is not).
func isIntegerAccum(info *types.Info, e ast.Expr, tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isAppendTo(info *types.Info, rhs ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && objOf(info, first) == obj
}

// sortedAfter mirrors mapiterorder's collect-then-sort recognition:
// later in the node's body (the range sits directly in it — literals
// are their own call-graph nodes), the accumulated slice is an
// argument of a call whose callee name contains "sort" or that comes
// from package sort or slices.
func sortedAfter(info *types.Info, slice types.Object, rs *ast.RangeStmt, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok || found || call.Pos() < rs.End() {
			return !found
		}
		if !calleeNameContainsSort(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if usesObj(info, arg, slice) {
				found = true
			}
		}
		return !found
	})
	return found
}

func calleeNameContainsSort(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	case *ast.SelectorExpr:
		if strings.Contains(strings.ToLower(fun.Sel.Name), "sort") {
			return true
		}
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				p := pn.Imported().Path()
				return p == "sort" || p == "slices"
			}
		}
	}
	return false
}

// isOutputCall mirrors mapiterorder: fmt printing and Write* methods
// externalize data in call order.
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	if fn.Type().(*types.Signature).Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
		return false
	}
	if fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
	}
	return false
}

func rangeVars(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := objOf(info, id); obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

func loopVarObj(info *types.Info, e ast.Expr) types.Object {
	if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
		return objOf(info, id)
	}
	return nil
}

func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
}

func usesObj(info *types.Info, root ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(root, func(nd ast.Node) bool {
		if id, ok := nd.(*ast.Ident); ok && !found {
			if info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "value"
	}
}

func (c *checker) report(pos token.Pos, path []string, what string) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	p := c.pass.Fset.Position(pos)
	c.pass.Report(analysis.Diagnostic{
		Pos: c.root.Decl.Name.Pos(),
		Message: fmt.Sprintf("%s is annotated //prio:deterministic but can reach %s at %s:%d (path: %s)",
			c.root.Name(), what, filepath.Base(p.Filename), p.Line, strings.Join(path, " → ")),
		Path: append([]string(nil), path...),
	})
}
