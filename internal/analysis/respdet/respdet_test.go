package respdet_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/respdet"
)

func TestRespdet(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), respdet.Analyzer, "a", "clean")
}
