// Package devirt proves that interface method calls lexically inside
// `//prio:noalloc` functions are devirtualized: the compiler resolves
// them to a concrete target ("devirtualizing h.Sum to small") instead
// of emitting an indirect call through the itab. An indirect call on
// the zero-allocation path costs the dispatch itself, blocks inlining
// of the target, and hides the callee from the very escape analysis
// the noalloc contract leans on — so the hot regions must not contain
// one the compiler cannot see through.
//
// The scope is lexical, not reachability-based, by design: the
// simulator's outer driver loop dispatches policies through an
// interface on purpose (it is cold per replication), and a
// reachability rule would force annotations onto genuinely polymorphic
// code. Inside the annotated bodies the current tree contains no
// interface calls at all, so the analyzer holds the region closed
// rather than policing existing sites — the CI injection probe, which
// plants an interface call through a variable and expects priolint to
// turn red, proves the check is not vacuous. Calls on cold paths
// (panic arguments, blocks ending in panic or a non-nil error return)
// are exempt, mirroring the noalloc exemptions.
package devirt

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/compilerfact"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/pragma"
)

var Analyzer = &analysis.Analyzer{
	Name: "devirt",
	Doc: "check that interface calls lexically inside //prio:noalloc functions " +
		"are devirtualized to a concrete target by the compiler",
	RunProgram:         run,
	NeedsCompilerFacts: true,
}

func run(pass *analysis.ProgramPass) error {
	cf := pass.Compiler
	if cf == nil {
		return fmt.Errorf("devirt: no compiler facts attached (driver must run the toolchain first)")
	}
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !pragma.Has(fd.Doc, "prio:noalloc") {
					continue
				}
				declPos := pkg.Fset.Position(fd.Pos())
				if _, compiled := cf.Decisions[compilerfact.FileLine{File: declPos.Filename, Line: declPos.Line}]; !compiled {
					// bce/escapecheck already report unproved annotated
					// functions; without compiler output there is nothing
					// to judge interface calls against.
					continue
				}
				returnsError := declReturnsError(pkg.Info, fd)
				analysis.WithStack(fd.Body, func(nd ast.Node, stack []ast.Node) bool {
					call, ok := nd.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					selection := pkg.Info.Selections[sel]
					if selection == nil || selection.Kind() != types.MethodVal || !types.IsInterface(selection.Recv()) {
						return true
					}
					if noalloc.Cold(nd, stack, returnsError) {
						return true
					}
					start := pkg.Fset.Position(call.Pos())
					end := pkg.Fset.Position(call.End())
					if _, ok := cf.DevirtualizedAt(start.Filename, start.Line, start.Column, end.Line, end.Column); !ok {
						pass.Reportf(call.Lparen,
							"interface call %s.%s inside //prio:noalloc function %s is not devirtualized by the compiler (indirect dispatch on the zero-allocation path)",
							types.ExprString(sel.X), sel.Sel.Name, fd.Name.Name)
					}
					return true
				})
			}
		}
	}
	return nil
}

func declReturnsError(info *types.Info, fd *ast.FuncDecl) bool {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	results := fn.Type().(*types.Signature).Results()
	if results.Len() == 0 {
		return false
	}
	named, ok := results.At(results.Len() - 1).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
