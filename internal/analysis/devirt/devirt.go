// Package devirt proves that interface method calls lexically inside
// `//prio:noalloc` functions are devirtualized: the compiler resolves
// them to a concrete target ("devirtualizing h.Sum to small") instead
// of emitting an indirect call through the itab. An indirect call on
// the zero-allocation path costs the dispatch itself, blocks inlining
// of the target, and hides the callee from the very escape analysis
// the noalloc contract leans on — so the hot regions must not contain
// one the compiler cannot see through.
//
// The scope is lexical, not reachability-based, by design: the
// simulator's outer driver loop dispatches policies through an
// interface on purpose (it is cold per replication), and a
// reachability rule would force annotations onto genuinely polymorphic
// code. Calls on cold paths (panic arguments, blocks ending in panic
// or a non-nil error return) are exempt, mirroring the noalloc
// exemptions. The CI injection probes — one against the devirtclean
// fixture, one that un-pins the real kernel's ranker hook — prove the
// check is not vacuous.
//
// A function may additionally (or instead) be annotated //prio:devirt:
// the same proof obligation on its interface calls, plus a census
// obligation — the body must contain at least one non-cold interface
// call. That positive half exists for deliberate devirtualized seams
// like the replication kernel's ranker hook: without it, deleting the
// hook (or refactoring it into a direct field read) would leave the
// pragma asserting a proof about nothing, and the "every ranker family
// is dispatched through one proven call site" claim would rot
// silently.
package devirt

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/compilerfact"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/pragma"
)

var Analyzer = &analysis.Analyzer{
	Name: "devirt",
	Doc: "check that interface calls lexically inside //prio:noalloc and //prio:devirt " +
		"functions are devirtualized to a concrete target by the compiler, and that " +
		"//prio:devirt functions actually contain such a call",
	RunProgram:         run,
	NeedsCompilerFacts: true,
}

func run(pass *analysis.ProgramPass) error {
	cf := pass.Compiler
	if cf == nil {
		return fmt.Errorf("devirt: no compiler facts attached (driver must run the toolchain first)")
	}
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				hasNoalloc := pragma.Has(fd.Doc, "prio:noalloc")
				hasDevirt := pragma.Has(fd.Doc, "prio:devirt")
				if !hasNoalloc && !hasDevirt {
					continue
				}
				// Diagnostics name the pragma that put the body in scope;
				// with both, noalloc is the stronger contract.
				tag := "//prio:noalloc"
				if !hasNoalloc {
					tag = "//prio:devirt"
				}
				declPos := pkg.Fset.Position(fd.Pos())
				if _, compiled := cf.Decisions[compilerfact.FileLine{File: declPos.Filename, Line: declPos.Line}]; !compiled {
					// bce/escapecheck already report unproved annotated
					// functions; without compiler output there is nothing
					// to judge interface calls against.
					continue
				}
				returnsError := declReturnsError(pkg.Info, fd)
				hotCalls := 0
				analysis.WithStack(fd.Body, func(nd ast.Node, stack []ast.Node) bool {
					call, ok := nd.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					selection := pkg.Info.Selections[sel]
					if selection == nil || selection.Kind() != types.MethodVal || !types.IsInterface(selection.Recv()) {
						return true
					}
					if noalloc.Cold(nd, stack, returnsError) {
						return true
					}
					hotCalls++
					start := pkg.Fset.Position(call.Pos())
					end := pkg.Fset.Position(call.End())
					if _, ok := cf.DevirtualizedAt(start.Filename, start.Line, start.Column, end.Line, end.Column); !ok {
						pass.Reportf(call.Lparen,
							"interface call %s.%s inside %s function %s is not devirtualized by the compiler (indirect dispatch on the zero-allocation path)",
							types.ExprString(sel.X), sel.Sel.Name, tag, fd.Name.Name)
					}
					return true
				})
				if hasDevirt && hotCalls == 0 {
					pass.Reportf(fd.Name.Pos(),
						"function %s is annotated //prio:devirt but contains no non-cold interface call for the compiler to devirtualize (the seam the pragma documents is gone)",
						fd.Name.Name)
				}
			}
		}
	}
	return nil
}

func declReturnsError(info *types.Info, fd *ast.FuncDecl) bool {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	results := fn.Type().(*types.Signature).Results()
	if results.Len() == 0 {
		return false
	}
	named, ok := results.At(results.Len() - 1).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
