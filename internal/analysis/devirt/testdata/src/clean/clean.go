// Package clean holds a //prio:noalloc function whose interface call
// the compiler devirtualizes (the value's dynamic type is locally
// evident), plus interface dispatch in unannotated code, which is out
// of scope by design.
package clean

type adder interface{ add(int) int }

type plus struct{ k int }

func (p plus) add(x int) int { return x + p.k }

type minus struct{ k int }

func (m minus) add(x int) int { return x - m.k }

//prio:noalloc
func hot(x int) int {
	var a adder = plus{k: 1}
	return a.add(x)
}

// seam is the //prio:devirt happy path: the pragma's census finds the
// pinned interface call and the compiler devirtualizes it, so the
// deliberate seam is proven rather than assumed.
//
//prio:devirt
func seam(x int) int {
	var a adder = minus{k: 2}
	return a.add(x)
}

// polymorphic dispatch stays legal outside annotated regions: the
// simulator's policy interface is exactly this shape.
var sink adder

func cold(x int) int {
	return sink.add(x)
}

func pick(neg bool) {
	if neg {
		sink = minus{k: 1}
	} else {
		sink = plus{k: 1}
	}
}

var (
	_ = hot
	_ = seam
	_ = cold
	_ = pick
)
