// Package a exercises the devirt analyzer: an interface call inside a
// //prio:noalloc function whose dynamic type the compiler cannot
// prove, next to a cold one it must exempt.
package a

type shape interface{ area() int }

type square struct{ n int }

func (s square) area() int { return s.n * s.n }

type circle struct{ r int }

func (c circle) area() int { return 3 * c.r * c.r }

// sink defeats devirtualization: with two implementations flowing into
// a package variable, the call site's dynamic type is unknowable.
var sink shape

func pick(useCircle bool) {
	if useCircle {
		sink = circle{r: 2}
	} else {
		sink = square{n: 2}
	}
}

//prio:noalloc
func hot() int {
	return sink.area() // want `interface call sink\.area inside //prio:noalloc function hot is not devirtualized by the compiler`
}

// guarded's interface call sits in a panic argument: cold for the
// noalloc prover, so exempt here too.
//
//prio:noalloc
func guarded(ok bool) int {
	if !ok {
		panic(sink.area())
	}
	return 0
}

// seam carries the devirt pragma but its interface call goes through
// the mutable package variable: the same violation as hot, named after
// the devirt contract instead of the noalloc one.
//
//prio:devirt
func seam() int {
	return sink.area() // want `interface call sink\.area inside //prio:devirt function seam is not devirtualized by the compiler`
}

// vacuous carries the devirt pragma but contains no interface call at
// all — the census half of the contract: a documented devirtualized
// seam that quietly lost its call must not read as proven.
//
//prio:devirt
func vacuous(x int) int { // want `function vacuous is annotated //prio:devirt but contains no non-cold interface call for the compiler to devirtualize`
	return x * 2
}

// coldOnly has an interface call, but only on a cold path — the census
// counts non-cold calls, so this is as vacuous as having none.
//
//prio:devirt
func coldOnly(ok bool) int { // want `function coldOnly is annotated //prio:devirt but contains no non-cold interface call for the compiler to devirtualize`
	if !ok {
		panic(sink.area())
	}
	return 1
}

var (
	_ = pick
	_ = hot
	_ = guarded
	_ = seam
	_ = vacuous
	_ = coldOnly
)
