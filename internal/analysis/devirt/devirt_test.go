package devirt_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/devirt"
)

func TestDevirt(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), devirt.Analyzer, "a", "clean")
}
