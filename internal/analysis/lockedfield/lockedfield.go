// Package lockedfield enforces the `// guarded by <mu>` annotation on
// struct fields shared by the parallel pipeline: every selector access
// to an annotated field must happen in a function that locks the named
// mutex, is marked as lock-held by the conventional "...Locked" name
// suffix, or is a constructor of the struct. See repro/internal/analysis
// for the convention.
//
// Two annotation forms are accepted. The sibling form, `guarded by mu`,
// names a mutex field of the same struct. The qualified form,
// `guarded by Owner.mu`, names a mutex field of another struct in the
// same package — the shape of the serving layer's tenant cache, where
// tenantEntry's fields are guarded by the enclosing tenantCaches.mu
// because entries only exist inside that container. Both forms are
// validated: an annotation naming a type or field that does not exist
// is itself a diagnostic, so guards cannot silently rot.
package lockedfield

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockedfield",
	Doc: "check that fields annotated `// guarded by <mu>` are only accessed " +
		"under the named mutex (or in ...Locked helpers and constructors)",
	Run: run,
}

var guardedRE = regexp.MustCompile(`guarded by (\w+(?:\.\w+)?)`)

// guard describes one annotated field.
type guard struct {
	mutex string          // annotation text: "mu" or "Owner.mu"
	owner *types.TypeName // the struct's type name, for the constructor exemption
}

// muName is the mutex field's own name: the part after the dot for a
// qualified guard, the whole annotation for a sibling guard.
func (g guard) muName() string {
	if i := strings.LastIndex(g.mutex, "."); i >= 0 {
		return g.mutex[i+1:]
	}
	return g.mutex
}

func run(pass *analysis.Pass) (interface{}, error) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		analysis.WithStack(file, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := fieldObject(pass, sel)
			g, guarded := guards[obj]
			if !guarded {
				return true
			}
			if accessAllowed(pass, g, stack) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "access to %s.%s (guarded by %s) outside a function that locks %s",
				g.owner.Name(), obj.Name(), g.mutex, g.mutex)
			return true
		})
	}
	return nil, nil
}

// collectGuards finds `// guarded by <mu>` annotations on struct fields
// declared in this package and resolves them to field objects. A bad
// annotation (no such sibling mutex field) is itself a diagnostic.
func collectGuards(pass *analysis.Pass) map[types.Object]guard {
	guards := make(map[types.Object]guard)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			owner, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if owner == nil {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				mu, ok := annotation(f)
				if !ok {
					continue
				}
				if qualType, qualField, qualified := strings.Cut(mu, "."); qualified {
					if !typeHasField(pass, qualType, qualField) {
						pass.Reportf(f.Pos(), "field annotated `guarded by %s` but package %s has no struct type %s with field %s",
							mu, pass.Pkg.Name(), qualType, qualField)
						continue
					}
				} else if !fieldNames[mu] {
					pass.Reportf(f.Pos(), "field annotated `guarded by %s` but %s has no field %s",
						mu, owner.Name(), mu)
					continue
				}
				for _, name := range f.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = guard{mutex: mu, owner: owner}
					}
				}
			}
			return true
		})
	}
	return guards
}

// annotation extracts the guarded-by mutex name from a field's doc or
// line comment.
func annotation(f *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

// typeHasField reports whether the package declares a struct type with
// the given name carrying a field of the given name.
func typeHasField(pass *analysis.Pass, typeName, fieldName string) bool {
	tn, ok := pass.Pkg.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return false
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == fieldName {
			return true
		}
	}
	return false
}

// fieldObject resolves a selector to the field it accesses, or nil.
func fieldObject(pass *analysis.Pass, sel *ast.SelectorExpr) types.Object {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// accessAllowed reports whether the enclosing function context may
// touch a field guarded by g.mutex.
func accessAllowed(pass *analysis.Pass, g guard, stack []ast.Node) bool {
	sawFunc := false
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			sawFunc = true
			if locksMutex(pass, f.Body, g.muName()) {
				return true
			}
		case *ast.FuncDecl:
			sawFunc = true
			if strings.HasSuffix(f.Name.Name, "Locked") {
				return true
			}
			if locksMutex(pass, f.Body, g.muName()) {
				return true
			}
			if isConstructor(pass, f, g.owner) {
				return true
			}
		}
	}
	// Accesses outside any function (package-level initializers) run
	// before the value can be shared.
	return !sawFunc
}

// locksMutex reports whether body contains a call <expr>.<mu>.Lock() or
// <expr>.<mu>.RLock() (or <mu>.Lock() for a promoted or local mutex).
func locksMutex(pass *analysis.Pass, body *ast.BlockStmt, mu string) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch recv := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			if recv.Sel.Name == mu {
				found = true
			}
		case *ast.Ident:
			if recv.Name == mu {
				found = true
			}
		}
		return !found
	})
	return found
}

// isConstructor reports whether f is a receiver-less function returning
// the owning struct type (by value or pointer): the value under
// construction is not yet shared, so field writes are safe.
func isConstructor(pass *analysis.Pass, f *ast.FuncDecl, owner *types.TypeName) bool {
	if f.Recv != nil || f.Type.Results == nil {
		return false
	}
	for _, res := range f.Type.Results.List {
		t := pass.TypesInfo.TypeOf(res.Type)
		if t == nil {
			continue
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj() == owner {
			return true
		}
	}
	return false
}
