// Package a exercises the lockedfield analyzer: accesses to fields
// annotated `// guarded by <mu>` must happen under the named mutex, in
// a ...Locked helper, or in a constructor.
package a

import "sync"

type cache struct {
	mu      sync.RWMutex
	entries map[string]int // guarded by mu
	hits    int            // guarded by mu
	free    int            // unguarded: no annotation
}

func newCache() *cache {
	c := &cache{}
	c.entries = make(map[string]int) // constructor: value not yet shared
	return c
}

func (c *cache) get(k string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.entries[k]
}

func (c *cache) put(k string, v int) {
	c.mu.Lock()
	c.entries[k] = v
	c.hits++
	c.mu.Unlock()
}

func (c *cache) racyLen() int {
	return len(c.entries) // want `guarded by mu`
}

func (c *cache) racyBump() {
	c.hits++ // want `guarded by mu`
}

func (c *cache) sizeLocked() int {
	return len(c.entries) // "...Locked" suffix: caller holds mu
}

func (c *cache) unguardedOK() int {
	return c.free // field has no annotation
}

func (c *cache) lockedClosure() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := func() int { return len(c.entries) } // enclosing function locks mu
	return f
}

type badAnnotation struct { // the annotation itself is checked
	data int // want `has no field lock` // guarded by lock
}

// The qualified form: fields of a contained struct guarded by the
// container's mutex.

type container struct {
	mu    sync.Mutex
	items map[string]*item
}

type item struct {
	hits int // guarded by container.mu
}

func (it *item) bump() {
	it.hits++ // want `access to item.hits \(guarded by container.mu\) outside a function that locks container.mu`
}

type badQualified struct {
	data int // want `has no struct type missing with field mu` // guarded by missing.mu
}
