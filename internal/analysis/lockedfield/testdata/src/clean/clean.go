// Package clean holds lock-discipline-correct code; the lockedfield
// analyzer must stay silent on all of it.
package clean

import "sync"

type registry struct {
	mu    sync.Mutex
	byID  map[int]string // guarded by mu
	count int            // guarded by mu
}

func newRegistry() registry {
	return registry{byID: map[int]string{}} // composite literal: no selector access
}

func (r *registry) Add(id int, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byID[id] = name
	r.count++
}

func (r *registry) snapshotLocked() map[int]string {
	out := make(map[int]string, len(r.byID))
	for id, name := range r.byID {
		out[id] = name
	}
	return out
}

func (r *registry) Snapshot() map[int]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

type plain struct {
	x int // ordinary fields need no locking
}

func (p *plain) Get() int { return p.x }

// The qualified form: item's fields are guarded by the enclosing
// container's mutex, because items only exist inside the container.

type container struct {
	mu    sync.Mutex
	items map[string]*item
}

type item struct {
	hits int // guarded by container.mu
}

func (c *container) bump(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if it := c.items[name]; it != nil {
		it.hits++
	}
}

func (it *item) resetLocked() {
	it.hits = 0
}
