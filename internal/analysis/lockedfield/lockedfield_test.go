package lockedfield_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockedfield"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockedfield.Analyzer, "a", "clean")
}
