// Package reach is the handler-rooted reachability layer shared by the
// serving-layer analyzers (ctxflow, chanbound, respdet): it finds the
// HTTP handler functions in a whole-program call graph and walks the
// functions reachable from a root set, carrying the call path for
// diagnostics.
//
// Traversal follows static edges (including the implicit
// encloser-to-literal edges, so closure bodies are covered) and
// interface edges to every implementation loaded from source, skipping
// implementations declared in _test.go files — test doubles never run
// under the daemon. Dynamic edges (calls through unresolved function
// values) are not followed; the serving analyzers compensate by rooting
// at every handler-shaped function, so a handler invoked through a
// stored function value is still analyzed from its own declaration.
package reach

import (
	"go/types"

	"repro/internal/analysis/callgraph"
)

// NodeSig returns the node's signature: the declared function's type,
// or the literal's checked type. Nil for external nodes without a
// usable type.
func NodeSig(n *callgraph.Node) *types.Signature {
	if n.Func != nil {
		sig, _ := n.Func.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil && n.Pkg != nil {
		sig, _ := n.Pkg.Info.TypeOf(n.Lit).(*types.Signature)
		return sig
	}
	return nil
}

// HandlerSig reports whether sig is the http.HandlerFunc shape:
// func(http.ResponseWriter, *http.Request) with no results.
func HandlerSig(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	return isNamed(sig.Params().At(0).Type(), "net/http", "ResponseWriter") &&
		isPtrToNamed(sig.Params().At(1).Type(), "net/http", "Request")
}

func isNamed(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

func isPtrToNamed(t types.Type, pkgPath, name string) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	return ok && isNamed(ptr.Elem(), pkgPath, name)
}

// Handlers returns every non-test handler-shaped function loaded from
// source, in graph (declaration) order: named handlers like
// (*Server).handlePrioritize and handler-shaped literals like the
// instrumentation wrapper's closure.
func Handlers(g *callgraph.Graph) []*callgraph.Node {
	var roots []*callgraph.Node
	for _, n := range g.Nodes {
		if n.Body == nil || n.InTest {
			continue
		}
		if HandlerSig(NodeSig(n)) {
			roots = append(roots, n)
		}
	}
	return roots
}

// Walk visits every function with a loaded body reachable from roots,
// breadth-first in deterministic graph order, calling visit once per
// node with the call path (node names, root first, ending at the node
// itself). Interface edges to _test.go implementations and dynamic
// edges are not followed; see the package comment.
func Walk(roots []*callgraph.Node, visit func(n *callgraph.Node, path []string)) {
	type item struct {
		n    *callgraph.Node
		path []string
	}
	seen := make(map[*callgraph.Node]bool)
	var queue []item
	for _, r := range roots {
		if r.Body == nil || seen[r] {
			continue
		}
		seen[r] = true
		queue = append(queue, item{r, []string{r.Name()}})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		visit(it.n, it.path)
		for _, e := range it.n.Out {
			c := e.Callee
			if c == nil || c.Body == nil || seen[c] {
				continue
			}
			if e.Kind == callgraph.Interface && c.InTest {
				continue
			}
			seen[c] = true
			path := make([]string, len(it.path)+1)
			copy(path, it.path)
			path[len(it.path)] = c.Name()
			queue = append(queue, item{c, path})
		}
	}
}
