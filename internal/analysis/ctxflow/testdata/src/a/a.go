// Package a exercises the ctxflow analyzer: detached contexts and
// unconditional sleeps on handler paths must be reported, while the
// same calls off handler paths are untouched.
package a

import (
	"context"
	"net/http"
	"time"
)

func Handler(w http.ResponseWriter, r *http.Request) {
	time.Sleep(time.Millisecond) // want `call to time.Sleep on a handler path blocks without a cancellation case`
	process(r.Context())
}

// process is only handler-reachable; the detached context is reported
// at its call site with the path from the root.
func process(ctx context.Context) {
	ctx = context.Background() // want `call to context.Background on a handler path detaches the work from client cancellation \(path: Handler → process\)`
	_ = ctx
}

// A handler-shaped literal is a root of its own.
func Wrap() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		placeholder()
	}
}

func placeholder() {
	ctx := context.TODO() // want `call to context.TODO on a handler path is a placeholder context`
	_ = ctx
}

// Setup is not reachable from any handler: process-lifetime code may
// use a detached context freely.
func Setup() context.Context {
	time.Sleep(time.Millisecond)
	return context.Background()
}
