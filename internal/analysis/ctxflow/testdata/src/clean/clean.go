// Package clean shows the request-context discipline ctxflow wants:
// waiting on a handler path is a select with a cancellation case, and
// derived contexts come from the request.
package clean

import (
	"context"
	"net/http"
	"time"
)

func Handler(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	if err := wait(ctx); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	}
}

// wait blocks with a cancellation case instead of time.Sleep.
func wait(ctx context.Context) error {
	t := time.NewTimer(10 * time.Millisecond)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
