// Package ctxflow proves that request handling stays attached to the
// request's context. The serving layer's shedding guarantee
// (docs/OPERATIONS.md) depends on every blocking step downstream of a
// handler honoring client cancellation: the admission layer selects on
// r.Context().Done(), and nothing on a handler path may substitute a
// detached context or an unconditional sleep for that discipline.
//
// Concretely, on every function reachable from an HTTP handler
// (func(http.ResponseWriter, *http.Request), named or literal,
// excluding _test.go code) the analyzer bans:
//
//   - context.Background() — detaches the work from client
//     cancellation; a request that outlives its client keeps an
//     admission slot pinned.
//   - context.TODO() — a placeholder that admits the same leak.
//   - time.Sleep — blocks without a cancellation case; waiting on a
//     handler path must be a select with ctx.Done() (see
//     internal/serve/admission.go for the reference shape).
//
// Reachability follows static and interface edges to implementations
// loaded from source (test doubles exempt); calls through unresolved
// function values are not followed, which is sound here because every
// handler-shaped function is itself a root — see
// repro/internal/analysis/reach. Process-lifetime code (main,
// shutdown) legitimately uses context.Background and is not reachable
// from any handler, so it is untouched.
package ctxflow

import (
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/reach"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "ban context.Background/context.TODO/time.Sleep on HTTP handler paths: " +
		"request work must stay attached to the request context",
	RunProgram: run,
}

// banned maps external callee keys to the reason each breaks the
// request-context discipline.
var banned = map[string]string{
	"context.Background": "detaches the work from client cancellation",
	"context.TODO":       "is a placeholder context that detaches the work from client cancellation",
	"time.Sleep":         "blocks without a cancellation case (select on ctx.Done instead)",
}

func run(pass *analysis.ProgramPass) error {
	reach.Walk(reach.Handlers(pass.Graph), func(n *callgraph.Node, path []string) {
		for _, e := range n.Out {
			if e.Callee == nil || e.Callee.Body != nil {
				continue
			}
			why, bad := banned[e.Callee.Key]
			if !bad {
				continue
			}
			pass.Report(analysis.Diagnostic{
				Pos: e.Pos,
				Message: "call to " + e.Callee.Key + " on a handler path " + why +
					" (path: " + strings.Join(path, " → ") + ")",
				Path: append([]string(nil), path...),
			})
		}
	})
	return nil
}
