package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/compilerfact"
	"repro/internal/analysis/facts"
	"repro/internal/analysis/load"
)

// An Analyzer is one static check. Name appears in diagnostics and in
// the -only flag of cmd/priolint; Doc is the one-paragraph contract
// shown by `priolint -help`.
//
// An analyzer runs in exactly one of two modes. A package analyzer
// sets Run and is handed one type-checked package at a time, in
// dependency order, sharing a fact set with every other pass of the
// driver run (purity propagates its summaries this way). A program
// analyzer sets RunProgram instead and is handed every loaded package
// at once together with the whole-program call graph (noalloc and
// nestedlock need cross-package reachability, not per-package facts).
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Pass) (interface{}, error)
	RunProgram func(*ProgramPass) error
	// NeedsCompilerFacts asks the driver to run the toolchain with
	// diagnostic flags (see subpackage compilerfact) before this
	// analyzer and attach the parsed index to ProgramPass.Compiler.
	// The driver runs the compiler at most once per invocation no
	// matter how many analyzers declare the need.
	NeedsCompilerFacts bool
}

// A Pass hands one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
	// Facts is the fact store shared across the driver run. The driver
	// analyzes packages in dependency order, so facts exported while
	// analyzing a dependency are visible here. Nil when the analyzer
	// declares no interest (legacy analyzers ignore it).
	Facts *facts.Set
}

// A ProgramPass hands the whole loaded program to a program analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkgs are the loaded packages in dependency order.
	Pkgs []*load.Package
	// Graph is the whole-program call graph over Pkgs.
	Graph  *callgraph.Graph
	Facts  *facts.Set
	Report func(Diagnostic)
	// Compiler is the toolchain's diagnostic index for the loaded
	// packages, populated by the driver when the analyzer sets
	// NeedsCompilerFacts (nil otherwise — analyzers must treat a nil
	// index as an error, not as a clean program).
	Compiler *compilerfact.Facts
}

// Reportf reports a formatted diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a position. Path, when
// non-empty, is the call chain justifying an interprocedural finding
// (outermost first); the driver renders it in text output and carries
// it structurally in -format json.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	Path    []string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return p.TypesInfo.Uses[id]
}

// WithStack walks the AST under root in depth-first order, calling fn
// with each node and the stack of its ancestors (outermost first, not
// including n itself). Returning false prunes the subtree, exactly like
// ast.Inspect.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// EnclosingFunc returns the innermost function declaration or literal
// in stack, and its body. ok is false at package scope (e.g. inside a
// var initializer).
func EnclosingFunc(stack []ast.Node) (node ast.Node, body *ast.BlockStmt, ok bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f, f.Body, true
		case *ast.FuncLit:
			return f, f.Body, true
		}
	}
	return nil, nil, false
}

// Callee resolves the called object of a call expression: the
// *types.Func for a static call or method call, or nil for calls
// through function values, type conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether call statically invokes the package-level
// function pkgPath.name.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := Callee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}
