// Package callgraph builds a whole-program call graph over the
// packages a driver run loaded from source. Nodes are function
// declarations, methods, and function literals; edges are recorded at
// every call expression with a classification the interprocedural
// analyzers (noalloc, nestedlock) dispatch on:
//
//   - Static: the callee is a single known function — a package-level
//     call, a method call on a concrete receiver, a call of a local
//     variable that is provably bound to one function literal, or the
//     implicit call edge from a function to the literals it encloses
//     (a literal's body executes on behalf of its encloser in every
//     use this repository makes of closures).
//   - Interface: a method call through an interface value. The graph
//     resolves it conservatively to every named type declared in the
//     loaded packages whose method set implements the interface: one
//     edge per implementation, all sharing the call site. Types from
//     packages that were only imported as export data contribute no
//     implementations; drivers that need the full picture load ./...,
//     which covers the module.
//   - Dynamic: a call through a function value the builder cannot
//     bind to a literal (stored fields, parameters, map lookups).
//     Analyzers treat these conservatively according to their own
//     contract.
//
// Functions referenced but not loaded from source (standard library,
// export-data-only dependencies) become body-less external nodes, so
// "callee we cannot see into" is an explicit state rather than a
// missing edge. The builder visits packages, files, and syntax in
// order, so Nodes and every edge list are deterministic.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/load"
)

// Kind classifies a call edge.
type Kind int

const (
	Static Kind = iota
	Interface
	Dynamic
)

func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	default:
		return "dynamic"
	}
}

// A Node is one function: a declaration, a method, a function literal,
// or an external (body-less) function known only through export data.
type Node struct {
	// Key uniquely names the node: "pkg.Func", "pkg.(Recv).Method", or
	// "<encloser key>$litN" for literals.
	Key string
	// Func is the type-checker's object, nil only for literals.
	Func *types.Func
	// Lit is set for function-literal nodes.
	Lit *ast.FuncLit
	// Decl is set for declared functions loaded from source.
	Decl *ast.FuncDecl
	// Body is nil for external nodes (no source loaded).
	Body *ast.BlockStmt
	// Pkg is the loaded package containing the node, nil for external
	// nodes.
	Pkg *load.Package
	// InTest reports whether the node is declared in a _test.go file.
	InTest bool
	// Out lists the node's call edges in source order (interface edges
	// fan out in implementation-key order at one site).
	Out []Edge
}

// An Edge is one call (or closure/method-value reference) from a node.
type Edge struct {
	// Callee is the target, nil only for unresolved Dynamic edges.
	Callee *Node
	Kind   Kind
	Pos    token.Pos
	// Site is the call expression, nil for the implicit
	// encloser-to-literal and method-value edges.
	Site *ast.CallExpr
	// IfaceMethod is the interface method called, for Interface edges.
	IfaceMethod *types.Func
	// Recv is the object the call dispatches through when the callee
	// expression is a plain identifier or a selector on one (the
	// variable holding the interface or function value). Analyzers use
	// it to bind call-site arguments to callee parameters.
	Recv types.Object
}

// Name returns a human-readable node name for diagnostics:
// "(*Type).Method", "Func", or "Func$lit1", qualified with the package
// path's last element when pkg differs from from's package.
func (n *Node) Name() string {
	key := n.Key
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		key = key[i+1:]
	}
	if i := strings.IndexByte(key, '.'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// Graph is the whole-program call graph.
type Graph struct {
	Nodes []*Node

	byFunc map[*types.Func]*Node
	byKey  map[string]*Node

	// ifaceImpls caches interface-method resolution.
	ifaceImpls map[*types.Func][]*Node
	// named lists every named type declared in the loaded packages, in
	// deterministic order, for interface resolution.
	named []*types.Named
}

// FuncKey returns the stable cross-package key for fn ("pkg.Name" or
// "pkg.(Recv).Name"), normalizing generic instantiations to their
// origin. Interface methods get a key under the interface's package so
// external nodes for them are well-defined.
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		ptr := ""
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
			ptr = "*"
		}
		switch t := rt.(type) {
		case *types.Named:
			return fmt.Sprintf("%s.(%s%s).%s", pkg, ptr, t.Origin().Obj().Name(), fn.Name())
		case *types.Interface:
			return fmt.Sprintf("%s.(interface).%s", pkg, fn.Name())
		}
	}
	return pkg + "." + fn.Name()
}

// NodeOf returns the node for fn, unifying source-checked,
// export-imported, and instantiated views of the same function. A
// function with no loaded source gets a memoized external node.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	fn = fn.Origin()
	if n, ok := g.byFunc[fn]; ok {
		return n
	}
	key := FuncKey(fn)
	if n, ok := g.byKey[key]; ok {
		g.byFunc[fn] = n
		return n
	}
	n := &Node{Key: key, Func: fn}
	g.byFunc[fn] = n
	g.byKey[key] = n
	g.Nodes = append(g.Nodes, n)
	return n
}

// Lookup returns the node with the given key, or nil.
func (g *Graph) Lookup(key string) *Node { return g.byKey[key] }

// ParamObjs returns the node's declared parameter objects in order
// (receiver excluded), or nil for external nodes. Analyzers match them
// against Edge.Recv to bind arguments interprocedurally.
func (n *Node) ParamObjs() []*types.Var {
	var ft *ast.FuncType
	switch {
	case n.Decl != nil:
		ft = n.Decl.Type
	case n.Lit != nil:
		ft = n.Lit.Type
	default:
		return nil
	}
	var out []*types.Var
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if v, ok := n.Pkg.Info.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// Build constructs the graph for the given packages (in the order load
// returned them, which the driver keeps topological).
func Build(pkgs []*load.Package) *Graph {
	g := &Graph{
		byFunc:     make(map[*types.Func]*Node),
		byKey:      make(map[string]*Node),
		ifaceImpls: make(map[*types.Func][]*Node),
	}

	// Pass 1: nodes for every declared function, and the named-type
	// universe for interface resolution.
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names() // sorted by go/types
		for _, name := range names {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					g.named = append(g.named, named)
				}
			}
		}
		ninits := 0
		for fi, file := range pkg.Syntax {
			inTest := strings.HasSuffix(pkg.GoFiles[fi], "_test.go")
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				var n *Node
				if fd.Name.Name == "init" && fd.Recv == nil {
					// Every init function is a distinct object sharing
					// one name; give each its own node.
					ninits++
					n = &Node{Key: fmt.Sprintf("%s.init#%d", pkg.ImportPath, ninits), Func: fn}
					g.byFunc[fn] = n
					g.byKey[n.Key] = n
					g.Nodes = append(g.Nodes, n)
				} else {
					n = g.NodeOf(fn)
				}
				n.Decl = fd
				n.Body = fd.Body
				n.Pkg = pkg
				n.InTest = inTest
			}
		}
	}

	// Pass 2: edges.
	for _, pkg := range pkgs {
		for fi, file := range pkg.Syntax {
			inTest := strings.HasSuffix(pkg.GoFiles[fi], "_test.go")
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				b := &builder{g: g, pkg: pkg, inTest: inTest}
				b.walk(g.NodeOf(fn), fd.Body)
			}
		}
	}
	return g
}

// builder walks one declaration's body, tracking the innermost function
// node so literal bodies attribute their calls to the literal.
type builder struct {
	g        *Graph
	pkg      *load.Package
	inTest   bool
	nlits    int
	callFuns map[*ast.SelectorExpr]bool
}

// walk attributes the calls, literals, and method values syntactically
// inside body (stopping at nested literals, which recurse with their
// own node) to cur.
func (b *builder) walk(cur *Node, body ast.Node) {
	byLit, byVar := b.localFuncBindings(body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			b.nlits++
			lit := &Node{
				Key:    fmt.Sprintf("%s$lit%d", cur.Key, b.nlits),
				Lit:    n,
				Body:   n.Body,
				Pkg:    b.pkg,
				InTest: b.inTest,
			}
			b.g.byKey[lit.Key] = lit
			b.g.Nodes = append(b.g.Nodes, lit)
			if bound, ok := byLit[n]; ok {
				bound.node = lit
			}
			cur.Out = append(cur.Out, Edge{Callee: lit, Kind: Static, Pos: n.Pos()})
			b.walk(lit, n.Body)
			return false
		case *ast.CallExpr:
			b.call(cur, n, byVar)
			return true
		case *ast.SelectorExpr:
			// A method value (x.M not in call position) references the
			// method; record the edge so its body stays reachable.
			if sel, ok := b.pkg.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok && !b.isCallFun(n) {
					b.edgeToMethod(cur, fn, n.X, n.Sel.Pos(), nil)
				}
			}
			return true
		}
		return true
	})
}

// isCallFun reports whether sel is the Fun of a call expression (the
// ordinary method-call case), as opposed to a method value. Checked by
// looking at the selector's parent via the type-checker: a MethodVal
// selection used as a call Fun has its CallExpr in Types.
func (b *builder) isCallFun(sel *ast.SelectorExpr) bool {
	// The AST gives no parent pointers; instead, method calls record
	// the *call* in Types with a value, and the walk below visits the
	// CallExpr first, consuming its Fun. Track them.
	_, ok := b.callFuns[sel]
	return ok
}

// call classifies one call expression and appends the resulting edges.
func (b *builder) call(cur *Node, call *ast.CallExpr, byVar map[*types.Var]*binding) {
	info := b.pkg.Info
	fun := ast.Unparen(call.Fun)
	if b.callFuns == nil {
		b.callFuns = make(map[*ast.SelectorExpr]bool)
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		b.callFuns[sel] = true
	}
	if tv, ok := info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return // conversion or builtin
	}

	switch fun := fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn := sel.Obj().(*types.Func)
			recvType := sel.Recv()
			if types.IsInterface(recvType) {
				b.ifaceCall(cur, call, fn, fun.X)
				return
			}
			b.edgeToMethod(cur, fn, fun.X, call.Lparen, call)
			return
		}
		// Package-qualified function or a function-valued field/var.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			cur.Out = append(cur.Out, Edge{Callee: b.g.NodeOf(fn), Kind: Static, Pos: call.Lparen, Site: call})
			return
		}
		cur.Out = append(cur.Out, Edge{Kind: Dynamic, Pos: call.Lparen, Site: call, Recv: info.Uses[fun.Sel]})
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			cur.Out = append(cur.Out, Edge{Callee: b.g.NodeOf(obj), Kind: Static, Pos: call.Lparen, Site: call})
		case *types.Var:
			// A function value. Bound to exactly one literal in this
			// body -> static edge to the literal.
			if bind := byVar[obj]; bind != nil && bind.node != nil && bind.unique {
				cur.Out = append(cur.Out, Edge{Callee: bind.node, Kind: Static, Pos: call.Lparen, Site: call, Recv: obj})
				return
			}
			cur.Out = append(cur.Out, Edge{Kind: Dynamic, Pos: call.Lparen, Site: call, Recv: obj})
		default:
			cur.Out = append(cur.Out, Edge{Kind: Dynamic, Pos: call.Lparen, Site: call})
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: the literal node and its edge
		// were created by the FuncLit case of walk.
	default:
		cur.Out = append(cur.Out, Edge{Kind: Dynamic, Pos: call.Lparen, Site: call})
	}
}

// edgeToMethod appends a static edge for a concrete method call,
// recording the dispatch variable when the receiver is an identifier.
func (b *builder) edgeToMethod(cur *Node, fn *types.Func, recv ast.Expr, pos token.Pos, site *ast.CallExpr) {
	var recvObj types.Object
	if id, ok := ast.Unparen(recv).(*ast.Ident); ok {
		recvObj = b.pkg.Info.Uses[id]
	}
	cur.Out = append(cur.Out, Edge{Callee: b.g.NodeOf(fn), Kind: Static, Pos: pos, Site: site, Recv: recvObj})
}

// ifaceCall resolves a call through an interface to every implementing
// named type in the loaded packages, one edge per implementation.
func (b *builder) ifaceCall(cur *Node, call *ast.CallExpr, ifaceFn *types.Func, recv ast.Expr) {
	var recvObj types.Object
	if id, ok := ast.Unparen(recv).(*ast.Ident); ok {
		recvObj = b.pkg.Info.Uses[id]
	} else if sel, ok := ast.Unparen(recv).(*ast.SelectorExpr); ok {
		recvObj = b.pkg.Info.Uses[sel.Sel]
	}
	impls := b.g.implsOf(ifaceFn)
	for _, impl := range impls {
		cur.Out = append(cur.Out, Edge{
			Callee: impl, Kind: Interface, Pos: call.Lparen, Site: call,
			IfaceMethod: ifaceFn, Recv: recvObj,
		})
	}
	if len(impls) == 0 {
		// No loaded implementation: keep the site visible as dynamic.
		cur.Out = append(cur.Out, Edge{
			Kind: Interface, Pos: call.Lparen, Site: call,
			IfaceMethod: ifaceFn, Recv: recvObj,
		})
	}
}

// implsOf returns (and caches) the method nodes implementing the given
// interface method among the loaded named types, sorted by key.
func (g *Graph) implsOf(ifaceFn *types.Func) []*Node {
	if impls, ok := g.ifaceImpls[ifaceFn]; ok {
		return impls
	}
	sig := ifaceFn.Type().(*types.Signature)
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	var impls []*Node
	if iface != nil {
		seen := make(map[*Node]bool)
		for _, named := range g.named {
			if types.IsInterface(named) {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			ms := types.NewMethodSet(ptr)
			selObj := ms.Lookup(ifaceFn.Pkg(), ifaceFn.Name())
			if selObj == nil {
				continue
			}
			fn, ok := selObj.Obj().(*types.Func)
			if !ok {
				continue
			}
			n := g.NodeOf(fn)
			if !seen[n] {
				seen[n] = true
				impls = append(impls, n)
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool { return impls[i].Key < impls[j].Key })
	g.ifaceImpls[ifaceFn] = impls
	return impls
}

// binding records one local variable bound to a function literal.
type binding struct {
	obj    *types.Var
	node   *Node // filled in when the literal's node is created
	unique bool  // single assignment, so calls of obj resolve statically
}

// localFuncBindings finds `f := func(...){...}` (or var f = func...)
// bindings in body whose variable is assigned exactly once, so calls of
// f can be treated as static calls of the literal. Reassignments inside
// nested literals count against uniqueness, so the whole subtree is
// scanned.
func (b *builder) localFuncBindings(body ast.Node) (map[*ast.FuncLit]*binding, map[*types.Var]*binding) {
	info := b.pkg.Info
	assigns := make(map[*types.Var]int)
	byLit := make(map[*ast.FuncLit]*binding)
	var order []*binding
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, _ := objOf(info, id).(*types.Var)
				if v == nil {
					continue
				}
				assigns[v]++
				if i < len(n.Rhs) {
					if lit, ok := n.Rhs[i].(*ast.FuncLit); ok {
						bind := &binding{obj: v}
						byLit[lit] = bind
						order = append(order, bind)
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				v, _ := info.Defs[id].(*types.Var)
				if v == nil {
					continue
				}
				assigns[v]++
				if i < len(n.Values) {
					if lit, ok := n.Values[i].(*ast.FuncLit); ok {
						bind := &binding{obj: v}
						byLit[lit] = bind
						order = append(order, bind)
					}
				}
			}
		}
		return true
	})
	byVar := make(map[*types.Var]*binding)
	for _, bind := range order {
		bind.unique = assigns[bind.obj] == 1
		if bind.unique {
			byVar[bind.obj] = bind
		}
	}
	return byLit, byVar
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// DebugDump renders every edge as one line, sorted, for the driver's
// -debug-callgraph flag.
func (g *Graph) DebugDump(fset *token.FileSet) []string {
	var lines []string
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			target := "<dynamic>"
			if e.Callee != nil {
				target = e.Callee.Key
			}
			via := ""
			if e.IfaceMethod != nil {
				via = " via " + FuncKey(e.IfaceMethod)
			}
			lines = append(lines, fmt.Sprintf("%s -> %s [%s%s] %s",
				n.Key, target, e.Kind, via, fset.Position(e.Pos)))
		}
	}
	sort.Strings(lines)
	return lines
}
