// Package compilerfact turns the Go compiler's own optimization
// diagnostics into analyzable facts. It invokes the toolchain with
//
//	go build -gcflags='-m=2 -d=ssa/check_bce' <packages>
//
// and parses the position-keyed notes the compiler prints on stderr —
// escape decisions, inline decisions with their cost budgets,
// devirtualization notes, and bounds-check sites — into an in-memory
// index plus per-function summaries in the driver's fact store.
//
// The abstract analyzers (noalloc, purity, ...) prove properties by
// their own reading of the source; nothing stops the compiler from
// disagreeing — a refactor can reintroduce a bounds check or break an
// inlining decision without changing any property the source-level
// provers model. The analyzers built on this package (bce, inline,
// devirt, escapecheck) close that gap: they check the machine's
// verdict, not a model of it.
//
// # Invocation and caching
//
// Diagnostics are a function of the compiled package, so the build
// cache replays them: a second run over an unchanged package re-prints
// the same notes without recompiling, which keeps repeated lint runs
// cheap. One Run call compiles every requested package in at most two
// `go build` invocations (main packages need -o pointed at a scratch
// directory so no binary lands in the working tree; a build of only
// non-main packages rejects -o, so they go in a plain invocation that
// discards its objects).
//
// # Positions
//
// Every diagnostic carries a file:line:col position. The go command
// prints the path relative to its working directory, frozen into the
// cache entry at compile time — so Run always invokes the toolchain at
// the module root and normalizes the paths to absolute, comparable
// with token.FileSet positions from the loader.
// Bounds-check and escape notes attributed to an inlined call land on
// the caller's call-site line, so a function's fact set covers the
// code the compiler actually emitted for it — including inlined callee
// bodies — not just its source text.
//
// Per-function inline decisions ("can inline F with cost N" / "cannot
// inline F: ...") are keyed by the function's declaration line. The
// compiler emits exactly one such decision for every function it
// compiles, which doubles as the proof that a file was not silently
// dropped from the build (see AttachFuncFacts and the census test).
package compilerfact

import (
	"bytes"
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis/facts"
	"repro/internal/analysis/load"
)

// GCFlags is the exact -gcflags value handed to the compiler.
const GCFlags = "-m=2 -d=ssa/check_bce"

// A Pos is one normalized diagnostic position (absolute file path).
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col) }

// A FileLine keys per-function facts: the declaration line of the
// function the compiler reported on.
type FileLine struct {
	File string
	Line int
}

// An InlineDecision is the compiler's verdict on one function.
type InlineDecision struct {
	Name      string // the compiler's spelling, e.g. "(*MinSet).Add"
	CanInline bool
	Cost      int    // inline cost when CanInline; the reported excess cost otherwise (0 if none given)
	Reason    string // refusal reason when !CanInline, e.g. "function too complex: cost 99 exceeds budget 80"
	Pos       Pos
}

// An EscapeSite is one compiler-proved heap allocation.
type EscapeSite struct {
	Pos  Pos
	What string // the diagnostic text, e.g. "make([]uint64, w) escapes to heap"
}

// Facts is the parsed diagnostic index of one Run.
type Facts struct {
	// Bounds holds the positions of every "Found IsInBounds" /
	// "Found IsSliceInBounds" note, per absolute file path, sorted by
	// line then column, deduplicated (the compiler re-reports a check
	// once per inlined copy of its function).
	Bounds map[string][]Pos
	// Decisions maps a function declaration line to the compiler's
	// inline verdict for it.
	Decisions map[FileLine]InlineDecision
	// InlinedCalls holds the call sites the compiler actually inlined
	// ("inlining call to F"), keyed by position, valued by the callee's
	// reported name.
	InlinedCalls map[Pos]string
	// Devirtualized holds interface call sites the compiler resolved to
	// a concrete target ("devirtualizing x.M to T"), keyed by position.
	Devirtualized map[Pos]string
	// Escapes holds compiler-proved heap allocations per absolute file
	// path, sorted by line then column.
	Escapes map[string][]EscapeSite
	// Packages lists the import paths compiled, sorted.
	Packages []string
}

// FuncFacts is the compiler's per-function summary, attached to the
// function's *types.Func in the driver's fact store by AttachFuncFacts.
type FuncFacts struct {
	// Compiled records that the compiler emitted an inline decision for
	// the function — the proof that its file was part of the build.
	Compiled bool
	// BoundsChecks counts Found Is*InBounds sites inside the function's
	// body span (including checks inherited from inlined callees).
	BoundsChecks int
	CanInline    bool
	InlineCost   int
	CannotReason string
}

// AFact marks FuncFacts as a fact type.
func (*FuncFacts) AFact() {}

// Run compiles the given packages with diagnostic flags and parses the
// output. nonMains and mains are import paths, absolute package
// directories, or ./-relative directories (resolved against dir) with
// and without a main package — they need different invocations, see
// the package comment. dir anchors relative arguments and the module
// lookup; empty means the current directory.
func Run(dir string, nonMains, mains []string) (*Facts, error) {
	f := &Facts{
		Bounds:        make(map[string][]Pos),
		Decisions:     make(map[FileLine]InlineDecision),
		InlinedCalls:  make(map[Pos]string),
		Devirtualized: make(map[Pos]string),
		Escapes:       make(map[string][]EscapeSite),
	}
	// The go command prints diagnostic paths relative to its working
	// directory at the time of the actual compile — and the build cache
	// replays the recorded text verbatim, original paths included. Both
	// invocations therefore run at the module root, so the paths are
	// module-root-relative no matter where this process started or
	// which earlier Run populated the cache entry.
	absDir, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	nonMains, err = absolutize(dir, nonMains)
	if err != nil {
		return nil, err
	}
	mains, err = absolutize(dir, mains)
	if err != nil {
		return nil, err
	}
	if nonMains = cleanPaths(nonMains); len(nonMains) > 0 {
		args := append([]string{"build", "-gcflags=" + GCFlags}, nonMains...)
		if err := f.runAndParse(absDir, args); err != nil {
			return nil, err
		}
		f.Packages = append(f.Packages, nonMains...)
	}
	if mains = cleanPaths(mains); len(mains) > 0 {
		// A main package build writes a binary; point it at a scratch
		// directory so nothing lands in the tree.
		scratch, err := os.MkdirTemp("", "compilerfact-")
		if err != nil {
			return nil, fmt.Errorf("compilerfact: %w", err)
		}
		defer os.RemoveAll(scratch)
		args := append([]string{"build", "-o", scratch, "-gcflags=" + GCFlags}, mains...)
		if err := f.runAndParse(absDir, args); err != nil {
			return nil, err
		}
		f.Packages = append(f.Packages, mains...)
	}
	sort.Strings(f.Packages)
	for file := range f.Bounds {
		sortPositions(f.Bounds[file])
	}
	for file := range f.Escapes {
		sites := f.Escapes[file]
		sort.Slice(sites, func(i, j int) bool {
			a, b := sites[i], sites[j]
			if a.Pos.Line != b.Pos.Line {
				return a.Pos.Line < b.Pos.Line
			}
			if a.Pos.Col != b.Pos.Col {
				return a.Pos.Col < b.Pos.Col
			}
			return a.What < b.What
		})
	}
	return f, nil
}

// moduleRoot locates the root of the module containing dir (empty
// means the current directory), falling back to dir itself outside
// module mode.
func moduleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("compilerfact: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod != "" && gomod != os.DevNull {
		return filepath.Dir(gomod), nil
	}
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return "", fmt.Errorf("compilerfact: %w", err)
		}
		return wd, nil
	}
	return filepath.Abs(dir)
}

// cleanPaths strips test-variant suffixes ("p [p.test]" -> "p"),
// deduplicates, and sorts, so the toolchain invocation is stable.
func cleanPaths(paths []string) []string {
	seen := make(map[string]bool, len(paths))
	out := make([]string, 0, len(paths))
	for _, p := range paths {
		if i := strings.IndexByte(p, ' '); i >= 0 {
			p = p[:i]
		}
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// absolutize resolves directory arguments ("./x", "../x", ".")
// against base (empty means the current directory), leaving import
// paths and already-absolute directories alone — the invocation runs
// at the module root, where caller-relative arguments would otherwise
// resolve to the wrong directory.
func absolutize(base string, paths []string) ([]string, error) {
	out := make([]string, 0, len(paths))
	for _, p := range paths {
		if p == "." || p == ".." || strings.HasPrefix(p, "./") || strings.HasPrefix(p, "../") {
			abs, err := filepath.Abs(filepath.Join(base, p))
			if err != nil {
				return nil, fmt.Errorf("compilerfact: %w", err)
			}
			p = abs
		}
		out = append(out, p)
	}
	return out, nil
}

func (f *Facts) runAndParse(absDir string, args []string) error {
	cmd := exec.Command("go", args...)
	cmd.Dir = absDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if len(msg) > 2048 {
			msg = msg[:2048] + " [...]"
		}
		return fmt.Errorf("compilerfact: go %s: %w\n%s", strings.Join(args[:2], " "), err, msg)
	}
	f.parse(absDir, stderr.String())
	return nil
}

var (
	posRe           = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)
	canInlineRe     = regexp.MustCompile(`^can inline (.+?) with cost (\d+) as: `)
	cannotInlineRe  = regexp.MustCompile(`^cannot inline (.+?): (.+)$`)
	costRe          = regexp.MustCompile(`cost (\d+) exceeds budget`)
	devirtRe        = regexp.MustCompile(`^devirtualizing (.+) to (.+)$`)
	escapesRe       = regexp.MustCompile(`^(.*) escapes to heap:?$`)
	movedRe         = regexp.MustCompile(`^moved to heap: (.+)$`)
	inlineCallRe    = regexp.MustCompile(`^inlining call to (.+)$`)
	canInlinePlain  = "can inline "
	foundBoundsMsgs = map[string]bool{"Found IsInBounds": true, "Found IsSliceInBounds": true}
)

// parse consumes one invocation's stderr. Unrecognized notes (nil
// checks elided, leaking parameters, escape flow traces) are skipped;
// package-group headers ("# path") and positions outside .go files
// ("<autogenerated>") are skipped too.
func (f *Facts) parse(absDir, out string) {
	boundsSeen := make(map[Pos]bool)
	// One position is one allocation, which -m=2 can describe twice:
	// as a flow-trace header ("x escapes to heap:") and as the verdict
	// ("moved to heap: x"). Dedupe by position, preferring the verdict
	// spelling when both appear.
	escapeSeen := make(map[Pos]int)
	for _, line := range strings.Split(out, "\n") {
		m := posRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file, msg := m[1], m[4]
		if strings.HasPrefix(msg, " ") {
			continue // indented escape-flow trace line
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(absDir, file)
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		pos := Pos{file, ln, col}
		switch {
		case foundBoundsMsgs[msg]:
			if !boundsSeen[pos] {
				boundsSeen[pos] = true
				f.Bounds[file] = append(f.Bounds[file], pos)
			}
		case strings.HasPrefix(msg, canInlinePlain):
			if cm := canInlineRe.FindStringSubmatch(msg); cm != nil {
				cost, _ := strconv.Atoi(cm[2])
				f.Decisions[FileLine{file, ln}] = InlineDecision{
					Name: cm[1], CanInline: true, Cost: cost, Pos: pos,
				}
			}
		case strings.HasPrefix(msg, "cannot inline "):
			if cm := cannotInlineRe.FindStringSubmatch(msg); cm != nil {
				d := InlineDecision{Name: cm[1], Reason: cm[2], Pos: pos}
				if costM := costRe.FindStringSubmatch(cm[2]); costM != nil {
					d.Cost, _ = strconv.Atoi(costM[1])
				}
				f.Decisions[FileLine{file, ln}] = d
			}
		case strings.HasPrefix(msg, "inlining call to "):
			if cm := inlineCallRe.FindStringSubmatch(msg); cm != nil {
				f.InlinedCalls[pos] = cm[1]
			}
		case strings.HasPrefix(msg, "devirtualizing "):
			if cm := devirtRe.FindStringSubmatch(msg); cm != nil {
				f.Devirtualized[pos] = cm[2]
			}
		case movedRe.MatchString(msg):
			if i, ok := escapeSeen[pos]; ok {
				f.Escapes[file][i].What = msg
				break
			}
			escapeSeen[pos] = len(f.Escapes[file])
			f.Escapes[file] = append(f.Escapes[file], EscapeSite{pos, msg})
		case escapesRe.MatchString(msg):
			what := strings.TrimSuffix(msg, ":")
			if strings.Contains(what, "does not escape") {
				break
			}
			if _, ok := escapeSeen[pos]; ok {
				break
			}
			escapeSeen[pos] = len(f.Escapes[file])
			f.Escapes[file] = append(f.Escapes[file], EscapeSite{pos, what})
		}
	}
}

func sortPositions(ps []Pos) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Line != ps[j].Line {
			return ps[i].Line < ps[j].Line
		}
		return ps[i].Col < ps[j].Col
	})
}

// BoundsIn returns the bounds-check sites inside the [start, end] span
// of file (line/col inclusive-exclusive on the end position).
func (f *Facts) BoundsIn(file string, startLine, startCol, endLine, endCol int) []Pos {
	var out []Pos
	for _, p := range f.Bounds[file] {
		if spanContains(startLine, startCol, endLine, endCol, p.Line, p.Col) {
			out = append(out, p)
		}
	}
	return out
}

// EscapesIn returns the compiler-proved heap allocations inside the
// span, in position order.
func (f *Facts) EscapesIn(file string, startLine, startCol, endLine, endCol int) []EscapeSite {
	var out []EscapeSite
	for _, s := range f.Escapes[file] {
		if spanContains(startLine, startCol, endLine, endCol, s.Pos.Line, s.Pos.Col) {
			out = append(out, s)
		}
	}
	return out
}

// DevirtualizedAt reports whether an interface call spanning the given
// lines of file was devirtualized, and to what target. Devirtualization
// notes carry the position of the call's selector, which falls inside
// the call expression's span.
func (f *Facts) DevirtualizedAt(file string, startLine, startCol, endLine, endCol int) (string, bool) {
	for pos, target := range f.Devirtualized {
		if pos.File == file && spanContains(startLine, startCol, endLine, endCol, pos.Line, pos.Col) {
			return target, true
		}
	}
	return "", false
}

// InlinedAt reports whether the compiler inlined a call at the given
// line of file (inline notes land on the call's opening parenthesis,
// which shares a line with the call expression in gofmt'ed source),
// and the callee name it reported.
func (f *Facts) InlinedAt(file string, line int) (string, bool) {
	for pos, callee := range f.InlinedCalls {
		if pos.File == file && pos.Line == line {
			return callee, true
		}
	}
	return "", false
}

// InlinedCallsOn returns the reported callee names of every call the
// compiler inlined on the given line of file. Distinct calls on one
// line have distinct columns, so a caller matching a specific callee
// must scan the whole slice, not stop at the first note.
func (f *Facts) InlinedCallsOn(file string, line int) []string {
	var out []string
	for pos, callee := range f.InlinedCalls {
		if pos.File == file && pos.Line == line {
			out = append(out, callee)
		}
	}
	sort.Strings(out)
	return out
}

func spanContains(sl, sc, el, ec, line, col int) bool {
	if line < sl || line > el {
		return false
	}
	if line == sl && col < sc {
		return false
	}
	if line == el && col > ec {
		return false
	}
	return true
}

// AttachFuncFacts computes a FuncFacts summary for every function
// declaration in pkgs and exports it into set. A function whose
// declaration line carries no inline decision is marked not Compiled —
// either its file was excluded from the build (constraints, test
// files) or the package was never handed to Run; analyzers treat that
// as "no proof", never as "clean".
func (f *Facts) AttachFuncFacts(pkgs []*load.Package, set *facts.Set) {
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				ff := &FuncFacts{}
				if d, ok := f.Decisions[FileLine{start.Filename, start.Line}]; ok {
					ff.Compiled = true
					ff.CanInline = d.CanInline
					ff.InlineCost = d.Cost
					ff.CannotReason = d.Reason
				}
				ff.BoundsChecks = len(f.BoundsIn(start.Filename, start.Line, start.Column, end.Line, end.Column))
				set.ExportObjectFact(obj, ff)
			}
		}
	}
}
