// Package cf exercises every diagnostic class compilerfact parses: a
// bounds check the prover cannot eliminate, an inlinable function and
// one over budget, an inlined call, a devirtualizable interface call,
// and a heap escape.
package cf

type hasher interface{ Sum() int }

type small struct{ n int }

func (s small) Sum() int { return s.n }

// index carries an unprovable bounds check.
func index(xs []int, i int) int { return xs[i] }

// tiny is well under the inline budget.
func tiny(a int) int { return a + 1 }

// big is pushed over the inline budget by the switch ladder.
func big(xs []int) int {
	t := 0
	for i, x := range xs {
		switch {
		case x > 100:
			t += x * 7
		case x > 50:
			t += x * 5
		case x > 25:
			t += x * 3
		case x > 12:
			t += x * 2
		case x > 6:
			t += x + i
		case x > 3:
			t += x - i
		default:
			t -= x
		}
		t ^= t >> 3
		t *= 17
		t += i
	}
	return t
}

// caller gets tiny inlined into it (and a call to big that stays).
func caller(xs []int) int { return tiny(len(xs)) + big(xs) }

// devirt calls Sum through an interface with a locally known concrete
// type, which the compiler devirtualizes.
func devirt() int {
	var h hasher = small{n: 3}
	return h.Sum()
}

// escape returns a pointer to a composite literal, which must be heap
// allocated.
func escape() *small {
	s := &small{n: 4}
	return s
}

// use keeps the unexported helpers alive.
func use(xs []int) int {
	return index(xs, 0) + caller(xs) + devirt() + escape().n
}

var _ = use
