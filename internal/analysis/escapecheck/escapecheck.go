// Package escapecheck cross-checks the two allocation proof systems
// the repository runs: the abstract noalloc prover (a source-level
// model of allocation sites, exemptions, and cold paths) and the
// compiler's escape analysis (-m=2, the ground truth about what the
// emitted code heap-allocates). Each can be wrong alone — the abstract
// prover by missing an allocation shape it does not model, the
// compiler check by being read against the wrong exemption — so their
// disagreement is itself a diagnostic.
//
// The direction checked is compiler→abstract: every heap allocation
// the compiler proves inside a `//prio:noalloc` function must land on
// a line the abstract prover accounts for (a site it would flag, an
// exemption it deliberately grants, a cold path, or a call whose
// callees its interprocedural traversal audits — inlined callees'
// escape notes are re-attributed to the call-site line). A compiler
// escape on an unaccounted line means the abstract model has a blind
// spot at exactly that shape; the canonical example is a plain local
// whose address escapes ("moved to heap: x"), which no noalloc site
// class covers. The opposite direction needs no analyzer: an abstract
// site the compiler proves non-escaping is the prover being
// conservative, which is its contract.
//
// Matching is at line granularity — compiler columns drift by a token
// from go/ast positions — per noalloc.AccountedLines.
package escapecheck

import (
	"fmt"
	"go/ast"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/compilerfact"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/pragma"
)

var Analyzer = &analysis.Analyzer{
	Name: "escapecheck",
	Doc: "cross-check the compiler's escape analysis against the abstract noalloc " +
		"prover: a compiler-proved heap allocation in a //prio:noalloc function " +
		"must be on a line the abstract prover accounts for",
	RunProgram:         run,
	NeedsCompilerFacts: true,
}

func run(pass *analysis.ProgramPass) error {
	cf := pass.Compiler
	if cf == nil {
		return fmt.Errorf("escapecheck: no compiler facts attached (driver must run the toolchain first)")
	}
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !pragma.Has(fd.Doc, "prio:noalloc") {
					continue
				}
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				if _, compiled := cf.Decisions[compilerfact.FileLine{File: start.Filename, Line: start.Line}]; !compiled {
					pass.Reportf(fd.Name.Pos(),
						"%s is annotated //prio:noalloc but the compiler emitted no record for it — the file was not part of the compiler-fact build, so escape analysis cannot be cross-checked",
						fd.Name.Name)
					continue
				}
				accounted := noalloc.AccountedLines(pkg.Fset, pkg.Info, fd)
				for _, esc := range cf.EscapesIn(start.Filename, start.Line, start.Column, end.Line, end.Column) {
					if accounted[esc.Pos.Line] != "" {
						continue
					}
					pass.Reportf(fd.Name.Pos(),
						"the compiler proves a heap allocation in //prio:noalloc function %s (%s at %s:%d) on a line the abstract noalloc prover does not account for — the two proof systems disagree",
						fd.Name.Name, esc.What, filepath.Base(esc.Pos.File), esc.Pos.Line)
				}
			}
		}
	}
	return nil
}
