// Package clean holds //prio:noalloc functions where both proof
// systems agree: every compiler-proved heap allocation lands on a
// line the abstract prover accounts for (a cap-guarded grow, a cold
// panic, an audited call).
package clean

type buf struct{ tmp []byte }

// grow allocates only under the cap guard; the abstract prover
// exempts exactly that make, and the compiler's escape note lands on
// the accounted call line.
//
//prio:noalloc
func (b *buf) grow(n int) {
	if cap(b.tmp) < n {
		b.tmp = make([]byte, n)
	}
	b.tmp = b.tmp[:n]
}

// must allocates only its panic argument: cold for both provers.
//
//prio:noalloc
func (b *buf) must(i int) byte {
	if i >= len(b.tmp) {
		panic("clean: index past the high-water mark")
	}
	return b.tmp[i]
}

// fill reaches grow's allocation through a call; call lines are
// accounted — the traversal audits the callee where it is declared,
// and inlined callee escapes re-attribute to this line.
//
//prio:noalloc
func (b *buf) fill(n int, v byte) {
	b.grow(n)
	for i := range b.tmp {
		b.tmp[i] = v
	}
}

var (
	_ = (*buf).must
	_ = (*buf).fill
)
