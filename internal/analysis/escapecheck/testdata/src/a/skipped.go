//go:build neverbuild

// The build tag keeps this file out of the compiler-fact build: a
// //prio:noalloc function the compiler never saw cannot have its
// escape analysis cross-checked, which is itself a finding.

package a

//prio:noalloc
func skipped() {} // want `skipped is annotated //prio:noalloc but the compiler emitted no record for it`

var _ = skipped
