// Package a exercises the escapecheck cross-check with the abstract
// prover's canonical blind spot: a plain local whose address escapes.
// The compiler moves it to the heap; no noalloc site class covers it.
package a

var sink *int

//prio:noalloc
func leak() int { // want `the compiler proves a heap allocation in //prio:noalloc function leak \(moved to heap: x at a\.go:\d+\) on a line the abstract noalloc prover does not account for`
	x := 0
	sink = &x
	return x
}

var _ = leak
