package escapecheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/escapecheck"
)

func TestEscapecheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), escapecheck.Analyzer, "a", "clean")
}
