// Package matching implements Hopcroft-Karp maximum bipartite matching.
// The dag package uses it to compute exact dag width (the maximum
// antichain) via Dilworth's theorem, turning the paper's informal
// "AIRSN of width 250" into a measurable quantity.
package matching

// Bipartite holds a bipartite graph with nLeft left vertices and nRight
// right vertices; adj[l] lists the right vertices adjacent to left
// vertex l.
type Bipartite struct {
	nLeft, nRight int
	adj           [][]int
}

// NewBipartite creates an empty bipartite graph.
//
//prio:pure
func NewBipartite(nLeft, nRight int) *Bipartite {
	return &Bipartite{nLeft: nLeft, nRight: nRight, adj: make([][]int, nLeft)}
}

// AddEdge connects left vertex l to right vertex r.
//
//prio:pure
func (b *Bipartite) AddEdge(l, r int) {
	if l < 0 || l >= b.nLeft || r < 0 || r >= b.nRight {
		panic("matching: edge endpoint out of range")
	}
	b.adj[l] = append(b.adj[l], r)
}

const unmatched = -1

// Result is a maximum matching: MatchL[l] is the right vertex matched
// to left vertex l (or -1), and symmetrically MatchR.
type Result struct {
	Size   int
	MatchL []int
	MatchR []int
}

// MaxMatching computes a maximum matching with the Hopcroft-Karp
// algorithm in O(E sqrt(V)).
//
//prio:pure
func (b *Bipartite) MaxMatching() Result {
	matchL := make([]int, b.nLeft)
	matchR := make([]int, b.nRight)
	for i := range matchL {
		matchL[i] = unmatched
	}
	for i := range matchR {
		matchR[i] = unmatched
	}
	dist := make([]int, b.nLeft)
	queue := make([]int, 0, b.nLeft)

	const inf = int(^uint(0) >> 1)

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < b.nLeft; l++ {
			if matchL[l] == unmatched {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			l := queue[head]
			for _, r := range b.adj[l] {
				nl := matchR[r]
				if nl == unmatched {
					found = true
				} else if dist[nl] == inf {
					dist[nl] = dist[l] + 1
					queue = append(queue, nl)
				}
			}
		}
		return found
	}

	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, r := range b.adj[l] {
			nl := matchR[r]
			if nl == unmatched || (dist[nl] == dist[l]+1 && dfs(nl)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	size := 0
	for bfs() {
		for l := 0; l < b.nLeft; l++ {
			if matchL[l] == unmatched && dfs(l) {
				size++
			}
		}
	}
	return Result{Size: size, MatchL: matchL, MatchR: matchR}
}

// MinVertexCover returns, via Koenig's theorem, a minimum vertex cover
// (inLeft, inRight flags) of the bipartite graph, given a maximum
// matching. |cover| equals the matching size.
//
//prio:pure
func (b *Bipartite) MinVertexCover(m Result) (inLeft, inRight []bool) {
	// Alternating BFS from unmatched left vertices: visited left
	// vertices are OUT of the cover, visited right vertices are IN.
	visitedL := make([]bool, b.nLeft)
	visitedR := make([]bool, b.nRight)
	queue := make([]int, 0, b.nLeft)
	for l := 0; l < b.nLeft; l++ {
		if m.MatchL[l] == unmatched {
			visitedL[l] = true
			queue = append(queue, l)
		}
	}
	for head := 0; head < len(queue); head++ {
		l := queue[head]
		for _, r := range b.adj[l] {
			if visitedR[r] {
				continue
			}
			visitedR[r] = true
			if nl := m.MatchR[r]; nl != unmatched && !visitedL[nl] {
				visitedL[nl] = true
				queue = append(queue, nl)
			}
		}
	}
	inLeft = make([]bool, b.nLeft)
	inRight = make([]bool, b.nRight)
	for l := 0; l < b.nLeft; l++ {
		inLeft[l] = !visitedL[l]
	}
	for r := 0; r < b.nRight; r++ {
		inRight[r] = visitedR[r]
	}
	return inLeft, inRight
}
