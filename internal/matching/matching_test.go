package matching

import (
	"testing"

	"repro/internal/rng"
)

func TestEmpty(t *testing.T) {
	b := NewBipartite(3, 3)
	m := b.MaxMatching()
	if m.Size != 0 {
		t.Fatalf("size = %d", m.Size)
	}
}

func TestPerfectMatching(t *testing.T) {
	b := NewBipartite(3, 3)
	for i := 0; i < 3; i++ {
		b.AddEdge(i, i)
		b.AddEdge(i, (i+1)%3)
	}
	m := b.MaxMatching()
	if m.Size != 3 {
		t.Fatalf("size = %d, want 3", m.Size)
	}
	checkMatchingValid(t, b, m)
}

func TestAugmentingPathNeeded(t *testing.T) {
	// Classic case where greedy fails: l0-{r0}, l1-{r0,r1}.
	b := NewBipartite(2, 2)
	b.AddEdge(1, 0)
	b.AddEdge(1, 1)
	b.AddEdge(0, 0)
	m := b.MaxMatching()
	if m.Size != 2 {
		t.Fatalf("size = %d, want 2", m.Size)
	}
}

func TestStarGraph(t *testing.T) {
	b := NewBipartite(1, 5)
	for r := 0; r < 5; r++ {
		b.AddEdge(0, r)
	}
	if m := b.MaxMatching(); m.Size != 1 {
		t.Fatalf("size = %d, want 1", m.Size)
	}
}

func TestAddEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBipartite(1, 1).AddEdge(0, 5)
}

func checkMatchingValid(t *testing.T, b *Bipartite, m Result) {
	t.Helper()
	seenR := map[int]bool{}
	count := 0
	for l, r := range m.MatchL {
		if r == -1 {
			continue
		}
		count++
		if seenR[r] {
			t.Fatalf("right vertex %d matched twice", r)
		}
		seenR[r] = true
		if m.MatchR[r] != l {
			t.Fatalf("asymmetric matching at %d-%d", l, r)
		}
		found := false
		for _, rr := range b.adj[l] {
			if rr == r {
				found = true
			}
		}
		if !found {
			t.Fatalf("matched pair %d-%d is not an edge", l, r)
		}
	}
	if count != m.Size {
		t.Fatalf("Size %d but %d pairs", m.Size, count)
	}
}

// brute computes maximum matching by exhaustive search over left
// assignments (tiny graphs only).
func brute(b *Bipartite) int {
	usedR := make([]bool, b.nRight)
	var rec func(l int) int
	rec = func(l int) int {
		if l == b.nLeft {
			return 0
		}
		best := rec(l + 1) // leave l unmatched
		for _, r := range b.adj[l] {
			if !usedR[r] {
				usedR[r] = true
				if v := 1 + rec(l+1); v > best {
					best = v
				}
				usedR[r] = false
			}
		}
		return best
	}
	return rec(0)
}

func TestAgainstBruteForce(t *testing.T) {
	r := rng.New(12)
	for trial := 0; trial < 120; trial++ {
		nl, nr := 1+r.Intn(7), 1+r.Intn(7)
		b := NewBipartite(nl, nr)
		for l := 0; l < nl; l++ {
			for rr := 0; rr < nr; rr++ {
				if r.Float64() < 0.35 {
					b.AddEdge(l, rr)
				}
			}
		}
		m := b.MaxMatching()
		checkMatchingValid(t, b, m)
		if want := brute(b); m.Size != want {
			t.Fatalf("trial %d: size %d, brute force %d", trial, m.Size, want)
		}
	}
}

func TestVertexCoverKoenig(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 100; trial++ {
		nl, nr := 1+r.Intn(7), 1+r.Intn(7)
		b := NewBipartite(nl, nr)
		for l := 0; l < nl; l++ {
			for rr := 0; rr < nr; rr++ {
				if r.Float64() < 0.3 {
					b.AddEdge(l, rr)
				}
			}
		}
		m := b.MaxMatching()
		inL, inR := b.MinVertexCover(m)
		// cover size == matching size (Koenig)
		size := 0
		for _, v := range inL {
			if v {
				size++
			}
		}
		for _, v := range inR {
			if v {
				size++
			}
		}
		if size != m.Size {
			t.Fatalf("trial %d: cover %d != matching %d", trial, size, m.Size)
		}
		// every edge covered
		for l := 0; l < nl; l++ {
			for _, rr := range b.adj[l] {
				if !inL[l] && !inR[rr] {
					t.Fatalf("trial %d: edge %d-%d uncovered", trial, l, rr)
				}
			}
		}
	}
}

func BenchmarkMatchingDense(b *testing.B) {
	r := rng.New(1)
	bp := NewBipartite(300, 300)
	for l := 0; l < 300; l++ {
		for rr := 0; rr < 300; rr++ {
			if r.Float64() < 0.05 {
				bp.AddEdge(l, rr)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp.MaxMatching()
	}
}
