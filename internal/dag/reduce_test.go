package dag

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestShortcutSimpleTriangle(t *testing.T) {
	// a -> b -> c plus the shortcut a -> c.
	g := buildNamed(t, []string{"a", "b", "c"}, "a>b", "b>c", "a>c")
	sc := g.ShortcutArcs()
	if len(sc) != 1 || sc[0] != (Arc{g.IndexOf("a"), g.IndexOf("c")}) {
		t.Fatalf("shortcuts = %v", sc)
	}
	r, removed := g.TransitiveReduction()
	if len(removed) != 1 || r.NumArcs() != 2 {
		t.Fatalf("reduction left %d arcs, removed %v", r.NumArcs(), removed)
	}
	if r.HasArc(g.IndexOf("a"), g.IndexOf("c")) {
		t.Fatal("shortcut survived reduction")
	}
}

func TestShortcutNone(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c", "d"}, "a>b", "a>c", "b>d", "c>d")
	if sc := g.ShortcutArcs(); len(sc) != 0 {
		t.Fatalf("diamond has no shortcuts, got %v", sc)
	}
	r, _ := g.TransitiveReduction()
	if r.NumArcs() != g.NumArcs() {
		t.Fatal("reduction changed a reduced graph")
	}
	if r != g {
		t.Fatal("reduction of a reduced graph should share the receiver")
	}
}

func TestShortcutLongPath(t *testing.T) {
	// chain of 6 plus a long shortcut 0 -> 5 and a medium one 1 -> 4.
	b := New()
	for i := 0; i < 6; i++ {
		b.AddNode(fmt.Sprintf("v%d", i))
	}
	for i := 0; i+1 < 6; i++ {
		b.MustAddArc(i, i+1)
	}
	b.MustAddArc(0, 5)
	b.MustAddArc(1, 4)
	g := b.MustFreeze()
	sc := g.ShortcutArcs()
	if len(sc) != 2 {
		t.Fatalf("shortcuts = %v, want two", sc)
	}
	want := map[Arc]bool{{0, 5}: true, {1, 4}: true}
	for _, a := range sc {
		if !want[a] {
			t.Fatalf("unexpected shortcut %v", a)
		}
	}
}

func TestShortcutDiamondPlusDirect(t *testing.T) {
	// a -> b -> d, a -> c -> d, a -> d (shortcut).
	g := buildNamed(t, []string{"a", "b", "c", "d"},
		"a>b", "a>c", "b>d", "c>d", "a>d")
	sc := g.ShortcutArcs()
	if len(sc) != 1 || sc[0] != (Arc{g.IndexOf("a"), g.IndexOf("d")}) {
		t.Fatalf("shortcuts = %v", sc)
	}
}

func TestShortcutChainOfShortcuts(t *testing.T) {
	// Complete dag on 5 nodes: only the chain survives.
	b := New()
	for i := 0; i < 5; i++ {
		b.AddNode(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.MustAddArc(i, j)
		}
	}
	g := b.MustFreeze()
	r, removed := g.TransitiveReduction()
	if r.NumArcs() != 4 {
		t.Fatalf("complete dag reduced to %d arcs, want 4", r.NumArcs())
	}
	if len(removed) != g.NumArcs()-4 {
		t.Fatalf("removed %d arcs, want %d", len(removed), g.NumArcs()-4)
	}
	for i := 0; i < 4; i++ {
		if !r.HasArc(i, i+1) {
			t.Fatalf("chain arc %d->%d missing", i, i+1)
		}
	}
}

func TestReductionPreservesNamesAndNodes(t *testing.T) {
	g := buildNamed(t, []string{"x", "y", "z"}, "x>y", "y>z", "x>z")
	r, _ := g.TransitiveReduction()
	if r.NumNodes() != 3 || r.Name(1) != "y" || r.IndexOf("z") != g.IndexOf("z") {
		t.Fatal("reduction broke node identity")
	}
}

// randomDag builds a random dag: arcs only from lower to higher index.
func randomDag(r *rng.Source, n int, p float64) *Frozen {
	b := New()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				b.MustAddArc(i, j)
			}
		}
	}
	return b.MustFreeze()
}

// reachabilityMatrix computes pairwise reachability by DFS from each node.
func reachabilityMatrix(g *Frozen) [][]bool {
	n := g.NumNodes()
	m := make([][]bool, n)
	for v := 0; v < n; v++ {
		m[v] = make([]bool, n)
		set := g.Reachable(v)
		set.ForEach(func(u int) bool {
			m[v][u] = true
			return true
		})
	}
	return m
}

// Property: the reduction preserves reachability exactly.
func TestQuickReductionPreservesReachability(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(24)
		g := randomDag(r, n, 0.3)
		red, _ := g.TransitiveReduction()
		mg, mr := reachabilityMatrix(g), reachabilityMatrix(red)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if mg[i][j] != mr[i][j] {
					t.Fatalf("trial %d: reachability differs at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

// Property: the reduction is minimal — removing any surviving arc changes
// reachability.
func TestQuickReductionMinimal(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(14)
		g := randomDag(r, n, 0.35)
		red, _ := g.TransitiveReduction()
		for _, a := range red.Arcs() {
			// Drop arc a and check u can no longer reach v.
			var arcs []Arc
			for _, b := range red.Arcs() {
				if b != a {
					arcs = append(arcs, b)
				}
			}
			hb := New()
			for i := 0; i < n; i++ {
				hb.AddNode(fmt.Sprintf("n%d", i))
			}
			for _, b := range arcs {
				hb.MustAddArc(b.From, b.To)
			}
			if hb.MustFreeze().HasPath(a.From, a.To) {
				t.Fatalf("trial %d: arc %v is redundant after reduction", trial, a)
			}
		}
	}
}

// Property: the reduction is idempotent.
func TestQuickReductionIdempotent(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 30; trial++ {
		g := randomDag(r, 2+r.Intn(20), 0.3)
		red, _ := g.TransitiveReduction()
		red2, removed := red.TransitiveReduction()
		if len(removed) != 0 || red2.NumArcs() != red.NumArcs() {
			t.Fatalf("trial %d: reduction not idempotent", trial)
		}
	}
}

// Property (testing/quick): a shortcut-free random tree stays untouched.
func TestQuickTreeHasNoShortcuts(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(40)
		b := New()
		for i := 0; i < n; i++ {
			b.AddNode(fmt.Sprintf("n%d", i))
		}
		for i := 1; i < n; i++ {
			b.MustAddArc(r.Intn(i), i) // random parent forms a forest
		}
		return len(b.MustFreeze().ShortcutArcs()) == 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 50}
}

func BenchmarkTransitiveReductionLayered(b *testing.B) {
	r := rng.New(5)
	g := randomDag(r, 400, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.TransitiveReduction()
	}
}

func BenchmarkFreeze(b *testing.B) {
	r := rng.New(5)
	n := 2000
	bb := New()
	for i := 0; i < n; i++ {
		bb.AddNode(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.005 {
				bb.MustAddArc(i, j)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bb.Freeze(); err != nil {
			b.Fatal(err)
		}
	}
}
