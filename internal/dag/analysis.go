package dag

import (
	"fmt"

	"repro/internal/bitset"
)

// TopoSort returns the nodes in a topological order (Kahn's algorithm,
// smaller-index-first among ready nodes so the order is deterministic).
// It returns an error if the graph contains a cycle.
func (g *Graph) TopoSort() ([]int, error) {
	n := g.NumNodes()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.parents[v])
	}
	// A simple FIFO over ready nodes; seeded in index order, and children
	// are appended in adjacency order, so the result is deterministic.
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.children[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dag: cycle detected (%d of %d nodes sorted)", len(order), n)
	}
	return order, nil
}

// TopoPositions returns pos such that pos[v] is v's rank in TopoSort order.
func (g *Graph) TopoPositions() ([]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	pos := make([]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	return pos, nil
}

// Levels returns, for each node, the length of the longest path from any
// source to it (sources are level 0). The second result is the number of
// nodes per level. Panics if the graph is cyclic.
func (g *Graph) Levels() ([]int, []int) {
	order, err := g.TopoSort()
	if err != nil {
		panic(err)
	}
	level := make([]int, g.NumNodes())
	maxLevel := 0
	for _, u := range order {
		for _, p := range g.parents[u] {
			if level[p]+1 > level[u] {
				level[u] = level[p] + 1
			}
		}
		if level[u] > maxLevel {
			maxLevel = level[u]
		}
	}
	counts := make([]int, maxLevel+1)
	for _, l := range level {
		counts[l]++
	}
	return level, counts
}

// CriticalPathLength returns the number of nodes on a longest directed
// path (so a single node has critical path length 1). Zero for an empty
// graph.
func (g *Graph) CriticalPathLength() int {
	if g.NumNodes() == 0 {
		return 0
	}
	_, counts := g.Levels()
	return len(counts)
}

// MaxLevelWidth returns the largest number of nodes sharing one level —
// a cheap proxy for the dag's parallelism ("width" in the paper's AIRSN
// parameterization).
func (g *Graph) MaxLevelWidth() int {
	if g.NumNodes() == 0 {
		return 0
	}
	_, counts := g.Levels()
	w := 0
	for _, c := range counts {
		if c > w {
			w = c
		}
	}
	return w
}

// Reachable returns the set of nodes reachable from start by directed
// paths of length >= 0 (start itself is included).
func (g *Graph) Reachable(start int) *bitset.Set {
	g.checkNode(start)
	seen := bitset.New(g.NumNodes())
	stack := []int{start}
	seen.Add(start)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.children[u] {
			if !seen.Contains(v) {
				seen.Add(v)
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// HasPath reports whether there is a directed path (length >= 1) from u
// to v.
func (g *Graph) HasPath(u, v int) bool {
	g.checkNode(u)
	g.checkNode(v)
	if u == v {
		return false
	}
	seen := bitset.New(g.NumNodes())
	stack := make([]int, 0, 16)
	for _, c := range g.children[u] {
		if c == v {
			return true
		}
		if !seen.Contains(c) {
			seen.Add(c)
			stack = append(stack, c)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.children[x] {
			if c == v {
				return true
			}
			if !seen.Contains(c) {
				seen.Add(c)
				stack = append(stack, c)
			}
		}
	}
	return false
}

// UndirectedComponents returns a component id per node, ignoring arc
// orientation, and the number of components.
func (g *Graph) UndirectedComponents() ([]int, int) {
	n := g.NumNodes()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []int
	for v := 0; v < n; v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = next
		stack = append(stack[:0], v)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.children[u] {
				if comp[w] == -1 {
					comp[w] = next
					stack = append(stack, w)
				}
			}
			for _, w := range g.parents[u] {
				if comp[w] == -1 {
					comp[w] = next
					stack = append(stack, w)
				}
			}
		}
		next++
	}
	return comp, next
}

// IsBipartiteDag reports whether every arc runs from a source to a sink,
// i.e. the node set splits into sources U and sinks V with all arcs
// U -> V. (This is the paper's notion of a bipartite dag: a two-level
// dag, not merely 2-colorable.)
func (g *Graph) IsBipartiteDag() bool {
	if g.NumNodes() == 0 {
		return false
	}
	hasArc := false
	for u := range g.names {
		for _, v := range g.children[u] {
			hasArc = true
			if len(g.parents[u]) != 0 || len(g.children[v]) != 0 {
				return false
			}
		}
	}
	// A bipartite dag needs both parts nonempty, hence at least one arc;
	// an arcless graph is all isolated nodes (sources that are sinks).
	return hasArc
}
