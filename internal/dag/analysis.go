package dag

import "repro/internal/bitset"

// Levels returns, for each node, the length of the longest path from any
// source to it (sources are level 0). The second result is the number of
// nodes per level.
func (f *Frozen) Levels() ([]int, []int) {
	level := make([]int, f.NumNodes())
	maxLevel := 0
	for _, u := range f.topo {
		for _, p := range f.Parents(int(u)) {
			if level[p]+1 > level[u] {
				level[u] = level[p] + 1
			}
		}
		if level[u] > maxLevel {
			maxLevel = level[u]
		}
	}
	counts := make([]int, maxLevel+1)
	for _, l := range level {
		counts[l]++
	}
	return level, counts
}

// CriticalPathLength returns the number of nodes on a longest directed
// path (so a single node has critical path length 1). Zero for an empty
// graph.
func (f *Frozen) CriticalPathLength() int {
	if f.NumNodes() == 0 {
		return 0
	}
	_, counts := f.Levels()
	return len(counts)
}

// MaxLevelWidth returns the largest number of nodes sharing one level —
// a cheap proxy for the dag's parallelism ("width" in the paper's AIRSN
// parameterization).
func (f *Frozen) MaxLevelWidth() int {
	if f.NumNodes() == 0 {
		return 0
	}
	_, counts := f.Levels()
	w := 0
	for _, c := range counts {
		if c > w {
			w = c
		}
	}
	return w
}

// Reachable returns the set of nodes reachable from start by directed
// paths of length >= 0 (start itself is included).
func (f *Frozen) Reachable(start int) *bitset.Set {
	f.checkNode(start)
	seen := bitset.New(f.NumNodes())
	stack := []int32{int32(start)}
	seen.Add(start)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range f.Children(int(u)) {
			if !seen.Contains(int(v)) {
				seen.Add(int(v))
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// HasPath reports whether there is a directed path (length >= 1) from u
// to v.
func (f *Frozen) HasPath(u, v int) bool {
	f.checkNode(u)
	f.checkNode(v)
	if u == v {
		return false
	}
	seen := bitset.New(f.NumNodes())
	stack := make([]int32, 0, 16)
	for _, c := range f.Children(u) {
		if int(c) == v {
			return true
		}
		if !seen.Contains(int(c)) {
			seen.Add(int(c))
			stack = append(stack, c)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range f.Children(int(x)) {
			if int(c) == v {
				return true
			}
			if !seen.Contains(int(c)) {
				seen.Add(int(c))
				stack = append(stack, c)
			}
		}
	}
	return false
}

// UndirectedComponents returns a component id per node, ignoring arc
// orientation, and the number of components.
func (f *Frozen) UndirectedComponents() ([]int, int) {
	n := f.NumNodes()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []int32
	for v := 0; v < n; v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = next
		stack = append(stack[:0], int32(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range f.Children(int(u)) {
				if comp[w] == -1 {
					comp[w] = next
					stack = append(stack, w)
				}
			}
			for _, w := range f.Parents(int(u)) {
				if comp[w] == -1 {
					comp[w] = next
					stack = append(stack, w)
				}
			}
		}
		next++
	}
	return comp, next
}

// IsBipartiteDag reports whether every arc runs from a source to a sink,
// i.e. the node set splits into sources U and sinks V with all arcs
// U -> V. (This is the paper's notion of a bipartite dag: a two-level
// dag, not merely 2-colorable.)
//
//prio:noalloc
//prio:pure
func (f *Frozen) IsBipartiteDag() bool {
	if f.NumNodes() == 0 {
		return false
	}
	hasArc := false
	for u := 0; u < f.NumNodes(); u++ {
		for _, v := range f.Children(u) {
			hasArc = true
			if f.InDegree(u) != 0 || f.OutDegree(int(v)) != 0 {
				return false
			}
		}
	}
	// A bipartite dag needs both parts nonempty, hence at least one arc;
	// an arcless graph is all isolated nodes (sources that are sinks).
	return hasArc
}
