package dag

import "testing"

func fpTestBuilder() *Builder {
	b := New()
	a, bb, c, d := b.AddNode("a"), b.AddNode("b"), b.AddNode("c"), b.AddNode("d")
	b.MustAddArc(a, bb)
	b.MustAddArc(a, c)
	b.MustAddArc(bb, d)
	b.MustAddArc(c, d)
	b.MustAddArc(a, d) // shortcut
	return b
}

func fpTestGraph() *Frozen { return fpTestBuilder().MustFreeze() }

func TestFingerprintStability(t *testing.T) {
	g1, g2 := fpTestGraph(), fpTestGraph()
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Fatal("identical graphs produced different fingerprints")
	}
	if !g1.StructuralEq(g2) {
		t.Fatal("identical graphs not StructuralEq")
	}
	b := fpTestBuilder()
	b.MustAddArc(b.IndexOf("b"), b.IndexOf("c"))
	g3 := b.MustFreeze()
	if g1.Fingerprint() == g3.Fingerprint() {
		t.Fatal("distinct graphs share a fingerprint")
	}
	if g1.StructuralEq(g3) {
		t.Fatal("distinct graphs StructuralEq")
	}
}

func TestFingerprintSensitiveToNames(t *testing.T) {
	b1, b2 := New(), New()
	b1.AddNode("a")
	b2.AddNode("b")
	if b1.MustFreeze().Fingerprint() == b2.MustFreeze().Fingerprint() {
		t.Fatal("renamed node did not change the fingerprint")
	}
}

func TestTransitiveReductionCached(t *testing.T) {
	g := fpTestGraph()
	c := NewReduceCache()
	r1, s1 := g.TransitiveReductionCached(c)
	r2, s2 := g.TransitiveReductionCached(c)
	if r1 != r2 {
		t.Fatal("second reduction was not the cached graph")
	}
	if len(s1) != 1 || s1[0] != (Arc{0, 3}) {
		t.Fatalf("shortcuts = %v, want [{0 3}]", s1)
	}
	if len(s2) != len(s1) {
		t.Fatalf("cached shortcuts differ: %v vs %v", s2, s1)
	}

	// A structurally equal but distinct graph also hits.
	r3, _ := fpTestGraph().TransitiveReductionCached(c)
	if r3 != r1 {
		t.Fatal("structurally equal graph missed the cache")
	}

	// The cached reduction matches the uncached one.
	want, _ := g.TransitiveReduction()
	if !r1.StructuralEq(want) {
		t.Fatal("cached reduction differs from direct reduction")
	}

	// A nil cache still works.
	r4, _ := g.TransitiveReductionCached(nil)
	if !r4.StructuralEq(want) {
		t.Fatal("nil-cache reduction differs from direct reduction")
	}
}

func TestTransitiveReductionCachedConcurrent(t *testing.T) {
	g := fpTestGraph()
	c := NewReduceCache()
	done := make(chan *Frozen, 8)
	for i := 0; i < 8; i++ {
		go func() {
			r, _ := g.TransitiveReductionCached(c)
			done <- r
		}()
	}
	want, _ := g.TransitiveReduction()
	for i := 0; i < 8; i++ {
		if r := <-done; !r.StructuralEq(want) {
			t.Fatal("concurrent cached reduction is wrong")
		}
	}
}
