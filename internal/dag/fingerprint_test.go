package dag

import "testing"

func fpTestGraph() *Graph {
	g := New()
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	g.MustAddArc(a, b)
	g.MustAddArc(a, c)
	g.MustAddArc(b, d)
	g.MustAddArc(c, d)
	g.MustAddArc(a, d) // shortcut
	return g
}

func TestFingerprintStability(t *testing.T) {
	g1, g2 := fpTestGraph(), fpTestGraph()
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Fatal("identical graphs produced different fingerprints")
	}
	if !g1.StructuralEq(g2) {
		t.Fatal("identical graphs not StructuralEq")
	}
	g2.MustAddArc(g2.IndexOf("b"), g2.IndexOf("c"))
	if g1.Fingerprint() == g2.Fingerprint() {
		t.Fatal("distinct graphs share a fingerprint")
	}
	if g1.StructuralEq(g2) {
		t.Fatal("distinct graphs StructuralEq")
	}
}

func TestFingerprintSensitiveToNames(t *testing.T) {
	g1, g2 := New(), New()
	g1.AddNode("a")
	g2.AddNode("b")
	if g1.Fingerprint() == g2.Fingerprint() {
		t.Fatal("renamed node did not change the fingerprint")
	}
}

func TestTransitiveReductionCached(t *testing.T) {
	g := fpTestGraph()
	c := NewReduceCache()
	r1, s1 := g.TransitiveReductionCached(c)
	r2, s2 := g.TransitiveReductionCached(c)
	if r1 != r2 {
		t.Fatal("second reduction was not the cached graph")
	}
	if len(s1) != 1 || s1[0] != (Arc{0, 3}) {
		t.Fatalf("shortcuts = %v, want [{0 3}]", s1)
	}
	if len(s2) != len(s1) {
		t.Fatalf("cached shortcuts differ: %v vs %v", s2, s1)
	}

	// A structurally equal but distinct graph also hits.
	r3, _ := fpTestGraph().TransitiveReductionCached(c)
	if r3 != r1 {
		t.Fatal("structurally equal graph missed the cache")
	}

	// The cached reduction matches the uncached one.
	want, _ := g.TransitiveReduction()
	if !r1.StructuralEq(want) {
		t.Fatal("cached reduction differs from direct reduction")
	}

	// A nil cache still works.
	r4, _ := g.TransitiveReductionCached(nil)
	if !r4.StructuralEq(want) {
		t.Fatal("nil-cache reduction differs from direct reduction")
	}
}

func TestTransitiveReductionCachedConcurrent(t *testing.T) {
	g := fpTestGraph()
	c := NewReduceCache()
	done := make(chan *Graph, 8)
	for i := 0; i < 8; i++ {
		go func() {
			r, _ := g.TransitiveReductionCached(c)
			done <- r
		}()
	}
	want, _ := g.TransitiveReduction()
	for i := 0; i < 8; i++ {
		if r := <-done; !r.StructuralEq(want) {
			t.Fatal("concurrent cached reduction is wrong")
		}
	}
}
