package dag

import (
	"hash/maphash"
	"sync"
)

// Structural fingerprints and the transitive-reduction cache. The prio
// pipeline reduces the same graph several times per invocation (once in
// the heuristic's Divide phase, again in the theoretical algorithm, and
// once per policy in the simulator), and the reduction is one of the
// most expensive passes on the big paper dags. A fingerprint keyed
// cache lets every stage share one reduction.

// fingerprintSeed is fixed for the process so fingerprints are
// comparable across graphs (but not across processes; they are never
// persisted).
var fingerprintSeed = maphash.MakeSeed()

// Fingerprint returns a structural hash of the graph: node count, node
// names in index order, and every arc. Two graphs with equal
// fingerprints are equal with overwhelming probability, but callers
// that must not confuse distinct graphs should verify with StructuralEq
// (the ReduceCache does).
func (f *Frozen) Fingerprint() uint64 {
	var h maphash.Hash
	h.SetSeed(fingerprintSeed)
	var buf [8]byte
	writeInt := func(x int) {
		v := uint64(x)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeInt(f.NumNodes())
	for _, name := range f.names {
		h.WriteString(name)
		h.WriteByte(0)
	}
	writeInt(f.numArcs)
	for u := 0; u < f.NumNodes(); u++ {
		writeInt(-u - 1) // delimiter: distinguishes adjacency boundaries
		for _, v := range f.Children(u) {
			writeInt(int(v))
		}
	}
	return h.Sum64()
}

// StructuralEq reports whether g and o have identical node names (in
// index order) and identical adjacency (including arc insertion order).
//
//prio:noalloc
//prio:pure
func (f *Frozen) StructuralEq(o *Frozen) bool {
	if f == o {
		return true
	}
	if len(f.names) != len(o.names) || f.numArcs != o.numArcs {
		return false
	}
	for i, name := range f.names {
		if o.names[i] != name {
			return false
		}
	}
	for u := 0; u < f.NumNodes(); u++ {
		fu, ou := f.Children(u), o.Children(u)
		if len(fu) != len(ou) {
			return false
		}
		for i, v := range fu {
			if ou[i] != v {
				return false
			}
		}
	}
	return true
}

// ReduceCache memoizes transitive reductions by graph fingerprint. It
// is safe for concurrent use. Cached results are shared: callers must
// treat the returned graph and shortcut list as immutable, which the
// Frozen form guarantees for the graph and convention guarantees for
// the slice.
type ReduceCache struct {
	mu      sync.Mutex
	entries map[uint64]*reduceEntry // guarded by mu
}

type reduceEntry struct {
	source    *Frozen // the graph the reduction was computed from
	reduced   *Frozen
	shortcuts []Arc
}

// NewReduceCache returns an empty reduction cache.
func NewReduceCache() *ReduceCache {
	return &ReduceCache{entries: make(map[uint64]*reduceEntry)}
}

// TransitiveReductionCached is TransitiveReduction memoized through c.
// A nil cache degrades to the uncached computation. On a hit the
// returned graph and slice are shared with every other caller and must
// not be mutated. Fingerprint collisions are guarded by a structural
// comparison against the graph that populated the entry, so a hit is
// never wrong.
func (f *Frozen) TransitiveReductionCached(c *ReduceCache) (*Frozen, []Arc) {
	if c == nil {
		return f.TransitiveReduction()
	}
	fp := f.Fingerprint()
	c.mu.Lock()
	e, ok := c.entries[fp]
	c.mu.Unlock()
	if ok && f.StructuralEq(e.source) {
		return e.reduced, e.shortcuts
	}
	reduced, shortcuts := f.TransitiveReduction()
	c.mu.Lock()
	c.entries[fp] = &reduceEntry{source: f, reduced: reduced, shortcuts: shortcuts}
	c.mu.Unlock()
	return reduced, shortcuts
}
