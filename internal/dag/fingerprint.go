package dag

import (
	"hash/maphash"
	"sync"
)

// Structural fingerprints and the transitive-reduction cache. The prio
// pipeline reduces the same graph several times per invocation (once in
// the heuristic's Divide phase, again in the theoretical algorithm, and
// once per policy in the simulator), and the reduction is one of the
// most expensive passes on the big paper dags. A fingerprint keyed
// cache lets every stage share one reduction.

// fingerprintSeed is fixed for the process so fingerprints are
// comparable across graphs (but not across processes; they are never
// persisted).
var fingerprintSeed = maphash.MakeSeed()

// Fingerprint returns a structural hash of the graph: node count, node
// names in index order, and every arc. Two graphs with equal
// fingerprints are equal with overwhelming probability, but callers
// that must not confuse distinct graphs should verify with StructuralEq
// (the ReduceCache does).
func (g *Graph) Fingerprint() uint64 {
	var h maphash.Hash
	h.SetSeed(fingerprintSeed)
	var buf [8]byte
	writeInt := func(x int) {
		v := uint64(x)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeInt(len(g.names))
	for _, name := range g.names {
		h.WriteString(name)
		h.WriteByte(0)
	}
	writeInt(g.numArcs)
	for u := range g.children {
		writeInt(-u - 1) // delimiter: distinguishes adjacency boundaries
		for _, v := range g.children[u] {
			writeInt(v)
		}
	}
	return h.Sum64()
}

// StructuralEq reports whether g and o have identical node names (in
// index order) and identical adjacency (including arc insertion order).
func (g *Graph) StructuralEq(o *Graph) bool {
	if g == o {
		return true
	}
	if len(g.names) != len(o.names) || g.numArcs != o.numArcs {
		return false
	}
	for i, name := range g.names {
		if o.names[i] != name {
			return false
		}
	}
	for u := range g.children {
		gu, ou := g.children[u], o.children[u]
		if len(gu) != len(ou) {
			return false
		}
		for i, v := range gu {
			if ou[i] != v {
				return false
			}
		}
	}
	return true
}

// ReduceCache memoizes transitive reductions by graph fingerprint. It
// is safe for concurrent use. Cached results are shared: callers must
// treat the returned graph and shortcut list as immutable, which every
// analysis pass in this repository already does (see the package
// comment).
type ReduceCache struct {
	mu      sync.Mutex
	entries map[uint64]*reduceEntry // guarded by mu
}

type reduceEntry struct {
	source    *Graph // the graph the reduction was computed from
	reduced   *Graph
	shortcuts []Arc
}

// NewReduceCache returns an empty reduction cache.
func NewReduceCache() *ReduceCache {
	return &ReduceCache{entries: make(map[uint64]*reduceEntry)}
}

// TransitiveReductionCached is TransitiveReduction memoized through c.
// A nil cache degrades to the uncached computation. On a hit the
// returned graph and slice are shared with every other caller and must
// not be mutated. Fingerprint collisions are guarded by a structural
// comparison against the graph that populated the entry, so a hit is
// never wrong.
func (g *Graph) TransitiveReductionCached(c *ReduceCache) (*Graph, []Arc) {
	if c == nil {
		return g.TransitiveReduction()
	}
	fp := g.Fingerprint()
	c.mu.Lock()
	e, ok := c.entries[fp]
	c.mu.Unlock()
	if ok && g.StructuralEq(e.source) {
		return e.reduced, e.shortcuts
	}
	reduced, shortcuts := g.TransitiveReduction()
	c.mu.Lock()
	c.entries[fp] = &reduceEntry{source: g, reduced: reduced, shortcuts: shortcuts}
	c.mu.Unlock()
	return reduced, shortcuts
}
