package dag

import (
	"testing"

	"repro/internal/rng"
)

func TestWidthChain(t *testing.T) {
	g := chain(6)
	w, anti, err := g.Width()
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 || len(anti) != 1 {
		t.Fatalf("chain width = %d (%v)", w, anti)
	}
}

func TestWidthIndependent(t *testing.T) {
	b := New()
	for i := 0; i < 7; i++ {
		b.AddNode(string(rune('a' + i)))
	}
	w, anti, err := b.MustFreeze().Width()
	if err != nil {
		t.Fatal(err)
	}
	if w != 7 || len(anti) != 7 {
		t.Fatalf("independent width = %d", w)
	}
}

func TestWidthDiamond(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c", "d"}, "a>b", "a>c", "b>d", "c>d")
	w, anti, err := g.Width()
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Fatalf("diamond width = %d, want 2", w)
	}
	if len(anti) != 2 || g.Name(anti[0]) != "b" || g.Name(anti[1]) != "c" {
		t.Fatalf("antichain = %v", anti)
	}
}

func TestWidthEmptyAndLimit(t *testing.T) {
	w, anti, err := New().MustFreeze().Width()
	if err != nil || w != 0 || anti != nil {
		t.Fatalf("empty width = %d, %v, %v", w, anti, err)
	}
	big := New()
	for i := 0; i <= MaxWidthNodes; i++ {
		big.AddNode(string(rune('a')) + itoa(i))
	}
	if _, _, err := big.MustFreeze().Width(); err == nil {
		t.Fatal("oversized dag accepted")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// bruteWidth enumerates all antichains for tiny dags.
func bruteWidth(g *Frozen) int {
	n := g.NumNodes()
	comparable := make([][]bool, n)
	for u := 0; u < n; u++ {
		comparable[u] = make([]bool, n)
	}
	for u := 0; u < n; u++ {
		r := g.Reachable(u)
		r.ForEach(func(v int) bool {
			if v != u {
				comparable[u][v] = true
				comparable[v][u] = true
			}
			return true
		})
	}
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		size := 0
		var members []int
		for v := 0; v < n && ok; v++ {
			if mask&(1<<v) == 0 {
				continue
			}
			for _, u := range members {
				if comparable[u][v] {
					ok = false
					break
				}
			}
			members = append(members, v)
			size++
		}
		if ok && size > best {
			best = size
		}
	}
	return best
}

func TestWidthAgainstBruteForce(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 60; trial++ {
		g := randomDag(r, 2+r.Intn(11), 0.3)
		w, anti, err := g.Width()
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteWidth(g); w != want {
			t.Fatalf("trial %d: width %d, brute %d", trial, w, want)
		}
		// returned set must actually be an antichain
		for i, u := range anti {
			for _, v := range anti[i+1:] {
				if g.HasPath(u, v) || g.HasPath(v, u) {
					t.Fatalf("trial %d: %d and %d comparable in antichain", trial, u, v)
				}
			}
		}
	}
}

// The paper calls the 3w+23-job fMRI dag "AIRSN of width w"; its true
// Dilworth width is w+1 (one cover plus a handle or join job is the
// largest antichain... verified here for the exact generator shape via
// the workloads package in its own tests; here we pin a structural
// example built by hand).
func TestWidthForkWithFringes(t *testing.T) {
	// fork f -> c0..c3, fringes g0..g3 -> c0..c3 (AIRSN's first cover
	// in miniature): antichain = fringes + fork = 5.
	b := New()
	f := b.AddNode("f")
	var fr, cv [4]int
	for i := 0; i < 4; i++ {
		fr[i] = b.AddNode("g" + itoa(i))
		cv[i] = b.AddNode("c" + itoa(i))
		b.MustAddArc(f, cv[i])
		b.MustAddArc(fr[i], cv[i])
	}
	w, _, err := b.MustFreeze().Width()
	if err != nil {
		t.Fatal(err)
	}
	if w != 5 {
		t.Fatalf("width = %d, want 5 (4 fringes + the fork)", w)
	}
}

func BenchmarkWidthAIRSNLike(b *testing.B) {
	bb := New()
	f := bb.AddNode("f")
	for i := 0; i < 250; i++ {
		fr := bb.AddNode("g" + itoa(i))
		cv := bb.AddNode("c" + itoa(i))
		bb.MustAddArc(f, cv)
		bb.MustAddArc(fr, cv)
	}
	g := bb.MustFreeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.Width(); err != nil {
			b.Fatal(err)
		}
	}
}
