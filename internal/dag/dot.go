package dag

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax. Arcs are oriented
// parent -> child. An optional attribute function may decorate nodes
// (e.g. with the priority assigned by the scheduler); it may return ""
// for no attributes.
func (f *Frozen) DOT(name string, nodeAttrs func(v int) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=BT;\n") // paper draws arcs oriented upward
	for v := 0; v < f.NumNodes(); v++ {
		attrs := ""
		if nodeAttrs != nil {
			attrs = nodeAttrs(v)
		}
		if attrs != "" {
			fmt.Fprintf(&b, "  %q [%s];\n", f.names[v], attrs)
		} else {
			fmt.Fprintf(&b, "  %q;\n", f.names[v])
		}
	}
	for _, a := range f.Arcs() {
		fmt.Fprintf(&b, "  %q -> %q;\n", f.names[a.From], f.names[a.To])
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes a graph's structure; used by cmd/overhead and the
// workload self-checks.
type Stats struct {
	Nodes, Arcs          int
	Sources, Sinks       int
	CriticalPath         int // nodes on a longest path
	MaxLevelWidth        int
	MaxOutDegree         int
	MaxInDegree          int
	UndirectedComponents int
}

// ComputeStats returns structural statistics for the graph.
func (f *Frozen) ComputeStats() Stats {
	s := Stats{
		Nodes:   f.NumNodes(),
		Arcs:    f.NumArcs(),
		Sources: len(f.Sources()),
		Sinks:   len(f.Sinks()),
	}
	if s.Nodes > 0 {
		s.CriticalPath = f.CriticalPathLength()
		s.MaxLevelWidth = f.MaxLevelWidth()
		_, s.UndirectedComponents = f.UndirectedComponents()
	}
	for v := 0; v < f.NumNodes(); v++ {
		if d := f.OutDegree(v); d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		if d := f.InDegree(v); d > s.MaxInDegree {
			s.MaxInDegree = d
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d arcs=%d sources=%d sinks=%d critpath=%d width=%d maxout=%d maxin=%d components=%d",
		s.Nodes, s.Arcs, s.Sources, s.Sinks, s.CriticalPath, s.MaxLevelWidth, s.MaxOutDegree, s.MaxInDegree, s.UndirectedComponents)
}

// DegreeHistogram returns counts of out-degrees (index = degree).
func (f *Frozen) DegreeHistogram() []int {
	max := 0
	for v := 0; v < f.NumNodes(); v++ {
		if d := f.OutDegree(v); d > max {
			max = d
		}
	}
	h := make([]int, max+1)
	for v := 0; v < f.NumNodes(); v++ {
		h[f.OutDegree(v)]++
	}
	return h
}

// SortedNames returns the node names in lexicographic order (handy for
// deterministic test assertions).
func (f *Frozen) SortedNames() []string {
	out := append([]string(nil), f.names...)
	sort.Strings(out)
	return out
}
