package dag

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax. Arcs are oriented
// parent -> child. An optional attribute function may decorate nodes
// (e.g. with the priority assigned by the scheduler); it may return ""
// for no attributes.
func (g *Graph) DOT(name string, nodeAttrs func(v int) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=BT;\n") // paper draws arcs oriented upward
	for v := 0; v < g.NumNodes(); v++ {
		attrs := ""
		if nodeAttrs != nil {
			attrs = nodeAttrs(v)
		}
		if attrs != "" {
			fmt.Fprintf(&b, "  %q [%s];\n", g.names[v], attrs)
		} else {
			fmt.Fprintf(&b, "  %q;\n", g.names[v])
		}
	}
	for _, a := range g.Arcs() {
		fmt.Fprintf(&b, "  %q -> %q;\n", g.names[a.From], g.names[a.To])
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes a graph's structure; used by cmd/overhead and the
// workload self-checks.
type Stats struct {
	Nodes, Arcs          int
	Sources, Sinks       int
	CriticalPath         int // nodes on a longest path
	MaxLevelWidth        int
	MaxOutDegree         int
	MaxInDegree          int
	UndirectedComponents int
}

// ComputeStats returns structural statistics for the graph.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Nodes:   g.NumNodes(),
		Arcs:    g.NumArcs(),
		Sources: len(g.Sources()),
		Sinks:   len(g.Sinks()),
	}
	if s.Nodes > 0 {
		s.CriticalPath = g.CriticalPathLength()
		s.MaxLevelWidth = g.MaxLevelWidth()
		_, s.UndirectedComponents = g.UndirectedComponents()
	}
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.OutDegree(v); d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		if d := g.InDegree(v); d > s.MaxInDegree {
			s.MaxInDegree = d
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d arcs=%d sources=%d sinks=%d critpath=%d width=%d maxout=%d maxin=%d components=%d",
		s.Nodes, s.Arcs, s.Sources, s.Sinks, s.CriticalPath, s.MaxLevelWidth, s.MaxOutDegree, s.MaxInDegree, s.UndirectedComponents)
}

// DegreeHistogram returns counts of out-degrees (index = degree).
func (g *Graph) DegreeHistogram() []int {
	max := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.OutDegree(v); d > max {
			max = d
		}
	}
	h := make([]int, max+1)
	for v := 0; v < g.NumNodes(); v++ {
		h[g.OutDegree(v)]++
	}
	return h
}

// SortedNames returns the node names in lexicographic order (handy for
// deterministic test assertions).
func (g *Graph) SortedNames() []string {
	out := append([]string(nil), g.names...)
	sort.Strings(out)
	return out
}
