// Package dag implements the directed-acyclic-graph substrate of the
// scheduler. A Graph holds the jobs of a computation and their
// dependencies: an arc u -> v means job v cannot start until job u has
// completed (u is a parent of v, v a child of u), exactly the model of
// Section 2.1 of the paper.
//
// Graphs are built incrementally with AddNode/AddArc and then treated as
// immutable by the analysis passes (topological sort, transitive
// reduction, decomposition). Nodes are dense integer indices in insertion
// order; every node also carries a name so that DAGMan files round-trip.
package dag

import (
	"fmt"
	"sort"
)

// Graph is a directed graph intended to be acyclic. Acyclicity is not
// enforced on every AddArc (that would be quadratic); call Validate or
// TopoSort to check it once the graph is assembled.
type Graph struct {
	names    []string
	index    map[string]int
	children [][]int
	parents  [][]int
	numArcs  int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{index: make(map[string]int)}
}

// NewWithCapacity returns an empty graph with room preallocated for n nodes.
func NewWithCapacity(n int) *Graph {
	return &Graph{
		names:    make([]string, 0, n),
		index:    make(map[string]int, n),
		children: make([][]int, 0, n),
		parents:  make([][]int, 0, n),
	}
}

// AddNode adds a node with the given name and returns its index. Names
// must be unique; adding a duplicate name returns the existing index.
func (g *Graph) AddNode(name string) int {
	if i, ok := g.index[name]; ok {
		return i
	}
	i := len(g.names)
	g.names = append(g.names, name)
	g.index[name] = i
	g.children = append(g.children, nil)
	g.parents = append(g.parents, nil)
	return i
}

// AddArc adds the dependency u -> v. It panics on out-of-range indices and
// returns an error for self-loops and duplicate arcs.
func (g *Graph) AddArc(u, v int) error {
	g.checkNode(u)
	g.checkNode(v)
	if u == v {
		return fmt.Errorf("dag: self-loop on node %d (%s)", u, g.names[u])
	}
	for _, c := range g.children[u] {
		if c == v {
			return fmt.Errorf("dag: duplicate arc %s -> %s", g.names[u], g.names[v])
		}
	}
	g.children[u] = append(g.children[u], v)
	g.parents[v] = append(g.parents[v], u)
	g.numArcs++
	return nil
}

// MustAddArc is AddArc for construction code where duplicates are bugs.
func (g *Graph) MustAddArc(u, v int) {
	if err := g.AddArc(u, v); err != nil {
		panic(err)
	}
}

func (g *Graph) checkNode(v int) {
	if v < 0 || v >= len(g.names) {
		panic(fmt.Sprintf("dag: node %d out of range [0,%d)", v, len(g.names)))
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumArcs returns the number of arcs.
func (g *Graph) NumArcs() int { return g.numArcs }

// Name returns the name of node v.
func (g *Graph) Name(v int) string {
	g.checkNode(v)
	return g.names[v]
}

// Names returns the node names indexed by node. The caller must not
// modify the returned slice.
func (g *Graph) Names() []string { return g.names }

// IndexOf returns the index of the node with the given name, or -1.
func (g *Graph) IndexOf(name string) int {
	if i, ok := g.index[name]; ok {
		return i
	}
	return -1
}

// Children returns the out-neighbours of v. The caller must not modify
// the returned slice.
func (g *Graph) Children(v int) []int {
	g.checkNode(v)
	return g.children[v]
}

// Parents returns the in-neighbours of v. The caller must not modify the
// returned slice.
func (g *Graph) Parents(v int) []int {
	g.checkNode(v)
	return g.parents[v]
}

// OutDegree returns the number of children of v.
func (g *Graph) OutDegree(v int) int { return len(g.Children(v)) }

// InDegree returns the number of parents of v.
func (g *Graph) InDegree(v int) int { return len(g.Parents(v)) }

// IsSource reports whether v has no parents.
func (g *Graph) IsSource(v int) bool { return g.InDegree(v) == 0 }

// IsSink reports whether v has no children.
func (g *Graph) IsSink(v int) bool { return g.OutDegree(v) == 0 }

// Sources returns the nodes with no parents, in index order.
func (g *Graph) Sources() []int {
	var out []int
	for v := range g.names {
		if len(g.parents[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Sinks returns the nodes with no children, in index order.
func (g *Graph) Sinks() []int {
	var out []int
	for v := range g.names {
		if len(g.children[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// HasArc reports whether the arc u -> v exists.
func (g *Graph) HasArc(u, v int) bool {
	g.checkNode(u)
	g.checkNode(v)
	for _, c := range g.children[u] {
		if c == v {
			return true
		}
	}
	return false
}

// Arc is a directed edge of the graph.
type Arc struct{ From, To int }

// Arcs returns all arcs sorted by (From, To).
func (g *Graph) Arcs() []Arc {
	out := make([]Arc, 0, g.numArcs)
	for u := range g.names {
		for _, v := range g.children[u] {
			out = append(out, Arc{u, v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewWithCapacity(g.NumNodes())
	c.names = append(c.names[:0], g.names...)
	for i, n := range g.names {
		c.index[n] = i
	}
	c.children = make([][]int, len(g.children))
	c.parents = make([][]int, len(g.parents))
	for v := range g.children {
		if len(g.children[v]) > 0 {
			c.children[v] = append([]int(nil), g.children[v]...)
		}
		if len(g.parents[v]) > 0 {
			c.parents[v] = append([]int(nil), g.parents[v]...)
		}
	}
	c.numArcs = g.numArcs
	return c
}

// Reverse returns the graph with every arc flipped. Node indices and
// names are preserved.
func (g *Graph) Reverse() *Graph {
	r := g.Clone()
	r.children, r.parents = r.parents, r.children
	return r
}

// InducedSubgraph returns the subgraph induced by the given nodes together
// with a mapping from new indices to original indices. Arcs between
// selected nodes are preserved; names are preserved.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	sub := NewWithCapacity(len(nodes))
	orig := make([]int, 0, len(nodes))
	toNew := make(map[int]int, len(nodes))
	for _, v := range nodes {
		g.checkNode(v)
		if _, dup := toNew[v]; dup {
			continue
		}
		toNew[v] = sub.AddNode(g.names[v])
		orig = append(orig, v)
	}
	for _, u := range orig {
		for _, v := range g.children[u] {
			if nv, ok := toNew[v]; ok {
				sub.MustAddArc(toNew[u], nv)
			}
		}
	}
	return sub, orig
}

// Validate checks structural invariants: parent/child adjacency symmetry
// and acyclicity. It returns nil for a well-formed dag.
func (g *Graph) Validate() error {
	for u := range g.names {
		for _, v := range g.children[u] {
			found := false
			for _, p := range g.parents[v] {
				if p == u {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("dag: arc %d->%d missing from parent list", u, v)
			}
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	return nil
}
