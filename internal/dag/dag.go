// Package dag implements the directed-acyclic-graph substrate of the
// scheduler. A graph holds the jobs of a computation and their
// dependencies: an arc u -> v means job v cannot start until job u has
// completed (u is a parent of v, v a child of u), exactly the model of
// Section 2.1 of the paper.
//
// The package splits construction from analysis. A Builder is mutable
// and grows incrementally with AddNode/AddArc; Freeze validates
// acyclicity once and produces a Frozen — an immutable compressed-
// sparse-row view with forward and backward adjacency packed into one
// shared arc arena, interned job names, and precomputed indegrees and
// topological order. Every analysis pass (transitive reduction,
// decomposition, scheduling, simulation) consumes the Frozen form, so
// the whole pipeline shares a single allocation-lean representation.
// Nodes are dense integer indices in insertion order; every node also
// carries a name so that DAGMan files round-trip.
package dag

import "fmt"

// Arc is a directed edge of the graph.
type Arc struct{ From, To int }

// Builder accumulates nodes and arcs for a graph under construction.
// It is the only mutable graph form; call Freeze (or MustFreeze) to
// obtain the immutable Frozen view the analysis passes consume.
type Builder struct {
	names   []string
	index   map[string]int
	arcFrom []int32 // arc i runs arcFrom[i] -> arcTo[i], insertion order
	arcTo   []int32
	arcSet  map[arcKey]struct{}
	outdeg  []int32
	indeg   []int32
}

type arcKey struct{ u, v int32 }

// New returns an empty builder.
func New() *Builder {
	return &Builder{index: make(map[string]int)}
}

// NewWithCapacity returns an empty builder with room preallocated for n
// nodes.
func NewWithCapacity(n int) *Builder {
	return &Builder{
		names:  make([]string, 0, n),
		index:  make(map[string]int, n),
		outdeg: make([]int32, 0, n),
		indeg:  make([]int32, 0, n),
	}
}

// AddNode adds a node with the given name and returns its index. Names
// must be unique; adding a duplicate name returns the existing index.
func (b *Builder) AddNode(name string) int {
	if i, ok := b.index[name]; ok {
		return i
	}
	i := len(b.names)
	b.names = append(b.names, name)
	b.index[name] = i
	b.outdeg = append(b.outdeg, 0)
	b.indeg = append(b.indeg, 0)
	return i
}

// AddArc adds the dependency u -> v. It panics on out-of-range indices and
// returns an error for self-loops and duplicate arcs.
func (b *Builder) AddArc(u, v int) error {
	b.checkNode(u)
	b.checkNode(v)
	if u == v {
		return fmt.Errorf("dag: self-loop on node %d (%s)", u, b.names[u])
	}
	k := arcKey{int32(u), int32(v)}
	if _, dup := b.arcSet[k]; dup {
		return fmt.Errorf("dag: duplicate arc %s -> %s", b.names[u], b.names[v])
	}
	if b.arcSet == nil {
		b.arcSet = make(map[arcKey]struct{})
	}
	b.arcSet[k] = struct{}{}
	b.arcFrom = append(b.arcFrom, int32(u))
	b.arcTo = append(b.arcTo, int32(v))
	b.outdeg[u]++
	b.indeg[v]++
	return nil
}

// MustAddArc is AddArc for construction code where duplicates are bugs.
func (b *Builder) MustAddArc(u, v int) {
	if err := b.AddArc(u, v); err != nil {
		panic(err)
	}
}

func (b *Builder) checkNode(v int) {
	if v < 0 || v >= len(b.names) {
		panic(fmt.Sprintf("dag: node %d out of range [0,%d)", v, len(b.names)))
	}
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.names) }

// NumArcs returns the number of arcs added so far.
func (b *Builder) NumArcs() int { return len(b.arcFrom) }

// Name returns the name of node v.
func (b *Builder) Name(v int) string {
	b.checkNode(v)
	return b.names[v]
}

// IndexOf returns the index of the node with the given name, or -1.
func (b *Builder) IndexOf(name string) int {
	if i, ok := b.index[name]; ok {
		return i
	}
	return -1
}

// Sinks returns the nodes with no outgoing arcs so far, in index order.
// Composition generators use this to attach the next block mid-build.
func (b *Builder) Sinks() []int {
	var out []int
	for v, d := range b.outdeg {
		if d == 0 {
			out = append(out, v)
		}
	}
	return out
}

// HasArc reports whether the arc u -> v has been added.
func (b *Builder) HasArc(u, v int) bool {
	b.checkNode(u)
	b.checkNode(v)
	_, ok := b.arcSet[arcKey{int32(u), int32(v)}]
	return ok
}

// Freeze validates acyclicity and converts the accumulated nodes and
// arcs into the immutable CSR form. Adjacency preserves AddArc order:
// Children(u) lists v in the order AddArc(u, v) was called, and
// Parents(v) lists u in the order AddArc(u, v) was called. The builder
// may be discarded (or kept growing toward a later, separate Freeze)
// afterwards; the Frozen shares nothing mutable with it.
func (b *Builder) Freeze() (*Frozen, error) {
	n := len(b.names)
	m := len(b.arcFrom)
	f := &Frozen{
		names:       b.names[:len(b.names):len(b.names)],
		index:       b.index,
		numArcs:     m,
		childStart:  make([]int32, n+1),
		parentStart: make([]int32, n+1),
		arena:       make([]int32, 2*m),
	}
	// Two stable counting sorts over the insertion-order arc list: by
	// source into the children region, by target into the parents
	// region. Stability is what preserves per-node AddArc order.
	next := make([]int32, n)
	var sum int32
	for v := 0; v < n; v++ {
		f.childStart[v] = sum
		next[v] = sum
		sum += b.outdeg[v]
	}
	f.childStart[n] = sum
	for i := 0; i < m; i++ {
		u := b.arcFrom[i]
		f.arena[next[u]] = b.arcTo[i]
		next[u]++
	}
	base := int32(m)
	sum = base
	for v := 0; v < n; v++ {
		f.parentStart[v] = sum
		next[v] = sum
		sum += b.indeg[v]
	}
	f.parentStart[n] = sum
	for i := 0; i < m; i++ {
		v := b.arcTo[i]
		f.arena[next[v]] = b.arcFrom[i]
		next[v]++
	}
	if err := f.finish(next[:0]); err != nil {
		return nil, err
	}
	return f, nil
}

// MustFreeze is Freeze for construction code where a cycle is a bug.
func (b *Builder) MustFreeze() *Frozen {
	f, err := b.Freeze()
	if err != nil {
		panic(err)
	}
	return f
}
