package dag

import (
	"fmt"
	"strings"
	"testing"
)

// buildNamed creates a graph from arcs written as "a>b".
func buildNamed(t testing.TB, nodes []string, arcs ...string) *Graph {
	t.Helper()
	g := New()
	for _, n := range nodes {
		g.AddNode(n)
	}
	for _, a := range arcs {
		parts := strings.Split(a, ">")
		if len(parts) != 2 {
			t.Fatalf("bad arc spec %q", a)
		}
		u, v := g.IndexOf(parts[0]), g.IndexOf(parts[1])
		if u < 0 || v < 0 {
			t.Fatalf("unknown node in arc %q", a)
		}
		g.MustAddArc(u, v)
	}
	return g
}

// chain builds a path graph v0 -> v1 -> ... -> v(n-1).
func chain(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("v%d", i))
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddArc(i, i+1)
	}
	return g
}

func TestAddNodeDeduplicates(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	a2 := g.AddNode("a")
	if a != a2 {
		t.Fatalf("duplicate name returned new index %d != %d", a2, a)
	}
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
	if g.Name(b) != "b" || g.IndexOf("b") != b {
		t.Fatal("name/index round trip broken")
	}
	if g.IndexOf("zzz") != -1 {
		t.Fatal("IndexOf of unknown name should be -1")
	}
}

func TestAddArcErrors(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	if err := g.AddArc(a, a); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddArc(a, b); err != nil {
		t.Fatalf("first arc rejected: %v", err)
	}
	if err := g.AddArc(a, b); err == nil {
		t.Fatal("duplicate arc accepted")
	}
	if g.NumArcs() != 1 {
		t.Fatalf("NumArcs = %d, want 1", g.NumArcs())
	}
}

func TestAddArcOutOfRangePanics(t *testing.T) {
	g := New()
	g.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range node")
		}
	}()
	_ = g.AddArc(0, 5)
}

func TestDegreesSourcesSinks(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c", "d", "e"}, "a>b", "c>d", "c>e")
	if got := g.Sources(); len(got) != 2 || g.Name(got[0]) != "a" || g.Name(got[1]) != "c" {
		t.Fatalf("Sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 3 {
		t.Fatalf("Sinks = %v", got)
	}
	c := g.IndexOf("c")
	if g.OutDegree(c) != 2 || g.InDegree(c) != 0 || !g.IsSource(c) || g.IsSink(c) {
		t.Fatal("degree bookkeeping wrong for c")
	}
	d := g.IndexOf("d")
	if !g.IsSink(d) || g.InDegree(d) != 1 {
		t.Fatal("degree bookkeeping wrong for d")
	}
	if !g.HasArc(c, d) || g.HasArc(d, c) {
		t.Fatal("HasArc wrong")
	}
}

func TestTopoSortChain(t *testing.T) {
	g := chain(10)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("chain topo order %v", order)
		}
	}
	pos, err := g.TopoPositions()
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range pos {
		if p != v {
			t.Fatalf("TopoPositions %v", pos)
		}
	}
}

func TestTopoSortRespectsArcs(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c", "d", "e", "f"},
		"a>c", "b>c", "c>d", "c>e", "e>f", "b>f")
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, a := range g.Arcs() {
		if pos[a.From] >= pos[a.To] {
			t.Fatalf("arc %v violated in order %v", a, order)
		}
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.MustAddArc(a, b)
	g.MustAddArc(b, c)
	g.MustAddArc(c, a)
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed cycle")
	}
}

func TestValidateOK(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c"}, "a>b", "b>c")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLevelsAndCriticalPath(t *testing.T) {
	// diamond with a tail: a -> {b,c} -> d -> e
	g := buildNamed(t, []string{"a", "b", "c", "d", "e"},
		"a>b", "a>c", "b>d", "c>d", "d>e")
	level, counts := g.Levels()
	want := map[string]int{"a": 0, "b": 1, "c": 1, "d": 2, "e": 3}
	for name, wl := range want {
		if level[g.IndexOf(name)] != wl {
			t.Fatalf("level(%s) = %d, want %d", name, level[g.IndexOf(name)], wl)
		}
	}
	if len(counts) != 4 || counts[1] != 2 {
		t.Fatalf("level counts = %v", counts)
	}
	if g.CriticalPathLength() != 4 {
		t.Fatalf("CriticalPathLength = %d, want 4", g.CriticalPathLength())
	}
	if g.MaxLevelWidth() != 2 {
		t.Fatalf("MaxLevelWidth = %d, want 2", g.MaxLevelWidth())
	}
}

func TestLevelsEmpty(t *testing.T) {
	g := New()
	if g.CriticalPathLength() != 0 || g.MaxLevelWidth() != 0 {
		t.Fatal("empty graph metrics should be zero")
	}
}

func TestReachableAndHasPath(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c", "d", "x"},
		"a>b", "b>c", "a>d")
	r := g.Reachable(g.IndexOf("a"))
	if r.Count() != 4 || r.Contains(g.IndexOf("x")) {
		t.Fatalf("Reachable(a) = %v", r)
	}
	if !g.HasPath(g.IndexOf("a"), g.IndexOf("c")) {
		t.Fatal("path a->c missing")
	}
	if g.HasPath(g.IndexOf("c"), g.IndexOf("a")) {
		t.Fatal("reverse path reported")
	}
	if g.HasPath(g.IndexOf("a"), g.IndexOf("a")) {
		t.Fatal("HasPath(v,v) should be false without a cycle")
	}
	if g.HasPath(g.IndexOf("a"), g.IndexOf("x")) {
		t.Fatal("path to isolated node reported")
	}
}

func TestUndirectedComponents(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c", "d", "e"}, "a>b", "c>d")
	comp, n := g.UndirectedComponents()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[g.IndexOf("a")] != comp[g.IndexOf("b")] {
		t.Fatal("a,b should share a component")
	}
	if comp[g.IndexOf("a")] == comp[g.IndexOf("c")] {
		t.Fatal("a,c should differ")
	}
	if comp[g.IndexOf("e")] == comp[g.IndexOf("a")] || comp[g.IndexOf("e")] == comp[g.IndexOf("c")] {
		t.Fatal("isolated node should be its own component")
	}
}

func TestIsBipartiteDag(t *testing.T) {
	bip := buildNamed(t, []string{"u1", "u2", "v1", "v2"}, "u1>v1", "u1>v2", "u2>v2")
	if !bip.IsBipartiteDag() {
		t.Fatal("two-level dag not recognized as bipartite")
	}
	three := buildNamed(t, []string{"a", "b", "c"}, "a>b", "b>c")
	if three.IsBipartiteDag() {
		t.Fatal("chain of 3 wrongly bipartite")
	}
	single := buildNamed(t, []string{"a"})
	if single.IsBipartiteDag() {
		t.Fatal("singleton wrongly bipartite")
	}
	if New().IsBipartiteDag() {
		t.Fatal("empty graph wrongly bipartite")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildNamed(t, []string{"a", "b"}, "a>b")
	c := g.Clone()
	c.AddNode("z")
	c.MustAddArc(c.IndexOf("b"), c.IndexOf("z"))
	if g.NumNodes() != 2 || g.NumArcs() != 1 {
		t.Fatal("mutating clone affected original")
	}
	if c.NumNodes() != 3 || c.NumArcs() != 2 {
		t.Fatal("clone mutation lost")
	}
}

func TestReverse(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c"}, "a>b", "b>c")
	r := g.Reverse()
	if !r.HasArc(r.IndexOf("b"), r.IndexOf("a")) || !r.HasArc(r.IndexOf("c"), r.IndexOf("b")) {
		t.Fatal("Reverse did not flip arcs")
	}
	if r.NumArcs() != 2 {
		t.Fatalf("Reverse NumArcs = %d", r.NumArcs())
	}
	if !g.HasArc(g.IndexOf("a"), g.IndexOf("b")) {
		t.Fatal("Reverse mutated original")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c", "d"}, "a>b", "b>c", "c>d", "a>d")
	sub, orig := g.InducedSubgraph([]int{g.IndexOf("a"), g.IndexOf("b"), g.IndexOf("d")})
	if sub.NumNodes() != 3 {
		t.Fatalf("sub nodes = %d", sub.NumNodes())
	}
	if sub.NumArcs() != 2 { // a>b and a>d survive; b>c and c>d do not
		t.Fatalf("sub arcs = %d, want 2", sub.NumArcs())
	}
	if len(orig) != 3 || g.Name(orig[sub.IndexOf("b")]) != "b" {
		t.Fatal("orig mapping broken")
	}
	// duplicate selection collapses
	sub2, _ := g.InducedSubgraph([]int{0, 0, 1})
	if sub2.NumNodes() != 2 {
		t.Fatalf("duplicate nodes not collapsed: %d", sub2.NumNodes())
	}
}

func TestArcsSorted(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c"}, "b>c", "a>c", "a>b")
	arcs := g.Arcs()
	for i := 1; i < len(arcs); i++ {
		if arcs[i-1].From > arcs[i].From ||
			(arcs[i-1].From == arcs[i].From && arcs[i-1].To >= arcs[i].To) {
			t.Fatalf("arcs not sorted: %v", arcs)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g := buildNamed(t, []string{"a", "b"}, "a>b")
	dot := g.DOT("t", func(v int) string {
		if g.Name(v) == "a" {
			return "color=red"
		}
		return ""
	})
	for _, want := range []string{"digraph \"t\"", `"a" [color=red];`, `"a" -> "b";`} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c", "d", "e"},
		"a>b", "a>c", "b>d", "c>d")
	s := g.ComputeStats()
	if s.Nodes != 5 || s.Arcs != 4 || s.Sources != 2 || s.Sinks != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.CriticalPath != 3 || s.MaxOutDegree != 2 || s.MaxInDegree != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.UndirectedComponents != 2 {
		t.Fatalf("components = %d", s.UndirectedComponents)
	}
	if !strings.Contains(s.String(), "nodes=5") {
		t.Fatal("Stats.String missing fields")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c"}, "a>b", "a>c")
	h := g.DegreeHistogram()
	if len(h) != 3 || h[0] != 2 || h[2] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestSortedNames(t *testing.T) {
	g := buildNamed(t, []string{"z", "a", "m"})
	got := g.SortedNames()
	if got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Fatalf("SortedNames = %v", got)
	}
}
