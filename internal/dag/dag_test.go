package dag

import (
	"fmt"
	"strings"
	"testing"
)

// buildNamedB creates a builder from arcs written as "a>b".
func buildNamedB(t testing.TB, nodes []string, arcs ...string) *Builder {
	t.Helper()
	b := New()
	for _, n := range nodes {
		b.AddNode(n)
	}
	for _, a := range arcs {
		parts := strings.Split(a, ">")
		if len(parts) != 2 {
			t.Fatalf("bad arc spec %q", a)
		}
		u, v := b.IndexOf(parts[0]), b.IndexOf(parts[1])
		if u < 0 || v < 0 {
			t.Fatalf("unknown node in arc %q", a)
		}
		b.MustAddArc(u, v)
	}
	return b
}

// buildNamed creates a frozen graph from arcs written as "a>b".
func buildNamed(t testing.TB, nodes []string, arcs ...string) *Frozen {
	t.Helper()
	return buildNamedB(t, nodes, arcs...).MustFreeze()
}

// chain builds a path graph v0 -> v1 -> ... -> v(n-1).
func chain(n int) *Frozen {
	b := New()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("v%d", i))
	}
	for i := 0; i+1 < n; i++ {
		b.MustAddArc(i, i+1)
	}
	return b.MustFreeze()
}

func TestAddNodeDeduplicates(t *testing.T) {
	b := New()
	a := b.AddNode("a")
	bb := b.AddNode("b")
	a2 := b.AddNode("a")
	if a != a2 {
		t.Fatalf("duplicate name returned new index %d != %d", a2, a)
	}
	if b.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", b.NumNodes())
	}
	if b.Name(bb) != "b" || b.IndexOf("b") != bb {
		t.Fatal("name/index round trip broken")
	}
	if b.IndexOf("zzz") != -1 {
		t.Fatal("IndexOf of unknown name should be -1")
	}
	g := b.MustFreeze()
	if g.Name(bb) != "b" || g.IndexOf("b") != bb || g.IndexOf("zzz") != -1 {
		t.Fatal("frozen name/index round trip broken")
	}
}

func TestAddArcErrors(t *testing.T) {
	b := New()
	a, bb := b.AddNode("a"), b.AddNode("b")
	if err := b.AddArc(a, a); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := b.AddArc(a, bb); err != nil {
		t.Fatalf("first arc rejected: %v", err)
	}
	if err := b.AddArc(a, bb); err == nil {
		t.Fatal("duplicate arc accepted")
	}
	if b.NumArcs() != 1 {
		t.Fatalf("NumArcs = %d, want 1", b.NumArcs())
	}
	if !b.HasArc(a, bb) || b.HasArc(bb, a) {
		t.Fatal("builder HasArc wrong")
	}
}

func TestAddArcOutOfRangePanics(t *testing.T) {
	b := New()
	b.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range node")
		}
	}()
	_ = b.AddArc(0, 5)
}

func TestDegreesSourcesSinks(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c", "d", "e"}, "a>b", "c>d", "c>e")
	if got := g.Sources(); len(got) != 2 || g.Name(int(got[0])) != "a" || g.Name(int(got[1])) != "c" {
		t.Fatalf("Sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 3 {
		t.Fatalf("Sinks = %v", got)
	}
	c := g.IndexOf("c")
	if g.OutDegree(c) != 2 || g.InDegree(c) != 0 || !g.IsSource(c) || g.IsSink(c) {
		t.Fatal("degree bookkeeping wrong for c")
	}
	d := g.IndexOf("d")
	if !g.IsSink(d) || g.InDegree(d) != 1 {
		t.Fatal("degree bookkeeping wrong for d")
	}
	if !g.HasArc(c, d) || g.HasArc(d, c) {
		t.Fatal("HasArc wrong")
	}
}

func TestTopoChain(t *testing.T) {
	g := chain(10)
	for i, v := range g.Topo() {
		if int(v) != i {
			t.Fatalf("chain topo order %v", g.Topo())
		}
	}
	for v, p := range g.TopoPositions() {
		if int(p) != v {
			t.Fatalf("TopoPositions %v", g.TopoPositions())
		}
	}
}

func TestTopoRespectsArcs(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c", "d", "e", "f"},
		"a>c", "b>c", "c>d", "c>e", "e>f", "b>f")
	pos := g.TopoPositions()
	for _, a := range g.Arcs() {
		if pos[a.From] >= pos[a.To] {
			t.Fatalf("arc %v violated in order %v", a, g.Topo())
		}
	}
}

func TestFreezeDetectsCycle(t *testing.T) {
	b := New()
	a, bb, c := b.AddNode("a"), b.AddNode("b"), b.AddNode("c")
	b.MustAddArc(a, bb)
	b.MustAddArc(bb, c)
	b.MustAddArc(c, a)
	if _, err := b.Freeze(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestFreezePreservesAdjacencyOrder(t *testing.T) {
	// AddArc order is the contract: children and parents must list
	// neighbours in insertion order, exactly like the pre-CSR Graph.
	b := New()
	for _, n := range []string{"a", "b", "c", "d"} {
		b.AddNode(n)
	}
	b.MustAddArc(0, 3) // a>d
	b.MustAddArc(0, 1) // a>b
	b.MustAddArc(2, 3) // c>d
	b.MustAddArc(1, 3) // b>d
	g := b.MustFreeze()
	if got := g.Children(0); len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("Children(a) = %v, want [3 1] (insertion order)", got)
	}
	if got := g.Parents(3); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("Parents(d) = %v, want [0 2 1] (insertion order)", got)
	}
}

func TestLevelsAndCriticalPath(t *testing.T) {
	// diamond with a tail: a -> {b,c} -> d -> e
	g := buildNamed(t, []string{"a", "b", "c", "d", "e"},
		"a>b", "a>c", "b>d", "c>d", "d>e")
	level, counts := g.Levels()
	want := map[string]int{"a": 0, "b": 1, "c": 1, "d": 2, "e": 3}
	for name, wl := range want {
		if level[g.IndexOf(name)] != wl {
			t.Fatalf("level(%s) = %d, want %d", name, level[g.IndexOf(name)], wl)
		}
	}
	if len(counts) != 4 || counts[1] != 2 {
		t.Fatalf("level counts = %v", counts)
	}
	if g.CriticalPathLength() != 4 {
		t.Fatalf("CriticalPathLength = %d, want 4", g.CriticalPathLength())
	}
	if g.MaxLevelWidth() != 2 {
		t.Fatalf("MaxLevelWidth = %d, want 2", g.MaxLevelWidth())
	}
}

func TestLevelsEmpty(t *testing.T) {
	g := New().MustFreeze()
	if g.CriticalPathLength() != 0 || g.MaxLevelWidth() != 0 {
		t.Fatal("empty graph metrics should be zero")
	}
}

func TestReachableAndHasPath(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c", "d", "x"},
		"a>b", "b>c", "a>d")
	r := g.Reachable(g.IndexOf("a"))
	if r.Count() != 4 || r.Contains(g.IndexOf("x")) {
		t.Fatalf("Reachable(a) = %v", r)
	}
	if !g.HasPath(g.IndexOf("a"), g.IndexOf("c")) {
		t.Fatal("path a->c missing")
	}
	if g.HasPath(g.IndexOf("c"), g.IndexOf("a")) {
		t.Fatal("reverse path reported")
	}
	if g.HasPath(g.IndexOf("a"), g.IndexOf("a")) {
		t.Fatal("HasPath(v,v) should be false without a cycle")
	}
	if g.HasPath(g.IndexOf("a"), g.IndexOf("x")) {
		t.Fatal("path to isolated node reported")
	}
}

func TestUndirectedComponents(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c", "d", "e"}, "a>b", "c>d")
	comp, n := g.UndirectedComponents()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[g.IndexOf("a")] != comp[g.IndexOf("b")] {
		t.Fatal("a,b should share a component")
	}
	if comp[g.IndexOf("a")] == comp[g.IndexOf("c")] {
		t.Fatal("a,c should differ")
	}
	if comp[g.IndexOf("e")] == comp[g.IndexOf("a")] || comp[g.IndexOf("e")] == comp[g.IndexOf("c")] {
		t.Fatal("isolated node should be its own component")
	}
}

func TestIsBipartiteDag(t *testing.T) {
	bip := buildNamed(t, []string{"u1", "u2", "v1", "v2"}, "u1>v1", "u1>v2", "u2>v2")
	if !bip.IsBipartiteDag() {
		t.Fatal("two-level dag not recognized as bipartite")
	}
	three := buildNamed(t, []string{"a", "b", "c"}, "a>b", "b>c")
	if three.IsBipartiteDag() {
		t.Fatal("chain of 3 wrongly bipartite")
	}
	single := buildNamed(t, []string{"a"})
	if single.IsBipartiteDag() {
		t.Fatal("singleton wrongly bipartite")
	}
	if New().MustFreeze().IsBipartiteDag() {
		t.Fatal("empty graph wrongly bipartite")
	}
}

func TestBuilderReusableAfterFreeze(t *testing.T) {
	// A Freeze snapshot must not alias builder growth: adding nodes and
	// arcs afterwards leaves the frozen view untouched.
	b := buildNamedB(t, []string{"a", "b"}, "a>b")
	g := b.MustFreeze()
	b.AddNode("z")
	b.MustAddArc(b.IndexOf("b"), b.IndexOf("z"))
	if g.NumNodes() != 2 || g.NumArcs() != 1 {
		t.Fatal("mutating builder affected frozen snapshot")
	}
	if g.IndexOf("z") != -1 {
		t.Fatal("frozen snapshot sees node added after Freeze")
	}
	g2 := b.MustFreeze()
	if g2.NumNodes() != 3 || g2.NumArcs() != 2 {
		t.Fatal("second freeze lost builder growth")
	}
}

func TestReverse(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c"}, "a>b", "b>c")
	r := g.Reverse()
	if !r.HasArc(r.IndexOf("b"), r.IndexOf("a")) || !r.HasArc(r.IndexOf("c"), r.IndexOf("b")) {
		t.Fatal("Reverse did not flip arcs")
	}
	if r.NumArcs() != 2 {
		t.Fatalf("Reverse NumArcs = %d", r.NumArcs())
	}
	if !g.HasArc(g.IndexOf("a"), g.IndexOf("b")) {
		t.Fatal("Reverse mutated original")
	}
	pos := r.TopoPositions()
	for _, a := range r.Arcs() {
		if pos[a.From] >= pos[a.To] {
			t.Fatalf("reversed topo order invalid at arc %v", a)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c", "d"}, "a>b", "b>c", "c>d", "a>d")
	sub, orig := g.InducedSubgraph([]int{g.IndexOf("a"), g.IndexOf("b"), g.IndexOf("d")})
	if sub.NumNodes() != 3 {
		t.Fatalf("sub nodes = %d", sub.NumNodes())
	}
	if sub.NumArcs() != 2 { // a>b and a>d survive; b>c and c>d do not
		t.Fatalf("sub arcs = %d, want 2", sub.NumArcs())
	}
	if len(orig) != 3 || g.Name(orig[sub.IndexOf("b")]) != "b" {
		t.Fatal("orig mapping broken")
	}
	// duplicate selection collapses
	sub2, _ := g.InducedSubgraph([]int{0, 0, 1})
	if sub2.NumNodes() != 2 {
		t.Fatalf("duplicate nodes not collapsed: %d", sub2.NumNodes())
	}
}

func TestArcsSorted(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c"}, "b>c", "a>c", "a>b")
	arcs := g.Arcs()
	for i := 1; i < len(arcs); i++ {
		if arcs[i-1].From > arcs[i].From ||
			(arcs[i-1].From == arcs[i].From && arcs[i-1].To >= arcs[i].To) {
			t.Fatalf("arcs not sorted: %v", arcs)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g := buildNamed(t, []string{"a", "b"}, "a>b")
	dot := g.DOT("t", func(v int) string {
		if g.Name(v) == "a" {
			return "color=red"
		}
		return ""
	})
	for _, want := range []string{"digraph \"t\"", `"a" [color=red];`, `"a" -> "b";`} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c", "d", "e"},
		"a>b", "a>c", "b>d", "c>d")
	s := g.ComputeStats()
	if s.Nodes != 5 || s.Arcs != 4 || s.Sources != 2 || s.Sinks != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.CriticalPath != 3 || s.MaxOutDegree != 2 || s.MaxInDegree != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.UndirectedComponents != 2 {
		t.Fatalf("components = %d", s.UndirectedComponents)
	}
	if !strings.Contains(s.String(), "nodes=5") {
		t.Fatal("Stats.String missing fields")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := buildNamed(t, []string{"a", "b", "c"}, "a>b", "a>c")
	h := g.DegreeHistogram()
	if len(h) != 3 || h[0] != 2 || h[2] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestSortedNames(t *testing.T) {
	g := buildNamed(t, []string{"z", "a", "m"})
	got := g.SortedNames()
	if got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Fatalf("SortedNames = %v", got)
	}
}
