package dag

import (
	"fmt"
	"sort"
)

// Frozen is the immutable compressed-sparse-row form of a dag, produced
// by Builder.Freeze. Forward and backward adjacency live in one shared
// arc arena: arena[childStart[v]:childStart[v+1]] are v's children and
// arena[parentStart[v]:parentStart[v+1]] are v's parents (both start
// slices hold absolute arena offsets, so Reverse can swap them over the
// same arena). The topological order, its inverse permutation, and the
// source list are computed once at freeze time; every accessor is a
// bounds-checked slice view, so analysis passes traverse the graph
// without copying adjacency.
//
// A Frozen is never mutated after construction. Accessors that return
// slices (Children, Parents, Names, Topo, TopoPositions, Sources)
// return views into shared storage which callers must not modify.
type Frozen struct {
	names       []string
	index       map[string]int // nil for derived graphs; IndexOf then scans
	numArcs     int
	childStart  []int32 // len n+1, offsets into arena
	parentStart []int32 // len n+1, offsets into arena
	arena       []int32 // both adjacency directions, len 2*numArcs
	topo        []int32 // Kahn order, deterministic (see finish)
	pos         []int32 // pos[v] = rank of v in topo
	sources     []int32 // indegree-0 nodes in index order
}

// buildFrozen assembles a Frozen from node names and a forward CSR. The
// arena must have length 2m with the children region filled in
// [0, m); buildFrozen derives the parents region, scanning nodes in
// ascending index order so Parents(v) lists parents in ascending-u
// grouped adjacency order. index may be nil. Takes ownership of every
// argument.
func buildFrozen(names []string, index map[string]int, childStart, arena []int32) (*Frozen, error) {
	n := len(names)
	m := int(childStart[n])
	// One backing array holds the parent offsets plus finish's working
	// storage (indegree counts, topo queue, position index): four small
	// allocations per frozen graph collapse into one, which matters when
	// the decomposer freezes one subgraph per component.
	backing := make([]int32, (n+1)+3*n)
	f := &Frozen{
		names:       names,
		index:       index,
		numArcs:     m,
		childStart:  childStart,
		parentStart: backing[:n+1],
		arena:       arena,
	}
	scratch := backing[n+1 : n+1+n]
	for ci := 0; ci < m; ci++ {
		scratch[arena[ci]]++
	}
	sum := int32(m)
	for v := 0; v < n; v++ {
		f.parentStart[v] = sum
		sum += scratch[v]
		scratch[v] = f.parentStart[v]
	}
	f.parentStart[n] = sum
	for u := 0; u < n; u++ {
		for ci := childStart[u]; ci < childStart[u+1]; ci++ {
			v := arena[ci]
			arena[scratch[v]] = int32(u)
			scratch[v]++
		}
	}
	if err := f.finish(backing[n+1 : n+1 : len(backing)]); err != nil {
		return nil, err
	}
	return f, nil
}

// FromCSR assembles a Frozen directly from node names and a forward CSR
// adjacency: childStart must have length len(names)+1 with absolute
// offsets into arena, and arena must have length 2*childStart[n] with
// the children region filled in [0, childStart[n]) — the parents region
// is derived in place. FromCSR takes ownership of all three slices and
// returns an error if the adjacency contains a cycle. It exists for hot
// paths (component detachment, subgraph extraction) that already know
// the exact arc layout and would waste allocations round-tripping
// through a Builder; ordinary construction should use Builder.Freeze.
func FromCSR(names []string, childStart, arena []int32) (*Frozen, error) {
	if len(childStart) != len(names)+1 {
		return nil, fmt.Errorf("dag: FromCSR childStart has length %d, want %d", len(childStart), len(names)+1)
	}
	if m := int(childStart[len(names)]); len(arena) != 2*m {
		return nil, fmt.Errorf("dag: FromCSR arena has length %d, want %d", len(arena), 2*m)
	}
	return buildFrozen(names, nil, childStart, arena)
}

// finish computes the topological precomputes (topo, pos, sources) and
// returns an error if the graph is cyclic. scratch is reused for the
// working storage when it has the capacity: the indegree counts at
// cap >= n, and additionally the topo queue and position index (which
// finish retains in the Frozen) at cap >= 3n.
func (f *Frozen) finish(scratch []int32) error {
	n := f.NumNodes()
	var indeg, queue, pos []int32
	switch {
	case cap(scratch) >= 3*n:
		indeg = scratch[:n]
		queue = scratch[n : n : 2*n]
		pos = scratch[2*n : 3*n : 3*n]
	case cap(scratch) >= n:
		indeg = scratch[:n]
		queue = make([]int32, 0, n)
		pos = make([]int32, n)
	default:
		indeg = make([]int32, n)
		queue = make([]int32, 0, n)
		pos = make([]int32, n)
	}
	for v := 0; v < n; v++ {
		indeg[v] = f.parentStart[v+1] - f.parentStart[v]
	}
	// Kahn's algorithm with the ready queue doubling as the result: the
	// queue is seeded in index order and drained with a head index (no
	// re-slicing, so the backing array is written exactly once), and
	// children are appended in adjacency order, making the order
	// deterministic. The seeds prefix is exactly the source list.
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, int32(v))
		}
	}
	nSources := len(queue)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for ci := f.childStart[u]; ci < f.childStart[u+1]; ci++ {
			v := f.arena[ci]
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(queue) != n {
		return fmt.Errorf("dag: cycle detected (%d of %d nodes sorted)", len(queue), n)
	}
	f.topo = queue
	f.sources = queue[:nSources:nSources]
	f.pos = pos
	for i, v := range f.topo {
		f.pos[v] = int32(i)
	}
	return nil
}

func (f *Frozen) checkNode(v int) {
	if v < 0 || v >= len(f.names) {
		panic(fmt.Sprintf("dag: node %d out of range [0,%d)", v, len(f.names)))
	}
}

// NumNodes returns the number of nodes.
//
//prio:noalloc
//prio:pure
func (f *Frozen) NumNodes() int { return len(f.names) }

// NumArcs returns the number of arcs.
//
//prio:noalloc
//prio:pure
func (f *Frozen) NumArcs() int { return f.numArcs }

// Name returns the name of node v.
//
//prio:noalloc
//prio:pure
func (f *Frozen) Name(v int) string {
	f.checkNode(v)
	return f.names[v]
}

// Names returns the node names indexed by node. The caller must not
// modify the returned slice.
//
//prio:noalloc
//prio:pure
func (f *Frozen) Names() []string { return f.names }

// IndexOf returns the index of the node with the given name, or -1.
// Graphs derived from other graphs (reductions, subgraphs) drop the
// name index and fall back to a linear scan.
//
//prio:pure
func (f *Frozen) IndexOf(name string) int {
	if f.index != nil {
		// The map is shared with the builder that froze this graph, which
		// may have grown since; ignore entries beyond our node range.
		if i, ok := f.index[name]; ok && i < len(f.names) {
			return i
		}
		return -1
	}
	for i, n := range f.names {
		if n == name {
			return i
		}
	}
	return -1
}

// Children returns the out-neighbours of v in arc-insertion order, as a
// view into the shared arc arena. The caller must not modify it.
//
//prio:noalloc
//prio:pure
func (f *Frozen) Children(v int) []int32 {
	f.checkNode(v)
	return f.arena[f.childStart[v]:f.childStart[v+1]]
}

// Parents returns the in-neighbours of v as a view into the shared arc
// arena. The caller must not modify it.
//
//prio:noalloc
//prio:pure
func (f *Frozen) Parents(v int) []int32 {
	f.checkNode(v)
	return f.arena[f.parentStart[v]:f.parentStart[v+1]]
}

// OutDegree returns the number of children of v.
//
//prio:noalloc
//prio:pure
func (f *Frozen) OutDegree(v int) int {
	f.checkNode(v)
	return int(f.childStart[v+1] - f.childStart[v])
}

// InDegree returns the number of parents of v.
//
//prio:noalloc
//prio:pure
func (f *Frozen) InDegree(v int) int {
	f.checkNode(v)
	return int(f.parentStart[v+1] - f.parentStart[v])
}

// IsSource reports whether v has no parents.
//
//prio:noalloc
//prio:pure
func (f *Frozen) IsSource(v int) bool { return f.InDegree(v) == 0 }

// IsSink reports whether v has no children.
//
//prio:noalloc
//prio:pure
func (f *Frozen) IsSink(v int) bool { return f.OutDegree(v) == 0 }

// Sources returns the nodes with no parents, in index order, as a view
// into shared storage. The caller must not modify it.
//
//prio:noalloc
//prio:pure
func (f *Frozen) Sources() []int32 { return f.sources }

// Sinks returns the nodes with no children, in index order, in a
// freshly allocated slice.
//
//prio:pure
func (f *Frozen) Sinks() []int32 {
	var out []int32
	for v := 0; v < f.NumNodes(); v++ {
		if f.IsSink(v) {
			out = append(out, int32(v))
		}
	}
	return out
}

// Topo returns the nodes in the precomputed topological order (Kahn's
// algorithm, FIFO over ready nodes seeded in index order, children
// appended in adjacency order) as a view into shared storage. The
// caller must not modify it.
//
//prio:noalloc
//prio:pure
func (f *Frozen) Topo() []int32 { return f.topo }

// TopoPositions returns pos such that pos[v] is v's rank in Topo order,
// as a view into shared storage. The caller must not modify it.
//
//prio:noalloc
//prio:pure
func (f *Frozen) TopoPositions() []int32 { return f.pos }

// ChildCSR returns the forward adjacency in raw CSR form: childStart
// has length NumNodes()+1 holding absolute offsets into arena, so the
// children of v are arena[childStart[v]:childStart[v+1]]. Both slices
// are views into shared storage which the caller must not modify. The
// simulation kernel's hot loop indexes these arrays directly instead of
// calling Children per node.
//
//prio:noalloc
//prio:pure
func (f *Frozen) ChildCSR() (childStart, arena []int32) {
	return f.childStart, f.arena
}

// HasArc reports whether the arc u -> v exists.
//
//prio:noalloc
//prio:pure
func (f *Frozen) HasArc(u, v int) bool {
	f.checkNode(u)
	f.checkNode(v)
	for ci := f.childStart[u]; ci < f.childStart[u+1]; ci++ {
		if int(f.arena[ci]) == v {
			return true
		}
	}
	return false
}

// Arcs returns all arcs sorted by (From, To).
func (f *Frozen) Arcs() []Arc {
	out := make([]Arc, 0, f.numArcs)
	for u := 0; u < f.NumNodes(); u++ {
		for _, v := range f.Children(u) {
			out = append(out, Arc{u, int(v)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Reverse returns the graph with every arc flipped. Node indices and
// names are preserved; the arc arena is shared with f (only the start
// arrays swap roles), and the topological precomputes are recomputed
// for the reversed orientation.
func (f *Frozen) Reverse() *Frozen {
	r := &Frozen{
		names:       f.names,
		index:       f.index,
		numArcs:     f.numArcs,
		childStart:  f.parentStart,
		parentStart: f.childStart,
		arena:       f.arena,
	}
	if err := r.finish(nil); err != nil {
		panic(err) // unreachable: reversing a dag cannot create a cycle
	}
	return r
}

// InducedSubgraph returns the subgraph induced by the given nodes
// together with a mapping from new indices to original indices.
// Duplicate nodes are ignored after their first occurrence. Arcs
// between selected nodes are preserved in the original adjacency
// order; names are shared with f.
func (f *Frozen) InducedSubgraph(nodes []int) (*Frozen, []int) {
	toNew := make(map[int]int32, len(nodes))
	orig := make([]int, 0, len(nodes))
	for _, v := range nodes {
		f.checkNode(v)
		if _, dup := toNew[v]; dup {
			continue
		}
		toNew[v] = int32(len(orig))
		orig = append(orig, v)
	}
	n := len(orig)
	names := make([]string, n)
	childStart := make([]int32, n+1)
	for i, v := range orig {
		names[i] = f.names[v]
		for _, c := range f.Children(v) {
			if _, ok := toNew[int(c)]; ok {
				childStart[i+1]++
			}
		}
	}
	var m int32
	for i := 0; i < n; i++ {
		m += childStart[i+1]
		childStart[i+1] = m
	}
	arena := make([]int32, 2*m)
	next := append([]int32(nil), childStart[:n]...)
	for i, v := range orig {
		for _, c := range f.Children(v) {
			if nc, ok := toNew[int(c)]; ok {
				arena[next[i]] = nc
				next[i]++
			}
		}
	}
	sub, err := buildFrozen(names, nil, childStart, arena)
	if err != nil {
		panic(err) // unreachable: an induced subgraph of a dag is a dag
	}
	return sub, orig
}
