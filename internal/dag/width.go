package dag

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/matching"
)

// MaxWidthNodes bounds Width's exact computation: the transitive
// closure costs O(V^2/64) words of memory and the matching O(E' sqrt V)
// time, which is comfortable to a few thousand nodes.
const MaxWidthNodes = 8192

// Width returns the dag's width — the size of a maximum antichain (a
// largest set of pairwise incomparable jobs), the exact upper bound on
// how many of the dag's jobs can ever be simultaneously eligible or
// running. By Dilworth's theorem the width equals n minus the size of a
// maximum matching in the comparability bipartite graph; the antichain
// itself is recovered from a Koenig minimum vertex cover. The second
// result is one maximum antichain, in ascending node order.
//
// This is the precise version of the paper's informal "AIRSN of width
// 250". For dags larger than MaxWidthNodes an error is returned (use
// MaxLevelWidth for a cheap lower bound).
func (f *Frozen) Width() (int, []int, error) {
	n := f.NumNodes()
	if n == 0 {
		return 0, nil, nil
	}
	if n > MaxWidthNodes {
		return 0, nil, fmt.Errorf("dag: Width on %d nodes exceeds the %d-node exact bound", n, MaxWidthNodes)
	}
	// Transitive closure by reverse topological sweep of bitsets over
	// the precomputed order.
	order := f.topo
	reach := make([]*bitset.Set, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		reach[v] = bitset.New(n)
		for _, c := range f.Children(int(v)) {
			reach[v].Add(int(c))
			reach[v].UnionWith(reach[c])
		}
	}
	// Comparability bipartite graph: left u -- right v iff u reaches v.
	bp := matching.NewBipartite(n, n)
	for u := 0; u < n; u++ {
		reach[u].ForEach(func(v int) bool {
			bp.AddEdge(u, v)
			return true
		})
	}
	m := bp.MaxMatching()
	inL, inR := bp.MinVertexCover(m)
	var anti []int
	for v := 0; v < n; v++ {
		if !inL[v] && !inR[v] {
			anti = append(anti, v)
		}
	}
	if len(anti) != n-m.Size {
		return 0, nil, fmt.Errorf("dag: antichain construction inconsistent (%d vs %d)", len(anti), n-m.Size)
	}
	return n - m.Size, anti, nil
}
