package dag

// Shortcut removal (Step 1 of both the theoretical algorithm and the
// heuristic): an arc (u -> v) is a shortcut when v is reachable from u
// without using the arc. Shortcuts never change which jobs are eligible,
// but they obscure the bipartite building blocks, so the Divide phase
// removes them first. For dags, removing all shortcuts is exactly the
// transitive reduction (Aho-Garey-Ullman; Hsu), which is unique.

// ShortcutArcs returns every shortcut arc of g, sorted by (From, To).
//
// The algorithm processes each node u and asks which children of u are
// reachable from another child by a nonempty path. Children are scanned
// in topological order; a DFS from each child marks its descendants, and
// a child found already marked is a shortcut target. The DFS is pruned at
// nodes whose topological position exceeds that of u's last child, since
// such nodes cannot lie on a path to any child of u. Traversal is pure
// CSR slice walking: the only allocations are the visit stamps, the DFS
// stack, one reusable child-order buffer, and the result.
func (f *Frozen) ShortcutArcs() []Arc {
	pos := f.pos
	n := f.NumNodes()
	// visited[v] == stamp means v was marked during the current u's scan.
	visited := make([]int32, n)
	for i := range visited {
		visited[i] = -1
	}
	stack := make([]int32, 0, 64)
	order := make([]int32, 0, 16)
	var shortcuts []Arc

	for u := 0; u < n; u++ {
		kids := f.Children(u)
		if len(kids) < 2 {
			continue // a single arc cannot be a shortcut of itself
		}
		// Children in ascending topological order: any child reachable
		// from another child must come later in topo order, so by the
		// time we visit it, the DFS of the earlier child has marked it.
		order = append(order[:0], kids...)
		insertionSortByPos(order, pos)
		maxPos := pos[order[len(order)-1]]

		stamp := int32(u)
		for _, c := range order {
			if visited[c] == stamp {
				shortcuts = append(shortcuts, Arc{u, int(c)})
				continue // descendants of c are already being marked via the earlier child
			}
			// DFS from c, marking descendants; prune beyond maxPos.
			visited[c] = stamp
			stack = append(stack[:0], c)
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range f.Children(int(x)) {
					if visited[w] == stamp || pos[w] > maxPos {
						continue
					}
					visited[w] = stamp
					stack = append(stack, w)
				}
			}
		}
	}
	sortArcs(shortcuts)
	return shortcuts
}

//prio:noalloc
func insertionSortByPos(xs []int32, pos []int32) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && pos[xs[j]] > pos[x] {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

//prio:noalloc
func sortArcs(arcs []Arc) {
	// insertion sort is fine: shortcut lists are short in practice, and
	// the slice arrives almost sorted (outer loop is by From).
	for i := 1; i < len(arcs); i++ {
		a := arcs[i]
		j := i - 1
		for j >= 0 && (arcs[j].From > a.From || (arcs[j].From == a.From && arcs[j].To > a.To)) {
			arcs[j+1] = arcs[j]
			j--
		}
		arcs[j+1] = a
	}
}

// TransitiveReduction returns g with every shortcut arc removed,
// together with the list of removed arcs. Node indices and names are
// preserved. When the graph has no shortcuts the receiver itself is
// returned — Frozen graphs are immutable, so sharing is safe and the
// common already-reduced case costs no copy at all. Otherwise the
// reduced graph is assembled directly in CSR form, sharing the name
// table with the receiver.
func (f *Frozen) TransitiveReduction() (*Frozen, []Arc) {
	shortcuts := f.ShortcutArcs()
	if len(shortcuts) == 0 {
		return f, nil
	}
	n := f.NumNodes()
	m := f.numArcs - len(shortcuts)
	childStart := make([]int32, n+1)
	arena := make([]int32, 2*m)
	// shortcuts is sorted by From, so the dropped arcs of node u occupy
	// one contiguous range; those ranges are short (a handful of arcs),
	// so membership is a linear probe rather than a map. A node's
	// surviving children keep their relative adjacency order, matching a
	// rebuild that skips dropped arcs.
	si := 0
	var next int32
	for u := 0; u < n; u++ {
		childStart[u] = next
		sj := si
		for sj < len(shortcuts) && shortcuts[sj].From == u {
			sj++
		}
		for _, v := range f.Children(u) {
			dropped := false
			for k := si; k < sj; k++ {
				if shortcuts[k].To == int(v) {
					dropped = true
					break
				}
			}
			if dropped {
				continue
			}
			arena[next] = v
			next++
		}
		si = sj
	}
	childStart[n] = next
	r, err := buildFrozen(f.names, f.index, childStart, arena)
	if err != nil {
		panic(err) // unreachable: removing arcs cannot create a cycle
	}
	return r, shortcuts
}
