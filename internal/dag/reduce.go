package dag

// Shortcut removal (Step 1 of both the theoretical algorithm and the
// heuristic): an arc (u -> v) is a shortcut when v is reachable from u
// without using the arc. Shortcuts never change which jobs are eligible,
// but they obscure the bipartite building blocks, so the Divide phase
// removes them first. For dags, removing all shortcuts is exactly the
// transitive reduction (Aho-Garey-Ullman; Hsu), which is unique.

// ShortcutArcs returns every shortcut arc of g, sorted by (From, To).
//
// The algorithm processes each node u and asks which children of u are
// reachable from another child by a nonempty path. Children are scanned
// in topological order; a DFS from each child marks its descendants, and
// a child found already marked is a shortcut target. The DFS is pruned at
// nodes whose topological position exceeds that of u's last child, since
// such nodes cannot lie on a path to any child of u.
func (g *Graph) ShortcutArcs() []Arc {
	pos, err := g.TopoPositions()
	if err != nil {
		panic(err)
	}
	n := g.NumNodes()
	// visited[v] == stamp means v was marked during the current u's scan.
	visited := make([]int, n)
	for i := range visited {
		visited[i] = -1
	}
	stack := make([]int, 0, 64)
	var shortcuts []Arc

	for u := 0; u < n; u++ {
		kids := g.children[u]
		if len(kids) < 2 {
			continue // a single arc cannot be a shortcut of itself
		}
		// Children in ascending topological order: any child reachable
		// from another child must come later in topo order, so by the
		// time we visit it, the DFS of the earlier child has marked it.
		order := append([]int(nil), kids...)
		insertionSortByPos(order, pos)
		maxPos := pos[order[len(order)-1]]

		stamp := u
		for _, c := range order {
			if visited[c] == stamp {
				shortcuts = append(shortcuts, Arc{u, c})
				continue // descendants of c are already being marked via the earlier child
			}
			// DFS from c, marking descendants; prune beyond maxPos.
			visited[c] = stamp
			stack = append(stack[:0], c)
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range g.children[x] {
					if visited[w] == stamp || pos[w] > maxPos {
						continue
					}
					visited[w] = stamp
					stack = append(stack, w)
				}
			}
		}
	}
	sortArcs(shortcuts)
	return shortcuts
}

func insertionSortByPos(xs []int, pos []int) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && pos[xs[j]] > pos[x] {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

func sortArcs(arcs []Arc) {
	// insertion sort is fine: shortcut lists are short in practice, and
	// the slice arrives almost sorted (outer loop is by From).
	for i := 1; i < len(arcs); i++ {
		a := arcs[i]
		j := i - 1
		for j >= 0 && (arcs[j].From > a.From || (arcs[j].From == a.From && arcs[j].To > a.To)) {
			arcs[j+1] = arcs[j]
			j--
		}
		arcs[j+1] = a
	}
}

// TransitiveReduction returns a copy of g with every shortcut arc removed,
// together with the list of removed arcs. Node indices and names are
// preserved.
func (g *Graph) TransitiveReduction() (*Graph, []Arc) {
	shortcuts := g.ShortcutArcs()
	if len(shortcuts) == 0 {
		return g.Clone(), nil
	}
	drop := make(map[Arc]bool, len(shortcuts))
	for _, a := range shortcuts {
		drop[a] = true
	}
	r := NewWithCapacity(g.NumNodes())
	for _, name := range g.names {
		r.AddNode(name)
	}
	for u := range g.names {
		for _, v := range g.children[u] {
			if !drop[Arc{u, v}] {
				r.MustAddArc(u, v)
			}
		}
	}
	return r, shortcuts
}
