package core

import (
	"fmt"
	"testing"

	"repro/internal/decompose"
	"repro/internal/rng"
	"repro/internal/workloads"
)

// equalSchedules fails the test unless a and b are identical in every
// externally visible field — the "byte-identical" differential contract
// between the sequential reference pipeline and any tuned configuration.
func equalSchedules(t *testing.T, label string, a, b *Schedule) {
	t.Helper()
	if len(a.Order) != len(b.Order) {
		t.Fatalf("%s: order lengths %d vs %d", label, len(a.Order), len(b.Order))
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("%s: Order diverges at step %d: %d vs %d", label, i, a.Order[i], b.Order[i])
		}
	}
	for v := range a.Rank {
		if a.Rank[v] != b.Rank[v] || a.Priority[v] != b.Priority[v] {
			t.Fatalf("%s: Rank/Priority diverge at job %d", label, v)
		}
	}
	if len(a.ComponentOrder) != len(b.ComponentOrder) {
		t.Fatalf("%s: component order lengths differ", label)
	}
	for i := range a.ComponentOrder {
		if a.ComponentOrder[i] != b.ComponentOrder[i] {
			t.Fatalf("%s: ComponentOrder diverges at %d", label, i)
		}
	}
	for i := range a.Components {
		ca, cb := a.Components[i], b.Components[i]
		if ca.Family != cb.Family || ca.ProfileID != cb.ProfileID {
			t.Fatalf("%s: component %d family/profile diverge", label, i)
		}
		if len(ca.Order) != len(cb.Order) || len(ca.Profile) != len(cb.Profile) {
			t.Fatalf("%s: component %d schedule shapes diverge", label, i)
		}
		for j := range ca.Order {
			if ca.Order[j] != cb.Order[j] {
				t.Fatalf("%s: component %d order diverges at %d", label, i, j)
			}
		}
		for j := range ca.Profile {
			if ca.Profile[j] != cb.Profile[j] {
				t.Fatalf("%s: component %d profile diverges at %d", label, i, j)
			}
		}
	}
}

// tunedConfigs are the pipeline configurations that must reproduce the
// sequential, uncached reference exactly.
func tunedConfigs() []struct {
	name string
	opts func() Options
} {
	return []struct {
		name string
		opts func() Options
	}{
		{"parallel2", func() Options { return Options{Parallel: 2} }},
		{"parallel4", func() Options { return Options{Parallel: 4} }},
		{"parallelAllCPUs", func() Options { return Options{Parallel: -1} }},
		{"cache", func() Options { return Options{Cache: NewCache()} }},
		{"parallel4+cache", func() Options { return Options{Parallel: 4, Cache: NewCache()} }},
	}
}

// TestParallelMatchesSequentialWorkloads: the differential test of the
// parallel pipeline on every paper workload. The dags are scaled down
// to keep the suite fast; the structure (multi-component superdags,
// bipartite fast-path blocks, non-bipartite remnants) is preserved.
func TestParallelMatchesSequentialWorkloads(t *testing.T) {
	scales := map[string]int{"airsn": 1, "inspiral": 8, "montage": 9, "sdss": 40}
	for _, name := range workloads.Names() {
		g, err := workloads.ByName(name, scales[name])
		if err != nil {
			t.Fatal(err)
		}
		ref := Prioritize(g)
		for _, cfg := range tunedConfigs() {
			got := PrioritizeOpts(g, cfg.opts())
			equalSchedules(t, name+"/"+cfg.name, ref, got)
		}
	}
}

// TestParallelMatchesSequentialRandom: property test over random dags
// of varying density, including dags with shortcuts, many isolated
// jobs, and single-component blobs.
func TestParallelMatchesSequentialRandom(t *testing.T) {
	r := rng.New(7)
	densities := []float64{0.005, 0.02, 0.08, 0.3}
	for trial := 0; trial < 40; trial++ {
		n := 20 + int(r.Uint64()%120)
		p := densities[trial%len(densities)]
		g := randomDag(r, n, p)
		ref := Prioritize(g)
		for _, cfg := range tunedConfigs() {
			got := PrioritizeOpts(g, cfg.opts())
			equalSchedules(t, fmt.Sprintf("random[%d,n=%d,p=%g]/%s", trial, n, p, cfg.name), ref, got)
		}
	}
}

// TestParallelSharedCacheAcrossCalls: one Cache shared by sequential
// and parallel runs over several dags stays coherent and keeps the
// output identical, and repeated runs hit.
func TestParallelSharedCacheAcrossCalls(t *testing.T) {
	cache := NewCache()
	g, err := workloads.ByName("sdss", 60)
	if err != nil {
		t.Fatal(err)
	}
	ref := Prioritize(g)
	first := PrioritizeOpts(g, Options{Parallel: 4, Cache: cache})
	equalSchedules(t, "sdss/first", ref, first)
	miss0 := cache.Stats().Misses
	if miss0 == 0 {
		t.Fatal("first run recorded no misses")
	}
	// SDSS is thousands of identical W chains: the cache must collapse
	// them to a handful of shapes even within a single run.
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("no intra-run hits on SDSS: %+v", st)
	}
	second := PrioritizeOpts(g, Options{Parallel: 4, Cache: cache})
	equalSchedules(t, "sdss/second", ref, second)
	if st := cache.Stats(); st.Misses != miss0 {
		t.Fatalf("second identical run missed the cache: %+v", st)
	}
}

// TestParallelConcurrentPrioritize: several goroutines sharing one
// Cache must each produce the reference schedule (exercised under
// -race by make check).
func TestParallelConcurrentPrioritize(t *testing.T) {
	cache := NewCache()
	g, err := workloads.ByName("inspiral", 16)
	if err != nil {
		t.Fatal(err)
	}
	ref := Prioritize(g)
	type result struct{ s *Schedule }
	done := make(chan result, 8)
	for i := 0; i < 8; i++ {
		go func() {
			done <- result{PrioritizeOpts(g, Options{Parallel: 4, Cache: cache})}
		}()
	}
	for i := 0; i < 8; i++ {
		equalSchedules(t, fmt.Sprintf("concurrent[%d]", i), ref, (<-done).s)
	}
}

// TestParallelWorkersNormalization pins the Parallel encoding: 0 and 1
// are sequential, negatives mean all CPUs.
func TestParallelWorkersNormalization(t *testing.T) {
	if w := (Options{}).workers(); w != 1 {
		t.Fatalf("zero Options workers = %d, want 1", w)
	}
	if w := (Options{Parallel: 1}).workers(); w != 1 {
		t.Fatalf("Parallel=1 workers = %d, want 1", w)
	}
	if w := (Options{Parallel: 3}).workers(); w != 3 {
		t.Fatalf("Parallel=3 workers = %d, want 3", w)
	}
	if w := (Options{Parallel: -1}).workers(); w < 1 {
		t.Fatalf("Parallel=-1 workers = %d, want >= 1", w)
	}
}

// TestRecurseComponentPanicPropagates: an invalid component must panic
// on the caller's goroutine in the parallel path, exactly as the
// sequential path would.
func TestRecurseComponentPanicPropagates(t *testing.T) {
	// A cycle can no longer reach the Recurse phase (Freeze rejects it),
	// so a nil Sub stands in for "a buggy component": classifying it
	// panics, and the parallel path must re-raise that panic here.
	comps := make([]*decompose.Component, 16)
	for i := range comps {
		comps[i] = &decompose.Component{Index: i, Sub: nil, Orig: []int{0, 1}}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic from invalid component in parallel path")
		}
	}()
	scheduleComponents(comps, 4, nil)
}
