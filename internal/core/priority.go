package core

import (
	"fmt"
	"strings"
)

// PriorityR returns the largest r such that Ci has r-priority over Cj
// (Section 3.1, Steps 4-5), given the components' eligibility profiles:
// ei[x] is the number of eligible jobs of Ci after executing the first x
// non-sinks of its schedule, and likewise ej. The value is
//
//	min over x in [0,si], y in [0,sj] of
//	    ( ei[min(si,x+y)] + ej[(x+y)-min(si,x+y)] ) / ( ei[x] + ej[y] )
//
// — the worst-case fraction of the eligible jobs an arbitrary split
// (x, y) could have produced that the "Ci first" schedule retains. The
// result always lies in [0, 1]: the splits with y = 0 make the two sides
// equal, so the minimum never exceeds 1.
func PriorityR(ei, ej []int) float64 {
	si, sj := len(ei)-1, len(ej)-1
	if si < 0 || sj < 0 {
		panic("core: empty eligibility profile")
	}
	r := 1.0
	for x := 0; x <= si; x++ {
		for y := 0; y <= sj; y++ {
			den := ei[x] + ej[y]
			if den <= 0 {
				continue
			}
			t := x + y
			a := t
			if a > si {
				a = si
			}
			num := ei[a] + ej[t-a]
			if v := float64(num) / float64(den); v < r {
				r = v
			}
		}
	}
	return r
}

// profileTable interns eligibility profiles and caches pairwise
// priorities between them. Real decompositions contain thousands of
// structurally identical components (SDSS's parallel chains), so keying
// the Combine phase by interned profile rather than by component
// collapses the pairwise priority work to the handful of distinct
// shapes.
type profileTable struct {
	ids      map[string]int
	profiles [][]int
	rCache   map[[2]int]float64
}

func newProfileTable() *profileTable {
	return &profileTable{
		ids:    make(map[string]int),
		rCache: make(map[[2]int]float64),
	}
}

// intern returns a stable id for the profile, assigning a new one on
// first sight.
func (pt *profileTable) intern(profile []int) int {
	key := profileKey(profile)
	if id, ok := pt.ids[key]; ok {
		return id
	}
	id := len(pt.profiles)
	pt.ids[key] = id
	pt.profiles = append(pt.profiles, append([]int(nil), profile...))
	return id
}

// r returns PriorityR between two interned profiles, cached.
func (pt *profileTable) r(i, j int) float64 {
	k := [2]int{i, j}
	if v, ok := pt.rCache[k]; ok {
		return v
	}
	v := PriorityR(pt.profiles[i], pt.profiles[j])
	pt.rCache[k] = v
	return v
}

func profileKey(profile []int) string {
	var b strings.Builder
	b.Grow(len(profile) * 3)
	for _, v := range profile {
		fmt.Fprintf(&b, "%x,", v)
	}
	return b.String()
}
