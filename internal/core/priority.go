package core

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
)

// PriorityR returns the largest r such that Ci has r-priority over Cj
// (Section 3.1, Steps 4-5), given the components' eligibility profiles:
// ei[x] is the number of eligible jobs of Ci after executing the first x
// non-sinks of its schedule, and likewise ej. The value is
//
//	min over x in [0,si], y in [0,sj] of
//	    ( ei[min(si,x+y)] + ej[(x+y)-min(si,x+y)] ) / ( ei[x] + ej[y] )
//
// — the worst-case fraction of the eligible jobs an arbitrary split
// (x, y) could have produced that the "Ci first" schedule retains. The
// result always lies in [0, 1]: the splits with y = 0 make the two sides
// equal, so the minimum never exceeds 1.
func PriorityR(ei, ej []int) float64 {
	si, sj := len(ei)-1, len(ej)-1
	if si < 0 || sj < 0 {
		panic("core: empty eligibility profile")
	}
	r := 1.0
	for x := 0; x <= si; x++ {
		for y := 0; y <= sj; y++ {
			den := ei[x] + ej[y]
			if den <= 0 {
				continue
			}
			t := x + y
			a := t
			if a > si {
				a = si
			}
			num := ei[a] + ej[t-a]
			if v := float64(num) / float64(den); v < r {
				r = v
			}
		}
	}
	return r
}

// profileTable interns eligibility profiles and caches pairwise
// priorities between them. Real decompositions contain thousands of
// structurally identical components (SDSS's parallel chains), so keying
// the Combine phase by interned profile rather than by component
// collapses the pairwise priority work to the handful of distinct
// shapes.
//
// The pairwise cache is a dense matrix with a bitset of computed cells
// per row: profile ids are small dense integers, so r(i, j) is two
// slice indexes and one bit test instead of hashing a map key on every
// Combine comparison. A profileTable is not safe for concurrent use;
// the parallel pipeline interns profiles and consults r only from the
// single merge goroutine.
type profileTable struct {
	ids      map[string]int
	profiles [][]int
	// rVals[i][j] caches PriorityR(profiles[i], profiles[j]);
	// rDone[i].Contains(j) marks the cells that have been computed.
	// Both are (re)sized by growR the first time r is called after new
	// profiles were interned.
	rVals [][]float64
	rDone []*bitset.Set
}

func newProfileTable() *profileTable {
	return &profileTable{ids: make(map[string]int)}
}

// intern returns a stable id for the profile, assigning a new one on
// first sight.
func (pt *profileTable) intern(profile []int) int {
	key := profileKey(profile)
	if id, ok := pt.ids[key]; ok {
		return id
	}
	id := len(pt.profiles)
	pt.ids[key] = id
	pt.profiles = append(pt.profiles, append([]int(nil), profile...))
	return id
}

// r returns PriorityR between two interned profiles, cached.
func (pt *profileTable) r(i, j int) float64 {
	if len(pt.rDone) != len(pt.profiles) {
		pt.growR()
	}
	if pt.rDone[i].Contains(j) {
		return pt.rVals[i][j]
	}
	v := PriorityR(pt.profiles[i], pt.profiles[j])
	pt.rVals[i][j] = v
	pt.rDone[i].Add(j)
	return v
}

// numProfiles returns the number of distinct interned profiles.
func (pt *profileTable) numProfiles() int { return len(pt.profiles) }

// precomputeAll fills every cell of the pairwise priority matrix,
// fanning rows out over `workers` goroutines. The Combine phase's
// group-minimum rebuilds touch nearly every profile pair on wide
// superdags, and each cell is a pure function of two interned profiles,
// so precomputing the matrix parallelizes the pipeline's dominant cost
// on many-distinct-component dags without changing a single value the
// sequential path would produce. Each worker owns whole rows, so no two
// goroutines share an rVals row or rDone set.
func (pt *profileTable) precomputeAll(workers int) {
	if len(pt.rDone) != len(pt.profiles) {
		pt.growR()
	}
	n := len(pt.profiles)
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			pt.fillRow(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				pt.fillRow(i)
			}
		}()
	}
	wg.Wait()
}

// fillRow computes every missing cell of row i.
func (pt *profileTable) fillRow(i int) {
	row, done := pt.rVals[i], pt.rDone[i]
	for j := range row {
		if !done.Contains(j) {
			row[j] = PriorityR(pt.profiles[i], pt.profiles[j])
			done.Add(j)
		}
	}
}

// growR resizes the dense pairwise cache to the current profile count,
// preserving already-computed cells. In the pipeline all interning
// happens before the first r call, so this runs once.
func (pt *profileTable) growR() {
	n := len(pt.profiles)
	vals := make([][]float64, n)
	done := make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		vals[i] = make([]float64, n)
		done[i] = bitset.New(n)
		if i < len(pt.rVals) {
			copy(vals[i], pt.rVals[i])
			pt.rDone[i].ForEach(func(j int) bool { done[i].Add(j); return true })
		}
	}
	pt.rVals, pt.rDone = vals, done
}

func profileKey(profile []int) string {
	var b strings.Builder
	b.Grow(len(profile) * 3)
	for _, v := range profile {
		// strconv instead of fmt.Fprintf: same "%x," rendering, no
		// interface boxing, and purity-clean (the Fprint family is
		// banned wholesale by the //prio:pure contract).
		b.WriteString(strconv.FormatInt(int64(v), 16))
		b.WriteByte(',')
	}
	return b.String()
}
