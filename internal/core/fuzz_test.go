package core

import (
	"fmt"
	"slices"
	"testing"

	"repro/internal/dag"
)

// decodeDAG grows a dag from fuzz bytes: the first byte picks the node
// count (1..16), each following pair is an arc attempt. Arcs always run
// from the smaller to the larger index, so the result is acyclic by
// construction; self-loops and duplicates are simply skipped.
func decodeDAG(data []byte) *dag.Frozen {
	if len(data) == 0 {
		return nil
	}
	n := 1 + int(data[0])%16
	g := dag.NewWithCapacity(n)
	for v := 0; v < n; v++ {
		g.AddNode(fmt.Sprintf("j%d", v))
	}
	for i := 1; i+1 < len(data); i += 2 {
		u, v := int(data[i])%n, int(data[i+1])%n
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		g.AddArc(u, v) // duplicate arcs are rejected; skipping them is the point
	}
	return g.MustFreeze()
}

// FuzzSchedule checks the pipeline's two contracts on arbitrary dags:
// the schedule is a permutation of all jobs that respects every
// precedence arc, and the parallel memoized configuration is
// bit-identical to the sequential reference.
func FuzzSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5})
	f.Add([]byte{8, 0, 1, 0, 2, 1, 3, 2, 3})
	f.Add([]byte{16, 0, 15, 1, 14, 2, 13, 3, 12, 4, 11, 5, 10, 6, 9, 7, 8})
	f.Add([]byte{12, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := decodeDAG(data)
		if g == nil {
			return
		}
		seq := PrioritizeOpts(g, Options{})
		if err := ValidateExecutionOrder(g, seq.Order); err != nil {
			t.Fatalf("sequential schedule invalid on %v: %v\norder: %v", data, err, seq.Order)
		}
		par := PrioritizeOpts(g, Options{Parallel: 4, Cache: NewCache()})
		if !slices.Equal(par.Order, seq.Order) {
			t.Fatalf("parallel order diverged on %v:\nseq: %v\npar: %v", data, seq.Order, par.Order)
		}
		if !slices.Equal(par.Priority, seq.Priority) {
			t.Fatalf("parallel priorities diverged on %v:\nseq: %v\npar: %v", data, seq.Priority, par.Priority)
		}
	})
}
