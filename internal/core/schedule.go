package core

import (
	"repro/internal/bipartite"
	"repro/internal/btree"
	"repro/internal/dag"
	"repro/internal/decompose"
)

// Options tunes the prioritization pipeline; the zero value is the
// production configuration (bipartite fast path + B-tree combine,
// sequential Recurse, no memoization).
type Options struct {
	Combine   CombineStrategy
	Decompose decompose.Options
	// Parallel sets the Recurse-phase worker count: 0 or 1 runs the
	// sequential reference path (so the zero Options value stays the
	// reference configuration), values above 1 fan the per-component
	// work out over that many goroutines, and negative values use one
	// worker per logical CPU. The parallel output is bit-identical to
	// the sequential output (the differential tests enforce this).
	Parallel int
	// Cache, when non-nil, memoizes component schedules by exact
	// structural signature and transitive reductions by graph
	// fingerprint, across components and across calls. The same Cache
	// may be shared by concurrent PrioritizeOpts calls.
	Cache *Cache
}

// workers returns the Recurse worker count encoded by Parallel.
func (o Options) workers() int {
	if o.Parallel == 0 {
		return 1
	}
	return recurseWorkers(o.Parallel)
}

// ComponentSchedule is the Recurse-phase result for one component.
type ComponentSchedule struct {
	Comp *decompose.Component
	// Family is the recognized building-block family, or
	// bipartite.Unknown when the outdegree heuristic was used.
	Family bipartite.Family
	// Order lists the component's non-sinks (as Sub indices) in
	// execution order: the family's IC-optimal source order when
	// recognized, otherwise greatest-outdegree-first among eligible
	// jobs.
	Order []int
	// Profile[x] is the number of eligible jobs of the component after
	// executing the first x jobs of Order (Step 4's E_Sigma values).
	Profile   []int
	ProfileID int
}

// Schedule is the output of the prio pipeline for a dag.
type Schedule struct {
	Graph *dag.Frozen
	// Order is the PRIO execution order over all jobs: per-component
	// non-sink schedules in greedy Combine order, then every dag sink
	// in node-index order (the paper's "all sinks in arbitrary order";
	// index order reproduces the Fig. 3 example).
	Order []int
	// Rank[v] is v's position in Order; Priority[v] = NumNodes - Rank[v]
	// is the Condor job priority (larger runs first), matching the
	// numbering of Fig. 3 (the first job of five gets priority 5).
	Rank     []int
	Priority []int
	// ComponentOrder is the sequence in which the Combine phase
	// consumed the superdag's components.
	ComponentOrder []int
	Components     []*ComponentSchedule
	Decomposition  *decompose.Result
}

// Prioritize runs the full heuristic of Section 3.1 on g with default
// options: Divide (shortcut removal + decomposition), Recurse (per-
// component IC-optimal or outdegree schedules), Combine (greedy
// max-min-priority consumption of the superdag).
//
//prio:pure
func Prioritize(g *dag.Frozen) *Schedule { return PrioritizeOpts(g, Options{}) }

// PrioritizeOpts runs the full heuristic with explicit options.
//
//prio:pure
func PrioritizeOpts(g *dag.Frozen, opts Options) *Schedule {
	dopts := opts.Decompose
	if opts.Cache != nil && dopts.ReduceCache == nil {
		dopts.ReduceCache = opts.Cache.ReduceCache()
	}
	dec := decompose.DecomposeOpts(g, dopts)

	// Recurse: per-component schedules, fanned out when requested.
	comps := scheduleComponents(dec.Components, opts.workers(), opts.Cache)

	// Profile interning is sequential and in component order, so ids —
	// and therefore the Combine phase — never depend on worker timing.
	pt := newProfileTable()
	pids := make([]int, len(comps))
	for i, cs := range comps {
		cs.ProfileID = pt.intern(cs.Profile)
		pids[i] = cs.ProfileID
	}

	// In parallel mode, fill the pairwise r-priority matrix up front
	// across the workers; Combine then only reads cached cells. The
	// values are pure functions of the interned profiles, so this is
	// invisible in the output. The sequential reference keeps the lazy
	// evaluation, which computes only the pairs Combine actually asks
	// for.
	if w := opts.workers(); w > 1 {
		pt.precomputeAll(w)
	}

	compOrder := combineOrder(dec.Super, pids, pt, opts.Combine)

	n := g.NumNodes()
	order := make([]int, 0, n)
	for _, ci := range compOrder {
		cs := comps[ci]
		for _, si := range cs.Order {
			order = append(order, cs.Comp.Orig[si])
		}
	}
	// Final phase: all sinks of the dag, in node-index order.
	for v := 0; v < n; v++ {
		if g.IsSink(v) {
			order = append(order, v)
		}
	}

	s := &Schedule{
		Graph:          g,
		Order:          order,
		Rank:           make([]int, n),
		Priority:       make([]int, n),
		ComponentOrder: compOrder,
		Components:     comps,
		Decomposition:  dec,
	}
	for rank, v := range order {
		s.Rank[v] = rank
		s.Priority[v] = n - rank
	}
	return s
}

// scheduleComponent implements the Recurse phase (Step 3) for one
// component: an explicit IC-optimal schedule when the component is a
// recognized bipartite building block, otherwise the outdegree
// heuristic — repeatedly execute the eligible non-sink with the largest
// out-degree (ties toward the smaller index), which executes sinks last
// exactly as the paper prescribes.
func scheduleComponent(c *decompose.Component) *ComponentSchedule {
	cs := &ComponentSchedule{Comp: c}
	if cls, ok := bipartite.Classify(c.Sub); ok {
		cs.Family = cls.Family
		cs.Order = cls.SourceOrder
		return cs
	}
	cs.Family = bipartite.Unknown
	cs.Order = outdegreeOrder(c.Sub)
	return cs
}

// degKey orders eligible jobs by descending out-degree, then ascending
// index.
type degKey struct{ deg, idx int }

func degKeyLess(a, b degKey) bool {
	if a.deg != b.deg {
		return a.deg > b.deg
	}
	return a.idx < b.idx
}

// outdegreeOrder returns the component's non-sinks in
// greatest-outdegree-first order, constrained to be a valid execution
// order (a job is only emitted once all of its parents inside the
// component have been emitted).
func outdegreeOrder(sub *dag.Frozen) []int {
	n := sub.NumNodes()
	remaining := make([]int, n)
	ready := btree.New(8, degKeyLess)
	nonSinks := 0
	for v := 0; v < n; v++ {
		remaining[v] = sub.InDegree(v)
		if sub.OutDegree(v) == 0 {
			continue
		}
		nonSinks++
		if remaining[v] == 0 {
			ready.Insert(degKey{deg: sub.OutDegree(v), idx: v})
		}
	}
	order := make([]int, 0, nonSinks)
	for ready.Len() > 0 {
		k, _ := ready.DeleteMin()
		v := k.idx
		order = append(order, v)
		for _, c := range sub.Children(v) {
			remaining[c]--
			if remaining[c] == 0 && sub.OutDegree(int(c)) > 0 {
				ready.Insert(degKey{deg: sub.OutDegree(int(c)), idx: int(c)})
			}
		}
	}
	if len(order) != nonSinks {
		panic("core: outdegree order did not cover all non-sinks")
	}
	return order
}
