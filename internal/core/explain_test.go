package core

import (
	"strings"
	"testing"
)

func TestExplainFig3(t *testing.T) {
	g := build(t, []string{"a", "b", "c", "d", "e"}, "a>b", "c>d", "c>e")
	s := Prioritize(g)

	c := s.Explain(g.IndexOf("c"))
	for _, want := range []string{`job "c"`, "priority 5", "rank 1 of 5", "W-dag", "1st of 2 components"} {
		if !strings.Contains(c, want) {
			t.Fatalf("Explain(c) missing %q:\n%s", want, c)
		}
	}
	e := s.Explain(g.IndexOf("e"))
	if !strings.Contains(e, "final all-sinks phase") {
		t.Fatalf("Explain(e) should mention the sink phase:\n%s", e)
	}
	if out := s.Explain(99); !strings.Contains(out, "does not exist") {
		t.Fatalf("Explain(99) = %q", out)
	}
}

func TestExplainNonBipartite(t *testing.T) {
	g := build(t, []string{"s1", "s2", "x1", "x2", "y1", "y2"},
		"s1>y2", "s1>x1", "s2>y1", "s2>x2", "x1>y1", "x2>y2")
	s := Prioritize(g)
	out := s.Explain(g.IndexOf("x1"))
	if !strings.Contains(out, "non-bipartite component") {
		t.Fatalf("Explain should name the heuristic used:\n%s", out)
	}
	if !strings.Contains(out, "out-degree") {
		t.Fatalf("Explain should include the job's out-degree:\n%s", out)
	}
}

func TestOrdinal(t *testing.T) {
	cases := map[int]string{1: "1st", 2: "2nd", 3: "3rd", 4: "4th", 11: "11th", 12: "12th", 13: "13th", 21: "21st", 102: "102nd"}
	for n, want := range cases {
		if got := ordinal(n); got != want {
			t.Errorf("ordinal(%d) = %q, want %q", n, got, want)
		}
	}
}
