package core

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/bipartite"
	"repro/internal/dag"
)

// Cache memoizes the Recurse phase across components and invocations.
// Real workloads are built from a handful of repeated building blocks —
// SDSS is thousands of identical (s,3)-W chains, Montage a grid of
// near-identical difference fans — so the classification + IC-optimal
// (or outdegree) schedule + eligibility trace of each distinct shape
// only needs to be computed once. Entries are keyed by an exact
// canonical encoding of the component subgraph (node count plus the
// full adjacency over the component's dense indices), NOT by an
// isomorphism hash: two components hit the same entry only when their
// index-level structure is identical, so a cached schedule template is
// valid verbatim and the memoized pipeline is bit-identical to the
// uncached one.
//
// A Cache is safe for concurrent use and is shared by all workers of
// the parallel pipeline; it also embeds a dag.ReduceCache so repeated
// prioritizations of the same graph share the Step 1 transitive
// reduction. Cached Order/Profile slices are shared between schedules
// and must be treated as immutable (the pipeline only reads them).
type Cache struct {
	mu      sync.RWMutex
	entries map[string]*cacheEntry // guarded by mu
	reduce  *dag.ReduceCache
	hits    atomic.Int64
	misses  atomic.Int64
}

type cacheEntry struct {
	family  bipartite.Family
	order   []int // schedule over the component's Sub indices
	profile []int // eligibility profile of order on Sub
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	// Hits and Misses count component-schedule lookups.
	Hits, Misses int64
	// Entries is the number of distinct component shapes stored.
	Entries int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// NewCache returns an empty schedule cache.
func NewCache() *Cache {
	return &Cache{
		entries: make(map[string]*cacheEntry),
		reduce:  dag.NewReduceCache(),
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.entries)
	c.mu.RUnlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// ReduceCache returns the embedded transitive-reduction cache, for
// callers that also run pipeline stages outside PrioritizeOpts (e.g.
// prio -theoretical).
func (c *Cache) ReduceCache() *dag.ReduceCache { return c.reduce }

// lookup returns the cached schedule template for a component subgraph.
func (c *Cache) lookup(sub *dag.Frozen) (*cacheEntry, bool) {
	key := componentSignature(sub)
	c.mu.RLock()
	e, ok := c.entries[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

// store records a freshly computed component schedule. Concurrent
// workers may race to store the same shape; the entries are identical
// by construction (the signature is exact), so last-write-wins is fine.
func (c *Cache) store(sub *dag.Frozen, cs *ComponentSchedule) {
	key := componentSignature(sub)
	c.mu.Lock()
	c.entries[key] = &cacheEntry{family: cs.Family, order: cs.Order, profile: cs.Profile}
	c.mu.Unlock()
}

// componentSignature canonically encodes a component subgraph's
// structure: node count, then each node's child list over the dense Sub
// indices. Node names are deliberately excluded — neither Classify nor
// the outdegree order reads them — so equally shaped components from
// different parts of the dag (or different dags) share an entry.
func componentSignature(sub *dag.Frozen) string {
	var b strings.Builder
	n := sub.NumNodes()
	b.Grow(8 + 4*sub.NumArcs())
	b.WriteString(strconv.Itoa(n))
	for v := 0; v < n; v++ {
		b.WriteByte(';')
		for i, c := range sub.Children(v) {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(int(c)))
		}
	}
	return b.String()
}
