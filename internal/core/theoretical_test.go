package core

import (
	"errors"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/dag"
	"repro/internal/rng"
)

func TestTheoreticalFig3(t *testing.T) {
	g := build(t, []string{"a", "b", "c", "d", "e"}, "a>b", "c>d", "c>e")
	order, err := TheoreticalSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	got := orderNames(g, order)
	want := []string{"c", "a", "b", "d", "e"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("theoretical schedule = %v, want %v", got, want)
		}
	}
}

func TestTheoreticalOnBuildingBlocks(t *testing.T) {
	for name, g := range map[string]*dag.Frozen{
		"W(3,2)":   bipartite.NewW(3, 2),
		"M(2,3)":   bipartite.NewM(2, 3),
		"N(4)":     bipartite.NewN(4),
		"Cycle(4)": bipartite.NewCycle(4),
		"Clique3":  bipartite.NewClique(3, 3),
		"chain5": build(t, []string{"a", "b", "c", "d", "e"},
			"a>b", "b>c", "c>d", "d>e"),
		"diamond": build(t, []string{"a", "b", "c", "d"},
			"a>b", "a>c", "b>d", "c>d"),
	} {
		t.Run(name, func(t *testing.T) {
			order, err := TheoreticalSchedule(g)
			if err != nil {
				t.Fatalf("theoretical algorithm failed: %v", err)
			}
			got, err := EligibilityTrace(g, order)
			if err != nil {
				t.Fatal(err)
			}
			want := optimalTrace(g)
			for x := range got {
				if got[x] != want[x] {
					t.Fatalf("E(%d) = %d, optimum %d", x, got[x], want[x])
				}
			}
		})
	}
}

func TestTheoreticalFailsOnCrossed(t *testing.T) {
	g := build(t, []string{"s1", "s2", "x1", "x2", "y1", "y2"},
		"s1>y2", "s1>x1", "s2>y1", "s2>x2", "x1>y1", "x2>y2")
	_, err := TheoreticalSchedule(g)
	if !errors.Is(err, ErrNotComposite) {
		t.Fatalf("err = %v, want ErrNotComposite", err)
	}
}

func TestTheoreticalFailsOnUnknownBlock(t *testing.T) {
	// Irregular bipartite block: sources of differing out-degree.
	g := build(t, []string{"u1", "u2", "v1", "v2", "v3", "v4"},
		"u1>v1", "u1>v2", "u1>v3", "u2>v3", "u2>v4")
	_, err := TheoreticalSchedule(g)
	if !errors.Is(err, ErrUnknownBlock) {
		t.Fatalf("err = %v, want ErrUnknownBlock", err)
	}
}

// TestHeuristicIsGraceful verifies the paper's central design claim: the
// heuristic produces an IC-optimal schedule for every dag on which the
// theoretical algorithm succeeds.
func TestHeuristicIsGraceful(t *testing.T) {
	r := rng.New(41)
	successes := 0
	for trial := 0; trial < 300; trial++ {
		g := randomDag(r, 2+r.Intn(11), 0.25)
		order, err := TheoreticalSchedule(g)
		if err != nil {
			continue
		}
		successes++
		theo, err := EligibilityTrace(g, order)
		if err != nil {
			t.Fatalf("trial %d: theoretical schedule invalid: %v", trial, err)
		}
		heur, err := EligibilityTrace(g, Prioritize(g).Order)
		if err != nil {
			t.Fatalf("trial %d: heuristic schedule invalid: %v", trial, err)
		}
		best := optimalTrace(g)
		for x := range best {
			if theo[x] != best[x] {
				t.Fatalf("trial %d: theoretical not IC-optimal at %d (%d vs %d)", trial, x, theo[x], best[x])
			}
			if heur[x] != best[x] {
				t.Fatalf("trial %d: heuristic below optimum where theory succeeds (%d vs %d at %d)",
					trial, heur[x], best[x], x)
			}
		}
	}
	if successes < 20 {
		t.Fatalf("only %d theoretical successes in 300 trials; test too weak", successes)
	}
}

// TestGracefulOnComposites exercises the theory's own input class:
// dags assembled by composing Fig. 2 building blocks. The theoretical
// algorithm should succeed on a good share of them, and wherever it
// succeeds, both it and the heuristic must be IC-optimal at every step.
func TestGracefulOnComposites(t *testing.T) {
	r := rng.New(321)
	successes, trials := 0, 0
	for trials < 250 {
		g, err := bipartite.RandomComposite(r, 1+r.Intn(3))
		if err != nil || g.NumNodes() > 18 {
			continue // keep the exhaustive oracle cheap
		}
		trials++
		order, err := TheoreticalSchedule(g)
		if err != nil {
			// the heuristic must still schedule it validly
			if verr := ValidateExecutionOrder(g, Prioritize(g).Order); verr != nil {
				t.Fatalf("heuristic invalid on composite: %v", verr)
			}
			continue
		}
		successes++
		best := optimalTrace(g)
		theo, err := EligibilityTrace(g, order)
		if err != nil {
			t.Fatal(err)
		}
		heur, err := EligibilityTrace(g, Prioritize(g).Order)
		if err != nil {
			t.Fatal(err)
		}
		for x := range best {
			if theo[x] != best[x] || heur[x] != best[x] {
				t.Fatalf("composite: theo %d / heur %d vs optimum %d at step %d (arcs %v)",
					theo[x], heur[x], best[x], x, g.Arcs())
			}
		}
	}
	if successes < 50 {
		t.Fatalf("theoretical algorithm succeeded on only %d of %d composites", successes, trials)
	}
}

func TestTheoreticalEmptyAndSingle(t *testing.T) {
	if order, err := TheoreticalSchedule(dag.New().MustFreeze()); err != nil || len(order) != 0 {
		t.Fatalf("empty dag: %v, %v", order, err)
	}
	b := dag.New()
	b.AddNode("x")
	order, err := TheoreticalSchedule(b.MustFreeze())
	if err != nil || len(order) != 1 {
		t.Fatalf("singleton: %v, %v", order, err)
	}
}

func TestTheoreticalIsolatedPlusBlock(t *testing.T) {
	g := build(t, []string{"lone", "a", "b", "c"}, "a>b", "a>c")
	order, err := TheoreticalSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateExecutionOrder(g, order); err != nil {
		t.Fatal(err)
	}
}
