package core

import (
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/rng"
	"repro/internal/workloads"
)

// naiveEligible recomputes the eligible count from scratch.
func naiveEligible(g *dag.Frozen, executed map[int]bool) int {
	count := 0
	for v := 0; v < g.NumNodes(); v++ {
		if executed[v] {
			continue
		}
		ok := true
		for _, p := range g.Parents(v) {
			if !executed[int(p)] {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return count
}

// Property: the incremental eligibility trace matches a from-scratch
// recomputation at every step, for random dags and their PRIO orders.
func TestQuickTraceMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := randomDag(r, 2+r.Intn(25), 0.2)
		order := Prioritize(g).Order
		trace, err := EligibilityTrace(g, order)
		if err != nil {
			return false
		}
		executed := map[int]bool{}
		if trace[0] != naiveEligible(g, executed) {
			return false
		}
		for t0, v := range order {
			executed[v] = true
			if trace[t0+1] != naiveEligible(g, executed) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: FIFO and PRIO orders are both permutations that respect
// every arc, on layered workloads.
func TestQuickOrdersAreValidOnLayered(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := workloads.Layered(r, 2+r.Intn(5), 1+r.Intn(6), 0.4)
		if err := ValidateExecutionOrder(g, FIFOSchedule(g)); err != nil {
			return false
		}
		return ValidateExecutionOrder(g, Prioritize(g).Order) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every component subgraph produced by the pipeline is weakly
// connected and its schedule covers exactly its non-sinks.
func TestQuickComponentsConnected(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := randomDag(r, 2+r.Intn(30), 0.15)
		s := Prioritize(g)
		for _, cs := range s.Components {
			if _, n := cs.Comp.Sub.UndirectedComponents(); n != 1 {
				return false
			}
			nonSinks := 0
			for v := 0; v < cs.Comp.Sub.NumNodes(); v++ {
				if cs.Comp.Sub.OutDegree(v) > 0 {
					nonSinks++
				}
			}
			if len(cs.Order) != nonSinks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: profiles never report more eligible jobs than unexecuted
// jobs, and E(s) equals the component's sink count (all non-sinks done
// means every sink is eligible).
func TestQuickProfileShape(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := randomDag(r, 2+r.Intn(25), 0.25)
		s := Prioritize(g)
		for _, cs := range s.Components {
			sub := cs.Comp.Sub
			sinks := sub.NumNodes() - len(cs.Order)
			for x, e := range cs.Profile {
				if e < 0 || e > sub.NumNodes()-x {
					return false
				}
			}
			if cs.Profile[len(cs.Profile)-1] != sinks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: PriorityR is monotone under profile improvement — raising a
// point of ei cannot lower Ci's priority over a fixed Cj below what a
// (pointwise-lower) profile achieved, at the specific split where the
// minimum was attained... that is hard to state exactly; instead check
// the simpler invariants r(e,e) documented bounds and scale invariance:
// doubling both profiles leaves r unchanged.
func TestQuickPriorityScaleInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		ei := randomProfile(r)
		ej := randomProfile(r)
		double := func(xs []int) []int {
			out := make([]int, len(xs))
			for i, x := range xs {
				out[i] = 2 * x
			}
			return out
		}
		a := PriorityR(ei, ej)
		b := PriorityR(double(ei), double(ej))
		diff := a - b
		return diff < 1e-12 && diff > -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
