package core

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/rng"
	"repro/internal/workloads"
)

// TestCombineAgreementAtScale: the engineered B-tree Combine and the
// naive one must produce identical schedules on a dag with over a
// thousand components (Inspiral's superdag is the stress case the
// random-dag agreement test cannot reach).
func TestCombineAgreementAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	ins := workloads.Inspiral(60) // ~790 jobs, ~370 components
	a := PrioritizeOpts(ins, Options{Combine: CombineBTree})
	b := PrioritizeOpts(ins, Options{Combine: CombineNaive})
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("schedules diverge at %d", i)
		}
	}
	sd := workloads.SDSS(400, 5)
	a = PrioritizeOpts(sd, Options{Combine: CombineBTree})
	b = PrioritizeOpts(sd, Options{Combine: CombineNaive})
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("SDSS schedules diverge at %d", i)
		}
	}
}

// TestPrioritizeSoak hammers the full pipeline with a few hundred random
// dags of assorted shapes, asserting schedule validity and priority
// bijectivity every time.
func TestPrioritizeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	r := rng.New(2025)
	for trial := 0; trial < 250; trial++ {
		var g = randomDag(r, 2+r.Intn(80), 0.02+r.Float64()*0.3)
		if trial%3 == 0 {
			g = workloads.Layered(r, 2+r.Intn(6), 1+r.Intn(10), 0.3)
		}
		s := Prioritize(g)
		if err := ValidateExecutionOrder(g, s.Order); err != nil {
			t.Fatalf("trial %d: %v (arcs %v)", trial, err, g.Arcs())
		}
		seen := make([]bool, g.NumNodes()+1)
		for v := 0; v < g.NumNodes(); v++ {
			p := s.Priority[v]
			if p < 1 || p > g.NumNodes() || seen[p] {
				t.Fatalf("trial %d: bad priority %d", trial, p)
			}
			seen[p] = true
		}
	}
}

// TestPrioritizeDeterministic guards against map-iteration order leaking
// into schedules: repeated runs must produce identical orders.
func TestPrioritizeDeterministic(t *testing.T) {
	for _, g := range []*dag.Frozen{
		workloads.Inspiral(40),
		workloads.Montage(10, 6),
		workloads.SDSS(100, 5),
	} {
		a := Prioritize(g).Order
		for rep := 0; rep < 3; rep++ {
			b := Prioritize(g).Order
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("rep %d: schedule diverged at %d", rep, i)
				}
			}
		}
	}
}
