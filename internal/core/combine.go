package core

import (
	"math"
	"sort"

	"repro/internal/bitset"
	"repro/internal/btree"
	"repro/internal/dag"
)

// CombineStrategy selects the implementation of the Combine phase's
// greedy superdag consumption (Step 6).
type CombineStrategy int

const (
	// CombineBTree is the engineered implementation of Section 3.5:
	// sources are grouped by interned eligibility profile and ranked in
	// a B-tree priority queue keyed by minimum pairwise priority, so
	// each round costs O(log) except when the set of distinct profiles
	// changes.
	CombineBTree CombineStrategy = iota
	// CombineNaive recomputes every source's minimum pairwise priority
	// from scratch each round, as the paper's first implementation did
	// (quadratic per round). Kept for the ablation benchmarks.
	CombineNaive
)

// combineOrder returns the order in which the superdag's components are
// consumed: repeatedly pick, among the current sources of the superdag,
// a component Ci maximizing pi = min over the other current sources Cj
// of (priority of Ci over Cj). Ties break toward the smallest component
// index. pids maps each component to its interned eligibility profile.
func combineOrder(super *dag.Frozen, pids []int, pt *profileTable, strategy CombineStrategy) []int {
	switch strategy {
	case CombineNaive:
		return combineNaive(super, pids, pt)
	default:
		return combineBTree(super, pids, pt)
	}
}

func combineNaive(super *dag.Frozen, pids []int, pt *profileTable) []int {
	n := super.NumNodes()
	indeg := make([]int, n)
	var sources []int
	for v := 0; v < n; v++ {
		indeg[v] = super.InDegree(v)
		if indeg[v] == 0 {
			sources = append(sources, v)
		}
	}
	order := make([]int, 0, n)
	for len(sources) > 0 {
		best, bestP := -1, math.Inf(-1)
		for _, i := range sources {
			pi := math.Inf(1)
			for _, j := range sources {
				if j == i {
					continue
				}
				if r := pt.r(pids[i], pids[j]); r < pi {
					pi = r
				}
			}
			if pi > bestP { // strict: first maximum wins = smallest index
				best, bestP = i, pi
			}
		}
		order = append(order, best)
		// remove best, keeping sources sorted
		k := sort.SearchInts(sources, best)
		sources = append(sources[:k], sources[k+1:]...)
		for _, c := range super.Children(best) {
			indeg[c]--
			if indeg[c] == 0 {
				k := sort.SearchInts(sources, int(c))
				sources = append(sources, 0)
				copy(sources[k+1:], sources[k:len(sources)-1])
				sources[k] = int(c)
			}
		}
	}
	return order
}

// groupKey orders profile groups in the B-tree: ascending by minimum
// pairwise priority, and among equal priorities the maximum element is
// the group holding the smallest component index, so Max() reproduces
// the naive tie-breaking exactly.
type groupKey struct {
	p       float64
	minComp int
	pid     int
}

func groupKeyLess(a, b groupKey) bool {
	if a.p != b.p {
		return a.p < b.p
	}
	if a.minComp != b.minComp {
		return a.minComp > b.minComp
	}
	return a.pid > b.pid
}

type profileGroup struct {
	pid   int
	count int
	comps *btree.Tree[int]
	pMin  float64
	key   groupKey
}

func combineBTree(super *dag.Frozen, pids []int, pt *profileTable) []int {
	n := super.NumNodes()
	indeg := make([]int, n)
	// Profile ids are small dense integers, so the live groups are a
	// slice indexed by pid plus a bitset of occupied slots: the pMin
	// scans walk set bits instead of a map, which both removes the
	// hashing from the hot loop and makes the scan order deterministic.
	groups := make([]*profileGroup, pt.numProfiles())
	live := bitset.New(pt.numProfiles())
	tree := btree.New(8, groupKeyLess)

	addComp := func(c int) *profileGroup {
		pid := pids[c]
		g := groups[pid]
		if g == nil {
			g = &profileGroup{
				pid:   pid,
				comps: btree.New(8, func(a, b int) bool { return a < b }),
			}
			groups[pid] = g
			live.Add(pid)
		}
		g.comps.Insert(c)
		g.count++
		return g
	}
	computePMin := func(g *profileGroup) float64 {
		p := math.Inf(1)
		live.ForEach(func(qid int) bool {
			if qid == g.pid && g.count < 2 {
				return true
			}
			if r := pt.r(g.pid, qid); r < p {
				p = r
			}
			return true
		})
		return p
	}
	refreshKey := func(g *profileGroup, inTree bool) {
		if inTree {
			tree.Delete(g.key)
		}
		mc, _ := g.comps.Min()
		g.key = groupKey{p: g.pMin, minComp: mc, pid: g.pid}
		tree.Insert(g.key)
	}
	rebuildAll := func() {
		live.ForEach(func(pid int) bool {
			tree.Delete(groups[pid].key)
			return true
		})
		live.ForEach(func(pid int) bool {
			g := groups[pid]
			g.pMin = computePMin(g)
			mc, _ := g.comps.Min()
			g.key = groupKey{p: g.pMin, minComp: mc, pid: g.pid}
			tree.Insert(g.key)
			return true
		})
	}

	for v := 0; v < n; v++ {
		indeg[v] = super.InDegree(v)
		if indeg[v] == 0 {
			addComp(v)
		}
	}
	rebuildAll()

	order := make([]int, 0, n)
	for tree.Len() > 0 {
		key, _ := tree.Max()
		g := groups[key.pid]
		comp, _ := g.comps.DeleteMin()
		order = append(order, comp)
		g.count--
		if g.count == 0 {
			tree.Delete(g.key)
			groups[g.pid] = nil
			live.Remove(g.pid)
			// The departed profile may have been the minimum for others.
			rebuildAll()
		} else {
			if g.count == 1 {
				// r(g,g) no longer applies to a lone member.
				g.pMin = computePMin(g)
			}
			refreshKey(g, true)
		}
		for _, c32 := range super.Children(comp) {
			c := int(c32)
			indeg[c]--
			if indeg[c] != 0 {
				continue
			}
			pid := pids[c]
			if g2 := groups[pid]; g2 != nil {
				wasAlone := g2.count == 1
				g2.comps.Insert(c)
				g2.count++
				if wasAlone {
					if r := pt.r(pid, pid); r < g2.pMin {
						g2.pMin = r
					}
				}
				refreshKey(g2, true)
			} else {
				g2 := addComp(c)
				g2.pMin = computePMin(g2)
				refreshKey(g2, false)
				// A new profile can lower every other group's minimum.
				live.ForEach(func(hpid int) bool {
					if hpid == pid {
						return true
					}
					h := groups[hpid]
					if r := pt.r(hpid, pid); r < h.pMin {
						h.pMin = r
						refreshKey(h, true)
					}
					return true
				})
			}
		}
	}
	return order
}
