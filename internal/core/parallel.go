package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/decompose"
)

// The parallel Recurse phase. The heuristic's divide/recurse/combine
// shape is embarrassingly parallel in the middle: after the Divide
// phase, every component's classification, schedule, and eligibility
// trace is independent of every other component's. scheduleComponents
// fans that work out over a bounded worker pool and merges the results
// into component-index order, so the parallel pipeline's output is
// bit-identical to the sequential reference (which remains the oracle
// for the differential tests).

// recurseWorkers normalizes an Options.Parallel value to a worker
// count: <= 0 means one worker per logical CPU, 1 means the sequential
// reference path, and any other value is used as given.
func recurseWorkers(parallel int) int {
	if parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallel
}

// scheduleComponents runs the Recurse phase (Step 3 + the Step 4
// eligibility traces) for every component, on `workers` goroutines when
// workers > 1. The result slice is indexed by component, independent of
// which worker produced each entry.
func scheduleComponents(comps []*decompose.Component, workers int, cache *Cache) []*ComponentSchedule {
	out := make([]*ComponentSchedule, len(comps))
	if workers > len(comps) {
		workers = len(comps)
	}
	if workers <= 1 {
		for i, c := range comps {
			out[i] = recurseComponent(c, cache)
		}
		return out
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	panics := make(chan interface{}, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(comps) {
					return
				}
				out[i] = recurseComponent(comps[i], cache)
			}
		}()
	}
	wg.Wait()
	select {
	case r := <-panics:
		// Re-raise on the caller's goroutine so the parallel path keeps
		// the sequential path's contract (an invalid component schedule
		// is a bug and panics).
		panic(r)
	default:
	}
	return out
}

// recurseComponent produces one component's schedule and eligibility
// profile, consulting the memo cache when one is supplied. On a hit the
// Order and Profile slices are shared with the cache entry (and with
// every other component of the same shape); they are never mutated
// downstream.
func recurseComponent(c *decompose.Component, cache *Cache) *ComponentSchedule {
	if cache != nil {
		if e, ok := cache.lookup(c.Sub); ok {
			return &ComponentSchedule{Comp: c, Family: e.family, Order: e.order, Profile: e.profile}
		}
	}
	cs := scheduleComponent(c)
	profile, err := EligibilityTrace(c.Sub, cs.Order)
	if err != nil {
		panic(fmt.Sprintf("core: component %d schedule invalid: %v", c.Index, err))
	}
	cs.Profile = profile
	if cache != nil {
		cache.store(c.Sub, cs)
	}
	return cs
}
