package core

import (
	"fmt"
	"strings"

	"repro/internal/bipartite"
)

// Explain returns a human-readable account of why job v received its
// priority: which component it belongs to, how that component was
// scheduled (recognized family or outdegree heuristic), where the
// component landed in the Combine order, and the job's position inside
// it. Tool users ask this when a priority surprises them (e.g. the
// AIRSN fork job outranking 250 already-eligible fringe jobs).
func (s *Schedule) Explain(v int) string {
	g := s.Graph
	if v < 0 || v >= g.NumNodes() {
		return fmt.Sprintf("job %d does not exist", v)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "job %q: priority %d (rank %d of %d)\n",
		g.Name(v), s.Priority[v], s.Rank[v]+1, g.NumNodes())

	ci := s.Decomposition.ScheduledIn[v]
	if ci == -1 {
		fmt.Fprintf(&b, "  a sink of the dag: executed in the final all-sinks phase\n")
		return b.String()
	}
	cs := s.Components[ci]
	fmt.Fprintf(&b, "  scheduled by component C%d (%d jobs, %d to execute)\n",
		ci, len(cs.Comp.Nodes), len(cs.Order))
	if cs.Family != bipartite.Unknown {
		fmt.Fprintf(&b, "  component schedule: IC-optimal %s-dag source order\n", cs.Family)
	} else if cs.Comp.Bipartite {
		fmt.Fprintf(&b, "  component schedule: outdegree heuristic (bipartite, but no recognized family)\n")
	} else {
		fmt.Fprintf(&b, "  component schedule: outdegree heuristic (non-bipartite component)\n")
	}
	for pos, consumed := range s.ComponentOrder {
		if consumed == ci {
			fmt.Fprintf(&b, "  Combine phase consumed C%d %s of %d components\n",
				ci, ordinal(pos+1), len(s.ComponentOrder))
			break
		}
	}
	// position within the component schedule
	for i, si := range cs.Order {
		if cs.Comp.Orig[si] == v {
			deg := cs.Comp.Sub.OutDegree(si)
			fmt.Fprintf(&b, "  position %d of %d within the component (out-degree %d inside it)\n",
				i+1, len(cs.Order), deg)
			break
		}
	}
	return b.String()
}

func ordinal(n int) string {
	switch {
	case n%100 >= 11 && n%100 <= 13:
		return fmt.Sprintf("%dth", n)
	case n%10 == 1:
		return fmt.Sprintf("%dst", n)
	case n%10 == 2:
		return fmt.Sprintf("%dnd", n)
	case n%10 == 3:
		return fmt.Sprintf("%drd", n)
	default:
		return fmt.Sprintf("%dth", n)
	}
}
