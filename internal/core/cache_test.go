package core

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/workloads"
)

// TestComponentSignatureExact: the signature must separate structures
// that differ only subtly (same degree multiset, different wiring) and
// must ignore names.
func TestComponentSignatureExact(t *testing.T) {
	// Two sources, two sinks: "parallel arcs" vs "shared sink + private".
	g1 := dag.New()
	a, b, c, d := g1.AddNode("a"), g1.AddNode("b"), g1.AddNode("c"), g1.AddNode("d")
	g1.MustAddArc(a, c)
	g1.MustAddArc(b, d)

	g2 := dag.New()
	a2, b2, c2, d2 := g2.AddNode("a"), g2.AddNode("b"), g2.AddNode("c"), g2.AddNode("d")
	g2.MustAddArc(a2, d2)
	g2.MustAddArc(b2, c2)

	if componentSignature(g1.MustFreeze()) == componentSignature(g2.MustFreeze()) {
		t.Fatal("different wirings share a signature")
	}

	g3 := dag.New()
	x, y, z, w := g3.AddNode("p"), g3.AddNode("q"), g3.AddNode("r"), g3.AddNode("s")
	g3.MustAddArc(x, z)
	g3.MustAddArc(y, w)
	if componentSignature(g1.MustFreeze()) != componentSignature(g3.MustFreeze()) {
		t.Fatal("renaming changed the signature")
	}

	// Index-ambiguity guard: node "12" then arcs to {3} must not equal
	// node "1" with arcs to {2, 3}.
	g4 := dag.New()
	for i := 0; i < 13; i++ {
		g4.AddNode(string(rune('a' + i)))
	}
	g4.MustAddArc(0, 12)
	g5 := dag.New()
	for i := 0; i < 13; i++ {
		g5.AddNode(string(rune('a' + i)))
	}
	g5.MustAddArc(0, 1)
	g5.MustAddArc(0, 2)
	if componentSignature(g4.MustFreeze()) == componentSignature(g5.MustFreeze()) {
		t.Fatal("signature is delimiter-ambiguous")
	}
}

// TestCacheStats: hit/miss accounting and hit rate.
func TestCacheStats(t *testing.T) {
	c := NewCache()
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 || st.HitRate() != 0 {
		t.Fatalf("fresh cache stats = %+v", st)
	}
	g, err := workloads.ByName("sdss", 120) // ~400 jobs of identical chains
	if err != nil {
		t.Fatal(err)
	}
	PrioritizeOpts(g, Options{Cache: c})
	st := c.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("expected both hits and misses on SDSS, got %+v", st)
	}
	// Sequential run: every miss stores exactly one new shape.
	if st.Entries != int(st.Misses) {
		t.Fatalf("entries inconsistent with misses: %+v", st)
	}
	if hr := st.HitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("hit rate = %v, want in (0,1)", hr)
	}
}

// TestCacheSharesReduction: PrioritizeOpts with a Cache threads the
// embedded ReduceCache into the Divide phase, so a second run reuses
// the reduced graph object.
func TestCacheSharesReduction(t *testing.T) {
	c := NewCache()
	gb := dag.New()
	a, b, d := gb.AddNode("a"), gb.AddNode("b"), gb.AddNode("c")
	gb.MustAddArc(a, b)
	gb.MustAddArc(b, d)
	gb.MustAddArc(a, d) // shortcut
	g := gb.MustFreeze()
	s1 := PrioritizeOpts(g, Options{Cache: c})
	s2 := PrioritizeOpts(g, Options{Cache: c})
	if s1.Decomposition.Reduced != s2.Decomposition.Reduced {
		t.Fatal("second run did not reuse the cached transitive reduction")
	}
	if len(s1.Decomposition.Shortcuts) != 1 {
		t.Fatalf("shortcuts = %v, want one", s1.Decomposition.Shortcuts)
	}
}
