package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/dag"
	"repro/internal/icopt"
	"repro/internal/rng"
)

func build(t testing.TB, nodes []string, arcs ...string) *dag.Frozen {
	t.Helper()
	g := dag.New()
	for _, n := range nodes {
		g.AddNode(n)
	}
	for _, a := range arcs {
		parts := strings.Split(a, ">")
		g.MustAddArc(g.IndexOf(parts[0]), g.IndexOf(parts[1]))
	}
	return g.MustFreeze()
}

func orderNames(g *dag.Frozen, order []int) []string {
	out := make([]string, len(order))
	for i, v := range order {
		out[i] = g.Name(v)
	}
	return out
}

// optimalTrace is the exhaustive IC-optimality envelope (see
// internal/icopt for the implementation).
func optimalTrace(g *dag.Frozen) []int {
	env, err := icopt.OptimalTrace(g)
	if err != nil {
		panic(err)
	}
	return env
}

func TestEligibilityTraceChain(t *testing.T) {
	g := build(t, []string{"a", "b", "c"}, "a>b", "b>c")
	tr, err := EligibilityTrace(g, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 1, 0}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("trace = %v, want %v", tr, want)
		}
	}
}

func TestEligibilityTraceErrors(t *testing.T) {
	g := build(t, []string{"a", "b"}, "a>b")
	if _, err := EligibilityTrace(g, []int{1}); err == nil {
		t.Fatal("executing child before parent must fail")
	}
	if _, err := EligibilityTrace(g, []int{0, 0}); err == nil {
		t.Fatal("double execution must fail")
	}
	if _, err := EligibilityTrace(g, []int{5}); err == nil {
		t.Fatal("out-of-range job must fail")
	}
}

func TestEligibilityTracePrefix(t *testing.T) {
	g := build(t, []string{"a", "b", "c"}, "a>b", "a>c")
	tr, err := EligibilityTrace(g, []int{0}) // only the source
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 || tr[0] != 1 || tr[1] != 2 {
		t.Fatalf("trace = %v", tr)
	}
}

func TestFIFOScheduleFig3(t *testing.T) {
	g := build(t, []string{"a", "b", "c", "d", "e"}, "a>b", "c>d", "c>e")
	got := orderNames(g, FIFOSchedule(g))
	want := []string{"a", "c", "b", "d", "e"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FIFO = %v, want %v", got, want)
		}
	}
}

func TestFIFOIsValidOrder(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		g := randomDag(r, 2+r.Intn(30), 0.2)
		if err := ValidateExecutionOrder(g, FIFOSchedule(g)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPriorityRHandComputed(t *testing.T) {
	// Profiles of the Fig. 3 components: C0 = {a,b} (chain head),
	// C1 = {c,d,e} (fork). Worked out by hand in DESIGN.md terms:
	// executing C0 first can lose a third of the eligible jobs.
	e0 := []int{1, 1}
	e1 := []int{1, 2}
	if r := PriorityR(e0, e1); math.Abs(r-2.0/3.0) > 1e-12 {
		t.Fatalf("r(C0,C1) = %v, want 2/3", r)
	}
	if r := PriorityR(e1, e0); r != 1 {
		t.Fatalf("r(C1,C0) = %v, want 1", r)
	}
}

func TestPriorityRBounds(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 200; trial++ {
		ei := randomProfile(r)
		ej := randomProfile(r)
		v := PriorityR(ei, ej)
		if v < 0 || v > 1 {
			t.Fatalf("r out of [0,1]: %v for %v %v", v, ei, ej)
		}
	}
}

func TestPriorityRIdenticalSymmetric(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 100; trial++ {
		e := randomProfile(r)
		if PriorityR(e, e) != PriorityR(e, e) {
			t.Fatal("unstable")
		}
	}
}

func randomProfile(r *rng.Source) []int {
	n := 1 + r.Intn(6)
	p := make([]int, n+1)
	for i := range p {
		p[i] = r.Intn(5)
	}
	// a real profile has at least one eligible job before the end
	p[0]++
	return p
}

func TestPrioritizeFig3(t *testing.T) {
	g := build(t, []string{"a", "b", "c", "d", "e"}, "a>b", "c>d", "c>e")
	s := Prioritize(g)
	got := orderNames(g, s.Order)
	want := []string{"c", "a", "b", "d", "e"} // the paper's PRIO schedule
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PRIO = %v, want %v", got, want)
		}
	}
	// Fig. 3: job c gets the highest priority value, 5.
	if s.Priority[g.IndexOf("c")] != 5 {
		t.Fatalf("priority(c) = %d, want 5", s.Priority[g.IndexOf("c")])
	}
	if s.Priority[g.IndexOf("e")] != 1 {
		t.Fatalf("priority(e) = %d, want 1", s.Priority[g.IndexOf("e")])
	}
	if err := ValidateExecutionOrder(g, s.Order); err != nil {
		t.Fatal(err)
	}
}

func TestPrioritizeICOptimalOnBlocks(t *testing.T) {
	cases := map[string]*dag.Frozen{
		"W(2,3)":   bipartite.NewW(2, 3),
		"M(2,3)":   bipartite.NewM(2, 3),
		"N(4)":     bipartite.NewN(4),
		"Cycle(4)": bipartite.NewCycle(4),
		"Clique3":  bipartite.NewClique(3, 3),
		"Fig3":     build(t, []string{"a", "b", "c", "d", "e"}, "a>b", "c>d", "c>e"),
		"diamond":  build(t, []string{"a", "b", "c", "d"}, "a>b", "a>c", "b>d", "c>d"),
		"chain4":   build(t, []string{"a", "b", "c", "d"}, "a>b", "b>c", "c>d"),
		"fork-join": build(t, []string{"s", "x", "y", "z", "j"},
			"s>x", "s>y", "s>z", "x>j", "y>j", "z>j"),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			s := Prioritize(g)
			if err := ValidateExecutionOrder(g, s.Order); err != nil {
				t.Fatal(err)
			}
			got, err := EligibilityTrace(g, s.Order)
			if err != nil {
				t.Fatal(err)
			}
			want := optimalTrace(g)
			for x := range got {
				if got[x] != want[x] {
					t.Fatalf("E(%d) = %d, optimum %d (order %v)", x, got[x], want[x], orderNames(g, s.Order))
				}
			}
		})
	}
}

func TestPrioritizeEmptyAndSingle(t *testing.T) {
	if s := Prioritize(dag.New().MustFreeze()); len(s.Order) != 0 {
		t.Fatal("empty dag should give empty schedule")
	}
	b := dag.New()
	b.AddNode("only")
	s := Prioritize(b.MustFreeze())
	if len(s.Order) != 1 || s.Priority[0] != 1 {
		t.Fatalf("singleton schedule = %+v", s)
	}
}

func TestPrioritizeValidOnRandomDags(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 40; trial++ {
		g := randomDag(r, 2+r.Intn(50), 0.15)
		s := Prioritize(g)
		if err := ValidateExecutionOrder(g, s.Order); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Priority must be a bijection onto [1, n].
		seen := make([]bool, g.NumNodes()+1)
		for v := 0; v < g.NumNodes(); v++ {
			p := s.Priority[v]
			if p < 1 || p > g.NumNodes() || seen[p] {
				t.Fatalf("trial %d: bad priority %d for %s", trial, p, g.Name(v))
			}
			seen[p] = true
		}
	}
}

func TestNaiveAndBTreeCombineAgree(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 30; trial++ {
		g := randomDag(r, 2+r.Intn(40), 0.12)
		a := PrioritizeOpts(g, Options{Combine: CombineBTree})
		b := PrioritizeOpts(g, Options{Combine: CombineNaive})
		if len(a.Order) != len(b.Order) {
			t.Fatalf("trial %d: lengths differ", trial)
		}
		for i := range a.Order {
			if a.Order[i] != b.Order[i] {
				t.Fatalf("trial %d: orders diverge at %d:\nbtree: %v\nnaive: %v",
					trial, i, orderNames(g, a.Order), orderNames(g, b.Order))
			}
		}
	}
}

func TestPrioritizeNeverWorseThanFIFOOnBlocks(t *testing.T) {
	// On recognized building blocks PRIO's trace dominates FIFO's.
	for name, g := range map[string]*dag.Frozen{
		"W(3,3)":   bipartite.NewW(3, 3),
		"M(3,3)":   bipartite.NewM(3, 3),
		"Cycle(5)": bipartite.NewCycle(5),
	} {
		s := Prioritize(g)
		diff, err := TraceDifference(g, s.Order, FIFOSchedule(g))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for x, d := range diff {
			if d < 0 {
				t.Fatalf("%s: PRIO below FIFO at step %d (%d)", name, x, d)
			}
		}
	}
}

func TestTraceDifferenceErrors(t *testing.T) {
	g := build(t, []string{"a", "b"}, "a>b")
	if _, err := TraceDifference(g, []int{1, 0}, []int{0, 1}); err == nil {
		t.Fatal("invalid first order accepted")
	}
	if _, err := TraceDifference(g, []int{0, 1}, []int{1, 0}); err == nil {
		t.Fatal("invalid second order accepted")
	}
	if _, err := TraceDifference(g, []int{0, 1}, []int{0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestComponentFamiliesRecognized(t *testing.T) {
	// A W-dag followed by a join: the first component should classify
	// as W, the second as M.
	b := dag.New()
	s1, s2 := b.AddNode("s1"), b.AddNode("s2")
	v1, v2, v3 := b.AddNode("v1"), b.AddNode("v2"), b.AddNode("v3")
	j := b.AddNode("j")
	b.MustAddArc(s1, v1)
	b.MustAddArc(s1, v2)
	b.MustAddArc(s2, v2)
	b.MustAddArc(s2, v3)
	b.MustAddArc(v1, j)
	b.MustAddArc(v2, j)
	b.MustAddArc(v3, j)
	s := Prioritize(b.MustFreeze())
	if len(s.Components) != 2 {
		t.Fatalf("components = %d", len(s.Components))
	}
	if s.Components[0].Family != bipartite.WDag {
		t.Fatalf("C0 family = %v, want W", s.Components[0].Family)
	}
	if s.Components[1].Family != bipartite.MDag {
		t.Fatalf("C1 family = %v, want M", s.Components[1].Family)
	}
}

func TestOutdegreeOrderValidAndSorted(t *testing.T) {
	// Non-bipartite crossed component: order must be valid and prefer
	// high out-degree among eligible jobs.
	g := build(t, []string{"s1", "s2", "x1", "x2", "y1", "y2"},
		"s1>y2", "s1>x1", "s2>y1", "s2>x2", "x1>y1", "x2>y2")
	s := Prioritize(g)
	if len(s.Components) != 1 || s.Components[0].Family != bipartite.Unknown {
		t.Fatalf("expected one unknown-family component, got %+v", s.Components)
	}
	if err := ValidateExecutionOrder(g, s.Order); err != nil {
		t.Fatal(err)
	}
	// s1 and s2 have out-degree 2; x1/x2 only become eligible later.
	first2 := orderNames(g, s.Order[:2])
	if !(first2[0] == "s1" && first2[1] == "s2") {
		t.Fatalf("first two = %v, want s1 s2", first2)
	}
}

func TestProfileInterning(t *testing.T) {
	pt := newProfileTable()
	a := pt.intern([]int{1, 2, 3})
	b := pt.intern([]int{1, 2, 3})
	c := pt.intern([]int{1, 2})
	if a != b {
		t.Fatal("identical profiles got different ids")
	}
	if a == c {
		t.Fatal("distinct profiles share an id")
	}
	// collision resistance for the textual key: [1,23] vs [12,3]
	d := pt.intern([]int{1, 23})
	e := pt.intern([]int{12, 3})
	if d == e {
		t.Fatal("profile key collision")
	}
	r1 := pt.r(a, c)
	r2 := pt.r(a, c)
	if r1 != r2 {
		t.Fatal("cache incoherent")
	}
}

func randomDag(r *rng.Source, n int, p float64) *dag.Frozen {
	g := dag.New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.MustAddArc(i, j)
			}
		}
	}
	return g.MustFreeze()
}

func BenchmarkPrioritizeRandom(b *testing.B) {
	r := rng.New(1)
	g := randomDag(r, 500, 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Prioritize(g)
	}
}
