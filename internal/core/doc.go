// Package core implements the paper's primary contribution: the
// heuristic scheduling algorithm of Section 3.1 and the prio
// prioritization pipeline built on it.
//
// # Pipeline
//
// Prioritize / PrioritizeOpts run the three phases over a dag.Frozen
// (the immutable CSR core every layer shares; see package dag):
//
//   - Divide (delegated to package decompose): remove shortcut arcs,
//     peel the dag into components, build the superdag.
//   - Recurse (scheduleComponents): give every component a schedule —
//     the explicit IC-optimal source order when package bipartite
//     recognizes a Fig. 2 family, otherwise the valid
//     greatest-outdegree-first order — and compute its eligibility
//     profile E(x).
//   - Combine (combineOrder): consume the superdag greedily, always
//     picking a source component whose minimum r-priority over the
//     other current sources is largest (Steps 4-6). Profiles are
//     interned in a profileTable whose pairwise-priority matrix is
//     dense and bitset-backed; CombineBTree is the engineered
//     Section 3.5 implementation, CombineNaive the quadratic ablation.
//
// The final Schedule lists per-component orders in Combine order
// followed by every dag sink, with Priority[v] = NumNodes - Rank[v]
// matching Condor's larger-runs-first convention.
//
// The package also provides the FIFO reference schedule, eligibility
// traces E(t) and trace differences (Fig. 4), per-job priority
// explanations, and the idealized Section 2.2 algorithm
// (TheoreticalSchedule) with its honest failure modes.
//
// # Parallelism and memoization
//
// The Recurse phase is embarrassingly parallel across components, and
// Options.Parallel > 1 fans it — together with the pairwise r-priority
// matrix fill — out over a bounded worker pool. Results are merged in
// component-index order and profile interning stays sequential, so the
// parallel output is bit-identical to the sequential reference (the
// differential tests in parallel_test.go enforce this on every paper
// workload and on random dags). Options.Parallel <= 1 keeps the
// strictly sequential reference path.
//
// Options.Cache supplies a Cache that memoizes component schedules by
// exact structural signature and transitive reductions by graph
// fingerprint, within a run and across runs.
//
// # Concurrency contract
//
// Safe for concurrent use: Cache (shared freely across goroutines and
// PrioritizeOpts calls), and every pure function (PriorityR,
// EligibilityTrace, FIFOSchedule, ...) on distinct arguments.
// PrioritizeOpts itself may be called from many goroutines at once,
// with or without a shared Cache; the worker pool it spawns is
// internal. Not safe for concurrent use: profileTable (confined to one
// pipeline invocation; the parallel matrix fill partitions it by row)
// and a returned *Schedule, which is plain data — share it read-only.
// A *dag.Frozen passed to this package is immutable by construction,
// so the pipeline never copies or locks the graph it analyzes.
package core
