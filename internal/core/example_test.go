package core_test

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dag"
)

// The Fig. 3 dag: a -> b, c -> d, c -> e. The heuristic schedules c
// first because executing it exposes two new eligible jobs.
func ExamplePrioritize() {
	gb := dag.New()
	a, b := gb.AddNode("a"), gb.AddNode("b")
	c, d, e := gb.AddNode("c"), gb.AddNode("d"), gb.AddNode("e")
	gb.MustAddArc(a, b)
	gb.MustAddArc(c, d)
	gb.MustAddArc(c, e)
	g := gb.MustFreeze()

	s := core.Prioritize(g)
	names := make([]string, len(s.Order))
	for i, v := range s.Order {
		names[i] = g.Name(v)
	}
	fmt.Println(strings.Join(names, " "))
	fmt.Println("priority of c:", s.Priority[c])
	// Output:
	// c a b d e
	// priority of c: 5
}

func ExampleFIFOSchedule() {
	gb := dag.New()
	a, b := gb.AddNode("a"), gb.AddNode("b")
	c := gb.AddNode("c")
	gb.MustAddArc(a, b)
	gb.MustAddArc(a, c)
	g := gb.MustFreeze()
	_, _, _ = a, b, c

	names := []string{}
	for _, v := range core.FIFOSchedule(g) {
		names = append(names, g.Name(v))
	}
	fmt.Println(strings.Join(names, " "))
	// Output:
	// a b c
}

func ExampleEligibilityTrace() {
	// A fork: executing the source makes all three children eligible.
	gb := dag.New()
	s := gb.AddNode("s")
	for i := 0; i < 3; i++ {
		gb.MustAddArc(s, gb.AddNode(fmt.Sprintf("c%d", i)))
	}
	trace, _ := core.EligibilityTrace(gb.MustFreeze(), []int{0, 1, 2, 3})
	fmt.Println(trace)
	// Output:
	// [1 3 2 1 0]
}

func ExampleTheoreticalSchedule() {
	// The crossed dag defeats the idealized algorithm; the heuristic
	// still schedules it.
	gb := dag.New()
	s1, s2 := gb.AddNode("s1"), gb.AddNode("s2")
	x1, x2 := gb.AddNode("x1"), gb.AddNode("x2")
	y1, y2 := gb.AddNode("y1"), gb.AddNode("y2")
	gb.MustAddArc(s1, y2)
	gb.MustAddArc(s1, x1)
	gb.MustAddArc(s2, y1)
	gb.MustAddArc(s2, x2)
	gb.MustAddArc(x1, y1)
	gb.MustAddArc(x2, y2)
	g := gb.MustFreeze()

	_, err := core.TheoreticalSchedule(g)
	fmt.Println("theoretical:", err != nil)
	fmt.Println("heuristic jobs scheduled:", len(core.Prioritize(g).Order))
	// Output:
	// theoretical: true
	// heuristic jobs scheduled: 6
}

func ExamplePriorityR() {
	// Profiles of the Fig. 3 components: executing the chain head
	// first can lose a third of the achievable eligible jobs, so the
	// fork component wins the greedy Combine round.
	chainProfile := []int{1, 1}
	forkProfile := []int{1, 2}
	fmt.Printf("%.3f\n", core.PriorityR(chainProfile, forkProfile))
	fmt.Printf("%.3f\n", core.PriorityR(forkProfile, chainProfile))
	// Output:
	// 0.667
	// 1.000
}
