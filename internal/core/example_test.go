package core_test

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dag"
)

// The Fig. 3 dag: a -> b, c -> d, c -> e. The heuristic schedules c
// first because executing it exposes two new eligible jobs.
func ExamplePrioritize() {
	g := dag.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	c, d, e := g.AddNode("c"), g.AddNode("d"), g.AddNode("e")
	g.MustAddArc(a, b)
	g.MustAddArc(c, d)
	g.MustAddArc(c, e)

	s := core.Prioritize(g)
	names := make([]string, len(s.Order))
	for i, v := range s.Order {
		names[i] = g.Name(v)
	}
	fmt.Println(strings.Join(names, " "))
	fmt.Println("priority of c:", s.Priority[c])
	// Output:
	// c a b d e
	// priority of c: 5
}

func ExampleFIFOSchedule() {
	g := dag.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	c := g.AddNode("c")
	g.MustAddArc(a, b)
	g.MustAddArc(a, c)

	names := []string{}
	for _, v := range core.FIFOSchedule(g) {
		names = append(names, g.Name(v))
	}
	fmt.Println(strings.Join(names, " "))
	// Output:
	// a b c
}

func ExampleEligibilityTrace() {
	// A fork: executing the source makes all three children eligible.
	g := dag.New()
	s := g.AddNode("s")
	for i := 0; i < 3; i++ {
		g.MustAddArc(s, g.AddNode(fmt.Sprintf("c%d", i)))
	}
	trace, _ := core.EligibilityTrace(g, []int{0, 1, 2, 3})
	fmt.Println(trace)
	// Output:
	// [1 3 2 1 0]
}

func ExampleTheoreticalSchedule() {
	// The crossed dag defeats the idealized algorithm; the heuristic
	// still schedules it.
	g := dag.New()
	s1, s2 := g.AddNode("s1"), g.AddNode("s2")
	x1, x2 := g.AddNode("x1"), g.AddNode("x2")
	y1, y2 := g.AddNode("y1"), g.AddNode("y2")
	g.MustAddArc(s1, y2)
	g.MustAddArc(s1, x1)
	g.MustAddArc(s2, y1)
	g.MustAddArc(s2, x2)
	g.MustAddArc(x1, y1)
	g.MustAddArc(x2, y2)

	_, err := core.TheoreticalSchedule(g)
	fmt.Println("theoretical:", err != nil)
	fmt.Println("heuristic jobs scheduled:", len(core.Prioritize(g).Order))
	// Output:
	// theoretical: true
	// heuristic jobs scheduled: 6
}

func ExamplePriorityR() {
	// Profiles of the Fig. 3 components: executing the chain head
	// first can lose a third of the achievable eligible jobs, so the
	// fork component wins the greedy Combine round.
	chainProfile := []int{1, 1}
	forkProfile := []int{1, 2}
	fmt.Printf("%.3f\n", core.PriorityR(chainProfile, forkProfile))
	fmt.Printf("%.3f\n", core.PriorityR(forkProfile, chainProfile))
	// Output:
	// 0.667
	// 1.000
}
