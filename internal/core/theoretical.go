package core

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/dag"
	"repro/internal/decompose"
)

// TheoreticalSchedule implements the idealized six-step algorithm of
// Section 2.2 exactly, with its failure modes intact:
//
//   - Step 2 fails when the remnant cannot be decomposed into maximal
//     connected bipartite building blocks (ErrNotComposite).
//   - Step 3 fails when a building block is not isomorphic to a family
//     with a known IC-optimal schedule (ErrUnknownBlock).
//   - Steps 4-5 fail when some parent block does not have full priority
//     over a child block, or two blocks are incomparable
//     (ErrPriorityConflict).
//
// When it succeeds, the returned order is an IC-optimal schedule of g
// (Step 6: a topological sort of the superdag stably sorted by the
// priority relation, each block contributing its IC-optimal source
// order, with all dag sinks last). The heuristic of Section 3.1
// (Prioritize) is its "graceful" extension: it agrees with this
// algorithm whenever this algorithm works, and still produces a schedule
// when it fails.
func TheoreticalSchedule(g *dag.Frozen) ([]int, error) {
	return TheoreticalScheduleOpts(g, decompose.Options{})
}

// TheoreticalScheduleOpts is TheoreticalSchedule with explicit Divide
// options, so callers that also run the heuristic (prio -theoretical)
// can share a decompose.Options.ReduceCache and pay for the transitive
// reduction once.
func TheoreticalScheduleOpts(g *dag.Frozen, dopts decompose.Options) ([]int, error) {
	dec := decompose.DecomposeOpts(g, dopts)

	// Step 2: every component must be a bipartite building block whose
	// sources were sources of the remnant.
	for _, c := range dec.Components {
		if !c.FastPath {
			return nil, fmt.Errorf("%w: component %d is not a bipartite building block", ErrNotComposite, c.Index)
		}
	}

	// Step 3: every block must carry a known IC-optimal schedule.
	n := len(dec.Components)
	orders := make([][]int, n)
	profiles := make([][]int, n)
	pt := newProfileTable()
	pids := make([]int, n)
	for i, c := range dec.Components {
		if c.Sub.NumNodes() == 1 {
			// An isolated job: trivially scheduled (it is a dag sink).
			orders[i] = nil
		} else {
			cls, ok := bipartite.Classify(c.Sub)
			if !ok {
				return nil, fmt.Errorf("%w: component %d has no known IC-optimal schedule", ErrUnknownBlock, c.Index)
			}
			orders[i] = cls.SourceOrder
		}
		p, err := EligibilityTrace(c.Sub, orders[i])
		if err != nil {
			return nil, fmt.Errorf("core: component %d: %v", i, err)
		}
		profiles[i] = p
		pids[i] = pt.intern(p)
	}

	// Step 4: all pairs must be comparable under the full priority
	// relation (r = 1 one way or the other). Comparing interned profile
	// pairs keeps this quadratic step cheap.
	distinct := len(pt.profiles)
	for a := 0; a < distinct; a++ {
		for b := 0; b < distinct; b++ {
			if pt.r(a, b) < 1 && pt.r(b, a) < 1 {
				return nil, fmt.Errorf("%w: incomparable building blocks", ErrPriorityConflict)
			}
		}
	}

	// Step 5: the superdag must respect the priorities: every parent
	// block must have full priority over each of its children.
	for i := 0; i < n; i++ {
		for _, j := range dec.Super.Children(i) {
			if pt.r(pids[i], pids[j]) < 1 {
				return nil, fmt.Errorf("%w: block %d precedes block %d without priority over it", ErrPriorityConflict, i, j)
			}
		}
	}

	// Step 6: order the blocks by a stable topological sort of the
	// union of the superdag arcs and the *strict* priority relation
	// (Bi over Bj but not Bj over Bi). The paper phrases this as a
	// stable sort of a topological order; a direct stable sort is
	// unsound, because blocks with degenerate profiles (e.g. isolated
	// jobs) tie with everything, so the tie relation is not transitive
	// and the comparator is not a strict weak order. A stable
	// topological sort of the strict relation — which is a partial
	// order by the transitivity of the priority relation — honours
	// exactly the same constraints.
	topo := dec.Super.Topo()
	strictBefore := func(a, b int) bool { return pt.r(a, b) == 1 && pt.r(b, a) < 1 }
	remaining := make(map[int]int, distinct) // unemitted components per profile
	for _, pid := range pids {
		remaining[pid]++
	}
	superDone := make([]int, n) // processed superdag parents
	emitted := make([]bool, n)
	var sorted []int
	for len(sorted) < n {
		picked := -1
		for _, ci := range topo {
			if emitted[ci] || superDone[ci] != dec.Super.InDegree(int(ci)) {
				continue
			}
			ready := true
			for qid, cnt := range remaining {
				if cnt > 0 && qid != pids[ci] && strictBefore(qid, pids[ci]) {
					ready = false
					break
				}
			}
			if ready {
				picked = int(ci)
				break
			}
		}
		if picked == -1 {
			return nil, fmt.Errorf("%w: strict priorities conflict with the superdag", ErrPriorityConflict)
		}
		emitted[picked] = true
		remaining[pids[picked]]--
		for _, c := range dec.Super.Children(picked) {
			superDone[c]++
		}
		sorted = append(sorted, picked)
	}
	order := make([]int, 0, g.NumNodes())
	for _, ci := range sorted {
		c := dec.Components[ci]
		for _, si := range orders[ci] {
			order = append(order, c.Orig[si])
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		if g.IsSink(v) {
			order = append(order, v)
		}
	}
	if err := ValidateExecutionOrder(g, order); err != nil {
		// The stable sort can in principle contradict the topological
		// constraints only if Step 5's check was insufficient for this
		// dag; surface that as a priority conflict rather than panic.
		return nil, fmt.Errorf("%w: sorted schedule violates dependencies: %v", ErrPriorityConflict, err)
	}
	return order, nil
}

// Sentinel failure modes of the theoretical algorithm.
var (
	// ErrNotComposite marks dags that do not decompose into bipartite
	// building blocks (Step 2).
	ErrNotComposite = fmt.Errorf("core: dag is not composite")
	// ErrUnknownBlock marks building blocks outside the families with
	// known IC-optimal schedules (Step 3).
	ErrUnknownBlock = fmt.Errorf("core: unknown building block")
	// ErrPriorityConflict marks priority incomparability or a superdag
	// that contradicts the priorities (Steps 4-5).
	ErrPriorityConflict = fmt.Errorf("core: priority conflict")
)
