// The FIFO reference schedule and the eligibility traces E(t) used
// throughout the evaluation (Fig. 4). See doc.go for the package
// overview.

package core

import (
	"fmt"

	"repro/internal/dag"
)

// EligibilityTrace executes the jobs of g in the given order and returns
// E, where E[t] is the number of eligible jobs after the first t
// executions (E[0] is the number of sources). A job is eligible when it
// is unexecuted and all of its parents have been executed. The order may
// cover a prefix of the dag (e.g. only non-sinks); it must never execute
// a job before its parents, or an error is returned.
func EligibilityTrace(g *dag.Frozen, order []int) ([]int, error) {
	n := g.NumNodes()
	remaining := make([]int, n) // unexecuted parents per job
	executed := make([]bool, n)
	eligible := 0
	for v := 0; v < n; v++ {
		remaining[v] = g.InDegree(v)
		if remaining[v] == 0 {
			eligible++
		}
	}
	trace := make([]int, 0, len(order)+1)
	trace = append(trace, eligible)
	for t, v := range order {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("core: order[%d] = %d out of range", t, v)
		}
		if executed[v] {
			return nil, fmt.Errorf("core: job %s executed twice (step %d)", g.Name(v), t)
		}
		if remaining[v] != 0 {
			return nil, fmt.Errorf("core: job %s executed at step %d with %d unexecuted parents",
				g.Name(v), t, remaining[v])
		}
		executed[v] = true
		eligible--
		for _, c := range g.Children(v) {
			remaining[c]--
			if remaining[c] == 0 {
				eligible++
			}
		}
		trace = append(trace, eligible)
	}
	return trace, nil
}

// ValidateExecutionOrder checks that order is a permutation of all jobs
// of g that respects every dependency.
func ValidateExecutionOrder(g *dag.Frozen, order []int) error {
	if len(order) != g.NumNodes() {
		return fmt.Errorf("core: order has %d jobs, dag has %d", len(order), g.NumNodes())
	}
	_, err := EligibilityTrace(g, order)
	return err
}

// FIFOSchedule returns the paper's FIFO reference order: jobs are
// executed in the order in which they become eligible. Sources enter the
// queue in node-index order (the order jobs appear in the DAGMan input
// file); a job enters the queue the moment its last parent executes,
// with simultaneous arrivals ordered by node index.
func FIFOSchedule(g *dag.Frozen) []int {
	n := g.NumNodes()
	remaining := make([]int, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		remaining[v] = g.InDegree(v)
		if remaining[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		order = append(order, u)
		// Children are scanned in adjacency order; within one
		// completion event that equals arc insertion order, and the
		// workload builders insert arcs in node-index order.
		for _, c := range g.Children(u) {
			remaining[c]--
			if remaining[c] == 0 {
				queue = append(queue, int(c))
			}
		}
	}
	if len(order) != n {
		panic("core: FIFOSchedule on cyclic graph")
	}
	return order
}

// TraceDifference returns, for two complete execution orders of g, the
// per-step difference E_a(t) - E_b(t) — the quantity plotted in Fig. 4
// with a = PRIO and b = FIFO.
func TraceDifference(g *dag.Frozen, a, b []int) ([]int, error) {
	ta, err := EligibilityTrace(g, a)
	if err != nil {
		return nil, fmt.Errorf("core: first order invalid: %w", err)
	}
	tb, err := EligibilityTrace(g, b)
	if err != nil {
		return nil, fmt.Errorf("core: second order invalid: %w", err)
	}
	if len(ta) != len(tb) {
		return nil, fmt.Errorf("core: traces cover %d and %d steps", len(ta), len(tb))
	}
	diff := make([]int, len(ta))
	for i := range ta {
		diff[i] = ta[i] - tb[i]
	}
	return diff, nil
}
