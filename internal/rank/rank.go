// Package rank is the static-priority tier of the policy architecture:
// a Ranker turns a frozen dag into a total order over its jobs, and the
// simulator's runtime tier (internal/sim) executes any such order
// through one oblivious zero-alloc state machine. Keeping the two tiers
// apart is what lets every order-driven policy family — the paper's
// PRIO, classic critical path, HEFT-style upward ranks, Graphene-style
// troublesome-subset packing, and ad-hoc tie-breaker chains — inherit
// the order-free fast kernel without touching it.
//
// Rankers are built from Components: a Component scores every job with
// an int64 (higher runs earlier) and a chain of components sorts jobs
// lexicographically — the first component decides, later components
// break its ties, and the job index breaks whatever survives, so a
// chain's order is a pure function of the dag regardless of the sort
// algorithm behind it. The spec grammar mirrors that structure:
//
//	prio              the prio tool's full heuristic pipeline
//	critpath          chain(critpath): longest path to a sink, descending
//	heft              chain(heft): Zhang et al. upward rank, descending
//	graphene          chain(trouble, critpath, outdeg)
//	C1+C2+...+Ck      explicit component chain; tiebreak=NAME is an
//	                  accepted alias for a component used as a tie-breaker
//
// Component names: critpath, heft, outdeg, trouble.
package rank

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dag"
)

// Ranker produces a total order over the jobs of a dag: Order(g)[i] is
// the job that runs with priority i. Orders must be pure functions of
// the dag — the runtime tier computes them once per sweep and replays
// them across thousands of replications.
type Ranker interface {
	// Name is the runtime policy name the simulator reports (e.g.
	// "PRIO", "HEFT", "HEFT+OUTDEG").
	Name() string
	// Order returns a permutation of [0, g.NumNodes()).
	Order(g *dag.Frozen) []int
}

// Component scores every job of a dag; a higher score runs earlier.
// Scores are int64 so lexicographic chains compare exactly — float
// heuristics quantize into fixed point at a documented scale instead of
// leaking rounding into tie-breaking.
type Component struct {
	Name  string
	Score func(g *dag.Frozen) []int64
}

// fixedScale converts a float heuristic into the int64 score space:
// 32 fractional bits. Upward ranks are bounded by the node count, so
// even a million-node dag stays far below the int64 ceiling.
const fixedScale = 1 << 32

// components is the registry, keyed by spec name. Registration order is
// irrelevant; Components() sorts.
var components = map[string]Component{
	"critpath": {Name: "critpath", Score: critpathScore},
	"heft":     {Name: "heft", Score: heftScore},
	"outdeg":   {Name: "outdeg", Score: outdegScore},
	"trouble":  {Name: "trouble", Score: troubleScore},
}

// Components lists the registered component names, sorted.
func Components() []string {
	out := make([]string, 0, len(components))
	for name := range components {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Names lists the named ranker families New accepts, in grammar order.
// Component chains (C1+C2+...) are accepted on top of these.
func Names() []string { return []string{"prio", "critpath", "heft", "graphene"} }

// New resolves a spec — a named family from Names() or a '+'-joined
// component chain — into a Ranker. The prio pipeline takes its options
// from opts; component chains ignore it.
func New(spec string, opts core.Options) (Ranker, error) {
	switch spec {
	case "prio":
		return prioRanker{opts: opts}, nil
	case "critpath":
		return chain{name: "CRITPATH", comps: []Component{components["critpath"]}}, nil
	case "heft":
		return chain{name: "HEFT", comps: []Component{components["heft"]}}, nil
	case "graphene":
		// Grandl et al.'s packing insight, projected onto a single
		// machine group: schedule the troublesome core (the jobs on a
		// longest path) before everything else, then fall back to
		// critical-path levels and fan-out.
		return chain{name: "GRAPHENE", comps: []Component{
			components["trouble"], components["critpath"], components["outdeg"],
		}}, nil
	}
	if !strings.Contains(spec, "+") {
		return nil, fmt.Errorf("rank: unknown ranker %q (want %s, or a C1+C2 chain of %s)",
			spec, strings.Join(Names(), ", "), strings.Join(Components(), ", "))
	}
	parts := strings.Split(spec, "+")
	comps := make([]Component, 0, len(parts))
	names := make([]string, 0, len(parts))
	for _, part := range parts {
		name := strings.TrimPrefix(part, "tiebreak=")
		c, ok := components[name]
		if !ok {
			return nil, fmt.Errorf("rank: chain %q: unknown component %q (want %s)",
				spec, part, strings.Join(Components(), ", "))
		}
		comps = append(comps, c)
		names = append(names, strings.ToUpper(name))
	}
	return chain{name: strings.Join(names, "+"), comps: comps}, nil
}

// prioRanker runs the full prio heuristic pipeline (the paper's tool).
type prioRanker struct{ opts core.Options }

func (r prioRanker) Name() string { return "PRIO" }

func (r prioRanker) Order(g *dag.Frozen) []int {
	return core.PrioritizeOpts(g, r.opts).Order
}

// chain sorts jobs by a lexicographic component comparison: higher
// score first at each position, job index as the final tie-breaker.
type chain struct {
	name  string
	comps []Component
}

func (c chain) Name() string { return c.name }

func (c chain) Order(g *dag.Frozen) []int {
	n := g.NumNodes()
	scores := make([][]int64, len(c.comps))
	for i, comp := range c.comps {
		scores[i] = comp.Score(g)
		if len(scores[i]) != n {
			panic(fmt.Sprintf("rank: component %s scored %d jobs, dag has %d", comp.Name, len(scores[i]), n))
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		u, v := order[a], order[b]
		for _, s := range scores {
			if s[u] != s[v] {
				return s[u] > s[v]
			}
		}
		return u < v
	})
	return order
}

// critpathScore is the classic critical-path heuristic: the length (in
// arcs) of the longest path from the job to a sink, so deep work drains
// first. Identical to the height the simulator's original CRITPATH
// policy counting-sorted on.
func critpathScore(g *dag.Frozen) []int64 {
	height, _ := g.Reverse().Levels()
	out := make([]int64, len(height))
	for v, h := range height {
		out[v] = int64(h)
	}
	return out
}

// heftScore is the upward rank of Zhang et al.'s HEFT-style priorities,
// adapted to the paper's grid model where every job has the same unit
// cost expectation and the pool is homogeneous: classic max-based
// upward rank then degenerates into the critical-path height, so this
// uses the averaged recurrence
//
//	ru(v) = 1 + mean over children c of ru(c)   (sinks: ru = 1)
//
// — the expected remaining work of a random downward walk — which keeps
// HEFT's "heavy subtree first" character distinct from pure path
// length: a job feeding many deep children outranks a job feeding one
// path of the same height. Scores are quantized at 32 fractional bits;
// the float recurrence itself is deterministic (children are summed in
// CSR order, one statement per operation so no FMA contraction).
func heftScore(g *dag.Frozen) []int64 {
	n := g.NumNodes()
	ru := make([]float64, n)
	topo := g.Topo()
	for i := n - 1; i >= 0; i-- {
		v := int(topo[i])
		children := g.Children(v)
		if len(children) == 0 {
			ru[v] = 1
			continue
		}
		sum := 0.0
		for _, c := range children {
			sum += ru[c]
		}
		mean := sum / float64(len(children))
		ru[v] = 1 + mean
	}
	out := make([]int64, n)
	for v, r := range ru {
		out[v] = int64(math.Round(r * fixedScale))
	}
	return out
}

// outdegScore ranks by fan-out: the paper's own intuition (eligibility
// maximization) reduced to its cheapest local signal.
func outdegScore(g *dag.Frozen) []int64 {
	n := g.NumNodes()
	out := make([]int64, n)
	for v := 0; v < n; v++ {
		out[v] = int64(g.OutDegree(v))
	}
	return out
}

// troubleScore marks the troublesome core: 1 for jobs on a longest
// path through the dag (depth + height equals the critical-path length
// in arcs), 0 elsewhere. On its own it is a coarse two-class split; in
// the graphene chain it front-loads exactly the jobs that gate the
// makespan.
func troubleScore(g *dag.Frozen) []int64 {
	depth, _ := g.Levels()
	height, _ := g.Reverse().Levels()
	cp := 0
	for _, d := range depth {
		if d > cp {
			cp = d
		}
	}
	out := make([]int64, len(depth))
	for v := range out {
		if depth[v]+height[v] == cp {
			out[v] = 1
		}
	}
	return out
}
