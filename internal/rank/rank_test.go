package rank

import (
	"reflect"
	"sort"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/workloads"
)

// buildDag assembles a small dag from an arc list over n nodes.
func buildDag(t *testing.T, n int, arcs [][2]int) *dag.Frozen {
	t.Helper()
	b := dag.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		b.AddNode("j" + strconv.Itoa(i))
	}
	for _, a := range arcs {
		b.MustAddArc(a[0], a[1])
	}
	return b.MustFreeze()
}

func isPermutation(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// TestNamedFamilies: every family in Names() resolves, produces a
// permutation on a paper dag, and is deterministic across calls.
func TestNamedFamilies(t *testing.T) {
	g := workloads.AIRSN(10)
	for _, name := range Names() {
		r, err := New(name, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Name() == "" {
			t.Fatalf("%s: empty runtime name", name)
		}
		a, b := r.Order(g), r.Order(g)
		if !isPermutation(a, g.NumNodes()) {
			t.Fatalf("%s: not a permutation: %v", name, a)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: order not deterministic", name)
		}
	}
}

// TestPrioMatchesCore: the "prio" ranker is the core pipeline's order,
// bit for bit.
func TestPrioMatchesCore(t *testing.T) {
	g := workloads.Inspiral(8)
	r, err := New("prio", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Order(g), core.Prioritize(g).Order; !reflect.DeepEqual(got, want) {
		t.Fatalf("prio ranker diverges from core.Prioritize:\n got %v\nwant %v", got, want)
	}
	if r.Name() != "PRIO" {
		t.Fatalf("Name = %q, want PRIO", r.Name())
	}
}

// TestCritpathMatchesCountingSort pins the critpath chain to the
// reference the simulator originally counting-sorted: height
// descending, index ascending. This is the bit-identity bridge that
// lets the factory swap its bespoke sort for the ranker tier without
// moving a single golden.
func TestCritpathMatchesCountingSort(t *testing.T) {
	for _, g := range []*dag.Frozen{
		workloads.AIRSN(10),
		workloads.Montage(25, 3),
		buildDag(t, 6, [][2]int{{0, 2}, {1, 2}, {2, 3}, {2, 4}, {4, 5}}),
	} {
		height, _ := g.Reverse().Levels()
		want := make([]int, g.NumNodes())
		for i := range want {
			want[i] = i
		}
		sort.SliceStable(want, func(a, b int) bool { return height[want[a]] > height[want[b]] })

		r, err := New("critpath", core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Order(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("critpath chain diverges from height counting sort:\n got %v\nwant %v", got, want)
		}
	}
}

// TestHeftDivergesFromCritpath: the averaged upward rank must order a
// heavy multi-branch subtree above an equal-height single path — the
// behaviour that distinguishes HEFT-style ranks from pure path length
// under the model's unit costs.
func TestHeftDivergesFromCritpath(t *testing.T) {
	// Node 0 heads a single deep path (0-1-2-3 plus a shallow spur 4);
	// node 5 heads two parallel deep paths (5-6-7 and 5-8-9, each
	// extended one more: 7-10, 9-11). Heights: 0 and 5 both reach
	// depth 3... build so heights tie but mean ranks differ.
	g := buildDag(t, 12, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {0, 4}, // chain + shallow spur
		{5, 6}, {6, 7}, {7, 10}, {5, 8}, {8, 9}, {9, 11}, // two deep branches
	})
	// Both heads reach depth 3 (0-1-2-3 and 5-6-7-10), so critpath ties
	// them and falls back to the index; the fixture depends on that tie.
	heightScore := critpathScore(g)
	if heightScore[0] != 3 || heightScore[5] != 3 {
		t.Fatalf("fixture heights: h0=%d h5=%d, want 3 and 3", heightScore[0], heightScore[5])
	}
	cp, _ := New("critpath", core.Options{})
	heft, _ := New("heft", core.Options{})
	cpo, ho := cp.Order(g), heft.Order(g)
	pos := func(order []int, v int) int {
		for i, u := range order {
			if u == v {
				return i
			}
		}
		return -1
	}
	// critpath ties 0 and 5 at height 3 and breaks by index: 0 first.
	if pos(cpo, 0) > pos(cpo, 5) {
		t.Fatalf("critpath order: node 0 should precede node 5 on the index tiebreak: %v", cpo)
	}
	// heft ranks 5 higher: ru(0) = 1 + (ru(1)+ru(4))/2 = 1 + (3+1)/2 = 3,
	// ru(5) = 1 + (ru(6)+ru(8))/2 = 1 + (3+3)/2 = 4.
	if pos(ho, 5) > pos(ho, 0) {
		t.Fatalf("heft order: node 5 (two deep branches) should precede node 0 (one): %v", ho)
	}
}

// TestGrapheneFrontLoadsTroublesomeCore: every job on a longest path
// precedes every job off it in the graphene order.
func TestGrapheneFrontLoadsTroublesomeCore(t *testing.T) {
	for _, g := range []*dag.Frozen{
		workloads.AIRSN(10),
		workloads.Inspiral(8),
	} {
		trouble := troubleScore(g)
		r, err := New("graphene", core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		order := r.Order(g)
		if r.Name() != "GRAPHENE" {
			t.Fatalf("Name = %q, want GRAPHENE", r.Name())
		}
		seenOffCore := false
		for _, v := range order {
			if trouble[v] == 0 {
				seenOffCore = true
			} else if seenOffCore {
				t.Fatalf("troublesome job %d scheduled after an off-core job: %v", v, order)
			}
		}
		if !seenOffCore {
			t.Fatalf("fixture dag has no off-core jobs; the test is vacuous")
		}
	}
}

// TestChains: explicit chains parse, tiebreak= is an accepted alias,
// the runtime name reflects the chain, and tie-breaking actually
// changes the order relative to the bare first component.
func TestChains(t *testing.T) {
	g := workloads.AIRSN(10)
	a, err := New("heft+outdeg", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("heft+tiebreak=outdeg", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "HEFT+OUTDEG" || b.Name() != "HEFT+OUTDEG" {
		t.Fatalf("chain names = %q, %q; want HEFT+OUTDEG", a.Name(), b.Name())
	}
	if !reflect.DeepEqual(a.Order(g), b.Order(g)) {
		t.Fatal("tiebreak= alias changed the order")
	}
	// A chain of one named component followed by others is still a
	// permutation and deterministic across every registered component.
	for _, spec := range []string{"critpath+outdeg", "trouble+heft", "outdeg+trouble+critpath+heft"} {
		r, err := New(spec, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if !isPermutation(r.Order(g), g.NumNodes()) {
			t.Fatalf("%s: not a permutation", spec)
		}
	}
}

// TestChainTiebreakRefines: appending a tie-breaker never reorders
// jobs the first component already separates — it only refines ties.
func TestChainTiebreakRefines(t *testing.T) {
	g := workloads.Montage(25, 3)
	base, _ := New("critpath", core.Options{})
	chained, _ := New("critpath+outdeg", core.Options{})
	score := critpathScore(g)
	bo, co := base.Order(g), chained.Order(g)
	for i := 1; i < len(co); i++ {
		if score[co[i-1]] < score[co[i]] {
			t.Fatalf("chain broke the primary order at %d: %v before %v", i, co[i-1], co[i])
		}
	}
	// Same multiset of scores position by position as the base order.
	for i := range bo {
		if score[bo[i]] != score[co[i]] {
			t.Fatalf("chain moved a job across a score boundary at position %d", i)
		}
	}
}

// TestErrors: unknown families, unknown chain components, and empty
// chain elements are rejected with the component vocabulary named.
func TestErrors(t *testing.T) {
	for _, bad := range []string{"", "nope", "heft+nope", "tiebreak=outdeg+", "+", "prio+outdeg"} {
		if _, err := New(bad, core.Options{}); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
}

// TestRegistries: Names and Components are stable, sorted where
// documented, and every component resolves standalone inside a chain.
func TestRegistries(t *testing.T) {
	if got, want := Names(), []string{"prio", "critpath", "heft", "graphene"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	comps := Components()
	if !sort.StringsAreSorted(comps) {
		t.Fatalf("Components() not sorted: %v", comps)
	}
	if got, want := comps, []string{"critpath", "heft", "outdeg", "trouble"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Components() = %v, want %v", got, want)
	}
	g := workloads.AIRSN(20)
	for _, c := range comps {
		r, err := New(c+"+"+comps[0], core.Options{})
		if err != nil {
			t.Fatalf("chain with %s: %v", c, err)
		}
		if !isPermutation(r.Order(g), g.NumNodes()) {
			t.Fatalf("chain with %s: not a permutation", c)
		}
	}
}
