package bitset

import "math/bits"

// MinSet is a dense bitset over [0, n) specialized for the simulation
// engine's eligible-set pattern: Add and PopMin (extract the minimum
// element) in amortized O(1), with zero steady-state allocations —
// Reset truncates and clears the word array in place.
//
// The minimum is located by scanning words from a hint that only moves
// backward when an Add inserts below it, so the total scan work across
// a run is O(n/64 + adds): each Add can force at most one re-scan of
// the words between the new element and the old hint, and forward
// progress is never repeated. This replaces a balanced-tree priority
// queue (O(log n) per op, one node allocation per insert) in the
// simulator's oblivious policies, where elements are unique ranks in
// [0, n) and only the minimum is ever removed.
type MinSet struct {
	words []uint64
	hint  int // no element below word index hint
	count int
}

// NewMinSet returns an empty MinSet over [0, n).
func NewMinSet(n int) *MinSet {
	s := &MinSet{}
	s.Reset(n)
	return s
}

// Reset empties the set and re-sizes it to [0, n), reusing the backing
// array when it is large enough. The word slice is hoisted to a local
// so the capacity test dominates the reslice and the clear loop — both
// compile without bounds checks, which also keeps callers that inline
// Reset free of inherited check sites.
//
//prio:noalloc
//prio:nobce
//prio:inline
func (s *MinSet) Reset(n int) {
	w := (n + 63) / 64
	if w < 0 {
		// n below -63; the reslice would panic anyway, so the guard only
		// makes the failure explicit (and hands the prover w >= 0).
		panic("bitset: MinSet.Reset with negative size")
	}
	words := s.words
	if cap(words) < w {
		words = make([]uint64, w)
	} else {
		words = words[:w]
		for i := range words {
			words[i] = 0
		}
	}
	s.words = words
	s.hint = w
	s.count = 0
}

// Add inserts i. Adding an element already present is a no-op for set
// membership but must not happen when the caller relies on Len (the
// simulator's ranks are unique, so it never does).
//
// The explicit uint-compared range guard replaces the implicit bounds
// checks on the two word accesses: a negative or too-large i panics
// here just as it would on the indexing itself, and past the guard the
// compiler proves w in-bounds for both the load and the store.
//
//prio:noalloc
//prio:nobce
//prio:inline
func (s *MinSet) Add(i int) {
	words := s.words
	w := uint(i) >> 6
	if w >= uint(len(words)) {
		panic("bitset: MinSet.Add out of range")
	}
	bit := uint64(1) << (uint(i) & 63)
	if words[w]&bit == 0 {
		s.count++
	}
	words[w] |= bit
	if int(w) < s.hint {
		s.hint = int(w)
	}
}

// PopMin removes and returns the smallest element, or ok=false when the
// set is empty.
//
// The word slice is hoisted to a local so the element store cannot be
// seen as aliasing the slice header, and the start index is clamped to
// zero: with 0 <= w < len(words) both provable, the scan compiles
// without bounds checks.
//
//prio:noalloc
//prio:nobce
//prio:inline
func (s *MinSet) PopMin() (int, bool) {
	words := s.words
	w := s.hint
	if w < 0 {
		w = 0
	}
	for ; w < len(words); w++ {
		if word := words[w]; word != 0 {
			s.hint = w
			b := bits.TrailingZeros64(word)
			words[w] = word &^ (1 << uint(b))
			s.count--
			return w<<6 | b, true
		}
	}
	s.hint = len(words)
	return 0, false
}

// Len returns the number of elements.
//
//prio:noalloc
func (s *MinSet) Len() int { return s.count }
