package bitset

import "math/bits"

// MinSet is a dense bitset over [0, n) specialized for the simulation
// engine's eligible-set pattern: Add and PopMin (extract the minimum
// element) in amortized O(1), with zero steady-state allocations —
// Reset truncates and clears the word array in place.
//
// The minimum is located by scanning words from a hint that only moves
// backward when an Add inserts below it, so the total scan work across
// a run is O(n/64 + adds): each Add can force at most one re-scan of
// the words between the new element and the old hint, and forward
// progress is never repeated. This replaces a balanced-tree priority
// queue (O(log n) per op, one node allocation per insert) in the
// simulator's oblivious policies, where elements are unique ranks in
// [0, n) and only the minimum is ever removed.
type MinSet struct {
	words []uint64
	hint  int // no element below word index hint
	count int
}

// NewMinSet returns an empty MinSet over [0, n).
func NewMinSet(n int) *MinSet {
	s := &MinSet{}
	s.Reset(n)
	return s
}

// Reset empties the set and re-sizes it to [0, n), reusing the backing
// array when it is large enough.
//
//prio:noalloc
func (s *MinSet) Reset(n int) {
	w := (n + 63) / 64
	if cap(s.words) < w {
		s.words = make([]uint64, w)
	} else {
		s.words = s.words[:w]
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.hint = w
	s.count = 0
}

// Add inserts i. Adding an element already present is a no-op for set
// membership but must not happen when the caller relies on Len (the
// simulator's ranks are unique, so it never does).
//
//prio:noalloc
func (s *MinSet) Add(i int) {
	w := i >> 6
	bit := uint64(1) << uint(i&63)
	if s.words[w]&bit == 0 {
		s.count++
	}
	s.words[w] |= bit
	if w < s.hint {
		s.hint = w
	}
}

// PopMin removes and returns the smallest element, or ok=false when the
// set is empty.
//
//prio:noalloc
func (s *MinSet) PopMin() (int, bool) {
	for w := s.hint; w < len(s.words); w++ {
		if word := s.words[w]; word != 0 {
			s.hint = w
			b := bits.TrailingZeros64(word)
			s.words[w] = word &^ (1 << uint(b))
			s.count--
			return w<<6 | b, true
		}
	}
	s.hint = len(s.words)
	return 0, false
}

// Len returns the number of elements.
//
//prio:noalloc
func (s *MinSet) Len() int { return s.count }
