package bitset

import (
	"sort"
	"testing"
)

func TestMinSetBasic(t *testing.T) {
	s := NewMinSet(200)
	if _, ok := s.PopMin(); ok {
		t.Fatal("empty set popped a value")
	}
	for _, x := range []int{100, 3, 199, 0, 64, 63} {
		s.Add(x)
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	for _, want := range []int{0, 3, 63, 64, 100, 199} {
		got, ok := s.PopMin()
		if !ok || got != want {
			t.Fatalf("PopMin = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := s.PopMin(); ok {
		t.Fatal("drained set popped a value")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after drain", s.Len())
	}
}

// TestMinSetHintBacktrack exercises the pattern that makes the hint
// subtle: pop past a region, then add below the hint again.
func TestMinSetHintBacktrack(t *testing.T) {
	s := NewMinSet(1024)
	s.Add(900)
	if got, _ := s.PopMin(); got != 900 {
		t.Fatalf("got %d", got)
	}
	s.Add(5) // below the advanced hint
	got, ok := s.PopMin()
	if !ok || got != 5 {
		t.Fatalf("PopMin after backtrack = %d,%v want 5", got, ok)
	}
	// Interleave adds/pops around word boundaries.
	var live []int
	add := func(x int) { s.Add(x); live = append(live, x) }
	pop := func() {
		sort.Ints(live)
		got, ok := s.PopMin()
		if !ok || got != live[0] {
			t.Fatalf("PopMin = %d,%v want %d (live %v)", got, ok, live[0], live)
		}
		live = live[1:]
	}
	add(64)
	add(128)
	pop()
	add(63)
	add(1023)
	pop()
	pop()
	pop()
	if _, ok := s.PopMin(); ok {
		t.Fatal("set should be empty")
	}
}

func TestMinSetResetReuses(t *testing.T) {
	s := NewMinSet(4096)
	for i := 0; i < 4096; i += 7 {
		s.Add(i)
	}
	s.Reset(4096)
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d", s.Len())
	}
	if _, ok := s.PopMin(); ok {
		t.Fatal("Reset left elements behind")
	}
	s.Add(4095)
	if got, _ := s.PopMin(); got != 4095 {
		t.Fatalf("got %d", got)
	}
	// Shrinking reset.
	s.Reset(64)
	s.Add(63)
	if got, _ := s.PopMin(); got != 63 {
		t.Fatalf("got %d after shrink", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Reset(4096)
		s.Add(11)
		s.PopMin()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reset/Add/PopMin allocates %.1f times", allocs)
	}
}

// TestMinSetVersusSort drives a randomized interleaving against a
// sorted-slice oracle.
func TestMinSetVersusSort(t *testing.T) {
	s := NewMinSet(10000)
	seen := make(map[int]bool)
	var live []int
	rng := uint64(12345)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for step := 0; step < 20000; step++ {
		if len(live) == 0 || next(10) < 6 {
			x := next(10000)
			if seen[x] {
				continue
			}
			seen[x] = true
			s.Add(x)
			live = append(live, x)
		} else {
			sort.Ints(live)
			got, ok := s.PopMin()
			if !ok || got != live[0] {
				t.Fatalf("step %d: PopMin = %d,%v want %d", step, got, ok, live[0])
			}
			seen[got] = false
			live = live[1:]
		}
	}
}
