// Package bitset provides a dense, fixed-capacity bit set used throughout
// the scheduler for reachability computations, visited marks, and set
// algebra over job indices. It is deliberately minimal: the scheduler knows
// the universe size (the number of jobs) up front, so the set never grows.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set over the universe [0, Cap()). The zero value is an
// empty set of capacity zero; use New to allocate a set with capacity.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set with capacity for n bits. n must be >= 0.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Cap returns the capacity (the size of the universe) of the set.
func (s *Set) Cap() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom makes s an exact copy of o. The two sets must have equal capacity.
func (s *Set) CopyFrom(o *Set) {
	s.mustMatch(o)
	copy(s.words, o.words)
}

func (s *Set) mustMatch(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, o.n))
	}
}

// UnionWith adds every element of o to s (s |= o).
func (s *Set) UnionWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in o (s &= o).
func (s *Set) IntersectWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// DifferenceWith removes every element of o from s (s &^= o).
func (s *Set) DifferenceWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Intersects reports whether s and o share at least one element.
func (s *Set) Intersects(o *Set) bool {
	s.mustMatch(o)
	for i, w := range o.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in o.
func (s *Set) SubsetOf(o *Set) bool {
	s.mustMatch(o)
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain exactly the same elements.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls f for every element of the set in increasing order. If f
// returns false, iteration stops early.
func (s *Set) ForEach(f func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Elements returns the elements in increasing order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Next returns the smallest element >= i, or -1 if there is none.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// String renders the set as {e1, e2, ...} for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
