package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if s.Cap() != 100 {
		t.Fatalf("Cap = %d, want 100", s.Cap())
	}
}

func TestNewZero(t *testing.T) {
	s := New(0)
	if !s.Empty() || s.Cap() != 0 {
		t.Fatal("zero-capacity set should be empty")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative capacity")
		}
	}()
	New(-1)
}

func TestAddContainsRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("Contains(%d) before Add", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("!Contains(%d) after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, f := range []func(){
		func() { s.Add(10) },
		func() { s.Add(-1) },
		func() { s.Contains(10) },
		func() { s.Remove(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on out-of-range index")
				}
			}()
			f()
		}()
	}
}

func TestClear(t *testing.T) {
	s := New(100)
	for i := 0; i < 100; i += 3 {
		s.Add(i)
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("set not empty after Clear")
	}
	if s.Cap() != 100 {
		t.Fatal("Clear should keep capacity")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(70)
	s.Add(5)
	c := s.Clone()
	c.Add(6)
	if s.Contains(6) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Contains(5) {
		t.Fatal("clone missing original element")
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(70), New(70)
	a.Add(1)
	b.Add(69)
	a.CopyFrom(b)
	if a.Contains(1) || !a.Contains(69) {
		t.Fatal("CopyFrom did not produce exact copy")
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := New(200), New(200)
	for i := 0; i < 200; i += 2 {
		a.Add(i) // evens
	}
	for i := 0; i < 200; i += 3 {
		b.Add(i) // multiples of 3
	}

	u := a.Clone()
	u.UnionWith(b)
	inter := a.Clone()
	inter.IntersectWith(b)
	diff := a.Clone()
	diff.DifferenceWith(b)

	for i := 0; i < 200; i++ {
		even, tri := i%2 == 0, i%3 == 0
		if u.Contains(i) != (even || tri) {
			t.Fatalf("union wrong at %d", i)
		}
		if inter.Contains(i) != (even && tri) {
			t.Fatalf("intersection wrong at %d", i)
		}
		if diff.Contains(i) != (even && !tri) {
			t.Fatalf("difference wrong at %d", i)
		}
	}
}

func TestIntersectsSubsetEqual(t *testing.T) {
	a, b, c := New(64), New(64), New(64)
	a.Add(1)
	a.Add(2)
	b.Add(2)
	c.Add(3)
	if !a.Intersects(b) {
		t.Fatal("a should intersect b")
	}
	if a.Intersects(c) {
		t.Fatal("a should not intersect c")
	}
	if !b.SubsetOf(a) {
		t.Fatal("b should be subset of a")
	}
	if a.SubsetOf(b) {
		t.Fatal("a should not be subset of b")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("set should equal its clone")
	}
	if a.Equal(b) {
		t.Fatal("distinct sets reported equal")
	}
	if a.Equal(New(65)) {
		t.Fatal("sets of different capacity reported equal")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	a, b := New(10), New(20)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	a.UnionWith(b)
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := New(300)
	want := []int{0, 7, 63, 64, 128, 299}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v, want %v", got, want)
		}
	}
	count := 0
	s.ForEach(func(int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d, want 3", count)
	}
}

func TestElements(t *testing.T) {
	s := New(128)
	s.Add(127)
	s.Add(0)
	s.Add(64)
	got := s.Elements()
	want := []int{0, 64, 127}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
}

func TestNext(t *testing.T) {
	s := New(200)
	s.Add(5)
	s.Add(64)
	s.Add(150)
	cases := []struct{ from, want int }{
		{-5, 5}, {0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 150}, {150, 150}, {151, -1}, {200, -1}, {1000, -1},
	}
	for _, c := range cases {
		if got := s.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestNextEmpty(t *testing.T) {
	if got := New(100).Next(0); got != -1 {
		t.Fatalf("Next on empty = %d, want -1", got)
	}
}

func TestString(t *testing.T) {
	s := New(10)
	if got := s.String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
	s.Add(3)
	s.Add(7)
	if got := s.String(); got != "{3, 7}" {
		t.Fatalf("String = %q, want {3, 7}", got)
	}
}

// Property: Count equals the number of distinct inserted elements.
func TestQuickCountMatchesDistinct(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New(1 << 16)
		seen := map[int]bool{}
		for _, r := range raw {
			s.Add(int(r))
			seen[int(r)] = true
		}
		return s.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish identity |A∪B| = |A| + |B| - |A∩B|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := New(1<<16), New(1<<16)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		u := a.Clone()
		u.UnionWith(b)
		i := a.Clone()
		i.IntersectWith(b)
		return u.Count() == a.Count()+b.Count()-i.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: iteration visits exactly the contained elements, ascending.
func TestQuickForEachAscending(t *testing.T) {
	f := func(xs []uint16) bool {
		s := New(1 << 16)
		for _, x := range xs {
			s.Add(int(x))
		}
		prev := -1
		ok := true
		s.ForEach(func(i int) bool {
			if i <= prev || !s.Contains(i) {
				ok = false
				return false
			}
			prev = i
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddDense(b *testing.B) {
	s := New(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(i & (1<<16 - 1))
	}
}

func BenchmarkUnionWith(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a, c := New(1<<16), New(1<<16)
	for i := 0; i < 1<<12; i++ {
		a.Add(r.Intn(1 << 16))
		c.Add(r.Intn(1 << 16))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.UnionWith(c)
	}
}
