package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds in 100 draws", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBoundsAndUniformity(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Intn bucket %d count %d far from expected %v", v, c, want)
		}
	}
}

func TestIntnOne(t *testing.T) {
	r := New(6)
	for i := 0; i < 100; i++ {
		if r.Intn(1) != 0 {
			t.Fatal("Intn(1) must be 0")
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestExpMoments(t *testing.T) {
	r := New(8)
	const n = 300000
	mean := 2.5
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Exp(mean)
		if x < 0 {
			t.Fatalf("Exp returned negative %v", x)
		}
		sum += x
		sumSq += x * x
	}
	m := sum / n
	v := sumSq/n - m*m
	if math.Abs(m-mean) > 0.03*mean {
		t.Fatalf("Exp mean = %v, want ~%v", m, mean)
	}
	// Var of Exp(mean) is mean^2.
	if math.Abs(v-mean*mean) > 0.1*mean*mean {
		t.Fatalf("Exp variance = %v, want ~%v", v, mean*mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Exp(0)")
		}
	}()
	New(1).Exp(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(9)
	const n = 300000
	mu, sigma := 1.0, 0.1
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(mu, sigma)
		sum += x
		sumSq += x * x
	}
	m := sum / n
	v := sumSq/n - m*m
	if math.Abs(m-mu) > 0.002 {
		t.Fatalf("Normal mean = %v, want ~%v", m, mu)
	}
	if math.Abs(v-sigma*sigma) > 0.001 {
		t.Fatalf("Normal variance = %v, want ~%v", v, sigma*sigma)
	}
}

func TestNormalTails(t *testing.T) {
	r := New(10)
	const n = 100000
	beyond3 := 0
	for i := 0; i < n; i++ {
		if math.Abs(r.Normal(0, 1)) > 3 {
			beyond3++
		}
	}
	// P(|Z|>3) ~ 0.0027; allow wide slack.
	if beyond3 < 100 || beyond3 > 600 {
		t.Fatalf("3-sigma tail count %d implausible for N(0,1)", beyond3)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for n := 0; n <= 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(12)
	xs := []int{5, 5, 1, 9, 2, 2, 2}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(xs)
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("Shuffle changed contents: %v", xs)
	}
}

func TestPermUniformity(t *testing.T) {
	// All 6 permutations of 3 elements should appear roughly equally.
	r := New(13)
	counts := map[[3]int]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		p := r.Perm(3)
		counts[[3]int{p[0], p[1], p[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations, want 6", len(counts))
	}
	for p, c := range counts {
		if c < draws/6-800 || c > draws/6+800 {
			t.Fatalf("permutation %v count %d far from %d", p, c, draws/6)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal(1, 0.1)
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(16)
	}
}
