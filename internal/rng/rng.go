// Package rng implements a small, deterministic pseudo-random number
// generator used by the grid simulator. Simulations must be exactly
// reproducible across runs and across machines, and replications must be
// statistically independent when executed in parallel, so we implement
// xoshiro256++ seeded through splitmix64 rather than relying on the
// process-global math/rand state.
package rng

import "math"

// Source is a xoshiro256++ generator. It is not safe for concurrent use;
// give each goroutine its own Source (see Split).
type Source struct {
	s [4]uint64
}

// splitmix64 advances the seeding state and returns the next output. It is
// the recommended seeder for the xoshiro family: it guarantees that the
// four state words are well distributed even for small seeds.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Distinct seeds yield
// independent-looking streams.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets r in place to the exact state New(seed) would produce,
// without allocating. The simulation engine keeps one Source per worker
// and reseeds it for each replication, so the hot path never allocates
// a generator while every replication still sees the stream its
// pre-derived seed defines.
//
//prio:noalloc
func (r *Source) Reseed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// The all-zero state is a fixed point of xoshiro; splitmix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split derives a new independent Source from r. The derived stream is
// seeded from fresh output of r, so repeated Splits give distinct streams;
// this is how the experiment driver hands one Source to each replication.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// simple modulo rejection keeps exact uniformity.
	bound := uint64(n)
	limit := -bound % bound // = 2^64 mod n
	for {
		v := r.Uint64()
		if v >= limit {
			return int(v % bound)
		}
	}
}

// Exp returns an exponentially distributed float64 with the given mean
// (rate 1/mean), via inversion. mean must be > 0.
func (r *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	// 1-Float64() is in (0,1], avoiding log(0).
	return -mean * math.Log(1-r.Float64())
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation, via the Box-Muller transform (polar would save a
// log but costs rejection; the simulator is not RNG-bound).
func (r *Source) Normal(mean, stddev float64) float64 {
	u1 := 1 - r.Float64() // (0,1]
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *Source) Shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
