package bipartite

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/rng"
)

func TestComposeEmpty(t *testing.T) {
	g, err := Compose(nil)
	if err != nil || g.NumNodes() != 0 {
		t.Fatalf("empty composition = %v, %v", g, err)
	}
}

func TestComposeSingle(t *testing.T) {
	g, err := Compose([]*dag.Frozen{NewW(2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 || g.NumArcs() != 4 {
		t.Fatalf("single block composition changed shape: %d nodes %d arcs", g.NumNodes(), g.NumArcs())
	}
}

func TestComposeWIntoM(t *testing.T) {
	// (1,3)-W (1 source, 3 sinks) into (1,3)-M (3 sources, 1 sink):
	// the three W sinks become the three M sources -> a 5-node
	// fork-join.
	g, err := Compose([]*dag.Frozen{NewW(1, 3), NewM(1, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %d, want 5", g.NumNodes())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Fatalf("fork-join shape wrong: %d sources, %d sinks", len(g.Sources()), len(g.Sinks()))
	}
	if g.CriticalPathLength() != 3 {
		t.Fatalf("critical path = %d, want 3", g.CriticalPathLength())
	}
}

func TestComposePartialIdentification(t *testing.T) {
	// W(1,2) has 2 sinks; M(1,3) needs 3 sources, so only 2 identify
	// and the third stays a fresh source.
	g, err := Compose([]*dag.Frozen{NewW(1, 2), NewM(1, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Sources()) != 2 { // the W source + the unmatched M source
		t.Fatalf("sources = %d, want 2", len(g.Sources()))
	}
}

func TestRandomCompositeValidAndSchedulable(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		g, err := RandomComposite(r, 1+r.Intn(4))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if g.NumNodes() == 0 {
			t.Fatalf("trial %d: empty composite", trial)
		}
	}
}

func TestRandomBlockAlwaysClassifies(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 200; trial++ {
		b := RandomBlock(r)
		if _, ok := Classify(b); !ok {
			t.Fatalf("trial %d: random block not classified: %v", trial, b.Arcs())
		}
	}
}
