package bipartite

import (
	"fmt"
	"testing"

	"repro/internal/dag"
	"repro/internal/rng"
)

// sinkProfile returns, for a bipartite dag and a source execution order,
// the number of eligible sinks after each prefix of the order (index x =
// x sources executed).
func sinkProfile(g *dag.Frozen, order []int) []int {
	executed := make(map[int]bool)
	prof := make([]int, len(order)+1)
	for x, u := range order {
		_ = x
		executed[u] = true
		count := 0
		for _, v := range g.Sinks() {
			all := true
			for _, p := range g.Parents(int(v)) {
				if !executed[int(p)] {
					all = false
					break
				}
			}
			if all {
				count++
			}
		}
		prof[x+1] = count
	}
	return prof
}

// bestProfile computes, for every x, the maximum over all source subsets
// of size x of the number of enabled sinks — the IC-optimality bound —
// by exhaustive search (use only for tiny dags).
func bestProfile(g *dag.Frozen, sources []int32) []int {
	s := len(sources)
	best := make([]int, s+1)
	for mask := 0; mask < 1<<s; mask++ {
		executed := make(map[int]bool)
		size := 0
		for i := 0; i < s; i++ {
			if mask&(1<<i) != 0 {
				executed[int(sources[i])] = true
				size++
			}
		}
		count := 0
		for _, v := range g.Sinks() {
			all := true
			for _, p := range g.Parents(int(v)) {
				if !executed[int(p)] {
					all = false
					break
				}
			}
			if all {
				count++
			}
		}
		if count > best[size] {
			best[size] = count
		}
	}
	return best
}

// assertICOptimal checks that the classification's source order achieves
// the exhaustive-search optimum at every step.
func assertICOptimal(t *testing.T, g *dag.Frozen, c Classification) {
	t.Helper()
	got := sinkProfile(g, c.SourceOrder)
	want := bestProfile(g, g.Sources())
	for x := range got {
		if got[x] != want[x] {
			t.Fatalf("%v order %v: E(%d) = %d, optimum %d", c.Family, c.SourceOrder, x, got[x], want[x])
		}
	}
}

func TestFig2W12(t *testing.T) {
	g := NewW(1, 2)
	c, ok := Classify(g)
	if !ok || c.Family != WDag || c.S != 1 || c.T != 2 {
		t.Fatalf("Classify((1,2)-W) = %+v, %v", c, ok)
	}
	assertICOptimal(t, g, c)
}

func TestFig2W22(t *testing.T) {
	g := NewW(2, 2)
	c, ok := Classify(g)
	if !ok || c.Family != WDag || c.S != 2 || c.T != 2 {
		t.Fatalf("Classify((2,2)-W) = %+v, %v", c, ok)
	}
	if g.NumNodes() != 5 { // 2 sources + 3 sinks
		t.Fatalf("(2,2)-W has %d nodes", g.NumNodes())
	}
	assertICOptimal(t, g, c)
}

func TestFig2M15(t *testing.T) {
	g := NewM(1, 5)
	c, ok := Classify(g)
	if !ok || c.Family != MDag || c.S != 1 || c.T != 5 {
		t.Fatalf("Classify((1,5)-M) = %+v, %v", c, ok)
	}
	if len(g.Sources()) != 5 || len(g.Sinks()) != 1 {
		t.Fatal("(1,5)-M shape wrong")
	}
	assertICOptimal(t, g, c)
}

func TestFig2M25(t *testing.T) {
	g := NewM(2, 5)
	c, ok := Classify(g)
	if !ok || c.Family != MDag || c.S != 2 || c.T != 5 {
		t.Fatalf("Classify((2,5)-M) = %+v, %v", c, ok)
	}
	if len(g.Sources()) != 9 || len(g.Sinks()) != 2 {
		t.Fatal("(2,5)-M shape wrong: want 9 sources, 2 sinks")
	}
	assertICOptimal(t, g, c)
	// The grouped order must complete one sink after 5 sources.
	prof := sinkProfile(g, c.SourceOrder)
	if prof[5] != 1 || prof[9] != 2 {
		t.Fatalf("(2,5)-M profile = %v", prof)
	}
}

func TestFig2Clique3(t *testing.T) {
	g := NewClique(3, 3)
	c, ok := Classify(g)
	if !ok || c.Family != CliqueDag || c.S != 3 || c.T != 3 {
		t.Fatalf("Classify(3-Clique) = %+v, %v", c, ok)
	}
	assertICOptimal(t, g, c)
	prof := sinkProfile(g, c.SourceOrder)
	if prof[2] != 0 || prof[3] != 3 {
		t.Fatalf("clique profile = %v", prof)
	}
}

func TestFig2Cycle4(t *testing.T) {
	g := NewCycle(4)
	c, ok := Classify(g)
	if !ok || c.Family != CycleDag || c.S != 4 {
		t.Fatalf("Classify(4-Cycle) = %+v, %v", c, ok)
	}
	assertICOptimal(t, g, c)
	prof := sinkProfile(g, c.SourceOrder)
	want := []int{0, 0, 1, 2, 4}
	for i := range want {
		if prof[i] != want[i] {
			t.Fatalf("cycle profile = %v, want %v", prof, want)
		}
	}
}

func TestFig2N4(t *testing.T) {
	g := NewN(4)
	c, ok := Classify(g)
	if !ok || c.Family != NDag || c.S != 4 {
		t.Fatalf("Classify(4-N) = %+v, %v", c, ok)
	}
	assertICOptimal(t, g, c)
	prof := sinkProfile(g, c.SourceOrder)
	for x := 0; x <= 4; x++ {
		if prof[x] != x {
			t.Fatalf("N profile = %v, want identity", prof)
		}
	}
}

func TestClassifyAllFamilySizes(t *testing.T) {
	cases := []struct {
		name   string
		g      *dag.Frozen
		family Family
		s, t   int
	}{
		{"W(3,2)", NewW(3, 2), WDag, 3, 2},
		{"W(2,3)", NewW(2, 3), WDag, 2, 3},
		{"W(4,3)", NewW(4, 3), WDag, 4, 3},
		{"W(1,4)", NewW(1, 4), WDag, 1, 4},
		{"M(3,2)", NewM(3, 2), MDag, 3, 2},
		{"M(2,3)", NewM(2, 3), MDag, 2, 3},
		{"M(4,2)", NewM(4, 2), MDag, 4, 2},
		{"N(2)", NewN(2), NDag, 2, 2},
		{"N(3)", NewN(3), NDag, 3, 3},
		{"N(6)", NewN(6), NDag, 6, 6},
		{"Cycle(3)", NewCycle(3), CycleDag, 3, 3},
		{"Cycle(5)", NewCycle(5), CycleDag, 5, 5},
		{"Clique(2,4)", NewClique(2, 4), CliqueDag, 2, 4},
		{"Clique(4,2)", NewClique(4, 2), CliqueDag, 4, 2},
		{"Clique(2,2)", NewCycle(2), CliqueDag, 2, 2}, // 2-Cycle == 2-Clique
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, ok := Classify(tc.g)
			if !ok {
				t.Fatalf("not classified")
			}
			if c.Family != tc.family || c.S != tc.s || c.T != tc.t {
				t.Fatalf("got %v(%d,%d), want %v(%d,%d)", c.Family, c.S, c.T, tc.family, tc.s, tc.t)
			}
			if len(c.SourceOrder) != len(tc.g.Sources()) {
				t.Fatalf("order covers %d of %d sources", len(c.SourceOrder), len(tc.g.Sources()))
			}
			seen := map[int]bool{}
			for _, u := range c.SourceOrder {
				if seen[u] || !tc.g.IsSource(u) {
					t.Fatalf("order %v is not a source permutation", c.SourceOrder)
				}
				seen[u] = true
			}
			if tc.g.NumNodes() <= 14 {
				assertICOptimal(t, tc.g, c)
			}
		})
	}
}

func TestClassifyRejectsNonBipartite(t *testing.T) {
	g := dag.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.MustAddArc(a, b)
	g.MustAddArc(b, c)
	if _, ok := Classify(g.MustFreeze()); ok {
		t.Fatal("3-chain classified")
	}
}

func TestClassifyRejectsDisconnected(t *testing.T) {
	g := dag.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	c, d := g.AddNode("c"), g.AddNode("d")
	g.MustAddArc(a, b)
	g.MustAddArc(c, d)
	if _, ok := Classify(g.MustFreeze()); ok {
		t.Fatal("disconnected dag classified")
	}
}

func TestClassifyRejectsIrregular(t *testing.T) {
	// Two sources with different out-degrees sharing one sink, extra
	// private sinks — not in any family.
	g := dag.New()
	u1, u2 := g.AddNode("u1"), g.AddNode("u2")
	v1, v2, v3, v4 := g.AddNode("v1"), g.AddNode("v2"), g.AddNode("v3"), g.AddNode("v4")
	g.MustAddArc(u1, v1)
	g.MustAddArc(u1, v2)
	g.MustAddArc(u1, v3)
	g.MustAddArc(u2, v3)
	g.MustAddArc(u2, v4)
	if c, ok := Classify(g.MustFreeze()); ok {
		t.Fatalf("irregular dag classified as %v", c.Family)
	}
}

func TestClassifyRejectsThreeParentSink(t *testing.T) {
	g := dag.New()
	u1, u2, u3 := g.AddNode("u1"), g.AddNode("u2"), g.AddNode("u3")
	v1, v2, v3, v4 := g.AddNode("v1"), g.AddNode("v2"), g.AddNode("v3"), g.AddNode("v4")
	// each source: one private + the shared triple sink
	g.MustAddArc(u1, v1)
	g.MustAddArc(u2, v2)
	g.MustAddArc(u3, v3)
	g.MustAddArc(u1, v4)
	g.MustAddArc(u2, v4)
	g.MustAddArc(u3, v4)
	if c, ok := Classify(g.MustFreeze()); ok {
		t.Fatalf("triple-shared-sink dag classified as %v", c.Family)
	}
}

func TestClassifyRejectsStarOfW(t *testing.T) {
	// Three sources all sharing one sink pairwise is impossible with one
	// sink; instead: a "Y" of W links (source u0 shares a distinct sink
	// with each of u1, u2, u3) — the link structure is a star, not a path.
	g := dag.New()
	var u [4]int
	for i := range u {
		u[i] = g.AddNode(fmt.Sprintf("u%d", i))
	}
	// shared sinks s1, s2, s3 and enough private sinks to make degrees
	// uniform (t = 3): u0 shares with u1,u2,u3 -> u0 has 3 shared sinks;
	// u1..u3 get 2 private each.
	s1, s2, s3 := g.AddNode("s1"), g.AddNode("s2"), g.AddNode("s3")
	g.MustAddArc(u[0], s1)
	g.MustAddArc(u[0], s2)
	g.MustAddArc(u[0], s3)
	g.MustAddArc(u[1], s1)
	g.MustAddArc(u[2], s2)
	g.MustAddArc(u[3], s3)
	for i := 1; i <= 3; i++ {
		p1 := g.AddNode(fmt.Sprintf("p%d.1", i))
		p2 := g.AddNode(fmt.Sprintf("p%d.2", i))
		g.MustAddArc(u[i], p1)
		g.MustAddArc(u[i], p2)
	}
	if c, ok := Classify(g.MustFreeze()); ok {
		t.Fatalf("star-linked dag classified as %v", c.Family)
	}
}

func TestFamilyString(t *testing.T) {
	for f, want := range map[Family]string{
		WDag: "W", MDag: "M", NDag: "N", CycleDag: "Cycle", CliqueDag: "Clique", Unknown: "Unknown",
	} {
		if f.String() != want {
			t.Fatalf("Family(%d).String() = %q", f, f.String())
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"W(0,2)":      func() { NewW(0, 2) },
		"W(2,1)":      func() { NewW(2, 1) },
		"M(0,2)":      func() { NewM(0, 2) },
		"N(0)":        func() { NewN(0) },
		"Cycle(1)":    func() { NewCycle(1) },
		"Clique(0,1)": func() { NewClique(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestConstructorShapes(t *testing.T) {
	for s := 1; s <= 5; s++ {
		for tt := 2; tt <= 4; tt++ {
			w := NewW(s, tt)
			if len(w.Sources()) != s || len(w.Sinks()) != s*(tt-1)+1 {
				t.Fatalf("W(%d,%d) shape: %d sources, %d sinks", s, tt, len(w.Sources()), len(w.Sinks()))
			}
			m := NewM(s, tt)
			if len(m.Sources()) != s*(tt-1)+1 || len(m.Sinks()) != s {
				t.Fatalf("M(%d,%d) shape wrong", s, tt)
			}
		}
	}
	for n := 2; n <= 6; n++ {
		if g := NewN(n); g.NumArcs() != 2*n-1 {
			t.Fatalf("N(%d) arcs = %d", n, g.NumArcs())
		}
		if g := NewCycle(n); g.NumArcs() != 2*n {
			t.Fatalf("Cycle(%d) arcs = %d", n, g.NumArcs())
		}
	}
}

// Round trip: Classify(NewX(...)) recovers the construction parameters
// across a parameter sweep.
func TestClassifyRoundTrip(t *testing.T) {
	for s := 2; s <= 6; s++ {
		for tt := 2; tt <= 5; tt++ {
			if c, ok := Classify(NewW(s, tt)); !ok || c.Family != WDag || c.S != s || c.T != tt {
				t.Fatalf("W(%d,%d) round trip failed: %+v %v", s, tt, c, ok)
			}
			if c, ok := Classify(NewM(s, tt)); !ok || c.Family != MDag || c.S != s || c.T != tt {
				t.Fatalf("M(%d,%d) round trip failed: %+v %v", s, tt, c, ok)
			}
		}
	}
	for n := 3; n <= 8; n++ {
		if c, ok := Classify(NewN(n)); !ok || c.Family != NDag || c.S != n {
			t.Fatalf("N(%d) round trip failed", n)
		}
		if c, ok := Classify(NewCycle(n)); !ok || c.Family != CycleDag || c.S != n {
			t.Fatalf("Cycle(%d) round trip failed", n)
		}
		if c, ok := Classify(NewClique(n, n)); !ok || c.Family != CliqueDag {
			t.Fatalf("Clique(%d) round trip failed", n)
		}
	}
}

func BenchmarkClassifyW(b *testing.B) {
	g := NewW(200, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Classify(g); !ok {
			b.Fatal("classification failed")
		}
	}
}

// TestQuickClassifyImpliesOptimal guards against false-positive
// recognition: any random two-level dag the classifier accepts must get
// a source order that is IC-optimal by exhaustive search.
func TestQuickClassifyImpliesOptimal(t *testing.T) {
	r := rng.New(271)
	accepted := 0
	for trial := 0; trial < 3000; trial++ {
		nu, nv := 1+r.Intn(4), 1+r.Intn(5)
		g := dag.New()
		for i := 0; i < nu; i++ {
			g.AddNode(fmt.Sprintf("u%d", i))
		}
		for j := 0; j < nv; j++ {
			g.AddNode(fmt.Sprintf("v%d", j))
		}
		for i := 0; i < nu; i++ {
			for j := 0; j < nv; j++ {
				if r.Float64() < 0.5 {
					g.MustAddArc(i, nu+j)
				}
			}
		}
		fz := g.MustFreeze()
		c, ok := Classify(fz)
		if !ok {
			continue
		}
		accepted++
		assertICOptimal(t, fz, c)
	}
	if accepted < 100 {
		t.Fatalf("only %d random dags classified; generator too weak", accepted)
	}
}
