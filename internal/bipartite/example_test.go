package bipartite_test

import (
	"fmt"

	"repro/internal/bipartite"
)

func ExampleClassify() {
	// A (2,2)-W-dag: two sources sharing one of their two children.
	g := bipartite.NewW(2, 2)
	c, ok := bipartite.Classify(g)
	fmt.Println(ok, c.Family, c.S, c.T)
	for _, u := range c.SourceOrder {
		fmt.Print(g.Name(u), " ")
	}
	fmt.Println()
	// Output:
	// true W 2 2
	// u0 u1
}
