package bipartite

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/rng"
)

// Compose implements the theory's dag-composition operation: blocks are
// stacked so that sinks of earlier blocks are identified with sources of
// later ones. The resulting dags are exactly the "assembled in a
// uniform way" class the theoretical algorithm targets, which makes this
// the natural generator for exercising TheoreticalSchedule and the
// heuristic's gracefulness on meaningful inputs.
//
// blocks are composed in order: for consecutive blocks, min(#sinks of
// the accumulated dag, #sources of the next block) nodes are identified
// pairwise (sinks and sources taken in index order). Node names are
// made unique with a per-block prefix; an identified node keeps the
// earlier block's name.
func Compose(blocks []*dag.Frozen) (*dag.Frozen, error) {
	if len(blocks) == 0 {
		return dag.New().MustFreeze(), nil
	}
	out := dag.New()
	// copy the first block
	prefix := func(i int, name string) string { return fmt.Sprintf("b%d.%s", i, name) }
	ids := make(map[string]int)
	for v := 0; v < blocks[0].NumNodes(); v++ {
		ids[prefix(0, blocks[0].Name(v))] = out.AddNode(prefix(0, blocks[0].Name(v)))
	}
	for _, a := range blocks[0].Arcs() {
		out.MustAddArc(ids[prefix(0, blocks[0].Name(a.From))], ids[prefix(0, blocks[0].Name(a.To))])
	}
	for i := 1; i < len(blocks); i++ {
		b := blocks[i]
		sinks := out.Sinks()
		sources := b.Sources()
		k := len(sinks)
		if len(sources) < k {
			k = len(sources)
		}
		if k == 0 {
			return nil, fmt.Errorf("bipartite: block %d cannot attach (no sinks or no sources)", i)
		}
		// map the identified sources onto existing sinks; everything
		// else gets fresh nodes
		local := make([]int, b.NumNodes())
		for v := range local {
			local[v] = -1
		}
		for j := 0; j < k; j++ {
			local[sources[j]] = sinks[j]
		}
		for v := 0; v < b.NumNodes(); v++ {
			if local[v] == -1 {
				local[v] = out.AddNode(prefix(i, b.Name(v)))
			}
		}
		for _, a := range b.Arcs() {
			if !out.HasArc(local[a.From], local[a.To]) {
				out.MustAddArc(local[a.From], local[a.To])
			}
		}
	}
	f, err := out.Freeze()
	if err != nil {
		return nil, fmt.Errorf("bipartite: composition produced an invalid dag: %w", err)
	}
	return f, nil
}

// RandomBlock draws a random Fig. 2 building block with small
// parameters, for composition-based test generation.
func RandomBlock(r *rng.Source) *dag.Frozen {
	switch r.Intn(5) {
	case 0:
		return NewW(1+r.Intn(3), 2+r.Intn(3))
	case 1:
		return NewM(1+r.Intn(3), 2+r.Intn(3))
	case 2:
		return NewN(2 + r.Intn(4))
	case 3:
		return NewCycle(3 + r.Intn(3))
	default:
		return NewClique(1+r.Intn(3), 1+r.Intn(3))
	}
}

// RandomComposite builds a random composite dag from n random blocks.
func RandomComposite(r *rng.Source, n int) (*dag.Frozen, error) {
	blocks := make([]*dag.Frozen, n)
	for i := range blocks {
		blocks[i] = RandomBlock(r)
	}
	return Compose(blocks)
}
