// Package bipartite implements the building blocks of the scheduling
// theory (Section 2.2, Fig. 2): the bipartite dag families with known
// IC-optimal schedules — (s,t)-W-dags, (s,t)-M-dags, n-N-dags,
// n-Cycle-dags, and bipartite cliques — together with recognizers that
// classify an arbitrary connected bipartite dag into one of the
// families and produce its explicit IC-optimal source order.
//
// A "bipartite dag" here is the paper's two-level notion: the node set
// splits into sources U and sinks V with every arc running U -> V.
//
// # Role in the pipeline
//
// Classify is the heart of the Recurse phase (Section 3.1, Step 3): for
// each component the Divide phase detaches, a successful classification
// yields the family's provably IC-optimal schedule, and a failure sends
// the component to the outdegree fallback in package core. The NewW /
// NewM / NewN / NewCycle / NewClique constructors build family
// instances, and Compose glues blocks into composite dags for tests and
// the theory examples.
//
// # Invariants
//
// Classification is purely structural: node names never influence the
// result, and the returned SourceOrder is deterministic for a given
// indexed structure (path walks start from the smaller-indexed end,
// cycles from the smallest source). This is what makes component
// schedules cacheable by structural signature (core.Cache): two
// components with identical index-level adjacency get byte-identical
// classifications. A successful Classification's SourceOrder is a
// permutation of the graph's sources; executing it in order, followed
// by the sinks, is IC-optimal for the recognized family.
//
// # Concurrency contract
//
// The package holds no mutable state: Classify, Compose, and the
// constructors are pure functions and safe to call from many goroutines
// on distinct or shared (read-only) graphs. The parallel
// Recurse phase in package core calls Classify concurrently, one
// component per worker, with no synchronization beyond the shared
// read-only inputs.
package bipartite
