package bipartite

import (
	"fmt"

	"repro/internal/dag"
)

// Family identifies one of the Fig. 2 building-block families.
type Family int

const (
	// Unknown marks a component outside every recognized family; the
	// heuristic falls back to outdegree order for these.
	Unknown Family = iota
	// WDag is the expansive (s,t)-W-dag: s sources, each with t
	// children, consecutive sources sharing exactly one child; the dag
	// has s(t-1)+1 sinks.
	WDag
	// MDag is the reductive (s,t)-M-dag, the arc-reversal of a W-dag:
	// s sinks, each with t parents, consecutive sinks sharing exactly
	// one parent; the dag has s(t-1)+1 sources.
	MDag
	// NDag is the n-N-dag: sources u1..un, sinks v1..vn, with arcs
	// ui -> vi and ui -> v(i+1); executing u1, u2, ... renders one new
	// sink eligible per step.
	NDag
	// CycleDag is the n-Cycle-dag: the N-dag closed into a ring
	// (ui -> vi and ui -> v(i+1 mod n)); n >= 3 (the 2-Cycle is the
	// 2-Clique).
	CycleDag
	// CliqueDag is the complete bipartite dag: every source feeds every
	// sink.
	CliqueDag
)

func (f Family) String() string {
	switch f {
	case WDag:
		return "W"
	case MDag:
		return "M"
	case NDag:
		return "N"
	case CycleDag:
		return "Cycle"
	case CliqueDag:
		return "Clique"
	default:
		return "Unknown"
	}
}

// NewW builds the (s,t)-W-dag. s >= 1, t >= 2 (t >= 1 when s == 1).
// Source i is named "u<i>", sink j "v<j>".
func NewW(s, t int) *dag.Frozen {
	if s < 1 || t < 1 || (s > 1 && t < 2) {
		panic(fmt.Sprintf("bipartite: invalid W parameters (%d,%d)", s, t))
	}
	g := dag.NewWithCapacity(s + s*(t-1) + 1)
	src := make([]int, s)
	for i := 0; i < s; i++ {
		src[i] = g.AddNode(fmt.Sprintf("u%d", i))
	}
	nSinks := s*(t-1) + 1
	sink := make([]int, nSinks)
	for j := 0; j < nSinks; j++ {
		sink[j] = g.AddNode(fmt.Sprintf("v%d", j))
	}
	// Source i owns sinks [i(t-1), i(t-1)+t-1]; the last of source i's
	// children is the first of source i+1's, which is the shared sink.
	for i := 0; i < s; i++ {
		for k := 0; k < t; k++ {
			g.MustAddArc(src[i], sink[i*(t-1)+k])
		}
	}
	return g.MustFreeze()
}

// NewM builds the (s,t)-M-dag (arc-reversal of the (s,t)-W-dag): s
// sinks, each with t parents, consecutive sinks sharing one parent.
func NewM(s, t int) *dag.Frozen {
	if s < 1 || t < 1 || (s > 1 && t < 2) {
		panic(fmt.Sprintf("bipartite: invalid M parameters (%d,%d)", s, t))
	}
	nSources := s*(t-1) + 1
	g := dag.NewWithCapacity(nSources + s)
	src := make([]int, nSources)
	for i := 0; i < nSources; i++ {
		src[i] = g.AddNode(fmt.Sprintf("u%d", i))
	}
	sink := make([]int, s)
	for j := 0; j < s; j++ {
		sink[j] = g.AddNode(fmt.Sprintf("v%d", j))
	}
	for j := 0; j < s; j++ {
		for k := 0; k < t; k++ {
			g.MustAddArc(src[j*(t-1)+k], sink[j])
		}
	}
	return g.MustFreeze()
}

// NewN builds the n-N-dag (n >= 1): arcs ui -> vi for i in [0,n) and
// ui -> v(i+1) for i in [0,n-1).
func NewN(n int) *dag.Frozen {
	if n < 1 {
		panic(fmt.Sprintf("bipartite: invalid N order %d", n))
	}
	g := dag.NewWithCapacity(2 * n)
	src := make([]int, n)
	for i := 0; i < n; i++ {
		src[i] = g.AddNode(fmt.Sprintf("u%d", i))
	}
	sink := make([]int, n)
	for j := 0; j < n; j++ {
		sink[j] = g.AddNode(fmt.Sprintf("v%d", j))
	}
	for i := 0; i < n; i++ {
		g.MustAddArc(src[i], sink[i])
		if i+1 < n {
			g.MustAddArc(src[i], sink[i+1])
		}
	}
	return g.MustFreeze()
}

// NewCycle builds the n-Cycle-dag (n >= 2): arcs ui -> vi and
// ui -> v(i+1 mod n). Note the 2-Cycle coincides with the 2-Clique.
func NewCycle(n int) *dag.Frozen {
	if n < 2 {
		panic(fmt.Sprintf("bipartite: invalid Cycle order %d", n))
	}
	g := dag.NewWithCapacity(2 * n)
	src := make([]int, n)
	for i := 0; i < n; i++ {
		src[i] = g.AddNode(fmt.Sprintf("u%d", i))
	}
	sink := make([]int, n)
	for j := 0; j < n; j++ {
		sink[j] = g.AddNode(fmt.Sprintf("v%d", j))
	}
	for i := 0; i < n; i++ {
		g.MustAddArc(src[i], sink[i])
		g.MustAddArc(src[i], sink[(i+1)%n])
	}
	return g.MustFreeze()
}

// NewClique builds the complete bipartite dag with a sources and b sinks.
func NewClique(a, b int) *dag.Frozen {
	if a < 1 || b < 1 {
		panic(fmt.Sprintf("bipartite: invalid Clique parameters (%d,%d)", a, b))
	}
	g := dag.NewWithCapacity(a + b)
	src := make([]int, a)
	for i := 0; i < a; i++ {
		src[i] = g.AddNode(fmt.Sprintf("u%d", i))
	}
	for j := 0; j < b; j++ {
		v := g.AddNode(fmt.Sprintf("v%d", j))
		for i := 0; i < a; i++ {
			g.MustAddArc(src[i], v)
		}
	}
	return g.MustFreeze()
}
