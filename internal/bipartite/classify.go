package bipartite

import (
	"sort"

	"repro/internal/dag"
)

// Classification describes a recognized building block: its family, the
// family parameters, and an explicit IC-optimal order in which to execute
// its sources (Fig. 2: "execute sources from left to right, then all
// sinks in arbitrary order").
type Classification struct {
	Family Family
	// S, T are the family parameters: (s,t) for W/M, (a,b) for Clique
	// (S sources, T sinks), and S = T = n for N/Cycle.
	S, T int
	// SourceOrder lists every source (node index in the classified
	// graph) in IC-optimal execution order.
	SourceOrder []int
}

// Classify attempts to recognize g as one of the Fig. 2 families. g must
// be a connected bipartite dag; ok is false when g is not, or when it
// belongs to no recognized family (Step 3 then falls back to the
// outdegree heuristic).
func Classify(g *dag.Frozen) (Classification, bool) {
	if !g.IsBipartiteDag() {
		return Classification{}, false
	}
	if _, n := g.UndirectedComponents(); n != 1 {
		return Classification{}, false
	}
	sources := g.Sources()
	sinks := g.Sinks()
	nU, nV := len(sources), len(sinks)

	// Complete bipartite dag. This also catches the degenerate stars
	// K(1,t) and K(t,1), which Fig. 2 labels (1,t)-W and (1,t)-M.
	if g.NumArcs() == nU*nV {
		c := Classification{Family: CliqueDag, S: nU, T: nV, SourceOrder: toInts(sources)}
		if nU == 1 {
			c.Family, c.S, c.T = WDag, 1, nV
		} else if nV == 1 {
			c.Family, c.S, c.T = MDag, 1, nU
		}
		return c, true
	}

	if c, ok := classifyW(g, sources, sinks); ok {
		return c, true
	}
	if c, ok := classifyM(g, sources, sinks); ok {
		return c, true
	}
	if c, ok := classifyN(g, sources, sinks); ok {
		return c, true
	}
	if c, ok := classifyCycle(g, sources, sinks); ok {
		return c, true
	}
	return Classification{}, false
}

// classifyW recognizes (s,t)-W-dags with s >= 2 (s == 1 is caught by the
// clique case): every source has exactly t children, every sink has one
// or two parents, the two-parent sinks link consecutive sources into a
// simple path, and there are s(t-1)+1 sinks in total.
func classifyW(g *dag.Frozen, sources, sinks []int32) (Classification, bool) {
	s := len(sources)
	if s < 2 {
		return Classification{}, false
	}
	t := g.OutDegree(int(sources[0]))
	if t < 2 {
		return Classification{}, false
	}
	for _, u := range sources {
		if g.OutDegree(int(u)) != t {
			return Classification{}, false
		}
	}
	if len(sinks) != s*(t-1)+1 {
		return Classification{}, false
	}
	// Shared sinks define links between sources.
	links := make(map[int][]int, s) // source -> neighbouring sources
	shared := 0
	for _, v := range sinks {
		switch g.InDegree(int(v)) {
		case 1:
		case 2:
			p := g.Parents(int(v))
			links[int(p[0])] = append(links[int(p[0])], int(p[1]))
			links[int(p[1])] = append(links[int(p[1])], int(p[0]))
			shared++
		default:
			return Classification{}, false
		}
	}
	if shared != s-1 {
		return Classification{}, false
	}
	order, ok := walkPath(sources, links)
	if !ok {
		return Classification{}, false
	}
	return Classification{Family: WDag, S: s, T: t, SourceOrder: order}, true
}

// classifyM recognizes (s,t)-M-dags by classifying the arc-reversal as a
// W-dag and replaying its sink order as a grouped source order: for each
// sink along the path, execute its not-yet-executed parents, so sinks
// become eligible one by one — the M-dag's IC-optimal schedule.
func classifyM(g *dag.Frozen, sources, sinks []int32) (Classification, bool) {
	rev := g.Reverse()
	// In rev, sources and sinks swap roles.
	c, ok := classifyW(rev, sinks, sources)
	if !ok {
		return Classification{}, false
	}
	order := make([]int, 0, len(sources))
	done := make(map[int]bool, len(sources))
	for _, v := range c.SourceOrder { // sinks of g in path order
		ps := toInts(g.Parents(v))
		sort.Ints(ps)
		for _, u := range ps {
			if !done[u] {
				done[u] = true
				order = append(order, u)
			}
		}
	}
	return Classification{Family: MDag, S: c.S, T: c.T, SourceOrder: order}, true
}

// classifyN recognizes n-N-dags (n >= 2): n sources and n sinks, exactly
// one source of out-degree 1 and one sink of in-degree 1, all other
// degrees 2, forming one alternating path. The IC-optimal order starts at
// the source whose child has in-degree 1 and walks the path, rendering
// one new sink eligible per executed source.
func classifyN(g *dag.Frozen, sources, sinks []int32) (Classification, bool) {
	n := len(sources)
	if n < 2 || len(sinks) != n {
		return Classification{}, false
	}
	if g.NumArcs() != 2*n-1 {
		return Classification{}, false
	}
	deg1Sinks := 0
	for _, v := range sinks {
		switch g.InDegree(int(v)) {
		case 1:
			deg1Sinks++
		case 2:
		default:
			return Classification{}, false
		}
	}
	deg1Sources := 0
	var start int
	for _, u := range sources {
		switch g.OutDegree(int(u)) {
		case 1:
			deg1Sources++
		case 2:
		default:
			return Classification{}, false
		}
	}
	if deg1Sinks != 1 || deg1Sources != 1 {
		return Classification{}, false
	}
	// Find the start: the (unique) source that is parent of the
	// in-degree-1 sink and has out-degree 2 (for n >= 2 the degree-1
	// sink's parent must start the path).
	start = -1
	for _, v := range sinks {
		if g.InDegree(int(v)) == 1 {
			start = int(g.Parents(int(v))[0])
		}
	}
	if start == -1 {
		return Classification{}, false
	}
	// Walk: from source u, its "forward" child is the one we have not
	// yet consumed; from that sink, the forward parent likewise.
	order := make([]int, 0, n)
	seenSrc := make(map[int]bool, n)
	seenSink := make(map[int]bool, n)
	u := start
	for {
		if seenSrc[u] {
			return Classification{}, false
		}
		seenSrc[u] = true
		order = append(order, u)
		// forward sink: child not yet seen with in-degree 2; terminal
		// sources (out-degree 1) end the walk after consuming their child.
		next := -1
		for _, vv := range g.Children(u) {
			v := int(vv)
			if !seenSink[v] {
				if next != -1 {
					// Two unseen children: pick the shared one (indeg 2)
					// to continue; the other must be the start sink —
					// only possible at the path start, already handled
					// by choosing start via the indeg-1 sink.
					if g.InDegree(v) == 2 && g.InDegree(next) == 2 {
						return Classification{}, false
					}
					if g.InDegree(v) == 2 {
						next = v
					}
					continue
				}
				next = v
			}
		}
		if next == -1 {
			break
		}
		seenSink[next] = true
		if g.InDegree(next) == 1 {
			continue // private sink; stay on u? cannot happen mid-path
		}
		// move to the other parent of the shared sink
		p := g.Parents(next)
		if int(p[0]) == u {
			u = int(p[1])
		} else {
			u = int(p[0])
		}
	}
	if len(order) != n {
		return Classification{}, false
	}
	return Classification{Family: NDag, S: n, T: n, SourceOrder: order}, true
}

// classifyCycle recognizes n-Cycle-dags (n >= 3): every degree is exactly
// 2 and the shared-sink links close the sources into a single cycle. Any
// rotation/direction of the cycle is IC-optimal; we start at the smallest
// source index for determinism.
func classifyCycle(g *dag.Frozen, sources, sinks []int32) (Classification, bool) {
	n := len(sources)
	if n < 3 || len(sinks) != n || g.NumArcs() != 2*n {
		return Classification{}, false
	}
	for _, u := range sources {
		if g.OutDegree(int(u)) != 2 {
			return Classification{}, false
		}
	}
	links := make(map[int][]int, n)
	for _, v := range sinks {
		if g.InDegree(int(v)) != 2 {
			return Classification{}, false
		}
		p := g.Parents(int(v))
		if p[0] == p[1] {
			return Classification{}, false
		}
		links[int(p[0])] = append(links[int(p[0])], int(p[1]))
		links[int(p[1])] = append(links[int(p[1])], int(p[0]))
	}
	for _, u := range sources {
		if len(links[int(u)]) != 2 {
			return Classification{}, false
		}
	}
	start := int(sources[0])
	order := make([]int, 0, n)
	seen := make(map[int]bool, n)
	u, prev := start, -1
	for {
		order = append(order, u)
		seen[u] = true
		nb := links[u]
		next := nb[0]
		if next == prev {
			next = nb[1]
		}
		if next == start {
			break
		}
		if seen[next] {
			return Classification{}, false
		}
		prev, u = u, next
	}
	if len(order) != n {
		return Classification{}, false
	}
	return Classification{Family: CycleDag, S: n, T: n, SourceOrder: order}, true
}

// walkPath orders nodes along the simple path defined by links (adjacency
// between sources via shared sinks); ok is false when the link structure
// is not a single simple path over all nodes.
func walkPath(nodes []int32, links map[int][]int) ([]int, bool) {
	var ends []int
	for _, u := range nodes {
		switch len(links[int(u)]) {
		case 1:
			ends = append(ends, int(u))
		case 2:
		default:
			return nil, false
		}
	}
	if len(ends) != 2 {
		return nil, false
	}
	// Deterministic: start from the smaller-indexed end.
	start := ends[0]
	if ends[1] < start {
		start = ends[1]
	}
	order := make([]int, 0, len(nodes))
	seen := make(map[int]bool, len(nodes))
	u, prev := start, -1
	for {
		if seen[u] {
			return nil, false
		}
		seen[u] = true
		order = append(order, u)
		next := -1
		for _, w := range links[u] {
			if w != prev {
				next = w
			}
		}
		if next == -1 {
			break
		}
		prev, u = u, next
	}
	if len(order) != len(nodes) {
		return nil, false
	}
	return order, true
}

// toInts copies an int32 node list into a fresh []int.
func toInts(xs []int32) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}
