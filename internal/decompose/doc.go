// Package decompose implements the Divide phase of the scheduling
// heuristic (Section 3.1, Steps 1-2): shortcut removal, the generalized
// decomposition of a dag into connected components C(s) grown from
// sources by the BFS-like closure of the paper, and the construction of
// the superdag that records how the components compose.
//
// # Algorithm
//
// Two decomposition paths are provided, mirroring the engineering of
// Section 3.5: a fast path that detaches every maximal connected
// bipartite building block whose sources are sources of the remnant
// (for these, containment-minimality is automatic), and a general path
// that computes the full closure C(s) for each source and detaches one
// containment-minimal component per round. The fast path alone reduced
// the paper's SDSS decomposition from days to minutes;
// Options.DisableFastPath forces the general path for the ablation
// benchmarks.
//
// Component subgraphs are assembled directly in the dag core's CSR
// form (dag.FromCSR) with names shared with the reduced dag, and the
// closure search runs on reusable scratch, so decomposing a dag into
// tens of thousands of components costs a small constant number of
// allocations per component.
//
// Step 1's transitive reduction can be memoized across pipeline stages
// by supplying Options.ReduceCache (see dag.ReduceCache); core.Options
// threads the cache embedded in a core.Cache through automatically.
//
// # Invariants
//
// The decomposition is deterministic: components are detached in a
// fixed order (fast-path blocks by smallest member, general closures by
// size then smallest source), Component.Index equals both the
// detachment position and the superdag node index, and Component.Nodes
// is ascending. Every superdag arc points from an earlier-detached
// component to a later one, so the superdag is acyclic by construction.
// A job appears as a non-sink of at most one component
// (Result.ScheduledIn); dag-wide sinks have ScheduledIn == -1 and are
// executed in the pipeline's final phase.
//
// # Concurrency contract
//
// Decompose and DecomposeOpts are pure with respect to their input
// graph (it is read, never written) and may be called from many
// goroutines, including with a shared Options.ReduceCache, which is
// safe for concurrent use. A *Result and its Components are plain data
// produced by a single call: share them read-only. In the parallel
// pipeline (core.Options.Parallel) the Divide phase itself stays
// sequential — it is a peeling loop with a loop-carried remnant — while
// the per-component work that follows is what fans out; Component
// values are therefore read concurrently by the Recurse workers, and
// nothing in this package mutates them after detach.
package decompose
