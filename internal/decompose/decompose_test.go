package decompose

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/rng"
)

func build(t testing.TB, nodes []string, arcs ...string) *dag.Frozen {
	t.Helper()
	b := dag.New()
	for _, n := range nodes {
		b.AddNode(n)
	}
	for _, a := range arcs {
		parts := strings.Split(a, ">")
		b.MustAddArc(b.IndexOf(parts[0]), b.IndexOf(parts[1]))
	}
	return b.MustFreeze()
}

func names(g *dag.Frozen, comp *Component) []string {
	var out []string
	for _, v := range comp.Nodes {
		out = append(out, g.Name(v))
	}
	sort.Strings(out)
	return out
}

// checkInvariants verifies the structural contract of a decomposition.
func checkInvariants(t *testing.T, g *dag.Frozen, r *Result) {
	t.Helper()
	if r.Super.NumNodes() != len(r.Components) {
		t.Fatalf("superdag has %d nodes for %d components", r.Super.NumNodes(), len(r.Components))
	}
	covered := make([]bool, g.NumNodes())
	scheduled := 0
	for i, c := range r.Components {
		if c.Index != i {
			t.Fatalf("component %d has Index %d", i, c.Index)
		}
		if len(c.Nodes) != c.Sub.NumNodes() || len(c.Orig) != len(c.Nodes) {
			t.Fatalf("component %d node bookkeeping inconsistent", i)
		}
		nonSinks := 0
		for s := 0; s < c.Sub.NumNodes(); s++ {
			if c.Sub.OutDegree(s) > 0 {
				nonSinks++
			}
		}
		if nonSinks != c.NonSinkCount {
			t.Fatalf("component %d NonSinkCount %d, actual %d", i, c.NonSinkCount, nonSinks)
		}
		for _, v := range c.Nodes {
			covered[v] = true
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		if !covered[v] {
			t.Fatalf("node %s covered by no component", g.Name(v))
		}
		if ci := r.ScheduledIn[v]; ci == -1 {
			if !g.IsSink(v) {
				t.Fatalf("non-sink %s has no scheduling component", g.Name(v))
			}
		} else {
			scheduled++
			if g.IsSink(v) {
				t.Fatalf("dag sink %s scheduled in component %d", g.Name(v), ci)
			}
		}
	}
	if scheduled+len(g.Sinks()) != g.NumNodes() {
		t.Fatalf("scheduled %d + sinks %d != nodes %d", scheduled, len(g.Sinks()), g.NumNodes())
	}
	// Every component's scheduled set must equal its subgraph non-sinks.
	for i, c := range r.Components {
		for s, v := range c.Orig {
			if c.Sub.OutDegree(s) > 0 && r.ScheduledIn[v] != i {
				t.Fatalf("non-sink %s of component %d scheduled in %d", g.Name(v), i, r.ScheduledIn[v])
			}
		}
	}
}

func TestFig3Dag(t *testing.T) {
	g := build(t, []string{"a", "b", "c", "d", "e"}, "a>b", "c>d", "c>e")
	r := Decompose(g)
	checkInvariants(t, g, r)
	if len(r.Components) != 2 {
		t.Fatalf("got %d components, want 2", len(r.Components))
	}
	if got := names(g, r.Components[0]); !eq(got, []string{"a", "b"}) {
		t.Fatalf("C0 = %v", got)
	}
	if got := names(g, r.Components[1]); !eq(got, []string{"c", "d", "e"}) {
		t.Fatalf("C1 = %v", got)
	}
	if r.Super.NumArcs() != 0 {
		t.Fatal("independent components should have no superdag arcs")
	}
	for _, c := range r.Components {
		if !c.Bipartite {
			t.Fatalf("component %d should be bipartite", c.Index)
		}
	}
}

func TestChainSharedNode(t *testing.T) {
	g := build(t, []string{"a", "b", "c"}, "a>b", "b>c")
	r := Decompose(g)
	checkInvariants(t, g, r)
	if len(r.Components) != 2 {
		t.Fatalf("components = %d, want 2", len(r.Components))
	}
	if !eq(names(g, r.Components[0]), []string{"a", "b"}) || !eq(names(g, r.Components[1]), []string{"b", "c"}) {
		t.Fatalf("components = %v, %v", names(g, r.Components[0]), names(g, r.Components[1]))
	}
	if !r.Super.HasArc(0, 1) {
		t.Fatal("superdag must order C0 before C1 (shared node b)")
	}
	if r.ScheduledIn[g.IndexOf("a")] != 0 || r.ScheduledIn[g.IndexOf("b")] != 1 || r.ScheduledIn[g.IndexOf("c")] != -1 {
		t.Fatalf("ScheduledIn = %v", r.ScheduledIn)
	}
}

func TestDiamond(t *testing.T) {
	g := build(t, []string{"a", "b", "c", "d"}, "a>b", "a>c", "b>d", "c>d")
	r := Decompose(g)
	checkInvariants(t, g, r)
	if len(r.Components) != 2 {
		t.Fatalf("components = %d, want 2", len(r.Components))
	}
	if !eq(names(g, r.Components[0]), []string{"a", "b", "c"}) {
		t.Fatalf("C0 = %v", names(g, r.Components[0]))
	}
	if !eq(names(g, r.Components[1]), []string{"b", "c", "d"}) {
		t.Fatalf("C1 = %v", names(g, r.Components[1]))
	}
}

func TestShortcutRemovedFirst(t *testing.T) {
	g := build(t, []string{"a", "b", "c"}, "a>b", "b>c", "a>c")
	r := Decompose(g)
	checkInvariants(t, g, r)
	if len(r.Shortcuts) != 1 {
		t.Fatalf("shortcuts = %v", r.Shortcuts)
	}
	if r.Reduced.NumArcs() != 2 {
		t.Fatalf("reduced arcs = %d", r.Reduced.NumArcs())
	}
	if len(r.Components) != 2 {
		t.Fatalf("components = %d, want 2 (chain)", len(r.Components))
	}
}

func TestIsolatedNodes(t *testing.T) {
	g := build(t, []string{"x", "y"})
	r := Decompose(g)
	checkInvariants(t, g, r)
	if len(r.Components) != 2 {
		t.Fatalf("components = %d", len(r.Components))
	}
	for _, c := range r.Components {
		if c.NonSinkCount != 0 || len(c.Nodes) != 1 {
			t.Fatalf("singleton component wrong: %+v", c)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	r := Decompose(dag.New().MustFreeze())
	if len(r.Components) != 0 || r.Super.NumNodes() != 0 {
		t.Fatal("empty graph should decompose to nothing")
	}
}

// Crossed three-level structure where no source admits a bipartite block
// in round one, forcing the general containment-minimal path.
func TestGeneralPathCrossed(t *testing.T) {
	g := build(t, []string{"s1", "s2", "x1", "x2", "y1", "y2"},
		"s1>y2", "s1>x1", "s2>y1", "s2>x2", "x1>y1", "x2>y2")
	if sc := g.ShortcutArcs(); len(sc) != 0 {
		t.Fatalf("test premise broken: shortcuts %v", sc)
	}
	r := Decompose(g)
	checkInvariants(t, g, r)
	if len(r.Components) != 1 {
		t.Fatalf("components = %d, want 1 merged component", len(r.Components))
	}
	c := r.Components[0]
	if c.Bipartite {
		t.Fatal("crossed component wrongly marked bipartite")
	}
	if len(c.Nodes) != 6 || c.NonSinkCount != 4 {
		t.Fatalf("component = %+v", c)
	}
}

// The general path must also be reachable mid-decomposition: a clean
// bipartite front followed by the crossed structure.
func TestGeneralPathAfterBipartiteRounds(t *testing.T) {
	g := build(t, []string{"r", "s1", "s2", "x1", "x2", "y1", "y2"},
		"r>s1", "r>s2",
		"s1>y2", "s1>x1", "s2>y1", "s2>x2", "x1>y1", "x2>y2")
	r := Decompose(g)
	checkInvariants(t, g, r)
	if len(r.Components) != 2 {
		t.Fatalf("components = %d, want 2", len(r.Components))
	}
	if !r.Components[0].Bipartite || r.Components[1].Bipartite {
		t.Fatalf("bipartite flags = %v, %v", r.Components[0].Bipartite, r.Components[1].Bipartite)
	}
	if !r.Super.HasArc(0, 1) {
		t.Fatal("superdag must chain the two components")
	}
}

// Regression: a dependency that flows out of a component through an
// interior non-sink must still be reflected in the superdag, even though
// the two components share no node. Here x1 is an interior non-sink of
// the crossed component and w (its child) is executed by a later
// component disjoint from it.
func TestSuperdagInteriorNonSinkDependency(t *testing.T) {
	g := build(t, []string{"s1", "s2", "x1", "x2", "y1", "y2", "w", "z"},
		"s1>y2", "s1>x1", "s2>y1", "s2>x2", "x1>y1", "x2>y2",
		"x1>w", "w>z")
	r := Decompose(g)
	checkInvariants(t, g, r)
	ci := r.ScheduledIn[g.IndexOf("x1")]
	cj := r.ScheduledIn[g.IndexOf("w")]
	if ci == cj {
		t.Fatalf("test premise broken: x1 and w in same component %d", ci)
	}
	if !r.Super.HasArc(ci, cj) && !r.Super.HasPath(ci, cj) {
		t.Fatalf("superdag misses dependency C%d -> C%d", ci, cj)
	}
}

func TestFastPathMatchesGeneralPath(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 25; trial++ {
		g := randomLayered(r, 3+r.Intn(4), 1+r.Intn(5), 0.4)
		fast := Decompose(g)
		slow := DecomposeOpts(g, Options{DisableFastPath: true})
		checkInvariants(t, g, fast)
		checkInvariants(t, g, slow)
		if len(fast.Components) != len(slow.Components) {
			t.Fatalf("trial %d: fast %d components, slow %d", trial, len(fast.Components), len(slow.Components))
		}
		// Node sets must match as multisets of sorted node lists.
		fs := componentSignatures(fast)
		ss := componentSignatures(slow)
		for i := range fs {
			if fs[i] != ss[i] {
				t.Fatalf("trial %d: component sets differ:\nfast: %v\nslow: %v", trial, fs, ss)
			}
		}
	}
}

func componentSignatures(r *Result) []string {
	sigs := make([]string, len(r.Components))
	for i, c := range r.Components {
		sigs[i] = fmt.Sprint(c.Nodes)
	}
	sort.Strings(sigs)
	return sigs
}

// randomLayered builds a layered dag: width nodes per layer, arcs only
// between consecutive layers, each child picks >=1 parent.
func randomLayered(r *rng.Source, layers, width int, p float64) *dag.Frozen {
	g := dag.New()
	ids := make([][]int, layers)
	for l := 0; l < layers; l++ {
		ids[l] = make([]int, width)
		for w := 0; w < width; w++ {
			ids[l][w] = g.AddNode(fmt.Sprintf("L%dW%d", l, w))
		}
	}
	for l := 1; l < layers; l++ {
		for w := 0; w < width; w++ {
			linked := false
			for pw := 0; pw < width; pw++ {
				if r.Float64() < p {
					g.MustAddArc(ids[l-1][pw], ids[l][w])
					linked = true
				}
			}
			if !linked {
				g.MustAddArc(ids[l-1][r.Intn(width)], ids[l][w])
			}
		}
	}
	return g.MustFreeze()
}

func TestRandomDagsInvariants(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(40)
		b := dag.New()
		for i := 0; i < n; i++ {
			b.AddNode(fmt.Sprintf("n%d", i))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.15 {
					b.MustAddArc(i, j)
				}
			}
		}
		g := b.MustFreeze()
		res := Decompose(g)
		checkInvariants(t, g, res)
	}
}

// The superdag must respect data dependencies: if a node is scheduled in
// component j and one of its parents is scheduled in component i != j,
// then the superdag must order i before j (path, not necessarily arc).
func TestSuperdagRespectsDependencies(t *testing.T) {
	r := rng.New(55)
	for trial := 0; trial < 20; trial++ {
		g := randomLayered(r, 4, 4, 0.35)
		res := Decompose(g)
		for v := 0; v < g.NumNodes(); v++ {
			cj := res.ScheduledIn[v]
			if cj == -1 {
				continue
			}
			for _, p := range g.Parents(v) {
				ci := res.ScheduledIn[int(p)]
				if ci == -1 || ci == cj {
					continue
				}
				if ci != cj && !res.Super.HasPath(ci, cj) && !res.Super.HasArc(ci, cj) {
					t.Fatalf("trial %d: parent %s in C%d, child %s in C%d, no superdag path",
						trial, g.Name(int(p)), ci, g.Name(v), cj)
				}
			}
		}
	}
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkDecomposeLayered(b *testing.B) {
	r := rng.New(9)
	g := randomLayered(r, 10, 50, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(g)
	}
}
