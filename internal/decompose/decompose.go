package decompose

import (
	"fmt"
	"sort"

	"repro/internal/dag"
)

// Component is one detached piece of the dag, in detachment order.
type Component struct {
	// Index is the component's position in detachment order.
	Index int
	// Nodes holds the original node ids of every job in the component,
	// ascending. A job can appear in two components: as a sink of an
	// earlier one and again in a later one (where it is eventually
	// executed or deferred as a dag sink).
	Nodes []int
	// Sub is the subgraph induced by Nodes on the shortcut-free dag;
	// Orig maps Sub's node indices back to original ids.
	Sub  *dag.Graph
	Orig []int
	// NonSinkCount is the number of jobs of Sub that have children
	// within Sub — the jobs that the component's schedule executes.
	NonSinkCount int
	// Bipartite records whether the component is a two-level dag (every
	// internal arc runs source -> sink).
	Bipartite bool
	// FastPath records whether the component was detached by the
	// bipartite fast path — i.e. it is a maximal connected bipartite
	// building block in the sense of the theoretical algorithm
	// (Section 2.2 Step 2). A component can be Bipartite but not
	// FastPath when the general closure happened to produce a two-level
	// dag in a round where the strict decomposition would have failed.
	FastPath bool
}

// Result is the outcome of decomposition.
type Result struct {
	// Reduced is the input dag with all shortcut arcs removed (Step 1);
	// Shortcuts lists the removed arcs.
	Reduced   *dag.Graph
	Shortcuts []dag.Arc
	// Components lists the detached components in detachment order.
	Components []*Component
	// Super is the superdag: node i is component i (named "Ci"); an arc
	// Ci -> Cj records that a sink of Ci reappears in Cj, so Cj cannot
	// start before Ci.
	Super *dag.Graph
	// ScheduledIn[v] is the index of the component whose schedule
	// executes job v, or -1 when v is a sink of the whole dag (executed
	// in the final phase).
	ScheduledIn []int
}

// Options tunes the decomposition; the zero value is the production
// configuration.
type Options struct {
	// DisableFastPath forces the general containment-minimal search for
	// every component, as the pre-Section-3.5 implementation did. Used
	// by the ablation benchmarks.
	DisableFastPath bool
	// ReduceCache, when non-nil, memoizes the Step 1 transitive
	// reduction by graph fingerprint, so repeated pipeline stages over
	// the same dag (prio + theoretical, or several simulator policies)
	// share one reduction. The cached Reduced graph and Shortcuts slice
	// are shared across hits and must be treated as immutable.
	ReduceCache *dag.ReduceCache
}

// Decompose runs Steps 1-2 of the heuristic on g with default options.
//
//prio:pure
func Decompose(g *dag.Graph) *Result { return DecomposeOpts(g, Options{}) }

// DecomposeOpts runs Steps 1-2 of the heuristic on g.
//
//prio:pure
func DecomposeOpts(g *dag.Graph, opts Options) *Result {
	reduced, shortcuts := g.TransitiveReductionCached(opts.ReduceCache)
	d := &decomposer{
		g:        reduced,
		alive:    make([]bool, reduced.NumNodes()),
		inAlive:  make([]int, reduced.NumNodes()),
		outAlive: make([]int, reduced.NumNodes()),
		owner:    make([]int, reduced.NumNodes()),
		result: &Result{
			Reduced:     reduced,
			Shortcuts:   shortcuts,
			Super:       dag.New(),
			ScheduledIn: make([]int, reduced.NumNodes()),
		},
		fastPath: !opts.DisableFastPath,
	}
	for v := 0; v < reduced.NumNodes(); v++ {
		d.alive[v] = true
		d.inAlive[v] = reduced.InDegree(v)
		d.outAlive[v] = reduced.OutDegree(v)
		d.owner[v] = -1
		d.result.ScheduledIn[v] = -1
	}
	d.aliveCount = reduced.NumNodes()
	d.run()
	return d.result
}

type decomposer struct {
	g          *dag.Graph
	alive      []bool
	inAlive    []int // number of alive parents
	outAlive   []int // number of alive children
	owner      []int // last component that contained the node, or -1
	aliveCount int
	fastPath   bool
	result     *Result
}

func (d *decomposer) run() {
	for d.aliveCount > 0 {
		sources := d.currentSources()
		if len(sources) == 0 {
			panic("decompose: nonempty remnant without sources (cycle?)")
		}
		if d.fastPath {
			if blocks := d.bipartiteBlocks(sources); len(blocks) > 0 {
				for _, b := range blocks {
					d.detach(b, true, true)
				}
				continue
			}
		}
		b := d.minimalClosure(sources)
		d.detach(b, d.isBipartiteSet(b), false)
	}
	d.addDependencyArcs()
}

// addDependencyArcs completes the superdag with execution-order
// constraints that the shared-node (composition) arcs alone can miss: an
// interior non-sink of a component may have children outside it, and
// those children are executed by later components that need not share
// any node with it. For every reduced arc p -> v whose endpoints are
// scheduled in different components, the parent's component must precede
// the child's. All such arcs point from an earlier-detached component to
// a later one, so the superdag stays acyclic.
func (d *decomposer) addDependencyArcs() {
	super := d.result.Super
	seen := make(map[dag.Arc]bool, super.NumArcs())
	for _, a := range super.Arcs() {
		seen[a] = true
	}
	for p := 0; p < d.g.NumNodes(); p++ {
		a := d.result.ScheduledIn[p]
		if a == -1 {
			continue
		}
		for _, v := range d.g.Children(p) {
			b := d.result.ScheduledIn[v]
			if b == -1 || b == a {
				continue
			}
			arc := dag.Arc{From: a, To: b}
			if !seen[arc] {
				seen[arc] = true
				super.MustAddArc(a, b)
			}
		}
	}
}

// currentSources returns the alive nodes with no alive parents, ascending.
func (d *decomposer) currentSources() []int {
	var out []int
	for v := 0; v < d.g.NumNodes(); v++ {
		if d.alive[v] && d.inAlive[v] == 0 {
			out = append(out, v)
		}
	}
	return out
}

// block is a component-in-progress: a set of remnant nodes.
type block struct {
	nodes   map[int]bool
	minNode int // smallest source id, for deterministic ordering
}

// bipartiteBlocks partitions (a subset of) the current sources into
// maximal connected bipartite building blocks: closures in which every
// parent of every reached sink is itself a current source. Sources whose
// closure touches an interior (non-source) parent are left for the
// general path. Isolated sources form trivial single-node blocks.
func (d *decomposer) bipartiteBlocks(sources []int) []*block {
	isSource := make(map[int]bool, len(sources))
	for _, s := range sources {
		isSource[s] = true
	}
	assigned := make(map[int]bool, len(sources)) // sources already grouped
	var blocks []*block
	for _, s := range sources {
		if assigned[s] {
			continue
		}
		b := &block{nodes: map[int]bool{s: true}, minNode: s}
		srcs := []int{s}
		ok := true
		for i := 0; i < len(srcs); i++ {
			u := srcs[i]
			for _, c := range d.g.Children(u) {
				if !d.alive[c] || b.nodes[c] {
					continue
				}
				// every alive parent of the sink must be a current source
				for _, p := range d.g.Parents(c) {
					if d.alive[p] && !isSource[p] {
						ok = false
					}
				}
				if !ok {
					break
				}
				b.nodes[c] = true
				for _, p := range d.g.Parents(c) {
					if d.alive[p] && !b.nodes[p] {
						b.nodes[p] = true
						srcs = append(srcs, p)
						if p < b.minNode {
							b.minNode = p
						}
					}
				}
			}
			if !ok {
				break
			}
		}
		// Mark every source pulled into this closure as handled this
		// round, whether or not the block is valid: a failed closure
		// poisons all sources connected through it.
		for _, u := range srcs {
			assigned[u] = true
		}
		if ok {
			blocks = append(blocks, b)
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].minNode < blocks[j].minNode })
	return blocks
}

// minimalClosure computes the closure C(s) for every current source and
// returns a containment-minimal one (smallest size, ties broken by
// smallest source id). One component per round: detaching it can expose
// new sources that change the other closures.
func (d *decomposer) minimalClosure(sources []int) *block {
	var best *block
	for _, s := range sources {
		c := d.closure(s)
		if best == nil || len(c.nodes) < len(best.nodes) ||
			(len(c.nodes) == len(best.nodes) && c.minNode < best.minNode) {
			best = c
		}
	}
	return best
}

// closure computes C(s) per the paper's BFS-like algorithm: S starts as
// {s}; children of S-jobs join T; parents of T-jobs join T; T-jobs that
// are sources of the remnant move to S; repeat to fixpoint.
func (d *decomposer) closure(s int) *block {
	b := &block{nodes: map[int]bool{s: true}, minNode: s}
	srcQueue := []int{s} // S jobs whose children still need expanding
	tQueue := []int{}    // T jobs whose parents still need expanding
	for len(srcQueue) > 0 || len(tQueue) > 0 {
		if len(srcQueue) > 0 {
			u := srcQueue[len(srcQueue)-1]
			srcQueue = srcQueue[:len(srcQueue)-1]
			for _, c := range d.g.Children(u) {
				if d.alive[c] && !b.nodes[c] {
					b.nodes[c] = true
					tQueue = append(tQueue, c)
				}
			}
			continue
		}
		t := tQueue[len(tQueue)-1]
		tQueue = tQueue[:len(tQueue)-1]
		// T members that are sources of the remnant behave as S members.
		if d.inAlive[t] == 0 {
			if t < b.minNode {
				b.minNode = t
			}
			srcQueue = append(srcQueue, t)
		}
		for _, p := range d.g.Parents(t) {
			if d.alive[p] && !b.nodes[p] {
				b.nodes[p] = true
				tQueue = append(tQueue, p)
			}
		}
	}
	return b
}

// isBipartiteSet reports whether the node set forms a two-level dag in
// the remnant (every alive arc inside runs source -> sink).
func (d *decomposer) isBipartiteSet(b *block) bool {
	if b == nil {
		return false
	}
	for v := range b.nodes {
		hasChildIn := false
		for _, c := range d.g.Children(v) {
			if d.alive[c] && b.nodes[c] {
				hasChildIn = true
				break
			}
		}
		if !hasChildIn {
			continue
		}
		if d.inAlive[v] != 0 {
			return false // interior node: has alive parents and a child inside
		}
	}
	return true
}

// detach finalizes a block as a component: builds the induced subgraph,
// records superdag arcs from prior owners, and removes the component's
// non-sinks plus those of its sinks that are sinks of the whole dag.
func (d *decomposer) detach(b *block, bipartite, fastPath bool) {
	nodes := make([]int, 0, len(b.nodes))
	for v := range b.nodes {
		nodes = append(nodes, v)
	}
	sort.Ints(nodes)

	sub, orig := d.inducedAlive(nodes)
	comp := &Component{
		Index:     len(d.result.Components),
		Nodes:     nodes,
		Sub:       sub,
		Orig:      orig,
		Bipartite: bipartite,
		FastPath:  fastPath,
	}
	superNode := d.result.Super.AddNode(fmt.Sprintf("C%d", comp.Index))
	if superNode != comp.Index {
		panic("decompose: superdag node/component index mismatch")
	}

	for _, v := range nodes {
		if prev := d.owner[v]; prev != -1 && prev != comp.Index {
			if !d.result.Super.HasArc(prev, comp.Index) {
				d.result.Super.MustAddArc(prev, comp.Index)
			}
		}
		d.owner[v] = comp.Index
	}

	// Classify each node within the component and remove what detaches.
	for i, v := range orig {
		if sub.OutDegree(i) > 0 {
			comp.NonSinkCount++
			d.result.ScheduledIn[v] = comp.Index
			d.remove(v)
		} else if d.outAlive[v] == 0 {
			// Sink of the component and of the whole dag: deferred to
			// the final all-sinks phase, removed from the remnant now.
			d.remove(v)
		}
	}
	d.result.Components = append(d.result.Components, comp)
}

// inducedAlive builds the subgraph induced by nodes, keeping only arcs
// whose both endpoints are alive members of the set.
func (d *decomposer) inducedAlive(nodes []int) (*dag.Graph, []int) {
	sub := dag.NewWithCapacity(len(nodes))
	toNew := make(map[int]int, len(nodes))
	orig := make([]int, 0, len(nodes))
	for _, v := range nodes {
		toNew[v] = sub.AddNode(d.g.Name(v))
		orig = append(orig, v)
	}
	for _, u := range nodes {
		for _, c := range d.g.Children(u) {
			if nv, ok := toNew[c]; ok && d.alive[c] {
				sub.MustAddArc(toNew[u], nv)
			}
		}
	}
	return sub, orig
}

func (d *decomposer) remove(v int) {
	if !d.alive[v] {
		panic(fmt.Sprintf("decompose: double removal of node %d", v))
	}
	d.alive[v] = false
	d.aliveCount--
	for _, c := range d.g.Children(v) {
		if d.alive[c] {
			d.inAlive[c]--
		}
	}
	for _, p := range d.g.Parents(v) {
		if d.alive[p] {
			d.outAlive[p]--
		}
	}
}
