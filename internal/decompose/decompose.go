package decompose

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/dag"
)

// Component is one detached piece of the dag, in detachment order.
type Component struct {
	// Index is the component's position in detachment order.
	Index int
	// Nodes holds the original node ids of every job in the component,
	// ascending. A job can appear in two components: as a sink of an
	// earlier one and again in a later one (where it is eventually
	// executed or deferred as a dag sink).
	Nodes []int
	// Sub is the subgraph induced by Nodes on the shortcut-free dag;
	// Orig maps Sub's node indices back to original ids.
	Sub  *dag.Frozen
	Orig []int
	// NonSinkCount is the number of jobs of Sub that have children
	// within Sub — the jobs that the component's schedule executes.
	NonSinkCount int
	// Bipartite records whether the component is a two-level dag (every
	// internal arc runs source -> sink).
	Bipartite bool
	// FastPath records whether the component was detached by the
	// bipartite fast path — i.e. it is a maximal connected bipartite
	// building block in the sense of the theoretical algorithm
	// (Section 2.2 Step 2). A component can be Bipartite but not
	// FastPath when the general closure happened to produce a two-level
	// dag in a round where the strict decomposition would have failed.
	FastPath bool
}

// Result is the outcome of decomposition.
type Result struct {
	// Reduced is the input dag with all shortcut arcs removed (Step 1);
	// Shortcuts lists the removed arcs.
	Reduced   *dag.Frozen
	Shortcuts []dag.Arc
	// Components lists the detached components in detachment order.
	Components []*Component
	// Super is the superdag: node i is component i (named "Ci"); an arc
	// Ci -> Cj records that a sink of Ci reappears in Cj, so Cj cannot
	// start before Ci.
	Super *dag.Frozen
	// ScheduledIn[v] is the index of the component whose schedule
	// executes job v, or -1 when v is a sink of the whole dag (executed
	// in the final phase).
	ScheduledIn []int
}

// Options tunes the decomposition; the zero value is the production
// configuration.
type Options struct {
	// DisableFastPath forces the general containment-minimal search for
	// every component, as the pre-Section-3.5 implementation did. Used
	// by the ablation benchmarks.
	DisableFastPath bool
	// ReduceCache, when non-nil, memoizes the Step 1 transitive
	// reduction by graph fingerprint, so repeated pipeline stages over
	// the same dag (prio + theoretical, or several simulator policies)
	// share one reduction. The cached Reduced graph and Shortcuts slice
	// are shared across hits and must be treated as immutable.
	ReduceCache *dag.ReduceCache
}

// Decompose runs Steps 1-2 of the heuristic on g with default options.
//
//prio:pure
func Decompose(g *dag.Frozen) *Result { return DecomposeOpts(g, Options{}) }

// DecomposeOpts runs Steps 1-2 of the heuristic on g.
//
//prio:pure
func DecomposeOpts(g *dag.Frozen, opts Options) *Result {
	reduced, shortcuts := g.TransitiveReductionCached(opts.ReduceCache)
	d := &decomposer{
		g:        reduced,
		alive:    make([]bool, reduced.NumNodes()),
		inAlive:  make([]int, reduced.NumNodes()),
		outAlive: make([]int, reduced.NumNodes()),
		owner:    make([]int, reduced.NumNodes()),
		mark:     make([]int32, reduced.NumNodes()),
		inBlock:  make([]bool, reduced.NumNodes()),
		isSource: make([]bool, reduced.NumNodes()),
		assigned: make([]bool, reduced.NumNodes()),
		superB:   dag.New(),
		result: &Result{
			Reduced:     reduced,
			Shortcuts:   shortcuts,
			ScheduledIn: make([]int, reduced.NumNodes()),
		},
		fastPath: !opts.DisableFastPath,
	}
	for v := 0; v < reduced.NumNodes(); v++ {
		d.alive[v] = true
		d.inAlive[v] = reduced.InDegree(v)
		d.outAlive[v] = reduced.OutDegree(v)
		d.owner[v] = -1
		d.mark[v] = -1
		d.result.ScheduledIn[v] = -1
	}
	d.aliveCount = reduced.NumNodes()
	d.run()
	return d.result
}

type decomposer struct {
	g          *dag.Frozen
	alive      []bool
	inAlive    []int   // number of alive parents
	outAlive   []int   // number of alive children
	owner      []int   // last component that contained the node, or -1
	mark       []int32 // scratch: local index during inducedAlive, else -1
	inBlock    []bool  // scratch: membership of the block being closed
	isSource   []bool  // scratch: current-round sources (bipartiteBlocks)
	assigned   []bool  // scratch: sources grouped this round (bipartiteBlocks)
	nameBuf    []byte  // scratch: superdag node names ("C<i>")
	blockBuf   []int   // scratch: nodes of the closure being attempted
	srcsBuf    []int   // scratch: source queue of the closure being attempted
	aliveCount int
	fastPath   bool
	superB     *dag.Builder // superdag under construction; frozen in run
	result     *Result
}

func (d *decomposer) run() {
	for d.aliveCount > 0 {
		sources := d.currentSources()
		if len(sources) == 0 {
			panic("decompose: nonempty remnant without sources (cycle?)")
		}
		if d.fastPath {
			if blocks := d.bipartiteBlocks(sources); len(blocks) > 0 {
				for _, b := range blocks {
					d.detach(b, true, true)
				}
				continue
			}
		}
		b := d.minimalClosure(sources)
		d.detach(b, d.isBipartiteSet(b), false)
	}
	d.addDependencyArcs()
	d.result.Super = d.superB.MustFreeze()
}

// addDependencyArcs completes the superdag with execution-order
// constraints that the shared-node (composition) arcs alone can miss: an
// interior non-sink of a component may have children outside it, and
// those children are executed by later components that need not share
// any node with it. For every reduced arc p -> v whose endpoints are
// scheduled in different components, the parent's component must precede
// the child's. All such arcs point from an earlier-detached component to
// a later one, so the superdag stays acyclic.
func (d *decomposer) addDependencyArcs() {
	for p := 0; p < d.g.NumNodes(); p++ {
		a := d.result.ScheduledIn[p]
		if a == -1 {
			continue
		}
		for _, v := range d.g.Children(p) {
			b := d.result.ScheduledIn[v]
			if b == -1 || b == a {
				continue
			}
			if !d.superB.HasArc(a, b) {
				d.superB.MustAddArc(a, b)
			}
		}
	}
}

// currentSources returns the alive nodes with no alive parents, ascending.
func (d *decomposer) currentSources() []int {
	var out []int
	for v := 0; v < d.g.NumNodes(); v++ {
		if d.alive[v] && d.inAlive[v] == 0 {
			out = append(out, v)
		}
	}
	return out
}

// block is a component-in-progress: a set of remnant nodes. nodes is in
// discovery order; membership during construction is tracked in the
// decomposer's inBlock scratch (cleared before the block is handed on),
// so building a block costs one slice instead of a hash map.
type block struct {
	nodes   []int
	minNode int // smallest source id, for deterministic ordering
}

// bipartiteBlocks partitions (a subset of) the current sources into
// maximal connected bipartite building blocks: closures in which every
// parent of every reached sink is itself a current source. Sources whose
// closure touches an interior (non-source) parent are left for the
// general path. Isolated sources form trivial single-node blocks.
func (d *decomposer) bipartiteBlocks(sources []int) []*block {
	for _, s := range sources {
		d.isSource[s] = true
	}
	var blocks []*block
	for _, s := range sources {
		if d.assigned[s] {
			continue
		}
		// The closure grows in reusable scratch and is copied out only
		// when it succeeds, so failed attempts cost no allocations.
		buf := append(d.blockBuf[:0], s)
		srcs := append(d.srcsBuf[:0], s)
		minNode := s
		d.inBlock[s] = true
		ok := true
		for i := 0; i < len(srcs); i++ {
			u := srcs[i]
			for _, c := range d.g.Children(u) {
				if !d.alive[c] || d.inBlock[c] {
					continue
				}
				// every alive parent of the sink must be a current source
				for _, p := range d.g.Parents(int(c)) {
					if d.alive[p] && !d.isSource[p] {
						ok = false
					}
				}
				if !ok {
					break
				}
				d.inBlock[c] = true
				buf = append(buf, int(c))
				for _, p := range d.g.Parents(int(c)) {
					if d.alive[p] && !d.inBlock[p] {
						d.inBlock[p] = true
						buf = append(buf, int(p))
						srcs = append(srcs, int(p))
						if int(p) < minNode {
							minNode = int(p)
						}
					}
				}
			}
			if !ok {
				break
			}
		}
		// Mark every source pulled into this closure as handled this
		// round, whether or not the block is valid: a failed closure
		// poisons all sources connected through it.
		for _, u := range srcs {
			d.assigned[u] = true
		}
		for _, v := range buf {
			d.inBlock[v] = false
		}
		d.blockBuf, d.srcsBuf = buf, srcs
		if ok {
			nodes := make([]int, len(buf))
			copy(nodes, buf)
			blocks = append(blocks, &block{nodes: nodes, minNode: minNode})
		}
	}
	for _, s := range sources {
		d.isSource[s] = false
		d.assigned[s] = false
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].minNode < blocks[j].minNode })
	return blocks
}

// minimalClosure computes the closure C(s) for every current source and
// returns a containment-minimal one (smallest size, ties broken by
// smallest source id). One component per round: detaching it can expose
// new sources that change the other closures.
func (d *decomposer) minimalClosure(sources []int) *block {
	var best *block
	for _, s := range sources {
		c := d.closure(s)
		if best == nil || len(c.nodes) < len(best.nodes) ||
			(len(c.nodes) == len(best.nodes) && c.minNode < best.minNode) {
			best = c
		}
	}
	return best
}

// closure computes C(s) per the paper's BFS-like algorithm: S starts as
// {s}; children of S-jobs join T; parents of T-jobs join T; T-jobs that
// are sources of the remnant move to S; repeat to fixpoint.
func (d *decomposer) closure(s int) *block {
	b := &block{nodes: []int{s}, minNode: s}
	d.inBlock[s] = true
	srcQueue := []int{s} // S jobs whose children still need expanding
	tQueue := []int{}    // T jobs whose parents still need expanding
	for len(srcQueue) > 0 || len(tQueue) > 0 {
		if len(srcQueue) > 0 {
			u := srcQueue[len(srcQueue)-1]
			srcQueue = srcQueue[:len(srcQueue)-1]
			for _, c := range d.g.Children(u) {
				if d.alive[c] && !d.inBlock[c] {
					d.inBlock[c] = true
					b.nodes = append(b.nodes, int(c))
					tQueue = append(tQueue, int(c))
				}
			}
			continue
		}
		t := tQueue[len(tQueue)-1]
		tQueue = tQueue[:len(tQueue)-1]
		// T members that are sources of the remnant behave as S members.
		if d.inAlive[t] == 0 {
			if t < b.minNode {
				b.minNode = t
			}
			srcQueue = append(srcQueue, t)
		}
		for _, p := range d.g.Parents(t) {
			if d.alive[p] && !d.inBlock[p] {
				d.inBlock[p] = true
				b.nodes = append(b.nodes, int(p))
				tQueue = append(tQueue, int(p))
			}
		}
	}
	for _, v := range b.nodes {
		d.inBlock[v] = false
	}
	return b
}

// isBipartiteSet reports whether the node set forms a two-level dag in
// the remnant (every alive arc inside runs source -> sink).
func (d *decomposer) isBipartiteSet(b *block) bool {
	if b == nil {
		return false
	}
	for _, v := range b.nodes {
		d.inBlock[v] = true
	}
	defer func() {
		for _, v := range b.nodes {
			d.inBlock[v] = false
		}
	}()
	for _, v := range b.nodes {
		hasChildIn := false
		for _, c := range d.g.Children(v) {
			if d.alive[c] && d.inBlock[c] {
				hasChildIn = true
				break
			}
		}
		if !hasChildIn {
			continue
		}
		if d.inAlive[v] != 0 {
			return false // interior node: has alive parents and a child inside
		}
	}
	return true
}

// detach finalizes a block as a component: builds the induced subgraph,
// records superdag arcs from prior owners, and removes the component's
// non-sinks plus those of its sinks that are sinks of the whole dag.
func (d *decomposer) detach(b *block, bipartite, fastPath bool) {
	// The block is dead after detachment, so its node list is sorted in
	// place and adopted as the component's, with no copy.
	nodes := b.nodes
	sort.Ints(nodes)

	sub, orig := d.inducedAlive(nodes)
	comp := &Component{
		Index:     len(d.result.Components),
		Nodes:     nodes,
		Sub:       sub,
		Orig:      orig,
		Bipartite: bipartite,
		FastPath:  fastPath,
	}
	d.nameBuf = append(d.nameBuf[:0], 'C')
	d.nameBuf = strconv.AppendInt(d.nameBuf, int64(comp.Index), 10)
	superNode := d.superB.AddNode(string(d.nameBuf))
	if superNode != comp.Index {
		panic("decompose: superdag node/component index mismatch")
	}

	for _, v := range nodes {
		if prev := d.owner[v]; prev != -1 && prev != comp.Index {
			if !d.superB.HasArc(prev, comp.Index) {
				d.superB.MustAddArc(prev, comp.Index)
			}
		}
		d.owner[v] = comp.Index
	}

	// Classify each node within the component and remove what detaches.
	for i, v := range orig {
		if sub.OutDegree(i) > 0 {
			comp.NonSinkCount++
			d.result.ScheduledIn[v] = comp.Index
			d.remove(v)
		} else if d.outAlive[v] == 0 {
			// Sink of the component and of the whole dag: deferred to
			// the final all-sinks phase, removed from the remnant now.
			d.remove(v)
		}
	}
	d.result.Components = append(d.result.Components, comp)
}

// inducedAlive builds the subgraph induced by nodes, keeping only arcs
// whose both endpoints are alive members of the set. The subgraph is
// assembled directly in CSR form — names are shared with the reduced
// dag and the only per-component allocations are the frozen arrays
// themselves (the membership scratch is reused across components).
func (d *decomposer) inducedAlive(nodes []int) (*dag.Frozen, []int) {
	n := len(nodes)
	for i, v := range nodes {
		d.mark[v] = int32(i)
	}
	names := make([]string, n)
	var m int32
	for _, v := range nodes {
		for _, c := range d.g.Children(v) {
			if d.alive[c] && d.mark[c] >= 0 {
				m++
			}
		}
	}
	// childStart and the arena share one backing array: FromCSR takes
	// ownership of both anyway, and a single allocation per component is
	// measurably cheaper on dags that decompose into tens of thousands
	// of tiny components.
	backing := make([]int32, int32(n+1)+2*m)
	childStart, arena := backing[:n+1], backing[n+1:]
	m = 0
	for i, v := range nodes {
		names[i] = d.g.Name(v)
		for _, c := range d.g.Children(v) {
			if d.alive[c] && d.mark[c] >= 0 {
				m++
			}
		}
		childStart[i+1] = m
	}
	for i, v := range nodes {
		next := childStart[i]
		for _, c := range d.g.Children(v) {
			if d.alive[c] && d.mark[c] >= 0 {
				arena[next] = d.mark[c]
				next++
			}
		}
	}
	for _, v := range nodes {
		d.mark[v] = -1
	}
	sub, err := dag.FromCSR(names, childStart, arena)
	if err != nil {
		panic(err) // unreachable: an induced subgraph of a dag is a dag
	}
	return sub, nodes
}

func (d *decomposer) remove(v int) {
	if !d.alive[v] {
		panic(fmt.Sprintf("decompose: double removal of node %d", v))
	}
	d.alive[v] = false
	d.aliveCount--
	for _, c := range d.g.Children(v) {
		if d.alive[c] {
			d.inAlive[c]--
		}
	}
	for _, p := range d.g.Parents(v) {
		if d.alive[p] {
			d.outAlive[p]--
		}
	}
}
