// Package icopt provides exact IC-optimality oracles for small dags by
// exhaustive search over downward-closed execution prefixes. The
// scheduling theory defines a schedule as IC optimal when, after every
// number t of executed jobs, the number of eligible jobs matches the
// maximum achievable by any valid execution of t jobs; this package
// computes that maximum directly, so tests (and users exploring the
// theory) can certify schedules produced by the heuristic or the
// theoretical algorithm.
//
// The search enumerates all 2^n job subsets, so it is limited to dags of
// at most MaxNodes jobs.
package icopt

import (
	"fmt"
	"math/bits"

	"repro/internal/dag"
)

// MaxNodes bounds the exhaustive search (2^n subsets are enumerated).
const MaxNodes = 24

// OptimalTrace returns, for every t in [0, n], the maximum number of
// eligible jobs over all downward-closed sets of t executed jobs — the
// IC-optimality envelope E*(t). An error is returned for dags larger
// than MaxNodes.
//
//prio:pure
func OptimalTrace(g *dag.Frozen) ([]int, error) {
	n := g.NumNodes()
	if n > MaxNodes {
		return nil, fmt.Errorf("icopt: dag has %d jobs, exhaustive bound is %d", n, MaxNodes)
	}
	// Per-node parent masks let each subset be checked in O(n).
	parentMask := make([]uint32, n)
	for v := 0; v < n; v++ {
		for _, p := range g.Parents(v) {
			parentMask[v] |= 1 << uint(p)
		}
	}
	best := make([]int, n+1)
	for i := range best {
		best[i] = -1
	}
	for mask := uint32(0); mask < 1<<uint(n); mask++ {
		closed := true
		eligible := 0
		for v := 0; v < n; v++ {
			bit := uint32(1) << uint(v)
			if mask&bit != 0 {
				if parentMask[v]&^mask != 0 {
					closed = false
					break
				}
			} else if parentMask[v]&^mask == 0 {
				eligible++
			}
		}
		if !closed {
			continue
		}
		size := bits.OnesCount32(mask)
		if eligible > best[size] {
			best[size] = eligible
		}
	}
	return best, nil
}

// IsICOptimal reports whether the given complete execution order of g
// achieves the IC-optimality envelope at every step. The second result
// is the first step at which the order falls short (-1 when optimal).
// An error is returned when the order is invalid or the dag exceeds
// MaxNodes.
//
//prio:pure
func IsICOptimal(g *dag.Frozen, order []int) (bool, int, error) {
	if len(order) != g.NumNodes() {
		return false, -1, fmt.Errorf("icopt: order has %d jobs, dag has %d", len(order), g.NumNodes())
	}
	envelope, err := OptimalTrace(g)
	if err != nil {
		return false, -1, err
	}
	trace, err := eligibilityTrace(g, order)
	if err != nil {
		return false, -1, err
	}
	for t := range trace {
		if trace[t] < envelope[t] {
			return false, t, nil
		}
	}
	return true, -1, nil
}

// AdmitsICOptimalSchedule reports whether any IC-optimal schedule exists
// for g: a greedy certificate search that, at each step, keeps the set
// of downward-closed prefixes achieving the envelope and advances them
// by one job. The dag admits an IC-optimal schedule exactly when the
// set never empties. (Some simple dags admit none — the theory's
// motivating limitation.)
//
//prio:pure
func AdmitsICOptimalSchedule(g *dag.Frozen) (bool, error) {
	n := g.NumNodes()
	if n > MaxNodes {
		return false, fmt.Errorf("icopt: dag has %d jobs, exhaustive bound is %d", n, MaxNodes)
	}
	envelope, err := OptimalTrace(g)
	if err != nil {
		return false, err
	}
	parentMask := make([]uint32, n)
	for v := 0; v < n; v++ {
		for _, p := range g.Parents(v) {
			parentMask[v] |= 1 << uint(p)
		}
	}
	eligibleCount := func(mask uint32) int {
		c := 0
		for v := 0; v < n; v++ {
			bit := uint32(1) << uint(v)
			if mask&bit == 0 && parentMask[v]&^mask == 0 {
				c++
			}
		}
		return c
	}
	// frontier: the envelope-achieving prefixes of size t.
	frontier := map[uint32]bool{0: true}
	for t := 0; t < n; t++ {
		next := make(map[uint32]bool)
		for mask := range frontier {
			for v := 0; v < n; v++ {
				bit := uint32(1) << uint(v)
				if mask&bit != 0 || parentMask[v]&^mask != 0 {
					continue
				}
				nm := mask | bit
				if !next[nm] && eligibleCount(nm) == envelope[t+1] {
					next[nm] = true
				}
			}
		}
		if len(next) == 0 {
			return false, nil
		}
		frontier = next
	}
	return true, nil
}

// eligibilityTrace mirrors core.EligibilityTrace without importing core
// (core's tests import this package).
func eligibilityTrace(g *dag.Frozen, order []int) ([]int, error) {
	n := g.NumNodes()
	remaining := make([]int, n)
	executed := make([]bool, n)
	eligible := 0
	for v := 0; v < n; v++ {
		remaining[v] = g.InDegree(v)
		if remaining[v] == 0 {
			eligible++
		}
	}
	out := make([]int, 0, len(order)+1)
	out = append(out, eligible)
	for _, v := range order {
		if v < 0 || v >= n || executed[v] || remaining[v] != 0 {
			return nil, fmt.Errorf("icopt: invalid execution order at job %d", v)
		}
		executed[v] = true
		eligible--
		for _, c := range g.Children(v) {
			remaining[c]--
			if remaining[c] == 0 {
				eligible++
			}
		}
		out = append(out, eligible)
	}
	return out, nil
}
