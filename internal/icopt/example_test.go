package icopt_test

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/icopt"
)

func ExampleIsICOptimal() {
	// Fig. 3: the c-first order is IC-optimal, the FIFO order is not.
	gb := dag.New()
	a, b := gb.AddNode("a"), gb.AddNode("b")
	c, d, e := gb.AddNode("c"), gb.AddNode("d"), gb.AddNode("e")
	gb.MustAddArc(a, b)
	gb.MustAddArc(c, d)
	gb.MustAddArc(c, e)
	g := gb.MustFreeze()

	ok, _, _ := icopt.IsICOptimal(g, []int{c, a, b, d, e})
	fmt.Println("PRIO order optimal:", ok)
	ok, at, _ := icopt.IsICOptimal(g, []int{a, c, b, d, e})
	fmt.Println("FIFO order optimal:", ok, "- falls short at step", at)
	// Output:
	// PRIO order optimal: true
	// FIFO order optimal: false - falls short at step 1
}
