package icopt_test

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/icopt"
)

func ExampleIsICOptimal() {
	// Fig. 3: the c-first order is IC-optimal, the FIFO order is not.
	g := dag.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	c, d, e := g.AddNode("c"), g.AddNode("d"), g.AddNode("e")
	g.MustAddArc(a, b)
	g.MustAddArc(c, d)
	g.MustAddArc(c, e)

	ok, _, _ := icopt.IsICOptimal(g, []int{c, a, b, d, e})
	fmt.Println("PRIO order optimal:", ok)
	ok, at, _ := icopt.IsICOptimal(g, []int{a, c, b, d, e})
	fmt.Println("FIFO order optimal:", ok, "- falls short at step", at)
	// Output:
	// PRIO order optimal: true
	// FIFO order optimal: false - falls short at step 1
}
