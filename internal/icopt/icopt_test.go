package icopt

import (
	"fmt"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/dag"
	"repro/internal/rng"
)

func buildChain(n int) *dag.Frozen {
	g := dag.New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("v%d", i))
		if i > 0 {
			g.MustAddArc(i-1, i)
		}
	}
	return g.MustFreeze()
}

func TestOptimalTraceChain(t *testing.T) {
	g := buildChain(4)
	env, err := OptimalTrace(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 1, 1, 0}
	for i := range want {
		if env[i] != want[i] {
			t.Fatalf("envelope = %v, want %v", env, want)
		}
	}
}

func TestOptimalTraceFork(t *testing.T) {
	b := dag.New()
	s := b.AddNode("s")
	for i := 0; i < 3; i++ {
		b.MustAddArc(s, b.AddNode(fmt.Sprintf("c%d", i)))
	}
	env, err := OptimalTrace(b.MustFreeze())
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 2, 1, 0}
	for i := range want {
		if env[i] != want[i] {
			t.Fatalf("envelope = %v, want %v", env, want)
		}
	}
}

func TestOptimalTraceTooLarge(t *testing.T) {
	if _, err := OptimalTrace(buildChain(MaxNodes + 1)); err == nil {
		t.Fatal("oversized dag accepted")
	}
}

func TestIsICOptimal(t *testing.T) {
	// Fig. 3 dag: c,a,b,d,e is IC-optimal; a,c,b,d,e is not (at t=1,
	// executing a leaves eligible {b,c} = 2, but executing c gives
	// {a,d,e} = 3).
	gb := dag.New()
	a, b, c, d, e := gb.AddNode("a"), gb.AddNode("b"), gb.AddNode("c"), gb.AddNode("d"), gb.AddNode("e")
	gb.MustAddArc(a, b)
	gb.MustAddArc(c, d)
	gb.MustAddArc(c, e)
	g := gb.MustFreeze()
	ok, at, err := IsICOptimal(g, []int{c, a, b, d, e})
	if err != nil || !ok {
		t.Fatalf("PRIO order not optimal: ok=%v at=%d err=%v", ok, at, err)
	}
	ok, at, err = IsICOptimal(g, []int{a, c, b, d, e})
	if err != nil || ok || at != 1 {
		t.Fatalf("FIFO order wrongly optimal: ok=%v at=%d err=%v", ok, at, err)
	}
}

func TestIsICOptimalErrors(t *testing.T) {
	g := buildChain(3)
	if _, _, err := IsICOptimal(g, []int{0}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, _, err := IsICOptimal(g, []int{2, 1, 0}); err == nil {
		t.Fatal("invalid order accepted")
	}
}

func TestBuildingBlocksAdmitOptimal(t *testing.T) {
	for name, g := range map[string]*dag.Frozen{
		"W(3,2)":   bipartite.NewW(3, 2),
		"M(2,3)":   bipartite.NewM(2, 3),
		"N(4)":     bipartite.NewN(4),
		"Cycle(4)": bipartite.NewCycle(4),
		"Clique3":  bipartite.NewClique(3, 3),
		"chain":    buildChain(6),
	} {
		ok, err := AdmitsICOptimalSchedule(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ok {
			t.Fatalf("%s must admit an IC-optimal schedule", name)
		}
	}
}

// TestSomeDagPrecludesOptimal reproduces the theory's motivating
// limitation ("there do exist even some simple dags whose structures
// preclude any IC-optimal schedule") by exhibiting one found by search.
func TestSomeDagPrecludesOptimal(t *testing.T) {
	r := rng.New(2026)
	for trial := 0; trial < 4000; trial++ {
		n := 4 + r.Intn(5)
		b := dag.New()
		for i := 0; i < n; i++ {
			b.AddNode(fmt.Sprintf("n%d", i))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.35 {
					b.MustAddArc(i, j)
				}
			}
		}
		g := b.MustFreeze()
		ok, err := AdmitsICOptimalSchedule(g)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Logf("found non-admitting dag after %d trials: %v", trial+1, g.Arcs())
			return
		}
	}
	t.Fatal("no dag precluding IC-optimality found; search too weak")
}

// Sanity: whenever a dag admits an IC-optimal schedule, the greedy
// frontier construction is consistent with the envelope being reachable
// step by step (frontier nonemptiness at every step is exactly what
// AdmitsICOptimalSchedule checks, so cross-check it against a direct
// greedy schedule construction).
func TestAdmitsMatchesGreedyConstruction(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 200; trial++ {
		n := 3 + r.Intn(6)
		b := dag.New()
		for i := 0; i < n; i++ {
			b.AddNode(fmt.Sprintf("n%d", i))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.3 {
					b.MustAddArc(i, j)
				}
			}
		}
		g := b.MustFreeze()
		admits, err := AdmitsICOptimalSchedule(g)
		if err != nil {
			t.Fatal(err)
		}
		found := searchOptimalSchedule(t, g)
		if admits != found {
			t.Fatalf("trial %d: AdmitsICOptimalSchedule=%v but exhaustive search says %v (arcs %v)",
				trial, admits, found, g.Arcs())
		}
	}
}

// searchOptimalSchedule tries to build an IC-optimal schedule by
// backtracking over envelope-achieving extensions.
func searchOptimalSchedule(t *testing.T, g *dag.Frozen) bool {
	t.Helper()
	env, err := OptimalTrace(g)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	parentMask := make([]uint32, n)
	for v := 0; v < n; v++ {
		for _, p := range g.Parents(v) {
			parentMask[v] |= 1 << uint(p)
		}
	}
	eligible := func(mask uint32) int {
		c := 0
		for v := 0; v < n; v++ {
			bit := uint32(1) << uint(v)
			if mask&bit == 0 && parentMask[v]&^mask == 0 {
				c++
			}
		}
		return c
	}
	seen := map[uint32]bool{}
	var rec func(mask uint32, t0 int) bool
	rec = func(mask uint32, t0 int) bool {
		if t0 == n {
			return true
		}
		if seen[mask] {
			return false
		}
		seen[mask] = true
		for v := 0; v < n; v++ {
			bit := uint32(1) << uint(v)
			if mask&bit != 0 || parentMask[v]&^mask != 0 {
				continue
			}
			nm := mask | bit
			if eligible(nm) == env[t0+1] && rec(nm, t0+1) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}
