// Package btree implements an in-memory B-tree ordered set. Section 3.5
// of the paper replaces the naive quadratic superdag-source selection
// with "a B-Tree-based priority queue [CLRS]"; this package is that data
// structure. The Combine phase keys it by (minimum pairwise priority,
// component id) and repeatedly extracts the maximum.
//
// The tree follows the CLRS formulation: every node except the root holds
// between t-1 and 2t-1 keys, where t is the minimum degree; insertion
// splits full nodes on the way down; deletion rebalances by borrowing
// from or merging with siblings on the way down, so both operations make
// a single descent.
package btree

import "fmt"

// Tree is a B-tree holding unique keys ordered by the comparator given to
// New. It is not safe for concurrent use.
type Tree[K any] struct {
	less   func(a, b K) bool
	minDeg int
	root   *node[K]
	size   int
}

type node[K any] struct {
	keys     []K
	children []*node[K] // empty for leaves
}

func (n *node[K]) leaf() bool { return len(n.children) == 0 }

// New returns an empty tree with the given minimum degree (>= 2) and
// strict-weak-order comparator.
func New[K any](minDeg int, less func(a, b K) bool) *Tree[K] {
	if minDeg < 2 {
		panic(fmt.Sprintf("btree: minimum degree %d < 2", minDeg))
	}
	if less == nil {
		panic("btree: nil comparator")
	}
	return &Tree[K]{less: less, minDeg: minDeg, root: &node[K]{}}
}

// Len returns the number of keys in the tree.
func (t *Tree[K]) Len() int { return t.size }

func (t *Tree[K]) eq(a, b K) bool { return !t.less(a, b) && !t.less(b, a) }

// findKey returns the index of the first key in n not less than k, and
// whether that key equals k.
func (t *Tree[K]) findKey(n *node[K], k K) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.less(n.keys[mid], k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && !t.less(k, n.keys[lo])
}

// Contains reports whether k is in the tree.
func (t *Tree[K]) Contains(k K) bool {
	_, ok := t.Get(k)
	return ok
}

// Get returns the stored key equal to k (useful when the comparator
// inspects only part of the key) and whether it was found.
func (t *Tree[K]) Get(k K) (K, bool) {
	n := t.root
	for {
		i, found := t.findKey(n, k)
		if found {
			return n.keys[i], true
		}
		if n.leaf() {
			var zero K
			return zero, false
		}
		n = n.children[i]
	}
}

// Insert adds k to the tree. It returns false (leaving the tree
// unchanged) if an equal key is already present.
func (t *Tree[K]) Insert(k K) bool {
	if t.containsFast(k) {
		return false
	}
	r := t.root
	if len(r.keys) == 2*t.minDeg-1 {
		newRoot := &node[K]{children: []*node[K]{r}}
		t.splitChild(newRoot, 0)
		t.root = newRoot
	}
	t.insertNonFull(t.root, k)
	t.size++
	return true
}

func (t *Tree[K]) containsFast(k K) bool {
	_, ok := t.Get(k)
	return ok
}

// splitChild splits the full child n.children[i] around its median key.
func (t *Tree[K]) splitChild(n *node[K], i int) {
	td := t.minDeg
	child := n.children[i]
	median := child.keys[td-1]

	right := &node[K]{keys: append([]K(nil), child.keys[td:]...)}
	if !child.leaf() {
		right.children = append([]*node[K](nil), child.children[td:]...)
		child.children = child.children[:td]
	}
	child.keys = child.keys[:td-1]

	n.keys = append(n.keys, median)
	copy(n.keys[i+1:], n.keys[i:len(n.keys)-1])
	n.keys[i] = median

	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:len(n.children)-1])
	n.children[i+1] = right
}

func (t *Tree[K]) insertNonFull(n *node[K], k K) {
	for {
		i, _ := t.findKey(n, k)
		if n.leaf() {
			n.keys = append(n.keys, k)
			copy(n.keys[i+1:], n.keys[i:len(n.keys)-1])
			n.keys[i] = k
			return
		}
		if len(n.children[i].keys) == 2*t.minDeg-1 {
			t.splitChild(n, i)
			if t.less(n.keys[i], k) {
				i++
			} else if t.eq(n.keys[i], k) {
				return // key rose to this node; cannot happen after containsFast, but stay safe
			}
		}
		n = n.children[i]
	}
}

// Delete removes k from the tree, reporting whether it was present.
func (t *Tree[K]) Delete(k K) bool {
	if !t.containsFast(k) {
		return false
	}
	t.delete(t.root, k)
	if len(t.root.keys) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	t.size--
	return true
}

// delete removes k from the subtree rooted at n. Invariant: n has at
// least minDeg keys whenever it is not the root, guaranteed by the
// caller fattening children before descending.
func (t *Tree[K]) delete(n *node[K], k K) {
	td := t.minDeg
	i, found := t.findKey(n, k)
	if found {
		if n.leaf() {
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			return
		}
		// Internal node: replace with predecessor or successor, or merge.
		if len(n.children[i].keys) >= td {
			pred := t.maxKey(n.children[i])
			n.keys[i] = pred
			t.delete(n.children[i], pred)
			return
		}
		if len(n.children[i+1].keys) >= td {
			succ := t.minKey(n.children[i+1])
			n.keys[i] = succ
			t.delete(n.children[i+1], succ)
			return
		}
		t.mergeChildren(n, i)
		t.delete(n.children[i], k)
		return
	}
	if n.leaf() {
		return // not present
	}
	// Ensure the child we descend into has at least td keys.
	if len(n.children[i].keys) < td {
		i = t.fill(n, i)
	}
	t.delete(n.children[i], k)
}

// fill grows n.children[i] to at least minDeg keys by borrowing from a
// sibling or merging; returns the (possibly shifted) child index to
// descend into.
func (t *Tree[K]) fill(n *node[K], i int) int {
	td := t.minDeg
	if i > 0 && len(n.children[i-1].keys) >= td {
		t.borrowFromLeft(n, i)
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].keys) >= td {
		t.borrowFromRight(n, i)
		return i
	}
	if i < len(n.children)-1 {
		t.mergeChildren(n, i)
		return i
	}
	t.mergeChildren(n, i-1)
	return i - 1
}

func (t *Tree[K]) borrowFromLeft(n *node[K], i int) {
	child, left := n.children[i], n.children[i-1]
	child.keys = append(child.keys, child.keys[0])
	copy(child.keys[1:], child.keys[:len(child.keys)-1])
	child.keys[0] = n.keys[i-1]
	n.keys[i-1] = left.keys[len(left.keys)-1]
	left.keys = left.keys[:len(left.keys)-1]
	if !left.leaf() {
		child.children = append(child.children, nil)
		copy(child.children[1:], child.children[:len(child.children)-1])
		child.children[0] = left.children[len(left.children)-1]
		left.children = left.children[:len(left.children)-1]
	}
}

func (t *Tree[K]) borrowFromRight(n *node[K], i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys = append(child.keys, n.keys[i])
	n.keys[i] = right.keys[0]
	right.keys = append(right.keys[:0], right.keys[1:]...)
	if !right.leaf() {
		child.children = append(child.children, right.children[0])
		right.children = append(right.children[:0], right.children[1:]...)
	}
}

// mergeChildren merges n.children[i], n.keys[i], and n.children[i+1]
// into a single child at i.
func (t *Tree[K]) mergeChildren(n *node[K], i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys = append(child.keys, n.keys[i])
	child.keys = append(child.keys, right.keys...)
	child.children = append(child.children, right.children...)
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func (t *Tree[K]) minKey(n *node[K]) K {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0]
}

func (t *Tree[K]) maxKey(n *node[K]) K {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1]
}

// Min returns the smallest key, or ok=false when the tree is empty.
func (t *Tree[K]) Min() (K, bool) {
	if t.size == 0 {
		var zero K
		return zero, false
	}
	return t.minKey(t.root), true
}

// Max returns the largest key, or ok=false when the tree is empty.
func (t *Tree[K]) Max() (K, bool) {
	if t.size == 0 {
		var zero K
		return zero, false
	}
	return t.maxKey(t.root), true
}

// DeleteMin removes and returns the smallest key.
func (t *Tree[K]) DeleteMin() (K, bool) {
	k, ok := t.Min()
	if ok {
		t.Delete(k)
	}
	return k, ok
}

// DeleteMax removes and returns the largest key.
func (t *Tree[K]) DeleteMax() (K, bool) {
	k, ok := t.Max()
	if ok {
		t.Delete(k)
	}
	return k, ok
}

// Ascend calls f on every key in ascending order until f returns false.
func (t *Tree[K]) Ascend(f func(K) bool) {
	t.ascend(t.root, f)
}

func (t *Tree[K]) ascend(n *node[K], f func(K) bool) bool {
	for i, k := range n.keys {
		if !n.leaf() && !t.ascend(n.children[i], f) {
			return false
		}
		if !f(k) {
			return false
		}
	}
	if !n.leaf() {
		return t.ascend(n.children[len(n.children)-1], f)
	}
	return true
}

// Keys returns all keys in ascending order.
func (t *Tree[K]) Keys() []K {
	out := make([]K, 0, t.size)
	t.Ascend(func(k K) bool {
		out = append(out, k)
		return true
	})
	return out
}

// checkInvariants verifies B-tree structural invariants; it is exported
// for tests via the export_test pattern.
func (t *Tree[K]) checkInvariants() error {
	count, err := t.check(t.root, true, nil, nil, -1)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d keys reachable", t.size, count)
	}
	return nil
}

func (t *Tree[K]) check(n *node[K], isRoot bool, lo, hi *K, depth int) (int, error) {
	if !isRoot && len(n.keys) < t.minDeg-1 {
		return 0, fmt.Errorf("btree: underfull node with %d keys", len(n.keys))
	}
	if len(n.keys) > 2*t.minDeg-1 {
		return 0, fmt.Errorf("btree: overfull node with %d keys", len(n.keys))
	}
	for i := 1; i < len(n.keys); i++ {
		if !t.less(n.keys[i-1], n.keys[i]) {
			return 0, fmt.Errorf("btree: keys out of order within node")
		}
	}
	if lo != nil && len(n.keys) > 0 && !t.less(*lo, n.keys[0]) {
		return 0, fmt.Errorf("btree: key below lower bound")
	}
	if hi != nil && len(n.keys) > 0 && !t.less(n.keys[len(n.keys)-1], *hi) {
		return 0, fmt.Errorf("btree: key above upper bound")
	}
	if n.leaf() {
		return len(n.keys), nil
	}
	if len(n.children) != len(n.keys)+1 {
		return 0, fmt.Errorf("btree: %d children for %d keys", len(n.children), len(n.keys))
	}
	total := len(n.keys)
	for i, c := range n.children {
		var clo, chi *K
		if i > 0 {
			clo = &n.keys[i-1]
		} else {
			clo = lo
		}
		if i < len(n.keys) {
			chi = &n.keys[i]
		} else {
			chi = hi
		}
		sub, err := t.check(c, false, clo, chi, depth+1)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}
