package btree

// CheckInvariants exposes the structural validator to tests.
func (t *Tree[K]) CheckInvariants() error { return t.checkInvariants() }
