package btree

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func intTree(minDeg int) *Tree[int] {
	return New(minDeg, func(a, b int) bool { return a < b })
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New[int](1, func(a, b int) bool { return a < b }) },
		func() { New[int](2, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestInsertContains(t *testing.T) {
	tr := intTree(2)
	for _, k := range []int{5, 3, 8, 1, 4, 9, 2, 7, 6, 0} {
		if !tr.Insert(k) {
			t.Fatalf("Insert(%d) reported duplicate", k)
		}
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for k := 0; k < 10; k++ {
		if !tr.Contains(k) {
			t.Fatalf("Contains(%d) false", k)
		}
	}
	if tr.Contains(42) {
		t.Fatal("Contains(42) true")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDuplicate(t *testing.T) {
	tr := intTree(2)
	tr.Insert(1)
	if tr.Insert(1) {
		t.Fatal("duplicate insert accepted")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestMinMaxEmpty(t *testing.T) {
	tr := intTree(2)
	if _, ok := tr.Min(); ok {
		t.Fatal("Min of empty ok")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max of empty ok")
	}
	if _, ok := tr.DeleteMin(); ok {
		t.Fatal("DeleteMin of empty ok")
	}
	if _, ok := tr.DeleteMax(); ok {
		t.Fatal("DeleteMax of empty ok")
	}
}

func TestMinMax(t *testing.T) {
	tr := intTree(3)
	for k := 100; k > 0; k-- {
		tr.Insert(k)
	}
	if mn, _ := tr.Min(); mn != 1 {
		t.Fatalf("Min = %d", mn)
	}
	if mx, _ := tr.Max(); mx != 100 {
		t.Fatalf("Max = %d", mx)
	}
}

func TestDeleteLeafAndInternal(t *testing.T) {
	tr := intTree(2)
	for k := 0; k < 50; k++ {
		tr.Insert(k)
	}
	for _, k := range []int{25, 0, 49, 10, 30} {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) false", k)
		}
		if tr.Contains(k) {
			t.Fatalf("Contains(%d) after delete", k)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after Delete(%d): %v", k, err)
		}
	}
	if tr.Len() != 45 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Delete(25) {
		t.Fatal("double delete succeeded")
	}
}

func TestDeleteAllAscending(t *testing.T) {
	tr := intTree(2)
	for k := 0; k < 200; k++ {
		tr.Insert(k)
	}
	for k := 0; k < 200; k++ {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after Delete(%d): %v", k, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
}

func TestDeleteAllDescending(t *testing.T) {
	tr := intTree(3)
	for k := 0; k < 200; k++ {
		tr.Insert(k)
	}
	for k := 199; k >= 0; k-- {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if tr.Len() != 0 {
		t.Fatal("tree not empty")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMinMaxDrain(t *testing.T) {
	tr := intTree(2)
	for k := 0; k < 64; k++ {
		tr.Insert(k)
	}
	for want := 0; want < 32; want++ {
		got, ok := tr.DeleteMin()
		if !ok || got != want {
			t.Fatalf("DeleteMin = %d,%v want %d", got, ok, want)
		}
	}
	for want := 63; want >= 32; want-- {
		got, ok := tr.DeleteMax()
		if !ok || got != want {
			t.Fatalf("DeleteMax = %d,%v want %d", got, ok, want)
		}
	}
	if tr.Len() != 0 {
		t.Fatal("not drained")
	}
}

func TestAscendOrderAndEarlyStop(t *testing.T) {
	tr := intTree(2)
	r := rng.New(1)
	for _, k := range r.Perm(500) {
		tr.Insert(k)
	}
	prev := -1
	tr.Ascend(func(k int) bool {
		if k <= prev {
			t.Fatalf("Ascend out of order: %d after %d", k, prev)
		}
		prev = k
		return true
	})
	count := 0
	tr.Ascend(func(int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestKeys(t *testing.T) {
	tr := intTree(4)
	for _, k := range []int{9, 1, 5} {
		tr.Insert(k)
	}
	got := tr.Keys()
	want := []int{1, 5, 9}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Keys = %v", got)
	}
}

func TestGetCompositeKey(t *testing.T) {
	type entry struct {
		id  int
		val string
	}
	tr := New(2, func(a, b entry) bool { return a.id < b.id })
	tr.Insert(entry{1, "one"})
	tr.Insert(entry{2, "two"})
	got, ok := tr.Get(entry{id: 2})
	if !ok || got.val != "two" {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := tr.Get(entry{id: 3}); ok {
		t.Fatal("Get of missing id succeeded")
	}
}

// Property: the tree behaves exactly like a sorted set under a random
// operation sequence, for several minimum degrees.
func TestQuickAgainstMapModel(t *testing.T) {
	for _, minDeg := range []int{2, 3, 5, 8} {
		f := func(seed uint64) bool {
			r := rng.New(seed)
			tr := intTree(minDeg)
			model := map[int]bool{}
			for op := 0; op < 400; op++ {
				k := r.Intn(100)
				switch r.Intn(3) {
				case 0:
					ins := tr.Insert(k)
					if ins == model[k] {
						return false // Insert must succeed iff absent
					}
					model[k] = true
				case 1:
					del := tr.Delete(k)
					if del != model[k] {
						return false
					}
					delete(model, k)
				case 2:
					if tr.Contains(k) != model[k] {
						return false
					}
				}
				if tr.Len() != len(model) {
					return false
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				return false
			}
			keys := tr.Keys()
			want := make([]int, 0, len(model))
			for k := range model {
				want = append(want, k)
			}
			sort.Ints(want)
			if len(keys) != len(want) {
				return false
			}
			for i := range want {
				if keys[i] != want[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatalf("minDeg=%d: %v", minDeg, err)
		}
	}
}

// Property: Min/Max always agree with the model under churn.
func TestQuickMinMaxUnderChurn(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		tr := intTree(2)
		var sorted []int
		for op := 0; op < 300; op++ {
			k := r.Intn(1000)
			if r.Intn(2) == 0 {
				if tr.Insert(k) {
					sorted = append(sorted, k)
					sort.Ints(sorted)
				}
			} else if len(sorted) > 0 {
				// delete a random present key
				k = sorted[r.Intn(len(sorted))]
				tr.Delete(k)
				i := sort.SearchInts(sorted, k)
				sorted = append(sorted[:i], sorted[i+1:]...)
			}
			if len(sorted) == 0 {
				if _, ok := tr.Min(); ok {
					return false
				}
				continue
			}
			mn, _ := tr.Min()
			mx, _ := tr.Max()
			if mn != sorted[0] || mx != sorted[len(sorted)-1] {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	r := rng.New(1)
	keys := r.Perm(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := intTree(8)
		for _, k := range keys {
			tr.Insert(k)
		}
	}
}

func BenchmarkDeleteMax(b *testing.B) {
	r := rng.New(1)
	keys := r.Perm(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := intTree(8)
		for _, k := range keys {
			tr.Insert(k)
		}
		b.StartTimer()
		for tr.Len() > 0 {
			tr.DeleteMax()
		}
	}
}
