package workloads

import (
	"fmt"

	"repro/internal/dag"
)

// The paper's conclusion calls for "further simulations ... on a broad
// repertoire of other dags". This file provides the classic computation
// dags of the underlying scheduling theory — meshes (Rosenberg's
// IC-scheduling of mesh-structured computations), reduction and
// expansion trees, butterflies/FFT, and pyramids (Rosenberg &
// Yurkewych's "common computation-dags") — so the evaluation can extend
// to exactly the structures the theory was built around.

// Mesh builds the 2-dimensional evolving mesh of order n: nodes (i, j)
// with 0 <= i, j < n and arcs (i,j) -> (i+1,j) and (i,j) -> (i,j+1).
// n^2 jobs; the single source is (0,0).
func Mesh(n int) *dag.Frozen {
	if n < 1 {
		panic(fmt.Sprintf("workloads: Mesh order %d < 1", n))
	}
	g := dag.NewWithCapacity(n * n)
	id := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.AddNode(fmt.Sprintf("m%d.%d", i, j))
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i+1 < n {
				g.MustAddArc(id(i, j), id(i+1, j))
			}
			if j+1 < n {
				g.MustAddArc(id(i, j), id(i, j+1))
			}
		}
	}
	return g.MustFreeze()
}

// ReductionTree builds the complete binary in-tree of the given height:
// 2^(h+1)-1 jobs, 2^h leaves (the sources), one root (the sink) — the
// shape of parallel reductions.
func ReductionTree(height int) *dag.Frozen {
	if height < 0 {
		panic(fmt.Sprintf("workloads: ReductionTree height %d < 0", height))
	}
	n := 1<<(height+1) - 1
	g := dag.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("t%d", i))
	}
	// heap numbering: node i has children 2i+1, 2i+2 in the tree; arcs
	// run child -> parent (reduction).
	for i := 0; i < n; i++ {
		if 2*i+1 < n {
			g.MustAddArc(2*i+1, i)
		}
		if 2*i+2 < n {
			g.MustAddArc(2*i+2, i)
		}
	}
	return g.MustFreeze()
}

// ExpansionTree builds the complete binary out-tree of the given
// height — ReductionTree with every arc reversed (the shape of parallel
// divides).
func ExpansionTree(height int) *dag.Frozen {
	return ReductionTree(height).Reverse()
}

// Butterfly builds the d-dimensional FFT/butterfly dag: d+1 ranks of
// 2^d jobs; the job at (rank r, position p) feeds positions p and
// p XOR 2^r at rank r+1. (d+1) * 2^d jobs.
func Butterfly(d int) *dag.Frozen {
	if d < 1 {
		panic(fmt.Sprintf("workloads: Butterfly dimension %d < 1", d))
	}
	width := 1 << d
	g := dag.NewWithCapacity((d + 1) * width)
	id := func(rank, pos int) int { return rank*width + pos }
	for r := 0; r <= d; r++ {
		for p := 0; p < width; p++ {
			g.AddNode(fmt.Sprintf("f%d.%d", r, p))
		}
	}
	for r := 0; r < d; r++ {
		for p := 0; p < width; p++ {
			g.MustAddArc(id(r, p), id(r+1, p))
			g.MustAddArc(id(r, p), id(r+1, p^(1<<r)))
		}
	}
	return g.MustFreeze()
}

// Pyramid builds the 2-dimensional pyramid dag of the given height:
// levels of (h+1-l)^2 jobs; the job at (l, i, j) is fed by the four
// jobs (l-1, i..i+1, j..j+1) of the level below. The base is the
// source level; the apex is the sink.
func Pyramid(height int) *dag.Frozen {
	if height < 0 {
		panic(fmt.Sprintf("workloads: Pyramid height %d < 0", height))
	}
	g := dag.New()
	ids := make([][][]int, height+1)
	for l := 0; l <= height; l++ {
		side := height + 1 - l
		ids[l] = make([][]int, side)
		for i := 0; i < side; i++ {
			ids[l][i] = make([]int, side)
			for j := 0; j < side; j++ {
				ids[l][i][j] = g.AddNode(fmt.Sprintf("p%d.%d.%d", l, i, j))
			}
		}
	}
	for l := 1; l <= height; l++ {
		side := height + 1 - l
		for i := 0; i < side; i++ {
			for j := 0; j < side; j++ {
				for di := 0; di <= 1; di++ {
					for dj := 0; dj <= 1; dj++ {
						g.MustAddArc(ids[l-1][i+di][j+dj], ids[l][i][j])
					}
				}
			}
		}
	}
	return g.MustFreeze()
}

// Wavefront builds the n x n anti-diagonal wavefront (dynamic
// programming) dag: node (i,j) depends on (i-1,j) and (i,j-1) — the
// reverse orientation of Mesh, with the single source at (0,0) and the
// single sink at (n-1,n-1). Provided separately because stencil
// workloads name it this way; structurally it equals Mesh.
func Wavefront(n int) *dag.Frozen { return Mesh(n) }

// ClassicNames lists the repertoire generators for harness loops.
func ClassicNames() []string {
	return []string{"mesh", "reduction", "expansion", "butterfly", "pyramid"}
}

// ClassicByName builds a repertoire dag by name at a small default size
// scaled for simulation studies.
func ClassicByName(name string) (*dag.Frozen, error) {
	switch name {
	case "mesh":
		return Mesh(24), nil
	case "reduction":
		return ReductionTree(8), nil
	case "expansion":
		return ExpansionTree(8), nil
	case "butterfly":
		return Butterfly(6), nil
	case "pyramid":
		return Pyramid(14), nil
	default:
		return nil, fmt.Errorf("workloads: unknown classic dag %q", name)
	}
}
