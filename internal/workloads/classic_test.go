package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/icopt"
)

func TestMeshShape(t *testing.T) {
	g := Mesh(4)
	if g.NumNodes() != 16 || g.NumArcs() != 24 {
		t.Fatalf("mesh 4: %d nodes, %d arcs", g.NumNodes(), g.NumArcs())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Fatal("mesh must have one source and one sink")
	}
	if g.CriticalPathLength() != 7 {
		t.Fatalf("mesh 4 critical path = %d, want 2n-1", g.CriticalPathLength())
	}
	w, _, err := g.Width()
	if err != nil || w != 4 {
		t.Fatalf("mesh 4 width = %d (%v), want n", w, err)
	}
}

func TestReductionTreeShape(t *testing.T) {
	g := ReductionTree(3)
	if g.NumNodes() != 15 {
		t.Fatalf("nodes = %d, want 15", g.NumNodes())
	}
	if len(g.Sources()) != 8 || len(g.Sinks()) != 1 {
		t.Fatalf("sources %d, sinks %d", len(g.Sources()), len(g.Sinks()))
	}
	// the root has two parents, every internal node has two parents
	if g.InDegree(0) != 2 {
		t.Fatal("root in-degree wrong")
	}
}

func TestExpansionTreeIsReverse(t *testing.T) {
	g := ExpansionTree(3)
	if len(g.Sources()) != 1 || len(g.Sinks()) != 8 {
		t.Fatalf("sources %d, sinks %d", len(g.Sources()), len(g.Sinks()))
	}
}

func TestButterflyShape(t *testing.T) {
	g := Butterfly(3)
	if g.NumNodes() != 32 { // 4 ranks x 8
		t.Fatalf("nodes = %d, want 32", g.NumNodes())
	}
	if g.NumArcs() != 48 { // 3 x 8 x 2
		t.Fatalf("arcs = %d, want 48", g.NumArcs())
	}
	if len(g.Sources()) != 8 || len(g.Sinks()) != 8 {
		t.Fatal("butterfly rank structure wrong")
	}
}

func TestPyramidShape(t *testing.T) {
	g := Pyramid(2)
	// levels 3x3 + 2x2 + 1x1 = 14
	if g.NumNodes() != 14 {
		t.Fatalf("nodes = %d, want 14", g.NumNodes())
	}
	if len(g.Sources()) != 9 || len(g.Sinks()) != 1 {
		t.Fatalf("sources %d sinks %d", len(g.Sources()), len(g.Sinks()))
	}
}

func TestClassicByName(t *testing.T) {
	for _, name := range ClassicNames() {
		g, err := ClassicByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := core.Prioritize(g)
		if err := core.ValidateExecutionOrder(g, s.Order); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ClassicByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestConstructorPanicsClassic(t *testing.T) {
	for name, f := range map[string]func(){
		"Mesh(0)":          func() { Mesh(0) },
		"ReductionTree(-)": func() { ReductionTree(-1) },
		"Butterfly(0)":     func() { Butterfly(0) },
		"Pyramid(-)":       func() { Pyramid(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestHeuristicOptimalOnTheoryDags: the theory proves meshes, trees,
// and butterflies admit IC-optimal schedules, and the heuristic achieves
// the exhaustive envelope on small instances of each. The pyramid is a
// known limitation pinned here: it admits an IC-optimal schedule
// (completing one 2x2 quadrant of the base first), but the heuristic's
// outdegree fallback executes the high-degree centre cell first and
// misses it — as would the paper's heuristic, whose Step 3 fallback is
// the same rule, and the theoretical algorithm fails on pyramids
// outright (the base/level block is no recognized family).
func TestHeuristicOptimalOnTheoryDags(t *testing.T) {
	cases := []struct {
		name          string
		g             *dag.Frozen
		expectOptimal bool
	}{
		{"mesh3", Mesh(3), true},
		{"mesh4", Mesh(4), true},
		{"reduction2", ReductionTree(2), true},
		{"reduction3", ReductionTree(3), true},
		{"expansion2", ExpansionTree(2), true},
		{"butterfly2", Butterfly(2), true},
		{"pyramid2", Pyramid(2), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.NumNodes() > icopt.MaxNodes {
				t.Skip("too large for the exhaustive oracle")
			}
			order := core.Prioritize(tc.g).Order
			ok, at, err := icopt.IsICOptimal(tc.g, order)
			if err != nil {
				t.Fatal(err)
			}
			if ok != tc.expectOptimal {
				t.Fatalf("IC-optimal = %v (first shortfall at %d), want %v", ok, at, tc.expectOptimal)
			}
			if !tc.expectOptimal {
				// the shortfall must be the achievable-optimum kind, not
				// an invalid schedule
				admits, aerr := icopt.AdmitsICOptimalSchedule(tc.g)
				if aerr != nil {
					t.Fatal(aerr)
				}
				if !admits {
					t.Fatal("premise broken: pyramid should admit an IC-optimal schedule")
				}
			}
		})
	}
}

// TestClassicRepertoirePRIONotWorse runs the Fig. 4 comparison across
// the repertoire: PRIO's cumulative eligibility must not fall below
// FIFO's on any of the theory's dags.
func TestClassicRepertoirePRIONotWorse(t *testing.T) {
	for _, name := range ClassicNames() {
		g, err := ClassicByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s := core.Prioritize(g)
		diff, err := core.TraceDifference(g, s.Order, core.FIFOSchedule(g))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sum := 0
		for _, d := range diff {
			sum += d
		}
		if sum < -len(diff) {
			t.Fatalf("%s: PRIO cumulatively below FIFO (sum %d over %d)", name, sum, len(diff))
		}
	}
}
