package workloads

import (
	"fmt"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/rng"
)

func TestAIRSNPaperSize(t *testing.T) {
	g := PaperAIRSN()
	if g.NumNodes() != 773 {
		t.Fatalf("AIRSN(250) has %d jobs, paper says 773", g.NumNodes())
	}
	if w := g.MaxLevelWidth(); w < 250 {
		t.Fatalf("AIRSN width = %d, want >= 250", w)
	}
}

func TestAIRSNShape(t *testing.T) {
	g := AIRSN(10)
	if g.NumNodes() != 3*10+23 {
		t.Fatalf("AIRSN(10) nodes = %d", g.NumNodes())
	}
	fork := AIRSNForkJob(g)
	if g.OutDegree(fork) != 10 {
		t.Fatalf("fork out-degree = %d, want width", g.OutDegree(fork))
	}
	// every cover-1 job has exactly two parents: the fork and a fringe
	for i := 0; i < 10; i++ {
		c := g.IndexOf("c1.0")
		if g.InDegree(c) != 2 {
			t.Fatalf("cover-1 job in-degree = %d", g.InDegree(c))
		}
	}
	// sources: h0 plus the 10 fringes
	if len(g.Sources()) != 11 {
		t.Fatalf("sources = %d, want 11", len(g.Sources()))
	}
	// sinks: only the final join
	if len(g.Sinks()) != 1 {
		t.Fatalf("sinks = %d, want 1", len(g.Sinks()))
	}
}

// TestAIRSNBottleneck reproduces Fig. 5: prio assigns the fork job and
// its ancestors higher priorities than the fringes, and the fork job of
// the width-250 dag lands at priority 753.
func TestAIRSNBottleneck(t *testing.T) {
	g := PaperAIRSN()
	s := core.Prioritize(g)
	fork := AIRSNForkJob(g)
	if got := s.Priority[fork]; got != 753 {
		t.Fatalf("fork priority = %d, paper shows 753", got)
	}
	// every fringe runs after the fork under PRIO
	for i := 0; i < 250; i++ {
		f := g.IndexOf("f0")
		if s.Rank[f] < s.Rank[fork] {
			t.Fatalf("fringe ranked before the fork")
		}
	}
	// ...but before the fork under FIFO
	fifo := core.FIFOSchedule(g)
	pos := make([]int, g.NumNodes())
	for i, v := range fifo {
		pos[v] = i
	}
	if pos[g.IndexOf("f0")] > pos[fork] {
		t.Fatal("FIFO should reach fringes before the deep fork job")
	}
	if err := core.ValidateExecutionOrder(g, s.Order); err != nil {
		t.Fatal(err)
	}
}

func TestAIRSNEligibilityDominance(t *testing.T) {
	g := AIRSN(50)
	s := core.Prioritize(g)
	diff, err := core.TraceDifference(g, s.Order, core.FIFOSchedule(g))
	if err != nil {
		t.Fatal(err)
	}
	min, max := 0, 0
	for _, d := range diff {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max < 40 {
		t.Fatalf("PRIO should hold ~width more eligible jobs at its peak, max diff = %d", max)
	}
	if min < -2 {
		t.Fatalf("PRIO fell %d below FIFO", -min)
	}
}

func TestInspiralPaperSize(t *testing.T) {
	g := PaperInspiral()
	if g.NumNodes() != 2988 {
		t.Fatalf("Inspiral has %d jobs, paper says 2988", g.NumNodes())
	}
}

func TestInspiralNonBipartiteComponent(t *testing.T) {
	g := Inspiral(229)
	s := core.Prioritize(g)
	// The paper: "the Inspiral includes a non-bipartite component with
	// over 1000 jobs".
	biggest := 0
	for _, cs := range s.Components {
		if cs.Family == bipartite.Unknown && len(cs.Comp.Nodes) > biggest {
			biggest = len(cs.Comp.Nodes)
		}
	}
	if biggest <= 1000 {
		t.Fatalf("largest non-bipartite component has %d jobs, want > 1000", biggest)
	}
	if err := core.ValidateExecutionOrder(g, s.Order); err != nil {
		t.Fatal(err)
	}
}

func TestMontagePaperSize(t *testing.T) {
	g := PaperMontage()
	if g.NumNodes() != 7881 {
		t.Fatalf("Montage has %d jobs, paper says 7881", g.NumNodes())
	}
}

func TestMontageBipartiteComponent(t *testing.T) {
	g := Montage(12, 5)
	s := core.Prioritize(g)
	// Find the projection/difference component: bipartite, with sources
	// of out-degree between 2 and 10, some children shared.
	found := false
	for _, cs := range s.Components {
		sub := cs.Comp.Sub
		// the component of interest is the projection/difference stage
		// (mDiff.0 also reappears later as the source of its fit pair)
		if sub.IndexOf("mDiff.0") < 0 || sub.IndexOf("mProject.0") < 0 || !sub.IsBipartiteDag() {
			continue
		}
		found = true
		shared := false
		for v := 0; v < sub.NumNodes(); v++ {
			if sub.IsSource(v) {
				if d := sub.OutDegree(v); d < 2 || d > 10 {
					t.Fatalf("projection out-degree %d outside the paper's 'few to about ten'", d)
				}
			} else if sub.InDegree(v) == 2 {
				shared = true
			}
		}
		if !shared {
			t.Fatal("no difference job shared between two projections")
		}
	}
	if !found {
		t.Fatal("no large bipartite projection component found")
	}
}

func TestMontagePaperComponentOver1000(t *testing.T) {
	g := PaperMontage()
	s := core.Prioritize(g)
	biggest := 0
	for _, cs := range s.Components {
		if cs.Comp.Sub.IsBipartiteDag() && len(cs.Comp.Nodes) > biggest {
			biggest = len(cs.Comp.Nodes)
		}
	}
	if biggest <= 1000 {
		t.Fatalf("largest bipartite component has %d jobs, want > 1000", biggest)
	}
}

func TestSDSSPaperSize(t *testing.T) {
	g := PaperSDSS()
	if g.NumNodes() != 48013 {
		t.Fatalf("SDSS has %d jobs, paper says 48013", g.NumNodes())
	}
}

func TestSDSSStructure(t *testing.T) {
	g := SDSS(100, 5)
	// every brg job has exactly three children, every field job three
	// brg parents plus its stripe calibration
	for i := 0; i < 100; i++ {
		if d := g.OutDegree(g.IndexOf(fmt.Sprintf("brg.%d", i))); d != 3 {
			t.Fatalf("brg out-degree = %d, want 3", d)
		}
		if d := g.InDegree(g.IndexOf(fmt.Sprintf("field.%d", i))); d != 4 {
			t.Fatalf("field in-degree = %d, want 3 brg + 1 calib", d)
		}
	}
	// calib jobs have wide fanout (the AIRSN-like bottlenecks)
	if d := g.OutDegree(g.IndexOf("calib.0")); d != 20 {
		t.Fatalf("calib out-degree = %d, want fields/stripes", d)
	}
	s := core.Prioritize(g)
	if err := core.ValidateExecutionOrder(g, s.Order); err != nil {
		t.Fatal(err)
	}
	// the brg/calib/field stage must form one big bipartite component
	biggest := 0
	for _, cs := range s.Components {
		if cs.Comp.Sub.IsBipartiteDag() && len(cs.Comp.Nodes) > biggest {
			biggest = len(cs.Comp.Nodes)
		}
	}
	if biggest < 205 {
		t.Fatalf("brg/field component has %d jobs, want 2x fields + calibs", biggest)
	}
}

// TestSDSSEligibilityAdvantage checks the Fig. 4 mechanism on SDSS: prio
// schedules the wide-fanout calibration jobs before the brg "fringes",
// so its eligibility curve dominates FIFO's with a large hump.
func TestSDSSEligibilityAdvantage(t *testing.T) {
	g := SDSS(500, 5)
	s := core.Prioritize(g)
	diff, err := core.TraceDifference(g, s.Order, core.FIFOSchedule(g))
	if err != nil {
		t.Fatal(err)
	}
	max, min := 0, 0
	for _, d := range diff {
		if d > max {
			max = d
		}
		if d < min {
			min = d
		}
	}
	if max < 250 {
		t.Fatalf("max eligibility advantage = %d, want a hump of about the field count", max)
	}
	if min < -5 {
		t.Fatalf("PRIO fell %d below FIFO", -min)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		g, err := ByName(name, 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumNodes() == 0 {
			t.Fatalf("%s: empty", name)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("unknown name accepted")
	}
	// scale 1 gives paper sizes
	g, _ := ByName("airsn", 1)
	if g.NumNodes() != 773 {
		t.Fatalf("ByName(airsn, 1) = %d jobs", g.NumNodes())
	}
	// degenerate scales clamp instead of panicking
	if g, err := ByName("sdss", 1<<30); err != nil || g.NumNodes() == 0 {
		t.Fatal("extreme scale should clamp")
	}
}

func TestLayered(t *testing.T) {
	r := rng.New(4)
	g := Layered(r, 5, 8, 0.3)
	if g.NumNodes() != 40 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// every non-first-layer node has at least one parent
	level, _ := g.Levels()
	for v := 0; v < g.NumNodes(); v++ {
		if level[v] > 0 && g.InDegree(v) == 0 {
			t.Fatalf("node %s at level %d has no parents", g.Name(v), level[v])
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"AIRSN(0)":        func() { AIRSN(0) },
		"Inspiral(1)":     func() { Inspiral(1) },
		"Montage(1,0)":    func() { Montage(1, 0) },
		"Montage(4,100)":  func() { Montage(4, 100) },
		"SDSS(2,5)":       func() { SDSS(2, 5) },
		"SDSS(7,5)":       func() { SDSS(7, 5) },
		"Layered(0,1,.5)": func() { Layered(rng.New(1), 0, 1, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAllWorkloadsPrioritizeValid(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *dag.Frozen
	}{
		{"airsn", AIRSN(40)},
		{"inspiral", Inspiral(30)},
		{"montage", Montage(8, 4)},
		{"sdss", SDSS(60, 3)},
	} {
		s := core.Prioritize(tc.g)
		if err := core.ValidateExecutionOrder(tc.g, s.Order); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		diff, err := core.TraceDifference(tc.g, s.Order, core.FIFOSchedule(tc.g))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sum := 0
		for _, d := range diff {
			sum += d
		}
		if sum < 0 {
			t.Fatalf("%s: PRIO cumulatively below FIFO (sum %d)", tc.name, sum)
		}
	}
}

func BenchmarkAIRSNBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PaperAIRSN()
	}
}

func BenchmarkSDSSBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PaperSDSS()
	}
}

// TestWorkloadWidths pins the exact Dilworth widths of the paper-scale
// dags (SDSS exceeds the exact-width bound; its level width is checked
// instead). Inspiral's width of 458 is what caps its simulation gains
// at batch sizes beyond ~2^9 — see EXPERIMENTS.md.
func TestWorkloadWidths(t *testing.T) {
	cases := map[string]int{"airsn": 251, "inspiral": 458, "montage": 2641}
	for name, want := range cases {
		g, err := ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		w, anti, err := g.Width()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w != want {
			t.Fatalf("%s width = %d, want %d", name, w, want)
		}
		if len(anti) != w {
			t.Fatalf("%s antichain size %d != width %d", name, len(anti), w)
		}
	}
	sdss := PaperSDSS()
	if _, _, err := sdss.Width(); err == nil {
		t.Fatal("SDSS should exceed the exact-width bound")
	}
	if w := sdss.MaxLevelWidth(); w < 12000 {
		t.Fatalf("SDSS level width = %d, want >= fields", w)
	}
}

func TestTileFieldShape(t *testing.T) {
	const tiles, s, tt, k = 7, 5, 8, 4
	g := TileField(rng.New(3), tiles, s, tt, k, false)
	if g.NumNodes() != tiles*(s+tt) {
		t.Fatalf("TileField nodes = %d, want %d", g.NumNodes(), tiles*(s+tt))
	}
	// Every arc stays inside its tile and runs projection -> difference.
	for v := 0; v < g.NumNodes(); v++ {
		tile, off := v/(s+tt), v%(s+tt)
		for _, c32 := range g.Children(v) {
			c := int(c32)
			if c/(s+tt) != tile {
				t.Fatalf("arc %d -> %d crosses tiles", v, c)
			}
			if off >= s || c%(s+tt) < s {
				t.Fatalf("arc %d -> %d is not projection -> difference", v, c)
			}
		}
	}
	// Deterministic for a given seed.
	h := TileField(rng.New(3), tiles, s, tt, k, false)
	if !g.StructuralEq(h) {
		t.Fatal("TileField is not deterministic for a fixed seed")
	}
}

func TestTileFieldSharedShapes(t *testing.T) {
	const tiles, s, tt, k = 6, 5, 8, 4
	g := TileField(rng.New(9), tiles, s, tt, k, true)
	// With sharedShapes every tile repeats tile 0's wiring.
	stride := s + tt
	for b := 1; b < tiles; b++ {
		for v := 0; v < stride; v++ {
			a, c := g.Children(v), g.Children(b*stride+v)
			if len(a) != len(c) {
				t.Fatalf("tile %d node %d degree differs from tile 0", b, v)
			}
			for i := range a {
				if int(a[i])%stride != int(c[i])%stride {
					t.Fatalf("tile %d node %d wiring differs from tile 0", b, v)
				}
			}
		}
	}
}
