// Package workloads generates the four scientific dags of the paper's
// evaluation (Section 3.3). The original DAGMan input files were never
// distributed, so each generator synthesizes a dag that matches every
// structural property the paper states — node counts, component shapes,
// sharing patterns, and the bottleneck structure that drives the
// eligibility results — as documented in DESIGN.md.
//
//   - AIRSN: the fMRI "double umbrella with fringes" (Fig. 5): a ~20-job
//     handle, a width-250 fork whose parallel jobs each also depend on a
//     dedicated fringe job, a join, a second width-250 fork, and a final
//     join; 773 jobs at width 250.
//   - Inspiral: the LIGO gravitational-wave pipeline with sliding-window
//     coincidence stages that weld the middle of the dag into one
//     non-bipartite component of well over 1,000 jobs; 2,988 jobs.
//   - Montage: the sky-mosaic pipeline whose projected images overlap on
//     a grid, giving a bipartite difference component of thousands of
//     jobs in which each source has a few to ten children, some shared
//     between neighbouring sources; 7,881 jobs.
//   - SDSS: the galaxy-cluster search whose field-matching stage is a
//     bipartite component in which every source has exactly three
//     children shared with its neighbours; 48,013 jobs.
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/rng"
)

// AIRSNHandleLength is the number of jobs in the sequential "handle"
// that precedes the first fork (about twenty, per Section 3.3; 21 makes
// the dag exactly 773 jobs at width 250 and places the fork job at
// priority 753 as in Fig. 5).
const AIRSNHandleLength = 21

// AIRSN builds the fMRI dag of width w: 3w + 23 jobs.
func AIRSN(w int) *dag.Frozen {
	if w < 1 {
		panic(fmt.Sprintf("workloads: AIRSN width %d < 1", w))
	}
	g := dag.NewWithCapacity(3*w + AIRSNHandleLength + 2)
	// Handle chain h0 -> h1 -> ... ; the last handle job is the fork.
	handle := make([]int, AIRSNHandleLength)
	for i := range handle {
		handle[i] = g.AddNode(fmt.Sprintf("h%d", i))
		if i > 0 {
			g.MustAddArc(handle[i-1], handle[i])
		}
	}
	fork := handle[len(handle)-1]
	// Fringes: dedicated parents of the first cover's jobs.
	fringe := make([]int, w)
	for i := range fringe {
		fringe[i] = g.AddNode(fmt.Sprintf("f%d", i))
	}
	// First cover: each job depends on the fork and on its fringe.
	cover1 := make([]int, w)
	for i := range cover1 {
		cover1[i] = g.AddNode(fmt.Sprintf("c1.%d", i))
		g.MustAddArc(fork, cover1[i])
		g.MustAddArc(fringe[i], cover1[i])
	}
	join1 := g.AddNode("j1")
	for _, c := range cover1 {
		g.MustAddArc(c, join1)
	}
	cover2 := make([]int, w)
	for i := range cover2 {
		cover2[i] = g.AddNode(fmt.Sprintf("c2.%d", i))
		g.MustAddArc(join1, cover2[i])
	}
	join2 := g.AddNode("j2")
	for _, c := range cover2 {
		g.MustAddArc(c, join2)
	}
	return g.MustFreeze()
}

// AIRSNForkJob returns the index of the fork job (the black-framed
// bottleneck of Fig. 5) in a graph built by AIRSN.
func AIRSNForkJob(g *dag.Frozen) int {
	return g.IndexOf(fmt.Sprintf("h%d", AIRSNHandleLength-1))
}

// Inspiral builds the gravitational-wave search dag over s analysis
// segments and two detectors: 13s + 11 jobs (2,988 at s = 229).
//
// Structure: a config job feeds the pipeline setup, which fans out to
// one datafind job per detector (a short "handle", as in AIRSN); each
// per-segment template bank needs both its detector's datafind output
// and a dedicated per-segment science-segment job (the "fringes"), so
// prioritizing the datafind chain pays off exactly as in Fig. 5. Each
// template bank feeds a first-stage inspiral; per-segment coincidence
// combines the two detectors; trigbanks fan back out; second-stage
// inspirals follow. The second-stage followup (qscan) jobs feed the
// *adjacent* segments' final coincidence on both sides — a sliding
// cross-level window that welds second-stage inspirals, followups, and
// final coincidences into one non-bipartite component of 5s jobs, the
// "over 1000 jobs" component the paper reports. A summary/report tail
// closes the dag.
func Inspiral(s int) *dag.Frozen {
	if s < 2 {
		panic(fmt.Sprintf("workloads: Inspiral segments %d < 2", s))
	}
	g := dag.NewWithCapacity(13*s + 11)
	config := g.AddNode("config")
	setup := g.AddNode("setup")
	g.MustAddArc(config, setup)
	df := [2]int{}
	for d := 0; d < 2; d++ {
		calib := g.AddNode(fmt.Sprintf("calibration.%d", d))
		g.MustAddArc(setup, calib)
		df[d] = g.AddNode(fmt.Sprintf("datafind.%d", d))
		g.MustAddArc(calib, df[d])
	}
	seg := make([]int, s)
	for i := 0; i < s; i++ {
		seg[i] = g.AddNode(fmt.Sprintf("segment.%d", i))
	}
	tmplt := make([][2]int, s)
	insp := make([][2]int, s)
	for i := 0; i < s; i++ {
		for d := 0; d < 2; d++ {
			tmplt[i][d] = g.AddNode(fmt.Sprintf("tmpltbank.%d.%d", d, i))
			g.MustAddArc(df[d], tmplt[i][d])
			g.MustAddArc(seg[i], tmplt[i][d])
			insp[i][d] = g.AddNode(fmt.Sprintf("inspiral.%d.%d", d, i))
			g.MustAddArc(tmplt[i][d], insp[i][d])
		}
	}
	coinc := make([]int, s)
	trig := make([][2]int, s)
	insp2 := make([][2]int, s)
	qscan := make([][2]int, s)
	for i := 0; i < s; i++ {
		coinc[i] = g.AddNode(fmt.Sprintf("coinc.%d", i))
		g.MustAddArc(insp[i][0], coinc[i])
		g.MustAddArc(insp[i][1], coinc[i])
		for d := 0; d < 2; d++ {
			trig[i][d] = g.AddNode(fmt.Sprintf("trigbank.%d.%d", d, i))
			g.MustAddArc(coinc[i], trig[i][d])
			insp2[i][d] = g.AddNode(fmt.Sprintf("inspiral2.%d.%d", d, i))
			g.MustAddArc(trig[i][d], insp2[i][d])
			qscan[i][d] = g.AddNode(fmt.Sprintf("qscan.%d.%d", d, i))
			g.MustAddArc(insp2[i][d], qscan[i][d])
		}
	}
	coinc2 := make([]int, s)
	for i := 0; i < s; i++ {
		coinc2[i] = g.AddNode(fmt.Sprintf("coinc2.%d", i))
		for d := 0; d < 2; d++ {
			g.MustAddArc(insp2[i][d], coinc2[i])
			if i > 0 {
				g.MustAddArc(qscan[i-1][d], coinc2[i])
			}
			if i+1 < s {
				g.MustAddArc(qscan[i+1][d], coinc2[i])
			}
		}
	}
	summary := g.AddNode("summary")
	for i := 0; i < s; i++ {
		g.MustAddArc(coinc2[i], summary)
	}
	html := g.AddNode("html")
	g.MustAddArc(summary, html)
	plots := g.AddNode("plots")
	g.MustAddArc(html, plots)
	upload := g.AddNode("upload")
	g.MustAddArc(plots, upload)
	archive := g.AddNode("archive")
	g.MustAddArc(upload, archive)
	return g.MustFreeze()
}

// Montage builds the mosaic dag for a grid x grid field of images with
// diag extra diagonal overlaps: 2*grid^2 + 2*D + 7 jobs where
// D = 2*grid*(grid-1) + diag. The paper's Montage has 7,881 jobs,
// matched by grid = 36, diag = 121.
//
// Structure: a header job fans out to one projection per image;
// difference jobs compare pairs of neighbouring projections (the big
// bipartite component: each source has two to ten children, some shared
// with its neighbours); each difference is fitted; a concat joins the
// fits; a background model follows; per-image background corrections
// depend on the model and on the original projection; a table join, the
// final add, a shrink, and a JPEG rendering close the dag.
func Montage(grid, diag int) *dag.Frozen {
	if grid < 2 {
		panic(fmt.Sprintf("workloads: Montage grid %d < 2", grid))
	}
	if diag < 0 || diag > (grid-1)*(grid-1) {
		panic(fmt.Sprintf("workloads: Montage diag %d out of range", diag))
	}
	n := grid * grid
	g := dag.NewWithCapacity(6*n + 7)
	hdr := g.AddNode("mHdr")
	proj := make([]int, n)
	at := func(r, c int) int { return r*grid + c }
	for i := 0; i < n; i++ {
		proj[i] = g.AddNode(fmt.Sprintf("mProject.%d", i))
		g.MustAddArc(hdr, proj[i])
	}
	var diffs []int
	addDiff := func(a, b int) {
		d := g.AddNode(fmt.Sprintf("mDiff.%d", len(diffs)))
		g.MustAddArc(proj[a], d)
		g.MustAddArc(proj[b], d)
		diffs = append(diffs, d)
	}
	for r := 0; r < grid; r++ {
		for c := 0; c < grid; c++ {
			if c+1 < grid {
				addDiff(at(r, c), at(r, c+1))
			}
			if r+1 < grid {
				addDiff(at(r, c), at(r+1, c))
			}
		}
	}
	// Extra overlaps concentrated at the field's centre, where mosaic
	// tiles overlap most densely: walking cells centre-outward, each
	// cell contributes its diagonal, anti-diagonal, and skip-one
	// neighbour until diag extras are placed. This raises central
	// projection degrees toward ten, matching the paper's "from a few
	// to about ten children".
	added := 0
	centre := float64(grid-1) / 2
	cells := make([]int, 0, grid*grid)
	for i := 0; i < grid*grid; i++ {
		cells = append(cells, i)
	}
	sort.SliceStable(cells, func(a, b int) bool {
		da := dist2(cells[a]/grid, cells[a]%grid, centre)
		db := dist2(cells[b]/grid, cells[b]%grid, centre)
		return da < db
	})
	for _, cell := range cells {
		if added >= diag {
			break
		}
		r, c := cell/grid, cell%grid
		if r+1 < grid && c+1 < grid && added < diag {
			addDiff(at(r, c), at(r+1, c+1))
			added++
		}
		if r+1 < grid && c > 0 && added < diag {
			addDiff(at(r, c), at(r+1, c-1))
			added++
		}
		if c+2 < grid && added < diag {
			addDiff(at(r, c), at(r, c+2))
			added++
		}
	}
	fits := make([]int, len(diffs))
	for i, d := range diffs {
		fits[i] = g.AddNode(fmt.Sprintf("mFit.%d", i))
		g.MustAddArc(d, fits[i])
	}
	concat := g.AddNode("mConcatFit")
	for _, f := range fits {
		g.MustAddArc(f, concat)
	}
	bgModel := g.AddNode("mBgModel")
	g.MustAddArc(concat, bgModel)
	bg := make([]int, n)
	for i := 0; i < n; i++ {
		bg[i] = g.AddNode(fmt.Sprintf("mBackground.%d", i))
		g.MustAddArc(bgModel, bg[i])
		g.MustAddArc(proj[i], bg[i])
	}
	imgtbl := g.AddNode("mImgtbl")
	for _, b := range bg {
		g.MustAddArc(b, imgtbl)
	}
	add := g.AddNode("mAdd")
	g.MustAddArc(imgtbl, add)
	shrink := g.AddNode("mShrink")
	g.MustAddArc(add, shrink)
	jpeg := g.AddNode("mJPEG")
	g.MustAddArc(shrink, jpeg)
	return g.MustFreeze()
}

// SDSS builds the galaxy-cluster search dag over f sky fields grouped
// into the given number of calibration stripes: 4f + 2*stripes + 3 jobs
// (48,013 at f = 12,000, stripes = 5). f must be a positive multiple of
// stripes.
//
// Structure: per field, a target extraction (tsObj, a source) feeds a
// bright-red-galaxy search (brg). The field-matching stage is the
// bipartite component the paper describes: the brg jobs each have
// exactly three children (their own field match and the two
// neighbouring ones, on a ring), so neighbouring sources share
// children. Each field match additionally needs its stripe's
// calibration product — a handful of wide-fanout calib jobs fed by
// per-stripe extractions. The calib jobs play the role the fork job
// plays in AIRSN: FIFO reaches them only after burning thousands of
// steps on brg jobs whose field matches they gate, while prio schedules
// them first. Each field match feeds a cluster finder, a catalog joins
// everything, and an archive/publish tail closes the dag.
func SDSS(f, stripes int) *dag.Frozen {
	if stripes < 1 || f < stripes || f%stripes != 0 {
		panic(fmt.Sprintf("workloads: SDSS fields %d must be a positive multiple of stripes %d", f, stripes))
	}
	perStripe := f / stripes
	g := dag.NewWithCapacity(4*f + 2*stripes + 3)
	src := make([]int, f)
	for i := 0; i < f; i++ {
		src[i] = g.AddNode(fmt.Sprintf("tsObj.%d", i))
	}
	brg := make([]int, f)
	for i := 0; i < f; i++ {
		brg[i] = g.AddNode(fmt.Sprintf("brg.%d", i))
		g.MustAddArc(src[i], brg[i])
	}
	calib := make([]int, stripes)
	for s := 0; s < stripes; s++ {
		ts := g.AddNode(fmt.Sprintf("tsCal.%d", s))
		calib[s] = g.AddNode(fmt.Sprintf("calib.%d", s))
		g.MustAddArc(ts, calib[s])
	}
	fld := make([]int, f)
	for i := 0; i < f; i++ {
		fld[i] = g.AddNode(fmt.Sprintf("field.%d", i))
	}
	for i := 0; i < f; i++ {
		g.MustAddArc(brg[i], fld[(i+f-1)%f])
		g.MustAddArc(brg[i], fld[i])
		g.MustAddArc(brg[i], fld[(i+1)%f])
	}
	for i := 0; i < f; i++ {
		g.MustAddArc(calib[i/perStripe], fld[i])
	}
	catalog := g.AddNode("catalog")
	for i := 0; i < f; i++ {
		m := g.AddNode(fmt.Sprintf("maxBcg.%d", i))
		g.MustAddArc(fld[i], m)
		g.MustAddArc(m, catalog)
	}
	archive := g.AddNode("archive")
	g.MustAddArc(catalog, archive)
	publish := g.AddNode("publish")
	g.MustAddArc(archive, publish)
	return g.MustFreeze()
}

// Paper-scale constructors: the exact dags of Section 3.3.

// PaperAIRSN returns the AIRSN dag of width 250 (773 jobs).
func PaperAIRSN() *dag.Frozen { return AIRSN(250) }

// PaperInspiral returns the Inspiral dag (2,988 jobs).
func PaperInspiral() *dag.Frozen { return Inspiral(229) }

// PaperMontage returns the Montage dag (7,881 jobs).
func PaperMontage() *dag.Frozen { return Montage(36, 121) }

// PaperSDSS returns the SDSS dag (48,013 jobs).
func PaperSDSS() *dag.Frozen { return SDSS(12000, 5) }

// ByName returns the paper dag with the given lowercase name, scaled by
// the divisor (>= 1): scale 1 is paper scale; larger divisors shrink the
// dag proportionally while preserving its shape. Used by the commands
// and benchmarks.
func ByName(name string, scale int) (*dag.Frozen, error) {
	if scale < 1 {
		scale = 1
	}
	switch name {
	case "airsn":
		return AIRSN(max(1, 250/scale)), nil
	case "inspiral":
		return Inspiral(max(2, 229/scale)), nil
	case "montage":
		if scale == 1 {
			return PaperMontage(), nil
		}
		return Montage(max(2, 36/isqrt(scale)), 0), nil
	case "sdss":
		f := max(5, 12000/scale)
		f -= f % 5
		return SDSS(f, 5), nil
	default:
		return nil, fmt.Errorf("workloads: unknown dag %q (want airsn, inspiral, montage, sdss)", name)
	}
}

// Names lists the supported paper workloads in the order the paper
// presents them.
func Names() []string { return []string{"airsn", "inspiral", "montage", "sdss"} }

func isqrt(n int) int {
	r := 1
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// Layered builds a random layered dag for tests and benchmarks: layers
// of the given width, arcs only between consecutive layers with
// probability p, and every non-source guaranteed at least one parent.
func Layered(r *rng.Source, layers, width int, p float64) *dag.Frozen {
	if layers < 1 || width < 1 {
		panic("workloads: Layered needs at least one layer and one node")
	}
	g := dag.NewWithCapacity(layers * width)
	ids := make([][]int, layers)
	for l := 0; l < layers; l++ {
		ids[l] = make([]int, width)
		for w := 0; w < width; w++ {
			ids[l][w] = g.AddNode(fmt.Sprintf("L%d.%d", l, w))
		}
	}
	for l := 1; l < layers; l++ {
		for w := 0; w < width; w++ {
			linked := false
			for pw := 0; pw < width; pw++ {
				if r.Float64() < p {
					g.MustAddArc(ids[l-1][pw], ids[l][w])
					linked = true
				}
			}
			if !linked {
				g.MustAddArc(ids[l-1][r.Intn(width)], ids[l][w])
			}
		}
	}
	return g.MustFreeze()
}

// TileField builds a Montage-like multi-component dag for the parallel
// pipeline benchmarks and examples: `tiles` independent difference
// components (one per sky tile), each a connected bipartite block of s
// projected-image sources fanning out into overlapping difference-job
// sinks (each source feeds 2..k random sinks out of t). Out-degrees
// vary, so the blocks match none of the Fig. 2 families and the Recurse
// phase pays the full classify + outdegree-order + trace cost per tile
// — the per-component work that Options.Parallel fans out. Tiles are
// structurally independent draws unless sharedShapes is true, in which
// case every tile repeats the same shape and a core.Cache collapses the
// Recurse phase to a single computation.
func TileField(r *rng.Source, tiles, s, t, k int, sharedShapes bool) *dag.Frozen {
	if tiles < 1 || s < 1 || t < 1 || k < 2 {
		panic("workloads: TileField needs tiles, s, t >= 1 and k >= 2")
	}
	g := dag.NewWithCapacity(tiles * (s + t))
	var shape [][]int // per-source sink offsets of tile 0, when shared
	for b := 0; b < tiles; b++ {
		src := make([]int, s)
		for i := range src {
			src[i] = g.AddNode(fmt.Sprintf("tile%d_p%d", b, i))
		}
		snk := make([]int, t)
		for j := range snk {
			snk[j] = g.AddNode(fmt.Sprintf("tile%d_d%d", b, j))
		}
		if b == 0 || !sharedShapes {
			shape = make([][]int, s)
			for i := range shape {
				deg := 2 + r.Intn(k-1)
				offs := make([]int, 0, deg)
				for d := 0; d < deg; d++ {
					offs = append(offs, r.Intn(t))
				}
				// Keep the tile connected through sink 0.
				if i == 0 || r.Float64() < 0.5 {
					offs[0] = 0
				}
				shape[i] = offs
			}
		}
		for i, offs := range shape {
			for _, o := range offs {
				g.AddArc(src[i], snk[o]) // duplicate draws are ignored
			}
		}
	}
	return g.MustFreeze()
}

func dist2(r, c int, centre float64) float64 {
	dr := float64(r) - centre
	dc := float64(c) - centre
	return dr*dr + dc*dc
}
