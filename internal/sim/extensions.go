package sim

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/rank"
	"repro/internal/rng"
)

// This file holds the scheduling regimens beyond the paper's PRIO/FIFO
// pair, used by the extension experiments in EXPERIMENTS.md:
//
//   - Random assigns a uniformly random eligible job, a sanity baseline
//     between PRIO and FIFO.
//   - CriticalPath is the classic highest-level-first heuristic the
//     paper's introduction argues is hampered by the grid's temporal
//     unpredictability.
//   - TwoLevel models the DAGMan-queue/Condor-queue split of Section
//     3.2: eligible jobs are forwarded FIFO from the DAGMan queue into a
//     bounded Condor queue (the -maxjobs throttle), and only the Condor
//     queue honours priorities. It demonstrates the integration
//     shortcoming the paper describes: with a small bound, high-priority
//     eligible jobs sit unseen in the DAGMan queue.

// Random assigns a uniformly random eligible unassigned job.
type Random struct {
	src      *rng.Source
	eligible []int
}

// NewRandom returns a Random policy (randomness comes from the run's
// source, so runs stay reproducible).
func NewRandom() *Random { return &Random{} }

// Name implements Policy.
func (r *Random) Name() string { return "RANDOM" }

// Start implements Policy.
func (r *Random) Start(g *dag.Frozen, src *rng.Source) {
	r.src = src
	r.eligible = r.eligible[:0]
}

// Eligible implements Policy.
func (r *Random) Eligible(v int) { r.eligible = append(r.eligible, v) }

// Next implements Policy.
func (r *Random) Next() (int, bool) {
	if len(r.eligible) == 0 {
		return 0, false
	}
	i := r.src.Intn(len(r.eligible))
	v := r.eligible[i]
	last := len(r.eligible) - 1
	r.eligible[i] = r.eligible[last]
	r.eligible = r.eligible[:last]
	return v, true
}

// NewCriticalPath builds the highest-level-first oblivious policy: jobs
// are prioritized by the length of the longest path from them to a sink
// (descending, ties by index), the textbook critical-path heuristic.
// The order comes from the ranker tier, so this constructor and the
// factory's "critpath" are the same ranker by construction.
func NewCriticalPath(g *dag.Frozen) *Oblivious {
	r, err := rank.New("critpath", core.Options{})
	if err != nil {
		panic(err) // "critpath" is a registered family
	}
	return NewOblivious(r.Name(), r.Order(g))
}

// TwoLevel wraps a priority order with the Section 3.2 two-queue model:
// eligible jobs queue FIFO in the DAGMan queue; at most MaxJobs of them
// at a time are forwarded to the Condor queue, which assigns by
// priority. MaxJobs <= 0 means no throttle (every eligible job is
// forwarded immediately, recovering the pure PRIO behaviour the paper's
// integration relies on).
type TwoLevel struct {
	name    string
	order   []int
	maxJobs int

	rank   []int
	dagman []int // FIFO of eligible jobs not yet forwarded
	head   int
	condor bitset.MinSet // forwarded, keyed by rank
}

// NewTwoLevel builds the two-queue policy for the given priority order.
func NewTwoLevel(order []int, maxJobs int) *TwoLevel {
	return &TwoLevel{
		name:    fmt.Sprintf("PRIO/maxjobs=%d", maxJobs),
		order:   append([]int(nil), order...),
		maxJobs: maxJobs,
	}
}

// NewTwoLevelPRIO builds the two-queue policy around the prio schedule
// of g.
func NewTwoLevelPRIO(g *dag.Frozen, maxJobs int) *TwoLevel {
	return NewTwoLevel(core.Prioritize(g).Order, maxJobs)
}

// Name implements Policy.
func (t *TwoLevel) Name() string { return t.name }

// Start implements Policy. Like Oblivious.Start it resets in place:
// the rank table is derived once from the immutable order and both
// queues keep their backing arrays across replications.
func (t *TwoLevel) Start(g *dag.Frozen, _ *rng.Source) {
	if len(t.order) != g.NumNodes() {
		panic(fmt.Sprintf("sim: order covers %d jobs, dag has %d", len(t.order), g.NumNodes()))
	}
	if len(t.rank) != len(t.order) {
		t.rank = make([]int, len(t.order))
		for r, v := range t.order {
			t.rank[v] = r
		}
	}
	t.dagman = t.dagman[:0]
	t.head = 0
	t.condor.Reset(len(t.order))
}

// Eligible implements Policy.
func (t *TwoLevel) Eligible(v int) {
	t.dagman = append(t.dagman, v)
	t.forward()
}

// forward tops up the Condor queue from the DAGMan queue in FIFO order.
func (t *TwoLevel) forward() {
	for t.head < len(t.dagman) && (t.maxJobs <= 0 || t.condor.Len() < t.maxJobs) {
		t.condor.Add(t.rank[t.dagman[t.head]])
		t.head++
	}
	// Same compaction as FIFO: drop the forwarded prefix once it
	// dominates, so long runs do not retain every job ever enqueued.
	if t.head > len(t.dagman)/2 {
		n := copy(t.dagman, t.dagman[t.head:])
		t.dagman = t.dagman[:n]
		t.head = 0
	}
}

// Next implements Policy.
func (t *TwoLevel) Next() (int, bool) {
	r, ok := t.condor.PopMin()
	if !ok {
		return 0, false
	}
	t.forward()
	return t.order[r], true
}
