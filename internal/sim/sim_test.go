package sim

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/rng"
	"repro/internal/workloads"
)

func chainDag(n int) *dag.Frozen {
	b := dag.New()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("v%d", i))
		if i > 0 {
			b.MustAddArc(i-1, i)
		}
	}
	return b.MustFreeze()
}

func independentDag(n int) *dag.Frozen {
	b := dag.New()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("v%d", i))
	}
	return b.MustFreeze()
}

func fifoRun(g *dag.Frozen, p Params, seed uint64) Metrics {
	return Run(g, p, NewFIFO(), rng.New(seed))
}

func TestRunDeterministic(t *testing.T) {
	g := workloads.AIRSN(20)
	p := DefaultParams(1, 8)
	a := fifoRun(g, p, 42)
	b := fifoRun(g, p, 42)
	if a != b {
		t.Fatalf("same seed gave %+v and %+v", a, b)
	}
	c := fifoRun(g, p, 43)
	if a == c {
		t.Fatal("different seeds gave identical metrics (suspicious)")
	}
}

func TestRunEmptyGraph(t *testing.T) {
	m := Run(dag.New().MustFreeze(), DefaultParams(1, 1), NewFIFO(), rng.New(1))
	if m.ExecutionTime != 0 || m.Batches != 0 {
		t.Fatalf("empty graph metrics = %+v", m)
	}
}

func TestRunChainTakesCriticalPath(t *testing.T) {
	// A 20-job chain with frequent batches: execution time must be near
	// 20 regardless of policy (jobs average 1 time unit, sequential).
	g := chainDag(20)
	p := DefaultParams(0.001, 4)
	var acc float64
	const reps = 30
	for i := 0; i < reps; i++ {
		acc += fifoRun(g, p, uint64(i)).ExecutionTime
	}
	mean := acc / reps
	if mean < 19 || mean > 21.5 {
		t.Fatalf("chain mean execution time = %v, want ~20", mean)
	}
}

func TestRunParallelWithBigBatch(t *testing.T) {
	// 50 independent jobs, one huge batch arriving at time 0: the whole
	// dag finishes in about one job time.
	g := independentDag(50)
	p := DefaultParams(1000, 1e6)
	m := fifoRun(g, p, 7)
	if m.ExecutionTime > 1.6 {
		t.Fatalf("parallel batch execution time = %v, want ~1", m.ExecutionTime)
	}
	if m.Batches != 1 {
		t.Fatalf("batches = %d, want 1", m.Batches)
	}
	if m.Utilization > 1e-3 {
		t.Fatalf("utilization with a million requests should be tiny, got %v", m.Utilization)
	}
}

func TestRunSequentialRegime(t *testing.T) {
	// Tiny batches arriving rarely: execution is sequential and takes
	// about n * muBIT.
	g := independentDag(10)
	p := DefaultParams(10, 1)
	var acc float64
	const reps = 40
	for i := 0; i < reps; i++ {
		acc += fifoRun(g, p, uint64(100+i)).ExecutionTime
	}
	mean := acc / reps
	// first batch at 0, so ~ (waiting for enough batches) ~ muBIT * E[batches]
	if mean < 50 || mean > 130 {
		t.Fatalf("sequential mean execution time = %v, want ~90", mean)
	}
}

func TestMetricsRanges(t *testing.T) {
	g := workloads.AIRSN(15)
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		p := DefaultParams(math.Pow(10, float64(r.Intn(5)-2)), math.Pow(2, float64(r.Intn(10))))
		m := Run(g, p, NewFIFO(), r.Split())
		if m.StallProbability < 0 || m.StallProbability > 1 {
			t.Fatalf("stall probability %v out of range", m.StallProbability)
		}
		if m.Utilization < 0 || m.Utilization > 1 {
			t.Fatalf("utilization %v out of range", m.Utilization)
		}
		if m.ExecutionTime <= 0 {
			t.Fatalf("execution time %v", m.ExecutionTime)
		}
		if m.Requests < g.NumNodes() {
			t.Fatalf("requests %d < jobs %d", m.Requests, g.NumNodes())
		}
	}
}

func TestObliviousRespectsPriority(t *testing.T) {
	g := independentDag(3)
	// priority order: job 2, job 0, job 1
	pol := NewOblivious("test", []int{2, 0, 1})
	pol.Start(g, rng.New(1))
	pol.Eligible(0)
	pol.Eligible(1)
	pol.Eligible(2)
	want := []int{2, 0, 1}
	for _, w := range want {
		v, ok := pol.Next()
		if !ok || v != w {
			t.Fatalf("Next = %d,%v want %d", v, ok, w)
		}
	}
	if _, ok := pol.Next(); ok {
		t.Fatal("Next on empty should fail")
	}
}

func TestObliviousWrongSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pol := NewOblivious("bad", []int{0})
	pol.Start(independentDag(2), rng.New(1))
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO()
	f.Start(independentDag(3), rng.New(1))
	f.Eligible(2)
	f.Eligible(0)
	if v, _ := f.Next(); v != 2 {
		t.Fatalf("FIFO returned %d, want 2", v)
	}
	f.Eligible(1)
	if v, _ := f.Next(); v != 0 {
		t.Fatal("FIFO order broken")
	}
	if v, _ := f.Next(); v != 1 {
		t.Fatal("FIFO order broken")
	}
	if _, ok := f.Next(); ok {
		t.Fatal("empty FIFO returned a job")
	}
	// Start resets
	f.Start(independentDag(3), rng.New(1))
	if _, ok := f.Next(); ok {
		t.Fatal("Start did not reset")
	}
}

func TestStallProbabilityOnChain(t *testing.T) {
	// A chain with very frequent batches stalls almost always: most
	// batches find the single eligible job already assigned.
	g := chainDag(10)
	p := DefaultParams(0.01, 1)
	m := fifoRun(g, p, 9)
	if m.StallProbability < 0.5 {
		t.Fatalf("chain with frequent batches should stall often, got %v", m.StallProbability)
	}
	// With huge batch gaps there is no stalling: every batch finds work.
	p2 := DefaultParams(100, 1)
	m2 := fifoRun(g, p2, 9)
	if m2.StallProbability != 0 {
		t.Fatalf("slow batches on a chain should never stall, got %v", m2.StallProbability)
	}
}

func TestCompareProducesValidCIs(t *testing.T) {
	g := workloads.AIRSN(10)
	opts := ExperimentOptions{P: 10, Q: 5, Confidence: 95, Seed: 3, Workers: 4}
	c := ComparePRIOFIFO(g, DefaultParams(1, 8), opts)
	if !c.ExecTime.Valid {
		t.Fatal("execution-time CI invalid")
	}
	if c.ExecTime.Lo > c.ExecTime.Median || c.ExecTime.Median > c.ExecTime.Hi {
		t.Fatalf("CI ordering broken: %+v", c.ExecTime)
	}
	if c.A.Name != "PRIO" || c.B.Name != "FIFO" {
		t.Fatalf("names = %s, %s", c.A.Name, c.B.Name)
	}
	if len(c.A.ExecTime) != 10 {
		t.Fatalf("sampling distribution size %d", len(c.A.ExecTime))
	}
}

func TestCompareDeterministic(t *testing.T) {
	g := workloads.AIRSN(8)
	opts := ExperimentOptions{P: 6, Q: 4, Seed: 11, Workers: 8}
	a := ComparePRIOFIFO(g, DefaultParams(1, 4), opts)
	b := ComparePRIOFIFO(g, DefaultParams(1, 4), opts)
	if a.ExecTime != b.ExecTime || a.Stalling != b.Stalling || a.Utilization != b.Utilization {
		t.Fatal("Compare not deterministic across runs")
	}
}

func TestPRIOBeatsFIFOOnAIRSNMidRange(t *testing.T) {
	// Scaled-down version of the headline experiment: AIRSN, mid-range
	// batch size, batches arriving about once per job time. PRIO's
	// median execution-time ratio must show a clear gain.
	g := workloads.AIRSN(60)
	opts := ExperimentOptions{P: 15, Q: 15, Seed: 17}
	c := ComparePRIOFIFO(g, DefaultParams(1, 8), opts)
	if !c.ExecTime.Valid {
		t.Fatal("no CI")
	}
	if c.ExecTime.Median >= 1.0 {
		t.Fatalf("PRIO median ratio = %v, expected < 1", c.ExecTime.Median)
	}
}

func TestExtremeRegimesNearParity(t *testing.T) {
	// With enormous batches the execution degenerates to BFS level
	// order for any policy: the ratio must be ~1.
	g := workloads.AIRSN(20)
	opts := ExperimentOptions{P: 8, Q: 8, Seed: 23}
	c := ComparePRIOFIFO(g, DefaultParams(1, 1<<16), opts)
	if !c.ExecTime.Valid || c.ExecTime.Median < 0.9 || c.ExecTime.Median > 1.1 {
		t.Fatalf("huge-batch ratio = %+v, want ~1", c.ExecTime)
	}
}

func TestSweepShape(t *testing.T) {
	g := workloads.AIRSN(8)
	opts := ExperimentOptions{P: 4, Q: 3, Seed: 5}
	var seen int
	points := Sweep(g, []float64{0.1, 1}, []float64{1, 8}, opts, func(GridPoint) { seen++ })
	if len(points) != 4 || seen != 4 {
		t.Fatalf("sweep produced %d points, callback saw %d", len(points), seen)
	}
	if points[0].MuBIT != 0.1 || points[0].MuBS != 1 || points[3].MuBIT != 1 || points[3].MuBS != 8 {
		t.Fatal("sweep order wrong")
	}
	if points[0].FormatRow() == "" {
		t.Fatal("FormatRow empty")
	}
}

func TestOptionsNormalized(t *testing.T) {
	o := ExperimentOptions{}.normalized()
	if o.P <= 0 || o.Q <= 0 || o.Workers <= 0 || o.Confidence != 95 {
		t.Fatalf("normalized defaults wrong: %+v", o)
	}
}

func TestBatchSizeDiscretization(t *testing.T) {
	r := rng.New(2)
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		s := batchSize(r, 16)
		if s < 1 {
			t.Fatalf("batch size %d < 1", s)
		}
		sum += s
	}
	mean := float64(sum) / n
	// Exp(16) rounded, floored at 1: mean stays close to 16.
	if mean < 15 || mean > 17.5 {
		t.Fatalf("mean batch size = %v, want ~16", mean)
	}
}

func TestRunMatchesStaticTraceWhenSequential(t *testing.T) {
	// With batch size exactly 1 and rare batches, the simulator's
	// assignment order under FIFO equals core.FIFOSchedule.
	g := workloads.AIRSN(6)
	rec := &recordingPolicy{inner: NewFIFO()}
	Run(g, Params{BatchInterarrival: 50, BatchSize: 1e-9, JobTimeMean: 1, JobTimeStdDev: 0}, rec, rng.New(1))
	want := core.FIFOSchedule(g)
	if len(rec.assigned) != len(want) {
		t.Fatalf("assigned %d jobs, want %d", len(rec.assigned), len(want))
	}
	for i := range want {
		if rec.assigned[i] != want[i] {
			t.Fatalf("sequential FIFO diverges from static schedule at %d", i)
		}
	}
}

type recordingPolicy struct {
	inner    Policy
	assigned []int
}

func (r *recordingPolicy) Name() string { return "rec" }
func (r *recordingPolicy) Start(g *dag.Frozen, src *rng.Source) {
	r.inner.Start(g, src)
	r.assigned = nil
}
func (r *recordingPolicy) Eligible(v int) { r.inner.Eligible(v) }
func (r *recordingPolicy) Next() (int, bool) {
	v, ok := r.inner.Next()
	if ok {
		r.assigned = append(r.assigned, v)
	}
	return v, ok
}

func BenchmarkRunAIRSN(b *testing.B) {
	g := workloads.PaperAIRSN()
	order := core.Prioritize(g).Order
	p := DefaultParams(1, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, p, NewOblivious("PRIO", order), rng.New(uint64(i)))
	}
}
