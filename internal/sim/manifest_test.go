package sim

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/workloads"
)

// testSweep is the shared fixture for the shard/resume tests: a small
// but non-trivial 6-point prio-vs-fifo sweep on a real workload shape.
func testSweep(t *testing.T) (g *dag.Frozen, points []Params, a, b func() Policy, opts ExperimentOptions) {
	t.Helper()
	g = workloads.AIRSN(6)
	var err error
	if a, err = PolicyFactory("prio", g); err != nil {
		t.Fatal(err)
	}
	if b, err = PolicyFactory("fifo", g); err != nil {
		t.Fatal(err)
	}
	for _, bit := range []float64{0.5, 2} {
		for _, bs := range []float64{2, 8, 32} {
			points = append(points, DefaultParams(bit, bs))
		}
	}
	opts = ExperimentOptions{P: 4, Q: 3, Seed: 7, Workers: 2}
	return g, points, a, b, opts
}

// TestCompareGridSharded pins the sharding contract: the union of all
// shards of a sweep covers every point, each point is computed by
// exactly one shard, and every computed row is bit-identical to the
// flat unsharded run.
func TestCompareGridSharded(t *testing.T) {
	g, points, a, b, opts := testSweep(t)
	flat := CompareGrid(g, points, a, b, opts, nil)

	for _, count := range []int{1, 3} {
		covered := make([]bool, len(points))
		for idx := 0; idx < count; idx++ {
			o := opts
			o.Shard = Shard{Index: idx, Count: count}
			var reported []int
			out := CompareGrid(g, points, a, b, o, func(i int, c Comparison) {
				reported = append(reported, i)
				if !reflect.DeepEqual(c, flat[i]) {
					t.Errorf("shard %d/%d: progress row %d differs from flat run", idx, count, i)
				}
			})
			for i := range points {
				owned := i%count == idx
				if owned {
					if covered[i] {
						t.Fatalf("point %d computed by two shards", i)
					}
					covered[i] = true
					if !reflect.DeepEqual(out[i], flat[i]) {
						t.Errorf("shard %d/%d: point %d differs from flat run", idx, count, i)
					}
				} else if !reflect.DeepEqual(out[i], Comparison{}) {
					t.Errorf("shard %d/%d: foreign point %d is not the zero Comparison", idx, count, i)
				}
			}
			for j := 1; j < len(reported); j++ {
				if reported[j] <= reported[j-1] {
					t.Fatalf("shard %d/%d: progress out of order: %v", idx, count, reported)
				}
			}
		}
		for i, ok := range covered {
			if !ok {
				t.Fatalf("count=%d: point %d covered by no shard", count, i)
			}
		}
	}
}

// TestCompareGridResume interrupts a sweep after k points, persists
// those k through a manifest, reopens it, and finishes the remainder —
// asserting the merged output is bit-identical to an uninterrupted flat
// run, across Workers and shard-count settings (the engine's
// determinism contract extends to both).
func TestCompareGridResume(t *testing.T) {
	g, points, a, b, opts := testSweep(t)
	flat := CompareGrid(g, points, a, b, opts, nil)
	names := [2]string{a().Name(), b().Name()}

	for _, workers := range []int{1, 4} {
		for _, count := range []int{1, 3} {
			path := filepath.Join(t.TempDir(), "grid.ckpt")

			// First launch: run shard 0 with the given worker count, but
			// "crash" by only persisting the first two completed rows.
			o := opts
			o.Workers = workers
			o.Shard = Shard{Index: 0, Count: count}
			man, err := OpenManifest(path, g, points, names[0], names[1], o, false)
			if err != nil {
				t.Fatal(err)
			}
			saved := 0
			CompareGridResume(g, points, a, b, o, nil, func(i int, s PointSample) {
				if saved < 2 {
					if err := man.Append(i, points[i], s); err != nil {
						t.Fatal(err)
					}
					saved++
				}
			}, nil)
			if err := man.Close(); err != nil {
				t.Fatal(err)
			}

			// Resume and run every shard in sequence against the same
			// checkpoint, as the runbook does; the last shard sees the
			// full grid.
			var out []Comparison
			for idx := 0; idx < count; idx++ {
				o.Shard = Shard{Index: idx, Count: count}
				man, err := OpenManifest(path, g, points, names[0], names[1], o, true)
				if err != nil {
					t.Fatalf("workers=%d count=%d shard %d: %v", workers, count, idx, err)
				}
				out = CompareGridResume(g, points, a, b, o, man.Have(), func(i int, s PointSample) {
					if err := man.Append(i, points[i], s); err != nil {
						t.Fatal(err)
					}
				}, nil)
				if err := man.Close(); err != nil {
					t.Fatal(err)
				}
			}
			if !reflect.DeepEqual(out, flat) {
				t.Errorf("workers=%d count=%d: resumed sharded sweep differs from flat run", workers, count)
			}
		}
	}
}

// TestManifestRoundTrip checks the hex-float persistence: a PointSample
// written by Append and read back by a resume-mode OpenManifest is
// bit-identical, and the rebuilt Comparison equals the live one.
func TestManifestRoundTrip(t *testing.T) {
	g, points, a, b, opts := testSweep(t)
	names := [2]string{a().Name(), b().Name()}
	path := filepath.Join(t.TempDir(), "grid.ckpt")

	man, err := OpenManifest(path, g, points, names[0], names[1], opts, false)
	if err != nil {
		t.Fatal(err)
	}
	written := make(map[int]PointSample)
	live := CompareGridResume(g, points, a, b, opts, nil, func(i int, s PointSample) {
		written[i] = s
		if err := man.Append(i, points[i], s); err != nil {
			t.Fatal(err)
		}
	}, nil)
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}
	if len(written) != len(points) {
		t.Fatalf("save fired for %d of %d points", len(written), len(points))
	}

	man, err = OpenManifest(path, g, points, names[0], names[1], opts, true)
	if err != nil {
		t.Fatal(err)
	}
	defer man.Close()
	if !reflect.DeepEqual(man.Have(), written) {
		t.Fatal("samples read back differ from samples written")
	}
	// A fully resumed run re-simulates nothing and must still emit the
	// exact rows.
	resumed := CompareGridResume(g, points, a, b, opts, man.Have(), nil, nil)
	if !reflect.DeepEqual(resumed, live) {
		t.Fatal("fully resumed comparisons differ from live run")
	}
}

// TestManifestTornTail checks the crash model: a trailing line cut off
// mid-write is silently discarded and truncated away on resume, and the
// sweep recomputes just that point.
func TestManifestTornTail(t *testing.T) {
	g, points, a, b, opts := testSweep(t)
	names := [2]string{a().Name(), b().Name()}
	path := filepath.Join(t.TempDir(), "grid.ckpt")

	man, err := OpenManifest(path, g, points, names[0], names[1], opts, false)
	if err != nil {
		t.Fatal(err)
	}
	CompareGridResume(g, points, a, b, opts, nil, func(i int, s PointSample) {
		if i < 3 {
			if err := man.Append(i, points[i], s); err != nil {
				t.Fatal(err)
			}
		}
	}, nil)
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last row: chop the file mid-line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	man, err = OpenManifest(path, g, points, names[0], names[1], opts, true)
	if err != nil {
		t.Fatalf("torn tail must be recoverable: %v", err)
	}
	if len(man.Have()) != 2 {
		t.Fatalf("recovered %d rows, want 2 (the torn third row is dropped)", len(man.Have()))
	}
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}
	// The truncation must leave a well-formed file: re-opening again
	// sees the same two rows and a clean tail.
	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) == 0 || fixed[len(fixed)-1] != '\n' {
		t.Fatal("truncated manifest does not end at a line boundary")
	}
}

// TestManifestRejectsCorruption checks that damage anywhere but the
// tail refuses the resume instead of silently merging bad rows.
func TestManifestRejectsCorruption(t *testing.T) {
	g, points, a, b, opts := testSweep(t)
	names := [2]string{a().Name(), b().Name()}

	write := func(t *testing.T) (string, []byte) {
		t.Helper()
		path := filepath.Join(t.TempDir(), "grid.ckpt")
		man, err := OpenManifest(path, g, points, names[0], names[1], opts, false)
		if err != nil {
			t.Fatal(err)
		}
		CompareGridResume(g, points, a, b, opts, nil, func(i int, s PointSample) {
			if err := man.Append(i, points[i], s); err != nil {
				t.Fatal(err)
			}
		}, nil)
		if err := man.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return path, data
	}

	expectReject := func(t *testing.T, path, wantSub string) {
		t.Helper()
		_, err := OpenManifest(path, g, points, names[0], names[1], opts, true)
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("want error containing %q, got %v", wantSub, err)
		}
	}

	t.Run("flipped-byte-mid-file", func(t *testing.T) {
		path, data := write(t)
		lines := strings.SplitAfter(string(data), "\n")
		mid := []byte(lines[2])
		mid[len(mid)/2] ^= 0x01
		lines[2] = string(mid)
		if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenManifest(path, g, points, names[0], names[1], opts, true); err == nil {
			t.Fatal("corrupted mid-file row must refuse the resume")
		}
	})

	t.Run("duplicate-row", func(t *testing.T) {
		path, data := write(t)
		lines := strings.SplitAfter(string(data), "\n")
		if err := os.WriteFile(path, []byte(strings.Join(lines, "")+lines[1]), 0o644); err != nil {
			t.Fatal(err)
		}
		expectReject(t, path, "duplicate row")
	})

	t.Run("different-seed", func(t *testing.T) {
		path, _ := write(t)
		stale := opts
		stale.Seed++
		if _, err := OpenManifest(path, g, points, names[0], names[1], stale, true); err == nil ||
			!strings.Contains(err.Error(), "different sweep") {
			t.Fatalf("stale manifest (other seed) must be rejected, got %v", err)
		}
	})

	t.Run("different-grid", func(t *testing.T) {
		path, _ := write(t)
		fewer := points[:len(points)-1]
		_, err := OpenManifest(path, g, fewer, names[0], names[1], opts, true)
		if err == nil || !strings.Contains(err.Error(), "different sweep") {
			t.Fatalf("stale manifest (other grid) must be rejected, got %v", err)
		}
	})

	t.Run("different-policy", func(t *testing.T) {
		path, _ := write(t)
		_, err := OpenManifest(path, g, points, names[0], "RANDOM", opts, true)
		if err == nil || !strings.Contains(err.Error(), "different sweep") {
			t.Fatalf("stale manifest (other policy) must be rejected, got %v", err)
		}
	})

	// Workers and Shard must NOT invalidate a checkpoint: they cannot
	// change results, and the whole point of sharding is sharing one.
	t.Run("workers-and-shard-compatible", func(t *testing.T) {
		path, _ := write(t)
		o := opts
		o.Workers = 9
		o.Shard = Shard{Index: 2, Count: 3}
		man, err := OpenManifest(path, g, points, names[0], names[1], o, true)
		if err != nil {
			t.Fatalf("Workers/Shard changes must not invalidate a checkpoint: %v", err)
		}
		if len(man.Have()) != len(points) {
			t.Fatalf("recovered %d rows, want %d", len(man.Have()), len(points))
		}
		man.Close()
	})
}
