package sim

import (
	"testing"

	"repro/internal/workloads"
)

// TestHeadlineAIRSN reproduces the paper's headline claim: "for AIRSN
// when muBIT = 1 and muBS = 2^4, the median of the ratio of expected
// execution time is below 0.85; using PRIO we obtain a gain of at least
// 13% in the expected execution time with 95% confidence."
//
// At our (laptop-scale) replication counts the confidence interval is a
// little wider than the paper's p = q = 300 runs, so the assertion is
// a gain of at least 10% with 95% confidence and a median gain of at
// least 13%; the measured values are recorded in EXPERIMENTS.md.
func TestHeadlineAIRSN(t *testing.T) {
	if testing.Short() {
		t.Skip("headline experiment needs full AIRSN width")
	}
	g := workloads.PaperAIRSN()
	opts := ExperimentOptions{P: 30, Q: 30, Seed: 1}
	c := ComparePRIOFIFO(g, DefaultParams(1, 16), opts)
	if !c.ExecTime.Valid {
		t.Fatal("no confidence interval")
	}
	if c.ExecTime.Median >= 0.87 {
		t.Fatalf("median execution-time ratio = %.4f, paper reports < 0.85", c.ExecTime.Median)
	}
	if c.ExecTime.Hi >= 0.90 {
		t.Fatalf("95%% CI upper bound = %.4f, want a >=10%% gain with confidence", c.ExecTime.Hi)
	}
	// Secondary trends of Fig. 6 at the same point: PRIO stalls less
	// and utilizes workers better.
	if c.Stalling.Valid && c.Stalling.Median >= 1.0 {
		t.Fatalf("stall ratio median = %.4f, want < 1", c.Stalling.Median)
	}
	if !c.Utilization.Valid || c.Utilization.Median <= 1.0 {
		t.Fatalf("utilization ratio median = %.4f, want > 1", c.Utilization.Median)
	}
}

// TestHeadlineParityRegimes verifies the paper's boundary observations
// on the real AIRSN dag: with very frequent batches (muBIT = 10^-3) or
// enormous batches (muBS = 2^16) the two algorithms perform about the
// same.
func TestHeadlineParityRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("parity experiments need full AIRSN width")
	}
	g := workloads.PaperAIRSN()
	opts := ExperimentOptions{P: 10, Q: 10, Seed: 2}
	fast := ComparePRIOFIFO(g, DefaultParams(0.001, 16), opts)
	if !fast.ExecTime.Valid || fast.ExecTime.Median < 0.93 || fast.ExecTime.Median > 1.07 {
		t.Fatalf("frequent-batch ratio = %+v, want ~1", fast.ExecTime)
	}
	big := ComparePRIOFIFO(g, DefaultParams(1, 1<<16), opts)
	if !big.ExecTime.Valid || big.ExecTime.Median < 0.93 || big.ExecTime.Median > 1.07 {
		t.Fatalf("huge-batch ratio = %+v, want ~1", big.ExecTime)
	}
}
