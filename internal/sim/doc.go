// Package sim implements the stochastic grid model of Section 4.1 and
// the experiment driver of Section 4.2 — the evaluation harness that
// compares the PRIO schedule against DAGMan's FIFO regimen.
//
// # The model
//
// Batches of worker requests arrive at a central server; the first
// batch at time 0, subsequent interarrival times exponentially
// distributed with mean BatchInterarrival (mu_BIT). Batch sizes are
// exponentially distributed with mean BatchSize (mu_BS), discretized to
// max(1, round(x)). Each assigned job runs for a Normal(1, 0.1) time on
// its worker. Requests that cannot be filled are NOT rolled over —
// those workers are presumed intercepted by other computations
// (Params.RolloverWorkers flips this assumption for the ablation). Two
// scheduling regimens are modelled: the oblivious regimen (a fixed
// total order prioritizes the eligible jobs; with the prio pipeline's
// order this is PRIO) and the FIFO regimen used by DAGMan.
//
// Three metrics are measured per run (Section 4.1): the execution time
// (time at which the last job completes), the probability of stalling
// (fraction of batches, among those arriving before the last job is
// assigned, that found at least one unexecuted-and-unassigned job but
// no eligible one), and the utilization (jobs divided by the total
// requests arriving until the batch at which the last job was
// assigned).
//
// # Role in the pipeline
//
// This package consumes schedules, it never produces them: NewPRIO and
// PolicyFactoryOpts run the core pipeline once, up front, and wrap the
// resulting order in an Oblivious policy. Compare / ComparePRIOFIFO /
// Sweep then replicate Run over seeded streams and reduce the metrics
// to the paper's sampling-distribution confidence intervals
// (P*Q replications, Section 4.2). PolicyFactoryOpts threads a
// core.Options through, so the simulators inherit -parallel / -cache
// behavior from cmd/dagsim; the simulation itself is bit-identical
// either way, since the parallel pipeline is differentially tested to
// produce the sequential order. Simulated dags arrive as *dag.Frozen
// values; the replication kernel's hot loop walks the Frozen's CSR
// arc arena directly (dag.Frozen.ChildCSR), so the simulator carries
// no private copy of the graph.
//
// # Invariants
//
// Runs are deterministic given a seed: measure pre-derives one seed per
// replication from a single stream before any goroutine starts, so
// results do not depend on Workers or on goroutine interleaving. A
// policy sees every job exactly once via Eligible before it can return
// it from Next, and Run validates Params before simulating.
//
// # Concurrency contract
//
// Policy implementations (Oblivious, FIFO, and the factory-built
// random/critpath policies) are stateful per run and NOT safe for
// concurrent use — that is why the drivers take a factory func() Policy
// and construct one policy per worker. The experiment drivers
// (Compare, ComparePRIOFIFO, Sweep) are themselves safe to call
// concurrently on shared read-only graphs; internally each call runs
// its own ExperimentOptions.Workers-sized pool. Params,
// PolicyMeasurements, Comparison, and GridPoint are plain data.
package sim
