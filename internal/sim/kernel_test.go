package sim

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/workloads"
)

// TestRunnerMatchesRun pins the Runner's equivalence contract:
// Runner.Run(p, pol, seed) returns exactly Run(g, p, pol, rng.New(seed))
// even as the pooled state carries over between replications, across
// policies and the failure/rollover branches.
func TestRunnerMatchesRun(t *testing.T) {
	g := workloads.AIRSN(15)
	fail := DefaultParams(1, 8)
	fail.FailureProb = 0.15
	roll := DefaultParams(0.3, 4)
	roll.RolloverWorkers = true
	params := []Params{DefaultParams(1, 8), fail, roll}

	for _, name := range []string{"prio", "fifo", "random", "prio-maxjobs=4"} {
		factory, err := PolicyFactory(name, g)
		if err != nil {
			t.Fatal(err)
		}
		runner := NewRunner(g)
		pooled := factory()
		for _, p := range params {
			for seed := uint64(1); seed <= 20; seed++ {
				got := runner.Run(p, pooled, seed)
				want := Run(g, p, factory(), rng.New(seed))
				if got != want {
					t.Fatalf("%s seed %d: pooled run %+v, fresh run %+v", name, seed, got, want)
				}
			}
		}
	}
}

// TestRunKernelZeroAllocs is the regression gate for the kernel's
// headline property: once the pooled buffers have reached the dag's
// high-water mark, a replication performs zero heap allocations. CI
// runs this on every PR.
func TestRunKernelZeroAllocs(t *testing.T) {
	g := workloads.AIRSN(15)
	p := DefaultParams(1, 8)
	for _, name := range []string{"prio", "fifo"} {
		factory, err := PolicyFactory(name, g)
		if err != nil {
			t.Fatal(err)
		}
		runner := NewRunner(g)
		pol := factory()
		seed := uint64(0)
		// Warm the buffers past the high-water mark of the seeds the
		// measurement below will replay.
		for i := 0; i < 64; i++ {
			seed++
			runner.Run(p, pol, seed)
		}
		seed = 0
		allocs := testing.AllocsPerRun(64, func() {
			seed++
			runner.Run(p, pol, seed)
		})
		if allocs != 0 {
			t.Errorf("%s: %.2f allocs per steady-state replication, want 0", name, allocs)
		}
	}
}

// TestEventHeapOrdering drives the overflow min-heap with a random
// push/pop interleaving and checks it always yields the minimum.
func TestEventHeapOrdering(t *testing.T) {
	r := rng.New(3)
	var h eventHeap
	var live []float64
	for step := 0; step < 5000; step++ {
		if len(live) == 0 || r.Float64() < 0.6 {
			at := r.Float64()
			h.push(completion{at: at, job: int32(step)})
			live = append(live, at)
		} else {
			ev := h.pop()
			sort.Float64s(live)
			if ev.at != live[0] {
				t.Fatalf("step %d: popped %v, min is %v", step, ev.at, live[0])
			}
			live = live[1:]
		}
	}
	// Drain: must come out sorted.
	sort.Float64s(live)
	for _, want := range live {
		if got := h.pop().at; got != want {
			t.Fatalf("drain: popped %v, want %v", got, want)
		}
	}
	if len(h) != 0 {
		t.Fatalf("heap not empty after drain: %d left", len(h))
	}
}

// TestSortCompletions checks the specialized quicksort against the
// standard library on random data and on the patterns quicksorts get
// wrong: pre-sorted, reversed, constant, and few-distinct inputs, plus
// every length through the insertion-sort cutover.
func TestSortCompletions(t *testing.T) {
	r := rng.New(11)
	check := func(name string, s []completion) {
		t.Helper()
		want := make([]float64, len(s))
		for i, ev := range s {
			want[i] = ev.at
		}
		sort.Float64s(want)
		sortCompletions(s)
		for i, ev := range s {
			if ev.at != want[i] {
				t.Fatalf("%s: index %d = %v, want %v", name, i, ev.at, want[i])
			}
		}
	}
	for n := 0; n <= 60; n++ {
		s := make([]completion, n)
		for i := range s {
			s[i] = completion{at: r.Float64(), job: int32(i)}
		}
		check(fmt.Sprintf("random-%d", n), s)
	}
	big := func(gen func(i int) float64) []completion {
		s := make([]completion, 5000)
		for i := range s {
			s[i] = completion{at: gen(i), job: int32(i)}
		}
		return s
	}
	check("random-big", big(func(int) float64 { return r.Float64() }))
	check("sorted", big(func(i int) float64 { return float64(i) }))
	check("reversed", big(func(i int) float64 { return float64(-i) }))
	check("constant", big(func(int) float64 { return 1.5 }))
	check("few-distinct", big(func(i int) float64 { return float64(i % 3) }))
	check("sawtooth", big(func(i int) float64 { return float64(i % 50) }))
}

// TestEventQueueOrdering drives the sort-merge event queue through the
// kernel's access pattern — bursts of appends, a normalize, a run of
// pops with occasional mid-drain pushes (the rollover path) — against
// a sorted-slice oracle.
func TestEventQueueOrdering(t *testing.T) {
	r := rng.New(9)
	var q eventQueue
	var live []float64
	popOne := func(step int) {
		at, _ := q.pop()
		sort.Float64s(live)
		if at != live[0] {
			t.Fatalf("step %d: popped %v, min is %v", step, at, live[0])
		}
		live = live[1:]
	}
	for step := 0; step < 2000; step++ {
		// Burst of appends (a batch arrival).
		burst := int(r.Float64() * 20)
		for i := 0; i < burst; i++ {
			at := r.Float64() * 100
			q.appendBurst(at, int32(i))
			live = append(live, at)
		}
		q.normalize()
		if q.len() != len(live) {
			t.Fatalf("step %d: len %d, want %d", step, q.len(), len(live))
		}
		// Drain some, with occasional mid-drain pushes.
		drain := int(r.Float64() * float64(len(live)+1))
		for i := 0; i < drain && len(live) > 0; i++ {
			if r.Float64() < 0.2 {
				at := r.Float64() * 100
				q.pushSorted(at, int32(i))
				live = append(live, at)
			}
			popOne(step)
		}
	}
	q.normalize()
	for len(live) > 0 {
		popOne(-1)
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty after drain: %d left", q.len())
	}
	// Reset gives back an empty, reusable queue.
	q.appendBurst(1, 1)
	q.reset()
	if q.len() != 0 {
		t.Fatal("reset left events behind")
	}
}

// TestKernelCSRViews checks the shared dag.Frozen CSR arrays the kernel
// borrows (ChildCSR, Sources, the indegrees reset reads) against the
// per-node accessors: the kernel no longer flattens the dag itself, so
// this pins the layout contract it depends on.
func TestKernelCSRViews(t *testing.T) {
	g := workloads.AIRSN(10)
	childStart, children := g.ChildCSR()
	n := g.NumNodes()
	if len(childStart) != n+1 {
		t.Fatalf("childStart length %d, want %d", len(childStart), n+1)
	}
	for v := 0; v < n; v++ {
		kids := g.Children(v)
		lo, hi := childStart[v], childStart[v+1]
		if int(hi-lo) != len(kids) {
			t.Fatalf("node %d: %d children in layout, want %d", v, hi-lo, len(kids))
		}
		for i, c := range kids {
			if children[lo+int32(i)] != c {
				t.Fatalf("node %d child %d: layout %d, want %d", v, i, children[lo+int32(i)], c)
			}
		}
	}
	var sources []int32
	for v := 0; v < n; v++ {
		if g.InDegree(v) == 0 {
			sources = append(sources, int32(v))
		}
	}
	got := g.Sources()
	if len(sources) != len(got) {
		t.Fatalf("sources %v, want %v", got, sources)
	}
	for i := range sources {
		if sources[i] != got[i] {
			t.Fatalf("sources %v, want %v", got, sources)
		}
	}
	// reset fills remaining from the precomputed indegrees.
	var st runState
	st.reset(g, n)
	for v := 0; v < n; v++ {
		if int(st.remaining[v]) != g.InDegree(v) {
			t.Fatalf("node %d remaining %d, want indegree %d", v, st.remaining[v], g.InDegree(v))
		}
	}
}

// TestFIFOCompaction asserts the satellite fix: the FIFO queue no
// longer retains every job ever enqueued. A long enqueue/dequeue churn
// (the failure/rollover pattern that re-enqueues jobs indefinitely)
// must keep the backing slice bounded by the live queue length, not the
// total enqueue count.
func TestFIFOCompaction(t *testing.T) {
	f := NewFIFO()
	f.Start(independentDag(4), rng.New(1))
	const churn = 100000
	maxLen := 0
	for i := 0; i < churn; i++ {
		f.Eligible(i)
		f.Eligible(i + churn)
		if _, ok := f.Next(); !ok {
			t.Fatal("queue unexpectedly empty")
		}
		if len(f.queue) > maxLen {
			maxLen = len(f.queue)
		}
	}
	// The live backlog grows by one per iteration; the backing slice
	// may hold up to ~2x the live entries between compactions but must
	// not hold all 2*churn ever-enqueued jobs.
	live := churn + 1
	if maxLen > 2*live+4 {
		t.Fatalf("queue slice grew to %d for %d live entries: consumed prefix retained", maxLen, live)
	}

	// Steady-state churn on a near-empty queue: the slice must stay
	// tiny even after many cycles. (Fresh policy: Start deliberately
	// keeps grown capacity for reuse across replications.)
	f = NewFIFO()
	f.Start(independentDag(4), rng.New(1))
	for i := 0; i < churn; i++ {
		f.Eligible(i)
		f.Next()
	}
	if len(f.queue) > 4 || cap(f.queue) > 1024 {
		t.Fatalf("steady-state queue len=%d cap=%d, want compacted", len(f.queue), cap(f.queue))
	}
	// Order is preserved across compactions.
	f.Start(independentDag(4), rng.New(1))
	next := 0
	for i := 0; i < 1000; i++ {
		f.Eligible(2 * i)
		f.Eligible(2*i + 1)
		v, ok := f.Next()
		if !ok || v != next {
			t.Fatalf("pop %d = %d,%v want %d", i, v, ok, next)
		}
		next++
	}
}

// TestTwoLevelCompaction covers the same fix on the DAGMan-queue side
// of the two-level policy.
func TestTwoLevelCompaction(t *testing.T) {
	order := make([]int, 4)
	for i := range order {
		order[i] = i
	}
	tl := NewTwoLevel(order, 1)
	tl.Start(independentDag(4), rng.New(1))
	for i := 0; i < 100000; i++ {
		tl.Eligible(i % 4)
		if _, ok := tl.Next(); !ok {
			t.Fatal("two-level queue unexpectedly empty")
		}
	}
	if len(tl.dagman) > 8 || cap(tl.dagman) > 1024 {
		t.Fatalf("dagman queue len=%d cap=%d, want compacted", len(tl.dagman), cap(tl.dagman))
	}
}

// BenchmarkRunKernel is the replication-kernel micro-benchmark: one
// paper-scale replication per iteration through the pooled Runner, the
// unit of work the 11.3M-run evaluation repeats. Each paper dag runs
// with a batch size matched to its width, as in Figures 6-9 (AIRSN is
// narrow, SDSS is ~1e4 jobs wide). Compare BenchmarkRunAIRSN (fresh
// state per run, the pre-engine cost) in sim_test.go; make bench-sim
// records both in BENCH_sim.json.
func BenchmarkRunKernel(b *testing.B) {
	for _, w := range []struct {
		dag  string
		muBS float64
	}{{"airsn", 16}, {"inspiral", 512}, {"sdss", 8192}} {
		g, err := workloads.ByName(w.dag, 1)
		if err != nil {
			b.Fatal(err)
		}
		order := core.Prioritize(g).Order
		heftFactory, err := PolicyFactory("heft", g)
		if err != nil {
			b.Fatal(err)
		}
		p := DefaultParams(1, w.muBS)
		// One ranker-tier family (heft) benches alongside the paper's
		// pair so BENCH_sim.json carries a per-policy row proving the
		// new families run the same zero-alloc fast path — bench-sim's
		// RunKernel/ assertions gate its B/op at exactly 0 like prio's.
		for _, tc := range []struct {
			name string
			pol  Policy
		}{{"prio", NewOblivious("PRIO", order)}, {"fifo", NewFIFO()}, {"heft", heftFactory()}} {
			b.Run(w.dag+"/"+tc.name, func(b *testing.B) {
				runner := NewRunner(g)
				runner.Run(p, tc.pol, 1) // reach steady state before measuring
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runner.Run(p, tc.pol, uint64(i))
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reps/s")
			})
		}
	}
}

// BenchmarkEngineGrid runs a small whole-grid experiment through the
// flat scheduler: 4 points × 2 policies × 36 replications per
// iteration on scaled AIRSN — the end-to-end shape of a Figures 6-9
// sweep.
func BenchmarkEngineGrid(b *testing.B) {
	g, err := workloads.ByName("airsn", 4)
	if err != nil {
		b.Fatal(err)
	}
	a, _ := PolicyFactory("prio", g)
	bf, _ := PolicyFactory("fifo", g)
	points := []Params{
		DefaultParams(1, 8), DefaultParams(1, 32),
		DefaultParams(10, 8), DefaultParams(10, 32),
	}
	opts := ExperimentOptions{P: 6, Q: 6, Seed: 1}
	reps := float64(len(points) * 2 * opts.P * opts.Q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i + 1)
		out := CompareGrid(g, points, a, bf, opts, nil)
		if !out[0].ExecTime.Valid {
			b.Fatal("invalid CI")
		}
	}
	b.ReportMetric(reps*float64(b.N)/b.Elapsed().Seconds(), "reps/s")
}
