package sim

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/workloads"
)

func TestRolloverChainNeedsOneBatch(t *testing.T) {
	// A 10-job chain with batches arriving rarely but hugely: with
	// rollover, the first batch's workers camp at the server and run
	// the whole chain back to back (~10 time units); without rollover,
	// every link waits ~muBIT for a fresh batch (~90+ units).
	g := chainDag(10)
	p := DefaultParams(50, 100)
	p.RolloverWorkers = true
	withRoll := Run(g, p, NewFIFO(), rng.New(2))
	p.RolloverWorkers = false
	without := Run(g, p, NewFIFO(), rng.New(2))
	if withRoll.ExecutionTime > 15 {
		t.Fatalf("rollover chain took %v, want ~10", withRoll.ExecutionTime)
	}
	if without.ExecutionTime < 100 {
		t.Fatalf("no-rollover chain took %v, want hundreds", without.ExecutionTime)
	}
}

func TestRolloverNeverSlower(t *testing.T) {
	g := workloads.AIRSN(20)
	for seed := uint64(1); seed <= 8; seed++ {
		p := DefaultParams(2, 8)
		p.RolloverWorkers = true
		a := Run(g, p, NewFIFO(), rng.New(seed))
		p.RolloverWorkers = false
		b := Run(g, p, NewFIFO(), rng.New(seed))
		// Not strictly comparable run-by-run (different random draws
		// once assignments diverge), but rollover should never be
		// dramatically slower.
		if a.ExecutionTime > b.ExecutionTime*1.5 {
			t.Fatalf("seed %d: rollover %v much slower than %v", seed, a.ExecutionTime, b.ExecutionTime)
		}
	}
}

// TestRolloverKeepsPRIOAdvantage checks that the paper's no-rollover
// assumption is not what creates PRIO's advantage: with waiting workers
// the gain persists at the same order of magnitude. (At laptop-scale
// replication counts the two gains are statistically indistinguishable,
// so no direction between them is asserted.)
func TestRolloverKeepsPRIOAdvantage(t *testing.T) {
	g := workloads.AIRSN(60)
	opts := ExperimentOptions{P: 12, Q: 12, Seed: 5}

	noRoll := ComparePRIOFIFO(g, DefaultParams(1, 8), opts)

	p := DefaultParams(1, 8)
	p.RolloverWorkers = true
	order, err := PolicyFactory("prio", g)
	if err != nil {
		t.Fatal(err)
	}
	fifoF, _ := PolicyFactory("fifo", g)
	roll := Compare(g, p, order, fifoF, opts)

	if !noRoll.ExecTime.Valid || !roll.ExecTime.Valid {
		t.Fatal("missing CIs")
	}
	gainNo := 1 - noRoll.ExecTime.Median
	gainRoll := 1 - roll.ExecTime.Median
	if gainNo <= 0 {
		t.Fatalf("premise broken: no-rollover gain %v", gainNo)
	}
	if gainRoll <= 0 {
		t.Fatalf("PRIO advantage vanished under rollover (gain %.3f vs %.3f without)", gainRoll, gainNo)
	}
}
