package sim

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/rng"
)

// staticRank is the runtime tier's capability interface: a policy
// whose entire behaviour is determined by one fixed total order over
// the jobs. fastPathOK admits any implementation to the order-free
// fast kernel — the capability, not the concrete type, is the
// admission ticket — so every ranker family internal/rank produces
// (and any wrapper embedding *Oblivious) inherits the fast path.
//
// Embedding *Oblivious promotes both methods, and doing so is a
// semantic claim: the embedder must not change assignment behaviour
// (Eligible/Next), or the fast path would execute the static order
// while the ordered path executes the override. Policies that do
// change it (TwoLevel's bounded forwarding) hold an order field
// instead of embedding.
type staticRank interface {
	Policy
	// StaticOrder returns the fixed order (position -> job) that fully
	// determines the policy. The kernel reads the order through this
	// seam — see the devirtualized ranker hook in runFast.
	StaticOrder() []int
	// fastCore returns the Oblivious state machine executing that
	// order; the fast kernel keys its pooled build on its identity.
	fastCore() *Oblivious
}

// Oblivious is the paper's oblivious scheduling regimen: a fixed total
// order P over the jobs; when requests arrive, the eligible unassigned
// jobs smallest under P are handed out. With P = the prio tool's
// schedule this is the PRIO algorithm.
//
// An Oblivious instance is reused across replications by the engine:
// Start resets the eligible set in place (truncating the rank heap's
// backing array) and the rank table is derived from the immutable order
// once, on the first Start, so steady-state runs allocate nothing.
type Oblivious struct {
	name string
	rank []int
	// eligible holds the ranks of the currently eligible, unassigned
	// jobs; Next pops the minimum rank. Ranks are unique, so the pop
	// order is a pure function of the set's contents — swapping the
	// earlier btree for the reusable bitmap cannot change a schedule.
	eligible bitset.MinSet
	order    []int // rank -> job
}

// NewOblivious builds an oblivious policy from a total order over all
// jobs of the dag it will run on (order[i] executes with priority i).
func NewOblivious(name string, order []int) *Oblivious {
	return &Oblivious{name: name, order: append([]int(nil), order...)}
}

// NewPRIO builds the PRIO policy for g by running the full prio
// heuristic pipeline.
func NewPRIO(g *dag.Frozen) *Oblivious {
	return NewOblivious("PRIO", core.Prioritize(g).Order)
}

// Name implements Policy.
func (o *Oblivious) Name() string { return o.name }

// StaticOrder implements staticRank: the immutable order (position ->
// job) the policy was built from.
func (o *Oblivious) StaticOrder() []int { return o.order }

// fastCore implements staticRank.
func (o *Oblivious) fastCore() *Oblivious { return o }

// Start implements Policy.
func (o *Oblivious) Start(g *dag.Frozen, _ *rng.Source) {
	if len(o.order) != g.NumNodes() {
		panic(fmt.Sprintf("sim: order covers %d jobs, dag has %d", len(o.order), g.NumNodes()))
	}
	if len(o.rank) != len(o.order) {
		o.rank = make([]int, len(o.order))
		for r, v := range o.order {
			o.rank[v] = r
		}
	}
	o.eligible.Reset(len(o.order))
}

// Eligible implements Policy.
func (o *Oblivious) Eligible(v int) { o.eligible.Add(o.rank[v]) }

// Next implements Policy.
func (o *Oblivious) Next() (int, bool) {
	r, ok := o.eligible.PopMin()
	if !ok {
		return 0, false
	}
	return o.order[r], true
}

// FIFO is DAGMan's regimen: eligible jobs queue in the order they became
// eligible and are assigned from the front.
type FIFO struct {
	queue []int
	head  int
}

// NewFIFO returns a FIFO policy.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Policy.
func (f *FIFO) Name() string { return "FIFO" }

// Start implements Policy.
func (f *FIFO) Start(g *dag.Frozen, _ *rng.Source) {
	f.queue = f.queue[:0]
	f.head = 0
}

// Eligible implements Policy.
func (f *FIFO) Eligible(v int) { f.queue = append(f.queue, v) }

// Next implements Policy.
func (f *FIFO) Next() (int, bool) {
	if f.head >= len(f.queue) {
		// Empty: drop the consumed prefix entirely so the next append
		// reuses the front of the backing array.
		f.queue = f.queue[:0]
		f.head = 0
		return 0, false
	}
	v := f.queue[f.head]
	f.head++
	// Compact once the consumed prefix dominates the slice. Without
	// this the queue only ever grows: on long runs with failures or
	// rolled-over workers it retains every job ever enqueued. Each
	// element is copied at most once per halving, so Next stays
	// amortized O(1), and the pop order is untouched.
	if f.head > len(f.queue)/2 {
		n := copy(f.queue, f.queue[f.head:])
		f.queue = f.queue[:n]
		f.head = 0
	}
	return v, true
}
