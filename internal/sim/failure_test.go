package sim

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/workloads"
)

func TestFailureModelCompletesAndSlows(t *testing.T) {
	g := chainDag(10)
	base := DefaultParams(0.1, 4)
	var okTime, failTime float64
	const reps = 25
	for i := 0; i < reps; i++ {
		okTime += Run(g, base, NewFIFO(), rng.New(uint64(i))).ExecutionTime
		p := base
		p.FailureProb = 0.3
		failTime += Run(g, p, NewFIFO(), rng.New(uint64(i))).ExecutionTime
	}
	okTime /= reps
	failTime /= reps
	// a 30% failure rate on a chain should stretch execution noticeably
	if failTime < okTime*1.2 {
		t.Fatalf("failures barely slowed the chain: %.2f vs %.2f", failTime, okTime)
	}
}

func TestFailureRequeuesThroughPolicy(t *testing.T) {
	// With failures, total assignments exceed the job count.
	g := workloads.AIRSN(10)
	p := DefaultParams(1, 8)
	p.FailureProb = 0.25
	rec := &recordingPolicy{inner: NewFIFO()}
	m := RunObserved(g, p, rec, rng.New(9), nil)
	if m.ExecutionTime <= 0 {
		t.Fatal("run did not finish")
	}
	if len(rec.assigned) <= g.NumNodes() {
		t.Fatalf("expected reassignments: %d assignments for %d jobs", len(rec.assigned), g.NumNodes())
	}
}

func TestFailureProbValidation(t *testing.T) {
	p := DefaultParams(1, 1)
	p.FailureProb = 1
	defer func() {
		if recover() == nil {
			t.Fatal("FailureProb = 1 accepted (would never terminate)")
		}
	}()
	Run(chainDag(2), p, NewFIFO(), rng.New(1))
}

// TestPRIOAdvantageSurvivesFailures: the paper motivates eligibility
// maximization with grid unpredictability; worker failures are its
// harshest form, and PRIO's advantage should persist under them.
func TestPRIOAdvantageSurvivesFailures(t *testing.T) {
	g := workloads.AIRSN(60)
	p := DefaultParams(1, 8)
	p.FailureProb = 0.1
	prio, _ := PolicyFactory("prio", g)
	fifo, _ := PolicyFactory("fifo", g)
	opts := ExperimentOptions{P: 12, Q: 12, Seed: 6}
	c := Compare(g, p, prio, fifo, opts)
	if !c.ExecTime.Valid || c.ExecTime.Median >= 1 {
		t.Fatalf("PRIO advantage lost under failures: %+v", c.ExecTime)
	}
}

// failCounter counts Failed callbacks.
type failCounter struct{ fails int }

func (f *failCounter) BatchArrived(float64, int, int) {}
func (f *failCounter) Assigned(float64, int)          {}
func (f *failCounter) Completed(float64, int)         {}
func (f *failCounter) Failed(float64, int)            { f.fails++ }

func TestFailureObserverFires(t *testing.T) {
	g := workloads.AIRSN(10)
	p := DefaultParams(1, 8)
	p.FailureProb = 0.3
	fc := &failCounter{}
	RunObserved(g, p, NewFIFO(), rng.New(4), fc)
	if fc.fails == 0 {
		t.Fatal("no Failed events at a 30% failure rate")
	}
}
