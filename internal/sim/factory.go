package sim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/rank"
)

// PolicyFactory resolves a policy name to a constructor for g. Factories
// are needed (rather than instances) because policies are stateful and
// the experiment driver runs one per worker. Every name below except
// fifo, random, and the maxjobs throttle resolves through the ranker
// tier (internal/rank) into one Oblivious state machine, so the whole
// family shares the kernel's order-free fast path. Recognized names —
// PolicyGrammar returns exactly this table's first column, and
// TestFactoryDocGrammar pins the two together:
//
//	prio            the prio tool's schedule (the paper's PRIO)
//	fifo            DAGMan's eligibility-order queue (the paper's FIFO)
//	random          uniformly random eligible job
//	critpath        highest-level-first (classic critical path)
//	heft            upward-rank priorities (Zhang et al., HEFT-style)
//	graphene        troublesome-subset-first packing (Grandl et al.)
//	prio-maxjobs=N  PRIO behind the Section 3.2 two-queue throttle
//	maxjobs=N       alias for prio-maxjobs=N
//	C1+C2+...+Ck    rank-component chain: C1 decides, later components
//	                break ties (tiebreak=NAME accepted); components are
//	                critpath, heft, outdeg, trouble (see internal/rank)
func PolicyFactory(name string, g *dag.Frozen) (func() Policy, error) {
	return PolicyFactoryOpts(name, g, core.Options{})
}

// PolicyFactoryOpts is PolicyFactory with explicit pipeline options for
// the PRIO-based policies, so the simulator harnesses can use the
// parallel Recurse phase and the schedule cache (dagsim -parallel
// -cache). Schedules are computed once per factory, up front; the
// returned constructors never run the pipeline again.
func PolicyFactoryOpts(name string, g *dag.Frozen, opts core.Options) (func() Policy, error) {
	switch {
	case name == "fifo":
		return func() Policy { return NewFIFO() }, nil
	case name == "random":
		return func() Policy { return NewRandom() }, nil
	case strings.HasPrefix(name, "prio-maxjobs="),
		strings.HasPrefix(name, "maxjobs="):
		_, val, _ := strings.Cut(name, "=")
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sim: bad maxjobs value %q", val)
		}
		order := core.PrioritizeOpts(g, opts).Order
		return func() Policy { return NewTwoLevel(order, n) }, nil
	default:
		r, err := rank.New(name, opts)
		if err != nil {
			return nil, fmt.Errorf("sim: %w (policy grammar: %s)", err, strings.Join(PolicyGrammar(), ", "))
		}
		order := r.Order(g)
		polName := r.Name()
		return func() Policy { return NewOblivious(polName, order) }, nil
	}
}

// PolicyNames lists the recognized fixed policy names (the ones that
// take no parameter), in the grammar table's order. The serving layer
// publishes this list on /v1/workloads.
func PolicyNames() []string {
	return []string{"prio", "fifo", "random", "critpath", "heft", "graphene"}
}

// PolicyGrammar lists every form the factory accepts: the fixed names
// plus the parameterized ones, exactly as the PolicyFactory doc table
// spells them. TestFactoryDocGrammar asserts table and function agree.
func PolicyGrammar() []string {
	return append(PolicyNames(), "prio-maxjobs=N", "maxjobs=N", "C1+C2+...+Ck")
}
