package sim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dag"
)

// PolicyFactory resolves a policy name to a constructor for g. Factories
// are needed (rather than instances) because policies are stateful and
// the experiment driver runs one per worker. Recognized names:
//
//	prio            the prio tool's schedule (the paper's PRIO)
//	fifo            DAGMan's eligibility-order queue (the paper's FIFO)
//	random          uniformly random eligible job
//	critpath        highest-level-first (classic critical path)
//	prio-maxjobs=N  PRIO behind the Section 3.2 two-queue throttle
func PolicyFactory(name string, g *dag.Frozen) (func() Policy, error) {
	return PolicyFactoryOpts(name, g, core.Options{})
}

// PolicyFactoryOpts is PolicyFactory with explicit pipeline options for
// the PRIO-based policies, so the simulator harnesses can use the
// parallel Recurse phase and the schedule cache (dagsim -parallel
// -cache). Schedules are computed once per factory, up front; the
// returned constructors never run the pipeline again.
func PolicyFactoryOpts(name string, g *dag.Frozen, opts core.Options) (func() Policy, error) {
	switch {
	case name == "prio":
		order := core.PrioritizeOpts(g, opts).Order
		return func() Policy { return NewOblivious("PRIO", order) }, nil
	case name == "fifo":
		return func() Policy { return NewFIFO() }, nil
	case name == "random":
		return func() Policy { return NewRandom() }, nil
	case name == "critpath":
		order := criticalPathOrder(g)
		return func() Policy { return NewOblivious("CRITPATH", order) }, nil
	case strings.HasPrefix(name, "prio-maxjobs="),
		strings.HasPrefix(name, "maxjobs="):
		_, val, _ := strings.Cut(name, "=")
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sim: bad maxjobs value %q", val)
		}
		order := core.PrioritizeOpts(g, opts).Order
		return func() Policy { return NewTwoLevel(order, n) }, nil
	default:
		return nil, fmt.Errorf("sim: unknown policy %q (want prio, fifo, random, critpath, prio-maxjobs=N)", name)
	}
}

// criticalPathOrder exposes the order used by NewCriticalPath so the
// factory can capture it once per sweep.
func criticalPathOrder(g *dag.Frozen) []int {
	height, _ := g.Reverse().Levels()
	order := make([]int, g.NumNodes())
	for i := range order {
		order[i] = i
	}
	sortByHeight(order, height)
	return order
}

// PolicyNames lists the recognized fixed policy names.
func PolicyNames() []string { return []string{"prio", "fifo", "random", "critpath"} }
