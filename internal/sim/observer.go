package sim

import (
	"repro/internal/dag"
	"repro/internal/rng"
)

// Observer receives the simulation's events; cmd/dagsim uses it to print
// an execution trace. All callbacks fire in simulated-time order.
type Observer interface {
	// BatchArrived fires on each request batch: its size and how many
	// requests were filled.
	BatchArrived(at float64, size, served int)
	// Assigned fires when a job is handed to a worker.
	Assigned(at float64, job int)
	// Completed fires when a job's result returns.
	Completed(at float64, job int)
	// Failed fires when an assigned job's worker fails (FailureProb
	// runs only); the job re-enters the eligible pool.
	Failed(at float64, job int)
}

// RunObserved is Run with an event observer (which may be nil).
func RunObserved(g *dag.Frozen, p Params, pol Policy, src *rng.Source, obs Observer) Metrics {
	var st runState
	return st.run(g, p, pol, src, obs)
}
