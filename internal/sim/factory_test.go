package sim

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/workloads"
)

func TestFactoryKnownPolicies(t *testing.T) {
	g := workloads.AIRSN(10)
	for _, name := range append(PolicyNames(), "prio-maxjobs=8", "maxjobs=3") {
		f, err := PolicyFactory(name, g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pol := f()
		m := Run(g, DefaultParams(1, 4), pol, rng.New(7))
		if m.ExecutionTime <= 0 {
			t.Fatalf("%s: run did not finish", name)
		}
		// factories must return fresh instances
		if f() == pol {
			t.Fatalf("%s: factory returned a shared instance", name)
		}
	}
}

func TestFactoryErrors(t *testing.T) {
	g := workloads.AIRSN(5)
	for _, bad := range []string{"", "nope", "maxjobs=x", "prio-maxjobs=-1"} {
		if _, err := PolicyFactory(bad, g); err == nil {
			t.Errorf("PolicyFactory(%q) accepted", bad)
		}
	}
}

func TestFactoryCritpathMatchesConstructor(t *testing.T) {
	g := workloads.Inspiral(6)
	f, err := PolicyFactory("critpath", g)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(1, 4)
	a := Run(g, p, f(), rng.New(3))
	b := Run(g, p, NewCriticalPath(g), rng.New(3))
	if a != b {
		t.Fatal("factory critpath differs from NewCriticalPath")
	}
}

// TestCriticalPathVsPRIO is the extension experiment: under batch
// variability the eligibility-maximizing PRIO should not lose to the
// classic critical-path heuristic on the bottleneck-heavy AIRSN dag.
func TestCriticalPathVsPRIO(t *testing.T) {
	g := workloads.AIRSN(60)
	prio, _ := PolicyFactory("prio", g)
	cp, _ := PolicyFactory("critpath", g)
	opts := ExperimentOptions{P: 12, Q: 12, Seed: 8}
	c := Compare(g, DefaultParams(1, 8), prio, cp, opts)
	if !c.ExecTime.Valid {
		t.Fatal("no CI")
	}
	if c.ExecTime.Median > 1.05 {
		t.Fatalf("PRIO/CRITPATH exec ratio = %v; PRIO should not lose", c.ExecTime)
	}
}
