package sim

import (
	"os"
	"slices"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/workloads"
)

func TestFactoryKnownPolicies(t *testing.T) {
	g := workloads.AIRSN(10)
	for _, name := range append(PolicyNames(), "prio-maxjobs=8", "maxjobs=3") {
		f, err := PolicyFactory(name, g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pol := f()
		m := Run(g, DefaultParams(1, 4), pol, rng.New(7))
		if m.ExecutionTime <= 0 {
			t.Fatalf("%s: run did not finish", name)
		}
		// factories must return fresh instances
		if f() == pol {
			t.Fatalf("%s: factory returned a shared instance", name)
		}
	}
}

// TestFactoryDocGrammar mirrors priolint's TestAnalyzersDocumented:
// the tab-indented grammar table in PolicyFactory's doc comment and
// PolicyGrammar() must list exactly the same forms, in the same order,
// so the factory and its documentation cannot drift apart (the table
// had already drifted once, silently omitting the maxjobs= alias).
func TestFactoryDocGrammar(t *testing.T) {
	src, err := os.ReadFile("factory.go")
	if err != nil {
		t.Fatal(err)
	}
	var rows []string
	for _, ln := range strings.Split(string(src), "\n") {
		if strings.HasPrefix(ln, "func ") {
			break // only the doc comment above the first declaration
		}
		rest, ok := strings.CutPrefix(ln, "//\t")
		if !ok || rest == "" || rest[0] == ' ' {
			continue // not a table row, or a wrapped continuation line
		}
		rows = append(rows, strings.Fields(rest)[0])
	}
	if want := PolicyGrammar(); !slices.Equal(rows, want) {
		t.Fatalf("PolicyFactory doc table and PolicyGrammar() disagree:\n table   %v\n grammar %v", rows, want)
	}
	// The fixed names are a prefix of the grammar, so the serving
	// layer's published list stays a subset of what the factory parses.
	if !slices.Equal(PolicyGrammar()[:len(PolicyNames())], PolicyNames()) {
		t.Fatalf("PolicyNames() %v is not a prefix of PolicyGrammar() %v", PolicyNames(), PolicyGrammar())
	}
}

func TestFactoryErrors(t *testing.T) {
	g := workloads.AIRSN(5)
	for _, bad := range []string{"", "nope", "maxjobs=x", "prio-maxjobs=-1", "heft+nope", "heft+", "+critpath"} {
		if _, err := PolicyFactory(bad, g); err == nil {
			t.Errorf("PolicyFactory(%q) accepted", bad)
		}
	}
}

func TestFactoryCritpathMatchesConstructor(t *testing.T) {
	g := workloads.Inspiral(6)
	f, err := PolicyFactory("critpath", g)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(1, 4)
	a := Run(g, p, f(), rng.New(3))
	b := Run(g, p, NewCriticalPath(g), rng.New(3))
	if a != b {
		t.Fatal("factory critpath differs from NewCriticalPath")
	}
}

// TestCriticalPathVsPRIO is the extension experiment: under batch
// variability the eligibility-maximizing PRIO should not lose to the
// classic critical-path heuristic on the bottleneck-heavy AIRSN dag.
func TestCriticalPathVsPRIO(t *testing.T) {
	g := workloads.AIRSN(60)
	prio, _ := PolicyFactory("prio", g)
	cp, _ := PolicyFactory("critpath", g)
	opts := ExperimentOptions{P: 12, Q: 12, Seed: 8}
	c := Compare(g, DefaultParams(1, 8), prio, cp, opts)
	if !c.ExecTime.Valid {
		t.Fatal("no CI")
	}
	if c.ExecTime.Median > 1.05 {
		t.Fatalf("PRIO/CRITPATH exec ratio = %v; PRIO should not lose", c.ExecTime)
	}
}
