// The whole-grid experiment engine. The earlier driver parallelized one
// grid point at a time: each measure call spun up its own worker pool,
// ran 2·P·Q replications, and tore the pool down before the next point
// started, so the tail of every point ran under-subscribed and the
// pool-start/stop cost was paid 7×9×2 times per figure. Here the entire
// grid — every point × both policies × all replications — is one flat
// work list claimed in chunks through an atomic counter by a single
// pool of workers that lives for the whole sweep. Each worker owns a
// Runner (pooled kernel state, kernel.go) and one reusable instance of
// each policy, so the steady-state replication loop does not allocate.
//
// Determinism contract: seeds are pre-derived exactly as the
// point-at-a-time driver derived them — per point, a base source
// rng.New(opts.Seed) is Split() once per policy and each policy's P·Q
// replication seeds are drawn sequentially from its stream — and every
// replication writes to its own pre-assigned index. Which worker runs
// which replication, and in what order, therefore cannot affect any
// result: grid rows are bit-identical across Workers settings and to
// the pre-engine output (the differential and determinism tests in
// engine_test.go pin both).
package sim

import (
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/rng"
	"repro/internal/stats"
)

// gridBlock is the raw-measurement store for one (point, policy) pair:
// P·Q pre-derived seeds and the per-replication metric slots they fill.
type gridBlock struct {
	params             Params
	side               int // index into the two policy factories
	seeds              []uint64
	execT, stall, util []float64
}

// CompareGrid measures policies a and b (numerator, denominator) at
// every parameter point and returns one Comparison per point, in order.
// All points share opts.Seed, matching a loop of Compare calls: the
// i-th returned Comparison is bit-identical to Compare(g, points[i], a,
// b, opts). Execution, however, is flat: all points × both policies ×
// all replications form one work list served by a single worker pool,
// so no point's tail leaves workers idle.
//
// progress, when non-nil, is invoked as progress(i, comparison) for
// each point in index order (point i is reported only after points
// 0..i-1), from a worker goroutine; it must not call back into the
// engine.
func CompareGrid(g *dag.Frozen, points []Params, a, b func() Policy, opts ExperimentOptions, progress func(int, Comparison)) []Comparison {
	opts = opts.normalized()
	for _, p := range points {
		if err := p.validate(); err != nil {
			panic(err)
		}
	}
	if len(points) == 0 {
		return nil
	}
	factories := [2]func() Policy{a, b}
	names := [2]string{a().Name(), b().Name()}

	// Pre-derive every replication seed exactly as the sequential
	// driver did, before any simulation starts.
	reps := opts.P * opts.Q
	blocks := make([]gridBlock, 2*len(points))
	for i, p := range points {
		base := rng.New(opts.Seed)
		for side := 0; side < 2; side++ {
			stream := base.Split()
			blk := &blocks[2*i+side]
			blk.params = p
			blk.side = side
			blk.seeds = make([]uint64, reps)
			for j := range blk.seeds {
				blk.seeds[j] = stream.Uint64()
			}
			blk.execT = make([]float64, reps)
			blk.stall = make([]float64, reps)
			blk.util = make([]float64, reps)
		}
	}

	total := 2 * len(points) * reps
	workers := opts.Workers
	if workers > total {
		workers = total
	}
	// Chunked claiming: big enough to amortize the atomic, small enough
	// that the final stragglers spread across workers.
	chunk := total / (workers * 16)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 256 {
		chunk = 256
	}

	out := make([]Comparison, len(points))
	var next atomic.Int64
	var mu sync.Mutex
	pendingReps := make([]int, len(points)) // remaining replications per point
	for i := range pendingReps {
		pendingReps[i] = 2 * reps
	}
	frontier := 0 // next point index to finalize, in order

	// finalizeTo assembles and reports every consecutive completed
	// point. Called with mu held.
	finalizeTo := func() {
		for frontier < len(points) && pendingReps[frontier] == 0 {
			i := frontier
			ba, bb := &blocks[2*i], &blocks[2*i+1]
			ma := assembleMeasurements(names[0], ba.execT, ba.stall, ba.util, opts)
			mb := assembleMeasurements(names[1], bb.execT, bb.stall, bb.util, opts)
			out[i] = Comparison{
				Params:      points[i],
				A:           ma,
				B:           mb,
				ExecTime:    stats.RatioInterval(ma.ExecTime, mb.ExecTime, opts.Confidence),
				Stalling:    stats.RatioInterval(ma.Stalling, mb.Stalling, opts.Confidence),
				Utilization: stats.RatioInterval(ma.Utilization, mb.Utilization, opts.Confidence),
			}
			frontier++
			if progress != nil {
				progress(i, out[i])
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runner := NewRunner(g)
			var pols [2]Policy
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= total {
					return
				}
				end := start + chunk
				if end > total {
					end = total
				}
				for r := start; r < end; r++ {
					blk := &blocks[r/reps]
					j := r % reps
					pol := pols[blk.side]
					if pol == nil {
						pol = factories[blk.side]()
						pols[blk.side] = pol
					}
					m := runner.Run(blk.params, pol, blk.seeds[j])
					blk.execT[j] = m.ExecutionTime
					blk.stall[j] = m.StallProbability
					blk.util[j] = m.Utilization
				}
				// Credit the completed replications to their points and
				// report any points that just finished.
				mu.Lock()
				for bi := start / reps; bi <= (end-1)/reps; bi++ {
					lo, hi := bi*reps, (bi+1)*reps
					if lo < start {
						lo = start
					}
					if hi > end {
						hi = end
					}
					pendingReps[bi/2] -= hi - lo
				}
				finalizeTo()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return out
}
