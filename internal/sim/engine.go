// The whole-grid experiment engine. The earlier driver parallelized one
// grid point at a time: each measure call spun up its own worker pool,
// ran 2·P·Q replications, and tore the pool down before the next point
// started, so the tail of every point ran under-subscribed and the
// pool-start/stop cost was paid 7×9×2 times per figure. Here the entire
// grid — every point × both policies × all replications — is one flat
// work list claimed in chunks through an atomic counter by a single
// pool of workers that lives for the whole sweep. Each worker owns a
// Runner (pooled kernel state, kernel.go) and one reusable instance of
// each policy, so the steady-state replication loop does not allocate.
//
// Determinism contract: seeds are pre-derived exactly as the
// point-at-a-time driver derived them — per point, a base source
// rng.New(opts.Seed) is Split() once per policy and each policy's P·Q
// replication seeds are drawn sequentially from its stream — and every
// replication writes to its own pre-assigned index. Which worker runs
// which replication, and in what order, therefore cannot affect any
// result: grid rows are bit-identical across Workers settings and to
// the pre-engine output (the differential and determinism tests in
// engine_test.go pin both).
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/rng"
	"repro/internal/stats"
)

// gridBlock is the raw-measurement store for one (point, policy) pair:
// P·Q pre-derived seeds and the per-replication metric slots they fill.
type gridBlock struct {
	params             Params
	side               int // index into the two policy factories
	seeds              []uint64
	execT, stall, util []float64
}

// PointSample holds the empirical sampling distributions of one grid
// point — three metrics × two policies, P values each — exactly the
// state a checkpoint manifest persists per completed point. Summaries
// and ratio intervals are deterministic pure functions of these
// distributions (stats.Summarize, stats.RatioInterval), so a Comparison
// rebuilt from a PointSample is bit-identical to the one computed live.
type PointSample struct {
	ExecTime, Stalling, Utilization [2][]float64 // [side][sample], side 0 = A
}

// comparisonFromSample rebuilds a point's Comparison from persisted
// sampling distributions. It must aggregate exactly as finalizeTo's
// live path does — same Summarize, same RatioInterval — so resumed rows
// are indistinguishable from computed ones.
func comparisonFromSample(p Params, names [2]string, s PointSample, opts ExperimentOptions) Comparison {
	var ms [2]PolicyMeasurements
	for side := 0; side < 2; side++ {
		pm := PolicyMeasurements{
			Name:        names[side],
			ExecTime:    s.ExecTime[side],
			Stalling:    s.Stalling[side],
			Utilization: s.Utilization[side],
		}
		pm.ExecSummary = stats.Summarize(pm.ExecTime)
		pm.StallSummary = stats.Summarize(pm.Stalling)
		pm.UtilSummary = stats.Summarize(pm.Utilization)
		ms[side] = pm
	}
	return Comparison{
		Params:      p,
		A:           ms[0],
		B:           ms[1],
		ExecTime:    stats.RatioInterval(ms[0].ExecTime, ms[1].ExecTime, opts.Confidence),
		Stalling:    stats.RatioInterval(ms[0].Stalling, ms[1].Stalling, opts.Confidence),
		Utilization: stats.RatioInterval(ms[0].Utilization, ms[1].Utilization, opts.Confidence),
	}
}

// CompareGrid measures policies a and b (numerator, denominator) at
// every parameter point and returns one Comparison per point, in order.
// All points share opts.Seed, matching a loop of Compare calls: the
// i-th returned Comparison is bit-identical to Compare(g, points[i], a,
// b, opts). Execution, however, is flat: all points × both policies ×
// all replications form one work list served by a single worker pool,
// so no point's tail leaves workers idle.
//
// opts.Shard restricts computation to the points this shard owns
// (index % Count == Index); the other points come back as zero
// Comparisons and are not reported to progress. Use CompareGridResume
// to fill them from a checkpoint.
//
// progress, when non-nil, is invoked as progress(i, comparison) for
// each covered point in index order (point i is reported only after
// every covered point below i), from a worker goroutine; it must not
// call back into the engine.
func CompareGrid(g *dag.Frozen, points []Params, a, b func() Policy, opts ExperimentOptions, progress func(int, Comparison)) []Comparison {
	return CompareGridResume(g, points, a, b, opts, nil, nil, progress)
}

// CompareGridResume is CompareGrid with checkpoint support: points
// present in have are not recomputed — their Comparisons are rebuilt
// from the persisted sampling distributions — and each newly computed
// point is handed to save (when non-nil) as soon as it completes, in
// index order, so an interrupted sweep can persist its progress row by
// row. save and progress are serialized under the engine's lock and
// must not call back into the engine.
//
// A point is covered when this shard owns it or have already holds it;
// covered points are reported to progress in index order. The returned
// slice always has len(points) entries, with zero Comparisons at
// uncovered indices. Running every shard of a sweep against one shared
// checkpoint therefore yields, on the last shard, the complete grid —
// bit-identical to a single unsharded uninterrupted run (the
// determinism contract above extends to Shard and to resume, and the
// tests in engine_test.go pin it).
func CompareGridResume(g *dag.Frozen, points []Params, a, b func() Policy, opts ExperimentOptions, have map[int]PointSample, save func(int, PointSample), progress func(int, Comparison)) []Comparison {
	opts = opts.normalized()
	for _, p := range points {
		if err := p.validate(); err != nil {
			panic(err)
		}
	}
	if len(points) == 0 {
		return nil
	}
	factories := [2]func() Policy{a, b}
	names := [2]string{a().Name(), b().Name()}
	reps := opts.P * opts.Q

	// Partition the grid: resumed points need no work, owned points are
	// computed, foreign points (another shard's, not yet checkpointed)
	// are left untouched.
	const (
		foreign = iota
		resumed
		computed
	)
	kind := make([]int, len(points))
	pointBlock := make([]int, len(points)) // index into blocks, -1 when not computed
	nCompute := 0
	for i := range points {
		pointBlock[i] = -1
		if s, ok := have[i]; ok {
			for side := 0; side < 2; side++ {
				if len(s.ExecTime[side]) != opts.P || len(s.Stalling[side]) != opts.P || len(s.Utilization[side]) != opts.P {
					panic(fmt.Sprintf("sim: resumed point %d has %d/%d/%d samples, want P=%d",
						i, len(s.ExecTime[side]), len(s.Stalling[side]), len(s.Utilization[side]), opts.P))
				}
			}
			kind[i] = resumed
			continue
		}
		if i%opts.Shard.Count == opts.Shard.Index {
			kind[i] = computed
			pointBlock[i] = 2 * nCompute
			nCompute++
		}
	}

	// Pre-derive every replication seed exactly as the sequential
	// driver did, before any simulation starts. Each point's base
	// source depends on opts.Seed alone, so skipping a point cannot
	// shift any other point's seeds.
	blocks := make([]gridBlock, 2*nCompute)
	blockPoint := make([]int, 2*nCompute) // block index -> point index
	for i, p := range points {
		if kind[i] != computed {
			continue
		}
		base := rng.New(opts.Seed)
		for side := 0; side < 2; side++ {
			stream := base.Split()
			blk := &blocks[pointBlock[i]+side]
			blockPoint[pointBlock[i]+side] = i
			blk.params = p
			blk.side = side
			blk.seeds = make([]uint64, reps)
			for j := range blk.seeds {
				blk.seeds[j] = stream.Uint64()
			}
			blk.execT = make([]float64, reps)
			blk.stall = make([]float64, reps)
			blk.util = make([]float64, reps)
		}
	}

	total := 2 * nCompute * reps
	workers := opts.Workers
	if workers > total {
		workers = total
	}

	out := make([]Comparison, len(points))
	var next atomic.Int64
	var mu sync.Mutex
	pendingReps := make([]int, len(points)) // remaining replications per point
	for i := range pendingReps {
		if kind[i] == computed {
			pendingReps[i] = 2 * reps
		}
	}
	frontier := 0 // next point index to finalize, in order

	// finalizeTo assembles and reports every consecutive completed
	// point. Called with mu held.
	finalizeTo := func() {
		for frontier < len(points) && pendingReps[frontier] == 0 {
			i := frontier
			frontier++
			switch kind[i] {
			case foreign:
				continue // another shard's point; leave the zero value
			case resumed:
				out[i] = comparisonFromSample(points[i], names, have[i], opts)
			case computed:
				ba, bb := &blocks[pointBlock[i]], &blocks[pointBlock[i]+1]
				ma := assembleMeasurements(names[0], ba.execT, ba.stall, ba.util, opts)
				mb := assembleMeasurements(names[1], bb.execT, bb.stall, bb.util, opts)
				out[i] = Comparison{
					Params:      points[i],
					A:           ma,
					B:           mb,
					ExecTime:    stats.RatioInterval(ma.ExecTime, mb.ExecTime, opts.Confidence),
					Stalling:    stats.RatioInterval(ma.Stalling, mb.Stalling, opts.Confidence),
					Utilization: stats.RatioInterval(ma.Utilization, mb.Utilization, opts.Confidence),
				}
				if save != nil {
					save(i, PointSample{
						ExecTime:    [2][]float64{ma.ExecTime, mb.ExecTime},
						Stalling:    [2][]float64{ma.Stalling, mb.Stalling},
						Utilization: [2][]float64{ma.Utilization, mb.Utilization},
					})
				}
			}
			if progress != nil {
				progress(i, out[i])
			}
		}
	}

	if total == 0 {
		// Nothing to simulate (everything resumed or foreign): report
		// the resumed rows and return.
		mu.Lock()
		finalizeTo()
		mu.Unlock()
		return out
	}

	// Chunked claiming: big enough to amortize the atomic, small enough
	// that the final stragglers spread across workers.
	chunk := total / (workers * 16)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 256 {
		chunk = 256
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runner := NewRunner(g)
			var pols [2]Policy
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= total {
					return
				}
				end := start + chunk
				if end > total {
					end = total
				}
				for r := start; r < end; r++ {
					blk := &blocks[r/reps]
					j := r % reps
					pol := pols[blk.side]
					if pol == nil {
						pol = factories[blk.side]()
						pols[blk.side] = pol
					}
					m := runner.Run(blk.params, pol, blk.seeds[j])
					blk.execT[j] = m.ExecutionTime
					blk.stall[j] = m.StallProbability
					blk.util[j] = m.Utilization
				}
				// Credit the completed replications to their points and
				// report any points that just finished.
				mu.Lock()
				for bi := start / reps; bi <= (end-1)/reps; bi++ {
					lo, hi := bi*reps, (bi+1)*reps
					if lo < start {
						lo = start
					}
					if hi > end {
						hi = end
					}
					pendingReps[blockPoint[bi]] -= hi - lo
				}
				finalizeTo()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return out
}
