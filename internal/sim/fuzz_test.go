package sim

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/rank"
	"repro/internal/rng"
)

// FuzzKernelReplication is the differential backstop for the pooled
// replication kernel: for an arbitrary small dag, parameter point,
// policy, and pair of seeds, Runner.Run must be bit-identical to the
// allocating sim.Run — including on the second replication, when the
// pooled buffers carry the previous run's high-water marks. The static
// noalloc proof (make lint) shows the kernel cannot allocate; this
// target shows the pooling it uses to get there never changes a
// result.
//
// Two further references pin the order-free fast path (kernelfast.go):
// every input also runs through the kernel with the fast path forced
// off (noFast), which must agree bit for bit — for order-sensitive
// policies that is the same path twice, for Oblivious inputs it is the
// fast calendar against the sort-merge queue. And when the input lands
// in the fast path's domain (Oblivious, no failures, no rollover), the
// result is additionally checked against runNaiveOblivious, an
// independent quadratic rescan specification that shares no eligibility
// tracking, event queue, or id relabeling with either kernel. The seed
// corpus lives in testdata/fuzz/FuzzKernelReplication.
func FuzzKernelReplication(f *testing.F) {
	f.Add([]byte{0xff, 0x0f}, uint8(0), uint16(100), uint16(400), uint8(0), false, uint64(1), uint64(2))
	f.Add([]byte{0xaa, 0x55, 0x33}, uint8(1), uint16(30), uint16(800), uint8(15), false, uint64(7), uint64(7))
	f.Add([]byte{0x01}, uint8(2), uint16(250), uint16(100), uint8(40), true, uint64(3), uint64(9))
	// Fast-path domain: oblivious policies at zero failure probability,
	// covering tiny and huge batch sizes and both seeds equal.
	f.Add([]byte{0x07, 0xff, 0xf0}, uint8(0), uint16(5), uint16(1599), uint8(0), false, uint64(11), uint64(11))
	f.Add([]byte{0xff, 0xff, 0xff, 0x0f}, uint8(4), uint16(299), uint16(1), uint8(0), false, uint64(21), uint64(4))
	// High bit set: composed tie-breaker chains from the ranker
	// registry (rotation and length from the remaining bits).
	f.Add([]byte{0xaa, 0x33}, uint8(0x80), uint16(40), uint16(200), uint8(0), false, uint64(5), uint64(17))
	f.Add([]byte{0xff, 0x0f, 0xf0}, uint8(0xe5), uint16(120), uint16(900), uint8(0), false, uint64(13), uint64(13))

	f.Fuzz(func(t *testing.T, edges []byte, polSel uint8, muBIT, muBS uint16, failPct uint8, rollover bool, seed1, seed2 uint64) {
		g := fuzzDag(edges)
		p := Params{
			// Clamp into the validated ranges; the shapes the paper
			// sweeps (Section 4.2) all fall inside these. The low bit of
			// failPct gates failures entirely so half the input space
			// lands in the fast path's no-failure domain.
			BatchInterarrival: 0.05 + float64(muBIT%300)/100,
			BatchSize:         0.5 + float64(muBS%1600)/100,
			JobTimeMean:       1.0,
			JobTimeStdDev:     0.1,
			FailureProb:       float64((failPct>>1)%80) / 100 * float64(failPct&1),
			RolloverWorkers:   rollover,
		}
		// Policy selection spans the whole factory grammar: the low
		// bits index the fixed names (every ranker family included),
		// and the high bit switches to a composed tie-breaker chain
		// drawn from the ranker registry — rotation and length come
		// from the remaining bits, so every component appears in every
		// chain position across the corpus and the fast path's
		// bit-identity is fuzzed for ad-hoc compositions too.
		var name string
		if polSel&0x80 != 0 {
			comps := rank.Components()
			length := 2 + int(polSel>>5&0x3) // 2..5 components, repeats allowed
			start := int(polSel) % len(comps)
			parts := make([]string, 0, length)
			for i := 0; i < length; i++ {
				parts = append(parts, comps[(start+i)%len(comps)])
			}
			name = strings.Join(parts, "+")
		} else {
			names := []string{"prio", "fifo", "random", "prio-maxjobs=2", "critpath", "heft", "graphene"}
			name = names[int(polSel)%len(names)]
		}
		factory, err := PolicyFactory(name, g)
		if err != nil {
			t.Fatal(err)
		}

		runner := NewRunner(g)
		slow := NewRunner(g)
		slow.st.noFast = true
		pooled := factory()
		slowPol := factory()
		for _, seed := range []uint64{seed1, seed2} {
			got := runner.Run(p, pooled, seed)
			want := Run(g, p, factory(), rng.New(seed))
			if got != want {
				t.Fatalf("seed %d: pooled kernel %+v, fresh run %+v", seed, got, want)
			}
			ordered := slow.Run(p, slowPol, seed)
			if got != ordered {
				t.Fatalf("seed %d: fast path %+v, ordered kernel %+v", seed, got, ordered)
			}
			if o, ok := pooled.(*Oblivious); ok && p.FailureProb == 0 && !p.RolloverWorkers {
				naive := runNaiveOblivious(g, p, o.order, rng.New(seed))
				if got != naive {
					t.Fatalf("seed %d: kernel %+v, naive rescan %+v", seed, got, naive)
				}
			}
		}
	})
}

// runNaiveOblivious is the executable specification the fast path is
// fuzzed against: a deliberately quadratic simulation of the oblivious
// regimen with no shared machinery — eligibility is a full rescan of
// every job's parents on every assignment, and pending completions sit
// in an unsorted slice filtered per window. It consumes randomness in
// the model's defined order (batch size, one job time per assignment
// in rank order, interarrival) and must be bit-identical to both
// kernels on the no-failure, no-rollover domain.
func runNaiveOblivious(g *dag.Frozen, p Params, order []int, src *rng.Source) Metrics {
	n := g.NumNodes()
	rank := make([]int, n)
	for r, v := range order {
		rank[v] = r
	}
	executed := make([]bool, n)
	assigned := make([]bool, n)
	type ev struct {
		at  float64
		job int
	}
	var pending []ev
	nextBatch := 0.0
	done := 0
	last := 0.0
	batches, stalls, requests := 0, 0, 0
	for done < n {
		allAssigned := true
		for v := 0; v < n; v++ {
			if !assigned[v] {
				allAssigned = false
				break
			}
		}
		kept := pending[:0]
		for _, e := range pending {
			if allAssigned || e.at <= nextBatch {
				executed[e.job] = true
				done++
				if e.at > last {
					last = e.at
				}
			} else {
				kept = append(kept, e)
			}
		}
		pending = kept
		if done == n {
			break
		}
		if allAssigned {
			continue
		}

		now := nextBatch
		size := batchSize(src, p.BatchSize)
		batches++
		requests += size
		served := 0
		for i := 0; i < size; i++ {
			best := -1
			for v := 0; v < n; v++ {
				if assigned[v] {
					continue
				}
				ready := true
				for _, u := range g.Parents(v) {
					if !executed[u] {
						ready = false
						break
					}
				}
				if ready && (best < 0 || rank[v] < rank[best]) {
					best = v
				}
			}
			if best < 0 {
				break
			}
			served++
			assigned[best] = true
			d := src.Normal(p.JobTimeMean, p.JobTimeStdDev)
			if d < 1e-3 {
				d = 1e-3
			}
			pending = append(pending, ev{at: now + d, job: best})
		}
		if served == 0 {
			stalls++
		}
		nextBatch = now + src.Exp(p.BatchInterarrival)
	}

	m := Metrics{ExecutionTime: last, Batches: batches, Requests: requests}
	if batches > 0 {
		m.StallProbability = float64(stalls) / float64(batches)
	}
	if requests > 0 {
		m.Utilization = float64(n) / float64(requests)
	}
	return m
}

// fuzzDag decodes an arbitrary byte string into a small dag: the first
// byte picks the node count (1..8), the remaining bits fill the
// strictly-upper-triangular adjacency matrix row by row, so every
// decoded graph is acyclic by construction and every small dag shape is
// reachable.
func fuzzDag(edges []byte) *dag.Frozen {
	n := 1
	if len(edges) > 0 {
		n = 1 + int(edges[0]%8)
		edges = edges[1:]
	}
	g := dag.NewWithCapacity(n)
	for v := 0; v < n; v++ {
		g.AddNode("j" + strconv.Itoa(v))
	}
	bit := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if bit/8 < len(edges) && edges[bit/8]&(1<<(bit%8)) != 0 {
				g.MustAddArc(u, v)
			}
			bit++
		}
	}
	return g.MustFreeze()
}
