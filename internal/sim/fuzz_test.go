package sim

import (
	"strconv"
	"testing"

	"repro/internal/dag"
	"repro/internal/rng"
)

// FuzzKernelReplication is the differential backstop for the pooled
// replication kernel: for an arbitrary small dag, parameter point,
// policy, and pair of seeds, Runner.Run must be bit-identical to the
// allocating sim.Run — including on the second replication, when the
// pooled buffers carry the previous run's high-water marks. The static
// noalloc proof (make lint) shows the kernel cannot allocate; this
// target shows the pooling it uses to get there never changes a
// result. The seed corpus lives in testdata/fuzz/FuzzKernelReplication.
func FuzzKernelReplication(f *testing.F) {
	f.Add([]byte{0xff, 0x0f}, uint8(0), uint16(100), uint16(400), uint8(0), false, uint64(1), uint64(2))
	f.Add([]byte{0xaa, 0x55, 0x33}, uint8(1), uint16(30), uint16(800), uint8(15), false, uint64(7), uint64(7))
	f.Add([]byte{0x01}, uint8(2), uint16(250), uint16(100), uint8(40), true, uint64(3), uint64(9))

	f.Fuzz(func(t *testing.T, edges []byte, polSel uint8, muBIT, muBS uint16, failPct uint8, rollover bool, seed1, seed2 uint64) {
		g := fuzzDag(edges)
		p := Params{
			// Clamp into the validated ranges; the shapes the paper
			// sweeps (Section 4.2) all fall inside these.
			BatchInterarrival: 0.05 + float64(muBIT%300)/100,
			BatchSize:         0.5 + float64(muBS%1600)/100,
			JobTimeMean:       1.0,
			JobTimeStdDev:     0.1,
			FailureProb:       float64(failPct%80) / 100,
			RolloverWorkers:   rollover,
		}
		names := []string{"prio", "fifo", "random", "prio-maxjobs=2"}
		factory, err := PolicyFactory(names[int(polSel)%len(names)], g)
		if err != nil {
			t.Fatal(err)
		}

		runner := NewRunner(g)
		pooled := factory()
		for _, seed := range []uint64{seed1, seed2} {
			got := runner.Run(p, pooled, seed)
			want := Run(g, p, factory(), rng.New(seed))
			if got != want {
				t.Fatalf("seed %d: pooled kernel %+v, fresh run %+v", seed, got, want)
			}
		}
	})
}

// fuzzDag decodes an arbitrary byte string into a small dag: the first
// byte picks the node count (1..8), the remaining bits fill the
// strictly-upper-triangular adjacency matrix row by row, so every
// decoded graph is acyclic by construction and every small dag shape is
// reachable.
func fuzzDag(edges []byte) *dag.Frozen {
	n := 1
	if len(edges) > 0 {
		n = 1 + int(edges[0]%8)
		edges = edges[1:]
	}
	g := dag.NewWithCapacity(n)
	for v := 0; v < n; v++ {
		g.AddNode("j" + strconv.Itoa(v))
	}
	bit := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if bit/8 < len(edges) && edges[bit/8]&(1<<(bit%8)) != 0 {
				g.MustAddArc(u, v)
			}
			bit++
		}
	}
	return g.MustFreeze()
}
