package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dag"
	"repro/internal/rng"
	"repro/internal/stats"
)

// ExperimentOptions configures the Section 4.2 measurement procedure.
type ExperimentOptions struct {
	// P is the number of samples in the empirical sampling
	// distribution; Q is the number of measurements averaged per
	// sample. The paper uses P = 300, Q = 300; the defaults are scaled
	// down for laptop runs and can be raised with flags.
	P, Q int
	// Confidence is the interval confidence in percent (95 in the
	// paper).
	Confidence float64
	// Seed makes the whole experiment reproducible.
	Seed uint64
	// Workers caps the number of parallel replications (default: number
	// of CPUs). Results are bit-identical for every Workers setting;
	// see engine.go for the contract.
	Workers int
	// Shard restricts a sweep to a deterministic subset of the grid so
	// several processes (or an interrupted one) can split a sweep and
	// later merge bit-identical results; the zero value runs the whole
	// grid. Like Workers, Shard never changes any computed row: each
	// point's seeds are derived from Seed alone.
	Shard Shard
}

// Shard names one slice of a sharded sweep: of the Count shards,
// this process computes the grid points whose index i satisfies
// i % Count == Index. The zero value means unsharded (one shard of
// one). Shard assignment is by position in the points slice, so every
// shard of a sweep must be launched with an identical grid.
type Shard struct {
	Index, Count int
}

// normalized maps the zero value to the whole grid and panics on an
// impossible shard, mirroring the engine's treatment of invalid Params.
func (s Shard) normalized() Shard {
	if s.Count == 0 && s.Index == 0 {
		return Shard{Index: 0, Count: 1}
	}
	if s.Count <= 0 || s.Index < 0 || s.Index >= s.Count {
		panic(fmt.Sprintf("sim: invalid shard %d/%d", s.Index, s.Count))
	}
	return s
}

// DefaultExperimentOptions returns laptop-scale defaults.
func DefaultExperimentOptions() ExperimentOptions {
	return ExperimentOptions{P: 40, Q: 40, Confidence: 95, Seed: 1, Workers: runtime.NumCPU()}
}

func (o ExperimentOptions) normalized() ExperimentOptions {
	d := DefaultExperimentOptions()
	if o.P <= 0 {
		o.P = d.P
	}
	if o.Q <= 0 {
		o.Q = d.Q
	}
	if o.Confidence <= 0 || o.Confidence >= 100 {
		o.Confidence = d.Confidence
	}
	if o.Workers <= 0 {
		o.Workers = d.Workers
	}
	o.Shard = o.Shard.normalized()
	return o
}

// PolicyMeasurements holds the raw and aggregated measurements of one
// policy at one parameter point.
type PolicyMeasurements struct {
	Name string
	// ExecTime, Stalling, Utilization are the empirical sampling
	// distributions (P values, each a Q-run average).
	ExecTime, Stalling, Utilization []float64
	// Summaries of the P sample means.
	ExecSummary, StallSummary, UtilSummary stats.Summary
}

// Comparison is the PRIO/FIFO comparison at one (mu_BIT, mu_BS) point:
// the three ratio confidence intervals plotted in Figures 6-9.
type Comparison struct {
	Params      Params
	A, B        PolicyMeasurements
	ExecTime    stats.RatioCI // E[T_A] / E[T_B]
	Stalling    stats.RatioCI
	Utilization stats.RatioCI
}

// assembleMeasurements folds the per-replication raw metrics into the
// empirical sampling distributions and their summaries. It is shared by
// the grid engine and the reference path so both aggregate identically.
func assembleMeasurements(name string, execT, stall, util []float64, opts ExperimentOptions) PolicyMeasurements {
	pm := PolicyMeasurements{
		Name:        name,
		ExecTime:    stats.SamplingDistribution(execT, opts.P, opts.Q),
		Stalling:    stats.SamplingDistribution(stall, opts.P, opts.Q),
		Utilization: stats.SamplingDistribution(util, opts.P, opts.Q),
	}
	pm.ExecSummary = stats.Summarize(pm.ExecTime)
	pm.StallSummary = stats.Summarize(pm.Stalling)
	pm.UtilSummary = stats.Summarize(pm.Utilization)
	return pm
}

// measureReference is the pre-engine measurement path: P·Q simulations
// of one policy at one point, distributed over a dedicated worker pool,
// one freshly allocated rng.Source per replication. It is retained as
// the executable specification of the seed-derivation contract — the
// differential tests pin CompareGrid's output to it bit-for-bit — and
// is not used by the production drivers.
func measureReference(g *dag.Frozen, p Params, pol func() Policy, opts ExperimentOptions, seedStream *rng.Source) PolicyMeasurements {
	total := opts.P * opts.Q
	seeds := make([]uint64, total)
	for i := range seeds {
		seeds[i] = seedStream.Uint64()
	}
	execT := make([]float64, total)
	stall := make([]float64, total)
	util := make([]float64, total)

	var wg sync.WaitGroup
	jobs := make(chan int)
	workers := opts.Workers
	if workers > total {
		workers = total
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			policy := pol()
			for i := range jobs {
				m := Run(g, p, policy, rng.New(seeds[i]))
				execT[i] = m.ExecutionTime
				stall[i] = m.StallProbability
				util[i] = m.Utilization
			}
		}()
	}
	for i := 0; i < total; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	return assembleMeasurements("", execT, stall, util, opts)
}

// compareReference is the pre-engine Compare: one point, each policy
// measured by measureReference in sequence. Differential tests compare
// it against the engine.
func compareReference(g *dag.Frozen, p Params, a, b func() Policy, opts ExperimentOptions) Comparison {
	opts = opts.normalized()
	if err := p.validate(); err != nil {
		panic(err)
	}
	// Independent deterministic seed streams per policy.
	base := rng.New(opts.Seed)
	streamA := base.Split()
	streamB := base.Split()

	ma := measureReference(g, p, a, opts, streamA)
	ma.Name = a().Name()
	mb := measureReference(g, p, b, opts, streamB)
	mb.Name = b().Name()

	return Comparison{
		Params:      p,
		A:           ma,
		B:           mb,
		ExecTime:    stats.RatioInterval(ma.ExecTime, mb.ExecTime, opts.Confidence),
		Stalling:    stats.RatioInterval(ma.Stalling, mb.Stalling, opts.Confidence),
		Utilization: stats.RatioInterval(ma.Utilization, mb.Utilization, opts.Confidence),
	}
}

// Compare measures two policies on g at the given parameters and builds
// the three ratio confidence intervals (A over B). The policies are
// constructed per worker via the factories, since Policy implementations
// are stateful and not safe for concurrent use. Compare is CompareGrid
// on a single point.
func Compare(g *dag.Frozen, p Params, a, b func() Policy, opts ExperimentOptions) Comparison {
	return CompareGrid(g, []Params{p}, a, b, opts, nil)[0]
}

// ComparePRIOFIFO is the paper's headline comparison at one parameter
// point: the PRIO schedule (computed once) against FIFO.
func ComparePRIOFIFO(g *dag.Frozen, p Params, opts ExperimentOptions) Comparison {
	prio := NewPRIO(g) // compute the schedule once; clone per worker
	order := prio.StaticOrder()
	return Compare(g, p,
		func() Policy { return NewOblivious("PRIO", order) },
		func() Policy { return NewFIFO() },
		opts)
}

// GridPoint is one cell of the Figures 6-9 sweep.
type GridPoint struct {
	MuBIT, MuBS float64
	Comparison
}

// Sweep runs ComparePRIOFIFO over the cross product of the given
// mu_BIT and mu_BS values, in row-major order (matching the figures:
// seven mu_BIT sections, mu_BS rising within each). The whole grid is
// one flat parallel workload (see CompareGrid); progress still fires
// once per point, in row-major order, as points complete.
func Sweep(g *dag.Frozen, muBITs, muBSs []float64, opts ExperimentOptions, progress func(GridPoint)) []GridPoint {
	prio := NewPRIO(g)
	order := prio.StaticOrder()

	points := make([]Params, 0, len(muBITs)*len(muBSs))
	for _, bit := range muBITs {
		for _, bs := range muBSs {
			points = append(points, DefaultParams(bit, bs))
		}
	}
	out := make([]GridPoint, len(points))
	at := func(i int, c Comparison) GridPoint {
		return GridPoint{MuBIT: points[i].BatchInterarrival, MuBS: points[i].BatchSize, Comparison: c}
	}
	var cb func(int, Comparison)
	if progress != nil {
		cb = func(i int, c Comparison) { progress(at(i, c)) }
	}
	comps := CompareGrid(g, points,
		func() Policy { return NewOblivious("PRIO", order) },
		func() Policy { return NewFIFO() },
		opts, cb)
	for i, c := range comps {
		out[i] = at(i, c)
	}
	return out
}

// FormatRow renders a grid point as one table row (used by cmd/simgrid
// and the benchmarks).
func (gp GridPoint) FormatRow() string {
	f := func(ci stats.RatioCI) string {
		if !ci.Valid {
			return "      (n/a)      "
		}
		return fmt.Sprintf("%5.3f[%5.3f,%5.3f]", ci.Median, ci.Lo, ci.Hi)
	}
	return fmt.Sprintf("muBIT=%8.3g muBS=%7.0f  time=%s  stall=%s  util=%s",
		gp.MuBIT, gp.MuBS, f(gp.ExecTime), f(gp.Stalling), f(gp.Utilization))
}
