// Checkpoint manifests for sharded, resumable grid sweeps. A manifest
// is a JSONL file: one header line naming the sweep it belongs to, then
// one line per completed grid point carrying the point's raw sampling
// distributions (PointSample) as hex floats — the exact bits, so a
// Comparison rebuilt from a manifest row is bit-identical to the one
// the interrupted run would have produced (comparisonFromSample).
//
// Integrity model: the header embeds a fingerprint of everything that
// determines the numbers — dag topology, the full points list, P, Q,
// Seed, Confidence, and both policy names — but *not* Workers or Shard,
// which by the engine's determinism contract cannot affect any result.
// A manifest written for a different sweep is rejected up front rather
// than silently merged. Each row additionally carries its own
// fingerprint (point index + parameters + seed base + every sample
// value) so a row from a reordered or edited file cannot masquerade as
// another point, and a damaged payload cannot resume silently.
//
// Crash model: rows are appended with a single write each, so an
// interrupted sweep leaves at most one torn line, and only at the tail.
// On resume a trailing line without its newline is discarded and the
// file truncated back to the last complete row; a malformed or
// hash-mismatched line anywhere else is corruption and refuses the
// resume. Several shards may extend one manifest sequentially (shard
// 1 writes, shard 2 resumes and appends) — rows are keyed by point
// index, not write order.
package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"strconv"

	"repro/internal/dag"
)

// manifestVersion is bumped when the file format changes
// incompatibly; a version mismatch rejects the resume.
const manifestVersion = 1

type manifestHeader struct {
	Version int    `json:"version"`
	Grid    string `json:"grid"`
	P       int    `json:"p"`
	Q       int    `json:"q"`
	Seed    uint64 `json:"seed"`
	Points  int    `json:"points"`
}

type manifestRow struct {
	Index  int      `json:"index"`
	Row    string   `json:"row"`
	AExec  []string `json:"aExec"`
	AStall []string `json:"aStall"`
	AUtil  []string `json:"aUtil"`
	BExec  []string `json:"bExec"`
	BStall []string `json:"bStall"`
	BUtil  []string `json:"bUtil"`
}

// GridManifest is an open checkpoint file. Obtain one with
// OpenManifest, feed Have to CompareGridResume, pass Append as its save
// callback, and Close when the sweep ends. Append is not safe for
// concurrent use; the engine serializes save calls under its lock.
type GridManifest struct {
	path string
	f    *os.File
	hash uint64
	opts ExperimentOptions
	have map[int]PointSample
	row  []byte // reused append buffer
}

// OpenManifest creates (resume=false) or reopens (resume=true) the
// checkpoint manifest at path for the given sweep. With resume set, an
// existing file is validated against the sweep's fingerprint, its
// completed rows are loaded, and a torn trailing line (a write cut off
// by the interruption) is truncated away; a missing or empty file
// simply starts fresh. Without resume any existing file is replaced.
func OpenManifest(path string, g *dag.Frozen, points []Params, aName, bName string, opts ExperimentOptions, resume bool) (*GridManifest, error) {
	opts = opts.normalized()
	m := &GridManifest{
		path: path,
		hash: gridFingerprint(g, points, aName, bName, opts),
		opts: opts,
		have: make(map[int]PointSample),
	}
	flags := os.O_RDWR | os.O_CREATE
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	m.f = f
	if err := m.init(points); err != nil {
		if cerr := f.Close(); cerr != nil {
			err = fmt.Errorf("%w (and closing the file failed: %v)", err, cerr)
		}
		return nil, err
	}
	return m, nil
}

// init validates and loads the just-opened file, writing a fresh
// header when it is empty and truncating a torn tail otherwise.
func (m *GridManifest) init(points []Params) error {
	data, err := os.ReadFile(m.path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return m.writeHeader(len(points))
	}
	valid, err := m.load(data, points)
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", m.path, err)
	}
	if err := m.f.Truncate(int64(valid)); err != nil {
		return err
	}
	if _, err := m.f.Seek(int64(valid), 0); err != nil {
		return err
	}
	if valid == 0 {
		return m.writeHeader(len(points))
	}
	return nil
}

// load parses and validates the manifest bytes, filling m.have, and
// returns the number of leading bytes that form complete valid lines.
// A torn trailing line is tolerated (its offset becomes the valid
// length); anything else malformed is an error.
func (m *GridManifest) load(data []byte, points []Params) (int, error) {
	valid := 0
	line := 0
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// Torn trailing write: drop it. (Only legitimate at the
			// tail — any full line below already consumed its newline.)
			break
		}
		raw := data[:nl]
		data = data[nl+1:]
		line++
		if line == 1 {
			var h manifestHeader
			if err := json.Unmarshal(raw, &h); err != nil {
				return 0, fmt.Errorf("line 1: malformed header: %w", err)
			}
			if h.Version != manifestVersion {
				return 0, fmt.Errorf("manifest version %d, this build writes %d", h.Version, manifestVersion)
			}
			if h.Grid != fmt.Sprintf("%016x", m.hash) || h.P != m.opts.P || h.Q != m.opts.Q || h.Seed != m.opts.Seed || h.Points != len(points) {
				return 0, fmt.Errorf("checkpoint belongs to a different sweep (grid %s, P=%d Q=%d seed=%d points=%d; this sweep is grid %016x, P=%d Q=%d seed=%d points=%d)",
					h.Grid, h.P, h.Q, h.Seed, h.Points, m.hash, m.opts.P, m.opts.Q, m.opts.Seed, len(points))
			}
		} else {
			var r manifestRow
			if err := json.Unmarshal(raw, &r); err != nil {
				return 0, fmt.Errorf("line %d: malformed row: %w", line, err)
			}
			if r.Index < 0 || r.Index >= len(points) {
				return 0, fmt.Errorf("line %d: point index %d out of range [0,%d)", line, r.Index, len(points))
			}
			if _, dup := m.have[r.Index]; dup {
				return 0, fmt.Errorf("line %d: duplicate row for point %d", line, r.Index)
			}
			s, err := decodeSample(&r, m.opts.P)
			if err != nil {
				return 0, fmt.Errorf("line %d: %w", line, err)
			}
			if want := fmt.Sprintf("%016x", rowFingerprint(r.Index, points[r.Index], m.opts, s)); r.Row != want {
				return 0, fmt.Errorf("line %d: row fingerprint %s does not match point %d (want %s)", line, r.Row, r.Index, want)
			}
			m.have[r.Index] = s
		}
		valid += nl + 1
	}
	return valid, nil
}

// Have returns the completed points recovered from the file, keyed by
// grid index — the have argument of CompareGridResume.
func (m *GridManifest) Have() map[int]PointSample { return m.have }

// Append persists one newly completed point. It is the save callback
// of CompareGridResume: each row is one write, flushed to the OS before
// returning, so an interruption costs at most the row being written.
func (m *GridManifest) Append(i int, p Params, s PointSample) error {
	b := m.row[:0]
	b = append(b, `{"index":`...)
	b = strconv.AppendInt(b, int64(i), 10)
	b = append(b, `,"row":"`...)
	b = append(b, fmt.Sprintf("%016x", rowFingerprint(i, p, m.opts, s))...)
	b = append(b, '"')
	for _, part := range []struct {
		key  string
		vals []float64
	}{
		{"aExec", s.ExecTime[0]}, {"aStall", s.Stalling[0]}, {"aUtil", s.Utilization[0]},
		{"bExec", s.ExecTime[1]}, {"bStall", s.Stalling[1]}, {"bUtil", s.Utilization[1]},
	} {
		b = append(b, `,"`...)
		b = append(b, part.key...)
		b = append(b, `":[`...)
		for j, v := range part.vals {
			if j > 0 {
				b = append(b, ',')
			}
			b = append(b, '"')
			b = strconv.AppendFloat(b, v, 'x', -1, 64)
			b = append(b, '"')
		}
		b = append(b, ']')
	}
	b = append(b, '}', '\n')
	m.row = b
	_, err := m.f.Write(b)
	return err
}

// Close closes the underlying file.
func (m *GridManifest) Close() error { return m.f.Close() }

func (m *GridManifest) writeHeader(points int) error {
	h := manifestHeader{
		Version: manifestVersion,
		Grid:    fmt.Sprintf("%016x", m.hash),
		P:       m.opts.P,
		Q:       m.opts.Q,
		Seed:    m.opts.Seed,
		Points:  points,
	}
	b, err := json.Marshal(h)
	if err != nil {
		return err
	}
	_, err = m.f.Write(append(b, '\n'))
	return err
}

// decodeSample parses a row's six hex-float arrays, insisting each
// holds exactly P samples per side.
func decodeSample(r *manifestRow, p int) (PointSample, error) {
	var s PointSample
	for _, part := range []struct {
		key string
		raw []string
		dst *[]float64
	}{
		{"aExec", r.AExec, &s.ExecTime[0]}, {"aStall", r.AStall, &s.Stalling[0]}, {"aUtil", r.AUtil, &s.Utilization[0]},
		{"bExec", r.BExec, &s.ExecTime[1]}, {"bStall", r.BStall, &s.Stalling[1]}, {"bUtil", r.BUtil, &s.Utilization[1]},
	} {
		if len(part.raw) != p {
			return s, fmt.Errorf("%s has %d samples, want P=%d", part.key, len(part.raw), p)
		}
		vals := make([]float64, len(part.raw))
		for j, hx := range part.raw {
			v, err := strconv.ParseFloat(hx, 64)
			if err != nil {
				return s, fmt.Errorf("%s[%d]: %w", part.key, j, err)
			}
			vals[j] = v
		}
		*part.dst = vals
	}
	return s, nil
}

// gridFingerprint hashes everything that determines a sweep's numbers:
// the dag's topology, every parameter point, the sampling plan (P, Q,
// Seed, Confidence), and the two policy names. Workers and Shard are
// deliberately excluded — the engine guarantees they cannot change a
// result, and a checkpoint must be shareable across shard launches.
func gridFingerprint(g *dag.Frozen, points []Params, aName, bName string, opts ExperimentOptions) uint64 {
	h := fnv.New64a()
	var w [8]byte
	u64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			w[i] = byte(v >> (8 * i))
		}
		h.Write(w[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u64(uint64(g.NumNodes()))
	cs, ch := g.ChildCSR()
	for _, v := range cs {
		u64(uint64(uint32(v)))
	}
	for _, v := range ch {
		u64(uint64(uint32(v)))
	}
	u64(uint64(len(points)))
	for _, p := range points {
		f64(p.BatchInterarrival)
		f64(p.BatchSize)
		f64(p.JobTimeMean)
		f64(p.JobTimeStdDev)
		f64(p.FailureProb)
		if p.RolloverWorkers {
			u64(1)
		} else {
			u64(0)
		}
		u64(uint64(len(p.JobMeans)))
		for _, m := range p.JobMeans {
			f64(m)
		}
	}
	u64(uint64(opts.P))
	u64(uint64(opts.Q))
	u64(opts.Seed)
	f64(opts.Confidence)
	h.Write([]byte(aName))
	h.Write([]byte{0})
	h.Write([]byte(bName))
	return h.Sum64()
}

// rowFingerprint ties a manifest row to one specific grid point — its
// index, its parameters, the sweep's seed base and sampling plan — and
// to its payload: every sample value is hashed, so a flipped bit in a
// stored distribution is caught on load instead of resuming silently.
func rowFingerprint(i int, p Params, opts ExperimentOptions, s PointSample) uint64 {
	h := fnv.New64a()
	var w [8]byte
	u64 := func(v uint64) {
		for j := 0; j < 8; j++ {
			w[j] = byte(v >> (8 * j))
		}
		h.Write(w[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u64(uint64(i))
	f64(p.BatchInterarrival)
	f64(p.BatchSize)
	f64(p.JobTimeMean)
	f64(p.JobTimeStdDev)
	f64(p.FailureProb)
	if p.RolloverWorkers {
		u64(1)
	} else {
		u64(0)
	}
	u64(opts.Seed)
	u64(uint64(opts.P))
	u64(uint64(opts.Q))
	for _, side := range [][]float64{
		s.ExecTime[0], s.Stalling[0], s.Utilization[0],
		s.ExecTime[1], s.Stalling[1], s.Utilization[1],
	} {
		for _, v := range side {
			f64(v)
		}
	}
	return h.Sum64()
}
