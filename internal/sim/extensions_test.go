package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/rng"
	"repro/internal/workloads"
)

func TestRandomPolicyAssignsAllJobs(t *testing.T) {
	g := workloads.AIRSN(10)
	m := Run(g, DefaultParams(1, 4), NewRandom(), rng.New(3))
	if m.ExecutionTime <= 0 {
		t.Fatal("random run did not finish")
	}
	// determinism with shared source
	m2 := Run(g, DefaultParams(1, 4), NewRandom(), rng.New(3))
	if m != m2 {
		t.Fatal("random policy not reproducible under equal seeds")
	}
}

func TestRandomPolicyDrainsEligible(t *testing.T) {
	r := NewRandom()
	r.Start(independentDag(5), rng.New(1))
	for v := 0; v < 5; v++ {
		r.Eligible(v)
	}
	seen := map[int]bool{}
	for i := 0; i < 5; i++ {
		v, ok := r.Next()
		if !ok || seen[v] {
			t.Fatalf("draw %d: v=%d ok=%v seen=%v", i, v, ok, seen)
		}
		seen[v] = true
	}
	if _, ok := r.Next(); ok {
		t.Fatal("empty random policy returned a job")
	}
}

func TestCriticalPathOrdersByHeight(t *testing.T) {
	// chain a>b>c plus isolated d: heights a=2,b=1,c=0,d=0.
	g := build3chainPlusIso(t)
	cp := NewCriticalPath(g)
	cp.Start(g, rng.New(1))
	for v := 0; v < g.NumNodes(); v++ {
		cp.Eligible(v) // pretend all eligible to observe pure ordering
	}
	first, _ := cp.Next()
	if g.Name(first) != "a" {
		t.Fatalf("critical path first = %s, want a", g.Name(first))
	}
}

func build3chainPlusIso(t *testing.T) *dag.Frozen {
	t.Helper()
	gb := dag.New()
	a, b, c := gb.AddNode("a"), gb.AddNode("b"), gb.AddNode("c")
	gb.AddNode("d")
	gb.MustAddArc(a, b)
	gb.MustAddArc(b, c)
	return gb.MustFreeze()
}

func TestCriticalPathRunsToCompletion(t *testing.T) {
	g := workloads.Inspiral(10)
	m := Run(g, DefaultParams(1, 8), NewCriticalPath(g), rng.New(5))
	if m.ExecutionTime <= 0 {
		t.Fatal("critical path run did not finish")
	}
}

func TestTwoLevelUnthrottledEqualsPRIO(t *testing.T) {
	g := workloads.AIRSN(20)
	order := core.Prioritize(g).Order
	p := DefaultParams(1, 8)
	for seed := uint64(1); seed <= 5; seed++ {
		a := Run(g, p, NewOblivious("PRIO", order), rng.New(seed))
		b := Run(g, p, NewTwoLevel(order, 0), rng.New(seed))
		if a != b {
			t.Fatalf("seed %d: unthrottled two-level differs from PRIO: %+v vs %+v", seed, a, b)
		}
	}
}

func TestTwoLevelMaxJobs1EqualsFIFO(t *testing.T) {
	// With a Condor queue of one, jobs leave in exactly the order they
	// were forwarded, which is eligibility order: FIFO.
	g := workloads.AIRSN(20)
	order := core.Prioritize(g).Order
	p := DefaultParams(1, 8)
	for seed := uint64(1); seed <= 5; seed++ {
		a := Run(g, p, NewFIFO(), rng.New(seed))
		b := Run(g, p, NewTwoLevel(order, 1), rng.New(seed))
		if a != b {
			t.Fatalf("seed %d: maxjobs=1 two-level differs from FIFO: %+v vs %+v", seed, a, b)
		}
	}
}

func TestTwoLevelThrottleDegradesPRIO(t *testing.T) {
	// Section 3.2: "the -maxjobs parameter ... should not be used". A
	// small throttle must lose a large share of PRIO's advantage on the
	// bottleneck-heavy AIRSN dag.
	g := workloads.AIRSN(60)
	order := core.Prioritize(g).Order
	opts := ExperimentOptions{P: 12, Q: 12, Seed: 3}
	p := DefaultParams(1, 8)

	pure := Compare(g, p,
		func() Policy { return NewOblivious("PRIO", order) },
		func() Policy { return NewFIFO() }, opts)
	throttled := Compare(g, p,
		func() Policy { return NewTwoLevel(order, 4) },
		func() Policy { return NewFIFO() }, opts)

	if !pure.ExecTime.Valid || !throttled.ExecTime.Valid {
		t.Fatal("missing CIs")
	}
	if pure.ExecTime.Median >= 1 {
		t.Fatalf("premise broken: pure PRIO ratio %v", pure.ExecTime.Median)
	}
	gainPure := 1 - pure.ExecTime.Median
	gainThrottled := 1 - throttled.ExecTime.Median
	if gainThrottled > 0.5*gainPure {
		t.Fatalf("throttle kept %.0f%% vs pure %.0f%% gain; expected the throttle to destroy most of it",
			gainThrottled*100, gainPure*100)
	}
}

func TestTwoLevelWrongSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tl := NewTwoLevel([]int{0}, 2)
	tl.Start(independentDag(2), rng.New(1))
}

func TestHeterogeneousJobMeans(t *testing.T) {
	// Per-job means must shift the execution time accordingly: a chain
	// of 10 jobs with mean 2 each takes ~20.
	g := chainDag(10)
	p := DefaultParams(0.001, 4)
	p.JobMeans = make([]float64, 10)
	for i := range p.JobMeans {
		p.JobMeans[i] = 2
	}
	var acc float64
	for i := 0; i < 20; i++ {
		acc += Run(g, p, NewFIFO(), rng.New(uint64(i))).ExecutionTime
	}
	mean := acc / 20
	// 10 sequential jobs at mean 2 each: ~20 (the homogeneous default
	// would give ~10, so this checks JobMeans is honoured).
	if mean < 19 || mean > 22 {
		t.Fatalf("heterogeneous chain mean = %v, want ~20", mean)
	}
}

// TestPRIOAdvantageSurvivesHeterogeneity relaxes the paper's equal-job-
// times assumption (its stated future work): with job means spread
// uniformly in [0.5, 1.5], PRIO should still beat FIFO at the headline
// point.
func TestPRIOAdvantageSurvivesHeterogeneity(t *testing.T) {
	g := workloads.AIRSN(60)
	p := DefaultParams(1, 8)
	r := rng.New(99)
	p.JobMeans = make([]float64, g.NumNodes())
	for i := range p.JobMeans {
		p.JobMeans[i] = 0.5 + r.Float64()
	}
	order := core.Prioritize(g).Order
	opts := ExperimentOptions{P: 12, Q: 12, Seed: 4}
	c := Compare(g, p,
		func() Policy { return NewOblivious("PRIO", order) },
		func() Policy { return NewFIFO() }, opts)
	if !c.ExecTime.Valid || c.ExecTime.Median >= 1 {
		t.Fatalf("PRIO advantage lost under heterogeneity: %+v", c.ExecTime)
	}
}
