// The discrete-event core of the Section 4.1 stochastic grid model.
// See doc.go for the package overview.

package sim

import (
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/rng"
)

// Params configures the stochastic system of Section 4.1.
type Params struct {
	// BatchInterarrival is mu_BIT, the mean time between request
	// batches (exponential).
	BatchInterarrival float64
	// BatchSize is mu_BS, the mean number of worker requests per batch
	// (exponential, discretized to max(1, round(x))).
	BatchSize float64
	// JobTimeMean and JobTimeStdDev parameterize the normal job running
	// time; the paper uses 1.0 and 0.1.
	JobTimeMean   float64
	JobTimeStdDev float64
	// JobMeans optionally overrides the mean running time per job
	// (indexed by node), modelling heterogeneous jobs — the relaxation
	// of the paper's equal-job-times assumption flagged as future work.
	// Empty means every job uses JobTimeMean.
	JobMeans []float64
	// RolloverWorkers flips the paper's "workers whose requests are not
	// filled are not rolled over" assumption: when true, unfilled
	// requests wait at the server and are handed the next job the
	// moment it becomes eligible. The paper argues such workers would
	// be intercepted by other computations; this switch quantifies what
	// that assumption costs.
	RolloverWorkers bool
	// FailureProb is the probability that an assigned job fails instead
	// of returning a result (a worker crashing or walking away with the
	// work, the grid unpredictability the paper's introduction
	// motivates; DAGMan's RETRY handles this in production). A failed
	// job becomes eligible again and must be reassigned. Zero, the
	// paper's model, means jobs always succeed.
	FailureProb float64
}

// DefaultParams returns the paper's job-time distribution with the given
// batch parameters.
func DefaultParams(muBIT, muBS float64) Params {
	return Params{
		BatchInterarrival: muBIT,
		BatchSize:         muBS,
		JobTimeMean:       1.0,
		JobTimeStdDev:     0.1,
	}
}

func (p Params) validate() error {
	if p.BatchInterarrival <= 0 {
		return fmt.Errorf("sim: BatchInterarrival %v <= 0", p.BatchInterarrival)
	}
	if p.BatchSize <= 0 {
		return fmt.Errorf("sim: BatchSize %v <= 0", p.BatchSize)
	}
	if p.JobTimeMean <= 0 {
		return fmt.Errorf("sim: JobTimeMean %v <= 0", p.JobTimeMean)
	}
	if p.JobTimeStdDev < 0 {
		return fmt.Errorf("sim: JobTimeStdDev %v < 0", p.JobTimeStdDev)
	}
	if p.FailureProb < 0 || p.FailureProb >= 1 {
		return fmt.Errorf("sim: FailureProb %v outside [0,1)", p.FailureProb)
	}
	return nil
}

// Policy dispenses eligible jobs to workers. Implementations are
// stateful per run and must be reset with Start.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Start resets the policy for a fresh run on g. src is the run's
	// random source; randomized policies draw from it so that equal run
	// seeds give identical runs.
	Start(g *dag.Frozen, src *rng.Source)
	// Eligible notifies the policy that job v became eligible.
	Eligible(v int)
	// Next returns the next job to assign and true, or false when no
	// eligible job is unassigned. A returned job is considered assigned.
	Next() (int, bool)
}

// Metrics are the per-run measurements of Section 4.1.
type Metrics struct {
	// ExecutionTime is the completion time of the last job.
	ExecutionTime float64
	// StallProbability is the fraction of batches that stalled: among
	// batches arriving while at least one job was still unexecuted and
	// unassigned, those that found no assignable job.
	StallProbability float64
	// Utilization is jobs(G) / total requests arriving up to and
	// including the batch at which the last job was assigned.
	Utilization float64
	// Batches is the number of batches that arrived until the last job
	// was assigned.
	Batches int
	// Requests is the total number of worker requests in those batches.
	Requests int
}

// Run simulates one execution of g under the given policy and returns
// the metrics. The source provides all randomness, so equal seeds give
// identical runs. Run allocates fresh event state per call; callers
// replicating in a loop should use a Runner (see kernel.go), which is
// allocation-free in steady state.
func Run(g *dag.Frozen, p Params, pol Policy, src *rng.Source) Metrics {
	var st runState
	return st.run(g, p, pol, src, nil)
}

// batchSize draws the discretized exponential batch size.
func batchSize(src *rng.Source, mean float64) int {
	x := src.Exp(mean)
	s := int(math.Round(x))
	if s < 1 {
		s = 1
	}
	return s
}
