// The order-free fast path of the replication kernel. The sort-merge
// eventQueue in kernel.go exists to pop completions in exact global
// time order, because order-sensitive policies (FIFO's eligibility
// queue, Random's index draws, TwoLevel's DAGMan queue) and the
// failure/rollover branches consume randomness or build state in pop
// order. For the paper's headline policy that machinery is pure
// overhead: an Oblivious policy is a *set* — Next pops the minimum
// rank of the eligible set, a pure function of the set's contents — so
// between two batch arrivals the order in which completions are
// processed is unobservable. Profiling the SDSS kernel shows the burst
// sort alone is ~40% of a replication; this file removes it.
//
// runFast exploits the order freedom three ways, each differential-
// tested bit-identical to the ordered path (fuzz_test.go compares it
// against both the forced-slow kernel and an independent naive-rescan
// reference; the engine goldens pin it to the pre-refactor driver):
//
//   - batched event drains: all completions in the window (prevBatch,
//     nextBatch] are processed in one pass, in bucket order rather than
//     time order. Only their *set* matters: the running maximum
//     reproduces lastCompletion (windows are disjoint in time, so the
//     global maximum is popped in the final window either way), and the
//     eligible set after the window is order-independent.
//   - incremental eligibility straight into bitset words: the
//     completion→children walk decrements fused {remaining, rank}
//     records and sets the rank bit in a bitset.MinSet directly — no
//     interface dispatch per child, no per-policy indirection — and
//     assignment pops ranks via MinSet.PopMin's word-level
//     trailing-zero scan from its cached minimum word index.
//   - cache-conscious layout: the kernel runs in a topo-relabeled id
//     space. The CSR arc arena and every per-node array (remaining,
//     rank, initial indegree) are ordered by the frozen topological
//     order, so the child walk of a just-completed node touches a
//     contiguous region instead of striding the original id space, and
//     remaining+rank share one 8-byte record — one cache line serves
//     both the decrement and the eligibility insert.
//
// Pending completions live in a bucket calendar (a single-level timing
// wheel): one flat event arena pre-sized to the job count (a job is
// assigned at most once on this path — no failures — so the arena
// cannot overflow) threaded into fastBuckets intrusive lists by
// truncated time. A drain visits only the buckets the window covers;
// the one bucket straddling the window boundary is partially drained
// by comparison and its survivors relinked. Bucket indexing uses
// int(t*invW), and IEEE multiplication by a positive constant is
// monotone, so t <= T implies bucket(t) <= bucket(T): the boundary
// bucket is always the last one visited and no event <= T can hide in
// a later bucket. Events past the wheel's horizon (a job time more
// than ~8 sigma above the mean) chain into an overflow list guarded by
// a running minimum; it is empty in any realistic replication.
package sim

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/dag"
	"repro/internal/rng"
)

// fastBuckets is the wheel size (a power of two). The wheel spans
// 2*(JobTimeMean+8*JobTimeStdDev), so at the paper's N(1, 0.1) job
// times one bucket covers ~3.5ms of simulated time and a burst of 8192
// assignments spreads across ~230 buckets.
const fastBuckets = 1024

// fastEvent is one pending completion in the calendar's arena: the
// completion time, the topo-relabeled job id, and the arena index of
// the next event in the same bucket (-1 ends the chain).
type fastEvent struct {
	at   float64
	job  int32
	next int32
}

// fastKernel is the pooled state of the order-free path, owned by a
// runState and rebuilt only when the policy instance (and with it the
// total order) changes. All buffers are pre-sized from the dag at
// build time — the event arena to the exact job count — so steady
// state performs zero heap allocations and zero buffer growth.
//
// rem and rank are deliberately separate arrays, not one fused record:
// the completion walk decrements rem once per arc but reads rank only
// once per node ever (when the last parent finishes), so splitting
// halves the hot working set the child walk strides through.
type fastKernel struct {
	owner *Oblivious // cache key: rebuilt when the policy changes
	g     *dag.Frozen

	// Topo-relabeled topology: node i is the i-th node of g.Topo(), so
	// sources are exactly the ids [0, nSources) and a completion's
	// children cluster just after it in id space.
	childStart []int32
	children   []int32
	initRem    []int32
	rem        []int32 // remaining unexecuted parents
	rank       []int32 // position under the policy's total order
	jobOfRank  []int32 // rank -> topo-relabeled id
	nSources   int

	elig bitset.MinSet

	// Bucket calendar. heads is a fixed-size array — not a slice — so
	// that masked bucket indexing (vi & (fastBuckets-1), plus the
	// constant overflow slot) is provably in-bounds and the hot drain
	// and insert loops compile without bounds checks.
	events  []fastEvent
	heads   [fastBuckets + 1]int32 // fastBuckets ring slots + 1 overflow slot
	invW    float64                // buckets per unit simulated time
	baseVi  int                    // wheel base: all live ring events are in [baseVi, baseVi+fastBuckets)
	minVi   int                    // lowest bucket that may hold a live ring event
	live    int                    // events in the ring
	overCnt int                    // events in the overflow chain
	overMin float64                // minimum time in the overflow chain
	// occ summarizes which ring slots are non-empty, one bit per
	// bucket, so a drain jumps empty ranges by trailing-zero scans
	// instead of probing heads bucket by bucket — at short batch
	// interarrivals most windows cover hundreds of buckets holding a
	// handful of events.
	occ [fastBuckets / 64]uint64
	// maxIns is the latest completion time ever scheduled. On this path
	// every scheduled event completes (there are no failures), and drain
	// windows partition time in increasing order, so the ordered
	// kernel's lastCompletion — the time of the final pop — is exactly
	// the maximum insert time. Tracking it here removes the per-event
	// max comparison from the drain loops.
	maxIns float64
}

// fastPathOK reports whether the order-free path may run: the policy
// must have set semantics and the run must not branch on pop order
// (failures draw randomness per pop; rollover assigns — and therefore
// draws job times — at completion times; an observer sees pop order
// and original ids; per-job means are indexed in the original space).
//
// Admission is by capability, not concrete type: any policy
// implementing staticRank — in practice anything embedding *Oblivious,
// which promotes both methods — rides the fast kernel, so new
// ranker-backed families (and wrappers adding Name-only behaviour) are
// admitted without touching this gate. The kernel runs on the
// fastCore() *Oblivious, which carries the same total order the
// wrapper would replay.
func fastPathOK(p Params, pol Policy, obs Observer) (*Oblivious, bool) {
	sr, ok := pol.(staticRank)
	if !ok || obs != nil || p.FailureProb != 0 || p.RolloverWorkers || len(p.JobMeans) != 0 {
		return nil, false
	}
	return sr.fastCore(), true
}

// rankHook is the CI anti-vacuousness seam for the devirt proof on
// runFast: a mutable package-level interface variable whose dynamic
// type the compiler cannot pin (swapRankHook below keeps it
// unprovable, mirroring the devirtclean fixture's Churn). CI's
// injection probe seds runFast's INJECT marker into `sr = rankHook`,
// which must turn `make lint`'s devirt gate red — proving the gate
// still distinguishes the pinned local from an arbitrary interface
// call. Production code never reads it.
var rankHook staticRank = &Oblivious{}

// swapRankHook makes rankHook's dynamic type depend on a call the
// compiler cannot see through, so the injected call above can never be
// accidentally devirtualized into a passing build.
func swapRankHook(sr staticRank) { rankHook = sr }

// build derives the topo-relabeled topology and rank tables for (g, o),
// reusing every buffer whose size still fits. Rebuilding for a policy
// change on the same dag touches no allocator.
func (k *fastKernel) build(g *dag.Frozen, o *Oblivious, order []int) {
	n := g.NumNodes()
	if len(order) != n {
		panic(fmt.Sprintf("sim: order covers %d jobs, dag has %d", len(order), n))
	}
	k.owner, k.g = o, g
	topo, pos := g.Topo(), g.TopoPositions()
	cs, ch := g.ChildCSR()
	m := int(cs[n])
	if len(k.childStart) != n+1 {
		k.childStart = make([]int32, n+1)
	}
	if len(k.children) != m {
		k.children = make([]int32, m)
	}
	if len(k.initRem) != n {
		k.initRem = make([]int32, n)
	}
	if len(k.rem) != n {
		k.rem = make([]int32, n)
	}
	if len(k.rank) != n {
		k.rank = make([]int32, n)
	}
	if len(k.jobOfRank) != n {
		k.jobOfRank = make([]int32, n)
	}
	w := int32(0)
	for i, v := range topo {
		k.childStart[i] = w
		for ci := cs[v]; ci < cs[v+1]; ci++ {
			k.children[w] = pos[ch[ci]]
			w++
		}
		k.initRem[i] = int32(g.InDegree(int(v)))
	}
	k.childStart[n] = w
	for r, v := range order {
		j := pos[v]
		k.jobOfRank[r] = j
		k.rank[j] = int32(r)
	}
	k.nSources = len(g.Sources())
	if cap(k.events) < n {
		k.events = make([]fastEvent, 0, n)
	}
}

// start resets the kernel for one replication: remaining-parents
// counters from the precomputed indegrees, an empty calendar sized for
// p's job-time distribution, and the eligible set seeded with the
// sources' ranks.
//
//prio:noalloc
//prio:nobce
func (k *fastKernel) start(p Params) {
	copy(k.rem, k.initRem)
	k.events = k.events[:0]
	for i := range k.heads {
		k.heads[i] = -1
	}
	for i := range k.occ {
		k.occ[i] = 0
	}
	// The wheel spans twice the effective job-time range, so an insert
	// at now+d lands at most fastBuckets/2+1 buckets past the base.
	span := p.JobTimeMean + 8*p.JobTimeStdDev + 1e-3
	k.invW = float64(fastBuckets/2) / span
	k.baseVi = 0
	k.minVi = math.MaxInt
	k.live = 0
	k.overCnt = 0
	k.overMin = math.Inf(1)
	k.maxIns = 0
	rank := k.rank
	nSources := k.nSources
	if nSources > len(rank) {
		panic("sim: fastKernel.start: sources exceed rank table")
	}
	k.elig.Reset(len(k.rem))
	for i := 0; i < nSources; i++ {
		k.elig.Add(int(rank[i]))
	}
}

// insert schedules the completion of job (topo-relabeled) at time at.
// Both slot values are provably in-bounds for the heads array: the ring
// branch masks with fastBuckets-1 and the overflow branch uses the
// constant last slot.
//
//prio:noalloc
//prio:nobce
func (k *fastKernel) insert(at float64, job int32) {
	if at > k.maxIns {
		k.maxIns = at
	}
	i := int32(len(k.events))
	vi := int(at * k.invW)
	slot := uint(fastBuckets)
	if vi-k.baseVi < fastBuckets {
		slot = uint(vi) & (fastBuckets - 1)
		k.occ[(slot>>6)&(fastBuckets/64-1)] |= 1 << (slot & 63)
		if vi < k.minVi {
			k.minVi = vi
		}
		k.live++
	} else {
		if at < k.overMin {
			k.overMin = at
		}
		k.overCnt++
	}
	// The clamp never fires (slot is fastBuckets or a masked ring
	// index); it hands the prover the upper bound the branch merge
	// loses, so both heads accesses are check-free.
	if slot > fastBuckets {
		slot = fastBuckets
	}
	k.events = append(k.events, fastEvent{at: at, job: job, next: k.heads[slot]})
	k.heads[slot] = i
}

// complete processes one completion: walk the children sequentially in
// the relabeled CSR, decrement their remaining-parent counters, and
// set the rank bit of every node whose last parent this was.
//
// The cold guards up front replace the per-iteration implicit bounds
// checks: a corrupt CSR (never built by build) panics once at entry,
// and past the guards every index in the walk is provably in-bounds —
// children by ci < end <= len(children), rem by the per-child uint
// guard, and rank by the reslice pinning len(rank) to len(rem).
//
//prio:noalloc
//prio:nobce
func (k *fastKernel) complete(job int32) {
	cs, children := k.childStart, k.children
	j := int(job)
	if uint(j) >= uint(len(cs)) {
		panic("sim: fastKernel.complete: job out of range")
	}
	ci := int(cs[j])
	jn := j + 1
	if uint(jn) >= uint(len(cs)) {
		panic("sim: fastKernel.complete: job out of range")
	}
	end := int(cs[jn])
	if ci < 0 || end > len(children) {
		panic("sim: fastKernel.complete: corrupt child CSR")
	}
	rem, rank := k.rem, k.rank
	if len(rank) < len(rem) {
		panic("sim: fastKernel.complete: rank table too short")
	}
	rank = rank[:len(rem)]
	for ; ci < end; ci++ {
		c := int(children[ci])
		if uint(c) >= uint(len(rem)) {
			panic("sim: fastKernel.complete: child id out of range")
		}
		rem[c]--
		if rem[c] == 0 {
			k.elig.Add(int(rank[c]))
		}
	}
}

// nextOcc returns the ring distance from slot s to the nearest
// occupied slot at or after s, wrapping past the top of the ring. The
// ring must be non-empty (live > 0), or the scan would not terminate.
// s must be an in-range slot (callers mask with fastBuckets-1); the
// word index mask makes that provable, so the occupancy scan carries
// no bounds checks.
//
//prio:noalloc
//prio:nobce
//prio:inline
func (k *fastKernel) nextOcc(s int) int {
	w := (s >> 6) & (fastBuckets/64 - 1)
	if word := k.occ[w] >> (uint(s) & 63); word != 0 {
		return bits.TrailingZeros64(word)
	}
	for d := 1; ; d++ {
		if word := k.occ[(w+d)&(fastBuckets/64-1)]; word != 0 {
			return d<<6 - s&63 + bits.TrailingZeros64(word)
		}
	}
}

// drain processes every pending completion with time <= T (all of them
// when all is set), in bucket order, and returns how many completed.
// Whole buckets strictly before the boundary complete without any
// comparison; the boundary bucket is filtered by comparison and its
// survivors relinked.
//
// The bucket chains walk with uint(i) < uint(len(events)) as the loop
// condition: it folds the chain-end test (next == -1 wraps to a huge
// uint) and the arena bound into one compare, so the event loads carry
// no bounds checks. An in-range but corrupt chain index would end the
// walk early instead of panicking; arena indices come only from append
// positions in insert, so no such index exists.
//
//prio:noalloc
//prio:nobce
func (k *fastKernel) drain(T float64, all bool) int {
	done := 0
	events := k.events
	if k.live > 0 {
		Tvi := int(T * k.invW)
		if all || k.minVi <= Tvi {
			vi := k.minVi
			for k.live > 0 {
				// Jump to the next occupied bucket; the live invariant
				// guarantees it is within one full ring turn of vi.
				vi += k.nextOcc(vi & (fastBuckets - 1))
				if !all && vi > Tvi {
					break
				}
				slot := vi & (fastBuckets - 1)
				if all || vi < Tvi {
					// The whole bucket is inside the window.
					for i := int(k.heads[slot]); uint(i) < uint(len(events)); i = int(events[i].next) {
						k.complete(events[i].job)
						done++
						k.live--
					}
					k.heads[slot] = -1
					k.occ[(slot>>6)&(fastBuckets/64-1)] &^= 1 << (uint(slot) & 63)
				} else {
					// Boundary bucket: filter by time, relink survivors.
					nh := int32(-1)
					for i := int(k.heads[slot]); uint(i) < uint(len(events)); {
						ev := &events[i]
						next := int(ev.next)
						if ev.at <= T {
							k.complete(ev.job)
							done++
							k.live--
						} else {
							ev.next = nh
							nh = int32(i)
						}
						i = next
					}
					k.heads[slot] = nh
					if nh < 0 {
						k.occ[(slot>>6)&(fastBuckets/64-1)] &^= 1 << (uint(slot) & 63)
					}
					break
				}
				vi++
			}
			k.minVi = vi
		}
		if !all {
			// The wheel base follows the drain threshold: every live ring
			// event is now > T, i.e. in [Tvi, Tvi+fastBuckets).
			k.baseVi = Tvi
			if k.minVi < Tvi {
				k.minVi = Tvi
			}
		}
		if k.live == 0 {
			// Empty ring: forget the stale walk start so a sparse later
			// insert does not leave minVi pointing at drained buckets.
			k.minVi = math.MaxInt
		}
	} else if !all {
		k.baseVi = int(T * k.invW)
	}
	if k.overCnt > 0 && (all || k.overMin <= T) {
		nh := int32(-1)
		min := math.Inf(1)
		for i := int(k.heads[fastBuckets]); uint(i) < uint(len(events)); {
			ev := &events[i]
			next := int(ev.next)
			if all || ev.at <= T {
				k.complete(ev.job)
				done++
				k.overCnt--
			} else {
				if ev.at < min {
					min = ev.at
				}
				ev.next = nh
				nh = int32(i)
			}
			i = next
		}
		k.heads[fastBuckets] = nh
		k.overMin = min
	}
	return done
}

// runFast is the order-free replication loop. It consumes randomness
// in exactly the order the ordered kernel does — batch size, then one
// job time per assignment in rank order, then the interarrival draw —
// and reproduces its metrics bit for bit on the policies and
// parameters fastPathOK admits.
//
// The //prio:devirt pragma adds the devirtualization obligation on top
// of noalloc: the ranker capability call below must compile to a
// direct call (the compiler proves sr's dynamic type), and the census
// in the devirt analyzer fails the build if the interface call ever
// disappears — so the pragma can never go vacuously green.
//
//prio:noalloc
//prio:nobce
//prio:devirt
func (st *runState) runFast(g *dag.Frozen, p Params, o *Oblivious, src *rng.Source) Metrics {
	k := &st.fast
	// The rank order reaches the kernel through the staticRank
	// capability, pinned to a local so the compiler devirtualizes the
	// call (proven by `make lint`; see rankHook for the CI probe that
	// keeps that proof honest).
	var sr staticRank = o
	// INJECT: ranker call through the mutable hook goes here
	if k.owner != o || k.g != g {
		k.build(g, o, sr.StaticOrder())
	}
	n := g.NumNodes()
	k.start(p)

	now := 0.0
	nextBatch := 0.0
	unassigned := n
	executed := 0
	batches, stalls, requests := 0, 0, 0

	for executed < n {
		executed += k.drain(nextBatch, unassigned == 0)
		if executed == n {
			break
		}
		if unassigned == 0 {
			continue // drain the remaining completions
		}

		// Batch arrival.
		now = nextBatch
		size := batchSize(src, p.BatchSize)
		batches++
		requests += size
		served := 0
		jobOfRank := k.jobOfRank
		for i := 0; i < size; i++ {
			r, ok := k.elig.PopMin()
			if !ok {
				break
			}
			if uint(r) >= uint(len(jobOfRank)) {
				panic("sim: runFast: rank out of range")
			}
			served++
			unassigned--
			d := src.Normal(p.JobTimeMean, p.JobTimeStdDev)
			if d < 1e-3 {
				d = 1e-3 // a job cannot run backwards in time
			}
			k.insert(now+d, jobOfRank[r])
		}
		if served == 0 {
			stalls++
		}
		nextBatch = now + src.Exp(p.BatchInterarrival)
	}

	// Every scheduled event completed and drain windows advance in time,
	// so the latest insert is the ordered kernel's final pop.
	m := Metrics{
		ExecutionTime: k.maxIns,
		Batches:       batches,
		Requests:      requests,
	}
	if batches > 0 {
		m.StallProbability = float64(stalls) / float64(batches)
	}
	if requests > 0 {
		m.Utilization = float64(n) / float64(requests)
	}
	return m
}
