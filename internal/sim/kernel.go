// The allocation-free replication kernel. One paper-scale Figures 6-9
// grid is 7×9 points × 2 policies × P·Q = 300·300 replications ≈ 11.3M
// simulator runs, so the per-run constant factor dominates the whole
// evaluation. This file keeps the discrete-event loop of model.go but
// moves every piece of per-run state into a reusable runState owned by
// a Runner, so that in steady state a replication performs zero heap
// allocations:
//
//   - completion events live in a sort-merge eventQueue (bursts of
//     assignments are bulk-sorted and merged, pops advance an index)
//     instead of container/heap, whose interface{} Push/Pop box every
//     event and pay O(log w) dependent cache misses per sift at
//     fan-out w — tens of thousands of in-flight jobs on the paper's
//     SDSS dag;
//   - the per-completion child walk reads the dag.Frozen's CSR arena
//     directly (ChildCSR: one contiguous int32 array with absolute
//     start offsets), so the kernel needs no adjacency flattening of
//     its own and the remaining-parents counters reset from the
//     precomputed indegrees;
//   - the random source is reseeded in place (rng.Source.Reseed)
//     rather than constructed per replication;
//   - policies reset in place in Start, keeping their eligible sets in
//     bitset.MinSet bitmaps rather than freshly allocated btrees (see
//     policy.go, extensions.go).
package sim

import (
	"repro/internal/dag"
	"repro/internal/rng"
)

// completion is a pending job completion event.
type completion struct {
	at  float64
	job int32
}

// eventHeap is an 8-ary min-heap of completion events ordered by time.
// In the kernel it only backs eventQueue's overflow path (mid-drain
// rollover assignments), so it is almost always empty or tiny; the bulk
// of the event traffic goes through the queue's sorted array. Sifts
// move a hole instead of swapping, with the same compare sequence (and
// therefore the same final layout) as the textbook swap formulation.
type eventHeap []completion

//prio:noalloc
func (h *eventHeap) push(ev completion) {
	*h = append(*h, ev) // self-append: amortized high-water-mark growth
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := int(uint(i-1) / 8)
		if s[parent].at <= ev.at {
			break
		}
		s[i] = s[parent]
		i = parent
	}
	s[i] = ev
}

// pop removes and returns the minimum event. It must not be called on
// an empty heap.
//
//prio:noalloc
func (h *eventHeap) pop() completion {
	s := *h
	min := s[0]
	last := len(s) - 1
	ev := s[last]
	*h = s[:last]
	s = s[:last]
	if last == 0 {
		return min
	}
	i := 0
	for {
		first := 8*i + 1
		if first >= last {
			break
		}
		smallest := first
		end := first + 8
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if s[c].at < s[smallest].at {
				smallest = c
			}
		}
		if ev.at <= s[smallest].at {
			break
		}
		s[i] = s[smallest]
		i = smallest
	}
	s[i] = ev
	return min
}

// eventQueue is the kernel's pending-completion queue, shaped around
// the model's bursty event pattern: completions are pushed in bursts
// when a batch of worker requests is assigned, and popped in long
// uninterrupted runs while the simulation drains to the next batch
// arrival. Instead of paying a heap sift per event — O(log w)
// dependent cache misses on a wide dag with w in-flight jobs — the
// queue appends each burst unsorted, sorts the live region once per
// burst (pdqsort, which is near-linear on the already-sorted remainder
// plus the new tail), and then pops by advancing an index: O(1) per
// event, sequential memory.
//
// The one interleaving that pushes during a drain is the rollover
// branch (workers waiting from an earlier under-filled batch grab jobs
// the moment a completion makes them eligible). Those events go to a
// small overflow min-heap, and pop/minAt take the smaller of the two
// fronts, so extraction order is the exact global time order in every
// case. Equal timestamps across the two structures (or within a sort,
// which is unstable) are broken arbitrarily — as in any heap, and
// unobservable in practice: job times are continuous, so exact ties
// have measure zero.
//
// All backing arrays are truncated and reused across replications;
// steady-state operation allocates nothing.
type eventQueue struct {
	buf     []completion // buf[head:sorted) ascending; buf[sorted:] unsorted appends
	head    int
	sorted  int
	over    eventHeap    // small-burst and mid-drain pushes
	scratch []completion // merge target, swapped with buf
}

//prio:noalloc
func (q *eventQueue) reset() {
	q.buf = q.buf[:0]
	q.head = 0
	q.sorted = 0
	q.over = q.over[:0]
}

//prio:noalloc
func (q *eventQueue) len() int { return len(q.buf) - q.head + len(q.over) }

// appendBurst adds an event without restoring order. The caller must
// normalize before the next minAt/pop. Used for batch-arrival
// assignments, which never interleave with pops.
//
//prio:noalloc
func (q *eventQueue) appendBurst(at float64, job int32) {
	q.buf = append(q.buf, completion{at: at, job: job})
}

// pushSorted adds an event while the queue is live (mid-drain rollover
// assignments). It goes to the overflow heap, keeping the sorted
// region intact.
//
//prio:noalloc
func (q *eventQueue) pushSorted(at float64, job int32) {
	q.over.push(completion{at: at, job: job})
}

// sortCompletions orders s ascending by completion time: a
// median-of-three quicksort (Sedgewick's sentinel formulation) over an
// insertion-sort base case, hand-specialized to completion so the
// float compares inline — slices.SortFunc pays an indirect call per
// comparison, which dominated the kernel at wide fan-out. Completion
// times are i.i.d. continuous draws, so adversarial pivot sequences
// have probability zero and no pattern defense is needed.
//
//prio:noalloc
func sortCompletions(s []completion) {
	for len(s) > 24 {
		// Median of first/middle/last becomes the pivot in s[0]; the
		// ordering leaves a >= pivot sentinel at the top for the i scan
		// and the pivot itself bounds the j scan.
		m := len(s) / 2
		l := len(s) - 1
		if s[m].at < s[0].at {
			s[m], s[0] = s[0], s[m]
		}
		if s[l].at < s[0].at {
			s[l], s[0] = s[0], s[l]
		}
		if s[m].at < s[l].at {
			s[m], s[l] = s[l], s[m]
		}
		s[0], s[l] = s[l], s[0] // pivot (median) to s[0], max of three to s[l]
		v := s[0].at
		i, j := 0, l+1
		for {
			for i++; s[i].at < v && i < l; i++ {
			}
			for j--; v < s[j].at; j-- {
			}
			if i >= j {
				break
			}
			s[i], s[j] = s[j], s[i]
		}
		s[0], s[j] = s[j], s[0]
		// Recurse into the smaller half, iterate on the larger.
		if j < len(s)-j-1 {
			sortCompletions(s[:j])
			s = s[j+1:]
		} else {
			sortCompletions(s[j+1:])
			s = s[:j]
		}
	}
	for i := 1; i < len(s); i++ {
		ev := s[i]
		j := i - 1
		for ; j >= 0 && s[j].at > ev.at; j-- {
			s[j+1] = s[j]
		}
		s[j+1] = ev
	}
}

// normalize restores the queue invariant after appendBurst calls. A
// burst that is large relative to the live sorted region is sorted on
// its own and then linearly merged with the region into the scratch
// buffer — O(burst·log burst + live) with sequential memory access,
// the case a heap handles worst. A small burst is instead fed to the
// overflow heap, because an O(live) merge per handful of events would
// be quadratic across the many small batches of a short-interarrival
// grid point; with every burst small the queue degrades gracefully
// into the plain heap it embeds. No-op when nothing was appended.
//
//prio:noalloc
func (q *eventQueue) normalize() {
	tail := len(q.buf) - q.sorted
	if tail == 0 {
		return
	}
	live := q.sorted - q.head
	if tail*32 < live {
		for _, ev := range q.buf[q.sorted:] {
			q.over.push(ev)
		}
		q.buf = q.buf[:q.sorted]
		return
	}
	// The overflow heap is deliberately left alone: folding it in here
	// would re-sort the same events once per fold (quadratic when burst
	// sizes oscillate around the threshold). Events enter the sorted
	// region or the heap exactly once; pop drains both.
	sortCompletions(q.buf[q.sorted:])
	if live == 0 {
		n := copy(q.buf, q.buf[q.sorted:])
		q.buf = q.buf[:n]
		q.head = 0
		q.sorted = n
		return
	}
	a, b := q.buf[q.head:q.sorted], q.buf[q.sorted:]
	out := q.scratch[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].at <= b[j].at {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	q.scratch = q.buf[:0]
	q.buf = out
	q.head = 0
	q.sorted = len(out)
}

// minAt returns the earliest pending completion time. The queue must
// be normalized and non-empty; an empty queue panics, as the implicit
// bounds check used to. Fields are hoisted to locals and the head index
// compared as uint so the sorted-region reads carry no bounds checks.
//
//prio:noalloc
//prio:nobce
func (q *eventQueue) minAt() float64 {
	buf, head, over := q.buf, q.head, q.over
	if uint(head) < uint(len(buf)) {
		if len(over) > 0 && over[0].at < buf[head].at {
			return over[0].at
		}
		return buf[head].at
	}
	if len(over) > 0 {
		return over[0].at
	}
	panic("sim: minAt on empty eventQueue")
}

// pop removes and returns the earliest event. The queue must be
// normalized and non-empty; popping an empty queue panics in the
// overflow heap, as the implicit bounds check here used to. Same
// hoisted-local shape as minAt for the same bounds-check-free reason.
//
//prio:noalloc
//prio:nobce
func (q *eventQueue) pop() (float64, int32) {
	buf, head, over := q.buf, q.head, q.over
	if uint(head) < uint(len(buf)) {
		if len(over) > 0 && over[0].at < buf[head].at {
			ev := q.over.pop()
			return ev.at, ev.job
		}
		ev := buf[head]
		q.head = head + 1
		if head+1 == len(buf) {
			q.buf = buf[:0]
			q.head = 0
			q.sorted = 0
		}
		return ev.at, ev.job
	}
	ev := q.over.pop()
	return ev.at, ev.job
}

// runState is the reusable per-worker state of one replication: the
// remaining-parents counters and the completion-event queue. The dag
// needs no per-Runner flattening — the shared dag.Frozen CSR layout
// (one int32 arc arena with absolute childStart offsets, precomputed
// indegrees and sources) is exactly the array pair the hot child walk
// wants, so the kernel borrows views of it directly. The zero value is
// ready to use; run grows the buffers on first use and then only
// truncates them.
type runState struct {
	remaining []int32
	pending   eventQueue
	// fast is the order-free kernel (kernelfast.go) used when the
	// policy and parameters admit it; noFast forces the ordered path
	// (the differential tests compare the two).
	fast   fastKernel
	noFast bool
}

// reset prepares the state for a replication on g, reusing capacity.
// The queue's backing arrays are pre-sized to the job count up front:
// without failures a run inserts at most n events between full drains,
// so paying the high-water allocation once here (instead of letting
// append discover it) means steady state stops growing entirely — the
// sdss benchmarks used to report ~13 KB/op of amortized regrowth from
// seeds that set a new burst high-water mark mid-run.
//
//prio:noalloc
func (st *runState) reset(g *dag.Frozen, n int) {
	if cap(st.remaining) < n {
		st.remaining = make([]int32, n)
	} else {
		st.remaining = st.remaining[:n]
	}
	for v := 0; v < n; v++ {
		st.remaining[v] = int32(g.InDegree(v))
	}
	if cap(st.pending.buf) < n {
		st.pending.buf = make([]completion, 0, n)
	}
	if cap(st.pending.scratch) < n {
		st.pending.scratch = make([]completion, 0, n)
	}
	if cap(st.pending.over) < n {
		st.pending.over = make(eventHeap, 0, n)
	}
	st.pending.reset()
}

// Runner owns the pooled state for repeated replications on one dag:
// a runState and a random source reseeded in place per run. In steady
// state (after buffer capacities and the policy's internal state have
// grown to the dag's high-water mark) Run performs zero heap
// allocations; the experiment engine keeps one Runner per worker for
// the whole grid. A Runner is not safe for concurrent use.
type Runner struct {
	g   *dag.Frozen
	st  runState
	src *rng.Source
}

// NewRunner returns a Runner for repeated simulations of g.
func NewRunner(g *dag.Frozen) *Runner {
	return &Runner{g: g, src: rng.New(0)}
}

// Run simulates one execution of the Runner's dag under pol with the
// given replication seed. It is equivalent to
// sim.Run(g, p, pol, rng.New(seed)) — bit-identical metrics — without
// the per-replication allocations.
//
//prio:noalloc
func (r *Runner) Run(p Params, pol Policy, seed uint64) Metrics {
	r.src.Reseed(seed)
	return r.st.run(r.g, p, pol, r.src, nil)
}

// run is the discrete-event kernel shared by Run, RunObserved, and
// Runner.Run. All mutable per-replication state lives in st, the
// policy, and src; the kernel itself allocates nothing once st's
// buffers have grown to the dag's high-water mark.
func (st *runState) run(g *dag.Frozen, p Params, pol Policy, src *rng.Source, obs Observer) Metrics {
	if err := p.validate(); err != nil {
		panic(err)
	}
	n := g.NumNodes()
	if n == 0 {
		return Metrics{}
	}

	// Order-free fast path: when completions within a drain window are
	// unobservable (set-semantics policy, no failures, no rollover, no
	// observer) the sort-merge queue below is pure overhead — see
	// kernelfast.go for the argument and the differential tests pinning
	// the two paths bit-identical.
	if !st.noFast {
		if o, ok := fastPathOK(p, pol, obs); ok {
			return st.runFast(g, p, o, src)
		}
	}

	st.reset(g, n)
	remaining := st.remaining // unexecuted parents
	childStart, children := g.ChildCSR()
	pol.Start(g, src)
	for _, v := range g.Sources() {
		pol.Eligible(int(v))
	}

	now := 0.0
	nextBatch := 0.0 // first batch arrives at time 0
	unassigned := n  // jobs not yet handed to a worker
	executed := 0
	lastCompletion := 0.0
	batches, stalls, requests := 0, 0, 0
	waiting := 0 // rolled-over unfilled requests (RolloverWorkers only)

	// assign does not escape run, so the closure and the variables it
	// captures stay on the stack (the kernel's zero-alloc tests would
	// catch a regression). mid says whether the queue is live (a
	// rollover assignment during the drain) or between drains (a
	// batch-arrival burst, folded in by the next normalize).
	assign := func(v int, mid bool) {
		if obs != nil {
			obs.Assigned(now, v)
		}
		unassigned--
		mean := p.JobTimeMean
		if len(p.JobMeans) > 0 {
			mean = p.JobMeans[v]
		}
		d := src.Normal(mean, p.JobTimeStdDev)
		if d < 1e-3 {
			d = 1e-3 // a job cannot run backwards in time
		}
		if mid {
			st.pending.pushSorted(now+d, int32(v))
		} else {
			st.pending.appendBurst(now+d, int32(v))
		}
	}

	for executed < n {
		// Advance to the earlier of the next batch arrival and the next
		// completion. Completions at the same instant as a batch are
		// processed first: their children are eligible for that batch.
		st.pending.normalize()
		for st.pending.len() > 0 && (unassigned == 0 || st.pending.minAt() <= nextBatch) {
			at, job := st.pending.pop()
			now = at
			if p.FailureProb > 0 && src.Float64() < p.FailureProb {
				// The worker failed: the job is unexecuted and eligible
				// again, waiting for a future request.
				unassigned++
				if obs != nil {
					obs.Failed(now, int(job))
				}
				pol.Eligible(int(job))
				continue
			}
			executed++
			lastCompletion = at
			if obs != nil {
				obs.Completed(now, int(job))
			}
			for ci, end := childStart[job], childStart[job+1]; ci < end; ci++ {
				c := children[ci]
				remaining[c]--
				if remaining[c] == 0 {
					pol.Eligible(int(c))
				}
			}
			// Rolled-over workers take newly eligible jobs immediately.
			for waiting > 0 && unassigned > 0 {
				v, ok := pol.Next()
				if !ok {
					break
				}
				waiting--
				assign(v, true)
			}
		}
		if executed == n {
			break
		}
		if unassigned == 0 {
			continue // drain remaining completions
		}

		// Batch arrival.
		now = nextBatch
		size := batchSize(src, p.BatchSize)
		batches++
		requests += size
		served := 0
		for i := 0; i < size; i++ {
			v, ok := pol.Next()
			if !ok {
				break
			}
			served++
			assign(v, false)
		}
		if served == 0 {
			stalls++
		}
		if obs != nil {
			obs.BatchArrived(now, size, served)
		}
		if p.RolloverWorkers {
			waiting += size - served
		}
		nextBatch = now + src.Exp(p.BatchInterarrival)
	}

	m := Metrics{
		ExecutionTime: lastCompletion,
		Batches:       batches,
		Requests:      requests,
	}
	if batches > 0 {
		m.StallProbability = float64(stalls) / float64(batches)
	}
	if requests > 0 {
		m.Utilization = float64(n) / float64(requests)
	}
	return m
}
