package sim

import (
	"os"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/workloads"
)

// TestFastPathMatchesOrdered pins the order-free kernel to the ordered
// sort-merge kernel on paper-scale dags across the batch regimes the
// grids sweep — tiny interarrivals (many near-empty drain windows),
// balanced, and huge batches (one window drains thousands of events) —
// for both oblivious policies. The fuzz target covers the same
// equivalence on arbitrary 8-node dags; this test covers real widths,
// where the calendar's bucket walk, boundary filtering, and occupancy
// jumps actually engage.
func TestFastPathMatchesOrdered(t *testing.T) {
	for _, w := range []struct {
		name string
		g    *dag.Frozen
	}{{"airsn", workloads.AIRSN(15)}, {"montage", workloads.Montage(20, 3)}} {
		for _, name := range []string{"prio", "critpath", "heft", "graphene", "heft+outdeg"} {
			factory, err := PolicyFactory(name, w.g)
			if err != nil {
				t.Fatal(err)
			}
			fast := NewRunner(w.g)
			ordered := NewRunner(w.g)
			ordered.st.noFast = true
			fastPol, orderedPol := factory(), factory()
			if _, ok := fastPol.(*Oblivious); !ok {
				t.Fatalf("%s: expected an Oblivious policy", name)
			}
			for _, p := range []Params{
				DefaultParams(0.05, 0.5),
				DefaultParams(0.05, 16),
				DefaultParams(1, 8),
				DefaultParams(1, 1600),
				DefaultParams(100, 4),
			} {
				for seed := uint64(1); seed <= 10; seed++ {
					got := fast.Run(p, fastPol, seed)
					want := ordered.Run(p, orderedPol, seed)
					if got != want {
						t.Fatalf("%s/%s bit=%g bs=%g seed %d:\n fast    %+v\n ordered %+v",
							w.name, name, p.BatchInterarrival, p.BatchSize, seed, got, want)
					}
				}
			}
		}
	}
}

// TestFastPathDispatch pins the fast path's admission rule: order-free
// only for Oblivious policies with no failures, no rollover, no
// per-job means, and no observer.
func TestFastPathDispatch(t *testing.T) {
	g := workloads.AIRSN(4)
	prio := NewPRIO(g)
	base := DefaultParams(1, 8)
	if _, ok := fastPathOK(base, prio, nil); !ok {
		t.Error("prio at the default point should take the fast path")
	}
	fail := base
	fail.FailureProb = 0.1
	if _, ok := fastPathOK(fail, prio, nil); ok {
		t.Error("failures draw randomness per pop; must stay ordered")
	}
	roll := base
	roll.RolloverWorkers = true
	if _, ok := fastPathOK(roll, prio, nil); ok {
		t.Error("rollover assigns at completion times; must stay ordered")
	}
	means := base
	means.JobMeans = make([]float64, g.NumNodes())
	for i := range means.JobMeans {
		means.JobMeans[i] = 1
	}
	if _, ok := fastPathOK(means, prio, nil); ok {
		t.Error("per-job means are indexed in the original id space; must stay ordered")
	}
	if _, ok := fastPathOK(base, NewFIFO(), nil); ok {
		t.Error("FIFO is order-sensitive; must stay ordered")
	}
}

// TestFastPathRankerCensus is the acceptance gate for the two-tier
// policy architecture: every shipped ranker family — plus a composed
// tie-breaker chain standing in for the open-ended chain grammar —
// must (a) come out of the factory as a static-rank policy the fast
// path admits, (b) reproduce the ordered kernel bit for bit, and
// (c) run the fast path at exactly zero allocations in steady state.
// A new family that fails any leg cannot claim the 2.4× fast path.
func TestFastPathRankerCensus(t *testing.T) {
	g := workloads.Montage(20, 3)
	base := DefaultParams(1, 16)
	for _, name := range []string{"prio", "critpath", "heft", "graphene", "heft+outdeg"} {
		factory, err := PolicyFactory(name, g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pol := factory()
		o, ok := fastPathOK(base, pol, nil)
		if !ok || o == nil {
			t.Fatalf("%s: fast path must admit a ranker-backed policy", name)
		}
		if got := o.StaticOrder(); len(got) != g.NumNodes() {
			t.Fatalf("%s: static order covers %d jobs, dag has %d", name, len(got), g.NumNodes())
		}

		fast, ordered := NewRunner(g), NewRunner(g)
		ordered.st.noFast = true
		orderedPol := factory()
		for seed := uint64(1); seed <= 5; seed++ {
			got := fast.Run(base, pol, seed)
			want := ordered.Run(base, orderedPol, seed)
			if got != want {
				t.Fatalf("%s seed %d:\n fast    %+v\n ordered %+v", name, seed, got, want)
			}
		}
		// Steady state reached above; the fast path must now be
		// allocation-free for this family, not just for PRIO.
		seed := uint64(99)
		if allocs := testing.AllocsPerRun(5, func() {
			fast.Run(base, pol, seed)
			seed++
		}); allocs != 0 {
			t.Fatalf("%s: fast path allocates %.0f objects per replication, want 0", name, allocs)
		}
	}
}

// TestFastPathWrapperAdmission pins the capability contract: a policy
// that embeds *Oblivious (and so asserts static-rank semantics) is
// admitted to the fast path through the promoted staticRank methods —
// admission is the capability, not the concrete type — and the run is
// bit-identical to the ordered path through the same wrapper.
func TestFastPathWrapperAdmission(t *testing.T) {
	type tagged struct {
		*Oblivious
	}
	g := workloads.AIRSN(15)
	p := DefaultParams(1, 8)
	pol := tagged{NewPRIO(g)}
	o, ok := fastPathOK(p, pol, nil)
	if !ok {
		t.Fatal("wrapper embedding *Oblivious must be admitted")
	}
	if o != pol.Oblivious {
		t.Fatal("fastCore must resolve to the embedded state machine")
	}
	fast, ordered := NewRunner(g), NewRunner(g)
	ordered.st.noFast = true
	for seed := uint64(1); seed <= 5; seed++ {
		got := fast.Run(p, pol, seed)
		want := ordered.Run(p, tagged{NewPRIO(g)}, seed)
		if got != want {
			t.Fatalf("seed %d: wrapped fast %+v, wrapped ordered %+v", seed, got, want)
		}
	}
}

// TestRankHookSeam pins the pieces CI's kernel injection probe relies
// on: the INJECT marker in kernelfast.go (the sed target), and the
// mutable rankHook seam staying assignable through swapRankHook — the
// property that makes the injected call permanently un-devirtualizable.
func TestRankHookSeam(t *testing.T) {
	src, err := os.ReadFile("kernelfast.go")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "// INJECT: ranker call through the mutable hook goes here") {
		t.Fatal("kernelfast.go lost its INJECT marker (ci.yml seds it)")
	}
	old := rankHook
	defer swapRankHook(old)
	repl := NewOblivious("SWAPPED", nil)
	swapRankHook(repl)
	if rankHook != staticRank(repl) {
		t.Fatal("swapRankHook did not swap the seam")
	}
}

// TestFastCalendar drives the bucket calendar white-box: inserts across
// the ring, past the horizon (the overflow chain — unreachable through
// the kernel's clamped Normal draws, so exercised directly here),
// boundary buckets with survivors, and drain-all. The dag has no arcs,
// so complete() is a no-op and the calendar mechanics are isolated.
func TestFastCalendar(t *testing.T) {
	b := dag.NewWithCapacity(4)
	for _, name := range []string{"a", "b", "c", "d"} {
		b.AddNode(name)
	}
	g := b.MustFreeze()
	o := NewOblivious("ID", []int{0, 1, 2, 3})

	var k fastKernel
	k.build(g, o, o.StaticOrder())
	k.start(DefaultParams(1, 8)) // span ≈ 1.8, invW ≈ 284 buckets/unit

	// Two events inside the first window, one past it, one beyond the
	// ring horizon (at 2*span from the base).
	k.insert(0.5, 0)
	k.insert(1.0, 1)
	k.insert(1.5, 2)
	k.insert(9.0, 3)
	if k.live != 3 || k.overCnt != 1 {
		t.Fatalf("live=%d overCnt=%d, want 3 ring + 1 overflow", k.live, k.overCnt)
	}
	if k.overMin != 9.0 {
		t.Fatalf("overMin=%g, want 9", k.overMin)
	}
	if got := k.drain(1.0, false); got != 2 {
		t.Fatalf("drain(1.0)=%d, want 2 (0.5 and the boundary 1.0)", got)
	}
	if k.live != 1 {
		t.Fatalf("live=%d after first window, want 1 survivor", k.live)
	}
	// The survivor at 1.5 drains once the window passes it; the
	// overflow event stays beyond its horizon.
	if got := k.drain(2.0, false); got != 1 {
		t.Fatalf("drain(2.0)=%d, want the 1.5 survivor", got)
	}
	if k.overCnt != 1 {
		t.Fatalf("overflow drained early: overCnt=%d", k.overCnt)
	}
	// drain-all collects the overflow chain (T is ignored).
	if got := k.drain(0, true); got != 1 {
		t.Fatalf("drain(all)=%d, want the overflow event", got)
	}
	if k.live != 0 || k.overCnt != 0 {
		t.Fatalf("calendar not empty after drain-all: live=%d over=%d", k.live, k.overCnt)
	}
	if k.maxIns != 9.0 {
		t.Fatalf("maxIns=%g, want 9", k.maxIns)
	}

	// A second start on the same kernel must fully reset the calendar.
	k.start(DefaultParams(1, 8))
	if k.live != 0 || k.overCnt != 0 || k.maxIns != 0 {
		t.Fatalf("start did not reset: live=%d over=%d maxIns=%g", k.live, k.overCnt, k.maxIns)
	}
	k.insert(0.25, 2)
	if got := k.drain(0.5, false); got != 1 {
		t.Fatalf("drain after reset=%d, want 1", got)
	}
}
