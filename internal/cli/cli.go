// Package cli holds the small helpers shared by the command-line tools:
// resolving a dag from a workload name or a DAGMan file, and parsing
// numeric list flags.
package cli

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/dag"
	"repro/internal/dagman"
	"repro/internal/workloads"
)

// LoadDag resolves spec to a dag. A known workload name (airsn,
// inspiral, montage, sdss) builds the synthetic paper dag, scaled down
// by scale (1 = paper size); a classic repertoire name (mesh,
// reduction, expansion, butterfly, pyramid) builds the corresponding
// theory dag; anything else is treated as a DAGMan input file path.
// The second result is a short label for reports.
func LoadDag(spec string, scale int) (*dag.Frozen, string, error) {
	for _, name := range workloads.Names() {
		if spec == name {
			g, err := workloads.ByName(name, scale)
			if err != nil {
				return nil, "", err
			}
			label := name
			if scale > 1 {
				label = fmt.Sprintf("%s/%d", name, scale)
			}
			return g, label, nil
		}
	}
	for _, name := range workloads.ClassicNames() {
		if spec == name {
			g, err := workloads.ClassicByName(name)
			if err != nil {
				return nil, "", err
			}
			return g, name, nil
		}
	}
	f, err := dagman.ParseFile(spec)
	if err != nil {
		return nil, "", fmt.Errorf("%q is not a workload name and could not be read as a DAGMan file: %w", spec, err)
	}
	g, err := f.Graph()
	if err != nil {
		return nil, "", err
	}
	return g, spec, nil
}

// ParseFloats parses a comma-separated list of numbers. Entries of the
// form a^b are evaluated as powers (e.g. "2^13", "10^-3").
func ParseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(csv, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if base, exp, ok := strings.Cut(tok, "^"); ok {
			b, err1 := strconv.ParseFloat(base, 64)
			e, err2 := strconv.ParseFloat(exp, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad power %q", tok)
			}
			out = append(out, pow(b, e))
			continue
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", tok)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func pow(b, e float64) float64 { return math.Pow(b, e) }
