package cli

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadDagWorkloads(t *testing.T) {
	for spec, wantJobs := range map[string]int{
		"airsn":    773,
		"inspiral": 2988,
		"montage":  7881,
		"sdss":     48013,
	} {
		g, label, err := LoadDag(spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if g.NumNodes() != wantJobs {
			t.Fatalf("%s: %d jobs, want %d", spec, g.NumNodes(), wantJobs)
		}
		if label != spec {
			t.Fatalf("%s: label %q", spec, label)
		}
	}
}

func TestLoadDagScaledLabel(t *testing.T) {
	g, label, err := LoadDag("airsn", 10)
	if err != nil {
		t.Fatal(err)
	}
	if label != "airsn/10" {
		t.Fatalf("label = %q", label)
	}
	if g.NumNodes() >= 773 {
		t.Fatal("scale did not shrink the dag")
	}
}

func TestLoadDagFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.dag")
	text := "Job a a.sub\nJob b b.sub\nParent a Child b\n"
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	g, label, err := LoadDag(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || label != path {
		t.Fatalf("loaded %d nodes, label %q", g.NumNodes(), label)
	}
}

func TestLoadDagErrors(t *testing.T) {
	if _, _, err := LoadDag("/does/not/exist.dag", 1); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "cyclic.dag")
	os.WriteFile(bad, []byte("Job a a.sub\nJob b b.sub\nParent a Child b\nParent b Child a\n"), 0o644)
	if _, _, err := LoadDag(bad, 1); err == nil {
		t.Fatal("cyclic file accepted")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := ParseFloats("1, 2.5 ,10^-3,2^16")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2.5, 0.001, 65536}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParseFloatsErrors(t *testing.T) {
	for _, bad := range []string{"", " , ", "abc", "2^x", "x^2"} {
		if _, err := ParseFloats(bad); err == nil {
			t.Errorf("ParseFloats(%q) accepted", bad)
		}
	}
}

func TestLoadDagClassic(t *testing.T) {
	for _, name := range []string{"mesh", "reduction", "expansion", "butterfly", "pyramid"} {
		g, label, err := LoadDag(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumNodes() == 0 || label != name {
			t.Fatalf("%s: %d nodes, label %q", name, g.NumNodes(), label)
		}
	}
}
