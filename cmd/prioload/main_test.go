package main

import (
	"bytes"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestLoadOutputFormat(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-dags", "airsn", "-scale", "16", "-clients", "3", "-requests", "5", "-warmup", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(buf.String())
	lines := strings.Split(out, "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d output lines, want 1:\n%s", len(lines), out)
	}
	line := lines[0]
	if !regexp.MustCompile(`^BenchmarkServeLoad/airsn/16/c3 \s`).MatchString(line) {
		t.Fatalf("bench name malformed: %q", line)
	}

	// The line must parse the way cmd/benchjson parses it: name,
	// iteration count, then value/unit pairs.
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		t.Fatalf("line has %d fields, want an even count >= 4: %q", len(f), line)
	}
	iters, err := strconv.Atoi(f[1])
	if err != nil || iters != 3*5 {
		t.Fatalf("iterations = %q, want 15", f[1])
	}
	metrics := make(map[string]float64)
	for i := 2; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			t.Fatalf("value %q does not parse: %v", f[i], err)
		}
		metrics[f[i+1]] = v
	}
	for _, unit := range []string{"ns/op", "p50-ns", "p99-ns", "req/s", "rss-bytes", "errors"} {
		if _, ok := metrics[unit]; !ok {
			t.Fatalf("line is missing metric %q: %q", unit, line)
		}
	}
	if metrics["p50-ns"] <= 0 || metrics["p99-ns"] < metrics["p50-ns"] {
		t.Fatalf("want 0 < p50 (%g) <= p99 (%g)", metrics["p50-ns"], metrics["p99-ns"])
	}
	if metrics["rss-bytes"] <= 0 {
		t.Fatal("rss-bytes not reported")
	}
	if metrics["errors"] != 0 {
		t.Fatalf("errors = %g, want 0 against the in-process server", metrics["errors"])
	}
}

func TestBadDagSpec(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-dags", "nosuchworkload"}, &buf); err == nil {
		t.Fatal("want an error for an unknown dag spec")
	}
}

func TestRejectsBadFlagValues(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-clients", "0"}, &buf); err == nil || !strings.Contains(err.Error(), "at least 1") {
		t.Fatalf("err = %v, want a flag-validation error", err)
	}
}

// TestRunJoinsGoroutines pins the fix goroleak forced: run must join
// the in-process server's Serve goroutine (and close idle client
// connections) before returning, so repeated invocations cannot
// accumulate goroutines.
func TestRunJoinsGoroutines(t *testing.T) {
	args := []string{"-dags", "airsn", "-scale", "16", "-clients", "2", "-requests", "2", "-warmup", "1"}
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil { // warm pools and lazy singletons
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		buf.Reset()
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
	}
	// The joined shape leaves no per-run goroutines; allow a little
	// slack for runtime-internal background work, then poll because
	// net/http connection goroutines unwind asynchronously after Close.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d across three runs: the serve goroutine or client connections leak", baseline, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
