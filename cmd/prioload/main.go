// Command prioload is the serving-layer load generator: it drives N
// concurrent clients posting DAGMan files at a priod daemon and reports
// latency percentiles, throughput, and server memory in `go test
// -bench` format, so the output pipes straight through cmd/benchjson
// into BENCH_serve.json (make bench-serve).
//
// Usage:
//
//	prioload [flags]
//
//	-url URL       target daemon (default: start an in-process server)
//	-dags LIST     comma-separated workload names or DAGMan paths (default airsn,inspiral,montage)
//	-scale N       divide paper dag sizes by N (default 1 = paper size)
//	-clients N     concurrent clients (default 32)
//	-requests N    requests per client after warmup (default 32)
//	-warmup N      untimed warmup requests (default 32)
//	-tenants N     spread clients over N tenant namespaces (default 1)
//
// Each dag emits one line such as
//
//	BenchmarkServeLoad/airsn/c32      1024      843210 ns/op      801220 p50-ns     1904110 p99-ns   1187.3 req/s    78643200 rss-bytes   0 errors
//
// ns/op is the mean request latency; p50-ns/p99-ns are percentiles over
// every timed request; req/s is total timed requests over wall-clock
// time; rss-bytes is the server's resident set (from its /metrics
// endpoint) after the run. Every client checks that all responses for a
// dag are byte-identical — the served schedule is deterministic — and
// the run fails on any mismatch or non-200 beyond admission sheds
// (which are counted in the errors column).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/cli"
	"repro/internal/dagman"
	"repro/internal/serve"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prioload:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("prioload", flag.ContinueOnError)
	urlFlag := fs.String("url", "", "target daemon base URL (default: start an in-process server)")
	dags := fs.String("dags", "airsn,inspiral,montage", "comma-separated workload names or DAGMan file paths")
	scale := fs.Int("scale", 1, "divide paper dag sizes by this factor (1 = paper size)")
	clients := fs.Int("clients", 32, "concurrent clients")
	requests := fs.Int("requests", 32, "timed requests per client")
	warmup := fs.Int("warmup", 32, "untimed warmup requests")
	tenants := fs.Int("tenants", 1, "spread clients over this many tenant namespaces")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *clients < 1 || *requests < 1 || *tenants < 1 {
		return fmt.Errorf("-clients, -requests, and -tenants must be at least 1")
	}

	base := *urlFlag
	if base == "" {
		// Self-contained mode: serve in-process on a loopback port. The
		// accept queue is sized to the client count and the shed
		// deadline is generous, so the generator measures queueing
		// latency under saturation rather than its own sheds.
		s := serve.New(serve.Config{MaxQueue: *clients + 1, QueueTimeout: time.Minute})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: s.Handler()}
		// The buffered channel joins the serve goroutine: Serve returns
		// (with ErrServerClosed) once Close runs, and the buffer lets the
		// final send complete even before the receive. goroleak proves
		// this shape; the bare `go srv.Serve(ln)` it replaced leaked the
		// goroutine past run's return.
		errc := make(chan error, 1)
		go func() { errc <- srv.Serve(ln) }()
		defer func() {
			if cerr := srv.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "prioload: closing server: %v\n", cerr)
			}
			<-errc
		}()
		base = "http://" + ln.Addr().String()
	}
	base = strings.TrimSuffix(base, "/")

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * *clients,
		MaxIdleConnsPerHost: 2 * *clients,
	}}
	defer client.CloseIdleConnections()

	for _, spec := range strings.Split(*dags, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		g, label, err := cli.LoadDag(spec, *scale)
		if err != nil {
			return err
		}
		text := dagman.FromGraph(g, nil).String()
		res, err := drive(client, base, text, *clients, *requests, *warmup, *tenants)
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		rss, err := serverRSS(client, base)
		if err != nil {
			return fmt.Errorf("%s: reading /metrics: %w", label, err)
		}
		fmt.Fprintf(w, "BenchmarkServeLoad/%s/c%d \t%8d\t%12.0f ns/op\t%12.0f p50-ns\t%12.0f p99-ns\t%10.1f req/s\t%12d rss-bytes\t%4d errors\n",
			label, *clients, len(res.latencies), res.mean(), res.p50(), res.p99(), res.throughput, rss, res.errors)
		fmt.Fprintf(os.Stderr, "prioload: %s: %d jobs, %d requests in %v (%d warmup, %d clients, %d tenants), %d errors\n",
			label, g.NumNodes(), len(res.latencies), res.elapsed.Round(time.Millisecond),
			*warmup, *clients, *tenants, res.errors)
	}
	return nil
}

// result aggregates one dag's timed run.
type result struct {
	latencies  []float64 // nanoseconds, every timed 200 response
	errors     int       // non-200 responses (admission sheds against a remote daemon)
	elapsed    time.Duration
	throughput float64 // timed requests per wall-clock second
}

func (r *result) mean() float64 {
	if len(r.latencies) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range r.latencies {
		sum += v
	}
	return sum / float64(len(r.latencies))
}

func (r *result) p50() float64 { return stats.Percentile(r.latencies, 50) }
func (r *result) p99() float64 { return stats.Percentile(r.latencies, 99) }

// drive performs warmup sequential requests, then clients×requests
// timed requests from concurrent goroutines, checking that every
// successful response is byte-identical.
func drive(client *http.Client, base, text string, clients, requests, warmup, tenants int) (*result, error) {
	post := func(tenant string) (int, uint64, time.Duration, error) {
		req, err := http.NewRequest("POST", base+"/v1/prioritize", strings.NewReader(text))
		if err != nil {
			return 0, 0, 0, err
		}
		req.Header.Set("Content-Type", "text/plain")
		req.Header.Set(serve.TenantHeader, tenant)
		start := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			return 0, 0, 0, err
		}
		h := fnv.New64a()
		_, err = io.Copy(h, resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return 0, 0, 0, err
		}
		return resp.StatusCode, h.Sum64(), time.Since(start), nil
	}

	// Warmup: prime the tenant caches, the scratch pool, and the HTTP
	// connection pool, and record the reference response hash.
	var want uint64
	for i := 0; i < warmup || i == 0; i++ {
		status, sum, _, err := post(tenantFor(0, tenants))
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("warmup request: status %d", status)
		}
		want = sum
	}

	res := &result{}
	perClient := make([][]float64, clients)
	errCounts := make([]int, clients)
	firstErr := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := tenantFor(c, tenants)
			lat := make([]float64, 0, requests)
			for i := 0; i < requests; i++ {
				status, sum, d, err := post(tenant)
				if err != nil {
					firstErr[c] = err
					return
				}
				if status != http.StatusOK {
					errCounts[c]++
					continue
				}
				if sum != want {
					firstErr[c] = fmt.Errorf("response mismatch: request %d of client %d differs from the warmup response", i, c)
					return
				}
				lat = append(lat, float64(d.Nanoseconds()))
			}
			perClient[c] = lat
		}(c)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	for c := 0; c < clients; c++ {
		if firstErr[c] != nil {
			return nil, firstErr[c]
		}
		res.latencies = append(res.latencies, perClient[c]...)
		res.errors += errCounts[c]
	}
	if res.elapsed > 0 {
		res.throughput = float64(len(res.latencies)) / res.elapsed.Seconds()
	}
	return res, nil
}

func tenantFor(client, tenants int) string {
	return fmt.Sprintf("load-%d", client%tenants)
}

// serverRSS reads the daemon's resident set size from GET /metrics.
func serverRSS(client *http.Client, base string) (uint64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0, err
	}
	return snap.Mem.RSSBytes, nil
}
