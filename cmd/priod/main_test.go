package main

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

func TestDaemonServesAndShutsDown(t *testing.T) {
	addrCh := make(chan net.Addr, 1)
	testHookListen = func(a net.Addr) { addrCh <- a }
	defer func() { testHookListen = nil }()

	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-max-inflight", "2", "-queue-timeout", "5s"}, stop)
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start listening")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	dag := "JOB a a.sub\nJOB b b.sub\nJOB c c.sub\nPARENT a CHILD b\nPARENT a CHILD c\n"
	presp, err := http.Post(base+"/v1/prioritize", "text/plain", strings.NewReader(dag))
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("prioritize status = %d", presp.StatusCode)
	}
	var got struct {
		Jobs       int            `json:"jobs"`
		Priorities map[string]int `json:"priorities"`
	}
	if err := json.NewDecoder(presp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Jobs != 3 || got.Priorities["a"] != 3 {
		t.Fatalf("response = %+v, want 3 jobs with a at priority 3", got)
	}

	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestRejectsPositionalArguments(t *testing.T) {
	if err := run([]string{"stray.dag"}, nil); err == nil || !strings.Contains(err.Error(), "positional") {
		t.Fatalf("err = %v, want a positional-argument error", err)
	}
}
