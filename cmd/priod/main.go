// Command priod is the scheduling daemon: a long-lived HTTP/JSON
// server exposing the prio pipeline (parse → prioritize → optionally
// simulate) to many concurrent tenants, with admission control and a
// /metrics observability surface. docs/API.md documents the wire
// protocol; docs/OPERATIONS.md is the runbook.
//
// Usage:
//
//	priod [flags]
//
//	-addr host:port        listen address (default :8080)
//	-max-inflight N        concurrent scheduling requests (default: logical CPUs)
//	-max-queue N           accept-queue depth beyond in-flight (default 4x in-flight)
//	-queue-timeout D       queue wait before a request is shed with 429 (default 2s)
//	-max-dag-bytes N       request body cap, bytes (default 16 MiB)
//	-max-jobs N            parsed dag node cap (default 200000)
//	-max-tenants N         live cache namespaces before LRU eviction (default 64)
//	-max-replications N    p*q cap on /v1/simulate (default 25000)
//	-parallel N            Recurse-phase workers per request (default 1)
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests finish (up to 10s), new connections are refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

// testHookListen, when set, observes the bound listener address; the
// CLI test uses it to reach a daemon started on port 0.
var testHookListen func(net.Addr)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], stop); err != nil {
		fmt.Fprintln(os.Stderr, "priod:", err)
		os.Exit(1)
	}
}

func run(args []string, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("priod", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxInFlight := fs.Int("max-inflight", 0, "concurrent scheduling requests (0 = logical CPUs)")
	maxQueue := fs.Int("max-queue", 0, "accept-queue depth beyond in-flight (0 = 4x in-flight)")
	queueTimeout := fs.Duration("queue-timeout", 2*time.Second, "queue wait before a request is shed with 429")
	maxDagBytes := fs.Int64("max-dag-bytes", 16<<20, "request body cap in bytes")
	maxJobs := fs.Int("max-jobs", 200_000, "parsed dag node cap")
	maxTenants := fs.Int("max-tenants", 64, "live cache namespaces before LRU eviction")
	maxReplications := fs.Int("max-replications", 25_000, "p*q cap on /v1/simulate")
	parallel := fs.Int("parallel", 1, "Recurse-phase worker count per request")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (priod takes no positional arguments)", fs.Arg(0))
	}

	s := serve.New(serve.Config{
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		QueueTimeout:    *queueTimeout,
		MaxDagBytes:     *maxDagBytes,
		MaxJobs:         *maxJobs,
		MaxTenants:      *maxTenants,
		MaxReplications: *maxReplications,
		Parallel:        *parallel,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if testHookListen != nil {
		testHookListen(ln.Addr())
	}
	fmt.Fprintf(os.Stderr, "priod: listening on %s\n", ln.Addr())

	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-stop:
	}
	fmt.Fprintln(os.Stderr, "priod: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
