// Command dagsim performs a simulated dry run of a workflow under the
// paper's stochastic grid model: one execution of a DAGMan file (or a
// built-in workload) under a chosen scheduling policy, with an optional
// event trace showing every batch arrival, assignment, and completion.
// It answers "what would this workflow's execution look like on a grid
// with these batch parameters?" without a Condor pool.
//
// Usage:
//
//	dagsim -dag workflow.dag [-policy prio] [-bit 1] [-bs 16]
//	       [-seed 1] [-trace] [-maxevents 200]
//	       [-parallel N] [-cache]
//
// -parallel and -cache tune the PRIO scheduling pipeline that backs the
// prio policies: -parallel N fans the per-component Recurse phase over
// N workers (1 = sequential reference, <=0 = all CPUs) and -cache
// memoizes component schedules and the transitive reduction. Both leave
// the schedule — and therefore the simulation — bit-identical.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dagsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dagsim", flag.ContinueOnError)
	dagSpec := fs.String("dag", "airsn", "workload name or DAGMan file")
	scale := fs.Int("scale", 1, "divide the paper workload size by this factor")
	policy := fs.String("policy", "prio", "scheduling policy: prio, fifo, random, critpath, heft, graphene, prio-maxjobs=N, or a C1+C2 tie-breaker chain")
	bit := fs.Float64("bit", 1, "mean batch interarrival time (mu_BIT)")
	bs := fs.Float64("bs", 16, "mean batch size (mu_BS)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	fail := fs.Float64("fail", 0, "per-assignment worker failure probability")
	trace := fs.Bool("trace", false, "print the event trace")
	maxEvents := fs.Int("maxevents", 200, "truncate the trace after this many events (0 = unlimited)")
	parallel := fs.Int("parallel", 1, "Recurse-phase worker count for the prio pipeline (1 = sequential reference, <=0 = all CPUs)")
	useCache := fs.Bool("cache", false, "memoize component schedules and the transitive reduction in the prio pipeline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, label, err := cli.LoadDag(*dagSpec, *scale)
	if err != nil {
		return err
	}
	copts := core.Options{Parallel: *parallel}
	if *parallel <= 0 {
		copts.Parallel = -1 // one worker per logical CPU
	}
	if *useCache {
		copts.Cache = core.NewCache()
	}
	factory, err := sim.PolicyFactoryOpts(*policy, g, copts)
	if err != nil {
		return err
	}
	params := sim.DefaultParams(*bit, *bs)
	params.FailureProb = *fail

	var obs sim.Observer
	if *trace {
		obs = &tracer{w: w, g: g, max: *maxEvents}
	}
	m := sim.RunObserved(g, params, factory(), rng.New(*seed), obs)

	fmt.Fprintf(w, "dag=%s jobs=%d policy=%s muBIT=%g muBS=%g seed=%d\n",
		label, g.NumNodes(), *policy, *bit, *bs, *seed)
	fmt.Fprintf(w, "execution time: %.3f\n", m.ExecutionTime)
	fmt.Fprintf(w, "batches: %d (stall probability %.4f)\n", m.Batches, m.StallProbability)
	fmt.Fprintf(w, "requests: %d (utilization %.4f)\n", m.Requests, m.Utilization)
	return nil
}

// tracer prints one line per event, truncating after max events.
type tracer struct {
	w      io.Writer
	g      *dag.Frozen
	max    int
	events int
	muted  bool
}

func (t *tracer) emit(format string, args ...interface{}) {
	if t.max > 0 && t.events >= t.max {
		if !t.muted {
			fmt.Fprintf(t.w, "... trace truncated after %d events (-maxevents)\n", t.max)
			t.muted = true
		}
		return
	}
	t.events++
	fmt.Fprintf(t.w, format, args...)
}

func (t *tracer) BatchArrived(at float64, size, served int) {
	t.emit("%10.3f  batch    size=%d served=%d\n", at, size, served)
}

func (t *tracer) Assigned(at float64, job int) {
	t.emit("%10.3f  assign   %s\n", at, t.g.Name(job))
}

func (t *tracer) Completed(at float64, job int) {
	t.emit("%10.3f  complete %s\n", at, t.g.Name(job))
}

func (t *tracer) Failed(at float64, job int) {
	t.emit("%10.3f  FAILED   %s (requeued)\n", at, t.g.Name(job))
}
