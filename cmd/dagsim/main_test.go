package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunMetricsOnly(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dag", "airsn", "-scale", "25", "-seed", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"execution time:", "batches:", "utilization"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "assign") {
		t.Fatal("trace printed without -trace")
	}
}

func TestRunTrace(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dag", "airsn", "-scale", "25", "-trace", "-maxevents", "30"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "batch") || !strings.Contains(s, "assign") || !strings.Contains(s, "complete") {
		t.Fatalf("trace missing event kinds:\n%s", s)
	}
	if !strings.Contains(s, "trace truncated after 30 events") {
		t.Fatalf("truncation notice missing:\n%s", s)
	}
}

func TestRunDeterministic(t *testing.T) {
	args := []string{"-dag", "airsn", "-scale", "25", "-seed", "7"}
	var a, b strings.Builder
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("dagsim not deterministic")
	}
}

func TestRunOnDAGManFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.dag")
	os.WriteFile(path, []byte("Job a a.sub\nJob b b.sub\nParent a Child b\n"), 0o644)
	var out strings.Builder
	if err := run([]string{"-dag", path, "-trace", "-bit", "0.5", "-bs", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "assign   a") {
		t.Fatalf("job a never assigned:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dag", "nope"}, &out); err == nil {
		t.Fatal("unknown dag accepted")
	}
	if err := run([]string{"-policy", "nope"}, &out); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
