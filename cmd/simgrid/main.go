// Command simgrid regenerates the evaluation figures of Section 4
// (Figures 6-9): for a chosen dag it sweeps the (mu_BIT, mu_BS)
// parameter grid, compares two scheduling policies (PRIO vs FIFO by
// default; -policy/-against accept any sim.PolicyFactory name), and
// prints one row per grid point with the three metric ratios (expected
// execution time, probability of stalling, expected utilization) as
// medians with 95% confidence intervals. -policies sweeps several
// numerators against one shared baseline in a single run: the last
// comma-separated name is the denominator for every other name, each
// pair's rows preceded by a "# ratios are NUM/DEN" header (and every
// json row carries its pair in policy/against fields, so NDJSON output
// stays self-describing).
//
// The whole grid runs as one flat parallel workload (sim.CompareGrid):
// every point overlaps in execution, rows still print in row-major
// order as they complete, and a per-row elapsed/ETA line goes to
// stderr. -format switches the stdout rows between the human table,
// TSV, and JSON (one object per line), so grid runs can feed
// machine-readable trajectories.
//
// The paper's grid is mu_BIT in {10^-3 .. 10^3} and mu_BS in
// {2^0 .. 2^16}, with p = q = 300; defaults here are laptop-scale and
// can be raised to paper scale with -p 300 -q 300 -scale 1.
//
// Paper-scale sweeps take hours, so they can be split and interrupted:
// -shard i/n computes only every n-th grid point (1-based shard i),
// -checkpoint FILE persists each completed point to a JSONL manifest,
// and -resume reloads a manifest — skipping finished points and
// rejecting a checkpoint that belongs to a different sweep. Rows
// restored from the checkpoint print bit-identically to freshly
// computed ones, so the concatenated output of shards 1..n (or of an
// interrupted run and its resume) is byte-identical to one flat run.
// See docs/OPERATIONS.md for the runbook.
//
// Usage:
//
//	simgrid -dag airsn [-scale 4] [-bit 10^-1,10^0,10^1] [-bs 2^2,2^4,2^6]
//	        [-p 40] [-q 40] [-seed 1] [-workers N] [-format table|tsv|json]
//	        [-policy prio -against fifo | -policies heft,graphene,fifo]
//	        [-shard i/n] [-checkpoint FILE [-resume]]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "simgrid:", err)
		os.Exit(1)
	}
}

// jsonCI mirrors stats.RatioCI for -format json. Invalid intervals keep
// zero bounds (JSON has no NaN) and valid=false.
type jsonCI struct {
	Median float64 `json:"median"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Valid  bool    `json:"valid"`
}

func toJSONCI(ci stats.RatioCI) jsonCI {
	if !ci.Valid {
		return jsonCI{}
	}
	return jsonCI{Median: ci.Median, Lo: ci.Lo, Hi: ci.Hi, Valid: true}
}

// jsonRow is one grid point in -format json, one object per line. The
// policy pair is embedded in every row so multi-pair sweeps
// (-policies) stay pure NDJSON with self-describing lines.
type jsonRow struct {
	Policy  string  `json:"policy"`
	Against string  `json:"against"`
	MuBIT   float64 `json:"mu_bit"`
	MuBS    float64 `json:"mu_bs"`
	Time    jsonCI  `json:"time"`
	Stall   jsonCI  `json:"stall"`
	Util    jsonCI  `json:"util"`
}

// tsvCell renders one CI bound for -format tsv; invalid intervals print
// NaN so columns stay numeric.
func tsvCell(ci stats.RatioCI, v float64) string {
	if !ci.Valid {
		v = math.NaN()
	}
	return fmt.Sprintf("%g", v)
}

func writeRow(w io.Writer, format string, gp sim.GridPoint, policy, against string) error {
	switch format {
	case "table":
		_, err := fmt.Fprintln(w, gp.FormatRow())
		return err
	case "tsv":
		cols := []string{fmt.Sprintf("%g", gp.MuBIT), fmt.Sprintf("%g", gp.MuBS)}
		for _, ci := range []stats.RatioCI{gp.ExecTime, gp.Stalling, gp.Utilization} {
			cols = append(cols, tsvCell(ci, ci.Median), tsvCell(ci, ci.Lo), tsvCell(ci, ci.Hi))
		}
		for i, c := range cols {
			if i > 0 {
				if _, err := io.WriteString(w, "\t"); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	case "json":
		row := jsonRow{
			Policy: policy, Against: against,
			MuBIT: gp.MuBIT, MuBS: gp.MuBS,
			Time:  toJSONCI(gp.ExecTime),
			Stall: toJSONCI(gp.Stalling),
			Util:  toJSONCI(gp.Utilization),
		}
		enc, err := json.Marshal(row)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", enc)
		return err
	default:
		return fmt.Errorf("-format %q: want table, tsv, or json", format)
	}
}

func run(args []string, w, ew io.Writer) error {
	fs := flag.NewFlagSet("simgrid", flag.ContinueOnError)
	dagSpec := fs.String("dag", "airsn", "workload name (airsn, inspiral, montage, sdss) or DAGMan file")
	scale := fs.Int("scale", 4, "divide the paper workload size by this factor (1 = paper scale)")
	bits := fs.String("bit", "10^-3,10^-2,10^-1,10^0,10^1,10^2,10^3", "comma list of mu_BIT values (a^b supported)")
	bss := fs.String("bs", "2^0,2^2,2^4,2^6,2^8,2^10,2^12,2^14,2^16", "comma list of mu_BS values (a^b supported)")
	p := fs.Int("p", 40, "samples in the empirical sampling distribution")
	q := fs.Int("q", 40, "measurements averaged per sample")
	seed := fs.Uint64("seed", 1, "experiment seed")
	workers := fs.Int("workers", 0, "parallel replications (0 = all CPUs)")
	policy := fs.String("policy", "prio", "numerator policy (any sim.PolicyFactory name: prio, fifo, random, critpath, heft, graphene, prio-maxjobs=N, C1+C2 chains)")
	against := fs.String("against", "fifo", "denominator policy (same names)")
	policies := fs.String("policies", "", "comma-separated factory names; each is swept against the last (overrides -policy/-against; incompatible with -shard/-checkpoint)")
	fail := fs.Float64("fail", 0, "per-assignment worker failure probability")
	format := fs.String("format", "table", "output format: table, tsv, or json (one object per line)")
	shardSpec := fs.String("shard", "", "compute only shard i of n, given as i/n (1-based); all shards must use an identical grid")
	checkpoint := fs.String("checkpoint", "", "persist each completed grid point to this JSONL manifest")
	resume := fs.Bool("resume", false, "reload -checkpoint and skip the points it already holds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "table", "tsv", "json":
	default:
		return fmt.Errorf("-format %q: want table, tsv, or json", *format)
	}
	shard, err := parseShard(*shardSpec)
	if err != nil {
		return err
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	g, label, err := cli.LoadDag(*dagSpec, *scale)
	if err != nil {
		return err
	}
	muBITs, err := cli.ParseFloats(*bits)
	if err != nil {
		return fmt.Errorf("-bit: %w", err)
	}
	muBSs, err := cli.ParseFloats(*bss)
	if err != nil {
		return fmt.Errorf("-bs: %w", err)
	}

	// The policy pairs to sweep: one from -policy/-against, or several
	// from -policies (each name against the last). All factories are
	// resolved before any output, so a bad name anywhere fails clean.
	type pair struct {
		num, den         string
		numFact, denFact func() sim.Policy
	}
	var pairs []pair
	if *policies != "" {
		if *checkpoint != "" || *shardSpec != "" {
			return fmt.Errorf("-policies cannot be combined with -checkpoint or -shard (checkpoint manifests describe a single policy pair; sweep pairs one at a time)")
		}
		names := strings.Split(*policies, ",")
		if len(names) < 2 {
			return fmt.Errorf("-policies %q: want at least two comma-separated names (the last is the shared baseline)", *policies)
		}
		den := names[len(names)-1]
		denFact, err := sim.PolicyFactory(den, g)
		if err != nil {
			return err
		}
		for _, num := range names[:len(names)-1] {
			numFact, err := sim.PolicyFactory(num, g)
			if err != nil {
				return err
			}
			pairs = append(pairs, pair{num: num, den: den, numFact: numFact, denFact: denFact})
		}
	} else {
		numFact, err := sim.PolicyFactory(*policy, g)
		if err != nil {
			return err
		}
		denFact, err := sim.PolicyFactory(*against, g)
		if err != nil {
			return err
		}
		pairs = []pair{{num: *policy, den: *against, numFact: numFact, denFact: denFact}}
	}

	opts := sim.ExperimentOptions{P: *p, Q: *q, Seed: *seed, Workers: *workers, Confidence: 95, Shard: shard}
	comment := func(f string, a ...any) {
		if *format != "json" { // keep json output pure NDJSON
			fmt.Fprintf(w, f, a...)
		}
	}
	comment("# dag=%s jobs=%d arcs=%d  p=%d q=%d seed=%d\n", label, g.NumNodes(), g.NumArcs(), *p, *q, *seed)
	if *format == "tsv" {
		fmt.Fprintln(w, "mu_bit\tmu_bs\ttime_med\ttime_lo\ttime_hi\tstall_med\tstall_lo\tstall_hi\tutil_med\tutil_lo\tutil_hi")
	}

	points := make([]sim.Params, 0, len(muBITs)*len(muBSs))
	for _, bit := range muBITs {
		for _, bs := range muBSs {
			params := sim.DefaultParams(bit, bs)
			params.FailureProb = *fail
			points = append(points, params)
		}
	}

	start := time.Now()
	for _, pr := range pairs {
		comment("# ratios are %s/%s: median [95%% CI]; <1 means %s wins on time/stall, >1 on utilization\n",
			pr.num, pr.den, pr.num)

		// Checkpointing: completed points already in the manifest are not
		// recomputed (their rows print from the persisted distributions,
		// bit-identically), and each newly computed point is appended as
		// it finishes, so an interruption costs at most one in-flight
		// point. Only single-pair sweeps checkpoint (guarded above).
		var have map[int]sim.PointSample
		var save func(int, sim.PointSample)
		var saveErr error
		if *checkpoint != "" {
			man, err := sim.OpenManifest(*checkpoint, g, points, pr.numFact().Name(), pr.denFact().Name(), opts, *resume)
			if err != nil {
				return err
			}
			defer man.Close()
			have = man.Have()
			save = func(i int, s sim.PointSample) {
				if err := man.Append(i, points[i], s); err != nil && saveErr == nil {
					saveErr = err
				}
			}
			if len(have) > 0 {
				fmt.Fprintf(ew, "checkpoint %s: %d/%d points already done\n", *checkpoint, len(have), len(points))
			}
		}

		// The rows this sweep will print: owned by the shard or
		// restored from the checkpoint. Foreign points (another
		// shard's, not yet checkpointed) are skipped entirely.
		covered := 0
		for i := range points {
			if _, ok := have[i]; ok || i%shard.Count == shard.Index {
				covered++
			}
		}

		pairStart := time.Now()
		done := 0
		var rowErr error
		sim.CompareGridResume(g, points, pr.numFact, pr.denFact, opts, have, save, func(i int, c sim.Comparison) {
			gp := sim.GridPoint{MuBIT: points[i].BatchInterarrival, MuBS: points[i].BatchSize, Comparison: c}
			if err := writeRow(w, *format, gp, pr.num, pr.den); err != nil && rowErr == nil {
				rowErr = err
			}
			done++
			elapsed := time.Since(pairStart)
			eta := time.Duration(float64(elapsed) / float64(done) * float64(covered-done))
			fmt.Fprintf(ew, "row %d/%d muBIT=%g muBS=%g elapsed=%v eta=%v\n",
				done, covered, gp.MuBIT, gp.MuBS,
				elapsed.Round(time.Millisecond), eta.Round(time.Millisecond))
		})
		if rowErr != nil {
			return rowErr
		}
		if saveErr != nil {
			return fmt.Errorf("checkpoint %s: %w", *checkpoint, saveErr)
		}
	}
	comment("# total sweep time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// parseShard parses the 1-based "-shard i/n" syntax into the engine's
// 0-based Shard; an empty spec means the whole grid.
func parseShard(spec string) (sim.Shard, error) {
	if spec == "" {
		return sim.Shard{Index: 0, Count: 1}, nil
	}
	var i, n int
	if _, err := fmt.Sscanf(spec, "%d/%d", &i, &n); err != nil || i < 1 || n < 1 || i > n {
		return sim.Shard{}, fmt.Errorf("-shard %q: want i/n with 1 <= i <= n", spec)
	}
	return sim.Shard{Index: i - 1, Count: n}, nil
}
