// Command simgrid regenerates the evaluation figures of Section 4
// (Figures 6-9): for a chosen dag it sweeps the (mu_BIT, mu_BS)
// parameter grid, compares the PRIO and FIFO scheduling algorithms, and
// prints one row per grid point with the three metric ratios (expected
// execution time, probability of stalling, expected utilization) as
// medians with 95% confidence intervals.
//
// The paper's grid is mu_BIT in {10^-3 .. 10^3} and mu_BS in
// {2^0 .. 2^16}, with p = q = 300; defaults here are laptop-scale and
// can be raised to paper scale with -p 300 -q 300 -scale 1.
//
// Usage:
//
//	simgrid -dag airsn [-scale 4] [-bit 10^-1,10^0,10^1] [-bs 2^2,2^4,2^6]
//	        [-p 40] [-q 40] [-seed 1] [-workers N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simgrid:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("simgrid", flag.ContinueOnError)
	dagSpec := fs.String("dag", "airsn", "workload name (airsn, inspiral, montage, sdss) or DAGMan file")
	scale := fs.Int("scale", 4, "divide the paper workload size by this factor (1 = paper scale)")
	bits := fs.String("bit", "10^-3,10^-2,10^-1,10^0,10^1,10^2,10^3", "comma list of mu_BIT values (a^b supported)")
	bss := fs.String("bs", "2^0,2^2,2^4,2^6,2^8,2^10,2^12,2^14,2^16", "comma list of mu_BS values (a^b supported)")
	p := fs.Int("p", 40, "samples in the empirical sampling distribution")
	q := fs.Int("q", 40, "measurements averaged per sample")
	seed := fs.Uint64("seed", 1, "experiment seed")
	workers := fs.Int("workers", 0, "parallel replications (0 = all CPUs)")
	policy := fs.String("policy", "prio", "numerator policy: prio, fifo, random, critpath, prio-maxjobs=N")
	against := fs.String("against", "fifo", "denominator policy (same names)")
	fail := fs.Float64("fail", 0, "per-assignment worker failure probability")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, label, err := cli.LoadDag(*dagSpec, *scale)
	if err != nil {
		return err
	}
	muBITs, err := cli.ParseFloats(*bits)
	if err != nil {
		return fmt.Errorf("-bit: %w", err)
	}
	muBSs, err := cli.ParseFloats(*bss)
	if err != nil {
		return fmt.Errorf("-bs: %w", err)
	}

	numFactory, err := sim.PolicyFactory(*policy, g)
	if err != nil {
		return err
	}
	denFactory, err := sim.PolicyFactory(*against, g)
	if err != nil {
		return err
	}

	opts := sim.ExperimentOptions{P: *p, Q: *q, Seed: *seed, Workers: *workers, Confidence: 95}
	fmt.Fprintf(w, "# dag=%s jobs=%d arcs=%d  p=%d q=%d seed=%d\n", label, g.NumNodes(), g.NumArcs(), *p, *q, *seed)
	fmt.Fprintf(w, "# ratios are %s/%s: median [95%% CI]; <1 means %s wins on time/stall, >1 on utilization\n",
		*policy, *against, *policy)
	start := time.Now()
	for _, bit := range muBITs {
		for _, bs := range muBSs {
			params := sim.DefaultParams(bit, bs)
			params.FailureProb = *fail
			c := sim.Compare(g, params, numFactory, denFactory, opts)
			gp := sim.GridPoint{MuBIT: bit, MuBS: bs, Comparison: c}
			fmt.Fprintln(w, gp.FormatRow())
		}
	}
	fmt.Fprintf(w, "# total sweep time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
