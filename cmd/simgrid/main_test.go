package main

import (
	"strings"
	"testing"
)

func TestRunSmallGrid(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dag", "airsn", "-scale", "25",
		"-bit", "10^0", "-bs", "2^2,2^4",
		"-p", "4", "-q", "3", "-seed", "9",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# dag=airsn/25") {
		t.Fatalf("header missing:\n%s", s)
	}
	rows := 0
	for _, ln := range strings.Split(s, "\n") {
		if strings.HasPrefix(ln, "muBIT=") {
			rows++
			for _, col := range []string{"time=", "stall=", "util="} {
				if !strings.Contains(ln, col) {
					t.Fatalf("row missing %s: %q", col, ln)
				}
			}
		}
	}
	if rows != 2 {
		t.Fatalf("rows = %d, want 2", rows)
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	args := []string{"-dag", "airsn", "-scale", "25", "-bit", "1", "-bs", "4", "-p", "3", "-q", "3"}
	var a, b strings.Builder
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	stripTiming := func(s string) string {
		lines := strings.Split(s, "\n")
		var kept []string
		for _, ln := range lines {
			if !strings.HasPrefix(ln, "# total sweep time") {
				kept = append(kept, ln)
			}
		}
		return strings.Join(kept, "\n")
	}
	if stripTiming(a.String()) != stripTiming(b.String()) {
		t.Fatal("sweep output not deterministic")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dag", "nope"}, &out); err == nil {
		t.Fatal("unknown dag accepted")
	}
	if err := run([]string{"-bit", "zzz"}, &out); err == nil {
		t.Fatal("bad -bit accepted")
	}
	if err := run([]string{"-bs", ""}, &out); err == nil {
		t.Fatal("empty -bs accepted")
	}
}
