package main

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestRunSmallGrid(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dag", "airsn", "-scale", "25",
		"-bit", "10^0", "-bs", "2^2,2^4",
		"-p", "4", "-q", "3", "-seed", "9",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# dag=airsn/25") {
		t.Fatalf("header missing:\n%s", s)
	}
	rows := 0
	for _, ln := range strings.Split(s, "\n") {
		if strings.HasPrefix(ln, "muBIT=") {
			rows++
			for _, col := range []string{"time=", "stall=", "util="} {
				if !strings.Contains(ln, col) {
					t.Fatalf("row missing %s: %q", col, ln)
				}
			}
		}
	}
	if rows != 2 {
		t.Fatalf("rows = %d, want 2", rows)
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	args := []string{"-dag", "airsn", "-scale", "25", "-bit", "1", "-bs", "4", "-p", "3", "-q", "3"}
	var a, b strings.Builder
	if err := run(args, &a, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	stripTiming := func(s string) string {
		lines := strings.Split(s, "\n")
		var kept []string
		for _, ln := range lines {
			if !strings.HasPrefix(ln, "# total sweep time") {
				kept = append(kept, ln)
			}
		}
		return strings.Join(kept, "\n")
	}
	if stripTiming(a.String()) != stripTiming(b.String()) {
		t.Fatal("sweep output not deterministic")
	}
}

func TestRunFormatTSV(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dag", "airsn", "-scale", "25", "-format", "tsv",
		"-bit", "10^0", "-bs", "2^2,2^4", "-p", "4", "-q", "3",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var header string
	var rows [][]string
	for _, ln := range strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n") {
		if strings.HasPrefix(ln, "#") || ln == "" {
			continue
		}
		if header == "" {
			header = ln
			continue
		}
		rows = append(rows, strings.Split(ln, "\t"))
	}
	wantCols := strings.Split("mu_bit\tmu_bs\ttime_med\ttime_lo\ttime_hi\tstall_med\tstall_lo\tstall_hi\tutil_med\tutil_lo\tutil_hi", "\t")
	if header != strings.Join(wantCols, "\t") {
		t.Fatalf("header = %q", header)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, row := range rows {
		if len(row) != len(wantCols) {
			t.Fatalf("row has %d columns, want %d: %v", len(row), len(wantCols), row)
		}
		for i, cell := range row {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				t.Fatalf("column %s = %q is not numeric: %v", wantCols[i], cell, err)
			}
		}
	}
}

func TestRunFormatJSON(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dag", "airsn", "-scale", "25", "-format", "json",
		"-bit", "10^0,10^1", "-bs", "2^2", "-p", "4", "-q", "3",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("json output has %d lines, want 2 (must be pure NDJSON):\n%s", len(lines), out.String())
	}
	for _, ln := range lines {
		var row struct {
			MuBIT float64 `json:"mu_bit"`
			MuBS  float64 `json:"mu_bs"`
			Time  struct {
				Median float64 `json:"median"`
				Lo     float64 `json:"lo"`
				Hi     float64 `json:"hi"`
				Valid  bool    `json:"valid"`
			} `json:"time"`
		}
		if err := json.Unmarshal([]byte(ln), &row); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		if row.MuBS != 4 {
			t.Fatalf("mu_bs = %g, want 4", row.MuBS)
		}
		if !row.Time.Valid || row.Time.Lo > row.Time.Median || row.Time.Median > row.Time.Hi {
			t.Fatalf("time CI malformed: %+v", row.Time)
		}
	}
}

func TestRunProgressETA(t *testing.T) {
	var out, errw strings.Builder
	err := run([]string{
		"-dag", "airsn", "-scale", "25",
		"-bit", "10^0", "-bs", "2^2,2^4,2^6", "-p", "3", "-q", "3",
	}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(errw.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("stderr has %d progress lines, want 3:\n%s", len(lines), errw.String())
	}
	for i, ln := range lines {
		prefix := "row " + strconv.Itoa(i+1) + "/3 "
		if !strings.HasPrefix(ln, prefix) {
			t.Fatalf("line %d = %q, want prefix %q", i, ln, prefix)
		}
		for _, field := range []string{"muBIT=", "muBS=", "elapsed=", "eta="} {
			if !strings.Contains(ln, field) {
				t.Fatalf("progress line missing %s: %q", field, ln)
			}
		}
	}
	if !strings.Contains(lines[2], "eta=0s") {
		t.Fatalf("final row should report eta=0s: %q", lines[2])
	}
}

// TestRunPolicies pins the -policies multi-pair sweep: two numerators
// against one shared baseline in a single run, each pair announced by
// its own "# ratios are NUM/DEN" header, with each pair's table rows
// matching the equivalent single-pair -policy/-against invocation.
func TestRunPolicies(t *testing.T) {
	grid := []string{
		"-dag", "airsn", "-scale", "25",
		"-bit", "10^0", "-bs", "2^2,2^4", "-p", "3", "-q", "2", "-seed", "5",
	}
	var multi strings.Builder
	if err := run(append(append([]string{}, grid...), "-policies", "heft,graphene,fifo"), &multi, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := multi.String()
	for _, hdr := range []string{"# ratios are heft/fifo", "# ratios are graphene/fifo"} {
		if !strings.Contains(s, hdr) {
			t.Fatalf("multi-pair output missing %q:\n%s", hdr, s)
		}
	}

	// Split the output into per-pair row blocks and compare each against
	// its single-pair run (headers and timing footers stripped).
	dataRows := func(out string) []string {
		var rows []string
		for _, ln := range strings.Split(out, "\n") {
			if strings.HasPrefix(ln, "muBIT=") {
				rows = append(rows, ln)
			}
		}
		return rows
	}
	multiRows := dataRows(s)
	if len(multiRows) != 4 {
		t.Fatalf("multi-pair sweep printed %d rows, want 4:\n%s", len(multiRows), s)
	}
	for i, num := range []string{"heft", "graphene"} {
		var single strings.Builder
		if err := run(append(append([]string{}, grid...), "-policy", num, "-against", "fifo"), &single, io.Discard); err != nil {
			t.Fatal(err)
		}
		want := dataRows(single.String())
		got := multiRows[i*2 : i*2+2]
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("%s/fifo rows differ between -policies and -policy runs:\n multi  %v\n single %v", num, got, want)
		}
	}
}

// TestRunPoliciesJSON checks every NDJSON row self-describes its pair
// through the policy/against fields, in sweep order.
func TestRunPoliciesJSON(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dag", "airsn", "-scale", "25", "-format", "json",
		"-bit", "10^0", "-bs", "2^2", "-p", "3", "-q", "2",
		"-policies", "heft,graphene,fifo",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("json output has %d lines, want 2 (must stay pure NDJSON):\n%s", len(lines), out.String())
	}
	for i, wantPol := range []string{"heft", "graphene"} {
		var row struct {
			Policy  string `json:"policy"`
			Against string `json:"against"`
		}
		if err := json.Unmarshal([]byte(lines[i]), &row); err != nil {
			t.Fatalf("line %q: %v", lines[i], err)
		}
		if row.Policy != wantPol || row.Against != "fifo" {
			t.Fatalf("row %d pair = %s/%s, want %s/fifo", i, row.Policy, row.Against, wantPol)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dag", "nope"}, &out, io.Discard); err == nil {
		t.Fatal("unknown dag accepted")
	}
	if err := run([]string{"-bit", "zzz"}, &out, io.Discard); err == nil {
		t.Fatal("bad -bit accepted")
	}
	if err := run([]string{"-bs", ""}, &out, io.Discard); err == nil {
		t.Fatal("empty -bs accepted")
	}
	if err := run([]string{"-format", "xml"}, &out, io.Discard); err == nil {
		t.Fatal("bad -format accepted")
	}
	for _, spec := range []string{"0/2", "3/2", "2", "a/b", "-1/3"} {
		if err := run([]string{"-shard", spec}, &out, io.Discard); err == nil {
			t.Fatalf("bad -shard %q accepted", spec)
		}
	}
	if err := run([]string{"-resume"}, &out, io.Discard); err == nil {
		t.Fatal("-resume without -checkpoint accepted")
	}
	if err := run([]string{"-policy", "nope"}, &out, io.Discard); err == nil {
		t.Fatal("unknown -policy accepted")
	}
	if err := run([]string{"-policies", "heft,nope"}, &out, io.Discard); err == nil {
		t.Fatal("unknown name inside -policies accepted")
	}
	if err := run([]string{"-policies", "heft"}, &out, io.Discard); err == nil {
		t.Fatal("single-name -policies accepted (no baseline to compare against)")
	}
	if err := run([]string{"-policies", "heft,fifo", "-shard", "1/2"}, &out, io.Discard); err == nil {
		t.Fatal("-policies combined with -shard accepted")
	}
	if err := run([]string{"-policies", "heft,fifo", "-checkpoint", "x.ckpt"}, &out, io.Discard); err == nil {
		t.Fatal("-policies combined with -checkpoint accepted")
	}
}

// TestRunShardResume pins the CLI-level merge contract: running shard
// 1/2 into a checkpoint, then shard 2/2 with -resume against the same
// checkpoint, prints (on the second invocation) the complete grid
// byte-identical to one flat run — restored rows and computed rows are
// indistinguishable in the output.
func TestRunShardResume(t *testing.T) {
	base := []string{
		"-dag", "airsn", "-scale", "25",
		"-bit", "10^0,10^1", "-bs", "2^2,2^4",
		"-p", "3", "-q", "2", "-seed", "5", "-format", "json",
	}
	var flat strings.Builder
	if err := run(base, &flat, io.Discard); err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "grid.ckpt")
	var first strings.Builder
	if err := run(append(append([]string{}, base...), "-shard", "1/2", "-checkpoint", ckpt), &first, io.Discard); err != nil {
		t.Fatal(err)
	}
	var second strings.Builder
	if err := run(append(append([]string{}, base...), "-shard", "2/2", "-checkpoint", ckpt, "-resume"), &second, io.Discard); err != nil {
		t.Fatal(err)
	}

	if second.String() != flat.String() {
		t.Fatalf("resumed shard 2/2 output differs from flat run:\n--- flat ---\n%s--- resumed ---\n%s", flat.String(), second.String())
	}
	// The first shard printed exactly its own rows: the even-indexed
	// lines of the flat output.
	flatLines := strings.Split(strings.TrimSuffix(flat.String(), "\n"), "\n")
	var want []string
	for i, ln := range flatLines {
		if i%2 == 0 {
			want = append(want, ln)
		}
	}
	got := strings.Split(strings.TrimSuffix(first.String(), "\n"), "\n")
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("shard 1/2 output is not the even rows of the flat run:\n%s", first.String())
	}

	// A stale checkpoint (different seed) must be rejected, not merged.
	stale := append(append([]string{}, base...), "-checkpoint", ckpt, "-resume", "-seed", "6")
	var out strings.Builder
	if err := run(stale, &out, io.Discard); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("stale checkpoint accepted: %v", err)
	}
}
