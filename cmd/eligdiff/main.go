// Command eligdiff regenerates Figure 4: the difference in the number of
// eligible jobs between the PRIO and FIFO schedules as a function of the
// number of executed jobs, both absolute and normalized by the number of
// jobs in the dag.
//
// Usage:
//
//	eligdiff -dag airsn [-scale 1] [-stride 0] [-summary]
//
// Output columns: step, E_PRIO, E_FIFO, diff, diff/jobs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eligdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("eligdiff", flag.ContinueOnError)
	dagSpec := fs.String("dag", "airsn", "workload name or DAGMan file")
	scale := fs.Int("scale", 1, "divide the paper workload size by this factor")
	stride := fs.Int("stride", 0, "print every n-th step (0 = auto, about 100 rows)")
	summaryOnly := fs.Bool("summary", false, "print only the summary line")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, label, err := cli.LoadDag(*dagSpec, *scale)
	if err != nil {
		return err
	}
	prio := core.Prioritize(g).Order
	fifo := core.FIFOSchedule(g)
	tp, err := core.EligibilityTrace(g, prio)
	if err != nil {
		return err
	}
	tf, err := core.EligibilityTrace(g, fifo)
	if err != nil {
		return err
	}

	n := g.NumNodes()
	st := *stride
	if st <= 0 {
		st = n/100 + 1
	}
	maxDiff, minDiff, sum := 0, 0, 0
	argMax := 0
	for t := range tp {
		d := tp[t] - tf[t]
		sum += d
		if d > maxDiff {
			maxDiff, argMax = d, t
		}
		if d < minDiff {
			minDiff = d
		}
		if !*summaryOnly && (t%st == 0 || t == len(tp)-1) {
			fmt.Fprintf(w, "%7d %7d %7d %+7d %+8.4f\n", t, tp[t], tf[t], d, float64(d)/float64(n))
		}
	}
	fmt.Fprintf(w, "# dag=%s jobs=%d  max diff=%+d at step %d (%.3f normalized)  min diff=%+d  mean diff=%+.2f\n",
		label, n, maxDiff, argMax, float64(maxDiff)/float64(n), minDiff, float64(sum)/float64(len(tp)))
	return nil
}
