package main

import (
	"strings"
	"testing"
)

func TestRunSummary(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dag", "airsn", "-scale", "10", "-summary"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# dag=airsn/10") || !strings.Contains(s, "max diff=") {
		t.Fatalf("summary missing:\n%s", s)
	}
	if strings.Count(s, "\n") != 1 {
		t.Fatalf("-summary should print one line:\n%s", s)
	}
}

func TestRunRows(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dag", "airsn", "-scale", "25", "-stride", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// width 10 AIRSN has 53 jobs -> 54 trace points + summary
	if len(lines) < 50 {
		t.Fatalf("too few rows: %d", len(lines))
	}
	if f := strings.Fields(lines[0]); len(f) != 5 || f[0] != "0" {
		t.Fatalf("first row should be step 0 with 5 columns: %q", lines[0])
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dag", "nope"}, &out); err == nil {
		t.Fatal("unknown dag accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}
